//! Quickstart: boot the simulated stack and watch the exit
//! multiplication problem appear and disappear.
//!
//! Runs the hypercall microbenchmark (a nested VM calling its
//! hypervisor and returning) under three architectures and prints what
//! the paper's Tables 6 and 7 print: cycles and traps per operation.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use neve_sim::prelude::*;

fn main() {
    println!("NEVE quickstart: one hypercall, three architectures");
    println!("===================================================\n");

    // A single-level VM first: the baseline every overhead is measured
    // against (paper Table 1, "VM" column).
    let mut vm = TestBed::new(ArmConfig::Vm, MicroBench::Hypercall, 20);
    let vm_cost = vm.run(20);
    println!(
        "VM           : {:>7} cycles, {:>5.1} traps per hypercall  (paper:   2,729 / 1)",
        vm_cost.cycles, vm_cost.traps
    );

    // ARMv8.3 trap-and-emulate nested virtualization: every hypervisor
    // instruction of the guest hypervisor's world switch traps.
    let v83 = ArmConfig::Nested {
        guest_vhe: false,
        neve: false,
        para: ParaMode::None,
    };
    let mut tb = TestBed::new(v83, MicroBench::Hypercall, 20);
    let v83_cost = tb.run(20);
    println!(
        "ARMv8.3      : {:>7} cycles, {:>5.1} traps per hypercall  (paper: 422,720 / 126)",
        v83_cost.cycles, v83_cost.traps
    );

    // NEVE: the same unmodified guest hypervisor, but VM-register
    // accesses are deferred to the access page, control registers are
    // redirected to EL1 counterparts, and reads come from cached copies.
    let neve = ArmConfig::Nested {
        guest_vhe: false,
        neve: true,
        para: ParaMode::None,
    };
    let mut tb = TestBed::new(neve, MicroBench::Hypercall, 20);
    let neve_cost = tb.run(20);
    println!(
        "NEVE (v8.4)  : {:>7} cycles, {:>5.1} traps per hypercall  (paper:  92,385 / 15)",
        neve_cost.cycles, neve_cost.traps
    );

    println!();
    println!(
        "Exit multiplication: {:.0} traps on ARMv8.3 vs {:.0} with NEVE ({:.1}x fewer)",
        v83_cost.traps,
        neve_cost.traps,
        v83_cost.traps / neve_cost.traps
    );
    println!(
        "Cycle cost         : {:.1}x faster with NEVE (paper: \"up to 5 times\")",
        v83_cost.cycles as f64 / neve_cost.cycles as f64
    );
    println!(
        "Nested vs VM       : {:.0}x (v8.3) -> {:.0}x (NEVE); paper: 155x -> 34x",
        v83_cost.cycles as f64 / vm_cost.cycles as f64,
        neve_cost.cycles as f64 / vm_cost.cycles as f64
    );
}
