//! The paper's methodology, demonstrated: measuring future hardware on
//! current hardware via paravirtualization (Section 3).
//!
//! In 2017, no ARMv8.3 silicon existed. The paper's trick: replace every
//! guest-hypervisor instruction that *would* trap on ARMv8.3 with an
//! `hvc` that traps identically on ARMv8.0, and measure the full stack
//! at native speed. This example runs both sides of that equivalence in
//! the simulator — the unmodified hypervisor on simulated v8.3/v8.4
//! hardware vs the paravirtualized images on simulated v8.0 — and shows
//! the trap-for-trap match that justified the approach.
//!
//! ```sh
//! cargo run --example future_hardware
//! ```

use neve_sim::prelude::*;

fn run(cfg: ArmConfig) -> neve_sim::cycles::counter::PerOp {
    let mut tb = TestBed::new(cfg, MicroBench::Hypercall, 20);
    tb.run(20)
}

fn main() {
    println!("Evaluating unreleased hardware with paravirtualization (paper Section 3)");
    println!("========================================================================\n");

    println!("Goal hardware: ARMv8.3 nested virtualization (unavailable in 2017).");
    let native = run(ArmConfig::Nested {
        guest_vhe: false,
        neve: false,
        para: ParaMode::None,
    });
    println!(
        "  unmodified guest hypervisor on real ARMv8.3 : {:>7} cycles, {:>5.1} traps",
        native.cycles, native.traps
    );
    let para = run(ArmConfig::Nested {
        guest_vhe: false,
        neve: false,
        para: ParaMode::HvcV83,
    });
    println!(
        "  hvc-paravirtualized hypervisor on ARMv8.0   : {:>7} cycles, {:>5.1} traps",
        para.cycles, para.traps
    );
    println!(
        "  fidelity: traps {:.3}x, cycles {:.3}x\n",
        para.traps / native.traps,
        para.cycles as f64 / native.cycles as f64
    );

    println!("Goal hardware: NEVE / ARMv8.4-NV2 (proposed by the paper).");
    let native = run(ArmConfig::Nested {
        guest_vhe: false,
        neve: true,
        para: ParaMode::None,
    });
    println!(
        "  unmodified guest hypervisor on real NEVE    : {:>7} cycles, {:>5.1} traps",
        native.cycles, native.traps
    );
    let para = run(ArmConfig::Nested {
        guest_vhe: false,
        neve: true,
        para: ParaMode::NeveLs,
    });
    println!(
        "  load/store-paravirtualized hyp. on ARMv8.0  : {:>7} cycles, {:>5.1} traps",
        para.cycles, para.traps
    );
    println!(
        "  fidelity: traps {:.3}x, cycles {:.3}x\n",
        para.traps / native.traps,
        para.cycles as f64 / native.cycles as f64
    );

    println!("Why it works (Section 5): on ARM, the trap cost is dominated by the");
    println!("exception machinery, not by *which* instruction trapped — the paper");
    println!("measured <10% variation across trapping instructions, and so does the");
    println!("cost model here (run `cargo run -p neve-bench --bin trapcost`).");
    println!();
    println!("This is how the paper could claim, pre-silicon, that ARMv8.3 nesting");
    println!("would be an order of magnitude slower than x86 — and how NEVE could be");
    println!("designed, evaluated, and adopted into ARMv8.4 before any NV hardware");
    println!("existed.");
}
