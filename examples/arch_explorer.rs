//! Architecture explorer: where exactly do the traps come from?
//!
//! Runs the hypercall microbenchmark on every nested configuration and
//! breaks the trap count down by cause — the analysis behind the
//! paper's Section 5 ("each trap ... from the nested VM results in a
//! multitude of additional traps from the guest hypervisor").
//!
//! ```sh
//! cargo run --example arch_explorer
//! ```

use neve_sim::cycles::TrapKind;
use neve_sim::prelude::*;

fn main() {
    println!("Trap anatomy of one nested hypercall");
    println!("====================================\n");

    let configs = [
        ("ARMv8.3 non-VHE", false, false),
        ("ARMv8.3 VHE", true, false),
        ("NEVE    non-VHE", false, true),
        ("NEVE    VHE", true, true),
    ];

    for (name, vhe, neve) in configs {
        let cfg = ArmConfig::Nested {
            guest_vhe: vhe,
            neve,
            para: ParaMode::None,
        };
        let iters = 20;
        let mut tb = TestBed::new(cfg, MicroBench::Hypercall, iters);
        // Warm up past the lazy Stage-2 faults, then measure with the
        // full per-kind breakdown.
        let _ = tb.run(iters);
        let c = &tb.m.counter;
        println!("{name}:");
        println!("  total traps recorded : {}", c.traps_total());
        for kind in [
            TrapKind::Hvc,
            TrapKind::SysReg,
            TrapKind::Eret,
            TrapKind::Stage2Abort,
            TrapKind::Irq,
        ] {
            let n = c.traps_of(kind);
            if n > 0 {
                println!("    {kind:?}: {n}");
            }
        }
        println!();
    }

    println!("Reading the table: on ARMv8.3 the SysReg row dominates — the guest");
    println!("hypervisor's world-switch register accesses. NEVE removes almost all");
    println!("of them (deferred to the access page / redirected to EL1), leaving the");
    println!("hvc itself, the erets, and the few trap-on-write control registers.");
}
