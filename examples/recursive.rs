//! Recursive virtualization (paper Section 6.2): emulating a guest
//! hypervisor's own `VNCR_EL2`.
//!
//! With NEVE, an L1 guest hypervisor can itself offer NEVE to an L2
//! guest hypervisor: the L0 host translates the deferred-access-page
//! address the L1 hypervisor programmed (an L1 IPA) into a machine
//! address and installs it in the *hardware* `VNCR_EL2`, so the L2
//! hypervisor's register accesses hit memory the L1 hypervisor owns —
//! no emulation fidelity or trap behaviour is lost at any depth.
//!
//! ```sh
//! cargo run --example recursive
//! ```

use neve_sim::memsim::{walk, Access, FrameAlloc, PageTable, Perms, PhysMem};
use neve_sim::neve::{virtualize_vncr, DeferredAccessPage, VncrEl2};
use neve_sim::sysreg::SysReg;

fn main() {
    println!("Recursive NEVE: virtualizing a guest hypervisor's VNCR_EL2");
    println!("===========================================================\n");

    // The L0 host's Stage-2 table maps the L1 VM's physical address
    // space; the L1 hypervisor's page at IPA 0x4000_0000 lives at
    // machine address 0x8800_3000.
    let mut mem = PhysMem::new(1 << 32);
    let mut frames = FrameAlloc::new(0x0100_0000, 0x10_0000);
    let host_s2 = PageTable::new(&mut mem, &mut frames);
    host_s2.map(&mut mem, &mut frames, 0x4000_0000, 0x8800_3000, Perms::RW);

    // The L1 guest hypervisor programs its (virtual) VNCR_EL2 for the
    // L2 guest hypervisor it hosts.
    let l1_vncr = VncrEl2::enabled_at(0x4000_0000).expect("page aligned");
    println!(
        "L1 guest hypervisor wrote VNCR_EL2 = {:#x} (an L1 IPA)",
        l1_vncr.raw()
    );

    // The L0 host emulates: translate the IPA through its Stage-2 and
    // install the machine address in hardware (Section 6.2).
    let hw_vncr = virtualize_vncr(l1_vncr, |ipa| {
        walk(&mem, host_s2, ipa, Access::Read).ok().map(|t| t.pa)
    })
    .expect("translation succeeds");
    println!(
        "L0 host installs hardware VNCR_EL2 = {:#x} (a machine PA)\n",
        hw_vncr.raw()
    );
    assert_eq!(hw_vncr.baddr(), 0x8800_3000);

    // The L2 guest hypervisor's deferred accesses now land in L1-owned
    // memory. Simulate one: an access to HCR_EL2 writes the slot...
    let mut page = DeferredAccessPage::new();
    page.write(SysReg::HcrEl2, 0x8000_0001);
    // ...and the L1 hypervisor reads the same value back *directly from
    // its own memory*, no traps anywhere:
    let value = page.read(SysReg::HcrEl2).unwrap();
    println!("L2 hypervisor deferred-writes vHCR_EL2 = {value:#x}");
    println!("L1 hypervisor reads it from its own page: {value:#x} — no trap taken");

    // Error paths the architecture mandates (Section 6.3): unmapped or
    // torn mappings must fault rather than redirect into the weeds.
    let bad = VncrEl2::enabled_at(0x7777_7000).unwrap();
    let err = virtualize_vncr(bad, |ipa| {
        walk(&mem, host_s2, ipa, Access::Read).ok().map(|t| t.pa)
    })
    .unwrap_err();
    println!("\nUnmapped L1 page correctly faults: {err}");
    println!("\nRecursion therefore composes: each level only ever emulates the next.");
}
