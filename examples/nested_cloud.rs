//! An IaaS operator's view: which workloads survive nesting?
//!
//! The paper's motivating scenario (Section 1) is deploying hypervisors
//! *inside* cloud VMs. This example regenerates the Figure 2 workload
//! overheads and answers the operator's question for each workload and
//! architecture: is the nested overhead within a 2x budget?
//!
//! ```sh
//! cargo run --example nested_cloud
//! ```

use neve_sim::prelude::*;
use neve_sim::workloads::apps;

fn main() {
    println!("Running every microbenchmark on every configuration (a minute)...\n");
    let matrix = MicroMatrix::measure();
    let rows = apps::figure2(&matrix);

    let budget = 2.0;
    println!("Workload placement report (overhead budget: {budget:.1}x native)");
    println!("==============================================================\n");
    println!(
        "{:<12} {:>16} {:>16} {:>16}",
        "Workload", "ARMv8.3 nested", "NEVE nested", "x86 nested"
    );
    let pick =
        |r: &apps::WorkloadRow, c: Config| r.overheads.iter().find(|(k, _)| *k == c).unwrap().1;
    let verdict = |o: f64| {
        if o <= budget {
            format!("{o:>6.2}x  OK   ")
        } else if o >= 40.0 {
            "  >40x  FAIL ".to_string()
        } else {
            format!("{o:>6.2}x  over ")
        }
    };
    let mut neve_ok = 0;
    let mut v83_ok = 0;
    for r in &rows {
        let v83 = pick(r, Config::ArmNestedV83);
        let neve = pick(r, Config::ArmNestedNeve);
        let x86 = pick(r, Config::X86Nested);
        if v83 <= budget {
            v83_ok += 1;
        }
        if neve <= budget {
            neve_ok += 1;
        }
        println!(
            "{:<12} {:>16} {:>16} {:>16}",
            r.name,
            verdict(v83),
            verdict(neve),
            verdict(x86)
        );
    }
    println!();
    println!("Within budget: {v83_ok}/10 workloads on ARMv8.3, {neve_ok}/10 with NEVE.");
    println!("The paper's conclusion, operationally: trap-and-emulate nesting is not");
    println!("deployable for I/O workloads on ARMv8.3; NEVE makes nesting a viable");
    println!("product feature, at overheads comparable to (and sometimes below) x86.");
}
