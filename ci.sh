#!/bin/sh
# Repository CI gate: formatting, lints, and the full test suite.
# Everything runs offline; the workspace has no network dependencies.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --examples"
cargo build --workspace --examples --offline

echo "==> cargo test"
cargo test --workspace -q --offline

echo "==> fault-campaign smoke (deterministic)"
cargo run -q -p neve-cli --offline --bin neve -- faults --smoke

echo "==> fuzz-campaign smoke (snapshot/restore + oracle stack, double-run byte-identity)"
cargo run -q -p neve-cli --offline --bin neve -- fuzz --smoke

echo "==> fuzz corpus hygiene (every persisted reproducer must be minimized)"
if grep -rl '"minimized": false' results/fuzz_corpus/ 2>/dev/null; then
    echo "unminimized reproducer(s) left in results/fuzz_corpus/ (listed above)" >&2
    exit 1
fi

echo "==> correctness oracles (differential + engine lockstep + trap algebra + golden tables)"
cargo run -q -p neve-cli --offline --bin neve -- check --smoke

echo "==> consolidation smoke (event-wheel tick rig, double-run + --jobs byte-identity)"
micro_md5_before=$(md5sum results/micro_matrix.json)
cargo run -q -p neve-cli --offline --bin neve -- consolidate --smoke
echo "$micro_md5_before" | md5sum -c --quiet - || {
    echo "results/micro_matrix.json changed under the consolidation rig" >&2
    exit 1
}

echo "==> throughput smoke (matrix byte-identity + steps/sec)"
cargo run -q -p neve-bench --offline --release --bin sim_throughput -- --smoke

echo "==> throughput regression guard (fresh vs recorded, >20% fails)"
cargo run -q -p neve-bench --offline --release --bin sim_throughput -- --guard --samples 5

echo "CI green."
