#!/bin/sh
# Repository CI gate: formatting, lints, and the full test suite.
# Everything runs offline; the workspace has no network dependencies.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --examples"
cargo build --workspace --examples --offline

echo "==> cargo test"
cargo test --workspace -q --offline

echo "==> fault-campaign smoke (deterministic)"
cargo run -q -p neve-cli --offline --bin neve -- faults --smoke

echo "==> fuzz-campaign smoke (snapshot/restore + oracle stack, double-run byte-identity)"
cargo run -q -p neve-cli --offline --bin neve -- fuzz --smoke

echo "==> fuzz corpus hygiene (every persisted reproducer must be minimized)"
if grep -rl '"minimized": false' results/fuzz_corpus/ 2>/dev/null; then
    echo "unminimized reproducer(s) left in results/fuzz_corpus/ (listed above)" >&2
    exit 1
fi

echo "==> correctness oracles (differential + engine lockstep + trap algebra + golden tables)"
cargo run -q -p neve-cli --offline --bin neve -- check --smoke

echo "==> consolidation smoke (event-wheel tick rig, double-run + --jobs byte-identity)"
micro_md5_before=$(md5sum results/micro_matrix.json)
cargo run -q -p neve-cli --offline --bin neve -- consolidate --smoke
echo "$micro_md5_before" | md5sum -c --quiet - || {
    echo "results/micro_matrix.json changed under the consolidation rig" >&2
    exit 1
}

echo "==> serve smoke (coalescing + matrix byte-identity + budget containment)"
micro_md5_before=$(md5sum results/micro_matrix.json)
cargo run -q -p neve-cli --offline --release --bin neve -- serve --smoke
# A live two-request session: the second identical request must be
# served entirely from the store (never re-measured), and the streamed
# full-grid matrix must be the cache file verbatim.
serve_log=$(printf '%s\n' \
    '{"id":"a","configs":["vm","x86-vm"],"benches":["hypercall","eoi"]}' \
    '{"id":"b","configs":["vm","x86-vm"],"benches":["hypercall","eoi"]}' \
    '{"id":"g"}' \
    | cargo run -q -p neve-cli --offline --release --bin neve -- serve --jobs 2)
if printf '%s\n' "$serve_log" | grep '"id":"b"' | grep -q '"source":"measured"'; then
    echo "serve: the second identical request re-measured a coalesced cell" >&2
    exit 1
fi
disk_cells=$(printf '%s\n' "$serve_log" | grep -c '"source":"disk"') || disk_cells=0
if [ "$disk_cells" -ne 28 ]; then
    echo "serve: full-grid request streamed $disk_cells disk cells, expected 28" >&2
    exit 1
fi
echo "$micro_md5_before" | md5sum -c --quiet - || {
    echo "results/micro_matrix.json changed under the serve engine" >&2
    exit 1
}

echo "==> throughput smoke (matrix byte-identity + steps/sec)"
cargo run -q -p neve-bench --offline --release --bin sim_throughput -- --smoke

echo "==> throughput regression guard (fresh vs recorded, >20% fails)"
cargo run -q -p neve-bench --offline --release --bin sim_throughput -- --guard --samples 5

echo "CI green."
