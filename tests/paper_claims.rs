//! The paper's headline claims, asserted end-to-end.
//!
//! Each test quotes the claim it checks. These are the acceptance tests
//! of the reproduction: if one fails, EXPERIMENTS.md is out of date.

use neve_sim::prelude::*;
use neve_sim::workloads::apps;
use std::sync::OnceLock;

fn matrix() -> &'static MicroMatrix {
    static M: OnceLock<MicroMatrix> = OnceLock::new();
    M.get_or_init(MicroMatrix::measure)
}

fn hypercall(c: Config) -> (u64, f64) {
    let p = matrix().costs(c).hypercall;
    (p.cycles, p.traps)
}

#[test]
fn claim_arm_v8_3_nested_performance_is_much_worse_than_x86() {
    // Abstract: "despite similarities between ARM and x86 nested
    // virtualization support, performance on ARM is much worse than on
    // x86" — relative to each platform's own VM baseline.
    let arm_rel = hypercall(Config::ArmNestedV83).0 as f64 / hypercall(Config::ArmVm).0 as f64;
    let x86_rel = hypercall(Config::X86Nested).0 as f64 / hypercall(Config::X86Vm).0 as f64;
    assert!(
        arm_rel > 3.0 * x86_rel,
        "ARM {arm_rel:.0}x vs x86 {x86_rel:.0}x (paper: 155x vs 31x)"
    );
}

#[test]
fn claim_exit_multiplication_is_the_cause() {
    // Section 5: "While Hypercall only causes a single trap when
    // running in a VM, it causes 126 and 82 traps ... using a non-VHE
    // and VHE guest hypervisor".
    let (_, vm_traps) = hypercall(Config::ArmVm);
    let (_, nonvhe) = hypercall(Config::ArmNestedV83);
    let (_, vhe) = hypercall(Config::ArmNestedV83Vhe);
    assert!((vm_traps - 1.0).abs() < 0.05);
    assert!(nonvhe > 80.0, "{nonvhe}");
    assert!(vhe > 50.0 && vhe < nonvhe, "{vhe}");
}

#[test]
fn claim_neve_cuts_traps_more_than_six_times() {
    // Section 7.1: "NEVE reduces the number of traps by more than six
    // times compared to ARMv8.3".
    let (_, v83) = hypercall(Config::ArmNestedV83);
    let (_, neve) = hypercall(Config::ArmNestedNeve);
    assert!(v83 / neve > 6.0, "{v83} / {neve}");
}

#[test]
fn claim_neve_up_to_5x_faster_than_v8_3() {
    // Section 7.1: "NEVE provides up to 5 times faster performance
    // than ARMv8.3 for both non-VHE and VHE guest hypervisors."
    let (v83, _) = hypercall(Config::ArmNestedV83);
    let (neve, _) = hypercall(Config::ArmNestedNeve);
    let speedup = v83 as f64 / neve as f64;
    assert!((3.0..8.0).contains(&speedup), "{speedup}");
}

#[test]
fn claim_neve_overhead_is_comparable_to_x86() {
    // Section 7.1: "comparing the relative performance of a nested vs
    // non-nested VM on each platform, we see that a guest hypervisor
    // using NEVE has similar overhead to x86" (34-37x vs 31x).
    let neve_rel = hypercall(Config::ArmNestedNeve).0 as f64 / hypercall(Config::ArmVm).0 as f64;
    let x86_rel = hypercall(Config::X86Nested).0 as f64 / hypercall(Config::X86Vm).0 as f64;
    let ratio = neve_rel / x86_rel;
    assert!(
        (0.4..2.5).contains(&ratio),
        "NEVE {neve_rel:.0}x vs x86 {x86_rel:.0}x"
    );
}

#[test]
fn claim_virtual_eoi_costs_the_same_at_every_level() {
    // Tables 1/6: Virtual EOI is 71 cycles on ARM and 316 on x86,
    // independent of nesting — the hardware virtual interrupt
    // interface needs no hypervisor.
    let m = matrix();
    let arm_vm = m.costs(Config::ArmVm).virtual_eoi;
    let arm_v83 = m.costs(Config::ArmNestedV83).virtual_eoi;
    let arm_neve = m.costs(Config::ArmNestedNeve).virtual_eoi;
    assert_eq!(arm_vm.cycles, arm_v83.cycles);
    assert_eq!(arm_vm.cycles, arm_neve.cycles);
    assert_eq!(arm_vm.traps, 0.0);
    let x86_vm = m.costs(Config::X86Vm).virtual_eoi;
    let x86_n = m.costs(Config::X86Nested).virtual_eoi;
    assert_eq!(x86_vm.cycles, x86_n.cycles);
    // ARM's virtual EOI is cheaper than x86's (71 vs 316).
    assert!(arm_vm.cycles < x86_vm.cycles);
}

#[test]
fn claim_order_of_magnitude_application_improvement() {
    // Abstract: "NEVE allows hypervisors running real application
    // workloads to provide an order of magnitude better performance
    // than current ARM nested virtualization support."
    let rows = apps::figure2(matrix());
    let memcached = rows.iter().find(|r| r.name == "Memcached").unwrap();
    let get = |c: Config| memcached.overheads.iter().find(|(k, _)| *k == c).unwrap().1;
    let improvement = get(Config::ArmNestedV83) / get(Config::ArmNestedNeve);
    assert!(improvement > 10.0, "{improvement}");
}

#[test]
fn claim_up_to_three_times_less_overhead_than_x86_on_apps() {
    // Abstract: "up to three times less overhead than x86 nested
    // virtualization" on application workloads (the Memcached case:
    // paper 2.5x vs 8x).
    let rows = apps::figure2(matrix());
    let best = rows
        .iter()
        .map(|r| {
            let get = |c: Config| r.overheads.iter().find(|(k, _)| *k == c).unwrap().1;
            (get(Config::X86Nested) - 1.0) / (get(Config::ArmNestedNeve) - 1.0)
        })
        .fold(0.0f64, f64::max);
    assert!(
        best > 2.0,
        "best x86/NEVE overhead ratio {best:.2} (paper: ~3x)"
    );
}

#[test]
fn claim_paravirtualization_measures_future_hardware_faithfully() {
    // Sections 3 and 5: the hvc-replacement methodology reproduces
    // ARMv8.3 trap behaviour on ARMv8.0 hardware.
    let native = {
        let cfg = ArmConfig::Nested {
            guest_vhe: false,
            neve: false,
            para: ParaMode::None,
        };
        let mut tb = TestBed::new(cfg, MicroBench::Hypercall, 15);
        tb.run(15)
    };
    let para = {
        let cfg = ArmConfig::Nested {
            guest_vhe: false,
            neve: false,
            para: ParaMode::HvcV83,
        };
        let mut tb = TestBed::new(cfg, MicroBench::Hypercall, 15);
        tb.run(15)
    };
    assert_eq!(native.traps, para.traps, "trap counts must match exactly");
    let dc = (native.cycles as f64 - para.cycles as f64).abs() / native.cycles as f64;
    assert!(dc < 0.05, "cycle difference {dc:.3} exceeds 5%");
}
