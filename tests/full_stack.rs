//! Cross-crate integration tests over the umbrella facade: the whole
//! stack, driven the way the examples and benches drive it.

use neve_sim::prelude::*;
use neve_sim::workloads::{apps, tables};

#[test]
fn quickstart_flow_works_through_the_facade() {
    let cfg = ArmConfig::Nested {
        guest_vhe: false,
        neve: true,
        para: ParaMode::None,
    };
    let mut tb = TestBed::new(cfg, MicroBench::Hypercall, 10);
    let p = tb.run(10);
    assert!(p.traps > 0.0 && p.traps < 25.0);
    assert!(p.cycles > 10_000);
}

#[test]
fn x86_flow_works_through_the_facade() {
    let mut tb = X86TestBed::new(
        X86Config::Nested { shadowing: true },
        X86Bench::Hypercall,
        10,
    );
    let p = tb.run(10);
    assert!((4.0..7.0).contains(&p.traps));
}

#[test]
fn tables_and_figure_generate_consistently() {
    let m = MicroMatrix::measure();
    let t1 = tables::table1(&m);
    let t6 = tables::table6(&m);
    let t7 = tables::table7(&m);
    // The shared columns of Table 1 and Table 6 are the same data.
    let v83_in_t1 = t1[0]
        .cells
        .iter()
        .find(|cell| cell.config == Config::ArmNestedV83)
        .unwrap()
        .value;
    let v83_in_t6 = t6[0]
        .cells
        .iter()
        .find(|cell| cell.config == Config::ArmNestedV83)
        .unwrap()
        .value;
    assert_eq!(v83_in_t1, v83_in_t6);
    // Table 7 trap counts are integers within sane bounds, all measured.
    for row in &t7 {
        for cell in &row.cells {
            assert!(cell.value < 400);
            assert!(!cell.failed);
        }
    }
    // Figure 2 uses the same matrix.
    let fig = apps::figure2(&m);
    assert_eq!(fig.len(), 10);
}

#[test]
fn machine_is_reusable_after_a_run() {
    // Running one benchmark must not poison the machine for direct use.
    let mut tb = TestBed::new(ArmConfig::Vm, MicroBench::Hypercall, 5);
    let _ = tb.run(5);
    // The payload halted; hardware state is still inspectable.
    assert_eq!(tb.m.core(0).pstate.el, 1);
    assert!(tb.m.counter.cycles() > 0);
    assert!(tb.hyp.l0_hypercalls >= 5);
}

#[test]
fn deterministic_across_identical_runs() {
    // The simulator is deterministic: identical configurations produce
    // identical cycle and trap counts (what makes small iteration
    // counts exact).
    let run = || {
        let cfg = ArmConfig::Nested {
            guest_vhe: true,
            neve: true,
            para: ParaMode::None,
        };
        let mut tb = TestBed::new(cfg, MicroBench::DeviceIo, 12);
        tb.run(12)
    };
    let a = run();
    let b = run();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.traps, b.traps);
}
