//! `neve` — the command-line front end.
//!
//! ```text
//! neve micro  [--bench B] [--config C] [--iters N]   one microbenchmark
//! neve tables                                        Tables 1, 6 and 7
//! neve figure2                                       Figure 2
//! neve trace  [--config C] [--limit N]               world-switch anatomy
//! neve help                                          this text
//! ```
//!
//! Configurations: `vm`, `v83`, `v83-vhe`, `neve`, `neve-vhe`,
//! `v83-xen`, `neve-xen`, `x86-vm`, `x86-nested`, `x86-noshadow`.
//! Benchmarks: `hypercall`, `devio`, `ipi`, `eoi`.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("neve: {msg}");
            eprintln!("run `neve help` for usage");
            ExitCode::FAILURE
        }
    }
}
