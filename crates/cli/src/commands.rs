//! Subcommand implementations.

use crate::args;
use neve_armv8::trace::{Trace, TraceEvent};
use neve_kvmarm::{ArmConfig, MicroBench, ParaMode, TestBed};
use neve_workloads::cache::{self, MatrixSource};
use neve_workloads::platforms::MicroMatrix;
use neve_workloads::{apps, tables};
use neve_x86vt::testbed::{X86Bench, X86Config, X86TestBed};

/// A resolved platform configuration.
enum Target {
    Arm { cfg: ArmConfig, xen: bool },
    X86(X86Config),
}

fn target(name: &str) -> Result<Target, String> {
    let nested = |vhe, neve| ArmConfig::Nested {
        guest_vhe: vhe,
        neve,
        para: ParaMode::None,
    };
    Ok(match name {
        "vm" => Target::Arm {
            cfg: ArmConfig::Vm,
            xen: false,
        },
        "v83" => Target::Arm {
            cfg: nested(false, false),
            xen: false,
        },
        "v83-vhe" => Target::Arm {
            cfg: nested(true, false),
            xen: false,
        },
        "neve" => Target::Arm {
            cfg: nested(false, true),
            xen: false,
        },
        "neve-vhe" => Target::Arm {
            cfg: nested(true, true),
            xen: false,
        },
        "v83-xen" => Target::Arm {
            cfg: nested(false, false),
            xen: true,
        },
        "neve-xen" => Target::Arm {
            cfg: nested(false, true),
            xen: true,
        },
        "x86-vm" => Target::X86(X86Config::Vm),
        "x86-nested" => Target::X86(X86Config::Nested { shadowing: true }),
        "x86-noshadow" => Target::X86(X86Config::Nested { shadowing: false }),
        other => return Err(format!("unknown config `{other}`")),
    })
}

fn arm_bench(name: &str) -> Result<MicroBench, String> {
    Ok(match name {
        "hypercall" => MicroBench::Hypercall,
        "devio" => MicroBench::DeviceIo,
        "ipi" => MicroBench::VirtualIpi,
        "eoi" => MicroBench::VirtualEoi,
        other => return Err(format!("unknown benchmark `{other}`")),
    })
}

fn x86_bench(name: &str) -> Result<X86Bench, String> {
    Ok(match name {
        "hypercall" => X86Bench::Hypercall,
        "devio" => X86Bench::DeviceIo,
        "ipi" => X86Bench::VirtualIpi,
        "eoi" => X86Bench::VirtualEoi,
        other => return Err(format!("unknown benchmark `{other}`")),
    })
}

/// Routes a parsed command line.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let p = args::parse(argv)?;
    match p.command.as_str() {
        "micro" => micro(&p),
        "tables" => tables_cmd(&p),
        "figure2" => figure2_cmd(&p),
        "trace" => trace_cmd(&p),
        "help" | "-h" | "--help" => {
            print!("{}", HELP);
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

const HELP: &str = "\
neve - the NEVE nested-virtualization simulator

USAGE:
    neve micro   [--bench B] [--config C] [--iters N]   run one microbenchmark
    neve tables  [--jobs N] [--no-cache]                regenerate Tables 1/6/7
    neve figure2 [--explain WORKLOAD] [--jobs N] [--no-cache]
                                                        regenerate Figure 2
    neve trace   [--config C] [--limit N]               world-switch anatomy
    neve help                                           this text

CONFIGS:    vm v83 v83-vhe neve neve-vhe v83-xen neve-xen
            x86-vm x86-nested x86-noshadow
BENCHMARKS: hypercall devio ipi eoi

Table and figure commands measure the 28-cell evaluation matrix in
parallel (--jobs N workers, default: available cores) and cache the
results keyed by the cost-model fingerprint; pass --no-cache to force
a fresh measurement.
";

fn micro(p: &args::Parsed) -> Result<(), String> {
    let iters = p.get_u64("iters", 25)?.max(1);
    let bench = p.get("bench", "hypercall");
    let cfg = p.get("config", "neve");
    let result = match target(cfg)? {
        Target::Arm { cfg: ac, xen } => {
            let b = arm_bench(bench)?;
            let mut tb = if xen {
                TestBed::new_xen(ac, b, iters)
            } else {
                TestBed::new(ac, b, iters)
            };
            tb.run(iters)
        }
        Target::X86(xc) => {
            let b = x86_bench(bench)?;
            let mut tb = X86TestBed::new(xc, b, iters);
            tb.run(iters)
        }
    };
    println!(
        "{bench} on {cfg}: {} cycles/op, {:.1} traps/op ({iters} iterations)",
        result.cycles, result.traps
    );
    Ok(())
}

/// Resolves the shared evaluation matrix for the table/figure commands:
/// cache hit when `results/micro_matrix.json` matches the current cost
/// model, a parallel re-measurement otherwise.
fn matrix(p: &args::Parsed) -> Result<MicroMatrix, String> {
    let default_jobs = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1) as u64;
    let jobs = p.get_u64("jobs", default_jobs)?.max(1) as usize;
    let use_cache = !p.has("no-cache");
    let (m, source) = cache::load_or_measure(jobs, use_cache);
    match source {
        MatrixSource::Cache => {
            println!(
                "Loaded measurements from {} (--no-cache to refresh).\n",
                cache::CACHE_PATH
            );
        }
        MatrixSource::Measured => {
            println!(
                "Measured every configuration ({jobs} worker threads); cached at {}.\n",
                cache::CACHE_PATH
            );
        }
    }
    Ok(m)
}

fn tables_cmd(p: &args::Parsed) -> Result<(), String> {
    let m = matrix(p)?;
    println!("Table 1 (cycle counts):");
    println!("{}", tables::render(&tables::table1(&m)));
    println!("Table 6 (cycle counts with NEVE):");
    println!("{}", tables::render(&tables::table6(&m)));
    println!("Table 7 (trap counts):");
    println!("{}", tables::render(&tables::table7(&m)));
    Ok(())
}

fn figure2_cmd(p: &args::Parsed) -> Result<(), String> {
    let m = matrix(p)?;
    println!("{}", apps::render(&apps::figure2(&m)));
    if let Some(workload) = p.options.get("explain") {
        let Some(w) = apps::WORKLOADS
            .iter()
            .find(|w| w.name.eq_ignore_ascii_case(workload))
        else {
            return Err(format!("unknown workload `{workload}`"));
        };
        println!("\nOverhead composition for {}:", w.name);
        println!(
            "{:<22} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
            "config", "hc%", "io%", "ipi%", "irq%", "kick%", "tick%"
        );
        for c in neve_workloads::platforms::Config::all() {
            let b = apps::breakdown(w, c, &m);
            println!(
                "{:<22} {:>5.0}% {:>5.0}% {:>5.0}% {:>5.0}% {:>5.0}% {:>5.0}%",
                c.label(),
                b.hypercalls * 100.0,
                b.device_ios * 100.0,
                b.ipis * 100.0,
                b.net_irqs * 100.0,
                b.virtio_kicks * 100.0,
                b.feedback * 100.0
            );
        }
    }
    Ok(())
}

/// Traces one nested hypercall round trip and prints every architectural
/// event — the paper's Section 5 prose as an event log.
fn trace_cmd(p: &args::Parsed) -> Result<(), String> {
    let cfg_name = p.get("config", "v83");
    let limit = p.get_u64("limit", 2000)? as usize;
    let Target::Arm { cfg, xen } = target(cfg_name)? else {
        return Err("trace supports the ARM configurations".into());
    };
    let bench = MicroBench::Hypercall;
    let iters = 12;
    let mut tb = if xen {
        TestBed::new_xen(cfg, bench, iters)
    } else {
        TestBed::new(cfg, bench, iters)
    };
    // Warm up past the lazy faults so the trace shows steady state, then
    // attach the trace and capture one full round trip.
    let warm = tb.run(iters);
    println!(
        "steady state on {cfg_name}: {} cycles/op, {:.1} traps/op",
        warm.cycles, warm.traps
    );
    println!("re-running with tracing for one round trip:\n");

    let mut tb = if xen {
        TestBed::new_xen(cfg, bench, iters)
    } else {
        TestBed::new(cfg, bench, iters)
    };
    tb.m.attach_trace(limit);
    let _ = tb.run(iters);
    let trace = tb.m.trace.take().expect("trace attached");
    print_one_round_trip(&trace);
    Ok(())
}

/// Prints the retained events of the last captured hypercall round trip:
/// from the final `Hvc` the payload executed back to the payload.
fn print_one_round_trip(trace: &Trace) {
    // Find the last payload-level Hvc (EL1 at the payload's address
    // range) and print from there.
    let events: Vec<&TraceEvent> = trace.events().collect();
    let mut start = 0;
    for (i, ev) in events.iter().enumerate() {
        if let TraceEvent::Retired {
            instr: neve_armv8::isa::Instr::Hvc(0),
            pc,
            ..
        } = ev
        {
            if *pc >= neve_kvmarm::layout::L2_PAYLOAD_BASE
                || *pc >= neve_kvmarm::layout::L1_PAYLOAD_BASE
            {
                start = i;
            }
        }
    }
    let mut shown = 0;
    for ev in &events[start..] {
        println!("{}", Trace::render(ev));
        shown += 1;
        if shown > 400 {
            println!("... (truncated)");
            break;
        }
    }
    println!(
        "\n{} events shown ({} captured in total).",
        shown, trace.total
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(a: &[&str]) -> Vec<String> {
        a.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_is_always_available() {
        assert!(dispatch(&sv(&["help"])).is_ok());
        assert!(dispatch(&[]).is_ok());
    }

    #[test]
    fn unknown_subcommand_is_an_error() {
        assert!(dispatch(&sv(&["frobnicate"])).is_err());
    }

    #[test]
    fn micro_runs_on_every_config() {
        for cfg in ["vm", "v83", "neve", "v83-xen", "x86-vm", "x86-nested"] {
            dispatch(&sv(&[
                "micro",
                "--config",
                cfg,
                "--bench",
                "hypercall",
                "--iters",
                "5",
            ]))
            .unwrap_or_else(|e| panic!("{cfg}: {e}"));
        }
    }

    #[test]
    fn bad_config_and_bench_are_reported() {
        assert!(dispatch(&sv(&["micro", "--config", "pdp11"])).is_err());
        assert!(dispatch(&sv(&["micro", "--bench", "quantum"])).is_err());
    }

    #[test]
    fn trace_rejects_x86() {
        assert!(dispatch(&sv(&["trace", "--config", "x86-vm"])).is_err());
    }
}
