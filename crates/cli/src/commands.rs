//! Subcommand implementations.

use crate::args;
use neve_armv8::trace::{Trace, TraceEvent, MAX_CAPACITY};
use neve_cycles::counter::Measured;
use neve_json::JsonValue;
use neve_kvmarm::{ArmConfig, MicroBench, ParaMode, TestBed};
use neve_workloads::cache::{self, MatrixSource};
use neve_workloads::platforms::{MicroMatrix, PhaseStat};
use neve_workloads::{apps, provenance, tables};
use neve_x86vt::testbed::{X86Bench, X86Config, X86TestBed};
use std::collections::BTreeMap;

/// A resolved platform configuration.
enum Target {
    Arm { cfg: ArmConfig, xen: bool },
    X86(X86Config),
}

fn target(name: &str) -> Result<Target, String> {
    let nested = |vhe, neve| ArmConfig::Nested {
        guest_vhe: vhe,
        neve,
        para: ParaMode::None,
    };
    Ok(match name {
        "vm" => Target::Arm {
            cfg: ArmConfig::Vm,
            xen: false,
        },
        "v83" | "v8.3" | "v8.3-nested" => Target::Arm {
            cfg: nested(false, false),
            xen: false,
        },
        "v83-vhe" | "v8.3-nested-vhe" => Target::Arm {
            cfg: nested(true, false),
            xen: false,
        },
        "neve" | "neve-nested" => Target::Arm {
            cfg: nested(false, true),
            xen: false,
        },
        "neve-vhe" | "neve-nested-vhe" => Target::Arm {
            cfg: nested(true, true),
            xen: false,
        },
        "v83-xen" => Target::Arm {
            cfg: nested(false, false),
            xen: true,
        },
        "neve-xen" => Target::Arm {
            cfg: nested(false, true),
            xen: true,
        },
        "x86-vm" => Target::X86(X86Config::Vm),
        "x86-nested" => Target::X86(X86Config::Nested { shadowing: true }),
        "x86-noshadow" => Target::X86(X86Config::Nested { shadowing: false }),
        other => return Err(format!("unknown config `{other}`")),
    })
}

fn arm_bench(name: &str) -> Result<MicroBench, String> {
    Ok(match name {
        "hypercall" => MicroBench::Hypercall,
        "devio" | "device_io" => MicroBench::DeviceIo,
        "ipi" | "virtual_ipi" => MicroBench::VirtualIpi,
        "eoi" | "virtual_eoi" => MicroBench::VirtualEoi,
        other => return Err(format!("unknown benchmark `{other}`")),
    })
}

fn x86_bench(name: &str) -> Result<X86Bench, String> {
    Ok(match name {
        "hypercall" => X86Bench::Hypercall,
        "devio" | "device_io" => X86Bench::DeviceIo,
        "ipi" | "virtual_ipi" => X86Bench::VirtualIpi,
        "eoi" | "virtual_eoi" => X86Bench::VirtualEoi,
        other => return Err(format!("unknown benchmark `{other}`")),
    })
}

/// Routes a parsed command line.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let p = args::parse(argv)?;
    match p.command.as_str() {
        "micro" => micro(&p),
        "tables" => tables_cmd(&p),
        "figure2" => figure2_cmd(&p),
        "trace" => trace_cmd(&p),
        "faults" => faults_cmd(&p),
        "fuzz" => fuzz_cmd(&p),
        "check" => check_cmd(&p),
        "bench-sim" => bench_sim_cmd(&p),
        "consolidate" => consolidate_cmd(&p),
        "serve" => serve_cmd(&p),
        "help" | "-h" | "--help" => {
            print!("{}", HELP);
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

const HELP: &str = "\
neve - the NEVE nested-virtualization simulator

USAGE:
    neve micro   [--bench B] [--config C] [--iters N]   run one microbenchmark
    neve tables  [--jobs N] [--no-cache]                regenerate Tables 1/6/7
    neve figure2 [--explain WORKLOAD] [--jobs N] [--no-cache]
                                                        regenerate Figure 2
    neve trace   <config> <bench> [--json] [--limit N]  world-switch anatomy
                                                        with trap provenance
    neve faults  [--seed N] [--jobs N] [--budget N] [--smoke] [--fail-fast]
                                                        fault-injection campaign
    neve fuzz    [--seed N] [--cases N] [--jobs N] [--smoke]
                 [--corpus-dir D] [--replay FILE]       coverage-guided fuzzing
                                                        with snapshot/restore
    neve check   [--smoke] [--jobs N] [--no-cache]      correctness oracles:
                                                        differential v8.3-vs-NEVE
                                                        lockstep, trap algebra,
                                                        golden-table diff
    neve bench-sim [--samples N] [--record-baseline]    host-side simulator
                   [--engine uop|interp]                throughput (steps/sec)
    neve consolidate [--jobs N] [--smoke] [--json]      multi-VM consolidation
                                                        table (VMs per host at
                                                        <=5% tick overhead)
    neve serve   [--jobs N] [--listen ADDR] [--smoke]   long-running job engine:
                 [--max-queued N] [--no-cache]          batched sweep requests
                                                        over JSONL (stdin + TCP)
    neve help                                           this text

CONFIGS:    vm v83 v83-vhe neve neve-vhe v83-xen neve-xen
            x86-vm x86-nested x86-noshadow
            (aliases: v8.3-nested v8.3-nested-vhe neve-nested ...)
BENCHMARKS: hypercall devio ipi eoi
            (aliases: device_io virtual_ipi virtual_eoi)

`neve trace` replays one ARM cell with the execution trace attached and
prints every architectural event of the last round trip (each trap
annotated with the system register that caused it and the world-switch
phase it interrupted), then the per-phase cycle/trap attribution and the
per-kind trap totals behind Table 7. --json emits the same data in the
results-cache schema.

Table and figure commands measure the 28-cell evaluation matrix in
parallel (--jobs N workers, default: available cores) and cache the
results keyed by the cost-model fingerprint; pass --no-cache to force
a fresh measurement. If any cell fails to measure, the partial results
still print (failed rows as 0) and the command exits non-zero.

`neve faults` runs a seeded fault-injection campaign over the nested
ARM cells: each built-in plan (corrupted shadow Stage-2 PTE, dropped or
doubled VNCR write, spurious trap, cycle-counter reset, chaos) is
injected at deterministic step counts and the outcome is classified as
detected (structured fault), recovered (bit-identical to the fault-free
baseline), or mis-measured (completed with silently wrong numbers).
--smoke runs a small grid twice and verifies the reports are
byte-identical; --fail-fast stops at the first detected fault and
exits non-zero.

`neve fuzz` runs the coverage-guided nested-virt fuzzing campaign:
seeded guest-hypervisor-shaped programs execute from an O(dirty-pages)
machine snapshot on three lockstep testbeds (reference interpreter and
micro-op engine on NEVE hardware, reference interpreter on ARMv8.3)
with the architectural invariant checker attached; coverage is the set
of (trap-kind x phase x EL) provenance tuples and new-coverage cases
seed a mutation round. Findings are delta-minimized and persisted as
replayable JSON reproducers under results/fuzz_corpus/;
`--replay FILE` re-runs one reproducer through the same oracle stack
and exits non-zero if it no longer re-triggers. --smoke runs a small
fixed-seed campaign twice and verifies the reports are byte-identical
(the CI gate). A completed campaign exits zero; the findings *are* the
product.

`neve check` runs the correctness oracles: ARMv8.3-NV and NEVE stacks
executed in lockstep with bit-identical architectural state demanded at
every step (the paper's semantics-preservation claim as a bug detector,
with the architectural invariant checker attached to both machines),
the trap-count algebra (NEVE never traps more than v8.3; Virtual EOI is
trap-free; every deferrable v8.3 trap is accounted as a NEVE deferral
or residual trap), and a diff of the regenerated Tables 6/7 against the
EXPERIMENTS.md golden values (cycles within 2%, trap counts exact).
--smoke restricts the differential grid to one pair for CI. Any
violation exits non-zero with a structured first-divergence report.

`neve bench-sim` measures how fast the *host* simulates each
configuration (steps/sec and ns/step — wall-clock performance of the
step engine, not simulated cycles) and writes
results/bench_throughput.json, reporting speedups against the recorded
baseline section. --record-baseline stores this run as the baseline
later runs are compared against. --engine selects the ARM step engine:
uop (the pre-decoded micro-op IR, the default) or interp (the
reference interpreter); a non-default engine prints the table without
writing the report, so the recorded numbers always describe the
default engine.

`neve consolidate` measures what an *idle* guest costs its host: each
configuration runs co-resident single-vCPU idle guests whose only
activity is the host scheduler tick (the physical EL2 timer), driven
on the discrete-event wheel so parked cores cost zero host work. From
the busy simulated cycles per tick it derives the paper's
consolidation figure — how many such idle guests one host core
carries before their ticks exceed 5% of the core — for a plain VM,
ARMv8.3 trap-and-emulate, and NEVE (non-VHE and VHE guest
hypervisors). Full runs write results/consolidate.json; --smoke runs
a reduced table twice and demands byte-identical reports (the CI
gate, also exercised across --jobs fan-outs); --json prints the
artifact instead of the table.

`neve serve` hosts the other job kinds as a long-running engine: each
stdin (or TCP, with --listen ADDR) line is a JSON request naming a job
kind (micro, faults, fuzz, consolidate, bench-sim) and its sweep axes
(configs x benches x engine x budget x fault plan). Requests decompose
into content-addressed cells scheduled across --jobs workers on a
work-stealing queue; identical cells — within one request, across
requests, or across connections — coalesce onto one computation, and
repeat queries are answered from the in-memory store or the on-disk
matrix cache. Results stream back as JSONL events (accepted, one cell
per line with its cycles/traps and provenance source, then done with
the assembled matrix or rendered report). A cell that exhausts its
--budget streams as failed while the rest of the batch completes;
submissions past --max-queued (default 1024) are refused with a
structured error. --smoke proves the coalescing, byte-identity, and
budget-containment contracts and exits non-zero on any violation.
";

fn micro(p: &args::Parsed) -> Result<(), String> {
    let iters = p.get_u64("iters", 25)?.max(1);
    let bench = p.get("bench", "hypercall");
    let cfg = p.get("config", "neve");
    let result = match target(cfg)? {
        Target::Arm { cfg: ac, xen } => {
            let b = arm_bench(bench)?;
            let mut tb = if xen {
                TestBed::new_xen(ac, b, iters)
            } else {
                TestBed::new(ac, b, iters)
            };
            tb.run(iters)
        }
        Target::X86(xc) => {
            let b = x86_bench(bench)?;
            let mut tb = X86TestBed::new(xc, b, iters);
            tb.run(iters)
        }
    };
    println!(
        "{bench} on {cfg}: {} cycles/op, {:.1} traps/op ({iters} iterations)",
        result.cycles, result.traps
    );
    Ok(())
}

/// Resolves the shared evaluation matrix for the table/figure commands:
/// cache hit when `results/micro_matrix.json` matches the current cost
/// model, a parallel re-measurement otherwise.
fn matrix(p: &args::Parsed) -> Result<MicroMatrix, String> {
    let default_jobs = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1) as u64;
    let jobs = p.get_u64("jobs", default_jobs)?.max(1) as usize;
    let use_cache = !p.has("no-cache");
    let (m, source) = cache::load_or_measure(jobs, use_cache);
    match source {
        MatrixSource::Cache => {
            println!(
                "Loaded measurements from {} (--no-cache to refresh).\n",
                cache::CACHE_PATH
            );
        }
        MatrixSource::Measured => {
            println!(
                "Measured every configuration ({jobs} worker threads); cached at {}.\n",
                cache::CACHE_PATH
            );
        }
        MatrixSource::Quarantined => {
            println!(
                "Cache was corrupt; quarantined to {}.<pid>.<seq>.corrupt and \
                 re-measured every configuration ({jobs} worker threads).\n",
                cache::CACHE_PATH
            );
        }
    }
    Ok(m)
}

/// Renders the failed cells of a partial matrix and produces the
/// non-zero-exit error the table/figure commands end with. Partial
/// results are still printed (and cached) before this runs — a faulted
/// cell degrades the report, it does not discard it.
fn failure_report(m: &MicroMatrix) -> String {
    let mut lines = vec![format!(
        "{} cell(s) failed to measure (rows above show 0 for them):",
        m.failed_cells()
    )];
    for c in m.configs() {
        for (bench, why) in m.failures(c) {
            lines.push(format!("  FAILED {} / {bench}: {why}", c.label()));
        }
    }
    lines.join("\n")
}

fn tables_cmd(p: &args::Parsed) -> Result<(), String> {
    let m = matrix(p)?;
    println!("Table 1 (cycle counts):");
    println!("{}", tables::render(&tables::table1(&m)));
    println!("Table 6 (cycle counts with NEVE):");
    println!("{}", tables::render(&tables::table6(&m)));
    println!("Table 7 (trap counts):");
    println!("{}", tables::render(&tables::table7(&m)));
    if m.has_failures() {
        return Err(failure_report(&m));
    }
    Ok(())
}

fn figure2_cmd(p: &args::Parsed) -> Result<(), String> {
    let m = matrix(p)?;
    println!("{}", apps::render(&apps::figure2(&m)));
    if let Some(workload) = p.options.get("explain") {
        let Some(w) = apps::WORKLOADS
            .iter()
            .find(|w| w.name.eq_ignore_ascii_case(workload))
        else {
            return Err(format!("unknown workload `{workload}`"));
        };
        println!("\nOverhead composition for {}:", w.name);
        println!(
            "{:<22} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
            "config", "hc%", "io%", "ipi%", "irq%", "kick%", "tick%"
        );
        for c in neve_workloads::platforms::Config::all() {
            let b = apps::breakdown(w, c, &m);
            println!(
                "{:<22} {:>5.0}% {:>5.0}% {:>5.0}% {:>5.0}% {:>5.0}% {:>5.0}%",
                c.label(),
                b.hypercalls * 100.0,
                b.device_ios * 100.0,
                b.ipis * 100.0,
                b.net_irqs * 100.0,
                b.virtio_kicks * 100.0,
                b.feedback * 100.0
            );
        }
    }
    if m.has_failures() {
        return Err(failure_report(&m));
    }
    Ok(())
}

/// Measures host-side simulator throughput (`neve bench-sim`): wall
/// clock per simulated step for every configuration, written to
/// `results/bench_throughput.json` with speedups against the recorded
/// baseline section (the same report `sim_throughput` produces).
fn bench_sim_cmd(p: &args::Parsed) -> Result<(), String> {
    use neve_armv8::Engine;
    use neve_workloads::throughput::{self, BENCH_PATH};

    let samples = p.get_u64("samples", 5)?.max(1) as usize;
    let engine = match p.get("engine", "uop") {
        "uop" => Engine::Uop,
        "interp" => Engine::Interp,
        other => return Err(format!("unknown engine `{other}` (expected uop or interp)")),
    };
    let stats = throughput::measure_all_with(samples, engine);
    let scenarios = throughput::measure_scenarios(samples);
    println!(
        "{:<20} {:>14} {:>14} {:>10}",
        "config", "steps/sec", "ns/step", "steps"
    );
    for s in &stats {
        println!(
            "{:<20} {:>14.0} {:>14.1} {:>10}",
            s.config.label(),
            s.steps_per_sec(),
            s.ns_per_step(),
            s.steps
        );
    }
    println!("\n{:<20} {:>14} {:>10}", "scenario", "steps/sec", "steps");
    for s in &scenarios {
        println!(
            "{:<20} {:>14.0} {:>10}",
            s.label,
            s.steps_per_sec(),
            s.steps
        );
    }
    if engine != Engine::default() {
        // Manual experiment: the recorded report must keep describing
        // the default engine.
        println!("\n--engine {engine:?}: report not written");
        return Ok(());
    }
    let existing = std::fs::read_to_string(BENCH_PATH).ok();
    let text = if p.has("record-baseline") {
        throughput::report_json_with_scenarios(&stats, Some(&stats), &scenarios)
    } else {
        let baseline = existing
            .as_deref()
            .and_then(|t| throughput::section_from_report(t, "baseline"));
        throughput::report_json_with_scenarios(&stats, baseline.as_deref(), &scenarios)
    };
    let path = std::path::Path::new(BENCH_PATH);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    cache::write_atomically(path, &text)
        .map_err(|e| format!("failed to write {BENCH_PATH}: {e}"))?;
    println!("\nwrote {BENCH_PATH}");
    Ok(())
}

/// Runs the deterministic fault-injection campaign (`neve faults`).
///
/// With `--smoke` the (small) campaign is run twice with the same seed
/// and the two reports are compared byte-for-byte — the CI determinism
/// gate. `--fail-fast` stops at the first detected fault and exits
/// non-zero so scripts can bisect. Mis-measured entries are findings
/// the report exists to surface, not harness failures, so a completed
/// campaign exits zero.
fn faults_cmd(p: &args::Parsed) -> Result<(), String> {
    let default_jobs = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1) as u64;
    let spec = neve_workloads::CampaignSpec {
        seed: p.get_u64("seed", 2017)?,
        smoke: p.has("smoke"),
        jobs: p.get_u64("jobs", default_jobs)?.max(1) as usize,
        fail_fast: p.has("fail-fast"),
        step_budget: match p.get_u64("budget", 0)? {
            0 => None,
            b => Some(b),
        },
    };
    let report = neve_workloads::run_campaign(&spec)?;
    print!("{}", report.render());
    if spec.smoke {
        let again = neve_workloads::run_campaign(&spec)?;
        if again.render() != report.render() {
            return Err(
                "fault campaign is not deterministic: two runs with the same \
                        seed produced different reports"
                    .into(),
            );
        }
        println!("determinism check: second run is byte-identical");
    }
    if report.truncated {
        return Err("campaign stopped at the first detected fault (--fail-fast)".into());
    }
    Ok(())
}

/// Runs the multi-VM consolidation table (`neve consolidate`).
///
/// `--smoke` is the CI contract: a reduced table measured twice (the
/// second time across a `--jobs` fan-out) with byte-identical renders
/// demanded, and nothing written. Full runs record
/// `results/consolidate.json`.
fn consolidate_cmd(p: &args::Parsed) -> Result<(), String> {
    use neve_workloads::{run_consolidate, ConsolidateSpec, CONSOLIDATE_PATH};
    let smoke = p.has("smoke");
    let mut spec = if smoke {
        ConsolidateSpec::smoke()
    } else {
        ConsolidateSpec::full()
    };
    let default_jobs = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1) as u64;
    spec.jobs = p.get_u64("jobs", default_jobs)?.max(1) as usize;
    let report = run_consolidate(spec)?;
    if p.has("json") {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    if smoke {
        // The determinism gate: same table from a serial run and from
        // a different fan-out.
        let again = run_consolidate(ConsolidateSpec {
            jobs: if spec.jobs == 1 { 3 } else { 1 },
            ..spec
        })?;
        if again.render() != report.render() {
            return Err(
                "consolidation table is not deterministic: two runs (different \
                 --jobs) produced different reports"
                    .into(),
            );
        }
        println!("determinism check: second run (different --jobs) is byte-identical");
        return Ok(());
    }
    report
        .write()
        .map_err(|e| format!("failed to write {CONSOLIDATE_PATH}: {e}"))?;
    println!("\nwrote {CONSOLIDATE_PATH}");
    Ok(())
}

/// Hosts the long-running job engine (`neve serve`).
///
/// Serves the line-delimited JSON protocol on stdin/stdout and, with
/// `--listen ADDR`, on a TCP listener sharing the same coalescing
/// store (so identical requests from different connections cost one
/// computation). `--smoke` runs the protocol contracts in-process and
/// exits non-zero on any violation — the CI gate.
fn serve_cmd(p: &args::Parsed) -> Result<(), String> {
    use neve_workloads::serve;
    if p.has("smoke") {
        return serve::smoke();
    }
    let default_jobs = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1) as u64;
    let jobs = p.get_u64("jobs", default_jobs)?.max(1) as usize;
    let max_queued = p.get_u64("max-queued", 1024)?.max(1) as usize;
    let fingerprint = neve_cycles::CostModel::default().fingerprint();
    let cache_path =
        (!p.has("no-cache")).then(|| std::path::PathBuf::from(neve_workloads::CACHE_PATH));
    let engine = std::sync::Arc::new(serve::JobEngine::new(
        jobs,
        fingerprint,
        cache_path,
        max_queued,
    ));
    if let Some(addr) = p.options.get("listen") {
        let (local, _accept) = serve::listen(std::sync::Arc::clone(&engine), addr)
            .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
        eprintln!("listening on {local} ({jobs} workers); also serving stdin");
    }
    let sink: serve::Sink = std::sync::Arc::new(std::sync::Mutex::new(std::io::stdout()));
    serve::run_protocol(std::io::stdin().lock(), &sink, &engine);
    Ok(())
}

/// Runs the coverage-guided fuzzing campaign (`neve fuzz`), or replays
/// one persisted reproducer with `--replay FILE`.
///
/// Mirrors `neve faults`' CI contract: `--smoke` double-runs the
/// campaign and demands byte-identical reports. A completed campaign
/// exits zero — findings are the report's product, not harness
/// failures; a `--replay` that no longer re-triggers exits non-zero
/// (the reproducer went stale, which CI must notice).
fn fuzz_cmd(p: &args::Parsed) -> Result<(), String> {
    use neve_workloads::fuzz;

    if let Some(path) = p.options.get("replay") {
        let out = fuzz::replay(path)?;
        return match &out.observed {
            Some(f) if out.reproduced() => {
                println!("reproduced {}: {}", f.kind.label(), f.detail);
                Ok(())
            }
            Some(f) => Err(format!(
                "--replay: {path} recorded `{}` but this run observed `{}`: {}",
                out.expected.label(),
                f.kind.label(),
                f.detail
            )),
            None => Err(format!(
                "--replay: {path} recorded `{}` but this run observed no finding",
                out.expected.label()
            )),
        };
    }

    let smoke = p.has("smoke");
    let default_jobs = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1) as u64;
    let spec = fuzz::FuzzSpec {
        seed: p.get_u64("seed", 0x7e1)?,
        cases: p
            .get_u64("cases", if smoke { 24 } else { 96 })?
            .clamp(1, 100_000) as usize,
        jobs: p.get_u64("jobs", default_jobs)?.max(1) as usize,
        corpus_dir: Some(p.get("corpus-dir", fuzz::CORPUS_DIR).to_string()),
    };
    let report = fuzz::run_fuzz(&spec)?;
    print!("{}", report.render());
    if smoke {
        let again = fuzz::run_fuzz(&spec)?;
        if again.render() != report.render() {
            return Err(
                "fuzz campaign is not deterministic: two runs with the same seed \
                 produced different reports"
                    .into(),
            );
        }
        println!("determinism check: second run is byte-identical");
    }
    Ok(())
}

/// Runs the correctness oracles (`neve check`): the lockstep
/// differential state oracle, the trap-count algebra, and the
/// golden-table diff, over the cached (or freshly measured) matrix.
/// Exits non-zero on any violation.
fn check_cmd(p: &args::Parsed) -> Result<(), String> {
    let smoke = p.has("smoke");
    let m = matrix(p)?;
    let report = neve_workloads::run_checks(&m, smoke);
    print!("{}", report.render());
    if !report.is_clean() {
        return Err(format!(
            "{} oracle violation(s); the paper's semantic identities do not hold",
            report.violation_count()
        ));
    }
    println!(
        "oracle: every check passed{}",
        if smoke { " (smoke grid)" } else { "" }
    );
    Ok(())
}

/// Traces one microbenchmark's measured region and prints the anatomy
/// of the nested world switch — the paper's Section 5 prose as an event
/// log with trap provenance — plus the per-phase and per-kind summary.
/// `--json` emits the same data in the results-cache schema instead.
fn trace_cmd(p: &args::Parsed) -> Result<(), String> {
    if p.positionals.len() > 2 {
        return Err(format!(
            "trace takes `<config> <bench>`, got {:?}",
            p.positionals
        ));
    }
    let cfg_name = match p.positionals.first() {
        Some(s) => s.as_str(),
        None => p.get("config", "v83"),
    };
    let bench_name = match p.positionals.get(1) {
        Some(s) => s.as_str(),
        None => p.get("bench", "hypercall"),
    };
    let limit = p.get_u64("limit", 400)? as usize;
    let Target::Arm { cfg, xen } = target(cfg_name)? else {
        return Err("trace supports the ARM configurations".into());
    };
    let bench = arm_bench(bench_name)?;

    // The ring must retain the whole measured region (the testbed clears
    // it at the measurement snapshot) so the per-kind totals below are
    // exact, not a suffix — MAX_CAPACITY holds it with room to spare.
    let iters = 8;
    let mut tb = if xen {
        TestBed::new_xen(cfg, bench, iters)
    } else {
        TestBed::new(cfg, bench, iters)
    };
    tb.m.attach_trace(MAX_CAPACITY);
    let (delta, n) = tb.run_region(iters);
    let trace =
        tb.m.trace
            .take()
            .ok_or("internal: the trace detached during the measured run")?;
    let Measured {
        per_op,
        traps_by_kind,
        cycles_by_phase,
        traps_by_phase,
    } = delta.measured(n);

    // The same string-keyed shape the session layer persists.
    let kinds: BTreeMap<String, u64> = traps_by_kind
        .into_iter()
        .map(|(k, v)| (format!("{k:?}"), v))
        .collect();
    let mut phases: BTreeMap<String, PhaseStat> = BTreeMap::new();
    for (ph, v) in cycles_by_phase {
        phases.entry(ph.label().to_string()).or_default().cycles = v;
    }
    for (ph, v) in traps_by_phase {
        phases.entry(ph.label().to_string()).or_default().traps = v;
    }

    if p.has("json") {
        let mut body = vec![
            ("config".into(), JsonValue::from(cfg_name)),
            ("bench".into(), JsonValue::from(bench_name)),
            ("iterations".into(), JsonValue::from(n)),
            (
                "per_op".into(),
                JsonValue::Object(vec![
                    ("cycles".into(), JsonValue::from(per_op.cycles)),
                    ("traps".into(), JsonValue::from(per_op.traps)),
                ]),
            ),
        ];
        body.extend(provenance::json_fields(&kinds, &phases));
        print!("{}", JsonValue::Object(body).pretty());
        return Ok(());
    }

    println!(
        "{bench_name} on {cfg_name}: {} cycles/op, {:.1} traps/op ({n} measured iterations)\n",
        per_op.cycles, per_op.traps
    );
    print_anatomy(&trace, limit);
    println!("\nPer-phase attribution of the measured region:");
    print!("{}", provenance::render_phases(&phases));
    if kinds.is_empty() {
        println!("\nNo traps in the measured region (the trap-free fast path).");
    } else {
        println!("\nTraps by kind (Table 7's counts, event by event):");
        let mut total = 0u64;
        for (k, v) in &kinds {
            total += v;
            println!("  {k:<10} {v:>6} total  {:>4}/op", (v + n / 2) / n);
        }
        println!(
            "  {:<10} {total:>6} total  {:>4}/op",
            "all",
            (total + n / 2) / n
        );
    }
    Ok(())
}

/// Prints the tail of the retained event log: from the last payload
/// round-trip entry (the final `Hvc` the payload executed, when there
/// is one) to the end, capped at `limit` lines.
fn print_anatomy(trace: &Trace, limit: usize) {
    let events: Vec<&TraceEvent> = trace.events().collect();
    let mut start = 0;
    for (i, ev) in events.iter().enumerate() {
        if let TraceEvent::Retired {
            instr: neve_armv8::isa::Instr::Hvc(0),
            pc,
            ..
        } = ev
        {
            if *pc >= neve_kvmarm::layout::L2_PAYLOAD_BASE
                || *pc >= neve_kvmarm::layout::L1_PAYLOAD_BASE
            {
                start = i;
            }
        }
    }
    let mut shown = 0;
    for ev in &events[start..] {
        println!("{}", Trace::render(ev));
        shown += 1;
        if shown >= limit {
            println!("... (truncated; raise --limit to see more)");
            break;
        }
    }
    println!(
        "\n{} events shown ({} captured in total).",
        shown, trace.total
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(a: &[&str]) -> Vec<String> {
        a.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_is_always_available() {
        assert!(dispatch(&sv(&["help"])).is_ok());
        assert!(dispatch(&[]).is_ok());
    }

    #[test]
    fn unknown_subcommand_is_an_error() {
        assert!(dispatch(&sv(&["frobnicate"])).is_err());
    }

    #[test]
    fn micro_runs_on_every_config() {
        for cfg in ["vm", "v83", "neve", "v83-xen", "x86-vm", "x86-nested"] {
            dispatch(&sv(&[
                "micro",
                "--config",
                cfg,
                "--bench",
                "hypercall",
                "--iters",
                "5",
            ]))
            .unwrap_or_else(|e| panic!("{cfg}: {e}"));
        }
    }

    #[test]
    fn bad_config_and_bench_are_reported() {
        assert!(dispatch(&sv(&["micro", "--config", "pdp11"])).is_err());
        assert!(dispatch(&sv(&["micro", "--bench", "quantum"])).is_err());
    }

    #[test]
    fn trace_rejects_x86() {
        assert!(dispatch(&sv(&["trace", "--config", "x86-vm"])).is_err());
        assert!(dispatch(&sv(&["trace", "x86-nested", "hypercall"])).is_err());
    }

    #[test]
    fn fuzz_runs_a_tiny_campaign_and_replays_errors_structurally() {
        let dir = std::env::temp_dir().join(format!("neve-fuzz-cli-{}", std::process::id()));
        let dir_s = dir.display().to_string();
        dispatch(&sv(&[
            "fuzz",
            "--cases",
            "4",
            "--seed",
            "9",
            "--jobs",
            "2",
            "--corpus-dir",
            &dir_s,
        ]))
        .expect("tiny fuzz campaign");
        std::fs::remove_dir_all(&dir).ok();
        // --replay of a missing file names the file and fails.
        let err = dispatch(&sv(&["fuzz", "--replay", "/no/such/repro.json"])).unwrap_err();
        assert!(err.contains("/no/such/repro.json"), "unstructured: {err}");
        // --replay of a truncated reproducer fails structurally too —
        // a damaged corpus entry must never panic the CLI.
        let dir = std::env::temp_dir().join(format!("neve-fuzz-cli-tr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let truncated = dir.join("cut.json");
        std::fs::write(
            &truncated,
            "{\n  \"version\": \"neve-fuzz-repro-v1\",\n  \"campaign_seed\": \"0x9\",\n  \"cas",
        )
        .unwrap();
        let err =
            dispatch(&sv(&["fuzz", "--replay", &truncated.display().to_string()])).unwrap_err();
        assert!(err.contains("cut.json"), "file not named: {err}");
        std::fs::remove_dir_all(&dir).ok();
        // Bad numbers name the flag.
        let err = dispatch(&sv(&["fuzz", "--cases", "lots"])).unwrap_err();
        assert!(err.contains("--cases"), "flag not named: {err}");
    }

    #[test]
    fn trace_accepts_the_positional_form_and_aliases() {
        // The acceptance syntax: `neve trace v8.3-nested hypercall`.
        dispatch(&sv(&["trace", "v8.3-nested", "hypercall", "--limit", "5"]))
            .expect("positional trace");
        dispatch(&sv(&["trace", "neve", "device_io", "--json"])).expect("json trace");
        assert!(dispatch(&sv(&["trace", "v8.3-nested", "hypercall", "extra"])).is_err());
        assert!(dispatch(&sv(&["trace", "v8.3-nested", "quantum"])).is_err());
    }
}
