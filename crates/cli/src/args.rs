//! Minimal flag parsing (the workspace's dependency policy rules out an
//! argument-parsing crate; the grammar here is flat `--key value`).

use std::collections::BTreeMap;

/// Parsed invocation: a subcommand, positional operands, and
/// `--key value` options.
#[derive(Debug, Default)]
pub struct Parsed {
    /// The subcommand (first bare argument).
    pub command: String,
    /// Bare words after the subcommand, in order (`neve trace
    /// v8.3-nested hypercall` carries two).
    pub positionals: Vec<String>,
    /// `--key value` pairs.
    pub options: BTreeMap<String, String>,
}

/// Flags that take no value (presence is the value). Everything else
/// follows the `--key value` grammar.
const BOOLEAN_FLAGS: &[&str] = &["no-cache", "json", "smoke", "fail-fast", "record-baseline"];

/// Parses `argv` (without the program name).
///
/// # Errors
///
/// Rejects dangling `--key` without a value (boolean flags excepted).
/// Bare words after the subcommand are collected as positionals; each
/// command decides how many it accepts.
pub fn parse(argv: &[String]) -> Result<Parsed, String> {
    let mut p = Parsed::default();
    let mut it = argv.iter();
    match it.next() {
        Some(cmd) if !cmd.starts_with("--") => p.command = cmd.clone(),
        Some(flag) => return Err(format!("expected a subcommand before {flag}")),
        None => p.command = "help".into(),
    }
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            p.positionals.push(a.clone());
            continue;
        };
        if BOOLEAN_FLAGS.contains(&key) {
            p.options.insert(key.to_string(), "true".to_string());
            continue;
        }
        let Some(value) = it.next() else {
            return Err(format!("--{key} needs a value"));
        };
        p.options.insert(key.to_string(), value.clone());
    }
    Ok(p)
}

impl Parsed {
    /// The option `key` or `default`.
    pub fn get<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(String::as_str).unwrap_or(default)
    }

    /// The option `key` parsed as u64.
    ///
    /// # Errors
    ///
    /// Reports unparseable numbers.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: `{v}` is not a number")),
        }
    }

    /// True when a boolean flag was given.
    pub fn has(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let p = parse(&sv(&["micro", "--bench", "ipi", "--iters", "7"])).unwrap();
        assert_eq!(p.command, "micro");
        assert_eq!(p.get("bench", "x"), "ipi");
        assert_eq!(p.get_u64("iters", 1).unwrap(), 7);
        assert_eq!(p.get("config", "vm"), "vm");
    }

    #[test]
    fn empty_argv_means_help() {
        assert_eq!(parse(&[]).unwrap().command, "help");
    }

    #[test]
    fn rejects_dangling_flag() {
        assert!(parse(&sv(&["micro", "--bench"])).is_err());
        assert!(parse(&sv(&["--bench", "x"])).is_err());
    }

    #[test]
    fn collects_positionals_in_order() {
        let p = parse(&sv(&["trace", "v8.3-nested", "hypercall", "--limit", "50"])).unwrap();
        assert_eq!(p.command, "trace");
        assert_eq!(p.positionals, vec!["v8.3-nested", "hypercall"]);
        assert_eq!(p.get_u64("limit", 0).unwrap(), 50);
        assert!(parse(&sv(&["micro"])).unwrap().positionals.is_empty());
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let p = parse(&sv(&["tables", "--no-cache", "--jobs", "4"])).unwrap();
        assert!(p.has("no-cache"));
        assert_eq!(p.get_u64("jobs", 1).unwrap(), 4);
        assert!(!parse(&sv(&["tables"])).unwrap().has("no-cache"));
        // Trailing boolean flag is fine; trailing value flag is not.
        assert!(parse(&sv(&["tables", "--jobs", "2", "--no-cache"])).is_ok());
    }

    #[test]
    fn rejects_bad_numbers() {
        let p = parse(&sv(&["micro", "--iters", "many"])).unwrap();
        assert!(p.get_u64("iters", 1).is_err());
    }
}
