//! `VNCR_EL2` — the Virtual Nested Control Register (paper Table 2).

use std::fmt;

/// Mask of the BADDR field: bits `[52:12]` hold a page-aligned physical
/// address (paper Table 2).
pub const BADDR_MASK: u64 = ((1u64 << 53) - 1) & !0xfff;

/// The Enable bit (bit 0).
pub const ENABLE: u64 = 1;

/// Errors from programming `VNCR_EL2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VncrError {
    /// The base address was not page aligned. The architecture mandates a
    /// page-aligned physical address so hardware never performs alignment
    /// checks or takes translation faults mid-redirect (paper Section 6.3).
    Unaligned(u64),
    /// The base address does not fit in bits `[52:12]`.
    OutOfRange(u64),
}

impl fmt::Display for VncrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VncrError::Unaligned(a) => write!(f, "VNCR_EL2.BADDR {a:#x} is not page aligned"),
            VncrError::OutOfRange(a) => write!(f, "VNCR_EL2.BADDR {a:#x} exceeds bits [52:12]"),
        }
    }
}

impl std::error::Error for VncrError {}

/// A typed view of the `VNCR_EL2` register value.
///
/// Managed exclusively by the host hypervisor: it enables/disables NEVE
/// and points at the deferred access page (paper Section 6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VncrEl2(u64);

impl VncrEl2 {
    /// Interprets a raw register value. Reserved bits `[11:1]` and bits
    /// above 52 read-as-zero, matching the architectural field layout.
    pub fn from_raw(raw: u64) -> Self {
        Self(raw & (BADDR_MASK | ENABLE))
    }

    /// Like [`VncrEl2::from_raw`], but surfaces the same errors
    /// [`VncrEl2::enabled_at`] would: a raw value carrying bits in the
    /// reserved `[11:1]` range describes a non-page-aligned base, and
    /// bits at or above 53 fall outside the BADDR field. Callers that
    /// model the architectural RES0 behaviour can fall back to
    /// [`VncrEl2::from_raw`] after reporting the discarded bits.
    ///
    /// # Errors
    ///
    /// [`VncrError::Unaligned`] or [`VncrError::OutOfRange`], carrying
    /// the offending base-address bits.
    pub fn try_from_raw(raw: u64) -> Result<Self, VncrError> {
        let baddr_bits = raw & !ENABLE;
        if baddr_bits & 0xffe != 0 {
            return Err(VncrError::Unaligned(baddr_bits));
        }
        if baddr_bits & !BADDR_MASK != 0 {
            return Err(VncrError::OutOfRange(baddr_bits));
        }
        Ok(Self(raw & (BADDR_MASK | ENABLE)))
    }

    /// Builds an enabled VNCR_EL2 pointing at `baddr`.
    ///
    /// # Errors
    ///
    /// Returns [`VncrError::Unaligned`] if `baddr` is not 4 KiB aligned and
    /// [`VncrError::OutOfRange`] if it does not fit the BADDR field.
    pub fn enabled_at(baddr: u64) -> Result<Self, VncrError> {
        if baddr & 0xfff != 0 {
            return Err(VncrError::Unaligned(baddr));
        }
        if baddr & !BADDR_MASK != 0 {
            return Err(VncrError::OutOfRange(baddr));
        }
        Ok(Self(baddr | ENABLE))
    }

    /// A disabled register (NEVE off).
    pub fn disabled() -> Self {
        Self(0)
    }

    /// The raw 64-bit register value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The Enable bit (paper Table 2, bit 0).
    pub fn enabled(self) -> bool {
        self.0 & ENABLE != 0
    }

    /// The deferred access page base address (paper Table 2, bits `[52:12]`).
    pub fn baddr(self) -> u64 {
        self.0 & BADDR_MASK
    }

    /// Returns a copy with the Enable bit set or cleared.
    pub fn with_enabled(self, on: bool) -> Self {
        if on {
            Self(self.0 | ENABLE)
        } else {
            Self(self.0 & !ENABLE)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_at_round_trips_fields() {
        let v = VncrEl2::enabled_at(0x8000_0000).unwrap();
        assert!(v.enabled());
        assert_eq!(v.baddr(), 0x8000_0000);
        assert_eq!(v.raw(), 0x8000_0000 | 1);
    }

    #[test]
    fn unaligned_baddr_is_rejected() {
        assert_eq!(
            VncrEl2::enabled_at(0x8000_0800),
            Err(VncrError::Unaligned(0x8000_0800))
        );
    }

    #[test]
    fn baddr_beyond_bit_52_is_rejected() {
        let too_big = 1u64 << 53;
        assert_eq!(
            VncrEl2::enabled_at(too_big),
            Err(VncrError::OutOfRange(too_big))
        );
    }

    #[test]
    fn reserved_bits_read_as_zero() {
        // Bits [11:1] are reserved (paper Table 2); a raw write with them
        // set must not surface them.
        let v = VncrEl2::from_raw(0x8000_0000 | 0xffe | 1);
        assert_eq!(v.raw(), 0x8000_0000 | 1);
        assert_eq!(v.baddr(), 0x8000_0000);
    }

    #[test]
    fn enable_toggling() {
        let v = VncrEl2::enabled_at(0x1000).unwrap();
        let off = v.with_enabled(false);
        assert!(!off.enabled());
        assert_eq!(off.baddr(), 0x1000);
        assert!(off.with_enabled(true).enabled());
    }

    #[test]
    fn disabled_is_zero() {
        assert_eq!(VncrEl2::disabled().raw(), 0);
        assert!(!VncrEl2::disabled().enabled());
    }

    #[test]
    fn from_raw_round_trips_enabled_at() {
        // The silent-masking path and the checked constructor must agree
        // on every value `enabled_at` accepts.
        for baddr in [0u64, 0x1000, 0x8000_0000, BADDR_MASK] {
            let v = VncrEl2::enabled_at(baddr).unwrap();
            assert_eq!(VncrEl2::from_raw(v.raw()), v);
            assert_eq!(VncrEl2::try_from_raw(v.raw()), Ok(v));
            let off = v.with_enabled(false);
            assert_eq!(VncrEl2::try_from_raw(off.raw()), Ok(off));
        }
    }

    #[test]
    fn try_from_raw_rejects_what_enabled_at_rejects() {
        // An unaligned base shows up as reserved bits [11:1] in the raw
        // encoding; surface the same error instead of masking it.
        assert_eq!(
            VncrEl2::try_from_raw(0x8000_0800 | 1),
            Err(VncrError::Unaligned(0x8000_0800))
        );
        let too_big = 1u64 << 53;
        assert_eq!(
            VncrEl2::try_from_raw(too_big | 1),
            Err(VncrError::OutOfRange(too_big))
        );
        // The all-clear raw value still parses.
        assert_eq!(VncrEl2::try_from_raw(0), Ok(VncrEl2::disabled()));
    }

    #[test]
    fn error_display_mentions_address() {
        let e = VncrEl2::enabled_at(0x123).unwrap_err();
        assert!(e.to_string().contains("0x123"));
    }
}
