//! NEVE — Nested Virtualization Extensions for ARM.
//!
//! This crate implements the paper's primary contribution (Section 6): a
//! small architecture extension that lets a *guest hypervisor* (a
//! hypervisor deprivileged into EL1 by a host hypervisor) execute most of
//! its hypervisor instructions without trapping, by
//!
//! 1. **deferring** accesses to *VM system registers* (paper Table 3) to an
//!    in-memory *deferred access page* addressed by the new
//!    [`VncrEl2`] register (paper Table 2),
//! 2. **redirecting** accesses to *hypervisor control registers* that have
//!    same-format EL1 counterparts to those counterparts (paper Table 4),
//!    and
//! 3. serving reads of the remaining control registers from **cached
//!    copies** in the deferred access page, trapping only on writes
//!    (paper Tables 4 and 5).
//!
//! The crate is deliberately CPU-agnostic: [`NeveEngine`] maps a register
//! access to a [`Disposition`] and the CPU model (`neve-armv8`) applies
//! it; [`DeferredAccessPage`] provides the architectural page layout over
//! any 4 KiB of memory. This mirrors how the real feature (adopted as
//! ARMv8.4-NV2) slots into an existing core's system-register decode.

pub mod engine;
pub mod page;
pub mod recursive;
pub mod vncr;

pub use engine::{Disposition, NeveEngine};
pub use page::{DeferredAccessPage, PAGE_SIZE};
pub use recursive::virtualize_vncr;
pub use vncr::{VncrEl2, VncrError};
