//! The deferred access page (paper Section 6.1).
//!
//! When NEVE is enabled, accesses to VM system registers from virtual EL2
//! are rewritten by hardware into ordinary loads/stores at
//! `VNCR_EL2.BADDR + offset(register)`. The layout is architecturally
//! defined so host hypervisor software can populate the page before
//! running the guest hypervisor and harvest it afterwards; this module
//! fixes the layout used throughout the simulator
//! (see [`neve_sysreg::classify::vncr_offset`]).

use neve_sysreg::classify::{deferrable_registers, vncr_offset};
use neve_sysreg::SysReg;

/// Size of the deferred access page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// An owned deferred access page.
///
/// The host hypervisor keeps one per virtual CPU that exposes virtual EL2.
/// In a machine simulation the *authoritative* copy lives in simulated
/// guest memory (the page the host maps at `VNCR_EL2.BADDR`); this type is
/// also used standalone in tests and by the host to stage initial values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeferredAccessPage {
    bytes: [u8; PAGE_SIZE],
}

impl Default for DeferredAccessPage {
    fn default() -> Self {
        Self::new()
    }
}

impl DeferredAccessPage {
    /// Creates a zeroed page.
    pub fn new() -> Self {
        Self {
            bytes: [0; PAGE_SIZE],
        }
    }

    /// Creates a page from raw bytes (e.g. copied out of guest memory).
    pub fn from_bytes(bytes: [u8; PAGE_SIZE]) -> Self {
        Self { bytes }
    }

    /// The raw page contents.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.bytes
    }

    /// Reads the slot of `reg`; `None` if the register has no slot.
    pub fn read(&self, reg: SysReg) -> Option<u64> {
        let off = vncr_offset(reg)? as usize;
        Some(read_slot(&self.bytes, off))
    }

    /// Writes the slot of `reg`; returns false if the register has no slot.
    pub fn write(&mut self, reg: SysReg, value: u64) -> bool {
        match vncr_offset(reg) {
            Some(off) => {
                write_slot(&mut self.bytes, off as usize, value);
                true
            }
            None => false,
        }
    }

    /// Populates every deferrable slot from a register-reading closure
    /// (the host hypervisor copying virtual EL2 state into the page before
    /// entering the guest hypervisor — the "typical workflow" of
    /// Section 6.1).
    pub fn populate_from(&mut self, mut read: impl FnMut(SysReg) -> u64) {
        for &reg in deferrable_registers() {
            self.write(reg, read(reg));
        }
    }

    /// Drains every deferrable slot into a register-writing closure (the
    /// host hypervisor harvesting the page on nested VM entry).
    pub fn drain_into(&self, mut write: impl FnMut(SysReg, u64)) {
        for &reg in deferrable_registers() {
            if let Some(v) = self.read(reg) {
                write(reg, v);
            }
        }
    }
}

/// Reads an 8-byte little-endian slot from a page-sized buffer.
///
/// # Panics
///
/// Panics if `offset + 8` exceeds the buffer (offsets produced by
/// [`vncr_offset`] never do).
pub fn read_slot(page: &[u8], offset: usize) -> u64 {
    u64::from_le_bytes(page[offset..offset + 8].try_into().expect("8-byte slot"))
}

/// Writes an 8-byte little-endian slot into a page-sized buffer.
pub fn write_slot(page: &mut [u8], offset: usize, value: u64) {
    page[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_page_reads_zero_for_every_deferrable_register() {
        let p = DeferredAccessPage::new();
        for &r in deferrable_registers() {
            assert_eq!(p.read(r), Some(0), "{r}");
        }
    }

    #[test]
    fn non_deferrable_register_has_no_slot() {
        let mut p = DeferredAccessPage::new();
        assert_eq!(p.read(SysReg::MidrEl1), None);
        assert!(!p.write(SysReg::MidrEl1, 1));
    }

    #[test]
    fn write_read_round_trip() {
        let mut p = DeferredAccessPage::new();
        assert!(p.write(SysReg::SctlrEl1, 0x30d0_1805));
        assert_eq!(p.read(SysReg::SctlrEl1), Some(0x30d0_1805));
    }

    #[test]
    fn slots_do_not_alias() {
        let mut p = DeferredAccessPage::new();
        for (i, &r) in deferrable_registers().iter().enumerate() {
            p.write(r, i as u64 + 1);
        }
        for (i, &r) in deferrable_registers().iter().enumerate() {
            assert_eq!(p.read(r), Some(i as u64 + 1), "{r}");
        }
    }

    #[test]
    fn populate_and_drain_are_inverse() {
        let mut p = DeferredAccessPage::new();
        p.populate_from(|r| vncr_offset(r).unwrap() as u64 * 3 + 1);
        let mut seen = std::collections::BTreeMap::new();
        p.drain_into(|r, v| {
            seen.insert(r, v);
        });
        for &r in deferrable_registers() {
            assert_eq!(seen[&r], vncr_offset(r).unwrap() as u64 * 3 + 1);
        }
    }

    #[test]
    fn raw_slot_helpers_match_typed_access() {
        let mut p = DeferredAccessPage::new();
        p.write(SysReg::HcrEl2, 0xdead_beef);
        let off = vncr_offset(SysReg::HcrEl2).unwrap() as usize;
        assert_eq!(read_slot(p.bytes(), off), 0xdead_beef);
    }

    proptest! {
        /// Any u64 round-trips through any slot, and neighbours are
        /// untouched.
        #[test]
        fn prop_slot_roundtrip(value: u64, idx in 0usize..40) {
            let regs = deferrable_registers();
            let reg = regs[idx % regs.len()];
            let mut p = DeferredAccessPage::new();
            prop_assert!(p.write(reg, value));
            prop_assert_eq!(p.read(reg), Some(value));
            for &other in regs {
                if other != reg {
                    prop_assert_eq!(p.read(other), Some(0));
                }
            }
        }

        /// Byte-level helpers agree with `u64::to_le_bytes`.
        #[test]
        fn prop_raw_helpers(value: u64, slot in 0usize..512) {
            let mut buf = vec![0u8; PAGE_SIZE];
            write_slot(&mut buf, slot * 8, value);
            prop_assert_eq!(read_slot(&buf, slot * 8), value);
        }
    }
}
