//! Recursive virtualization support (paper Section 6.2).
//!
//! NEVE supports multiple nesting levels: when an L1 guest hypervisor
//! programs its (virtual) `VNCR_EL2` for an L2 guest hypervisor, the L0
//! host hypervisor emulates the feature *using the hardware feature
//! directly* — it translates the page address the L1 hypervisor wrote
//! (an L1 intermediate physical address) into a machine physical address
//! and programs that into the real `VNCR_EL2`. The L2 guest hypervisor's
//! register accesses then hit memory that the L1 hypervisor owns and can
//! read directly, so no trap fidelity is lost at any level.

use crate::vncr::{VncrEl2, VncrError};

/// Errors when virtualizing a guest's `VNCR_EL2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecursiveVncrError {
    /// The guest's BADDR does not translate at Stage-2 (the L1 hypervisor
    /// pointed outside its own memory); the host must inject a fault.
    TranslationFault(u64),
    /// The translated machine address is not usable as a BADDR.
    Invalid(VncrError),
}

impl std::fmt::Display for RecursiveVncrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecursiveVncrError::TranslationFault(ipa) => {
                write!(f, "guest VNCR page IPA {ipa:#x} does not translate")
            }
            RecursiveVncrError::Invalid(e) => write!(f, "translated VNCR invalid: {e}"),
        }
    }
}

impl std::error::Error for RecursiveVncrError {}

/// Builds the hardware `VNCR_EL2` value that emulates a guest hypervisor's
/// virtual `VNCR_EL2`.
///
/// `translate` maps a guest physical (IPA) page address to a machine
/// physical page address — in the full simulator this is the host's
/// Stage-2 walk. A disabled guest VNCR yields a disabled hardware VNCR
/// (NEVE off for the L2 guest hypervisor).
///
/// # Errors
///
/// Propagates a Stage-2 translation miss or an invalid translated address.
pub fn virtualize_vncr(
    guest_vncr: VncrEl2,
    mut translate: impl FnMut(u64) -> Option<u64>,
) -> Result<VncrEl2, RecursiveVncrError> {
    if !guest_vncr.enabled() {
        return Ok(VncrEl2::disabled());
    }
    let ipa = guest_vncr.baddr();
    let pa = translate(ipa).ok_or(RecursiveVncrError::TranslationFault(ipa))?;
    VncrEl2::enabled_at(pa).map_err(RecursiveVncrError::Invalid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_guest_vncr_disables_hardware_vncr() {
        let hw = virtualize_vncr(VncrEl2::disabled(), |_| panic!("no translate")).unwrap();
        assert!(!hw.enabled());
    }

    #[test]
    fn enabled_guest_vncr_translates_baddr() {
        let guest = VncrEl2::enabled_at(0x4000_0000).unwrap();
        let hw = virtualize_vncr(guest, |ipa| Some(ipa + 0x1_0000_0000)).unwrap();
        assert!(hw.enabled());
        assert_eq!(hw.baddr(), 0x1_4000_0000);
    }

    #[test]
    fn untranslatable_page_reports_fault_with_ipa() {
        let guest = VncrEl2::enabled_at(0x7000_0000).unwrap();
        let err = virtualize_vncr(guest, |_| None).unwrap_err();
        assert_eq!(err, RecursiveVncrError::TranslationFault(0x7000_0000));
    }

    #[test]
    fn misaligned_translation_result_is_rejected() {
        // A Stage-2 mapping at sub-page granularity cannot back the
        // deferred access page (Section 6.3 mandates page alignment).
        let guest = VncrEl2::enabled_at(0x7000_0000).unwrap();
        let err = virtualize_vncr(guest, |_| Some(0x123)).unwrap_err();
        assert!(matches!(err, RecursiveVncrError::Invalid(_)));
    }
}
