//! The NEVE access-rewriting engine (paper Sections 6 and 6.1).
//!
//! Given a system-register access performed by software running in
//! *virtual EL2* (a guest hypervisor deprivileged into EL1 with
//! `HCR_EL2.{NV,NV2}` set), the engine decides what the hardware does
//! instead of trapping to the host hypervisor. This is the logic the
//! paper proposes adding to the system-register decode stage
//! (Section 6.3: "redirect system register access instructions ... to
//! memory at a specified offset ... or to corresponding EL1 registers").

use crate::vncr::VncrEl2;
use neve_sysreg::classify::{el1_counterpart, neve_class_of_name, vncr_offset, NeveClass};
use neve_sysreg::{RegId, SysReg};

/// What the hardware does with a virtual-EL2 system register access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Rewrite the access into a load/store of the 8-byte slot at
    /// `VNCR_EL2.BADDR + offset` (mechanism 1, VM system registers and
    /// cached-copy reads).
    Memory {
        /// Byte offset within the deferred access page.
        offset: u16,
    },
    /// Rewrite the access to target the EL1 counterpart register
    /// (mechanism 2, hypervisor control registers with same-format EL1
    /// equivalents).
    RedirectEl1(SysReg),
    /// Trap to the host hypervisor (writes to cached-copy registers,
    /// and all timer EL2 register accesses).
    Trap,
    /// NEVE does not intervene; the access follows the base
    /// architecture's rules (used for registers outside Tables 3-5, and
    /// for everything when NEVE is disabled).
    Passthrough,
}

impl Disposition {
    /// Stable machine-readable label of the mechanism that handled the
    /// access (trace/provenance output; JSON-friendly).
    pub fn label(self) -> &'static str {
        match self {
            Disposition::Memory { .. } => "deferred",
            Disposition::RedirectEl1(_) => "redirected",
            Disposition::Trap => "trap",
            Disposition::Passthrough => "passthrough",
        }
    }
}

/// Feature toggles for ablation studies (DESIGN.md Ablation B).
///
/// A full NEVE implementation enables all three mechanisms; the paper's
/// order-of-magnitude win (Section 7) is their combination. Disabling one
/// makes the affected accesses trap as on ARMv8.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeveFeatures {
    /// Mechanism 1: defer VM system registers to memory.
    pub defer_vm_regs: bool,
    /// Mechanism 2: redirect EL2 control registers to EL1 counterparts.
    pub redirect_el1: bool,
    /// Mechanism 3: serve control-register reads from cached copies.
    pub cached_reads: bool,
}

impl Default for NeveFeatures {
    fn default() -> Self {
        Self {
            defer_vm_regs: true,
            redirect_el1: true,
            cached_reads: true,
        }
    }
}

/// The access-rewriting engine.
///
/// Holds the `VNCR_EL2` value and the feature toggles; stateless
/// otherwise, so one engine per CPU suffices.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NeveEngine {
    /// Current `VNCR_EL2` contents (host-hypervisor managed).
    pub vncr: VncrEl2,
    /// Mechanism toggles (all on for architectural NEVE).
    pub features: NeveFeatures,
}

impl NeveEngine {
    /// Creates an engine with NEVE disabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when `VNCR_EL2.Enable` is set.
    pub fn enabled(&self) -> bool {
        self.vncr.enabled()
    }

    /// Decides the disposition of an access to `id` from virtual EL2.
    ///
    /// `is_write` selects the direction; `vhe_guest` reflects the guest
    /// hypervisor's (virtual) `HCR_EL2.E2H`, which changes the treatment
    /// of `TCR_EL2`/`TTBR0_EL2` (paper Table 4: "Redirect or trap").
    pub fn disposition(&self, id: RegId, is_write: bool, vhe_guest: bool) -> Disposition {
        if !self.enabled() {
            return Disposition::Passthrough;
        }
        let reg = id.base_reg();
        match neve_class_of_name(id) {
            NeveClass::VmTrapControl
            | NeveClass::VmExecutionControl
            | NeveClass::VmThreadId
            | NeveClass::PmuDefer => self.defer(reg),
            NeveClass::HypRedirect | NeveClass::HypRedirectVhe => self.redirect(reg),
            NeveClass::HypTrapOnWrite => self.cached(reg, is_write),
            NeveClass::HypRedirectOrTrap => {
                if vhe_guest {
                    self.redirect(reg)
                } else {
                    self.cached(reg, is_write)
                }
            }
            NeveClass::GicTrapOnWrite | NeveClass::DebugTrapOnWrite => self.cached(reg, is_write),
            NeveClass::TimerTrap => Disposition::Trap,
            NeveClass::NotNeve => Disposition::Passthrough,
        }
    }

    /// The disposition *full* NEVE hardware would give this access:
    /// independent of this engine's `VNCR_EL2.Enable` bit and of any
    /// ablation feature toggles. The trap-count oracle uses this on
    /// ARMv8.3 machines — where the engine is never enabled — to
    /// classify each system-register trap as NEVE-deferrable or
    /// residual, and on NEVE machines to cross-check that deferrals
    /// plus residual traps add up to the ARMv8.3 trap count.
    pub fn architectural_disposition(id: RegId, is_write: bool, vhe_guest: bool) -> Disposition {
        // Reuse the real decision tree (so the oracle can never drift
        // from the engine) on a throwaway fully-enabled engine.
        let full = NeveEngine {
            vncr: VncrEl2::default().with_enabled(true),
            features: NeveFeatures::default(),
        };
        full.disposition(id, is_write, vhe_guest)
    }

    /// Absolute physical address of the slot an access was deferred to.
    pub fn slot_address(&self, offset: u16) -> u64 {
        self.vncr.baddr() + offset as u64
    }

    fn defer(&self, reg: SysReg) -> Disposition {
        if !self.features.defer_vm_regs {
            return Disposition::Trap;
        }
        match vncr_offset(reg) {
            Some(offset) => Disposition::Memory { offset },
            // Every register in the deferring classes has a slot; a miss
            // would be a table bug, surfaced as a trap rather than a
            // panic so the host hypervisor can log it.
            None => Disposition::Trap,
        }
    }

    fn redirect(&self, reg: SysReg) -> Disposition {
        if !self.features.redirect_el1 {
            return Disposition::Trap;
        }
        match el1_counterpart(reg) {
            Some(el1) => Disposition::RedirectEl1(el1),
            None => Disposition::Trap,
        }
    }

    fn cached(&self, reg: SysReg, is_write: bool) -> Disposition {
        if is_write {
            return Disposition::Trap;
        }
        if !self.features.cached_reads {
            return Disposition::Trap;
        }
        match vncr_offset(reg) {
            Some(offset) => Disposition::Memory { offset },
            None => Disposition::Trap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neve_sysreg::classify::{deferrable_registers, neve_class};
    use proptest::prelude::*;

    fn engine() -> NeveEngine {
        NeveEngine {
            vncr: VncrEl2::enabled_at(0x9000_0000).unwrap(),
            features: NeveFeatures::default(),
        }
    }

    #[test]
    fn disposition_labels_are_distinct() {
        let labels = [
            Disposition::Memory { offset: 0 }.label(),
            Disposition::RedirectEl1(SysReg::SctlrEl1).label(),
            Disposition::Trap.label(),
            Disposition::Passthrough.label(),
        ];
        let set: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(set.len(), labels.len());
    }

    #[test]
    fn disabled_engine_is_passthrough_for_everything() {
        let e = NeveEngine::new();
        for r in SysReg::all() {
            for w in [false, true] {
                assert_eq!(
                    e.disposition(RegId::Plain(r), w, false),
                    Disposition::Passthrough,
                    "{r} write={w}"
                );
            }
        }
    }

    #[test]
    fn vm_system_registers_defer_to_memory_both_directions() {
        let e = engine();
        for r in [SysReg::HcrEl2, SysReg::VttbrEl2, SysReg::SctlrEl1] {
            for w in [false, true] {
                match e.disposition(RegId::Plain(r), w, false) {
                    Disposition::Memory { offset } => {
                        assert_eq!(offset, vncr_offset(r).unwrap())
                    }
                    d => panic!("{r}: {d:?}"),
                }
            }
        }
    }

    #[test]
    fn hypervisor_control_registers_redirect_to_el1() {
        let e = engine();
        assert_eq!(
            e.disposition(RegId::Plain(SysReg::VbarEl2), true, false),
            Disposition::RedirectEl1(SysReg::VbarEl1)
        );
        assert_eq!(
            e.disposition(RegId::Plain(SysReg::EsrEl2), false, false),
            Disposition::RedirectEl1(SysReg::EsrEl1)
        );
        // VHE-added counterparts (Table 4 "(VHE)" rows).
        assert_eq!(
            e.disposition(RegId::Plain(SysReg::Ttbr1El2), true, true),
            Disposition::RedirectEl1(SysReg::Ttbr1El1)
        );
    }

    #[test]
    fn trap_on_write_registers_cache_reads_and_trap_writes() {
        let e = engine();
        for r in [
            SysReg::CnthctlEl2,
            SysReg::CntvoffEl2,
            SysReg::CptrEl2,
            SysReg::MdcrEl2,
        ] {
            assert!(
                matches!(
                    e.disposition(RegId::Plain(r), false, false),
                    Disposition::Memory { .. }
                ),
                "{r} read"
            );
            assert_eq!(
                e.disposition(RegId::Plain(r), true, false),
                Disposition::Trap,
                "{r} write"
            );
        }
    }

    #[test]
    fn tcr_ttbr0_el2_redirect_for_vhe_and_trap_for_non_vhe() {
        // Paper Table 4, "Redirect or trap": VHE makes the EL2 format
        // identical to EL1's, so redirection is only valid for VHE guest
        // hypervisors.
        let e = engine();
        for r in [SysReg::TcrEl2, SysReg::Ttbr0El2] {
            assert!(matches!(
                e.disposition(RegId::Plain(r), true, true),
                Disposition::RedirectEl1(_)
            ));
            assert_eq!(
                e.disposition(RegId::Plain(r), true, false),
                Disposition::Trap
            );
            assert!(matches!(
                e.disposition(RegId::Plain(r), false, false),
                Disposition::Memory { .. }
            ));
        }
    }

    #[test]
    fn gic_hypervisor_interface_is_cached_copy() {
        let e = engine();
        assert!(matches!(
            e.disposition(RegId::Plain(SysReg::IchLrEl2(0)), false, false),
            Disposition::Memory { .. }
        ));
        assert_eq!(
            e.disposition(RegId::Plain(SysReg::IchLrEl2(0)), true, false),
            Disposition::Trap
        );
        assert!(matches!(
            e.disposition(RegId::Plain(SysReg::IchEisrEl2), false, false),
            Disposition::Memory { .. }
        ));
    }

    #[test]
    fn timer_el2_registers_always_trap() {
        let e = engine();
        for r in [SysReg::CnthpCtlEl2, SysReg::CnthvCvalEl2] {
            for w in [false, true] {
                assert_eq!(e.disposition(RegId::Plain(r), w, true), Disposition::Trap);
            }
        }
    }

    #[test]
    fn el12_names_defer_like_vm_registers() {
        // A VHE guest hypervisor uses SCTLR_EL12 to touch the nested VM's
        // EL1 state; NEVE rewrites those to the page (Section 6.4).
        let e = engine();
        assert!(matches!(
            e.disposition(RegId::El12(SysReg::SctlrEl1), true, true),
            Disposition::Memory { .. }
        ));
    }

    #[test]
    fn architectural_disposition_ignores_enable_and_features() {
        // On a disabled engine everything passes through, but the
        // architectural classification must still see what full NEVE
        // hardware would do with the access.
        let disabled = NeveEngine::new();
        assert!(!disabled.enabled());
        for r in [SysReg::HcrEl2, SysReg::VttbrEl2] {
            assert_eq!(
                disabled.disposition(RegId::Plain(r), true, false),
                Disposition::Passthrough
            );
            assert!(matches!(
                NeveEngine::architectural_disposition(RegId::Plain(r), true, false),
                Disposition::Memory { .. }
            ));
        }
        // And it agrees with a fully-enabled engine on every register.
        let e = engine();
        for r in SysReg::all() {
            for w in [false, true] {
                for vhe in [false, true] {
                    assert_eq!(
                        NeveEngine::architectural_disposition(RegId::Plain(r), w, vhe),
                        e.disposition(RegId::Plain(r), w, vhe),
                        "{r} write={w} vhe={vhe}"
                    );
                }
            }
        }
    }

    #[test]
    fn slot_address_offsets_from_baddr() {
        let e = engine();
        assert_eq!(e.slot_address(0x18), 0x9000_0000 + 0x18);
    }

    #[test]
    fn ablation_disabling_defer_makes_vm_regs_trap() {
        let mut e = engine();
        e.features.defer_vm_regs = false;
        assert_eq!(
            e.disposition(RegId::Plain(SysReg::HcrEl2), true, false),
            Disposition::Trap
        );
        // Redirection is unaffected.
        assert!(matches!(
            e.disposition(RegId::Plain(SysReg::VbarEl2), true, false),
            Disposition::RedirectEl1(_)
        ));
    }

    #[test]
    fn ablation_disabling_redirect_makes_control_regs_trap() {
        let mut e = engine();
        e.features.redirect_el1 = false;
        assert_eq!(
            e.disposition(RegId::Plain(SysReg::VbarEl2), false, false),
            Disposition::Trap
        );
    }

    #[test]
    fn ablation_disabling_cached_reads_makes_reads_trap() {
        let mut e = engine();
        e.features.cached_reads = false;
        assert_eq!(
            e.disposition(RegId::Plain(SysReg::IchVmcrEl2), false, false),
            Disposition::Trap
        );
    }

    proptest! {
        /// NEVE never defers to an offset outside the page, and every
        /// Memory disposition hits a real slot of a deferrable register.
        #[test]
        fn prop_memory_dispositions_are_valid_slots(idx in 0usize..200, w: bool, vhe: bool) {
            let all = SysReg::all();
            let r = all[idx % all.len()];
            let e = engine();
            if let Disposition::Memory { offset } =
                e.disposition(RegId::Plain(r), w, vhe)
            {
                prop_assert!(usize::from(offset) + 8 <= crate::page::PAGE_SIZE);
                prop_assert!(deferrable_registers().contains(&r));
                prop_assert_eq!(offset, vncr_offset(r).unwrap());
            }
        }

        /// Redirection always lands on an EL1 register and only for
        /// hypervisor-control classes.
        #[test]
        fn prop_redirects_target_el1(idx in 0usize..200, w: bool, vhe: bool) {
            let all = SysReg::all();
            let r = all[idx % all.len()];
            let e = engine();
            if let Disposition::RedirectEl1(t) =
                e.disposition(RegId::Plain(r), w, vhe)
            {
                prop_assert!(!t.is_el2());
                prop_assert!(matches!(
                    neve_class(r),
                    NeveClass::HypRedirect
                        | NeveClass::HypRedirectVhe
                        | NeveClass::HypRedirectOrTrap
                ));
            }
        }

        /// Writes never read the cached copy: any cached-class write traps.
        #[test]
        fn prop_cached_copy_writes_trap(idx in 0usize..200, vhe: bool) {
            let all = SysReg::all();
            let r = all[idx % all.len()];
            let e = engine();
            if matches!(
                neve_class(r),
                NeveClass::GicTrapOnWrite | NeveClass::HypTrapOnWrite | NeveClass::DebugTrapOnWrite
            ) {
                prop_assert_eq!(
                    e.disposition(RegId::Plain(r), true, vhe),
                    Disposition::Trap
                );
            }
        }
    }
}
