//! VM test payloads — the kvm-unit-tests equivalents (paper Section 5).
//!
//! Each builder emits a self-contained guest program; the same payloads
//! run as a plain VM (the "VM" columns of Tables 1/6) and as a nested VM
//! (the "Nested VM" columns), which is exactly how the paper's
//! microbenchmarks were used.

use crate::layout;
use neve_armv8::isa::{Asm, Instr, Program};
use neve_sysreg::{RegId, SysReg};

/// Completion code payloads halt with.
pub const DONE: u16 = 0xd07e;

/// Hypercall benchmark: `iters` `hvc #0` round trips.
///
/// Measures "the cost of switching from a VM to the hypervisor, and
/// immediately back to the VM without doing any work in the hypervisor".
pub fn hypercall(base: u64, iters: u64) -> Program {
    let mut a = Asm::new(base);
    a.i(Instr::MovImm(10, iters));
    let top = a.label();
    a.bind(top);
    a.i(Instr::Hvc(0));
    a.i(Instr::SubImm(10, 10, 1));
    a.cbnz(10, top);
    a.i(Instr::Halt(DONE));
    a.assemble()
}

/// Device I/O benchmark: `iters` reads of an emulated device register.
///
/// Measures "the cost of accessing an emulated device in the
/// hypervisor". The address is never Stage-2 mapped, so each read is a
/// Stage-2 abort emulated by the owning hypervisor.
pub fn device_io(base: u64, iters: u64) -> Program {
    let mut a = Asm::new(base);
    a.i(Instr::MovImm(10, iters));
    a.i(Instr::MovImm(1, layout::DEVICE_BASE));
    let top = a.label();
    a.bind(top);
    a.i(Instr::Ldr(2, 1, layout::DEVICE_REG_VALUE as i64));
    a.i(Instr::SubImm(10, 10, 1));
    a.cbnz(10, top);
    a.i(Instr::Halt(DONE));
    a.assemble()
}

/// Virtual IPI benchmark, sender side (vCPU 0): sends an SGI to vCPU 1
/// and spins until the receiver bumps the shared completion counter.
///
/// "Measures the cost of issuing a virtual IPI from one virtual CPU to
/// another virtual CPU when both virtual CPUs are actively running on
/// separate physical CPUs."
pub fn ipi_sender(base: u64, flag: u64, iters: u64) -> Program {
    let mut a = Asm::new(base);
    a.i(Instr::MovImm(10, iters));
    a.i(Instr::MovImm(11, 0)); // expected sequence number
    a.i(Instr::MovImm(1, flag));
    let top = a.label();
    let wait = a.label();
    a.bind(top);
    a.i(Instr::AddImm(11, 11, 1));
    // SGI: INTID in bits[27:24], target CPU mask in bits[15:0].
    a.i(Instr::MovImm(0, ((layout::IPI_SGI as u64) << 24) | 0b10));
    a.i(Instr::Msr(RegId::Plain(SysReg::IccSgi1rEl1), 0));
    a.bind(wait);
    a.i(Instr::Ldr(2, 1, 0));
    a.i(Instr::Sub(2, 2, 11));
    a.cbnz(2, wait);
    a.i(Instr::SubImm(10, 10, 1));
    a.cbnz(10, top);
    a.i(Instr::Halt(DONE));
    a.assemble()
}

/// Virtual IPI benchmark, receiver side (vCPU 1): spins with interrupts
/// unmasked; the IRQ handler acknowledges, bumps the shared counter,
/// completes the interrupt and returns.
///
/// The image doubles as its own vector table: the spin loop lives past
/// the vector region and `VBAR_EL1` must point at `base`.
pub fn ipi_receiver(base: u64, flag: u64) -> Program {
    let mut a = Asm::new(base);
    // Reset entry: jump over the vectors into the spin loop.
    a.i(Instr::B(base + 0x300));
    // IRQ from current EL (SP_ELx): offset 0x280.
    a.org(0x280);
    {
        a.i(Instr::Mrs(2, RegId::Plain(SysReg::IccIar1El1)));
        a.i(Instr::MovImm(3, flag));
        a.i(Instr::Ldr(4, 3, 0));
        a.i(Instr::AddImm(4, 4, 1));
        a.i(Instr::Str(4, 3, 0));
        a.i(Instr::Msr(RegId::Plain(SysReg::IccEoir1El1), 2));
        a.i(Instr::Eret);
    }
    // The spin loop.
    a.org(0x300);
    let spin = a.label();
    a.bind(spin);
    a.i(Instr::Nop);
    a.b(spin);
    a.assemble()
}

/// Virtual EOI benchmark body: acknowledge + complete, repeatedly.
///
/// The harness re-arms a pending virtual interrupt around the measured
/// region; both operations complete at the hardware virtual CPU
/// interface without trapping (Tables 1/6: 71 cycles, zero traps, at
/// every nesting depth).
pub fn eoi(base: u64, iters: u64) -> Program {
    let mut a = Asm::new(base);
    a.i(Instr::MovImm(10, iters));
    let top = a.label();
    a.bind(top);
    a.i(Instr::Mrs(2, RegId::Plain(SysReg::IccIar1El1)));
    a.i(Instr::Msr(RegId::Plain(SysReg::IccEoir1El1), 2));
    a.i(Instr::Hvc(0x7f)); // harness hook: re-arm the interrupt
    a.i(Instr::SubImm(10, 10, 1));
    a.cbnz(10, top);
    a.i(Instr::Halt(DONE));
    a.assemble()
}

/// Hypercall immediate of the EOI re-arm hook serviced by the host.
pub const HVC_REARM: u16 = 0x7f;

/// Mixed workload-replay payload: each of `iters` transactions performs
/// `work` cycles of computation, `hcs` hypercalls and `ios` emulated
/// device reads — an execution-based counterpart to the analytical
/// Figure 2 model (events actually traverse the full stack instead of
/// being priced from the microbenchmark matrix).
pub fn mixed(base: u64, iters: u64, work: u64, hcs: u8, ios: u8) -> Program {
    let mut a = Asm::new(base);
    a.i(Instr::MovImm(10, iters));
    a.i(Instr::MovImm(1, layout::DEVICE_BASE));
    let top = a.label();
    a.bind(top);
    a.i(Instr::Work(work.max(1)));
    for _ in 0..hcs {
        a.i(Instr::Hvc(0));
    }
    for _ in 0..ios {
        a.i(Instr::Ldr(2, 1, layout::DEVICE_REG_VALUE as i64));
    }
    a.i(Instr::SubImm(10, 10, 1));
    a.cbnz(10, top);
    a.i(Instr::Halt(DONE));
    a.assemble()
}

/// Shared flag address used by the IPI pair at a given payload base.
pub fn ipi_flag(payload_base: u64) -> u64 {
    payload_base + 0x8000
}

/// Idle payload: `wfi` forever, interrupts masked, nothing armed.
///
/// A core running this parks on the event wheel with no waker and
/// costs exactly one step (the `wfi` itself) for an entire run — the
/// big-SMP mostly-idle scenarios fill 8..64-vCPU guests with it.
pub fn wfi_idle(base: u64) -> Program {
    let mut a = Asm::new(base);
    let top = a.label();
    a.bind(top);
    a.i(Instr::Wfi);
    a.b(top);
    a.assemble()
}

/// Interrupt-driven receiver: like [`ipi_receiver`] but the main loop
/// sits in `wfi` instead of spinning, so between IPIs the core is
/// parked and each delivery exercises the wheel's park/wake path
/// (SGI -> GIC epoch bump -> rescan -> unpark -> vector -> `wfi`).
///
/// The image doubles as its own vector table (`VBAR_EL1` = `base`).
pub fn wfi_receiver(base: u64, flag: u64) -> Program {
    let mut a = Asm::new(base);
    // Reset entry: jump over the vectors into the wait loop.
    a.i(Instr::B(base + 0x300));
    // IRQ from current EL (SP_ELx): offset 0x280.
    a.org(0x280);
    {
        a.i(Instr::Mrs(2, RegId::Plain(SysReg::IccIar1El1)));
        a.i(Instr::MovImm(3, flag));
        a.i(Instr::Ldr(4, 3, 0));
        a.i(Instr::AddImm(4, 4, 1));
        a.i(Instr::Str(4, 3, 0));
        a.i(Instr::Msr(RegId::Plain(SysReg::IccEoir1El1), 2));
        a.i(Instr::Eret);
    }
    // The wait loop.
    a.org(0x300);
    let wait = a.label();
    a.bind(wait);
    a.i(Instr::Wfi);
    a.b(wait);
    a.assemble()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payloads_assemble_with_expected_shapes() {
        let h = hypercall(0x40_0000, 10);
        assert!(h.code.iter().any(|i| matches!(i, Instr::Hvc(0))));
        let d = device_io(0x40_0000, 10);
        assert!(d.code.iter().any(|i| matches!(i, Instr::Ldr(..))));
        let s = ipi_sender(0x40_0000, 0x41_0000, 10);
        assert!(s
            .code
            .iter()
            .any(|i| matches!(i, Instr::Msr(RegId::Plain(SysReg::IccSgi1rEl1), _))));
    }

    #[test]
    fn receiver_has_irq_vector_and_spin_loop() {
        let r = ipi_receiver(0x50_0000, 0x51_0000);
        assert!(r.fetch(0x50_0000 + 0x280).is_some());
        assert!(matches!(r.fetch(0x50_0000), Some(Instr::B(_))));
        // The handler ends in eret.
        let has_eret = r.code.iter().any(|i| matches!(i, Instr::Eret));
        assert!(has_eret);
    }

    #[test]
    fn payload_bases_use_disjoint_pages() {
        let a = hypercall(layout::L1_PAYLOAD_BASE, 1);
        let b = hypercall(layout::L2_PAYLOAD_BASE, 1);
        assert!(a.end() <= b.base);
    }
}
