//! A miniature KVM/ARM with nested virtualization — the hypervisor stack
//! of the NEVE paper (Section 4), built on the `neve-armv8` machine.
//!
//! Components:
//!
//! - [`hyp::HostHyp`]: the L0 host hypervisor. Native Rust invoked on
//!   every trap to EL2; multiplexes hardware EL1 state between the guest
//!   hypervisor's virtual EL2 context, its virtual EL1 (host kernel)
//!   context and the nested VM; emulates trapped hypervisor instructions
//!   against virtual EL2 state; builds shadow Stage-2 tables; forwards
//!   exits into virtual EL2 ("exception reflection").
//! - [`guesthyp`]: the guest hypervisor as an *interpreted program*,
//!   emitted by a builder in the flavours the paper evaluates — non-VHE
//!   and VHE, each targeting ARMv8.3 trap-and-emulate or NEVE, plus the
//!   paravirtualized variants of Sections 3/6.4 for ARMv8.0 hardware.
//!   Its world-switch register rosters ([`rosters`]) are what make exit
//!   multiplication *emergent*: the same source description produces
//!   126-ish traps on ARMv8.3 and 15-ish with NEVE.
//! - [`guests`]: nested-VM / VM test payloads equivalent to the
//!   kvm-unit-tests microbenchmarks (Hypercall, Device I/O, Virtual IPI,
//!   Virtual EOI).
//! - [`testbed`]: assembles machine + hypervisors per evaluation
//!   configuration and runs the microbenchmarks.

pub mod guesthyp;
pub mod guests;
pub mod hyp;
pub mod layout;
pub mod rosters;
pub mod testbed;
pub mod vcpu;
pub mod xen;

pub use guesthyp::{GuestHypFlavor, ParaMode};
pub use hyp::HostHyp;
pub use testbed::{ArmConfig, MicroBench, TestBed};
