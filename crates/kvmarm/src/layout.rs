//! Memory and address-space layout conventions for the test bed.
//!
//! All guest images run with Stage-1 translation off (VA = IPA) and each
//! occupies a disjoint range, so one flat interpreter address space
//! serves every level (see DESIGN.md, "Key design decisions").

/// Bytes of simulated RAM.
pub const RAM_SIZE: u64 = 0x2000_0000; // 512 MiB

/// Guest hypervisor image base (its virtual-EL2 vector base).
pub const GUEST_HYP_BASE: u64 = 0x0010_0000;

/// Guest hypervisor data area (saved nested-VM GPRs, scratch).
pub const GUEST_HYP_DATA: u64 = 0x0020_0000;

/// Guest hypervisor's virtual-EL1 (host kernel) image base.
pub const GUEST_KERNEL_BASE: u64 = 0x0028_0000;

/// L1 test payload base (used in the non-nested "VM" configuration).
pub const L1_PAYLOAD_BASE: u64 = 0x0030_0000;

/// L2 (nested VM) test payload base.
pub const L2_PAYLOAD_BASE: u64 = 0x0040_0000;

/// Frames for the guest hypervisor's own Stage-2 table (maps L2 IPA to
/// L1 IPA); lives in L1-owned memory.
pub const GUEST_S2_FRAMES: u64 = 0x0050_0000;
/// Size of the guest Stage-2 frame pool.
pub const GUEST_S2_FRAMES_SIZE: u64 = 0x0010_0000;

/// Frames for the host's Stage-2 tables.
pub const HOST_S2_FRAMES: u64 = 0x0100_0000;
/// Size of the host Stage-2 frame pool.
pub const HOST_S2_FRAMES_SIZE: u64 = 0x0040_0000;

/// Frames for shadow Stage-2 tables.
pub const SHADOW_S2_FRAMES: u64 = 0x0200_0000;
/// Size of the shadow frame pool.
pub const SHADOW_S2_FRAMES_SIZE: u64 = 0x0040_0000;

/// Deferred access pages (one per vCPU, NEVE configurations).
pub const VNCR_PAGES: u64 = 0x0300_0000;

/// Per-CPU guest-hypervisor stack/save areas within
/// [`GUEST_HYP_DATA`]; 4 KiB each.
pub const GH_SAVE_STRIDE: u64 = 0x1000;

/// GICv2 hypervisor control interface (GICH) MMIO frame: the paper's
/// hardware exposes the Table 5 state as memory-mapped registers that
/// "trivially trap to EL2 when not mapped in the Stage-2 page tables"
/// (Section 4). Banked per CPU (same address, per-CPU state).
pub const GICH_BASE: u64 = 0x0808_0000;

/// Emulated-device MMIO window (never mapped at Stage-2).
pub const DEVICE_BASE: u64 = 0x0900_0000;
/// Device window size.
pub const DEVICE_SIZE: u64 = 0x0010_0000;
/// Offset of the "read a value" test-device register (the Device I/O
/// microbenchmark target).
pub const DEVICE_REG_VALUE: u64 = 0x8;

/// VMID the host assigns the L1 VM.
pub const VMID_L1: u16 = 1;
/// VMID the host assigns the nested VM (shadow Stage-2).
pub const VMID_L2: u16 = 2;

/// SGI number used by guests for IPIs.
pub const IPI_SGI: u32 = 5;

/// Virtual interrupt number the EOI benchmark completes.
pub const EOI_VINTID: u32 = 40;

/// True if `ipa` falls in the device window.
pub fn is_device(ipa: u64) -> bool {
    (DEVICE_BASE..DEVICE_BASE + DEVICE_SIZE).contains(&ipa)
}

/// True if `ipa` falls in the GICv2 GICH frame.
pub fn is_gich(ipa: u64) -> bool {
    (GICH_BASE..GICH_BASE + neve_gic::mmio::GICH_SIZE).contains(&ipa)
}

/// Per-CPU save area base.
pub fn gh_save_area(cpu: usize) -> u64 {
    GUEST_HYP_DATA + cpu as u64 * GH_SAVE_STRIDE
}

/// Per-CPU deferred access page.
pub fn vncr_page(cpu: usize) -> u64 {
    VNCR_PAGES + cpu as u64 * 0x1000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_window_detection() {
        assert!(is_device(DEVICE_BASE));
        assert!(is_device(DEVICE_BASE + DEVICE_REG_VALUE));
        assert!(!is_device(DEVICE_BASE - 1));
        assert!(!is_device(DEVICE_BASE + DEVICE_SIZE));
    }

    #[test]
    fn regions_are_disjoint_and_in_ram() {
        let regions = [
            (GUEST_HYP_BASE, 0x8_0000),
            (GUEST_HYP_DATA, 0x8_0000),
            (GUEST_KERNEL_BASE, 0x8_0000),
            (L1_PAYLOAD_BASE, 0x10_0000),
            (L2_PAYLOAD_BASE, 0x10_0000),
            (GUEST_S2_FRAMES, GUEST_S2_FRAMES_SIZE),
            (HOST_S2_FRAMES, HOST_S2_FRAMES_SIZE),
            (SHADOW_S2_FRAMES, SHADOW_S2_FRAMES_SIZE),
            (VNCR_PAGES, 0x1_0000),
        ];
        for (i, &(b1, s1)) in regions.iter().enumerate() {
            assert!(b1 + s1 <= RAM_SIZE, "region {i} beyond RAM");
            for &(b2, s2) in &regions[i + 1..] {
                assert!(b1 + s1 <= b2 || b2 + s2 <= b1, "overlap {b1:#x}/{b2:#x}");
            }
        }
    }

    #[test]
    fn gich_window_detection() {
        assert!(is_gich(GICH_BASE));
        assert!(is_gich(GICH_BASE + neve_gic::mmio::GICH_LR_BASE));
        assert!(!is_gich(GICH_BASE + neve_gic::mmio::GICH_SIZE));
        assert!(!is_device(GICH_BASE), "GICH and device windows disjoint");
    }

    #[test]
    fn per_cpu_areas_do_not_collide() {
        assert_ne!(gh_save_area(0), gh_save_area(1));
        assert_ne!(vncr_page(0), vncr_page(1));
    }
}
