//! Evaluation test bed: assembles a machine + hypervisor stack per paper
//! configuration and runs the kvm-unit-tests-equivalent microbenchmarks.
//!
//! Configurations follow Tables 1 and 6:
//!
//! - **VM**: the payload runs as a single-level VM on the host
//!   hypervisor.
//! - **Nested VM**: the payload runs as a nested VM on a guest
//!   hypervisor (non-VHE or VHE) which runs on the host hypervisor,
//!   with the architecture level selecting ARMv8.3 trap-and-emulate or
//!   NEVE — or ARMv8.0 plus the paravirtualized guest hypervisor images
//!   (the paper's own methodology, used here for the validation
//!   ablation).

use crate::guesthyp::{self, GuestHypFlavor, ParaMode};
use crate::guests;
use crate::hyp::{HostHyp, NestedMode, HCR_VM_RUN};
use crate::layout;
use crate::rosters;
use crate::vcpu::Ctx;
use neve_armv8::isa::Instr;
use neve_armv8::machine::{Machine, MachineConfig, StepOutcome};
use neve_armv8::pstate::Pstate;
use neve_armv8::trace::Trace;
use neve_armv8::{ArchLevel, FaultPlan};
use neve_core::VncrEl2;
use neve_cycles::counter::{Delta, Measured, PerOp};
use neve_cycles::{FaultCause, SimFault};
use neve_gic::vgic::ICH_HCR_EN;
use neve_memsim::{FrameAlloc, PageTable, Perms};
use neve_sysreg::bits::{spsr, vttbr};
use neve_sysreg::SysReg;

/// An evaluation configuration (one column of Tables 1/6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArmConfig {
    /// Single-level VM on the host hypervisor.
    Vm,
    /// Nested VM under a guest hypervisor.
    Nested {
        /// VHE guest hypervisor.
        guest_vhe: bool,
        /// NEVE (ARMv8.4) instead of ARMv8.3 trap-and-emulate.
        neve: bool,
        /// Paravirtualization mode (selects ARMv8.0 hardware when not
        /// [`ParaMode::None`]).
        para: ParaMode,
    },
}

impl ArmConfig {
    /// The hardware architecture level this configuration requires.
    pub fn arch(self) -> ArchLevel {
        match self {
            ArmConfig::Vm => ArchLevel::V8_0,
            ArmConfig::Nested {
                para: ParaMode::None,
                neve: true,
                ..
            } => ArchLevel::V8_4,
            ArmConfig::Nested {
                para: ParaMode::None,
                neve: false,
                ..
            } => ArchLevel::V8_3,
            ArmConfig::Nested { .. } => ArchLevel::V8_0,
        }
    }
}

/// A microbenchmark (one row of Tables 1/6/7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroBench {
    /// VM -> hypervisor -> VM round trip.
    Hypercall,
    /// Read of a device register emulated by the owning hypervisor.
    DeviceIo,
    /// Cross-vCPU virtual IPI, send to delivery.
    VirtualIpi,
    /// Trap-free virtual interrupt completion.
    VirtualEoi,
    /// Workload replay: per transaction, `work` cycles of computation
    /// plus `hcs` hypercalls and `ios` device reads (the
    /// execution-based Figure 2 cross-check).
    Mixed {
        /// Computation per transaction, in cycles.
        work: u16,
        /// Hypercalls per transaction.
        hcs: u8,
        /// Device reads per transaction.
        ios: u8,
    },
    /// Idle vCPU woken only by timer interrupts: the payload sits in
    /// `wfi` forever and its vector acknowledges whatever fires. The
    /// consolidation rig's shape — it never halts, so drive it with a
    /// tick loop ([`TestBed::new_tick`]), not [`TestBed::run`].
    Idle,
}

impl MicroBench {
    /// CPUs the benchmark needs.
    pub fn ncpus(self) -> usize {
        match self {
            MicroBench::VirtualIpi => 2,
            _ => 1,
        }
    }
}

/// The assembled stack.
pub struct TestBed {
    /// The machine.
    pub m: Machine,
    /// The host hypervisor.
    pub hyp: HostHyp,
    /// The configuration.
    pub cfg: ArmConfig,
    bench: MicroBench,
    step_budget: u64,
}

/// Iterations dropped as warm-up (lazy Stage-2 faults, shadow fills).
const WARMUP: u64 = 8;

/// Default run-loop watchdog: generous for every configuration in the
/// matrix (the slowest cell retires well under a million steps).
pub const DEFAULT_STEP_BUDGET: u64 = 80_000_000;

/// Provenance-ring lines carried in a [`SimFault`] diagnostic snapshot.
const FAULT_TRACE_LINES: usize = 16;

impl TestBed {
    /// Builds the full stack for `cfg` running `bench` with `iters`
    /// measured iterations (GICv3 system-register GIC interface).
    pub fn new(cfg: ArmConfig, bench: MicroBench, iters: u64) -> Self {
        Self::with_gic(cfg, bench, iters, false)
    }

    /// Like [`TestBed::new`] but with a GICv2 memory-mapped hypervisor
    /// control interface (the paper's hardware; nested configurations
    /// only — the flag is ignored for plain VMs).
    pub fn new_gicv2(cfg: ArmConfig, bench: MicroBench, iters: u64) -> Self {
        Self::build(cfg, bench, iters, true, false)
    }

    /// Like [`TestBed::new`] but with a standalone (Xen-style) guest
    /// hypervisor (paper Section 6.5's design comparison; nested
    /// configurations only).
    pub fn new_xen(cfg: ArmConfig, bench: MicroBench, iters: u64) -> Self {
        Self::build(cfg, bench, iters, false, true)
    }

    fn with_gic(cfg: ArmConfig, bench: MicroBench, iters: u64, gic_mmio: bool) -> Self {
        Self::build(cfg, bench, iters, gic_mmio, false)
    }

    fn build(cfg: ArmConfig, bench: MicroBench, iters: u64, gic_mmio: bool, xen: bool) -> Self {
        let ncpus = bench.ncpus();
        let mut m = Machine::new(MachineConfig {
            arch: cfg.arch(),
            ncpus,
            mem_size: layout::RAM_SIZE,
            cost: Default::default(),
        });
        let total = iters + WARMUP;
        let hyp = match cfg {
            ArmConfig::Vm => Self::setup_vm(&mut m, bench, total, ncpus),
            ArmConfig::Nested {
                guest_vhe,
                neve,
                para,
            } => Self::setup_nested(
                &mut m,
                bench,
                total,
                ncpus,
                NestedMode {
                    guest_vhe,
                    neve,
                    para,
                    gic_mmio,
                    xen,
                },
            ),
        };
        Self {
            m,
            hyp,
            cfg,
            bench,
            step_budget: DEFAULT_STEP_BUDGET,
        }
    }

    fn load_payloads(m: &mut Machine, bench: MicroBench, base: u64, iters: u64) {
        match bench {
            MicroBench::Hypercall => m.load(guests::hypercall(base, iters)),
            MicroBench::DeviceIo => m.load(guests::device_io(base, iters)),
            MicroBench::VirtualIpi => {
                let flag = guests::ipi_flag(base);
                m.load(guests::ipi_sender(base, flag, iters));
                m.load(guests::ipi_receiver(base + 0x4000, flag));
            }
            MicroBench::VirtualEoi => m.load(guests::eoi(base, iters)),
            MicroBench::Mixed { work, hcs, ios } => {
                m.load(guests::mixed(base, iters, work as u64, hcs, ios))
            }
            MicroBench::Idle => m.load(guests::wfi_receiver(base, guests::ipi_flag(base))),
        }
    }

    fn payload_entry(bench: MicroBench, base: u64, cpu: usize) -> u64 {
        match (bench, cpu) {
            (MicroBench::VirtualIpi, 1) => base + 0x4000,
            _ => base,
        }
    }

    fn payload_vbar(bench: MicroBench, base: u64, cpu: usize) -> u64 {
        match (bench, cpu) {
            (MicroBench::VirtualIpi, 1) => base + 0x4000,
            (MicroBench::Idle, _) => base,
            _ => 0,
        }
    }

    fn payload_irqs_unmasked(bench: MicroBench, cpu: usize) -> bool {
        matches!(
            (bench, cpu),
            (MicroBench::VirtualIpi, 1) | (MicroBench::Idle, _)
        )
    }

    /// Single-level VM configuration.
    fn setup_vm(m: &mut Machine, bench: MicroBench, iters: u64, ncpus: usize) -> HostHyp {
        let hyp = HostHyp::new(m, ncpus, None);
        let base = layout::L1_PAYLOAD_BASE;
        Self::load_payloads(m, bench, base, iters);
        for cpu in 0..ncpus {
            m.core_mut(cpu).pstate = Pstate {
                el: 1,
                irq_masked: !Self::payload_irqs_unmasked(bench, cpu),
                fiq_masked: true,
            };
            m.core_mut(cpu).pc = Self::payload_entry(bench, base, cpu);
            m.core_mut(cpu)
                .regs
                .write(SysReg::VbarEl1, Self::payload_vbar(bench, base, cpu));
            m.core_mut(cpu).regs.write(SysReg::HcrEl2, HCR_VM_RUN);
            m.core_mut(cpu).regs.write(
                SysReg::VttbrEl2,
                vttbr::build(layout::VMID_L1, hyp.host_s2.root),
            );
            m.gic.ich_write(cpu, SysReg::IchHcrEl2, ICH_HCR_EN);
        }
        if bench == MicroBench::VirtualEoi {
            m.gic.inject_virq(0, layout::EOI_VINTID, 0x80);
        }
        hyp
    }

    /// Nested configuration: guest hypervisor + nested VM.
    fn setup_nested(
        m: &mut Machine,
        bench: MicroBench,
        iters: u64,
        ncpus: usize,
        mode: NestedMode,
    ) -> HostHyp {
        let mut hyp = HostHyp::new(m, ncpus, Some(mode));
        let flavor = GuestHypFlavor {
            vhe: mode.guest_vhe,
            para: mode.para,
            gicv2: mode.gic_mmio,
        };

        // The guest hypervisor's Stage-2 table for its nested VM, built
        // in L1-owned memory on its behalf (the "booted" state): L2 IPA
        // identity-maps to L1 PA for the payload's data pages.
        let mut gframes = FrameAlloc::new(layout::GUEST_S2_FRAMES, layout::GUEST_S2_FRAMES_SIZE);
        let guest_s2 = PageTable::new(&mut m.mem, &mut gframes);
        let l2 = layout::L2_PAYLOAD_BASE;
        for page in 0..32u64 {
            let a = l2 + page * 4096;
            guest_s2.map(&mut m.mem, &mut gframes, a, a, Perms::RWX);
        }
        hyp.guest_s2_root = guest_s2.root;

        Self::load_payloads(m, bench, l2, iters);

        for cpu in 0..ncpus {
            let img = if mode.xen {
                crate::xen::build(flavor, cpu)
            } else {
                guesthyp::build(flavor, cpu)
            };
            let hyp_base = img.hyp.base;
            m.load(img.hyp);
            m.load(img.kernel);

            // "Boot" state of the guest hypervisor: its vector base and
            // the save-area constants its switch code loads. The chain
            // starts in virtual EL2, so hardware EL1 must *be* the
            // virtual-EL2 image (the host saves hardware into the image
            // on the first switch away).
            hyp.vcpus[cpu].vel2_hw.write(SysReg::VbarEl1, hyp_base);
            m.core_mut(cpu).regs.write(SysReg::VbarEl1, hyp_base);
            hyp.vcpus[cpu].ctx = Ctx::GhVel2;
            let save = layout::gh_save_area(cpu);
            use crate::guesthyp::slots;
            // Host-kernel EL1 context: synthetic but distinct values.
            for (i, _) in rosters::el1_context().iter().enumerate() {
                m.mem
                    .write_u64(save + slots::HOST_EL1 + 8 * i as u64, 0x1000 + i as u64);
            }
            m.mem
                .write_u64(save + slots::HCR_HOST, neve_sysreg::bits::hcr::IMO);
            m.mem.write_u64(
                save + slots::HCR_VM,
                neve_sysreg::bits::hcr::VM | neve_sysreg::bits::hcr::IMO,
            );
            m.mem
                .write_u64(save + slots::VTTBR_VM, vttbr::build(7, guest_s2.root));
            m.mem
                .write_u64(save + slots::ELR, Self::payload_entry(bench, l2, cpu));
            let sp = if Self::payload_irqs_unmasked(bench, cpu) {
                spsr::mode_h(1)
            } else {
                spsr::mode_h(1) | spsr::I | spsr::F
            };
            m.mem.write_u64(save + slots::SPSR, sp);
            // The VM context starts dirty so lazy-restoring designs
            // (the Xen flavour) load it on first entry.
            m.mem.write_u64(save + slots::REASON, 1);
            // The nested VM's initial EL1 context (roster order).
            for (i, reg) in rosters::el1_context().iter().copied().enumerate() {
                let v = if reg == SysReg::VbarEl1 {
                    Self::payload_vbar(bench, l2, cpu)
                } else {
                    0
                };
                m.mem.write_u64(save + slots::VM_EL1 + 8 * i as u64, v);
            }

            // Hardware state: enter the guest hypervisor at its run
            // entry; it performs the first world switch into the VM.
            m.core_mut(cpu).pstate = Pstate {
                el: 1,
                irq_masked: true,
                fiq_masked: true,
            };
            m.core_mut(cpu).pc = hyp_base + guesthyp::RUN_ENTRY_OFFSET;
            let hcr_bits = {
                use neve_sysreg::bits::hcr;
                let mut b = HCR_VM_RUN | hcr::NV;
                if !mode.guest_vhe {
                    b |= hcr::NV1;
                }
                if mode.neve {
                    b |= hcr::NV2;
                }
                b
            };
            m.core_mut(cpu).regs.write(SysReg::HcrEl2, hcr_bits);
            m.core_mut(cpu).regs.write(
                SysReg::VttbrEl2,
                vttbr::build(layout::VMID_L1, hyp.host_s2.root),
            );
            if mode.neve {
                let raw = VncrEl2::enabled_at(layout::vncr_page(cpu))
                    .expect("aligned")
                    .raw();
                // Through the storage router so the core's NEVE engine
                // sees the value.
                m.hyp_write(cpu, SysReg::VncrEl2, raw);
            }
            m.gic.ich_write(cpu, SysReg::IchHcrEl2, ICH_HCR_EN);
        }
        if bench == MicroBench::VirtualEoi {
            // The guest hypervisor "injected" an interrupt: place it in
            // the virtual GIC state so L2 entry loads it.
            hyp.vcpus[0].vgic_l2.write(
                SysReg::IchLrEl2(0),
                neve_gic::lr::ListRegister::pending(layout::EOI_VINTID, 0x80).encode(),
            );
        }
        hyp
    }

    /// Switches the host hypervisor to VHE mode (kernel in EL2: no EL1
    /// context swap per exit). Call before [`TestBed::run`].
    pub fn host_vhe(&mut self) -> &mut Self {
        self.hyp.vhe_host = true;
        self
    }

    /// Overrides the run-loop watchdog (clamped to at least 1 step).
    pub fn set_step_budget(&mut self, budget: u64) -> &mut Self {
        self.step_budget = budget.max(1);
        self
    }

    /// Attaches a deterministic fault-injection schedule to the machine.
    pub fn attach_fault_plan(&mut self, plan: FaultPlan) -> &mut Self {
        self.m.attach_fault_plan(plan);
        self
    }

    /// Runs the benchmark to completion and returns per-operation
    /// averages over the measured iterations (warm-up excluded).
    ///
    /// # Panics
    ///
    /// Panics if the payload crashes or stalls (use
    /// [`TestBed::try_run_measured`] for a structured error instead).
    pub fn run(&mut self, iters: u64) -> PerOp {
        self.run_measured(iters).per_op
    }

    /// Like [`TestBed::run`] but also reports the trap breakdown of the
    /// measured region by reason — the Table 7 observability data the
    /// session layer persists alongside cycle counts.
    ///
    /// # Panics
    ///
    /// Panics if the payload crashes or stalls (use
    /// [`TestBed::try_run_measured`] for a structured error instead).
    pub fn run_measured(&mut self, iters: u64) -> Measured {
        self.try_run_measured(iters)
            .unwrap_or_else(|f| panic!("{f}"))
    }

    /// Fallible [`TestBed::run_measured`]: a crash, stall (step-budget
    /// exhaustion), or broken measurement protocol comes back as a
    /// [`SimFault`] with a diagnostic snapshot instead of a panic.
    ///
    /// # Errors
    ///
    /// The [`SimFault`] carries pc/EL/phase/steps and the tail of the
    /// provenance ring when a trace is attached.
    pub fn try_run_measured(&mut self, iters: u64) -> Result<Measured, SimFault> {
        let (delta, n) = self.try_run_region(iters)?;
        Ok(delta.measured(n))
    }

    /// Like [`TestBed::run_measured`] but returns the raw
    /// measured-region [`Delta`] and iteration count — the trace
    /// command reads the delta's per-phase maps next to the machine's
    /// retained trace ring. When a trace is attached, it is cleared at
    /// the measurement snapshot so the ring covers exactly the measured
    /// region (the bracket-measured EOI benchmark keeps the whole run).
    ///
    /// # Panics
    ///
    /// Panics if the payload crashes or stalls (use
    /// [`TestBed::try_run_region`] for a structured error instead).
    pub fn run_region(&mut self, iters: u64) -> (Delta, u64) {
        self.try_run_region(iters).unwrap_or_else(|f| panic!("{f}"))
    }

    /// Fallible [`TestBed::run_region`] under the step-budget watchdog.
    ///
    /// # Errors
    ///
    /// A [`SimFault`] describing the crash, stall, or measurement
    /// shortfall.
    pub fn try_run_region(&mut self, iters: u64) -> Result<(Delta, u64), SimFault> {
        // Run boundaries are the only place the cost model may have
        // been reconfigured; revalidate the flat table once here so
        // the per-step fast path never has to.
        self.m.refresh_cost_table();
        match self.bench {
            MicroBench::VirtualEoi => self.run_eoi(iters),
            MicroBench::VirtualIpi => self.run_ipi(iters),
            _ => self.run_simple(iters),
        }
    }

    /// Builds a [`SimFault`] with the cpu0 diagnostic snapshot.
    fn fault(&self, cause: FaultCause, steps: u64) -> SimFault {
        let core = self.m.core(0);
        let recent_events = self
            .m
            .trace
            .as_ref()
            .map(|t| {
                let skip = t.len().saturating_sub(FAULT_TRACE_LINES);
                t.events().skip(skip).map(Trace::render).collect()
            })
            .unwrap_or_default();
        SimFault {
            cause,
            pc: core.pc,
            el: core.pstate.el,
            phase: self.m.counter.phase(),
            steps,
            recent_events,
        }
    }

    /// Single-CPU benchmarks: run until the payload halts, snapshotting
    /// after the warm-up iterations.
    fn run_simple(&mut self, iters: u64) -> Result<(Delta, u64), SimFault> {
        // Warm-up: run until the iteration counter (x10 at L1/L2)
        // drops to `iters`.
        let budget = self.step_budget;
        let mut snap = None;
        let mut steps: u64 = 0;
        loop {
            let out = self.m.step(&mut self.hyp, 0);
            steps += 1;
            if steps >= budget {
                return Err(self.fault(FaultCause::StepBudgetExhausted { budget }, steps));
            }
            match out {
                StepOutcome::Executed => {}
                StepOutcome::Halted(code) if code == guests::DONE => break,
                StepOutcome::Halted(code) => {
                    return Err(self.fault(FaultCause::PayloadCrash { code }, steps));
                }
                StepOutcome::Wfi => {
                    return Err(self.fault(
                        FaultCause::UnexpectedStop {
                            detail: "unexpected wfi".into(),
                        },
                        steps,
                    ));
                }
                StepOutcome::FetchFailure(pc) => {
                    return Err(self.fault(
                        FaultCause::UnexpectedStop {
                            detail: format!("fetch failure at {pc:#x}"),
                        },
                        steps,
                    ));
                }
            }
            if snap.is_none() && self.payload_counter() == iters {
                snap = Some(self.m.counter.snapshot());
                if let Some(t) = &mut self.m.trace {
                    t.clear();
                }
            }
        }
        let Some(snap) = snap else {
            return Err(self.fault(FaultCause::MissedSnapshot, steps));
        };
        Ok((self.m.counter.delta_since(&snap), iters))
    }

    /// The payload's remaining-iterations counter (x10), regardless of
    /// which context currently owns the hardware.
    fn payload_counter(&self) -> u64 {
        match self.hyp.vcpus[0].ctx {
            Ctx::L1Payload | Ctx::L2 => self.m.core(0).gpr(10),
            _ => {
                // The payload's x10 sits in the guest hypervisor's save
                // area while the hypervisor runs.
                let save = layout::gh_save_area(0);
                self.m
                    .mem
                    .read_u64(save + crate::guesthyp::slots::GPRS + 8 * 10)
            }
        }
    }

    /// The IPI benchmark: interleave both CPUs.
    fn run_ipi(&mut self, iters: u64) -> Result<(Delta, u64), SimFault> {
        let budget = self.step_budget;
        let mut snap = None;
        let mut steps: u64 = 0;
        loop {
            let out0 = self.m.step(&mut self.hyp, 0);
            // A wake-up the sender's step made deliverable (its SGI
            // bumps the GIC epoch) unparks the receiver before the
            // burst decides whether to skip it.
            self.m.service_wakeups(&mut self.hyp);
            // The receiver gets a burst of steps so delivery latency is
            // not dominated by the interleave ratio. A receiver that
            // went to WFI parks instead of burning the burst polling
            // it (the benchmark's own receiver spins and never takes
            // this path; fault-injected or replayed variants do).
            for _ in 0..4 {
                if self.m.is_parked(1) {
                    break;
                }
                let r = self.m.step(&mut self.hyp, 1);
                if r == StepOutcome::Wfi {
                    self.m.park(&mut self.hyp, 1);
                    continue;
                }
                if !matches!(r, StepOutcome::Executed | StepOutcome::Wfi) {
                    return Err(self.fault(
                        FaultCause::UnexpectedStop {
                            detail: format!("receiver stopped: {r:?}"),
                        },
                        steps,
                    ));
                }
            }
            steps += 1;
            if steps >= budget {
                return Err(self.fault(FaultCause::StepBudgetExhausted { budget }, steps));
            }
            match out0 {
                StepOutcome::Executed | StepOutcome::Wfi => {}
                StepOutcome::Halted(code) if code == guests::DONE => break,
                StepOutcome::Halted(code) => {
                    return Err(self.fault(FaultCause::PayloadCrash { code }, steps));
                }
                StepOutcome::FetchFailure(pc) => {
                    return Err(self.fault(
                        FaultCause::UnexpectedStop {
                            detail: format!("fetch failure at {pc:#x}"),
                        },
                        steps,
                    ));
                }
            }
            if snap.is_none() && self.payload_counter() == iters {
                snap = Some(self.m.counter.snapshot());
                if let Some(t) = &mut self.m.trace {
                    t.clear();
                }
            }
        }
        let Some(snap) = snap else {
            return Err(self.fault(FaultCause::MissedSnapshot, steps));
        };
        Ok((self.m.counter.delta_since(&snap), iters))
    }

    /// The EOI benchmark measures only the acknowledge + complete pair;
    /// the re-arm hypercall between iterations is excluded, as in
    /// kvm-unit-tests where the interrupt is raised outside the timed
    /// region.
    fn run_eoi(&mut self, iters: u64) -> Result<(Delta, u64), SimFault> {
        let budget = self.step_budget;
        let mut measured = Delta::default();
        let mut done = 0u64;
        let mut steps: u64 = 0;
        let mut measuring_snap = None;
        loop {
            // Peek at the next instruction to bracket the measured
            // region: [Mrs IAR .. Msr EOIR].
            let pc = self.m.core(0).pc;
            let at_eoir = matches!(
                self.fetch_at(pc),
                Some(Instr::Msr(
                    neve_sysreg::RegId::Plain(SysReg::IccEoir1El1),
                    _
                ))
            );
            if at_eoir {
                measuring_snap = Some(self.m.counter.snapshot());
            }
            let out = self.m.step(&mut self.hyp, 0);
            steps += 1;
            if steps >= budget {
                return Err(self.fault(FaultCause::StepBudgetExhausted { budget }, steps));
            }
            if let Some(snapped) = measuring_snap.take() {
                let d = self.m.counter.delta_since(&snapped);
                done += 1;
                if done > WARMUP {
                    measured.accumulate(&d);
                }
            }
            match out {
                StepOutcome::Executed => {}
                StepOutcome::Halted(code) if code == guests::DONE => break,
                StepOutcome::Halted(code) => {
                    return Err(self.fault(FaultCause::PayloadCrash { code }, steps));
                }
                other => {
                    return Err(self.fault(
                        FaultCause::UnexpectedStop {
                            detail: format!("unexpected {other:?}"),
                        },
                        steps,
                    ));
                }
            }
        }
        // Both guards matter under fault injection: enough pairs for
        // the requested per-op figure, and at least one pair past the
        // warm-up so the division below is meaningful (`done - WARMUP`
        // must not underflow).
        if done < iters || done <= WARMUP {
            return Err(self.fault(
                FaultCause::EoiShortfall {
                    expected: iters,
                    seen: done,
                },
                steps,
            ));
        }
        Ok((measured, done - WARMUP))
    }

    fn fetch_at(&self, pc: u64) -> Option<Instr> {
        self.m.peek(pc)
    }

    // ------------------------------------------------------------------
    // The discrete-event driver.
    // ------------------------------------------------------------------

    /// Big-SMP single-level VM: `vcpus` cores under the host
    /// hypervisor, with cpu 0 doing the only real work.
    ///
    /// - `storm: false` — cpu 0 runs the hypercall loop; every other
    ///   core executes `wfi` once and parks for the whole run (the
    ///   mostly-idle shape the O(0)-idle claim is measured on).
    /// - `storm: true` — cpu 0 sends `iters` SGIs to cpu 1, which
    ///   waits in WFI between deliveries (each IPI exercises the full
    ///   park/wake path); cores 2.. park forever.
    ///
    /// Drive it with [`TestBed::try_run_wheel`] until cpu 0 halts.
    pub fn new_bigsmp(vcpus: usize, storm: bool, iters: u64) -> Self {
        assert!(vcpus >= 2, "big-SMP needs at least a busy and an idle core");
        let mut m = Machine::new(MachineConfig {
            arch: ArchLevel::V8_0,
            ncpus: vcpus,
            mem_size: layout::RAM_SIZE,
            cost: Default::default(),
        });
        let hyp = HostHyp::new(&mut m, vcpus, None);
        let base = layout::L1_PAYLOAD_BASE;
        let flag = guests::ipi_flag(base);
        // The idle image sits past the IPI flag page so the shared
        // counter never aliases code.
        let idle_base = base + 0xc000;
        let bench = if storm {
            m.load(guests::ipi_sender(base, flag, iters));
            m.load(guests::wfi_receiver(base + 0x4000, flag));
            MicroBench::VirtualIpi
        } else {
            m.load(guests::hypercall(base, iters));
            MicroBench::Hypercall
        };
        if vcpus > 2 || !storm {
            m.load(guests::wfi_idle(idle_base));
        }
        for cpu in 0..vcpus {
            let (entry, vbar, unmasked) = match (storm, cpu) {
                (_, 0) => (base, 0, false),
                (true, 1) => (base + 0x4000, base + 0x4000, true),
                _ => (idle_base, 0, false),
            };
            m.core_mut(cpu).pstate = Pstate {
                el: 1,
                irq_masked: !unmasked,
                fiq_masked: true,
            };
            m.core_mut(cpu).pc = entry;
            m.core_mut(cpu).regs.write(SysReg::VbarEl1, vbar);
            m.core_mut(cpu).regs.write(SysReg::HcrEl2, HCR_VM_RUN);
            m.core_mut(cpu).regs.write(
                SysReg::VttbrEl2,
                vttbr::build(layout::VMID_L1, hyp.host_s2.root),
            );
            m.gic.ich_write(cpu, SysReg::IchHcrEl2, ICH_HCR_EN);
        }
        Self {
            m,
            hyp,
            cfg: ArmConfig::Vm,
            bench,
            step_budget: DEFAULT_STEP_BUDGET,
        }
    }

    /// Consolidation stack: `vcpus` idle vCPUs under one host
    /// hypervisor, each one a full guest-hypervisor stack with an idle
    /// nested VM (nested configurations) or a plain idle VM
    /// ([`ArmConfig::Vm`]).
    ///
    /// Every payload sits in `wfi`; the only activity is whatever the
    /// caller arms on the host's physical EL2 timers (the scheduler
    /// tick, [`neve_vtimer::PPI_HPTIMER`]). The EL2 timer lives in no
    /// world-switch roster, so a rig-armed deadline survives VM
    /// entry/exit — unlike the EL1 virtual timer, which the guest
    /// hypervisor's switch code save/restores. The payloads never
    /// halt: drive the bed with a tick loop over
    /// [`Machine::step`]/[`Machine::park`]/[`Machine::advance_to_wake`],
    /// not [`TestBed::run`].
    pub fn new_tick(cfg: ArmConfig, vcpus: usize) -> Self {
        assert!(vcpus >= 1, "a consolidation stack needs at least one vCPU");
        let bench = MicroBench::Idle;
        let mut m = Machine::new(MachineConfig {
            arch: cfg.arch(),
            ncpus: vcpus,
            mem_size: layout::RAM_SIZE,
            cost: Default::default(),
        });
        let hyp = match cfg {
            ArmConfig::Vm => Self::setup_vm(&mut m, bench, 0, vcpus),
            ArmConfig::Nested {
                guest_vhe,
                neve,
                para,
            } => Self::setup_nested(
                &mut m,
                bench,
                0,
                vcpus,
                NestedMode {
                    guest_vhe,
                    neve,
                    para,
                    gic_mmio: false,
                    xen: false,
                },
            ),
        };
        Self {
            m,
            hyp,
            cfg,
            bench,
            step_budget: DEFAULT_STEP_BUDGET,
        }
    }

    /// Wheel-driven run loop: steps only the runnable set, parks cores
    /// that hit WFI, services wake-ups after every step, and — when
    /// every live core is parked — jumps the clock to the next pending
    /// event instead of polling. A parked core costs zero host steps.
    ///
    /// Runs until `stop` returns true (checked between rounds), a core
    /// crashes, or the step budget runs out. Cores that halt with
    /// [`guests::DONE`] drop out of the round quietly. Returns the
    /// number of host steps retired — the denominator of the big-SMP
    /// throughput scenarios.
    ///
    /// # Errors
    ///
    /// A [`SimFault`] for a payload crash, fetch failure, budget
    /// exhaustion, or a full-machine sleep with no event armed.
    pub fn try_run_wheel<F>(&mut self, mut stop: F) -> Result<u64, SimFault>
    where
        F: FnMut(&Machine) -> bool,
    {
        self.m.refresh_cost_table();
        let budget = self.step_budget;
        let mut halted = vec![false; self.m.ncpus()];
        let mut steps: u64 = 0;
        let mut round: Vec<usize> = Vec::new();
        loop {
            if stop(&self.m) {
                return Ok(steps);
            }
            round.clear();
            round.extend(self.m.runnable().iter().copied().filter(|&c| !halted[c]));
            if round.is_empty() {
                // Every live core is parked: leap to the next event.
                if !self.m.advance_to_wake(&mut self.hyp) {
                    return Err(self.fault(
                        FaultCause::UnexpectedStop {
                            detail: "no runnable core and no pending event".into(),
                        },
                        steps,
                    ));
                }
                continue;
            }
            for &cpu in &round {
                match self.m.step(&mut self.hyp, cpu) {
                    StepOutcome::Executed => {}
                    StepOutcome::Wfi => {
                        self.m.park(&mut self.hyp, cpu);
                    }
                    StepOutcome::Halted(code) if code == guests::DONE => halted[cpu] = true,
                    StepOutcome::Halted(code) => {
                        return Err(self.fault(FaultCause::PayloadCrash { code }, steps));
                    }
                    StepOutcome::FetchFailure(pc) => {
                        return Err(self.fault(
                            FaultCause::UnexpectedStop {
                                detail: format!("fetch failure at {pc:#x}"),
                            },
                            steps,
                        ));
                    }
                }
                steps += 1;
                if steps >= budget {
                    return Err(self.fault(FaultCause::StepBudgetExhausted { budget }, steps));
                }
                self.m.service_wakeups(&mut self.hyp);
            }
        }
    }
}
