//! Per-vCPU virtualization state the host hypervisor maintains.
//!
//! The central idea (mirroring how the paper's KVM/ARM prototype and the
//! later upstream implementation organise state): hardware EL1 is a
//! multiplexed resource, and the host keeps
//!
//! - `vel2_hw` — the hardware-EL1 *image of virtual EL2*: what hardware
//!   EL1 registers must contain while the guest hypervisor runs (the
//!   redirect targets of paper Table 4: `VBAR_EL1` holds the guest
//!   hypervisor's `VBAR_EL2`, ...),
//! - `el1_stage` — the *staged* EL1 context: whatever should become
//!   hardware EL1 at the guest hypervisor's next `eret` (the nested
//!   VM's context, or the guest's own kernel context). Under ARMv8.3
//!   every guest access to it traps and the host reads/writes this
//!   store; under NEVE the deferred access page *is* the stage and no
//!   trap happens (paper Section 6's key insight: these accesses "simply
//!   prepare the hardware for running a different execution context at a
//!   later time").

use neve_sysreg::{RegFile, SysReg};

/// Which execution context currently owns the hardware on a physical CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ctx {
    /// A plain (single-level) VM payload — the "VM" configurations.
    L1Payload,
    /// The guest hypervisor executing in virtual EL2.
    GhVel2,
    /// The guest hypervisor's kernel half executing in virtual EL1
    /// (non-VHE guest hypervisors only).
    GhVel1,
    /// The nested VM.
    L2,
}

/// Host-side state for one virtual CPU chain (the L1 vCPU and, in
/// nested configurations, the L2 vCPU multiplexed onto one physical CPU).
#[derive(Debug)]
pub struct VCpu {
    /// What is loaded on the hardware right now.
    pub ctx: Ctx,
    /// Virtual EL2 system registers that have no hardware home while
    /// deprivileged: `vHCR`, `vVTTBR`, `vCNTHCTL`, `vCPTR`, `vMDCR`,
    /// `vCNTVOFF`, `vTPIDR_EL2`, and (on ARMv8.3, where they cannot be
    /// redirected) `vESR/vELR/vSPSR_EL2`.
    pub vel2: RegFile,
    /// Hardware-EL1 image of virtual EL2 (see module docs).
    pub vel2_hw: RegFile,
    /// Staged EL1 context on the ARMv8.3 path (the NEVE path stages in
    /// the deferred access page instead).
    pub el1_stage: RegFile,
    /// The guest hypervisor's virtual GIC hypervisor-interface state for
    /// its nested VM (`ICH_*` writes, sanitized into hardware on L2
    /// entry; paper Section 4, interrupt virtualization).
    pub vgic_l2: RegFile,
    /// The L1 VM's GIC interface state, saved while L2 owns the hardware
    /// list registers.
    pub vgic_l1: RegFile,
    /// L1 virtual interrupts that arrived while L2 owned the hardware,
    /// waiting for the next switch into the guest hypervisor.
    pub pending_l1_virqs: Vec<u32>,
    /// True when this guest hypervisor runs with NEVE.
    pub neve: bool,
    /// True for a VHE guest hypervisor (selects `NV1` and the
    /// redirect-or-trap treatment of `TCR_EL2`/`TTBR0_EL2`).
    pub guest_vhe: bool,
    /// Hypercalls the host serviced directly (plain-VM configurations).
    pub hypercalls_serviced: u64,
    /// Nested-VM exits reflected into virtual EL2.
    pub exits_forwarded: u64,
}

impl VCpu {
    /// Creates a vCPU chain in the given initial context.
    pub fn new(ctx: Ctx) -> Self {
        Self {
            ctx,
            vel2: RegFile::new(),
            vel2_hw: RegFile::new(),
            el1_stage: RegFile::new(),
            vgic_l2: RegFile::new(),
            vgic_l1: RegFile::new(),
            pending_l1_virqs: Vec::new(),
            neve: false,
            guest_vhe: false,
            hypercalls_serviced: 0,
            exits_forwarded: 0,
        }
    }

    /// The guest hypervisor's virtual `HCR_EL2` (ARMv8.3 storage; the
    /// NEVE path reads the deferred access page instead).
    pub fn vhcr(&self) -> u64 {
        self.vel2.read(SysReg::HcrEl2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neve_sysreg::bits::hcr;

    #[test]
    fn fresh_vcpu_has_zeroed_virtual_state() {
        let v = VCpu::new(Ctx::L1Payload);
        assert_eq!(v.ctx, Ctx::L1Payload);
        assert_eq!(v.vhcr(), 0);
        assert_eq!(v.hypercalls_serviced, 0);
        assert!(v.pending_l1_virqs.is_empty());
    }

    #[test]
    fn state_stores_are_independent() {
        let mut v = VCpu::new(Ctx::GhVel2);
        v.vel2_hw.write(SysReg::VbarEl1, 1);
        v.el1_stage.write(SysReg::VbarEl1, 2);
        v.vgic_l1.write(SysReg::IchLrEl2(0), 3);
        v.vgic_l2.write(SysReg::IchLrEl2(0), 4);
        assert_eq!(v.vel2_hw.read(SysReg::VbarEl1), 1);
        assert_eq!(v.el1_stage.read(SysReg::VbarEl1), 2);
        assert_eq!(v.vgic_l1.read(SysReg::IchLrEl2(0)), 3);
        assert_eq!(v.vgic_l2.read(SysReg::IchLrEl2(0)), 4);
    }

    #[test]
    fn vhcr_reads_virtual_hcr() {
        let mut v = VCpu::new(Ctx::GhVel2);
        v.vel2.write(SysReg::HcrEl2, hcr::VM | hcr::IMO);
        assert_eq!(v.vhcr() & hcr::VM, hcr::VM);
    }
}
