//! The L0 host hypervisor (paper Section 4).
//!
//! Native Rust software invoked by the machine on every trap to EL2. It
//! multiplexes the single level of ARM virtualization support across
//! nesting levels, Turtles-style:
//!
//! - runs plain VMs (hypercall service, MMIO device emulation, virtual
//!   interrupt injection, lazy Stage-2 faulting),
//! - deprivileges a guest hypervisor into EL1, emulating its trapped
//!   hypervisor instructions against virtual EL2 state,
//! - reflects nested-VM exits into virtual EL2 ("the host hypervisor...
//!   can then forward it to the L1 guest hypervisor"),
//! - multiplexes hardware EL1 between the guest hypervisor's contexts
//!   and the nested VM, switching Stage-2 roots between the host table
//!   and the collapsed shadow table, and
//! - on NEVE hardware, manages `VNCR_EL2` and the deferred access page
//!   (populate on guest-hypervisor entry, harvest on nested-VM entry —
//!   the "typical workflow" of Section 6.1).

use crate::guesthyp::{ParaMode, HVC_RUN_VCPU, PARA_HVC_BASE, PARA_HVC_ERET, PARA_WRITE_BIT};
use crate::guests::HVC_REARM;
use crate::layout;
use crate::rosters;
use crate::vcpu::{Ctx, VCpu};
use neve_armv8::machine::{ExitInfo, Hypervisor, Machine};
use neve_armv8::pstate::Pstate;
use neve_core::VncrEl2;
use neve_cycles::Phase;
use neve_gic::lr::ListRegister;
use neve_gic::vgic::ICH_HCR_EN;
use neve_memsim::{FrameAlloc, PageTable, ShadowS2};
use neve_sysreg::bits::{esr, hcr, spsr, vttbr};
use neve_sysreg::classify::{el1_counterpart, neve_class, vncr_offset, NeveClass};
use neve_sysreg::regcode;
use neve_sysreg::regs::NUM_LIST_REGS;
use neve_sysreg::{RegId, SysReg};

/// Physical SGI the host uses to kick a remote CPU out of a nested VM.
pub const KICK_SGI: u32 = 8;

/// PSCI v0.2 `CPU_ON` function identifier (SMC64 calling convention):
/// x0 = function, x1 = target CPU, x2 = entry point, x3 = context.
pub const PSCI_CPU_ON: u64 = 0xc400_0003;
/// PSCI `SUCCESS` return value.
pub const PSCI_SUCCESS: u64 = 0;
/// PSCI `INVALID_PARAMETERS` return value.
pub const PSCI_INVALID: u64 = -2i64 as u64;
/// PSCI `ALREADY_ON` return value.
pub const PSCI_ALREADY_ON: u64 = -4i64 as u64;

/// `HCR_EL2` the host programs while a plain VM or a nested VM runs.
pub const HCR_VM_RUN: u64 = hcr::VM | hcr::IMO | hcr::FMO | hcr::TSC;

/// How the guest hypervisor level is virtualized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NestedMode {
    /// The guest hypervisor is a VHE hypervisor.
    pub guest_vhe: bool,
    /// Use NEVE (`NV2` + deferred access page).
    pub neve: bool,
    /// Paravirtualization mode of the guest hypervisor image (decides
    /// how its `hvc`-encoded operations are decoded).
    pub para: ParaMode,
    /// GICv2: the guest hypervisor reaches the hypervisor control
    /// interface through the memory-mapped GICH frame (each access a
    /// Stage-2 abort) instead of `ICH_*` system-register traps.
    pub gic_mmio: bool,
    /// Standalone (Xen-style) guest hypervisor instead of the hosted
    /// (KVM-style) one — paper Section 6.5's design comparison.
    pub xen: bool,
}

/// The host hypervisor.
#[derive(Debug)]
pub struct HostHyp {
    /// Per-CPU vCPU chains.
    pub vcpus: Vec<VCpu>,
    /// The host itself runs with VHE (ARMv8.1 `E2H`): its kernel lives
    /// in EL2, so a trap needs *no* EL1 context swap to reach the
    /// handler — the optimization of Dall et al., "Optimizing the
    /// Design and Implementation of the Linux ARM Hypervisor" (ATC'17),
    /// which the paper cites as reference 16. The paper's own host hardware was
    /// ARMv8.0 and therefore non-VHE; this flag is the what-if.
    pub vhe_host: bool,
    /// The host's Stage-2 table for the L1 VM (lazily identity-filled).
    pub host_s2: PageTable,
    host_frames: FrameAlloc,
    /// Per-CPU shadow Stage-2 tables for the nested VM.
    shadows: Vec<ShadowS2>,
    /// The guest hypervisor's Stage-2 root (L2 IPA -> L1 PA), pre-built
    /// by the harness in L1-owned memory on the guest's behalf.
    pub guest_s2_root: u64,
    /// Nested virtualization parameters (None = plain-VM configuration).
    pub nested: Option<NestedMode>,
    /// Monotonic value returned by the emulated test device.
    pub device_value: u64,
    /// Hypercalls serviced at L0 for plain VMs.
    pub l0_hypercalls: u64,
}

impl HostHyp {
    /// Creates the host hypervisor and its Stage-2 scaffolding.
    pub fn new(m: &mut Machine, ncpus: usize, nested: Option<NestedMode>) -> Self {
        let mut host_frames = FrameAlloc::new(layout::HOST_S2_FRAMES, layout::HOST_S2_FRAMES_SIZE);
        let host_s2 = PageTable::new(&mut m.mem, &mut host_frames);
        let per_cpu = layout::SHADOW_S2_FRAMES_SIZE / ncpus as u64 / 4096 * 4096;
        let shadows = (0..ncpus)
            .map(|i| {
                let fa = FrameAlloc::new(layout::SHADOW_S2_FRAMES + i as u64 * per_cpu, per_cpu);
                ShadowS2::new(&mut m.mem, fa)
            })
            .collect();
        let mut vcpus: Vec<VCpu> = (0..ncpus)
            .map(|_| {
                VCpu::new(if nested.is_some() {
                    Ctx::GhVel2
                } else {
                    Ctx::L1Payload
                })
            })
            .collect();
        if let Some(nm) = nested {
            for v in &mut vcpus {
                v.neve = nm.neve;
                v.guest_vhe = nm.guest_vhe;
            }
        }
        // The host listens for its kick SGI on every CPU.
        for c in 0..ncpus {
            m.gic.dist.enable(c, KICK_SGI);
        }
        Self {
            vcpus,
            vhe_host: false,
            host_s2,
            host_frames,
            shadows,
            guest_s2_root: 0,
            nested,
            device_value: 0xd0d0,
            l0_hypercalls: 0,
        }
    }

    // ------------------------------------------------------------------
    // Cost helpers.
    // ------------------------------------------------------------------

    /// The non-VHE host's per-exit EL1 context swap: KVM on ARMv8.0
    /// hardware swaps the full EL1 state to run its host-kernel handler
    /// and back for every exit (the structure behind the paper's 2,729
    /// cycle VM hypercall). Modelled as an identity save/restore so the
    /// cycle cost is charged without disturbing semantics.
    fn host_kernel_roundtrip(&mut self, m: &mut Machine, cpu: usize) {
        m.hyp_work(m.cfg.cost.sw.kvm_arm_exit_common);
        if !self.vhe_host {
            // Non-VHE: the handler lives in the EL1 host kernel, so the
            // full EL1/GIC/timer context swaps out and back per exit.
            let prev = m.phase(cpu, Phase::El1Save);
            for &reg in rosters::el1_context() {
                let v = m.hyp_read(cpu, reg);
                m.hyp_mem_write(0, 0); // spill to the host context frame
                m.hyp_write(cpu, reg, v);
            }
            m.phase(cpu, Phase::GicSwitch);
            for &reg in rosters::gic_save() {
                let v = m.hyp_read(cpu, reg);
                if !reg.is_read_only() {
                    m.hyp_write(cpu, reg, v);
                }
            }
            m.phase(cpu, Phase::TimerSwitch);
            for &reg in rosters::timer_el1() {
                let v = m.hyp_read(cpu, reg);
                m.hyp_write(cpu, reg, v);
            }
            m.phase(cpu, prev);
        } else {
            // VHE: the kernel is already in EL2; only the GIC state is
            // synced per exit.
            let prev = m.phase(cpu, Phase::GicSwitch);
            for &reg in rosters::gic_save() {
                let v = m.hyp_read(cpu, reg);
                if !reg.is_read_only() {
                    m.hyp_write(cpu, reg, v);
                }
            }
            m.phase(cpu, prev);
        }
        m.hyp_work(m.cfg.cost.sw.kvm_arm_enter_common);
    }

    // ------------------------------------------------------------------
    // NEVE page / staged-context accessors.
    // ------------------------------------------------------------------

    fn neve_on(&self, cpu: usize) -> bool {
        self.vcpus[cpu].neve
    }

    /// Reads the staged EL1-context value of `reg` (page slot under
    /// NEVE, host-side store on ARMv8.3).
    fn stage_read(&mut self, m: &mut Machine, cpu: usize, reg: SysReg) -> u64 {
        if self.neve_on(cpu) {
            let off = vncr_offset(reg).expect("staged register has a slot") as u64;
            m.hyp_mem_read(layout::vncr_page(cpu) + off)
        } else {
            m.hyp_work(m.cfg.cost.arm.mem_load);
            self.vcpus[cpu].el1_stage.read(reg)
        }
    }

    /// Writes the staged EL1-context value of `reg`.
    fn stage_write(&mut self, m: &mut Machine, cpu: usize, reg: SysReg, v: u64) {
        if self.neve_on(cpu) {
            let off = vncr_offset(reg).expect("staged register has a slot") as u64;
            m.hyp_mem_write(layout::vncr_page(cpu) + off, v);
        } else {
            m.hyp_work(m.cfg.cost.arm.mem_store);
            self.vcpus[cpu].el1_stage.write(reg, v);
        }
    }

    /// Reads a virtual-EL2 trap-control value (`vHCR`, `vVTTBR`, ...):
    /// the page slot under NEVE (the guest wrote it there directly), the
    /// trapped-write store on ARMv8.3.
    fn vel2_ctl_read(&mut self, m: &mut Machine, cpu: usize, reg: SysReg) -> u64 {
        if self.neve_on(cpu) && vncr_offset(reg).is_some() {
            let off = vncr_offset(reg).expect("checked") as u64;
            m.hyp_mem_read(layout::vncr_page(cpu) + off)
        } else {
            self.vcpus[cpu].vel2.read(reg)
        }
    }

    /// Refreshes the cached copies in the deferred access page before
    /// running the guest hypervisor (Section 6.1's workflow: GIC state
    /// and trap-on-write control registers become readable without
    /// traps).
    fn refresh_neve_cached_copies(&mut self, m: &mut Machine, cpu: usize) {
        if !self.neve_on(cpu) {
            return;
        }
        let prev = m.phase(cpu, Phase::VncrRefresh);
        let page = layout::vncr_page(cpu);
        for reg in [
            SysReg::IchVmcrEl2,
            SysReg::IchEisrEl2,
            SysReg::IchElrsrEl2,
            SysReg::IchMisrEl2,
            SysReg::IchHcrEl2,
        ] {
            let v = self.vcpus[cpu].vgic_l2.read(reg);
            m.hyp_mem_write(page + vncr_offset(reg).expect("gic slot") as u64, v);
        }
        for n in 0..NUM_LIST_REGS {
            let r = SysReg::IchLrEl2(n);
            let v = self.vcpus[cpu].vgic_l2.read(r);
            m.hyp_mem_write(page + vncr_offset(r).expect("lr slot") as u64, v);
        }
        for reg in [
            SysReg::CnthctlEl2,
            SysReg::CntvoffEl2,
            SysReg::CptrEl2,
            SysReg::MdcrEl2,
        ] {
            let v = self.vcpus[cpu].vel2.read(reg);
            m.hyp_mem_write(page + vncr_offset(reg).expect("ctl slot") as u64, v);
        }
        m.phase(cpu, prev);
    }

    // ------------------------------------------------------------------
    // Hardware EL1 context moves.
    // ------------------------------------------------------------------

    /// Saves hardware EL1 (the departing context) into the stage.
    fn hw_to_stage(&mut self, m: &mut Machine, cpu: usize) {
        let prev = m.phase(cpu, Phase::El1Save);
        for &reg in rosters::el1_context() {
            let v = m.hyp_read(cpu, reg);
            self.stage_write(m, cpu, reg, v);
        }
        m.phase(cpu, prev);
    }

    /// Materialises the staged context into hardware EL1.
    fn stage_to_hw(&mut self, m: &mut Machine, cpu: usize) {
        let prev = m.phase(cpu, Phase::El1Restore);
        for &reg in rosters::el1_context() {
            let v = self.stage_read(m, cpu, reg);
            m.hyp_write(cpu, reg, v);
        }
        m.phase(cpu, prev);
    }

    /// Saves hardware EL1 into the virtual-EL2 hardware image.
    fn hw_to_vel2_image(&mut self, m: &mut Machine, cpu: usize) {
        let prev = m.phase(cpu, Phase::El1Save);
        for &reg in rosters::el1_context() {
            let v = m.hyp_read(cpu, reg);
            self.vcpus[cpu].vel2_hw.write(reg, v);
        }
        m.phase(cpu, prev);
    }

    /// Loads the virtual-EL2 hardware image into hardware EL1.
    fn vel2_image_to_hw(&mut self, m: &mut Machine, cpu: usize) {
        let prev = m.phase(cpu, Phase::El1Restore);
        for &reg in rosters::el1_context() {
            let v = self.vcpus[cpu].vel2_hw.read(reg);
            m.hyp_write(cpu, reg, v);
        }
        m.phase(cpu, prev);
    }

    /// Saves the hardware GIC interface into `vgic_l2` (harvest after L2
    /// ran) and restores the L1 interface.
    fn gic_l2_to_l1(&mut self, m: &mut Machine, cpu: usize) {
        let prev = m.phase(cpu, Phase::GicSwitch);
        for n in 0..NUM_LIST_REGS {
            let r = SysReg::IchLrEl2(n);
            let v = m.hyp_read(cpu, r);
            self.vcpus[cpu].vgic_l2.write(r, v);
        }
        for r in [
            SysReg::IchVmcrEl2,
            SysReg::IchEisrEl2,
            SysReg::IchElrsrEl2,
            SysReg::IchMisrEl2,
        ] {
            let v = m.hyp_read(cpu, r);
            self.vcpus[cpu].vgic_l2.write(r, v);
        }
        // Restore L1's interface.
        for n in 0..NUM_LIST_REGS {
            let r = SysReg::IchLrEl2(n);
            let v = self.vcpus[cpu].vgic_l1.read(r);
            m.hyp_write(cpu, r, v);
        }
        let v = self.vcpus[cpu].vgic_l1.read(SysReg::IchVmcrEl2);
        m.hyp_write(cpu, SysReg::IchVmcrEl2, v);
        m.hyp_write(cpu, SysReg::IchHcrEl2, ICH_HCR_EN);
        m.phase(cpu, prev);
    }

    /// Saves the hardware GIC interface into `vgic_l1` and loads the
    /// guest hypervisor's (sanitized) interface for the nested VM.
    fn gic_l1_to_l2(&mut self, m: &mut Machine, cpu: usize) {
        let prev = m.phase(cpu, Phase::GicSwitch);
        for n in 0..NUM_LIST_REGS {
            let r = SysReg::IchLrEl2(n);
            let v = m.hyp_read(cpu, r);
            self.vcpus[cpu].vgic_l1.write(r, v);
        }
        let v = m.hyp_read(cpu, SysReg::IchVmcrEl2);
        self.vcpus[cpu].vgic_l1.write(SysReg::IchVmcrEl2, v);
        // Sanitize and load the guest's list registers (paper Section 4:
        // "sanitize and translate the payload before writing shadow
        // copies of the register payload into the hardware control
        // interface").
        for n in 0..NUM_LIST_REGS {
            let r = SysReg::IchLrEl2(n);
            let raw = self.vcpus[cpu].vgic_l2.read(r);
            let sanitized = ListRegister::decode(raw).encode();
            m.hyp_write(cpu, r, sanitized);
        }
        let vmcr = self.vcpus[cpu].vgic_l2.read(SysReg::IchVmcrEl2);
        m.hyp_write(cpu, SysReg::IchVmcrEl2, vmcr);
        let hcr_v = self.vcpus[cpu].vgic_l2.read(SysReg::IchHcrEl2);
        m.hyp_write(cpu, SysReg::IchHcrEl2, hcr_v | ICH_HCR_EN);
        m.phase(cpu, prev);
    }

    // ------------------------------------------------------------------
    // Mode switches.
    // ------------------------------------------------------------------

    /// `HCR_EL2` for running the guest hypervisor in virtual EL2.
    fn hcr_vel2(&self, cpu: usize) -> u64 {
        let v = &self.vcpus[cpu];
        let mut bits = hcr::VM | hcr::IMO | hcr::FMO | hcr::TSC | hcr::NV;
        if !v.guest_vhe {
            bits |= hcr::NV1;
        }
        if v.neve {
            bits |= hcr::NV2;
        }
        bits
    }

    /// Reflects an exception into virtual EL2 (the guest hypervisor's
    /// vector). `vector_offset` is 0x400 for sync, 0x480 for IRQ.
    #[allow(clippy::too_many_arguments)]
    fn reflect_to_vel2(
        &mut self,
        m: &mut Machine,
        cpu: usize,
        vesr: u64,
        velr: u64,
        vspsr: u64,
        vfar: u64,
        vhpfar: u64,
        vector_offset: u64,
    ) {
        m.hyp_work(m.cfg.cost.sw.kvm_arm_vel2_inject);
        // Virtual exception state lives in the EL1 counterparts of the
        // redirected registers (paper Table 4): on NEVE hardware the
        // guest reads them from hardware EL1 without trapping, on
        // ARMv8.3 the host serves the traps from the same image.
        self.vcpus[cpu].vel2_hw.write(SysReg::EsrEl1, vesr);
        self.vcpus[cpu].vel2_hw.write(SysReg::ElrEl1, velr);
        self.vcpus[cpu].vel2_hw.write(SysReg::SpsrEl1, vspsr);
        self.vcpus[cpu].vel2_hw.write(SysReg::FarEl1, vfar);
        self.vcpus[cpu].vel2.write(SysReg::HpfarEl2, vhpfar);
        if self.neve_on(cpu) {
            let off = vncr_offset(SysReg::HpfarEl2).expect("hpfar slot") as u64;
            m.hyp_mem_write(layout::vncr_page(cpu) + off, vhpfar);
        }
        self.vel2_image_to_hw(m, cpu);
        self.refresh_neve_cached_copies(m, cpu);
        m.hyp_write(cpu, SysReg::HcrEl2, self.hcr_vel2(cpu));
        m.hyp_write(
            cpu,
            SysReg::VttbrEl2,
            vttbr::build(layout::VMID_L1, self.host_s2.root),
        );
        let vncr = if self.neve_on(cpu) {
            VncrEl2::enabled_at(layout::vncr_page(cpu))
                .expect("page aligned")
                .raw()
        } else {
            0
        };
        m.hyp_write(cpu, SysReg::VncrEl2, vncr);
        let vbar = self.vcpus[cpu].vel2_hw.read(SysReg::VbarEl1);
        m.hyp_write(cpu, SysReg::ElrEl2, vbar + vector_offset);
        m.hyp_write(cpu, SysReg::SpsrEl2, spsr::mode_h(1) | spsr::I | spsr::F);
        self.vcpus[cpu].ctx = Ctx::GhVel2;
        self.vcpus[cpu].exits_forwarded += 1;
    }

    /// Full switch: the nested VM exits into the guest hypervisor.
    fn switch_l2_to_vel2(
        &mut self,
        m: &mut Machine,
        cpu: usize,
        vesr: u64,
        vfar: u64,
        vhpfar: u64,
        vector_offset: u64,
    ) {
        // The L2 interrupt state and EL1 context leave the hardware.
        let velr = m.hyp_read(cpu, SysReg::ElrEl2);
        let vspsr = m.hyp_read(cpu, SysReg::SpsrEl2);
        self.hw_to_stage(m, cpu);
        self.gic_l2_to_l1(m, cpu);
        self.reflect_to_vel2(m, cpu, vesr, velr, vspsr, vfar, vhpfar, vector_offset);
    }

    /// The guest hypervisor's trapped `eret`: enter the nested VM or its
    /// virtual-EL1 kernel depending on the virtual `HCR_EL2.VM`
    /// (Section 4: "entering the nested VM is only possible once the
    /// host hypervisor loads the emulated nested VM state").
    fn emulate_eret(&mut self, m: &mut Machine, cpu: usize) {
        let prev = m.phase(cpu, Phase::EretEmul);
        m.hyp_work(m.cfg.cost.sw.kvm_arm_eret_emul);
        // Capture the virtual return state before touching hardware EL1.
        // Both paths keep it in hardware `ELR_EL1`/`SPSR_EL1` while
        // virtual EL2 runs: NEVE by hardware redirection, ARMv8.3 by the
        // host syncing its emulation of the trapped writes.
        let velr = m.hyp_read(cpu, SysReg::ElrEl1);
        let vspsr = m.hyp_read(cpu, SysReg::SpsrEl1);
        let vhcr = self.vel2_ctl_read(m, cpu, SysReg::HcrEl2);
        // The virtual-EL2 hardware image leaves the hardware.
        self.hw_to_vel2_image(m, cpu);

        if vhcr & hcr::VM != 0 {
            // Enter the nested VM over the shadow Stage-2.
            m.hyp_work(m.cfg.cost.sw.kvm_arm_shadow_s2_switch);
            self.stage_to_hw(m, cpu);
            self.gic_l1_to_l2(m, cpu);
            m.hyp_write(cpu, SysReg::HcrEl2, HCR_VM_RUN);
            m.hyp_write(
                cpu,
                SysReg::VttbrEl2,
                vttbr::build(layout::VMID_L2, self.shadows[cpu].table.root),
            );
            m.hyp_write(cpu, SysReg::VncrEl2, 0);
            m.hyp_write(cpu, SysReg::ElrEl2, velr);
            let mut target = Pstate::from_spsr(vspsr);
            if target.el > 1 {
                target.el = 1; // sanitize: a VM never enters EL2
            }
            m.hyp_write(cpu, SysReg::SpsrEl2, target.to_spsr());
            self.vcpus[cpu].ctx = Ctx::L2;
        } else {
            // Enter the guest hypervisor's kernel half in virtual EL1.
            self.stage_to_hw(m, cpu);
            m.hyp_write(cpu, SysReg::HcrEl2, HCR_VM_RUN);
            m.hyp_write(
                cpu,
                SysReg::VttbrEl2,
                vttbr::build(layout::VMID_L1, self.host_s2.root),
            );
            m.hyp_write(cpu, SysReg::VncrEl2, 0);
            m.hyp_write(cpu, SysReg::ElrEl2, velr);
            m.hyp_write(cpu, SysReg::SpsrEl2, spsr::mode_h(1) | spsr::I | spsr::F);
            self.vcpus[cpu].ctx = Ctx::GhVel1;
        }
        m.phase(cpu, prev);
    }

    /// The kernel half calls back into the hypervisor half: reflect an
    /// `hvc` into virtual EL2.
    fn switch_vel1_to_vel2(&mut self, m: &mut Machine, cpu: usize, info: ExitInfo) {
        let vspsr = m.hyp_read(cpu, SysReg::SpsrEl2);
        self.hw_to_stage(m, cpu);
        self.reflect_to_vel2(
            m,
            cpu,
            esr::build(esr::EC_HVC64, esr::iss(info.esr)),
            info.elr,
            vspsr,
            0,
            0,
            0x400,
        );
    }

    // ------------------------------------------------------------------
    // Trapped-instruction emulation for the guest hypervisor.
    // ------------------------------------------------------------------

    /// Emulates one trapped (or `hvc`-paravirtualized) system-register
    /// access from virtual EL2.
    fn emulate_gh_sysreg(
        &mut self,
        m: &mut Machine,
        cpu: usize,
        id: RegId,
        write: bool,
        value: u64,
    ) -> u64 {
        let prev = m.phase(cpu, Phase::SysRegEmul);
        let v = self.emulate_gh_sysreg_inner(m, cpu, id, write, value);
        m.phase(cpu, prev);
        v
    }

    fn emulate_gh_sysreg_inner(
        &mut self,
        m: &mut Machine,
        cpu: usize,
        id: RegId,
        write: bool,
        value: u64,
    ) -> u64 {
        m.hyp_work(m.cfg.cost.sw.kvm_arm_sysreg_emul);
        let reg = id.base_reg();
        // The VM's EL1 timer accessed through VHE `*_EL02` forms: the
        // VM timer stays live in hardware across the switch (KVM only
        // parks it at vcpu_put), so these operate on the real timer.
        if matches!(id, RegId::El02(_)) {
            return if write {
                m.hyp_write(cpu, reg, value);
                0
            } else {
                m.hyp_read(cpu, reg)
            };
        }
        // The VM's EL1 context (`*_EL12`, plain EL1 names under NV1, or
        // the EL2-encoded `SP_EL1`).
        if matches!(id, RegId::El12(_))
            || !reg.is_el2()
            || neve_class(reg) == NeveClass::VmExecutionControl
        {
            return if write {
                self.stage_write(m, cpu, reg, value);
                0
            } else {
                self.stage_read(m, cpu, reg)
            };
        }
        match neve_class(reg) {
            NeveClass::GicTrapOnWrite => {
                if write {
                    self.vcpus[cpu].vgic_l2.write(reg, value);
                    if self.neve_on(cpu) {
                        let off = vncr_offset(reg).expect("gic slot") as u64;
                        m.hyp_mem_write(layout::vncr_page(cpu) + off, value);
                    }
                    0
                } else {
                    self.vcpus[cpu].vgic_l2.read(reg)
                }
            }
            NeveClass::HypRedirect | NeveClass::HypRedirectVhe => {
                // ARMv8.3 path only (NEVE redirects in hardware): the
                // register lives in the virtual-EL2 hardware image.
                let el1 = el1_counterpart(reg).expect("redirectable");
                if write {
                    self.vcpus[cpu].vel2_hw.write(el1, value);
                    // Keep hardware in sync while virtual EL2 runs.
                    m.hyp_write(cpu, el1, value);
                    0
                } else {
                    self.vcpus[cpu].vel2_hw.read(el1)
                }
            }
            NeveClass::HypRedirectOrTrap => {
                let el1 = el1_counterpart(reg).expect("redirectable");
                if write {
                    self.vcpus[cpu].vel2_hw.write(el1, value);
                    0
                } else {
                    self.vcpus[cpu].vel2_hw.read(el1)
                }
            }
            NeveClass::TimerTrap => {
                // The guest hypervisor's own EL2 timer: emulate against
                // the virtual store (full hardware timer emulation for
                // virtual EL2 timers is future work for the workloads).
                if write {
                    self.vcpus[cpu].vel2.write(reg, value);
                    0
                } else {
                    self.vcpus[cpu].vel2.read(reg)
                }
            }
            // VM trap control, thread ID, trap-on-write controls and
            // anything else EL2-flavoured: the virtual EL2 store, with
            // the NEVE cached copy refreshed on writes.
            _ => {
                if write {
                    self.vcpus[cpu].vel2.write(reg, value);
                    if self.neve_on(cpu) {
                        if let Some(off) = vncr_offset(reg) {
                            m.hyp_mem_write(layout::vncr_page(cpu) + off as u64, value);
                        }
                    }
                    0
                } else {
                    self.vel2_ctl_read(m, cpu, reg)
                }
            }
        }
    }

    /// Emulates an SGI-generation write (`ICC_SGI1R_EL1`) from any L1
    /// context: a virtual IPI between L1 vCPUs.
    fn emulate_sgi(&mut self, m: &mut Machine, cpu: usize, value: u64) {
        m.hyp_work(m.cfg.cost.sw.kvm_arm_virq_inject);
        let intid = ((value >> 24) & 0xf) as u32;
        let targets = (value & 0xffff) as u16;
        for t in 0..m.ncpus() {
            if targets & (1 << t) == 0 {
                continue;
            }
            // Queue for the target and send a physical IPI so the
            // target CPU exits and its host-side entry path performs the
            // injection — both VM exits the paper's Virtual IPI
            // microbenchmark counts (sender *and* receiver, Section 5).
            self.vcpus[t].pending_l1_virqs.push(intid);
            m.gic.dist.send_sgi(cpu, 1 << t, KICK_SGI);
        }
    }

    /// Lazily identity-maps L1 RAM at Stage-2 (KVM's fault-in path).
    /// An IPA outside the memslots gets an external abort injected into
    /// the guest instead (KVM's `kvm_inject_dabt`); a guest must never
    /// be able to panic the host.
    fn map_l1_ram(&mut self, m: &mut Machine, cpu: usize, ipa: u64) {
        m.hyp_work(600); // fault path: mmu lock, memslot lookup, pfn
        if ipa >= layout::RAM_SIZE {
            self.inject_guest_abort(m, cpu, ipa);
            return;
        }
        // A corrupted host Stage-2 (fault injection, or a guest finding
        // a host bug) degrades into a guest-visible abort, never a host
        // panic.
        if self
            .host_s2
            .try_map(
                &mut m.mem,
                &mut self.host_frames,
                ipa,
                ipa,
                neve_memsim::Perms::RWX,
            )
            .is_err()
        {
            self.inject_guest_abort(m, cpu, ipa);
        }
    }

    /// Injects a synchronous external abort into the guest's EL1 (the
    /// response to an access no memslot backs).
    fn inject_guest_abort(&mut self, m: &mut Machine, cpu: usize, far: u64) {
        m.hyp_work(m.cfg.cost.sw.kvm_arm_handler_simple);
        let elr = m.hyp_read(cpu, SysReg::ElrEl2);
        let spsr = m.hyp_read(cpu, SysReg::SpsrEl2);
        m.hyp_write(cpu, SysReg::EsrEl1, esr::build(esr::EC_DABT_LOW, 0));
        m.hyp_write(cpu, SysReg::FarEl1, far);
        m.hyp_write(cpu, SysReg::ElrEl1, elr);
        m.hyp_write(cpu, SysReg::SpsrEl1, spsr);
        let vbar = m.hyp_read(cpu, SysReg::VbarEl1);
        m.hyp_write(cpu, SysReg::ElrEl2, vbar + 0x200);
        m.hyp_write(cpu, SysReg::SpsrEl2, spsr::mode_h(1) | spsr::I | spsr::F);
    }

    /// Handles a Stage-2 abort from the nested VM over the shadow table.
    fn handle_l2_abort(&mut self, m: &mut Machine, cpu: usize, info: ExitInfo) {
        let ipa = info.hpfar;
        if layout::is_device(ipa) {
            // Forward to the guest hypervisor: its device, its abort.
            let vesr = esr::build(esr::EC_DABT_LOW, esr::iss(info.esr));
            // The guest hypervisor's shadow-ISS: keep the request so the
            // *it* can emulate; drop the host-latched MMIO record.
            let _ = m.take_mmio(cpu);
            self.switch_l2_to_vel2(m, cpu, vesr, info.far, ipa, 0x400);
            return;
        }
        let _ = m.take_mmio(cpu);
        m.hyp_work(m.cfg.cost.sw.kvm_arm_shadow_s2_switch);
        let vvttbr = self.vel2_ctl_read(m, cpu, SysReg::VttbrEl2);
        let root = if vttbr::baddr(vvttbr) != 0 {
            vttbr::baddr(vvttbr)
        } else {
            self.guest_s2_root
        };
        let guest_s2 = PageTable { root };
        use neve_memsim::shadow::ShadowFault;
        match self.shadows[cpu].fill(&mut m.mem, guest_s2, self.host_s2, ipa) {
            Ok(()) => {}
            Err(ShadowFault::HostStage2(_)) => {
                // Host has not faulted this L1 page in yet: do both. The
                // guest walk can fail even though the fill walked it a
                // moment ago (a corrupted table under fault injection):
                // that is the guest hypervisor's abort, not a host panic.
                match neve_memsim::walk(&m.mem, guest_s2, ipa, neve_memsim::Access::Read) {
                    Ok(g) => {
                        self.map_l1_ram(m, cpu, g.pa);
                        if self.shadows[cpu]
                            .fill(&mut m.mem, guest_s2, self.host_s2, ipa)
                            .is_err()
                        {
                            self.rebuild_shadow_or_reflect(m, cpu, info, guest_s2, ipa);
                        }
                    }
                    Err(_) => self.reflect_l2_abort(m, cpu, info, ipa),
                }
            }
            Err(ShadowFault::GuestStage2(_)) => {
                // The guest hypervisor did not map this IPA: its abort.
                self.reflect_l2_abort(m, cpu, info, ipa);
            }
            Err(ShadowFault::ShadowCorrupt(_)) => {
                // The shadow table itself is damaged: throw it away and
                // rebuild from the source tables (the simple-and-correct
                // wholesale invalidation the paper's prototype uses).
                self.rebuild_shadow_or_reflect(m, cpu, info, guest_s2, ipa);
            }
        }
        // Retry the faulting access (ELR_EL2 still points at it).
    }

    /// Forwards a nested Stage-2 abort to the guest hypervisor's
    /// virtual EL2 (its table, its abort).
    fn reflect_l2_abort(&mut self, m: &mut Machine, cpu: usize, info: ExitInfo, ipa: u64) {
        let vesr = esr::build(esr::EC_DABT_LOW, esr::iss(info.esr));
        self.switch_l2_to_vel2(m, cpu, vesr, info.far, ipa, 0x400);
    }

    /// Last-resort recovery for a damaged shadow table: wholesale
    /// invalidation (with the matching TLB flush) and one refill
    /// attempt; if the sources are still unwalkable the abort is
    /// reflected to the guest hypervisor.
    fn rebuild_shadow_or_reflect(
        &mut self,
        m: &mut Machine,
        cpu: usize,
        info: ExitInfo,
        guest_s2: PageTable,
        ipa: u64,
    ) {
        self.shadows[cpu].invalidate_all(&mut m.mem);
        let hw_vttbr = m.hyp_read(cpu, SysReg::VttbrEl2);
        m.hyp_tlbi_vmid(vttbr::vmid(hw_vttbr));
        if self.shadows[cpu]
            .fill(&mut m.mem, guest_s2, self.host_s2, ipa)
            .is_err()
        {
            self.reflect_l2_abort(m, cpu, info, ipa);
        }
    }

    /// Advances the trapped instruction (KVM's `kvm_skip_instr`).
    fn skip(&mut self, m: &mut Machine, cpu: usize, info: ExitInfo) {
        m.hyp_write(cpu, SysReg::ElrEl2, info.elr + 4);
    }

    /// Checked-mode oracle hook: verifies every per-CPU shadow Stage-2
    /// equals the composition of the guest hypervisor's virtual Stage-2
    /// with the host's Stage-2 — the defining property of shadow paging
    /// (paper Section 4). Read-only and charge-free (raw memory reads),
    /// so the `neve check` command can run it between iterations without
    /// perturbing measurements. Returns one description per discrepancy,
    /// empty when every shadow is consistent.
    pub fn verify_shadow_composition(&self, m: &Machine) -> Vec<String> {
        let mut bad = Vec::new();
        if self.nested.is_none() {
            return bad;
        }
        for (cpu, shadow) in self.shadows.iter().enumerate() {
            // The guest's virtual VTTBR, read the way the fill path
            // reads it (NEVE: the deferred access page; v8.3: the
            // trapped-write store), falling back to the harness-built
            // root exactly like `handle_l2_abort`.
            let vvttbr = if self.vcpus[cpu].neve && vncr_offset(SysReg::VttbrEl2).is_some() {
                let off = vncr_offset(SysReg::VttbrEl2).expect("checked") as u64;
                m.mem.read_u64(layout::vncr_page(cpu) + off)
            } else {
                self.vcpus[cpu].vel2.read(SysReg::VttbrEl2)
            };
            let root = if vttbr::baddr(vvttbr) != 0 {
                vttbr::baddr(vvttbr)
            } else {
                self.guest_s2_root
            };
            if root == 0 {
                continue;
            }
            let guest_s2 = PageTable { root };
            for d in shadow.verify_composition(&m.mem, guest_s2, self.host_s2) {
                bad.push(format!("cpu{cpu}: {d}"));
            }
        }
        bad
    }

    // ------------------------------------------------------------------
    // Exit handlers per context.
    // ------------------------------------------------------------------

    fn handle_l1_payload(&mut self, m: &mut Machine, cpu: usize, info: ExitInfo) {
        self.host_kernel_roundtrip(m, cpu);
        match esr::ec(info.esr) {
            esr::EC_HVC64 => {
                if esr::iss(info.esr) == HVC_REARM as u64 {
                    // The EOI benchmark's re-arm hook.
                    m.hyp_write(cpu, SysReg::IchHcrEl2, ICH_HCR_EN);
                    m.gic.inject_virq(cpu, layout::EOI_VINTID, 0x80);
                } else {
                    m.hyp_work(m.cfg.cost.sw.kvm_arm_handler_simple);
                    self.l0_hypercalls += 1;
                    self.vcpus[cpu].hypercalls_serviced += 1;
                    m.core_mut(cpu).set_gpr(0, 0);
                }
            }
            esr::EC_DABT_LOW => {
                if let Some(req) = m.take_mmio(cpu) {
                    if layout::is_device(req.ipa) {
                        m.hyp_work(m.cfg.cost.sw.kvm_arm_mmio_emul);
                        if !req.write {
                            let v = self.device_value;
                            m.complete_mmio_read(cpu, req, v);
                        }
                        self.skip(m, cpu, info);
                    } else {
                        self.map_l1_ram(m, cpu, req.ipa);
                        // Retry the access.
                    }
                }
            }
            esr::EC_SYSREG => {
                if let Some((id, write, rt)) = regcode::parse_sysreg_iss(esr::iss(info.esr)) {
                    if id.base_reg() == SysReg::IccSgi1rEl1 && write {
                        let v = m.core(cpu).gpr(rt);
                        self.emulate_sgi(m, cpu, v);
                    }
                }
                self.skip(m, cpu, info);
            }
            esr::EC_SMC64 => {
                self.handle_psci(m, cpu);
                self.skip(m, cpu, info);
            }
            _ => {
                self.skip(m, cpu, info);
            }
        }
    }

    /// Emulates the PSCI firmware interface for a VM (`smc` with the
    /// function in x0) — how real ARM guests boot their secondary vCPUs.
    fn handle_psci(&mut self, m: &mut Machine, cpu: usize) {
        m.hyp_work(m.cfg.cost.sw.kvm_arm_handler_simple);
        let fid = m.core(cpu).gpr(0);
        if fid != PSCI_CPU_ON {
            m.core_mut(cpu).set_gpr(0, PSCI_INVALID);
            return;
        }
        let target = m.core(cpu).gpr(1) as usize;
        let entry = m.core(cpu).gpr(2);
        let context = m.core(cpu).gpr(3);
        if target >= m.ncpus() || target == cpu {
            m.core_mut(cpu).set_gpr(0, PSCI_INVALID);
            return;
        }
        if !matches!(self.vcpus[target].ctx, Ctx::L1Payload) || m.core(target).pc != 0 {
            // Only parked (never-started) vCPUs can be powered on.
            m.core_mut(cpu).set_gpr(0, PSCI_ALREADY_ON);
            return;
        }
        // Mirror the caller's virtualization configuration onto the
        // target and start it at the requested entry point.
        let hcr_v = m.hyp_read(cpu, SysReg::HcrEl2);
        let vttbr_v = m.hyp_read(cpu, SysReg::VttbrEl2);
        m.hyp_write(target, SysReg::HcrEl2, hcr_v);
        m.hyp_write(target, SysReg::VttbrEl2, vttbr_v);
        m.hyp_write(target, SysReg::IchHcrEl2, ICH_HCR_EN);
        m.core_mut(target).set_gpr(0, context);
        m.core_mut(target).pc = entry;
        m.core_mut(target).pstate = Pstate {
            el: 1,
            irq_masked: true,
            fiq_masked: true,
        };
        // `kick` rather than a bare `wfi = false`: the target may be
        // parked on the event wheel, and CPU_ON must return it to the
        // runnable set immediately.
        m.kick(target);
        m.core_mut(cpu).set_gpr(0, PSCI_SUCCESS);
    }

    fn handle_gh_vel2(&mut self, m: &mut Machine, cpu: usize, info: ExitInfo) {
        self.host_kernel_roundtrip(m, cpu);
        match esr::ec(info.esr) {
            esr::EC_SYSREG => {
                let iss = esr::iss(info.esr);
                if iss == 1 {
                    // Trapped TLB maintenance: the guest's Stage-2 view
                    // changed; drop the shadow.
                    self.shadows[cpu].invalidate_all(&mut m.mem);
                    m.hyp_tlbi_vmid(layout::VMID_L2);
                    self.skip(m, cpu, info);
                    return;
                }
                let Some((id, write, rt)) = regcode::parse_sysreg_iss(iss) else {
                    self.skip(m, cpu, info);
                    return;
                };
                if id.base_reg() == SysReg::IccSgi1rEl1 && write {
                    let v = m.core(cpu).gpr(rt);
                    self.emulate_sgi(m, cpu, v);
                    self.skip(m, cpu, info);
                    return;
                }
                if write {
                    let v = m.core(cpu).gpr(rt);
                    self.emulate_gh_sysreg(m, cpu, id, true, v);
                } else {
                    let v = self.emulate_gh_sysreg(m, cpu, id, false, 0);
                    m.core_mut(cpu).set_gpr(rt, v);
                }
                self.skip(m, cpu, info);
            }
            esr::EC_ERET => {
                self.emulate_eret(m, cpu);
            }
            esr::EC_HVC64 => {
                // Paravirtualized operations (Section 4) arrive as hvc
                // with the operation encoded in the immediate.
                let imm = esr::iss(info.esr) as u16;
                if imm == PARA_HVC_ERET {
                    self.emulate_eret(m, cpu);
                } else if imm >= PARA_HVC_BASE {
                    let write = imm & PARA_WRITE_BIT != 0;
                    let code = imm & !(PARA_WRITE_BIT) & !PARA_HVC_BASE;
                    if let Some(id) = regcode::decode(code) {
                        if id.base_reg() == SysReg::IccSgi1rEl1 && write {
                            let v = m.core(cpu).gpr(0);
                            self.emulate_sgi(m, cpu, v);
                        } else if write {
                            let v = m.core(cpu).gpr(0);
                            self.emulate_gh_sysreg(m, cpu, id, true, v);
                        } else {
                            let v = self.emulate_gh_sysreg(m, cpu, id, false, 0);
                            m.core_mut(cpu).set_gpr(0, v);
                        }
                    }
                    // hvc's preferred return is already past the call.
                } else {
                    // A run-vCPU call reflected while already in virtual
                    // EL2 (initial entry path): nothing to do, continue.
                }
            }
            esr::EC_DABT_LOW => {
                if let Some(req) = m.take_mmio(cpu) {
                    if layout::is_gich(req.ipa) {
                        // GICv2: an access to the memory-mapped
                        // hypervisor control interface — emulated like
                        // the equivalent ICH system-register trap.
                        let off = req.ipa - layout::GICH_BASE;
                        if let Some(reg) = neve_gic::mmio::reg_at(off) {
                            if req.write {
                                self.emulate_gh_sysreg(m, cpu, RegId::Plain(reg), true, req.value);
                            } else {
                                let v = self.emulate_gh_sysreg(m, cpu, RegId::Plain(reg), false, 0);
                                m.complete_mmio_read(cpu, req, v);
                            }
                        }
                        self.skip(m, cpu, info);
                    } else {
                        // The guest hypervisor touched unmapped L1 RAM.
                        self.map_l1_ram(m, cpu, req.ipa);
                    }
                }
            }
            _ => {
                self.skip(m, cpu, info);
            }
        }
    }

    fn handle_gh_vel1(&mut self, m: &mut Machine, cpu: usize, info: ExitInfo) {
        self.host_kernel_roundtrip(m, cpu);
        match esr::ec(info.esr) {
            esr::EC_HVC64 if esr::iss(info.esr) as u16 == HVC_RUN_VCPU => {
                self.switch_vel1_to_vel2(m, cpu, info);
            }
            esr::EC_HVC64 => {
                // Any other kernel hvc: also reflected (kvm_call_hyp).
                self.switch_vel1_to_vel2(m, cpu, info);
            }
            esr::EC_SYSREG => {
                if let Some((id, write, rt)) = regcode::parse_sysreg_iss(esr::iss(info.esr)) {
                    if id.base_reg() == SysReg::IccSgi1rEl1 && write {
                        let v = m.core(cpu).gpr(rt);
                        self.emulate_sgi(m, cpu, v);
                    }
                }
                self.skip(m, cpu, info);
            }
            esr::EC_DABT_LOW => {
                if let Some(req) = m.take_mmio(cpu) {
                    self.map_l1_ram(m, cpu, req.ipa);
                }
            }
            _ => {
                self.skip(m, cpu, info);
            }
        }
    }

    fn handle_l2_exit(&mut self, m: &mut Machine, cpu: usize, info: ExitInfo) {
        self.host_kernel_roundtrip(m, cpu);
        match esr::ec(info.esr) {
            esr::EC_HVC64 if esr::iss(info.esr) == HVC_REARM as u64 => {
                // The EOI benchmark's re-arm hook, serviced at L0 so the
                // measured region stays confined to the guest (the
                // kvm-unit-tests raise their interrupt outside the
                // timed window too).
                m.hyp_write(cpu, SysReg::IchHcrEl2, ICH_HCR_EN);
                m.gic.inject_virq(cpu, layout::EOI_VINTID, 0x80);
            }
            esr::EC_DABT_LOW => {
                self.handle_l2_abort(m, cpu, info);
            }
            // Everything else is the guest hypervisor's business:
            // hypercalls, SGI writes, smc, wfx (paper Section 4: the
            // host "can then forward it to the L1 guest hypervisor").
            _ => {
                let vesr = info.esr;
                self.switch_l2_to_vel2(m, cpu, vesr, info.far, info.hpfar, 0x400);
            }
        }
    }
}

impl Hypervisor for HostHyp {
    fn handle_sync(&mut self, m: &mut Machine, cpu: usize, info: ExitInfo) {
        match self.vcpus[cpu].ctx {
            Ctx::L1Payload => self.handle_l1_payload(m, cpu, info),
            Ctx::GhVel2 => self.handle_gh_vel2(m, cpu, info),
            Ctx::GhVel1 => self.handle_gh_vel1(m, cpu, info),
            Ctx::L2 => self.handle_l2_exit(m, cpu, info),
        }
    }

    fn handle_irq(&mut self, m: &mut Machine, cpu: usize) {
        self.host_kernel_roundtrip(m, cpu);
        // Acknowledge and complete the physical interrupt.
        while let Some(intid) = m.gic.dist.ack(cpu) {
            m.gic.dist.eoi(cpu, intid);
            m.hyp_work(m.cfg.cost.sw.kvm_arm_virq_inject);
            if intid != KICK_SGI {
                // A device interrupt owned by the L1 VM: queue it for
                // virtual injection below.
                self.vcpus[cpu].pending_l1_virqs.push(intid);
            }
        }
        // Deliver queued L1 virtual interrupts.
        let pending: Vec<u32> = std::mem::take(&mut self.vcpus[cpu].pending_l1_virqs);
        if pending.is_empty() {
            return;
        }
        match self.vcpus[cpu].ctx {
            Ctx::L2 => {
                // Stash into the saved L1 interface and pull the vCPU
                // out of the nested VM so its hypervisor sees the IRQ.
                for intid in pending {
                    for n in 0..NUM_LIST_REGS {
                        let r = SysReg::IchLrEl2(n);
                        if ListRegister::decode(self.vcpus[cpu].vgic_l1.read(r)).is_empty() {
                            self.vcpus[cpu]
                                .vgic_l1
                                .write(r, ListRegister::pending(intid, 0x80).encode());
                            break;
                        }
                    }
                }
                self.switch_l2_to_vel2(m, cpu, 0, 0, 0, 0x480);
            }
            _ => {
                m.hyp_write(cpu, SysReg::IchHcrEl2, ICH_HCR_EN);
                for intid in pending {
                    m.gic.inject_virq(cpu, intid, 0x80);
                }
            }
        }
    }
}
