//! A standalone (Xen-style) guest hypervisor — the third design of
//! paper Section 6.5.
//!
//! Xen "runs only in EL2 as a standalone hypervisor. Since Xen does not
//! need to use the VM system registers for its execution, it does not
//! save and restore them for every VM exit. However, even Xen must save
//! and restore all the VM system registers when it switches between
//! VMs, which is a common operation on Xen because all I/O is handled
//! in a special separate VM called Dom0. Furthermore, Xen frequently
//! accesses the hypervisor control registers which trap when Xen is a
//! guest hypervisor under ARMv8.3. Therefore, Xen is likely to also
//! benefit from NEVE."
//!
//! The builder here emits exactly that structure:
//!
//! - **hypercalls** are handled entirely in virtual EL2: no EL1-context
//!   switch at all, so the ARMv8.3 trap count collapses to the syndrome
//!   reads, the control-register pokes and the `eret`;
//! - **device I/O** bounces through Dom0 (a virtual-EL1 context),
//!   paying the full VM-register save/restore in both directions — the
//!   switch-between-VMs cost the paper highlights.
//!
//! The host hypervisor needs no Xen-specific support: the image uses
//! the same vector interface and the same (trapped or NEVE-rewritten)
//! instructions as the KVM-style image.

use crate::guesthyp::{
    build_kernel, prologue_bases, slots, Emit, GuestHypFlavor, GuestHypImage, RUN_ENTRY_OFFSET,
    SAVED_GPRS, SAVE_BASE,
};
use crate::layout;
use crate::rosters;
use neve_armv8::isa::{Asm, Instr, Program};
use neve_sysreg::SysReg;

/// Builds the Xen-style guest hypervisor image for `flavor` and `cpu`.
///
/// The kernel half plays Dom0 (the I/O domain). VHE flavours are
/// accepted but behave identically to non-VHE here: a standalone
/// hypervisor gains nothing from VHE (it never hosts a kernel), which
/// is itself a Section 6.5 observation.
pub fn build(flavor: GuestHypFlavor, cpu: usize) -> GuestHypImage {
    let hyp = build_hyp(flavor, cpu);
    let kernel = build_kernel(flavor, layout::gh_save_area(cpu), cpu);
    GuestHypImage {
        hyp,
        kernel,
        flavor,
    }
}

fn build_hyp(flavor: GuestHypFlavor, cpu: usize) -> Program {
    let base = layout::GUEST_HYP_BASE + cpu as u64 * 0x4000;
    let save = layout::gh_save_area(cpu);
    let mut a = Asm::new(base);
    let save_guest_gprs = a.label();
    let dispatch = a.label();
    let hypercall_fast = a.label();
    let to_dom0 = a.label();
    let to_guest = a.label();
    let sgi_fast = a.label();
    let irq_fast = a.label();

    // ---- run entry ----
    a.org(RUN_ENTRY_OFFSET);
    {
        prologue_bases(&mut a, flavor, save, cpu);
        a.b(to_guest);
    }

    // ---- 0x400: sync from lower EL ----
    a.org(0x400);
    {
        prologue_bases(&mut a, flavor, save, cpu);
        a.i(Instr::Str(0, SAVE_BASE, slots::SCRATCH as i64));
        a.i(Instr::Str(1, SAVE_BASE, (slots::SCRATCH + 8) as i64));
        let mut e = Emit { a: &mut a, flavor };
        e.read_el2(0, SysReg::TpidrEl2);
        e.read_el2(0, SysReg::VttbrEl2);
        a.cbnz(0, save_guest_gprs);
        // A Dom0 hvc: run the vCPU again.
        a.b(to_guest);
    }

    // ---- 0x480: IRQ from lower EL ----
    a.org(0x480);
    {
        prologue_bases(&mut a, flavor, save, cpu);
        a.i(Instr::Str(0, SAVE_BASE, slots::SCRATCH as i64));
        a.i(Instr::Str(1, SAVE_BASE, (slots::SCRATCH + 8) as i64));
        a.b(save_guest_gprs);
    }

    // ---- save the interrupted VM's GPRs, then dispatch ----
    a.bind(save_guest_gprs);
    {
        for r in 2..SAVED_GPRS {
            a.i(Instr::Str(
                r,
                SAVE_BASE,
                (slots::GPRS + 8 * r as u64) as i64,
            ));
        }
        a.i(Instr::Ldr(0, SAVE_BASE, slots::SCRATCH as i64));
        a.i(Instr::Str(0, SAVE_BASE, slots::GPRS as i64));
        a.i(Instr::Ldr(0, SAVE_BASE, (slots::SCRATCH + 8) as i64));
        a.i(Instr::Str(0, SAVE_BASE, (slots::GPRS + 8) as i64));
        a.b(dispatch);
    }

    // ---- dispatch on the syndrome, all in virtual EL2 ----
    a.bind(dispatch);
    {
        let mut e = Emit { a: &mut a, flavor };
        e.read_el2(1, SysReg::EsrEl2);
        e.a.i(Instr::Str(1, SAVE_BASE, slots::ESR as i64));
        e.read_el2(2, SysReg::ElrEl2);
        e.a.i(Instr::Str(2, SAVE_BASE, slots::ELR as i64));
        e.read_el2(3, SysReg::SpsrEl2);
        e.a.i(Instr::Str(3, SAVE_BASE, slots::SPSR as i64));
        e.read_el2(4, SysReg::FarEl2);
        e.a.i(Instr::Str(4, SAVE_BASE, slots::FAR as i64));

        a.i(Instr::Work(250)); // Xen's leave_hypervisor_tail / decode
        a.i(Instr::Ldr(0, SAVE_BASE, slots::ESR as i64));
        a.i(Instr::LsrImm(0, 0, 26));
        a.i(Instr::SubImm(1, 0, 0x16)); // hvc?
        a.cbz(1, hypercall_fast);
        a.i(Instr::SubImm(1, 0, 0x18)); // sysreg (the VM's SGI)?
        a.cbz(1, sgi_fast);
        a.i(Instr::SubImm(1, 0, 0x24)); // data abort (device I/O)?
        a.cbz(1, to_dom0);
        a.b(irq_fast);
    }

    // ---- fast path: hypercalls never leave virtual EL2 ----
    // No VM-register save/restore: "Xen does not need to use the VM
    // system registers for its execution".
    a.bind(hypercall_fast);
    {
        a.i(Instr::Work(400));
        a.i(Instr::MovImm(1, 0));
        a.i(Instr::Str(1, SAVE_BASE, slots::GPRS as i64));
        a.b(to_guest);
    }

    // ---- fast path: the VM's SGI, emulated in the hypervisor ----
    a.bind(sgi_fast);
    {
        a.i(Instr::Work(350));
        a.i(Instr::Ldr(0, SAVE_BASE, slots::GPRS as i64));
        a.i(Instr::Msr(
            neve_sysreg::RegId::Plain(SysReg::IccSgi1rEl1),
            0,
        ));
        a.i(Instr::Ldr(1, SAVE_BASE, slots::ELR as i64));
        a.i(Instr::AddImm(1, 1, 4));
        a.i(Instr::Str(1, SAVE_BASE, slots::ELR as i64));
        a.b(to_guest);
    }

    // ---- fast path: interrupts, acknowledged at the hypervisor ----
    a.bind(irq_fast);
    {
        a.i(Instr::Work(300));
        a.i(Instr::Mrs(1, neve_sysreg::RegId::Plain(SysReg::IccIar1El1)));
        let not_ipi = a.label();
        a.i(Instr::SubImm(2, 1, layout::IPI_SGI as u64));
        a.cbnz(2, not_ipi);
        a.i(Instr::MovImm(2, layout::IPI_SGI as u64));
        a.i(Instr::Str(2, SAVE_BASE, slots::PENDING_VIRQ as i64));
        a.bind(not_ipi);
        a.i(Instr::Msr(
            neve_sysreg::RegId::Plain(SysReg::IccEoir1El1),
            1,
        ));
        a.b(to_guest);
    }

    // ---- slow path: device I/O means switching to Dom0 ----
    // "Even Xen must save and restore all the VM system registers when
    // it switches between VMs."
    a.bind(to_dom0);
    {
        let mut e = Emit { a: &mut a, flavor };
        // Park the interrupted VM's full EL1 context.
        for (i, reg) in rosters::el1_context().iter().copied().enumerate() {
            e.read_vm_el1(1, reg);
            e.a.i(Instr::Str(
                1,
                SAVE_BASE,
                (slots::VM_EL1 + 8 * i as u64) as i64,
            ));
        }
        // Timer and GIC state follow the VM.
        e.read_vm_timer(1, SysReg::CntvCtlEl0);
        e.a.i(Instr::Str(1, SAVE_BASE, slots::TIMER as i64));
        e.read_el2(1, SysReg::IchVmcrEl2);
        e.a.i(Instr::Str(1, SAVE_BASE, slots::GIC as i64));
        for n in 0..neve_sysreg::regs::NUM_LIST_REGS {
            e.read_el2(1, SysReg::IchLrEl2(n));
            e.a.i(Instr::Str(
                1,
                SAVE_BASE,
                (slots::GIC + 8 * (1 + n as u64)) as i64,
            ));
        }
        // Load Dom0's EL1 context and run it.
        for (i, reg) in rosters::el1_context().iter().copied().enumerate() {
            e.a.i(Instr::Ldr(
                1,
                SAVE_BASE,
                (slots::HOST_EL1 + 8 * i as u64) as i64,
            ));
            e.write_vm_el1(reg, 1);
        }
        // Mark the VM context dirty so the resume path restores it.
        e.a.i(Instr::MovImm(1, 1));
        e.a.i(Instr::Str(1, SAVE_BASE, slots::REASON as i64));
        e.a.i(Instr::Ldr(1, SAVE_BASE, slots::HCR_HOST as i64));
        e.write_el2(SysReg::HcrEl2, 1);
        e.a.i(Instr::MovImm(1, 0));
        e.write_el2(SysReg::VttbrEl2, 1);
        e.a.i(Instr::MovImm(
            1,
            layout::GUEST_KERNEL_BASE + cpu as u64 * 0x1000,
        ));
        e.write_el2(SysReg::ElrEl2, 1);
        e.a.i(Instr::MovImm(1, 0x3c5));
        e.write_el2(SysReg::SpsrEl2, 1);
        e.eret();
    }

    // ---- resume the VM ----
    a.bind(to_guest);
    {
        let mut e = Emit { a: &mut a, flavor };
        // Restore the VM's EL1 context only if a Dom0 trip replaced it;
        // Xen tracks this with a dirty flag. We restore unconditionally
        // when the VM-state slot area is in use (the Dom0 path stored
        // into it) — modelled by reloading it; the fast paths reach
        // here without having saved, in which case the slots still hold
        // the values from the last Dom0 trip (idempotent restore, same
        // values, no semantic change, matching Xen's lazy context
        // tracking at a small cycle cost).
        e.a.i(Instr::Ldr(1, SAVE_BASE, slots::REASON as i64));
        let skip_restore = e.a.label();
        e.a.cbz(1, skip_restore);
        {
            for (i, reg) in rosters::el1_context().iter().copied().enumerate() {
                e.a.i(Instr::Ldr(
                    1,
                    SAVE_BASE,
                    (slots::VM_EL1 + 8 * i as u64) as i64,
                ));
                e.write_vm_el1(reg, 1);
            }
            e.a.i(Instr::Ldr(1, SAVE_BASE, slots::TIMER as i64));
            e.write_vm_timer(SysReg::CntvCtlEl0, 1);
            e.a.i(Instr::Ldr(1, SAVE_BASE, slots::GIC as i64));
            e.write_el2(SysReg::IchVmcrEl2, 1);
            e.a.i(Instr::MovImm(1, 0));
            e.a.i(Instr::Str(1, SAVE_BASE, slots::REASON as i64));
        }
        e.a.bind(skip_restore);

        // Pending virtual interrupt injection (IPI receive path).
        e.a.i(Instr::Ldr(1, SAVE_BASE, slots::PENDING_VIRQ as i64));
        let no_virq = e.a.label();
        e.a.cbz(1, no_virq);
        {
            e.a.i(Instr::MovImm(2, 1u64 << 62));
            e.a.i(Instr::Orr(1, 1, 2));
            e.write_el2(SysReg::IchLrEl2(0), 1);
            e.a.i(Instr::MovImm(1, 0));
            e.a.i(Instr::Str(1, SAVE_BASE, slots::PENDING_VIRQ as i64));
        }
        e.a.bind(no_virq);
        e.a.i(Instr::MovImm(1, 1));
        e.write_el2(SysReg::IchHcrEl2, 1);

        // VM trap configuration and return state.
        e.a.i(Instr::Ldr(1, SAVE_BASE, slots::HCR_VM as i64));
        e.write_el2(SysReg::HcrEl2, 1);
        e.a.i(Instr::Ldr(1, SAVE_BASE, slots::VTTBR_VM as i64));
        e.write_el2(SysReg::VttbrEl2, 1);
        e.a.i(Instr::Ldr(1, SAVE_BASE, slots::ELR as i64));
        e.write_el2(SysReg::ElrEl2, 1);
        e.a.i(Instr::Ldr(1, SAVE_BASE, slots::SPSR as i64));
        e.write_el2(SysReg::SpsrEl2, 1);

        for r in (0..SAVED_GPRS).rev() {
            a.i(Instr::Ldr(
                r,
                SAVE_BASE,
                (slots::GPRS + 8 * r as u64) as i64,
            ));
        }
        let mut e = Emit { a: &mut a, flavor };
        e.eret();
    }

    a.assemble()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guesthyp::ParaMode;

    #[test]
    fn xen_image_assembles() {
        for para in [ParaMode::None, ParaMode::HvcV83, ParaMode::NeveLs] {
            let img = build(GuestHypFlavor::new(false, para), 0);
            assert!(img.hyp.len() > 100);
            assert!(img.hyp.fetch(img.hyp.base + 0x400).is_some());
            assert!(img.hyp.fetch(img.hyp.base + 0x480).is_some());
        }
    }

    #[test]
    fn xen_hypercall_path_avoids_vm_register_accesses() {
        // Count VM-EL1-register instructions between the dispatch and
        // the hypercall fast path: there must be none before `to_guest`
        // — the structural difference from the KVM design.
        let img = build(GuestHypFlavor::new(false, ParaMode::None), 0);
        // Weak but meaningful check: the image contains *fewer* EL1
        // context accesses than the KVM image (which does 4 roster
        // passes; Xen does 3: park + Dom0-load + restore).
        let kvm = crate::guesthyp::build(GuestHypFlavor::new(false, ParaMode::None), 0);
        let count = |p: &neve_armv8::isa::Program| {
            p.code
                .iter()
                .filter(|i| {
                    matches!(
                        i,
                        neve_armv8::isa::Instr::Msr(neve_sysreg::RegId::Plain(SysReg::SctlrEl1), _)
                            | neve_armv8::isa::Instr::Mrs(
                                _,
                                neve_sysreg::RegId::Plain(SysReg::SctlrEl1)
                            )
                    )
                })
                .count()
        };
        assert!(count(&img.hyp) <= count(&kvm.hyp));
    }
}
