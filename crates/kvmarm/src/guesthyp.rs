//! The guest hypervisor, as an interpreted program.
//!
//! This is a miniature KVM/ARM emitted by a builder from one source
//! description in the flavours the paper evaluates:
//!
//! - **non-VHE** (`vhe = false`): the hypervisor part runs in (virtual)
//!   EL2 and bounces through its kernel half in virtual EL1 on every
//!   exit, swapping the full EL1 context both ways — the design whose
//!   exit multiplication is worst on ARMv8.3 (Section 6.5, first case).
//! - **VHE** (`vhe = true`): hypervisor and kernel both live in virtual
//!   EL2; VM state is reached through `*_EL12` accessors and the
//!   hypervisor's own state through plain EL1 accessors that never trap
//!   (Section 6.5, second case).
//!
//! and in three *build modes* reproducing the paper's methodology:
//!
//! - [`ParaMode::None`]: unmodified hypervisor instructions — run this on
//!   simulated ARMv8.3/v8.4 hardware.
//! - [`ParaMode::HvcV83`]: every instruction that would trap on ARMv8.3
//!   is replaced with `hvc #code` (Section 4's paravirtualization), so
//!   the image runs on simulated ARMv8.0 with identical trap behaviour.
//! - [`ParaMode::NeveLs`]: VM-register accesses become loads/stores to
//!   the shared page and redirected control registers become EL1
//!   accesses (Section 6.4's NEVE paravirtualization for ARMv8.0).
//!
//! The world-switch sequences follow the rosters in [`crate::rosters`];
//! trap counts per microbenchmark are *emergent* from which of these
//! instructions trap on the configured hardware.

use crate::layout;
use crate::rosters;
use neve_armv8::isa::{Asm, Instr, Program};
use neve_sysreg::classify::{el1_counterpart, neve_class, vncr_offset, NeveClass};
use neve_sysreg::regcode;
use neve_sysreg::{RegId, SysReg};

/// How the emitted image encodes hypervisor instructions (paper §3/§6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParaMode {
    /// Unmodified: requires ARMv8.3+ hardware (or v8.4 for NEVE runs).
    None,
    /// `hvc`-replacement paravirtualization for ARMv8.0 hardware,
    /// mimicking ARMv8.3 trap behaviour.
    HvcV83,
    /// Load/store + EL1-redirect paravirtualization for ARMv8.0
    /// hardware, mimicking NEVE behaviour.
    NeveLs,
}

/// Guest hypervisor build flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuestHypFlavor {
    /// VHE hypervisor (runs its kernel in virtual EL2).
    pub vhe: bool,
    /// Instruction encoding mode.
    pub para: ParaMode,
    /// GICv2 system: the hypervisor control interface is the
    /// memory-mapped GICH frame instead of `ICH_*` system registers —
    /// the paper's actual hardware (Sections 4 and 7: "the programming
    /// interfaces for both GIC versions are almost identical"). Each
    /// access Stage-2-faults to the host instead of sysreg-trapping.
    pub gicv2: bool,
}

impl GuestHypFlavor {
    /// The default (GICv3 system-register) flavour.
    pub fn new(vhe: bool, para: ParaMode) -> Self {
        Self {
            vhe,
            para,
            gicv2: false,
        }
    }
}

/// `hvc` immediates: paravirtualized operations use the upper half of
/// the 16-bit space; real hypercalls use the lower half.
pub const PARA_HVC_BASE: u16 = 0x8000;
/// Paravirtualized `eret` (Section 4: "the eret instruction is
/// paravirtualized to trap to EL2").
pub const PARA_HVC_ERET: u16 = 0xffff;
/// Read flag within a paravirt `hvc` immediate.
pub const PARA_WRITE_BIT: u16 = 0x4000;

/// The `hvc` immediate the guest hypervisor's kernel uses to call back
/// into its hypervisor half (`kvm_call_hyp` / "run the vCPU").
pub const HVC_RUN_VCPU: u16 = 0x10;

/// Save-area slot offsets (relative to the per-CPU save area).
pub mod slots {
    /// Saved nested-VM GPRs x0..x27 (28 slots).
    pub const GPRS: u64 = 0x000;
    /// Saved virtual `ESR_EL2`.
    pub const ESR: u64 = 0x0e0;
    /// Saved virtual `ELR_EL2`.
    pub const ELR: u64 = 0x0e8;
    /// Saved virtual `SPSR_EL2`.
    pub const SPSR: u64 = 0x0f0;
    /// Saved virtual `FAR_EL2`.
    pub const FAR: u64 = 0x0f8;
    /// Saved VM EL1 context (16 slots, roster order).
    pub const VM_EL1: u64 = 0x100;
    /// Host-kernel EL1 context values (16 slots, roster order;
    /// initialised by the harness at "boot").
    pub const HOST_EL1: u64 = 0x180;
    /// Saved VM timer state (2 slots).
    pub const TIMER: u64 = 0x200;
    /// Saved VM GIC state (VMCR + 4 LRs).
    pub const GIC: u64 = 0x210;
    /// Exit reason for the kernel half.
    pub const REASON: u64 = 0x240;
    /// Pending virtual interrupt to inject into the nested VM
    /// (0 = none; else INTID).
    pub const PENDING_VIRQ: u64 = 0x248;
    /// Host-mode virtual HCR value (initialised by harness).
    pub const HCR_HOST: u64 = 0x250;
    /// VM-mode virtual HCR value (initialised by harness).
    pub const HCR_VM: u64 = 0x258;
    /// Virtual VTTBR value for the nested VM (initialised by harness).
    pub const VTTBR_VM: u64 = 0x260;
    /// Scratch.
    pub const SCRATCH: u64 = 0x268;
}

/// Registers the switch code uses as fixed scratch (the interpreted
/// equivalent of KVM's reserved host registers). Payload programs must
/// not rely on x26-x28 surviving an exit; ours never touch them.
pub(crate) const SAVE_BASE: u8 = 28;
/// Scratch register holding the shared/VNCR page base in `NeveLs` mode.
const PAGE_BASE: u8 = 27;
/// Scratch register holding the GICH frame base in GICv2 mode.
const GICH_REG: u8 = 26;

/// Number of GPRs the switch saves/restores (x0..x25 of the payload
/// plus the two scratch regs would be pointless — KVM saves all 31; we
/// save 26 and document the reserved ones).
pub(crate) const SAVED_GPRS: u8 = 26;

/// Emits flavour-dependent register accesses.
pub(crate) struct Emit<'a> {
    pub(crate) a: &'a mut Asm,
    pub(crate) flavor: GuestHypFlavor,
}

impl<'a> Emit<'a> {
    /// The GICH frame offset of an ICH register, if this flavour uses
    /// the memory-mapped interface for it.
    pub(crate) fn gich_offset(&self, reg: SysReg) -> Option<i64> {
        if !self.flavor.gicv2 {
            return None;
        }
        use neve_gic::mmio;
        Some(match reg {
            SysReg::IchHcrEl2 => mmio::GICH_HCR as i64,
            SysReg::IchVtrEl2 => mmio::GICH_VTR as i64,
            SysReg::IchVmcrEl2 => mmio::GICH_VMCR as i64,
            SysReg::IchMisrEl2 => mmio::GICH_MISR as i64,
            SysReg::IchEisrEl2 => mmio::GICH_EISR as i64,
            SysReg::IchElrsrEl2 => mmio::GICH_ELRSR as i64,
            SysReg::IchAp0rEl2(_) => mmio::GICH_APR0 as i64,
            SysReg::IchAp1rEl2(_) => mmio::GICH_APR1 as i64,
            SysReg::IchLrEl2(n) => (mmio::GICH_LR_BASE + 8 * n as u64) as i64,
            _ => return None,
        })
    }

    /// `mrs rd, <EL2 register>` as the flavour encodes it.
    pub(crate) fn read_el2(&mut self, rd: u8, reg: SysReg) {
        if let Some(off) = self.gich_offset(reg) {
            // A load from the unmapped GICH frame: Stage-2 abort to the
            // host, which emulates against the virtual interface.
            self.a.i(Instr::Ldr(rd, GICH_REG, off));
            return;
        }
        let id = RegId::Plain(reg);
        match self.flavor.para {
            ParaMode::None => {
                self.a.i(Instr::Mrs(rd, id));
            }
            ParaMode::HvcV83 => emit_para_hvc(self.a, id, false, rd),
            ParaMode::NeveLs => match neve_class(reg) {
                NeveClass::VmTrapControl
                | NeveClass::VmThreadId
                | NeveClass::HypTrapOnWrite
                | NeveClass::GicTrapOnWrite => {
                    // Deferred / cached: a load from the shared page.
                    let off = vncr_offset(reg).expect("cached register has a slot");
                    self.a.i(Instr::Ldr(rd, PAGE_BASE, off as i64));
                }
                NeveClass::HypRedirect | NeveClass::HypRedirectVhe => {
                    let el1 = el1_counterpart(reg).expect("redirectable");
                    self.a.i(Instr::Mrs(rd, RegId::Plain(el1)));
                }
                NeveClass::HypRedirectOrTrap => {
                    if self.flavor.vhe {
                        let el1 = el1_counterpart(reg).expect("redirectable");
                        self.a.i(Instr::Mrs(rd, RegId::Plain(el1)));
                    } else {
                        let off = vncr_offset(reg).expect("cached");
                        self.a.i(Instr::Ldr(rd, PAGE_BASE, off as i64));
                    }
                }
                // Timer EL2 registers and anything else: still a trap.
                _ => emit_para_hvc(self.a, id, false, rd),
            },
        }
    }

    /// `msr <EL2 register>, rs` as the flavour encodes it.
    pub(crate) fn write_el2(&mut self, reg: SysReg, rs: u8) {
        if let Some(off) = self.gich_offset(reg) {
            self.a.i(Instr::Str(rs, GICH_REG, off));
            return;
        }
        let id = RegId::Plain(reg);
        match self.flavor.para {
            ParaMode::None => {
                self.a.i(Instr::Msr(id, rs));
            }
            ParaMode::HvcV83 => emit_para_hvc(self.a, id, true, rs),
            ParaMode::NeveLs => match neve_class(reg) {
                NeveClass::VmTrapControl | NeveClass::VmThreadId => {
                    let off = vncr_offset(reg).expect("deferred register has a slot");
                    self.a.i(Instr::Str(rs, PAGE_BASE, off as i64));
                }
                NeveClass::HypRedirect | NeveClass::HypRedirectVhe => {
                    let el1 = el1_counterpart(reg).expect("redirectable");
                    self.a.i(Instr::Msr(RegId::Plain(el1), rs));
                }
                NeveClass::HypRedirectOrTrap if self.flavor.vhe => {
                    let el1 = el1_counterpart(reg).expect("redirectable");
                    self.a.i(Instr::Msr(RegId::Plain(el1), rs));
                }
                // Trap-on-write classes (incl. GIC) and timers trap.
                _ => emit_para_hvc(self.a, id, true, rs),
            },
        }
    }

    /// Access to the *VM's* EL1 context register (the nested VM state):
    /// plain EL1 names for non-VHE, `*_EL12` for VHE.
    pub(crate) fn read_vm_el1(&mut self, rd: u8, reg: SysReg) {
        let id = if self.flavor.vhe {
            RegId::El12(reg)
        } else {
            RegId::Plain(reg)
        };
        match self.flavor.para {
            ParaMode::None => {
                self.a.i(Instr::Mrs(rd, id));
            }
            ParaMode::HvcV83 => emit_para_hvc(self.a, id, false, rd),
            ParaMode::NeveLs => {
                let off = vncr_offset(reg).expect("VM register has a slot");
                self.a.i(Instr::Ldr(rd, PAGE_BASE, off as i64));
            }
        }
    }

    /// Write to the VM's EL1 context register.
    pub(crate) fn write_vm_el1(&mut self, reg: SysReg, rs: u8) {
        let id = if self.flavor.vhe {
            RegId::El12(reg)
        } else {
            RegId::Plain(reg)
        };
        match self.flavor.para {
            ParaMode::None => {
                self.a.i(Instr::Msr(id, rs));
            }
            ParaMode::HvcV83 => emit_para_hvc(self.a, id, true, rs),
            ParaMode::NeveLs => {
                // Cached-copy registers (e.g. the debug control
                // register) trap on write even under NEVE (paper
                // Section 6.1); the paravirtualized image preserves
                // that.
                if matches!(neve_class(reg), NeveClass::DebugTrapOnWrite) {
                    emit_para_hvc(self.a, id, true, rs);
                } else {
                    let off = vncr_offset(reg).expect("VM register has a slot");
                    self.a.i(Instr::Str(rs, PAGE_BASE, off as i64));
                }
            }
        }
    }

    /// Access to the VM's EL1 *timer* registers. A VHE hypervisor uses
    /// the `*_EL02` forms, which trap on every configuration (paper
    /// Section 7.1); a non-VHE hypervisor uses the EL0 names directly.
    pub(crate) fn read_vm_timer(&mut self, rd: u8, reg: SysReg) {
        if self.flavor.vhe {
            let id = RegId::El02(reg);
            match self.flavor.para {
                ParaMode::None => {
                    self.a.i(Instr::Mrs(rd, id));
                }
                _ => emit_para_hvc(self.a, id, false, rd),
            }
        } else {
            self.a.i(Instr::Mrs(rd, RegId::Plain(reg)));
        }
    }

    /// Write to the VM's EL1 timer registers.
    pub(crate) fn write_vm_timer(&mut self, reg: SysReg, rs: u8) {
        if self.flavor.vhe {
            let id = RegId::El02(reg);
            match self.flavor.para {
                ParaMode::None => {
                    self.a.i(Instr::Msr(id, rs));
                }
                _ => emit_para_hvc(self.a, id, true, rs),
            }
        } else {
            self.a.i(Instr::Msr(RegId::Plain(reg), rs));
        }
    }

    /// `eret` as the flavour encodes it.
    pub(crate) fn eret(&mut self) {
        match self.flavor.para {
            ParaMode::None => {
                self.a.i(Instr::Eret);
            }
            // Both paravirtualization modes replace eret with a trap
            // (Sections 4 and 6.4: entering the nested VM is only
            // possible through the host hypervisor).
            _ => {
                self.a.i(Instr::Hvc(PARA_HVC_ERET));
            }
        }
    }
}

/// Emits the `hvc`-replacement of one register access: the operand
/// encodes the register and direction; the value travels in x0
/// (Section 4: "We encode the hypervisor instructions using the 16-bit
/// operand").
fn emit_para_hvc(a: &mut Asm, id: RegId, write: bool, rt: u8) {
    let code = PARA_HVC_BASE | regcode::encode(id) | if write { PARA_WRITE_BIT } else { 0 };
    if write {
        if rt != 0 {
            a.i(Instr::Mov(0, rt));
        }
        a.i(Instr::Hvc(code));
    } else {
        a.i(Instr::Hvc(code));
        if rt != 0 {
            a.i(Instr::Mov(rt, 0));
        }
    }
}

/// All programs the guest hypervisor contributes: the hypervisor image
/// (vector table at its base) and, for non-VHE flavours, the kernel-half
/// image.
#[derive(Debug, Clone)]
pub struct GuestHypImage {
    /// The (virtual EL2) hypervisor program; vectors at its base.
    pub hyp: Program,
    /// The kernel half (virtual EL1); entry at its base. Present for
    /// every flavour, but VHE flavours never execute it.
    pub kernel: Program,
    /// Flavour it was built for.
    pub flavor: GuestHypFlavor,
}

/// Builds the guest hypervisor image for `flavor` and `cpu` (the save
/// area is per-CPU).
///
/// The hypervisor image layout: base = virtual `VBAR_EL2`; offsets
/// 0x400/0x480 are the lower-EL sync/IRQ vectors, exactly as hardware
/// dispatches them.
pub fn build(flavor: GuestHypFlavor, cpu: usize) -> GuestHypImage {
    let save = layout::gh_save_area(cpu);
    let hyp = build_hyp(flavor, save, cpu);
    let kernel = build_kernel(flavor, save, cpu);
    GuestHypImage {
        hyp,
        kernel,
        flavor,
    }
}

/// Loads the save-area base and (for NeveLs) the shared-page base into
/// the reserved scratch registers.
pub(crate) fn prologue_bases(a: &mut Asm, flavor: GuestHypFlavor, save: u64, cpu: usize) {
    a.i(Instr::MovImm(SAVE_BASE, save));
    if flavor.para == ParaMode::NeveLs {
        a.i(Instr::MovImm(PAGE_BASE, layout::vncr_page(cpu)));
    }
    if flavor.gicv2 {
        a.i(Instr::MovImm(GICH_REG, layout::GICH_BASE));
    }
}

/// Offset of the "run the vCPU" entry point within the hypervisor image
/// (where the initial world switch into the nested VM begins, and where
/// the kernel half's `hvc #HVC_RUN_VCPU` is reflected to).
pub const RUN_ENTRY_OFFSET: u64 = 0x40;

fn build_hyp(flavor: GuestHypFlavor, save: u64, cpu: usize) -> Program {
    let base = layout::GUEST_HYP_BASE + cpu as u64 * 0x4000;
    let mut a = Asm::new(base);
    let guest_exit = a.label();
    let save_guest_gprs = a.label();
    let to_guest = a.label();
    let handle_inline = a.label();

    // ---- run entry (fixed offset; also the host-call target) ----
    a.org(RUN_ENTRY_OFFSET);
    {
        prologue_bases(&mut a, flavor, save, cpu);
        a.b(to_guest);
    }

    // ---- offset 0x400: synchronous exception from a lower EL ----
    a.org(0x400);
    {
        prologue_bases(&mut a, flavor, save, cpu);
        // Stash x0/x1 so the discriminator has scratch space (KVM's
        // vector does the same dance through TPIDR_EL2).
        a.i(Instr::Str(0, SAVE_BASE, slots::SCRATCH as i64));
        a.i(Instr::Str(1, SAVE_BASE, (slots::SCRATCH + 8) as i64));
        // KVM's vector reads its per-CPU base (`mrs tpidr_el2`) and
        // distinguishes guest exits from host-kernel calls by the live
        // VTTBR (guest hypervisors run their host with VTTBR cleared).
        let mut e = Emit { a: &mut a, flavor };
        e.read_el2(0, SysReg::TpidrEl2);
        e.read_el2(0, SysReg::VttbrEl2);
        a.cbnz(0, save_guest_gprs);
        // Host call (the kernel half's hvc): re-run the vCPU.
        a.b(to_guest);
    }

    // ---- offset 0x480: IRQ from a lower EL (only ever from the
    // nested VM: the hypervisor halves run with interrupts masked) ----
    a.org(0x480);
    {
        prologue_bases(&mut a, flavor, save, cpu);
        a.i(Instr::Str(0, SAVE_BASE, slots::SCRATCH as i64));
        a.i(Instr::Str(1, SAVE_BASE, (slots::SCRATCH + 8) as i64));
        let mut e = Emit { a: &mut a, flavor };
        e.read_el2(0, SysReg::TpidrEl2);
        a.b(save_guest_gprs);
    }

    // ---- save the interrupted nested VM's GPRs ----
    a.bind(save_guest_gprs);
    {
        for r in 2..SAVED_GPRS {
            a.i(Instr::Str(
                r,
                SAVE_BASE,
                (slots::GPRS + 8 * r as u64) as i64,
            ));
        }
        // x0/x1 from the scratch stash.
        a.i(Instr::Ldr(0, SAVE_BASE, slots::SCRATCH as i64));
        a.i(Instr::Str(0, SAVE_BASE, slots::GPRS as i64));
        a.i(Instr::Ldr(0, SAVE_BASE, (slots::SCRATCH + 8) as i64));
        a.i(Instr::Str(0, SAVE_BASE, (slots::GPRS + 8) as i64));
        a.b(guest_exit);
    }

    // ---- the world switch away from the nested VM ----
    a.bind(guest_exit);
    {
        let mut e = Emit { a: &mut a, flavor };
        // Read and stash the exit syndrome (vESR/vELR/vSPSR/vFAR).
        e.read_el2(1, SysReg::EsrEl2);
        e.a.i(Instr::Str(1, SAVE_BASE, slots::ESR as i64));
        e.read_el2(2, SysReg::ElrEl2);
        e.a.i(Instr::Str(2, SAVE_BASE, slots::ELR as i64));
        e.read_el2(3, SysReg::SpsrEl2);
        e.a.i(Instr::Str(3, SAVE_BASE, slots::SPSR as i64));
        e.read_el2(4, SysReg::FarEl2);
        e.a.i(Instr::Str(4, SAVE_BASE, slots::FAR as i64));
        e.read_el2(4, SysReg::HpfarEl2);
        e.a.i(Instr::Str(4, SAVE_BASE, (slots::FAR + 8) as i64));

        // Save the VM's EL1 context (paper Table 3's execution-control
        // group; each access traps on ARMv8.3, none trap with NEVE).
        for (i, reg) in rosters::el1_context().iter().copied().enumerate() {
            e.read_vm_el1(1, reg);
            e.a.i(Instr::Str(
                1,
                SAVE_BASE,
                (slots::VM_EL1 + 8 * i as u64) as i64,
            ));
        }

        // Save the VM's timer and disable it while the hypervisor runs.
        e.read_vm_timer(1, SysReg::CntvCtlEl0);
        e.a.i(Instr::Str(1, SAVE_BASE, slots::TIMER as i64));
        e.a.i(Instr::MovImm(1, 0));
        e.write_vm_timer(SysReg::CntvCtlEl0, 1);
        e.read_el2(1, SysReg::CntvoffEl2);
        e.a.i(Instr::Str(1, SAVE_BASE, (slots::TIMER + 8) as i64));
        e.a.i(Instr::MovImm(1, 1)); // EL1PCTEN: host-mode counter access
        e.write_el2(SysReg::CnthctlEl2, 1);

        // Save the VM's debug state (MDSCR: cached read under NEVE).
        e.read_vm_el1(1, SysReg::MdscrEl1);
        e.a.i(Instr::Str(1, SAVE_BASE, (slots::TIMER + 16) as i64));

        // Save the VM's GIC interface state and disable it (vgic-v3's
        // save path reads the status registers to fold in maintenance
        // state before parking the interface).
        e.read_el2(1, SysReg::IchVmcrEl2);
        e.a.i(Instr::Str(1, SAVE_BASE, slots::GIC as i64));
        for n in 0..neve_sysreg::regs::NUM_LIST_REGS {
            e.read_el2(1, SysReg::IchLrEl2(n));
            e.a.i(Instr::Str(
                1,
                SAVE_BASE,
                (slots::GIC + 8 * (1 + n as u64)) as i64,
            ));
        }
        e.read_el2(1, SysReg::IchHcrEl2);
        e.read_el2(1, SysReg::IchMisrEl2);
        e.read_el2(1, SysReg::IchEisrEl2);
        e.read_el2(1, SysReg::IchElrsrEl2);
        e.a.i(Instr::MovImm(1, 0));
        e.write_el2(SysReg::IchHcrEl2, 1);

        // Leave VM mode: host-mode trap configuration.
        e.a.i(Instr::Ldr(1, SAVE_BASE, slots::HCR_HOST as i64));
        e.write_el2(SysReg::HcrEl2, 1);
        e.a.i(Instr::MovImm(1, 0));
        e.write_el2(SysReg::VttbrEl2, 1);
        e.a.i(Instr::MovImm(1, 0));
        e.write_el2(SysReg::CptrEl2, 1);
        e.a.i(Instr::MovImm(1, 0));
        e.write_el2(SysReg::MdcrEl2, 1);
    }

    if flavor.vhe {
        // VHE: handle the exit right here in virtual EL2.
        a.b(handle_inline);
    } else {
        // Non-VHE: restore the host kernel's EL1 context and eret into
        // the kernel half (every write traps on ARMv8.3, none with
        // NEVE — the host materialises the context on the eret).
        let mut e = Emit { a: &mut a, flavor };
        for (i, reg) in rosters::el1_context().iter().copied().enumerate() {
            e.a.i(Instr::Ldr(
                1,
                SAVE_BASE,
                (slots::HOST_EL1 + 8 * i as u64) as i64,
            ));
            e.write_vm_el1(reg, 1);
        }
        // Hand the kernel the exit reason in its entry register and
        // aim the virtual exception return at the kernel entry point.
        e.a.i(Instr::MovImm(
            1,
            layout::GUEST_KERNEL_BASE + cpu as u64 * 0x1000,
        ));
        e.write_el2(SysReg::ElrEl2, 1);
        e.a.i(Instr::MovImm(1, 0x3c5)); // EL1h, interrupts masked
        e.write_el2(SysReg::SpsrEl2, 1);
        e.eret();
    }

    // ---- inline exit handling (VHE flavours) ----
    a.bind(handle_inline);
    {
        let mut e = Emit { a: &mut a, flavor };
        e.read_el2(1, SysReg::EsrEl2);
        emit_exit_handler(&mut a, flavor, true);
        a.b(to_guest);
    }

    // ---- the world switch into the nested VM ----
    a.bind(to_guest);
    {
        let mut e = Emit { a: &mut a, flavor };
        if !flavor.vhe {
            // A non-VHE hypervisor first saves its host kernel's EL1
            // context, which the VM state is about to replace
            // (`__sysreg_save_host_state`).
            for (i, reg) in rosters::el1_context().iter().copied().enumerate() {
                e.read_vm_el1(1, reg);
                e.a.i(Instr::Str(
                    1,
                    SAVE_BASE,
                    (slots::HOST_EL1 + 8 * i as u64) as i64,
                ));
            }
        }
        // Restore the VM's EL1 context.
        for (i, reg) in rosters::el1_context().iter().copied().enumerate() {
            e.a.i(Instr::Ldr(
                1,
                SAVE_BASE,
                (slots::VM_EL1 + 8 * i as u64) as i64,
            ));
            e.write_vm_el1(reg, 1);
        }
        // Restore the VM's debug state (trap-on-write under NEVE).
        e.a.i(Instr::Ldr(1, SAVE_BASE, (slots::TIMER + 16) as i64));
        e.write_vm_el1(SysReg::MdscrEl1, 1);
        // Restore the VM's timer, including the counter offset
        // (trap-on-write under NEVE, paper Table 4).
        e.a.i(Instr::Ldr(1, SAVE_BASE, (slots::TIMER + 8) as i64));
        e.write_el2(SysReg::CntvoffEl2, 1);
        e.a.i(Instr::Ldr(1, SAVE_BASE, slots::TIMER as i64));
        e.write_vm_timer(SysReg::CntvCtlEl0, 1);
        e.a.i(Instr::MovImm(1, 0));
        e.write_el2(SysReg::CnthctlEl2, 1);

        // Restore the VM's GIC interface; inject any pending virtual
        // interrupt the kernel queued (the virtual IPI path).
        e.a.i(Instr::Ldr(1, SAVE_BASE, slots::GIC as i64));
        e.write_el2(SysReg::IchVmcrEl2, 1);
        e.a.i(Instr::Ldr(1, SAVE_BASE, slots::PENDING_VIRQ as i64));
        let no_virq = e.a.label();
        e.a.cbz(1, no_virq);
        {
            // Compose a pending list register: state=pending, vintid.
            e.a.i(Instr::MovImm(2, 1u64 << 62));
            e.a.i(Instr::Orr(1, 1, 2));
            e.write_el2(SysReg::IchLrEl2(0), 1);
            e.a.i(Instr::MovImm(1, 0));
            e.a.i(Instr::Str(1, SAVE_BASE, slots::PENDING_VIRQ as i64));
        }
        e.a.bind(no_virq);
        e.a.i(Instr::MovImm(1, 1)); // ICH_HCR_EL2.En
        e.write_el2(SysReg::IchHcrEl2, 1);

        // Enter VM mode: trap configuration, Stage-2, traps.
        e.a.i(Instr::Ldr(1, SAVE_BASE, slots::HCR_VM as i64));
        e.write_el2(SysReg::HcrEl2, 1);
        e.a.i(Instr::Ldr(1, SAVE_BASE, slots::VTTBR_VM as i64));
        e.write_el2(SysReg::VttbrEl2, 1);
        e.a.i(Instr::MovImm(1, 0));
        e.write_el2(SysReg::CptrEl2, 1);
        e.a.i(Instr::MovImm(1, 0));
        e.write_el2(SysReg::MdcrEl2, 1);

        // Return state: the (possibly adjusted) vELR/vSPSR.
        e.a.i(Instr::Ldr(1, SAVE_BASE, slots::ELR as i64));
        e.write_el2(SysReg::ElrEl2, 1);
        e.a.i(Instr::Ldr(1, SAVE_BASE, slots::SPSR as i64));
        e.write_el2(SysReg::SpsrEl2, 1);

        // Restore the VM's GPRs and go.
        for r in (0..SAVED_GPRS).rev() {
            a.i(Instr::Ldr(
                r,
                SAVE_BASE,
                (slots::GPRS + 8 * r as u64) as i64,
            ));
        }
        let mut e = Emit { a: &mut a, flavor };
        e.eret();
    }

    a.assemble()
}

/// Emits the exit handler body (used inline for VHE; the non-VHE
/// kernel half wraps the same logic).
///
/// Expects the save area base in x28 (and page base in x27 for NeveLs).
/// Dispatches on the saved vESR's exception class.
fn emit_exit_handler(a: &mut Asm, _flavor: GuestHypFlavor, inline_vel2: bool) {
    let done = a.label();
    let mmio = a.label();
    let sgi = a.label();
    let irq = a.label();

    // Modelled C overhead of kvm handle_exit dispatch.
    a.i(Instr::Work(300));
    a.i(Instr::Ldr(0, SAVE_BASE, slots::ESR as i64));
    a.i(Instr::LsrImm(0, 0, 26)); // EC field
    a.i(Instr::SubImm(1, 0, 0x16)); // EC_HVC64?
    a.cbnz(1, mmio);
    {
        // Hypercall: service and set the return value in saved x0.
        a.i(Instr::Work(120));
        a.i(Instr::MovImm(1, 0));
        a.i(Instr::Str(1, SAVE_BASE, slots::GPRS as i64));
        a.b(done);
    }
    a.bind(mmio);
    a.i(Instr::SubImm(1, 0, 0x24)); // EC_DABT_LOW?
    a.cbnz(1, sgi);
    {
        // MMIO: emulate the test device — the Device I/O benchmark's
        // emulated register read (modelled device model cost), result
        // into the VM's x2, skip the faulting instruction.
        a.i(Instr::Work(600));
        a.i(Instr::MovImm(1, 0xd0d0));
        a.i(Instr::Str(1, SAVE_BASE, (slots::GPRS + 16) as i64));
        a.i(Instr::Ldr(1, SAVE_BASE, slots::ELR as i64));
        a.i(Instr::AddImm(1, 1, 4));
        a.i(Instr::Str(1, SAVE_BASE, slots::ELR as i64));
        a.b(done);
    }
    a.bind(sgi);
    a.i(Instr::SubImm(1, 0, 0x18)); // EC_SYSREG (the nested VM's SGI)?
    a.cbnz(1, irq);
    {
        // The nested VM sent a virtual IPI: the guest hypervisor's vgic
        // emulation re-issues the SGI at its own level — an IPI between
        // L1 vCPUs that the host virtualizes in turn (the exit chain of
        // the paper's Virtual IPI microbenchmark). The nested VM passes
        // the SGI payload in x0 by convention.
        a.i(Instr::Work(350));
        a.i(Instr::Ldr(0, SAVE_BASE, slots::GPRS as i64));
        a.i(Instr::Msr(RegId::Plain(SysReg::IccSgi1rEl1), 0));
        // Skip the nested VM's trapped SGI write.
        a.i(Instr::Ldr(1, SAVE_BASE, slots::ELR as i64));
        a.i(Instr::AddImm(1, 1, 4));
        a.i(Instr::Str(1, SAVE_BASE, slots::ELR as i64));
        a.b(done);
    }
    a.bind(irq);
    {
        // Interrupt while the nested VM ran: acknowledge our own
        // virtual interrupt (trap-free at the hardware virtual CPU
        // interface), and if it is the IPI SGI, queue an injection for
        // the nested VM.
        a.i(Instr::Work(250));
        a.i(Instr::Mrs(1, RegId::Plain(SysReg::IccIar1El1)));
        let not_ipi = a.label();
        a.i(Instr::SubImm(2, 1, layout::IPI_SGI as u64));
        a.cbnz(2, not_ipi);
        {
            // Queue vintid = IPI_SGI for injection on re-entry.
            a.i(Instr::MovImm(2, layout::IPI_SGI as u64));
            a.i(Instr::Str(2, SAVE_BASE, slots::PENDING_VIRQ as i64));
        }
        a.bind(not_ipi);
        a.i(Instr::Msr(RegId::Plain(SysReg::IccEoir1El1), 1));
        a.b(done);
    }
    a.bind(done);
    // Entry bookkeeping before returning to the VM.
    a.i(Instr::Work(if inline_vel2 { 250 } else { 350 }));
}

/// Builds the kernel half (virtual EL1) for non-VHE flavours: entered by
/// the hypervisor half's eret, handles the exit, calls back with
/// `hvc #HVC_RUN_VCPU`.
pub(crate) fn build_kernel(flavor: GuestHypFlavor, _save: u64, cpu: usize) -> Program {
    let base = layout::GUEST_KERNEL_BASE + cpu as u64 * 0x1000;
    let mut a = Asm::new(base);
    prologue_bases(&mut a, flavor, layout::gh_save_area(cpu), cpu);
    emit_exit_handler(&mut a, flavor, false);
    a.i(Instr::Hvc(HVC_RUN_VCPU));
    // Not reached: the run call never returns here (the next exit
    // re-enters at the top).
    a.i(Instr::B(base));
    a.assemble()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flavors() -> Vec<GuestHypFlavor> {
        let mut v = Vec::new();
        for vhe in [false, true] {
            for para in [ParaMode::None, ParaMode::HvcV83, ParaMode::NeveLs] {
                v.push(GuestHypFlavor::new(vhe, para));
            }
        }
        v
    }

    #[test]
    fn all_flavours_assemble() {
        for f in flavors() {
            let img = build(f, 0);
            assert!(img.hyp.len() > 100, "{f:?} suspiciously small");
            assert!(!img.kernel.is_empty());
        }
    }

    #[test]
    fn vector_offsets_hold_code() {
        for f in flavors() {
            let img = build(f, 0);
            assert!(
                img.hyp.fetch(img.hyp.base + 0x400).is_some(),
                "{f:?} sync vector"
            );
            assert!(
                img.hyp.fetch(img.hyp.base + 0x480).is_some(),
                "{f:?} irq vector"
            );
        }
    }

    #[test]
    fn unmodified_flavour_contains_el2_accesses() {
        let img = build(GuestHypFlavor::new(false, ParaMode::None), 0);
        let has_el2_msr = img
            .hyp
            .code
            .iter()
            .any(|i| matches!(i, Instr::Msr(RegId::Plain(r), _) if r.is_el2()));
        assert!(has_el2_msr, "unmodified image must use EL2 registers");
        let has_eret = img.hyp.code.iter().any(|i| matches!(i, Instr::Eret));
        assert!(has_eret);
    }

    #[test]
    fn hvc_paravirt_flavour_has_no_trapping_el2_accesses() {
        // The Section 4 property: on ARMv8.0 the image must contain no
        // instruction that would be UNDEFINED at EL1.
        for vhe in [false, true] {
            let img = build(GuestHypFlavor::new(vhe, ParaMode::HvcV83), 0);
            for prog in [&img.hyp, &img.kernel] {
                for i in prog.code.iter() {
                    match i {
                        Instr::Msr(id, _) | Instr::Mrs(_, id) => {
                            assert!(
                                !id.base_reg().is_el2() && !id.is_vhe_alias(),
                                "{i:?} would be undefined at EL1 on v8.0"
                            );
                        }
                        Instr::Eret => panic!("eret must be paravirtualized"),
                        _ => {}
                    }
                }
            }
        }
    }

    #[test]
    fn neve_paravirt_flavour_uses_loads_stores_and_el1_redirects() {
        let img = build(GuestHypFlavor::new(false, ParaMode::NeveLs), 0);
        // No direct EL2 accesses other than via hvc fallbacks.
        for i in img.hyp.code.iter() {
            if let Instr::Msr(id, _) | Instr::Mrs(_, id) = i {
                assert!(!id.base_reg().is_el2(), "{i:?} should be rewritten");
            }
        }
        // It must reference the shared page base register.
        let uses_page = img
            .hyp
            .code
            .iter()
            .any(|i| matches!(i, Instr::Ldr(_, r, _) | Instr::Str(_, r, _) if *r == PAGE_BASE));
        assert!(uses_page);
    }

    #[test]
    fn vhe_flavour_uses_el12_names_for_vm_state() {
        let img = build(GuestHypFlavor::new(true, ParaMode::None), 0);
        let has_el12 = img.hyp.code.iter().any(|i| {
            matches!(
                i,
                Instr::Msr(RegId::El12(_), _) | Instr::Mrs(_, RegId::El12(_))
            )
        });
        assert!(has_el12);
        // VHE handles exits inline: the kernel half is never targeted,
        // and timer accesses use EL02 forms.
        let has_el02 = img.hyp.code.iter().any(|i| {
            matches!(
                i,
                Instr::Msr(RegId::El02(_), _) | Instr::Mrs(_, RegId::El02(_))
            )
        });
        assert!(has_el02);
    }

    #[test]
    fn per_cpu_images_are_disjoint() {
        let a = build(GuestHypFlavor::new(true, ParaMode::None), 0);
        let b = build(GuestHypFlavor::new(true, ParaMode::None), 1);
        assert!(a.hyp.end() <= b.hyp.base || b.hyp.end() <= a.hyp.base);
    }
}
