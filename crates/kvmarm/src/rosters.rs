//! World-switch register rosters.
//!
//! Which registers a hypervisor saves and restores on each transition is
//! *the* quantity behind the paper's exit-multiplication analysis: every
//! roster entry a deprivileged guest hypervisor touches is one potential
//! trap on ARMv8.3 and (usually) zero traps with NEVE. The rosters here
//! are transcribed from KVM/ARM's switch path (`__sysreg_save_el1_state`
//! and friends) restricted to the registers the simulator models, and
//! they are shared between the native host hypervisor and the guest
//! hypervisor program builder so both levels move the same state.

use neve_sysreg::regs::{SysReg, NUM_LIST_REGS};
use std::sync::OnceLock;

/// EL1 context a hypervisor saves/restores when switching the EL1
/// hardware state between execution contexts (VM vs host kernel, or
/// nested VM vs guest hypervisor). These are the paper's Table 3 "VM
/// Execution Control" registers.
///
/// The rosters are walked on every simulated exit (the non-VHE host
/// swaps the full EL1 context per trap), so they are static slices
/// rather than freshly-allocated `Vec`s.
pub fn el1_context() -> &'static [SysReg] {
    use SysReg::*;
    &[
        SctlrEl1,
        Ttbr0El1,
        Ttbr1El1,
        TcrEl1,
        EsrEl1,
        FarEl1,
        Afsr0El1,
        Afsr1El1,
        MairEl1,
        AmairEl1,
        ContextidrEl1,
        CpacrEl1,
        ElrEl1,
        SpsrEl1,
        SpEl1,
        VbarEl1,
    ]
}

/// VM trap-control registers a hypervisor programs when entering a VM
/// and clears when returning to host context (Table 3's first group,
/// minus `VNCR_EL2` which only the host touches).
pub fn vm_trap_control() -> &'static [SysReg] {
    use SysReg::*;
    &[HcrEl2, VttbrEl2, VtcrEl2, HstrEl2, VpidrEl2, VmpidrEl2]
}

/// Hypervisor configuration registers written on every switch
/// (trap-on-write under NEVE; paper Table 4).
pub fn switch_control() -> &'static [SysReg] {
    use SysReg::*;
    &[CptrEl2, MdcrEl2]
}

/// GIC hypervisor-interface registers saved when leaving a VM.
pub fn gic_save() -> &'static [SysReg] {
    static V: OnceLock<Vec<SysReg>> = OnceLock::new();
    V.get_or_init(|| {
        let mut v = vec![SysReg::IchVmcrEl2, SysReg::IchMisrEl2, SysReg::IchElrsrEl2];
        for n in 0..NUM_LIST_REGS {
            v.push(SysReg::IchLrEl2(n));
        }
        v
    })
}

/// GIC hypervisor-interface registers restored when entering a VM.
pub fn gic_restore() -> &'static [SysReg] {
    static V: OnceLock<Vec<SysReg>> = OnceLock::new();
    V.get_or_init(|| {
        let mut v = vec![SysReg::IchVmcrEl2, SysReg::IchHcrEl2];
        for n in 0..NUM_LIST_REGS {
            v.push(SysReg::IchLrEl2(n));
        }
        v
    })
}

/// EL1 virtual-timer registers saved/restored around a VM switch; these
/// are EL1/EL0-reachable and do not trap. The EL2 timer-control pair
/// (`CNTHCTL_EL2`, `CNTVOFF_EL2`) is listed separately because it always
/// needs hypervisor privilege.
pub fn timer_el1() -> &'static [SysReg] {
    &[SysReg::CntvCtlEl0, SysReg::CntvCvalEl0]
}

/// EL2 timer control written around a VM switch.
pub fn timer_el2() -> &'static [SysReg] {
    &[SysReg::CnthctlEl2, SysReg::CntvoffEl2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use neve_sysreg::classify::{neve_class, NeveClass};

    #[test]
    fn el1_context_is_exactly_the_vm_execution_control_group() {
        let roster = el1_context();
        assert_eq!(roster.len(), 16);
        for r in roster {
            assert_eq!(
                neve_class(*r),
                NeveClass::VmExecutionControl,
                "{r} misclassified"
            );
        }
    }

    #[test]
    fn vm_trap_control_registers_are_table3_group1() {
        for &r in vm_trap_control() {
            assert_eq!(neve_class(r), NeveClass::VmTrapControl, "{r}");
        }
    }

    #[test]
    fn switch_control_registers_trap_on_write_under_neve() {
        for &r in switch_control() {
            assert_eq!(neve_class(r), NeveClass::HypTrapOnWrite, "{r}");
        }
    }

    #[test]
    fn gic_rosters_are_table5_registers() {
        for &r in gic_save().iter().chain(gic_restore()) {
            assert_eq!(neve_class(r), NeveClass::GicTrapOnWrite, "{r}");
        }
    }

    #[test]
    fn rosters_have_no_duplicates() {
        for roster in [el1_context(), vm_trap_control(), gic_save(), gic_restore()] {
            let set: std::collections::HashSet<_> = roster.iter().collect();
            assert_eq!(set.len(), roster.len());
        }
    }
}
