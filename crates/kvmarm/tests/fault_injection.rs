//! Property-based robustness of the fault-injection harness: any
//! seeded [`FaultPlan`] under any step budget always terminates — a
//! clean measurement or a structured [`SimFault`], never a panic and
//! never an unbounded loop.

use neve_armv8::FaultPlan;
use neve_kvmarm::{ArmConfig, MicroBench, ParaMode, TestBed};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary injection schedules against the nested v8.3 hypercall
    /// cell: the run loop must end in `Ok` or `Err(SimFault)` within
    /// the budget, and the watchdog itself must never panic.
    #[test]
    fn any_fault_plan_terminates_within_its_budget(
        seed in 0u64..1_000_000,
        count in 0usize..12,
        budget in 10_000u64..200_000,
    ) {
        let plan = FaultPlan::seeded(seed, count, 50_000);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut tb = TestBed::new(
                ArmConfig::Nested {
                    guest_vhe: false,
                    neve: false,
                    para: ParaMode::None,
                },
                MicroBench::Hypercall,
                3,
            );
            tb.set_step_budget(budget);
            tb.attach_fault_plan(plan);
            tb.try_run_measured(3)
        }));
        // Ok(Ok) and Ok(Err(fault)) are both acceptable terminations;
        // an unwinding panic is the one forbidden outcome.
        prop_assert!(outcome.is_ok(), "fault-injected run panicked");
        if let Ok(Err(fault)) = outcome {
            // The diagnostic snapshot must be coherent: the fault fired
            // at or under the budget (strictly above only for the
            // budget fault itself, which reports exactly the limit).
            prop_assert!(fault.steps <= budget, "{fault}");
        }
    }

    /// The same plan and budget twice: bit-identical outcomes, whether
    /// the run completes or faults (replayability of injected runs).
    #[test]
    fn injected_runs_replay_bit_identically(
        seed in 0u64..1_000_000,
    ) {
        let run = || {
            let mut tb = TestBed::new(
                ArmConfig::Nested {
                    guest_vhe: false,
                    neve: true,
                    para: ParaMode::None,
                },
                MicroBench::Hypercall,
                3,
            );
            tb.set_step_budget(100_000);
            tb.attach_fault_plan(FaultPlan::seeded(seed, 4, 50_000));
            tb.try_run_measured(3)
        };
        prop_assert_eq!(run(), run());
    }
}
