//! Section 6.5's hypervisor-design comparison: hosted (KVM-style) vs
//! standalone (Xen-style) guest hypervisors.

use neve_kvmarm::{ArmConfig, MicroBench, ParaMode, TestBed};

const V83: ArmConfig = ArmConfig::Nested {
    guest_vhe: false,
    neve: false,
    para: ParaMode::None,
};
const NEVE: ArmConfig = ArmConfig::Nested {
    guest_vhe: false,
    neve: true,
    para: ParaMode::None,
};

fn kvm(cfg: ArmConfig, bench: MicroBench) -> neve_cycles::counter::PerOp {
    let mut tb = TestBed::new(cfg, bench, 25);
    tb.run(25)
}

fn xen(cfg: ArmConfig, bench: MicroBench) -> neve_cycles::counter::PerOp {
    let mut tb = TestBed::new_xen(cfg, bench, 25);
    tb.run(25)
}

#[test]
fn xen_hypercalls_trap_far_less_than_kvm_on_v8_3() {
    // "Since Xen does not need to use the VM system registers for its
    // execution, it does not save and restore them for every VM exit"
    // (Section 6.5) — its hypercall path avoids the 2x16-register EL1
    // context churn of non-VHE KVM.
    let k = kvm(V83, MicroBench::Hypercall);
    let x = xen(V83, MicroBench::Hypercall);
    assert!(
        x.traps * 3.0 < k.traps,
        "xen {} vs kvm {} traps",
        x.traps,
        k.traps
    );
    assert!(x.cycles < k.cycles);
}

#[test]
fn xen_device_io_pays_the_dom0_switch() {
    // "Even Xen must save and restore all the VM system registers when
    // it switches between VMs, which is a common operation on Xen
    // because all I/O is handled in Dom0."
    let hc = xen(V83, MicroBench::Hypercall);
    let io = xen(V83, MicroBench::DeviceIo);
    assert!(
        io.traps > 2.0 * hc.traps,
        "device {} vs hypercall {} traps",
        io.traps,
        hc.traps
    );
    // The I/O path approaches KVM's cost: the VM switch dominates.
    let kio = kvm(V83, MicroBench::DeviceIo);
    assert!(io.cycles as f64 > 0.4 * kio.cycles as f64);
}

#[test]
fn neve_benefits_xen_too() {
    // "Therefore, Xen is likely to also benefit from NEVE."
    let v83 = xen(V83, MicroBench::DeviceIo);
    let neve = xen(NEVE, MicroBench::DeviceIo);
    assert!(
        neve.traps * 2.0 < v83.traps,
        "neve {} vs v8.3 {} traps",
        neve.traps,
        v83.traps
    );
    assert!(neve.cycles < v83.cycles);
}

#[test]
fn xen_ipi_chain_works() {
    let p = xen(V83, MicroBench::VirtualIpi);
    assert!(p.traps > 5.0);
    let n = xen(NEVE, MicroBench::VirtualIpi);
    assert!(n.traps < p.traps);
}
