//! The trap-provenance layer under a full nested stack: ring
//! eviction, per-kind agreement between the trace and the counter,
//! and phase attribution of the measured region.

use neve_armv8::trace::TraceEvent;
use neve_cycles::{Phase, TrapKind};
use neve_kvmarm::testbed::{ArmConfig, MicroBench, TestBed};
use neve_kvmarm::ParaMode;
use std::collections::BTreeMap;

const V83: ArmConfig = ArmConfig::Nested {
    guest_vhe: false,
    neve: false,
    para: ParaMode::None,
};

const NEVE: ArmConfig = ArmConfig::Nested {
    guest_vhe: false,
    neve: true,
    para: ParaMode::None,
};

#[test]
fn ring_evicts_under_a_full_nested_run() {
    let mut tb = TestBed::new(V83, MicroBench::Hypercall, 8);
    tb.m.attach_trace(16);
    let (delta, _) = tb.run_region(8);
    assert!(delta.traps > 0);
    let t = tb.m.trace.as_ref().expect("attached");
    // A nested hypercall run emits far more events than a 16-slot ring
    // holds: retention is pinned at capacity while the total keeps
    // counting past it.
    assert_eq!(t.len(), t.capacity());
    assert!(
        t.total > t.capacity() as u64,
        "total {} never exceeded capacity",
        t.total
    );
}

#[test]
fn trace_trap_events_match_the_counter_per_kind() {
    let mut tb = TestBed::new(V83, MicroBench::Hypercall, 8);
    // Big enough to retain the whole measured region (the testbed
    // clears the ring at the measurement snapshot).
    tb.m.attach_trace(1 << 16);
    let (delta, _) = tb.run_region(8);

    let t = tb.m.trace.as_ref().expect("attached");
    assert!(
        t.total <= t.capacity() as u64,
        "region overflowed the ring; the comparison below would be partial"
    );
    let mut from_trace: BTreeMap<TrapKind, u64> = BTreeMap::new();
    for ev in t.events() {
        if let TraceEvent::TrapToEl2 { kind, phase, .. } = ev {
            *from_trace.entry(*kind).or_insert(0) += 1;
            // Handlers are native: every trap interrupts guest code.
            assert_eq!(*phase, Phase::Guest);
        }
    }
    // The ring and the counter observed the same trap population —
    // Table 7's counts, event by event.
    assert_eq!(from_trace, delta.traps_by_kind);

    // System-register traps carry the decoded register that caused
    // them (the non-VHE switch code is full of them).
    let tagged = tb.m.trace.as_ref().unwrap().events().any(|ev| {
        matches!(
            ev,
            TraceEvent::TrapToEl2 {
                kind: TrapKind::SysReg,
                sysreg: Some(_),
                ..
            }
        )
    });
    assert!(tagged, "no sysreg trap carried its register");
}

#[test]
fn phases_partition_the_measured_region() {
    let mut tb = TestBed::new(V83, MicroBench::Hypercall, 8);
    tb.m.attach_trace(1 << 16);
    let (delta, _) = tb.run_region(8);

    let phase_cycles: u64 = delta.cycles_by_phase.values().sum();
    assert_eq!(phase_cycles, delta.cycles, "cycles leak out of the phases");
    let phase_traps: u64 = delta.traps_by_phase.values().sum();
    assert_eq!(phase_traps, delta.traps);

    // The nested world switch's anatomy is visible: eret emulation,
    // EL1 context moves and GIC switching all carry cycles, and the
    // trace recorded the corresponding phase markers.
    for p in [
        Phase::EretEmul,
        Phase::El1Save,
        Phase::El1Restore,
        Phase::GicSwitch,
    ] {
        assert!(
            delta.cycles_by_phase.get(&p).copied().unwrap_or(0) > 0,
            "no cycles attributed to {p:?}: {:?}",
            delta.cycles_by_phase
        );
        let marked =
            tb.m.trace
                .as_ref()
                .unwrap()
                .events()
                .any(|ev| matches!(ev, TraceEvent::PhaseChange { phase, .. } if *phase == p));
        assert!(marked, "no trace marker for {p:?}");
    }
}

#[test]
fn neve_records_deferrals_instead_of_traps() {
    let mut tb = TestBed::new(NEVE, MicroBench::Hypercall, 8);
    tb.m.attach_trace(1 << 16);
    let (delta, _) = tb.run_region(8);
    let t = tb.m.trace.as_ref().expect("attached");
    let deferrals = t
        .events()
        .filter(|ev| matches!(ev, TraceEvent::VncrDeferred { .. }))
        .count();
    assert!(
        deferrals > 0,
        "NEVE ran the switch without touching the deferred access page"
    );
    // And the deferred accesses are exactly the ones not trapping:
    // NEVE still traps eret and TLBI, but far fewer sysregs than the
    // page absorbs.
    let sysreg_traps = delta
        .traps_by_kind
        .get(&TrapKind::SysReg)
        .copied()
        .unwrap_or(0);
    assert!(
        deferrals as u64 > sysreg_traps,
        "page absorbed {deferrals} accesses vs {sysreg_traps} sysreg traps"
    );
    // The refresh work the host does for the page is attributed.
    assert!(
        delta
            .cycles_by_phase
            .get(&Phase::VncrRefresh)
            .copied()
            .unwrap_or(0)
            > 0,
        "{:?}",
        delta.cycles_by_phase
    );
}
