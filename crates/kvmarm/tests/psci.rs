//! PSCI firmware-interface tests: a VM boots its own secondary vCPUs,
//! the way real ARM guests do.

use neve_armv8::isa::{Asm, Instr};
use neve_armv8::machine::{Machine, MachineConfig, StepOutcome};
use neve_armv8::pstate::Pstate;
use neve_armv8::ArchLevel;
use neve_kvmarm::hyp::{HostHyp, HCR_VM_RUN, PSCI_ALREADY_ON, PSCI_CPU_ON, PSCI_SUCCESS};
use neve_kvmarm::layout;
use neve_sysreg::bits::vttbr;
use neve_sysreg::SysReg;

fn setup() -> (Machine, HostHyp) {
    let mut m = Machine::new(MachineConfig {
        arch: ArchLevel::V8_0,
        ncpus: 2,
        mem_size: layout::RAM_SIZE,
        cost: Default::default(),
    });
    let hyp = HostHyp::new(&mut m, 2, None);
    // Boot program on cpu0: CPU_ON(target=1, entry=secondary, ctx=0x42),
    // stash the return value, then spin until the secondary writes the
    // flag.
    let base = layout::L1_PAYLOAD_BASE;
    let secondary = base + 0x1000;
    let flag = base + 0x8000;
    let mut a = Asm::new(base);
    a.i(Instr::MovImm(0, PSCI_CPU_ON));
    a.i(Instr::MovImm(1, 1));
    a.i(Instr::MovImm(2, secondary));
    a.i(Instr::MovImm(3, 0x42));
    a.i(Instr::Smc(0));
    a.i(Instr::Mov(12, 0)); // PSCI return value
    let wait = a.label();
    a.i(Instr::MovImm(4, flag));
    a.bind(wait);
    a.i(Instr::Ldr(5, 4, 0));
    a.cbz(5, wait);
    a.i(Instr::Halt(1));
    m.load(a.assemble());
    // Secondary: publish its boot context into the flag.
    let mut s = Asm::new(secondary);
    s.i(Instr::MovImm(4, flag));
    s.i(Instr::Str(0, 4, 0)); // x0 = PSCI context argument
    s.i(Instr::Halt(2));
    m.load(s.assemble());
    m.core_mut(0).pstate = Pstate {
        el: 1,
        irq_masked: true,
        fiq_masked: true,
    };
    m.core_mut(0).pc = base;
    m.core_mut(0).regs.write(SysReg::HcrEl2, HCR_VM_RUN);
    m.core_mut(0).regs.write(
        SysReg::VttbrEl2,
        vttbr::build(layout::VMID_L1, hyp.host_s2.root),
    );
    // cpu1 stays parked at pc 0 until powered on.
    (m, hyp)
}

#[test]
fn cpu_on_boots_a_secondary_with_its_context() {
    let (mut m, mut hyp) = setup();
    let mut done0 = false;
    let mut done1 = false;
    for _ in 0..1_000_000 {
        if !done0 {
            match m.step(&mut hyp, 0) {
                StepOutcome::Halted(1) => done0 = true,
                StepOutcome::Executed => {}
                other => panic!("cpu0: {other:?}"),
            }
        }
        // Only step cpu1 once it has been given a pc.
        if !done1 && m.core(1).pc != 0 {
            match m.step(&mut hyp, 1) {
                StepOutcome::Halted(2) => done1 = true,
                StepOutcome::Executed => {}
                other => panic!("cpu1: {other:?}"),
            }
        }
        if done0 && done1 {
            break;
        }
    }
    assert!(done0 && done1);
    assert_eq!(m.core(0).gpr(12), PSCI_SUCCESS, "CPU_ON returned success");
    assert_eq!(m.core(1).gpr(0), 0x42, "context argument delivered");
    assert_eq!(
        m.core(1).regs.read(SysReg::HcrEl2),
        m.core(0).regs.read(SysReg::HcrEl2),
        "secondary inherits the VM configuration"
    );
}

#[test]
fn bad_psci_requests_are_rejected() {
    let (mut m, mut hyp) = setup();
    // Rewrite cpu0's request to target itself: INVALID.
    m.core_mut(0).gprs[1] = 0;
    // Run only the first 6 instructions (through the smc + mov).
    for _ in 0..6 {
        let _ = m.step(&mut hyp, 0);
    }
    // x1 was re-set by the program; instead call the host path directly
    // via a fresh machine below. Here just assert the secondary target
    // double-on case:
    let (mut m, mut hyp) = setup();
    for _ in 0..200 {
        let _ = m.step(&mut hyp, 0);
        if m.core(1).pc != 0 {
            break;
        }
    }
    assert_ne!(m.core(1).pc, 0, "first CPU_ON worked");
    // A second CPU_ON against the running core must fail: drive the
    // host's PSCI path again by replaying the boot program on cpu0.
    m.core_mut(0).pc = neve_kvmarm::layout::L1_PAYLOAD_BASE;
    for _ in 0..6 {
        let _ = m.step(&mut hyp, 0);
    }
    assert_eq!(m.core(0).gpr(12), PSCI_ALREADY_ON);
}
