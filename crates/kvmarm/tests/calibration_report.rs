//! Prints the raw microbenchmark numbers next to the paper's (run with
//! --nocapture); the bands themselves are asserted in microbench.rs and
//! in the neve-workloads crate.

use neve_kvmarm::{ArmConfig, MicroBench, ParaMode, TestBed};

fn cfgs() -> Vec<(&'static str, ArmConfig)> {
    vec![
        ("VM", ArmConfig::Vm),
        (
            "v8.3",
            ArmConfig::Nested {
                guest_vhe: false,
                neve: false,
                para: ParaMode::None,
            },
        ),
        (
            "v8.3-VHE",
            ArmConfig::Nested {
                guest_vhe: true,
                neve: false,
                para: ParaMode::None,
            },
        ),
        (
            "NEVE",
            ArmConfig::Nested {
                guest_vhe: false,
                neve: true,
                para: ParaMode::None,
            },
        ),
        (
            "NEVE-VHE",
            ArmConfig::Nested {
                guest_vhe: true,
                neve: true,
                para: ParaMode::None,
            },
        ),
    ]
}

#[test]
fn report() {
    println!();
    println!("paper:   Hypercall VM=2729 v8.3=422720 v8.3-VHE=307363 NEVE=92385 NEVE-VHE=100895");
    println!("paper traps: v8.3=126 v8.3-VHE=82 NEVE=15 NEVE-VHE=15");
    for bench in [
        MicroBench::Hypercall,
        MicroBench::DeviceIo,
        MicroBench::VirtualIpi,
        MicroBench::VirtualEoi,
    ] {
        print!("{bench:?}:");
        for (name, cfg) in cfgs() {
            let iters = if bench == MicroBench::VirtualIpi {
                12
            } else {
                30
            };
            let mut tb = TestBed::new(cfg, bench, iters);
            let p = tb.run(iters);
            print!("  {name}={} ({:.1}t)", p.cycles, p.traps);
        }
        println!();
    }
}
