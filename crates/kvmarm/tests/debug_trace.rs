//! Diagnostic trace of the nested flow (run with --nocapture).

use neve_kvmarm::testbed::{ArmConfig, MicroBench, TestBed};
use neve_kvmarm::ParaMode;

#[test]
fn trace_nested_hypercall() {
    let cfg = ArmConfig::Nested {
        guest_vhe: false,
        neve: false,
        para: ParaMode::None,
    };
    let mut tb = TestBed::new(cfg, MicroBench::Hypercall, 3);
    for step in 0..4000 {
        let pc = tb.m.core(0).pc;
        let el = tb.m.core(0).pstate.el;
        let ctx = tb.hyp.vcpus[0].ctx;
        let instr = tb.m.peek(pc);
        if step < 400 || instr.is_none() {
            println!(
                "{step:5} pc={pc:#x} el={el} ctx={ctx:?} traps={} instr={instr:?}",
                tb.m.counter.traps_total()
            );
        }
        let out = tb.m.step(&mut tb.hyp, 0);
        match out {
            neve_armv8::machine::StepOutcome::Executed => {}
            other => {
                println!("STOP at step {step}: {other:?} pc={:#x}", tb.m.core(0).pc);
                let _ = (ctx,);
                return;
            }
        }
    }
    println!(
        "ran 4000 steps without stopping; ctx={:?}",
        tb.hyp.vcpus[0].ctx
    );
}
