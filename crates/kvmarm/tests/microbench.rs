//! End-to-end microbenchmark runs across every evaluation configuration
//! (the machinery behind Tables 1, 6 and 7).

use neve_kvmarm::{ArmConfig, MicroBench, ParaMode, TestBed};

const V83_NONVHE: ArmConfig = ArmConfig::Nested {
    guest_vhe: false,
    neve: false,
    para: ParaMode::None,
};
const V83_VHE: ArmConfig = ArmConfig::Nested {
    guest_vhe: true,
    neve: false,
    para: ParaMode::None,
};
const NEVE_NONVHE: ArmConfig = ArmConfig::Nested {
    guest_vhe: false,
    neve: true,
    para: ParaMode::None,
};
const NEVE_VHE: ArmConfig = ArmConfig::Nested {
    guest_vhe: true,
    neve: true,
    para: ParaMode::None,
};

fn run(cfg: ArmConfig, bench: MicroBench, iters: u64) -> neve_cycles::counter::PerOp {
    let mut tb = TestBed::new(cfg, bench, iters);
    tb.run(iters)
}

#[test]
fn vm_hypercall_costs_a_few_thousand_cycles_and_one_trap() {
    let p = run(ArmConfig::Vm, MicroBench::Hypercall, 50);
    // Paper Table 1: 2,729 cycles, 1 trap per hypercall for a VM.
    assert!((1.0 - p.traps).abs() < 0.05, "traps/op = {}", p.traps);
    assert!(
        (1_500..5_000).contains(&p.cycles),
        "VM hypercall = {} cycles",
        p.cycles
    );
}

#[test]
fn nested_hypercall_on_v8_3_suffers_exit_multiplication() {
    let vm = run(ArmConfig::Vm, MicroBench::Hypercall, 30);
    let nested = run(V83_NONVHE, MicroBench::Hypercall, 30);
    // Paper Table 7: 126 traps non-VHE. Our miniature KVM has a smaller
    // but same-order roster; the structural claim is tens-of-traps per
    // single L2 hypercall.
    assert!(
        nested.traps > 50.0,
        "expected heavy exit multiplication, got {} traps/op",
        nested.traps
    );
    // Paper Table 1: 155x the VM cost; ours must be at least an order
    // of magnitude.
    assert!(
        nested.cycles > 30 * vm.cycles,
        "nested {} vs vm {}",
        nested.cycles,
        vm.cycles
    );
}

#[test]
fn vhe_guest_hypervisor_traps_less_than_non_vhe_on_v8_3() {
    let nonvhe = run(V83_NONVHE, MicroBench::Hypercall, 30);
    let vhe = run(V83_VHE, MicroBench::Hypercall, 30);
    // Paper Table 7: 126 vs 82.
    assert!(
        vhe.traps < nonvhe.traps * 0.8,
        "vhe {} vs nonvhe {}",
        vhe.traps,
        nonvhe.traps
    );
}

#[test]
fn neve_reduces_traps_by_an_order_of_magnitude() {
    let v83 = run(V83_NONVHE, MicroBench::Hypercall, 30);
    let neve = run(NEVE_NONVHE, MicroBench::Hypercall, 30);
    // Paper Table 7: 126 -> 15 ("more than six times"); Table 6: up to
    // 5x faster.
    assert!(
        neve.traps * 5.0 < v83.traps,
        "neve {} vs v8.3 {} traps",
        neve.traps,
        v83.traps
    );
    assert!(
        neve.cycles * 2 < v83.cycles,
        "neve {} vs v8.3 {} cycles",
        neve.cycles,
        v83.cycles
    );
}

#[test]
fn neve_vhe_also_improves() {
    let v83 = run(V83_VHE, MicroBench::Hypercall, 30);
    let neve = run(NEVE_VHE, MicroBench::Hypercall, 30);
    assert!(
        neve.traps * 3.0 < v83.traps,
        "neve {} vs v8.3 {} traps",
        neve.traps,
        v83.traps
    );
}

#[test]
fn device_io_is_more_expensive_than_hypercall() {
    for cfg in [ArmConfig::Vm, V83_NONVHE, NEVE_VHE] {
        let h = run(cfg, MicroBench::Hypercall, 30);
        let d = run(cfg, MicroBench::DeviceIo, 30);
        assert!(
            d.cycles > h.cycles,
            "{cfg:?}: device {} <= hypercall {}",
            d.cycles,
            h.cycles
        );
    }
}

#[test]
fn virtual_eoi_is_trap_free_and_constant_across_configs() {
    // Paper Tables 1/6: 71 cycles, zero traps, identical for VM and
    // nested VM at every architecture level.
    let vm = run(ArmConfig::Vm, MicroBench::VirtualEoi, 30);
    assert_eq!(vm.traps, 0.0, "VM EOI trapped");
    assert!(vm.cycles < 200, "VM EOI = {}", vm.cycles);
    let nested = run(V83_NONVHE, MicroBench::VirtualEoi, 30);
    assert_eq!(nested.traps, 0.0, "nested EOI trapped");
    let diff = vm.cycles.abs_diff(nested.cycles);
    assert!(
        diff <= 10,
        "EOI differs: {} vs {}",
        vm.cycles,
        nested.cycles
    );
}

#[test]
fn virtual_ipi_works_in_a_vm() {
    let p = run(ArmConfig::Vm, MicroBench::VirtualIpi, 20);
    // Paper Table 1: 8,364 cycles for a VM virtual IPI (3x hypercall).
    assert!(p.traps >= 1.0, "IPI must trap at least once: {}", p.traps);
    let h = run(ArmConfig::Vm, MicroBench::Hypercall, 20);
    assert!(
        p.cycles > h.cycles,
        "IPI {} should exceed hypercall {}",
        p.cycles,
        h.cycles
    );
}

#[test]
fn virtual_ipi_nested_is_much_worse_on_v8_3_than_neve() {
    let v83 = run(V83_NONVHE, MicroBench::VirtualIpi, 10);
    let neve = run(NEVE_NONVHE, MicroBench::VirtualIpi, 10);
    assert!(
        neve.cycles < v83.cycles,
        "neve {} vs v8.3 {}",
        neve.cycles,
        v83.cycles
    );
    assert!(neve.traps < v83.traps);
}

#[test]
fn paravirtualized_v8_0_matches_native_v8_3_trap_counts() {
    // The paper's methodological claim (Sections 3/5): replacing the
    // would-trap instructions with hvc on ARMv8.0 reproduces ARMv8.3
    // behaviour. Trap counts must match closely; cycles within a few
    // percent.
    for vhe in [false, true] {
        let native = run(
            ArmConfig::Nested {
                guest_vhe: vhe,
                neve: false,
                para: ParaMode::None,
            },
            MicroBench::Hypercall,
            30,
        );
        let para = run(
            ArmConfig::Nested {
                guest_vhe: vhe,
                neve: false,
                para: ParaMode::HvcV83,
            },
            MicroBench::Hypercall,
            30,
        );
        let ratio = para.traps / native.traps;
        assert!(
            (0.9..1.1).contains(&ratio),
            "vhe={vhe}: para {} vs native {} traps",
            para.traps,
            native.traps
        );
    }
}

#[test]
fn paravirtualized_neve_matches_native_neve() {
    let native = run(NEVE_NONVHE, MicroBench::Hypercall, 30);
    let para = run(
        ArmConfig::Nested {
            guest_vhe: false,
            neve: true,
            para: ParaMode::NeveLs,
        },
        MicroBench::Hypercall,
        30,
    );
    let ratio = para.traps / native.traps.max(1.0);
    assert!(
        (0.8..1.3).contains(&ratio),
        "para {} vs native {} traps",
        para.traps,
        native.traps
    );
}

#[test]
fn gicv2_mmio_interface_matches_gicv3_trap_counts() {
    // Paper Sections 4 and 7: with GICv2 the hypervisor control
    // interface is memory mapped and "trivially traps to EL2" via
    // Stage-2; "the programming interfaces for both GIC versions are
    // almost identical", so nested trap counts must match the GICv3
    // system-register configuration closely.
    let mut v3 = TestBed::new(V83_NONVHE, MicroBench::Hypercall, 30);
    let v3 = v3.run(30);
    let mut v2 = neve_kvmarm::TestBed::new_gicv2(V83_NONVHE, MicroBench::Hypercall, 30);
    let v2 = v2.run(30);
    let ratio = v2.traps / v3.traps;
    assert!(
        (0.95..1.05).contains(&ratio),
        "GICv2 {} vs GICv3 {} traps",
        v2.traps,
        v3.traps
    );
    // MMIO emulation costs slightly more per access than a sysreg trap
    // (abort decode + address lookup), so cycles are >= GICv3's.
    assert!(v2.cycles >= v3.cycles);
}

#[test]
fn gicv2_works_for_the_ipi_chain() {
    let mut tb = neve_kvmarm::TestBed::new_gicv2(V83_NONVHE, MicroBench::VirtualIpi, 8);
    let p = tb.run(8);
    assert!(p.traps > 50.0);
}
