//! Event-wheel scheduler tests: O(0) idle cores, exact timer wake-ups,
//! park/wake via IPI, and bit-identical determinism across runs.

use neve_cycles::Phase;
use neve_kvmarm::guests;
use neve_kvmarm::testbed::TestBed;
use neve_sysreg::SysReg;

/// Runs the mostly-idle big-SMP shape to completion and reports
/// (host steps, total cycles).
fn run_idle(vcpus: usize, iters: u64) -> (u64, u64) {
    let mut tb = TestBed::new_bigsmp(vcpus, false, iters);
    let steps = tb
        .try_run_wheel(|m| m.core(0).halted == Some(guests::DONE))
        .expect("busy core completes");
    (steps, tb.m.counter.cycles())
}

#[test]
fn idle_cores_cost_exactly_one_step_each() {
    // The satellite-1 regression: with 1 busy and N-1 idle cores, each
    // idle core costs exactly one host step (the `wfi` that parks it)
    // for the entire run — the legacy loop charged one poll per idle
    // core per round.
    let iters = 40;
    let (steps8, _) = run_idle(8, iters);
    let (steps64, _) = run_idle(64, iters);
    assert_eq!(
        steps64,
        steps8 + 56,
        "56 extra idle cores must cost exactly 56 extra host steps"
    );
}

#[test]
fn wheel_runs_are_bit_identical_across_repeats() {
    let a = run_idle(64, 40);
    let b = run_idle(64, 40);
    assert_eq!(a, b, "steps and cycle totals must be deterministic");

    let storm = |_| {
        let mut tb = TestBed::new_bigsmp(8, true, 25);
        let steps = tb
            .try_run_wheel(|m| m.core(0).halted == Some(guests::DONE))
            .expect("storm completes");
        (steps, tb.m.counter.cycles())
    };
    assert_eq!(storm(()), storm(()));
}

#[test]
fn ipi_storm_wakes_the_parked_receiver_per_delivery() {
    let iters = 25;
    let mut tb = TestBed::new_bigsmp(8, true, iters);
    let steps = tb
        .try_run_wheel(|m| m.core(0).halted == Some(guests::DONE))
        .expect("sender completes");
    // The receiver acknowledged every IPI (the sender spins on the
    // shared counter, so completion proves delivery) from inside its
    // WFI loop, and it is parked again at the end.
    let flag = guests::ipi_flag(neve_kvmarm::layout::L1_PAYLOAD_BASE);
    assert_eq!(tb.m.mem.read_u64(flag), iters);
    assert!(tb.m.is_parked(1), "receiver re-parks after the last IPI");
    // The six pure-idle cores parked after one step each; with the
    // sender spinning the whole time the run costs far fewer steps
    // than a polling loop would burn on them.
    assert!(steps > 0);
    for cpu in 2..8 {
        assert!(tb.m.is_parked(cpu), "cpu {cpu} should be parked");
    }
}

#[test]
fn timer_wake_fires_at_the_exact_deadline_via_idle_jump() {
    // Park everything, then arm cpu 1's virtual timer and verify the
    // wheel jumps the clock to exactly the deadline, charging the gap
    // as Phase::Idle (simulated time, zero host work).
    let mut tb = TestBed::new_bigsmp(2, false, 10);
    tb.try_run_wheel(|m| m.core(0).halted == Some(guests::DONE))
        .expect("busy core completes");
    assert!(tb.m.is_parked(1));

    let now = tb.m.counter.cycles();
    let deadline = now + 50_000;
    tb.m.gic.dist.enable(1, neve_vtimer::PPI_VTIMER);
    tb.m.timers.write(1, SysReg::CntvCvalEl0, deadline);
    tb.m.timers.write(1, SysReg::CntvCtlEl0, 1); // CTL_ENABLE
    let idle_before = tb.m.counter.cycles_in(Phase::Idle);

    // The timer write bumped the timers epoch; the service pass must
    // refresh the parked core's waker (not wake it — nothing fires
    // yet).
    let hyp = &mut tb.hyp;
    assert!(!tb.m.service_wakeups(hyp));
    assert!(tb.m.is_parked(1));
    assert_eq!(tb.m.counter.cycles(), now, "no time passes on a refresh");

    // Everything is parked: the jump must land exactly on the deadline
    // and deliver the timer interrupt to the host.
    assert!(tb.m.advance_to_wake(hyp), "armed timer must wake the core");
    assert!(!tb.m.is_parked(1));
    let idle = tb.m.counter.cycles_in(Phase::Idle) - idle_before;
    assert_eq!(idle, deadline - now, "idle jump covers exactly the gap");
}

#[test]
fn unarmed_full_sleep_reports_deadlock_instead_of_spinning() {
    let mut tb = TestBed::new_bigsmp(2, false, 5);
    tb.try_run_wheel(|m| m.core(0).halted == Some(guests::DONE))
        .expect("busy core completes");
    // cpu 0 halted, cpu 1 parked with nothing armed: asking the wheel
    // to run further must fail fast, not burn the step budget.
    let err = tb.try_run_wheel(|_| false).expect_err("deadlock");
    let msg = format!("{err}");
    assert!(msg.contains("no runnable core"), "got: {msg}");
}

#[test]
fn snapshot_restore_preserves_pending_wheel_events() {
    // Arm a timer for a parked core, snapshot, run the wake, restore,
    // run the wake again: both wakes must fire at the same simulated
    // time with identical cycle totals (the satellite-6 guarantee, at
    // machine level).
    let mut tb = TestBed::new_bigsmp(2, false, 10);
    tb.try_run_wheel(|m| m.core(0).halted == Some(guests::DONE))
        .expect("busy core completes");
    let now = tb.m.counter.cycles();
    let deadline = now + 32_768;
    tb.m.gic.dist.enable(1, neve_vtimer::PPI_VTIMER);
    tb.m.timers.write(1, SysReg::CntvCvalEl0, deadline);
    tb.m.timers.write(1, SysReg::CntvCtlEl0, 1);
    tb.m.service_wakeups(&mut tb.hyp);

    let snap = tb.m.snapshot();
    assert!(tb.m.advance_to_wake(&mut tb.hyp));
    let first_wake = tb.m.counter.cycles();
    let first_idle = tb.m.counter.cycles_in(Phase::Idle);

    tb.m.restore(&snap);
    assert!(tb.m.is_parked(1), "park state must survive the restore");
    assert!(tb.m.advance_to_wake(&mut tb.hyp));
    assert_eq!(tb.m.counter.cycles(), first_wake);
    assert_eq!(tb.m.counter.cycles_in(Phase::Idle), first_idle);
}
