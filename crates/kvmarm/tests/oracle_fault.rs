//! Fault-injected divergence detection: the checked-mode step
//! invariants must observe a corrupted shadow Stage-2 descriptor at
//! *exactly* the step the fault was planted — before the host gets a
//! chance to repair it in-line via the abort path.

use neve_armv8::check::ViolationKind;
use neve_armv8::{FaultPlan, InjectedFault, Injection};
use neve_kvmarm::{ArmConfig, MicroBench, ParaMode, TestBed};
use proptest::prelude::*;

const V83: ArmConfig = ArmConfig::Nested {
    guest_vhe: false,
    neve: false,
    para: ParaMode::None,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// A `CorruptShadowPte` injection with the always-detectable
    /// garbage flavour (root descriptor valid but not a table) is
    /// flagged by the checker as `MalformedStage2` at the injected
    /// step, never later.
    ///
    /// Parameter algebra: the injection corrupts root slot
    /// `param % 512` with garbage flavour `param % 3`. `param = 512k`
    /// pins the slot to 0 (the one covering all populated RAM), and
    /// `k ≡ 2 (mod 3)` makes `param % 3 == 1` — the valid-but-not-table
    /// descriptor the structural scan always sees. Steps up to 1000 are
    /// safe: every nested run retires far more, and VTTBR is installed
    /// during setup before stepping begins.
    #[test]
    fn corrupt_shadow_pte_is_detected_at_the_faulted_step(
        k in 0u64..200,
        step in 1u64..=1000,
    ) {
        let param = 512 * (3 * k + 2);
        prop_assert_eq!(param % 512, 0);
        prop_assert_eq!(param % 3, 1);

        let mut tb = TestBed::new(V83, MicroBench::Hypercall, 4);
        // Detection must happen by step 1000; a corrupted run that the
        // host cannot repair may otherwise thrash until the (huge)
        // default watchdog fires. Keep the budget small — the verdict
        // below is about the checker, not run completion.
        tb.set_step_budget(50_000);
        tb.m.attach_checker();
        tb.attach_fault_plan(FaultPlan::new(vec![Injection {
            step,
            fault: InjectedFault::CorruptShadowPte,
            param,
        }]));
        // The run may complete (host repairs the table via the abort
        // path) or degrade to a structured fault; either way the
        // checker must have seen the corruption first.
        let _ = tb.try_run_measured(4);

        let applied = tb.m.fault_plan().expect("plan attached").applied();
        prop_assert_eq!(applied, 1, "injection never fired");
        let checker = tb.m.checker().expect("checker attached");
        let first = checker.first().expect("corruption went undetected");
        prop_assert_eq!(first.kind, ViolationKind::MalformedStage2);
        prop_assert_eq!(
            first.step, step,
            "detected at step {} instead of the faulted step {}",
            first.step, step
        );
    }
}

/// The same run without a fault plan is violation-free: checked mode
/// observes, it does not second-guess a healthy stack.
#[test]
fn fault_free_run_is_violation_free() {
    let mut tb = TestBed::new(V83, MicroBench::Hypercall, 4);
    tb.m.attach_checker();
    tb.run(4);
    let checker = tb.m.checker().expect("checker attached");
    assert!(
        checker.is_clean(),
        "spurious violations: {:?}",
        checker.violations()
    );
}
