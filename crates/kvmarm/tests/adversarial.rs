//! Adversarial guest hypervisors: a malicious or buggy L1 hypervisor
//! must never crash the host or escape its VM (failure injection on the
//! nested-virtualization paths).

use neve_armv8::isa::{Asm, Instr};
use neve_armv8::machine::{Machine, MachineConfig, StepOutcome};
use neve_armv8::pstate::Pstate;
use neve_armv8::ArchLevel;
use neve_kvmarm::hyp::{HostHyp, NestedMode};
use neve_kvmarm::layout;
use neve_kvmarm::ParaMode;
use neve_sysreg::bits::hcr;
use neve_sysreg::{RegId, SysReg};

/// Builds a machine whose "guest hypervisor" is an arbitrary adversarial
/// program at virtual EL2.
fn adversary(program: impl FnOnce(&mut Asm), neve: bool) -> (Machine, HostHyp) {
    let arch = if neve {
        ArchLevel::V8_4
    } else {
        ArchLevel::V8_3
    };
    let mut m = Machine::new(MachineConfig {
        arch,
        ncpus: 1,
        mem_size: layout::RAM_SIZE,
        cost: Default::default(),
    });
    let hyp = HostHyp::new(
        &mut m,
        1,
        Some(NestedMode {
            guest_vhe: false,
            neve,
            para: ParaMode::None,
            gic_mmio: false,
            xen: false,
        }),
    );
    let mut a = Asm::new(layout::GUEST_HYP_BASE);
    program(&mut a);
    a.i(Instr::Halt(0x77));
    m.load(a.assemble());
    m.core_mut(0).pstate = Pstate {
        el: 1,
        irq_masked: true,
        fiq_masked: true,
    };
    m.core_mut(0).pc = layout::GUEST_HYP_BASE;
    let mut bits = hcr::VM | hcr::IMO | hcr::NV | hcr::NV1;
    if neve {
        bits |= hcr::NV2;
    }
    m.core_mut(0).regs.write(SysReg::HcrEl2, bits);
    m.core_mut(0).regs.write(
        SysReg::VttbrEl2,
        neve_sysreg::bits::vttbr::build(layout::VMID_L1, hyp.host_s2.root),
    );
    if neve {
        let raw = neve_core::VncrEl2::enabled_at(layout::vncr_page(0))
            .unwrap()
            .raw();
        m.core_mut(0).regs.write(SysReg::VncrEl2, raw);
        m.core_mut(0).neve.vncr = neve_core::VncrEl2::from_raw(raw);
    }
    (m, hyp)
}

fn run_to_halt(m: &mut Machine, hyp: &mut HostHyp) -> StepOutcome {
    for _ in 0..1_000_000 {
        match m.step(hyp, 0) {
            StepOutcome::Executed => {}
            other => return other,
        }
    }
    panic!("adversary looped forever");
}

#[test]
fn garbage_eret_state_cannot_enter_el2() {
    // The guest hypervisor claims an EL2h return state; the host must
    // sanitize it to EL1 on nested entry (paper Section 4: a VM never
    // really enters EL2).
    for neve in [false, true] {
        let (mut m, mut hyp) = adversary(
            |a| {
                // vHCR with VM set so the eret targets the "nested VM".
                a.i(Instr::MovImm(1, hcr::VM | hcr::IMO));
                a.i(Instr::Msr(RegId::Plain(SysReg::HcrEl2), 1));
                // Aim the return at the Halt after the eret
                // (instruction index 7 of this program).
                a.i(Instr::MovImm(
                    1,
                    neve_kvmarm::layout::GUEST_HYP_BASE + 7 * 4,
                ));
                a.i(Instr::Msr(RegId::Plain(SysReg::ElrEl2), 1));
                a.i(Instr::MovImm(1, 0x3c9)); // EL2h, masked: forged
                a.i(Instr::Msr(RegId::Plain(SysReg::SpsrEl2), 1));
                a.i(Instr::Eret);
                // The eret resumes at the trailing Halt: at EL1, never
                // EL2 (the host sanitized the forged SPSR).
            },
            neve,
        );
        let out = run_to_halt(&mut m, &mut hyp);
        assert_eq!(out, StepOutcome::Halted(0x77), "neve={neve}");
        assert!(m.core(0).pstate.el <= 1, "forged SPSR reached EL2");
    }
}

#[test]
fn wild_virtual_vttbr_is_survivable() {
    // The guest hypervisor points its Stage-2 at garbage, then "enters"
    // its VM, which immediately faults on everything; the host forwards
    // the fault back to the guest hypervisor rather than dying.
    let (mut m, mut hyp) = adversary(
        |a| {
            a.i(Instr::MovImm(
                1,
                neve_sysreg::bits::vttbr::build(9, 0x1f_f000),
            ));
            a.i(Instr::Msr(RegId::Plain(SysReg::VttbrEl2), 1));
            a.i(Instr::MovImm(1, hcr::VM | hcr::IMO));
            a.i(Instr::Msr(RegId::Plain(SysReg::HcrEl2), 1));
            // Return into "the VM" at an address backed by nothing the
            // guest Stage-2 maps; data accesses there would fault. The
            // program halts first — the point is the host survived the
            // garbage table programming.
            a.i(Instr::MovImm(1, 0));
            a.i(Instr::Msr(RegId::Plain(SysReg::HcrEl2), 1));
        },
        false,
    );
    let out = run_to_halt(&mut m, &mut hyp);
    assert_eq!(out, StepOutcome::Halted(0x77));
}

#[test]
fn hammering_trapped_registers_only_costs_cycles() {
    // A trap storm (the worst a guest hypervisor can do) burns time but
    // corrupts nothing: hardware HCR is bit-identical afterwards.
    for neve in [false, true] {
        let (mut m, mut hyp) = adversary(
            |a| {
                a.i(Instr::MovImm(10, 200));
                let top = a.label();
                a.bind(top);
                a.i(Instr::MovImm(1, 0xffff_ffff_ffff_ffff));
                a.i(Instr::Msr(RegId::Plain(SysReg::VtcrEl2), 1));
                a.i(Instr::Msr(RegId::Plain(SysReg::HstrEl2), 1));
                a.i(Instr::Mrs(2, RegId::Plain(SysReg::CnthctlEl2)));
                a.i(Instr::SubImm(10, 10, 1));
                a.cbnz(10, top);
            },
            neve,
        );
        let before = m.core(0).regs.read(SysReg::HcrEl2);
        let out = run_to_halt(&mut m, &mut hyp);
        assert_eq!(out, StepOutcome::Halted(0x77), "neve={neve}");
        assert_eq!(m.core(0).regs.read(SysReg::HcrEl2), before);
        // The trap storm was visible in the accounting (v8.3) or mostly
        // absorbed by NEVE.
        if neve {
            assert!(m.counter.traps_total() < 250, "NEVE absorbed the storm");
        } else {
            assert!(m.counter.traps_total() >= 600, "v8.3 trap storm counted");
        }
    }
}

#[test]
fn unmapped_guest_hypervisor_stack_faults_in_lazily() {
    // The guest hypervisor touches memory the host has not mapped yet:
    // the host's lazy Stage-2 fault-in path serves it transparently.
    let (mut m, mut hyp) = adversary(
        |a| {
            a.i(Instr::MovImm(1, 0x0070_0000)); // RAM, never touched
            a.i(Instr::MovImm(2, 0x5a5a));
            a.i(Instr::Str(2, 1, 0));
            a.i(Instr::Ldr(3, 1, 0));
        },
        false,
    );
    let out = run_to_halt(&mut m, &mut hyp);
    assert_eq!(out, StepOutcome::Halted(0x77));
    assert_eq!(m.core(0).gpr(3), 0x5a5a);
    assert!(m.counter.traps_total() >= 1, "the fault-in trap happened");
}

#[test]
fn access_beyond_ram_gets_an_abort_injected() {
    // Pointing a load at IPA space no memslot backs must inject an
    // abort into the guest, not panic the host's mapper.
    let (mut m, mut hyp) = adversary(
        |a| {
            // An exception vector for the injected abort.
            a.i(Instr::MovImm(1, layout::RAM_SIZE + 0x1000));
            a.i(Instr::Ldr(2, 1, 0));
            a.i(Instr::Halt(0x78)); // skipped: the abort lands at VBAR
        },
        false,
    );
    // Give the adversary a vector table: VBAR_EL1 = image base + 0x100.
    let mut v = Asm::new(layout::GUEST_HYP_BASE + 0x4000);
    v.org(0x200);
    v.i(Instr::Halt(0xcc));
    m.load(v.assemble());
    m.core_mut(0)
        .regs
        .write(SysReg::VbarEl1, layout::GUEST_HYP_BASE + 0x4000);
    let out = run_to_halt(&mut m, &mut hyp);
    assert_eq!(out, StepOutcome::Halted(0xcc), "abort delivered to guest");
}
