//! SMP tests: the paper's VMs are 4-vCPU (Section 5's configurations);
//! per-vCPU virtualization state must be fully independent and
//! per-operation costs must not degrade with core count.

use neve_armv8::machine::{Machine, MachineConfig, StepOutcome};
use neve_armv8::pstate::Pstate;
use neve_armv8::ArchLevel;
use neve_gic::vgic::ICH_HCR_EN;
use neve_kvmarm::guests;
use neve_kvmarm::hyp::{HostHyp, HCR_VM_RUN};
use neve_kvmarm::layout;
use neve_sysreg::bits::vttbr;
use neve_sysreg::SysReg;

/// Builds a `ncpus`-core machine where every core runs its own
/// hypercall payload as an independent vCPU of one L1 VM.
fn smp_vm(ncpus: usize, iters: u64) -> (Machine, HostHyp) {
    let mut m = Machine::new(MachineConfig {
        arch: ArchLevel::V8_0,
        ncpus,
        mem_size: layout::RAM_SIZE,
        cost: Default::default(),
    });
    let hyp = HostHyp::new(&mut m, ncpus, None);
    for cpu in 0..ncpus {
        let base = layout::L1_PAYLOAD_BASE + cpu as u64 * 0x1000;
        m.load(guests::hypercall(base, iters));
        m.core_mut(cpu).pstate = Pstate {
            el: 1,
            irq_masked: true,
            fiq_masked: true,
        };
        m.core_mut(cpu).pc = base;
        m.core_mut(cpu).regs.write(SysReg::HcrEl2, HCR_VM_RUN);
        m.core_mut(cpu).regs.write(
            SysReg::VttbrEl2,
            vttbr::build(layout::VMID_L1, hyp.host_s2.root),
        );
        m.gic.ich_write(cpu, SysReg::IchHcrEl2, ICH_HCR_EN);
    }
    (m, hyp)
}

#[test]
fn four_vcpus_run_hypercalls_independently() {
    let iters = 25;
    let (mut m, mut hyp) = smp_vm(4, iters);
    let mut done = [false; 4];
    for _round in 0..2_000_000u64 {
        let mut all = true;
        for (cpu, cpu_done) in done.iter_mut().enumerate() {
            if *cpu_done {
                continue;
            }
            all = false;
            match m.step(&mut hyp, cpu) {
                StepOutcome::Executed => {}
                StepOutcome::Halted(code) => {
                    assert_eq!(code, guests::DONE, "cpu {cpu} crashed");
                    *cpu_done = true;
                }
                other => panic!("cpu {cpu}: {other:?}"),
            }
        }
        if all {
            break;
        }
    }
    assert!(done.iter().all(|d| *d), "all vCPUs completed");
    assert_eq!(hyp.l0_hypercalls, 4 * iters);
    // Every vCPU chain serviced its own share.
    for cpu in 0..4 {
        assert_eq!(hyp.vcpus[cpu].hypercalls_serviced, iters);
    }
}

#[test]
fn per_vcpu_cost_does_not_degrade_with_core_count() {
    // One hypercall costs the same whether 1 or 4 vCPUs share the
    // machine (the simulator has no lock contention to model; the test
    // guards against accidental cross-CPU state sharing creeping in).
    let cost_of = |ncpus: usize| {
        let iters = 20;
        let (mut m, mut hyp) = smp_vm(ncpus, iters);
        // Interleave all cores round robin to completion.
        let mut halted = 0;
        let mut guard = 0u64;
        while halted < ncpus {
            halted = 0;
            for cpu in 0..ncpus {
                match m.step(&mut hyp, cpu) {
                    StepOutcome::Halted(_) => halted += 1,
                    StepOutcome::Executed => {}
                    other => panic!("{other:?}"),
                }
            }
            guard += 1;
            assert!(guard < 1_000_000);
        }
        m.counter.cycles() / (ncpus as u64 * iters)
    };
    let one = cost_of(1);
    let four = cost_of(4);
    let drift = one.abs_diff(four) as f64 / one as f64;
    assert!(drift < 0.02, "1-cpu {one} vs 4-cpu {four}");
}

#[test]
fn vcpu_state_is_isolated_across_cores() {
    let (mut m, mut hyp) = smp_vm(2, 5);
    // Poison core 1's EL1 state; core 0's benchmarks must be unaffected.
    m.core_mut(1).regs.write(SysReg::SctlrEl1, 0xdead);
    m.core_mut(1).regs.write(SysReg::VbarEl1, 0xbeef_0000);
    let mut steps = 0u64;
    loop {
        match m.step(&mut hyp, 0) {
            StepOutcome::Halted(code) => {
                assert_eq!(code, guests::DONE);
                break;
            }
            StepOutcome::Executed => {}
            other => panic!("{other:?}"),
        }
        steps += 1;
        assert!(steps < 1_000_000);
    }
    assert_eq!(m.core(1).regs.read(SysReg::SctlrEl1), 0xdead);
    assert_eq!(m.core(0).regs.read(SysReg::SctlrEl1), 0);
}
