//! Criterion benches of the simulator's building blocks: interpreter
//! throughput, page-table walks, NEVE engine decisions.

use criterion::{criterion_group, criterion_main, Criterion};
use neve_armv8::isa::{Asm, Instr};
use neve_armv8::machine::{ExitInfo, Hypervisor, Machine, MachineConfig};
use neve_armv8::pstate::Pstate;
use neve_armv8::ArchLevel;
use neve_core::{NeveEngine, VncrEl2};
use neve_memsim::{walk, Access, FrameAlloc, PageTable, Perms, PhysMem};
use neve_sysreg::{RegId, SysReg};

struct NullHyp;
impl Hypervisor for NullHyp {
    fn handle_sync(&mut self, _m: &mut Machine, _c: usize, _i: ExitInfo) {}
    fn handle_irq(&mut self, _m: &mut Machine, _c: usize) {}
}

fn bench_interpreter(c: &mut Criterion) {
    c.bench_function("interpreter_1k_alu", |b| {
        let mut m = Machine::new(MachineConfig {
            arch: ArchLevel::V8_0,
            ncpus: 1,
            mem_size: 1 << 20,
            cost: Default::default(),
        });
        let mut a = Asm::new(0x1000);
        let top = a.label();
        a.i(Instr::MovImm(0, 1000));
        a.bind(top);
        a.i(Instr::SubImm(0, 0, 1));
        a.cbnz(0, top);
        a.i(Instr::Halt(0));
        m.load(a.assemble());
        b.iter(|| {
            m.core_mut(0).halted = None;
            m.core_mut(0).pstate = Pstate {
                el: 1,
                irq_masked: true,
                fiq_masked: true,
            };
            m.core_mut(0).pc = 0x1000;
            let mut h = NullHyp;
            std::hint::black_box(m.run(&mut h, 0, 10_000))
        })
    });
}

fn bench_page_walk(c: &mut Criterion) {
    let mut mem = PhysMem::new(1 << 30);
    let mut fr = FrameAlloc::new(0x10_0000, 0x10_0000);
    let t = PageTable::new(&mut mem, &mut fr);
    for p in 0..64u64 {
        t.map(
            &mut mem,
            &mut fr,
            p * 4096,
            0x20_0000 + p * 4096,
            Perms::RWX,
        );
    }
    c.bench_function("stage2_walk", |b| {
        b.iter(|| std::hint::black_box(walk(&mem, t, 0x8123, Access::Read)))
    });
}

fn bench_neve_engine(c: &mut Criterion) {
    let e = NeveEngine {
        vncr: VncrEl2::enabled_at(0x9000_0000).unwrap(),
        features: Default::default(),
    };
    let regs: Vec<_> = SysReg::all();
    c.bench_function("neve_disposition_all_regs", |b| {
        b.iter(|| {
            for &r in &regs {
                std::hint::black_box(e.disposition(RegId::Plain(r), false, true));
            }
        })
    });
}

criterion_group!(
    benches,
    bench_interpreter,
    bench_page_walk,
    bench_neve_engine
);
criterion_main!(benches);
