//! Criterion benches over the ARM microbenchmark configurations.
//!
//! Criterion measures the *simulator's* wall-clock time per simulated
//! microbenchmark run; the simulated cycle counts themselves are printed
//! by the `table1`/`table6`/`table7` binaries. Keeping both matters:
//! wall-time regressions here mean the simulator got slower, not that
//! NEVE changed.

use criterion::{criterion_group, criterion_main, Criterion};
use neve_kvmarm::{ArmConfig, MicroBench, ParaMode, TestBed};

fn configs() -> Vec<(&'static str, ArmConfig)> {
    vec![
        ("vm", ArmConfig::Vm),
        (
            "nested_v83",
            ArmConfig::Nested {
                guest_vhe: false,
                neve: false,
                para: ParaMode::None,
            },
        ),
        (
            "nested_v83_vhe",
            ArmConfig::Nested {
                guest_vhe: true,
                neve: false,
                para: ParaMode::None,
            },
        ),
        (
            "nested_neve",
            ArmConfig::Nested {
                guest_vhe: false,
                neve: true,
                para: ParaMode::None,
            },
        ),
        (
            "nested_neve_vhe",
            ArmConfig::Nested {
                guest_vhe: true,
                neve: true,
                para: ParaMode::None,
            },
        ),
    ]
}

fn bench_hypercall(c: &mut Criterion) {
    let mut g = c.benchmark_group("arm_hypercall");
    g.sample_size(10);
    for (name, cfg) in configs() {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut tb = TestBed::new(cfg, MicroBench::Hypercall, 10);
                std::hint::black_box(tb.run(10))
            })
        });
    }
    g.finish();
}

fn bench_device_io(c: &mut Criterion) {
    let mut g = c.benchmark_group("arm_device_io");
    g.sample_size(10);
    for (name, cfg) in [configs()[0], configs()[3]] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut tb = TestBed::new(cfg, MicroBench::DeviceIo, 10);
                std::hint::black_box(tb.run(10))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hypercall, bench_device_io);
criterion_main!(benches);
