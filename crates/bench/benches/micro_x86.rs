//! Criterion benches over the x86 microbenchmark configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use neve_x86vt::testbed::{X86Bench, X86Config, X86TestBed};

fn bench_x86(c: &mut Criterion) {
    let mut g = c.benchmark_group("x86_hypercall");
    g.sample_size(10);
    for (name, cfg) in [
        ("vm", X86Config::Vm),
        ("nested_shadowed", X86Config::Nested { shadowing: true }),
        ("nested_unshadowed", X86Config::Nested { shadowing: false }),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut tb = X86TestBed::new(cfg, X86Bench::Hypercall, 10);
                std::hint::black_box(tb.run(10))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_x86);
criterion_main!(benches);
