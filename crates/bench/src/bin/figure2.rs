//! Regenerates paper Figure 2: normalized application-workload
//! overheads for all seven configurations.

use neve_workloads::apps;

fn main() {
    println!("Figure 2: Application Benchmark Performance (normalized overhead; lower is better)");
    println!("==================================================================================");
    println!("Per-event costs are the measured Table 6 values; see DESIGN.md for the model.");
    println!();
    let m = neve_bench::shared_matrix();
    let rows = apps::figure2(&m);
    println!("{}", apps::render(&rows));
    println!("Paper landmarks: Memcached >40x on ARMv8.3 vs <3x NEVE vs 8x x86;");
    println!("Hackbench 15x non-VHE / 11x VHE; kernbench 1.33x/1.26x; NEVE beats x86 on");
    println!("TCP_MAERTS, Nginx, Memcached and MySQL (Section 7.2).");
}
