//! Ablation D: hypervisor-design comparison (paper Section 6.5).
//!
//! The paper discusses how three widely-used ARM hypervisor designs
//! interact with nested virtualization: non-VHE KVM (worst: full EL1
//! context churn on every exit), VHE KVM (less), and standalone Xen
//! (cheap hypercalls, expensive VM switches through Dom0). All three
//! benefit from NEVE.

use neve_kvmarm::{ArmConfig, MicroBench, ParaMode, TestBed};

fn run(xen: bool, vhe: bool, neve: bool, bench: MicroBench) -> neve_cycles::counter::PerOp {
    let cfg = ArmConfig::Nested {
        guest_vhe: vhe,
        neve,
        para: ParaMode::None,
    };
    let mut tb = if xen {
        TestBed::new_xen(cfg, bench, 25)
    } else {
        TestBed::new(cfg, bench, 25)
    };
    tb.run(25)
}

fn main() {
    println!("Ablation D: guest hypervisor designs under nesting (Section 6.5)");
    println!("================================================================");
    for bench in [MicroBench::Hypercall, MicroBench::DeviceIo] {
        println!("\n{bench:?}:");
        for (name, xen, vhe) in [
            ("KVM non-VHE", false, false),
            ("KVM VHE    ", false, true),
            ("Xen        ", true, false),
        ] {
            let v83 = run(xen, vhe, false, bench);
            let neve = run(xen, vhe, true, bench);
            println!(
                "  {name}: ARMv8.3 {:>7} cyc / {:>5.1} traps   NEVE {:>6} cyc / {:>4.1} traps   ({:.1}x fewer traps)",
                v83.cycles, v83.traps, neve.cycles, neve.traps, v83.traps / neve.traps.max(1.0)
            );
        }
    }
    println!();
    println!("Xen's hypercall path skips the VM-register churn entirely (its own");
    println!("execution never touches them), but its Dom0-routed device I/O pays the");
    println!("full switch — and every design gains from NEVE, as Section 6.5 argues.");
}
