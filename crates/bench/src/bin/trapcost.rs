//! The Section 5 trap-cost validation study: traps from EL1 to EL2 cost
//! 68-76 cycles regardless of the trapping instruction; returns cost 65.

use neve_armv8::isa::{Asm, Instr};
use neve_armv8::machine::{ExitInfo, Hypervisor, Machine, MachineConfig};
use neve_armv8::pstate::Pstate;
use neve_armv8::ArchLevel;
use neve_bench::paper;
use neve_sysreg::bits::hcr;
use neve_sysreg::{RegId, SysReg};

struct NullHyp;
impl Hypervisor for NullHyp {
    fn handle_sync(&mut self, m: &mut Machine, cpu: usize, info: ExitInfo) {
        // Skip the instruction without doing any work: isolates the
        // hardware trap cost.
        if neve_sysreg::bits::esr::ec(info.esr) != neve_sysreg::bits::esr::EC_HVC64 {
            m.core_mut(cpu).regs.write(SysReg::ElrEl2, info.elr + 4);
        }
    }
    fn handle_irq(&mut self, _m: &mut Machine, _cpu: usize) {}
}

fn measure(label: &str, trapping: Instr, hcr_bits: u64, arch: ArchLevel) -> u64 {
    let mut m = Machine::new(MachineConfig {
        arch,
        ncpus: 1,
        mem_size: 1 << 30,
        cost: Default::default(),
    });
    let mut a = Asm::new(0x1000);
    a.i(trapping);
    a.i(Instr::Halt(0));
    m.load(a.assemble());
    m.core_mut(0).pstate = Pstate {
        el: 1,
        irq_masked: true,
        fiq_masked: true,
    };
    m.core_mut(0).pc = 0x1000;
    m.core_mut(0).regs.write(SysReg::HcrEl2, hcr_bits);
    let mut hyp = NullHyp;
    let snap = m.counter.snapshot();
    m.run(&mut hyp, 0, 10);
    let d = m.counter.delta_since(&snap);
    // Subtract the non-trap instruction costs (the Halt fetch is free).
    println!(
        "  {label:<34} round trip = {:>4} cycles ({} traps)",
        d.cycles, d.traps
    );
    d.cycles
}

fn main() {
    println!("Section 5 validation: trap costs across trapping instructions");
    println!("==============================================================");
    println!(
        "Paper: EL1->EL2 trap {}-{} cycles, return {} cycles; variation < 10%.",
        paper::TRAP_ENTER_RANGE.0,
        paper::TRAP_ENTER_RANGE.1,
        paper::TRAP_RETURN
    );
    println!();
    let mut costs = [
        measure("hvc (explicit trap)", Instr::Hvc(0), 0, ArchLevel::V8_0),
        measure(
            "msr VBAR_EL2 (EL2 sysreg, NV)",
            Instr::Msr(RegId::Plain(SysReg::VbarEl2), 1),
            hcr::NV,
            ArchLevel::V8_3,
        ),
        measure(
            "mrs SCTLR_EL1 (EL1 sysreg, NV1)",
            Instr::Mrs(1, RegId::Plain(SysReg::SctlrEl1)),
            hcr::NV | hcr::NV1,
            ArchLevel::V8_3,
        ),
        measure("eret (trapped, NV)", Instr::Eret, hcr::NV, ArchLevel::V8_3),
        measure(
            "msr SCTLR_EL12 (VHE alias, NV)",
            Instr::Msr(RegId::El12(SysReg::SctlrEl1), 1),
            hcr::NV,
            ArchLevel::V8_3,
        ),
    ];
    costs.sort();
    let spread = (costs[costs.len() - 1] - costs[0]) as f64 / costs[0] as f64;
    println!();
    println!(
        "Spread across instructions: {:.1}% (paper: <10%) -- hvc is a valid stand-in",
        spread * 100.0
    );
    assert!(spread < 0.10, "trap-cost interchangeability violated");
}
