//! Dumps every regenerated result (Tables 1/6/7 and Figure 2) as JSON to
//! `results/` for downstream plotting. The writer is hand-rolled (the
//! data is flat numbers/strings; no extra dependency warranted).

use neve_workloads::apps;
use neve_workloads::platforms::Config;
use std::fmt::Write as _;
use std::fs;

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    fs::create_dir_all("results").expect("create results/");
    let m = neve_bench::shared_matrix();

    // Microbenchmark matrix.
    let mut out = String::from("{\n  \"micro\": {\n");
    let mut cfg_parts = Vec::new();
    for c in Config::all() {
        let costs = m.costs(c);
        let mut s = format!("    \"{}\": {{\n", json_escape(c.label()));
        for (name, p) in [
            ("hypercall", costs.hypercall),
            ("device_io", costs.device_io),
            ("virtual_ipi", costs.virtual_ipi),
            ("virtual_eoi", costs.virtual_eoi),
        ] {
            let _ = writeln!(
                s,
                "      \"{name}\": {{ \"cycles\": {}, \"traps\": {} }},",
                p.cycles, p.traps
            );
        }
        let kinds: Vec<String> = m
            .trap_kinds(c)
            .iter()
            .map(|(k, n)| format!("\"{}\": {n}", json_escape(k)))
            .collect();
        let _ = writeln!(s, "      \"trap_kinds\": {{ {} }},", kinds.join(", "));
        s.truncate(s.trim_end_matches(",\n").len());
        s.push_str("\n    }");
        cfg_parts.push(s);
    }
    out.push_str(&cfg_parts.join(",\n"));
    out.push_str("\n  },\n  \"figure2\": {\n");

    let rows = apps::figure2(&m);
    let mut row_parts = Vec::new();
    for r in &rows {
        let mut s = format!("    \"{}\": {{ ", json_escape(r.name));
        let cells: Vec<String> = r
            .overheads
            .iter()
            .map(|(c, o)| format!("\"{}\": {:.4}", json_escape(c.label()), o))
            .collect();
        s.push_str(&cells.join(", "));
        s.push_str(" }");
        row_parts.push(s);
    }
    out.push_str(&row_parts.join(",\n"));
    out.push_str("\n  }\n}\n");

    fs::write("results/neve_results.json", &out).expect("write results");
    println!("Wrote results/neve_results.json ({} bytes).", out.len());

    // A CSV of Figure 2 for spreadsheet users.
    let mut csv = String::from("workload");
    for c in Config::all() {
        let _ = write!(csv, ",{}", c.label());
    }
    csv.push('\n');
    for r in &rows {
        let _ = write!(csv, "{}", r.name);
        for (_, o) in &r.overheads {
            let _ = write!(csv, ",{o:.4}");
        }
        csv.push('\n');
    }
    fs::write("results/figure2.csv", &csv).expect("write csv");
    println!("Wrote results/figure2.csv.");
}
