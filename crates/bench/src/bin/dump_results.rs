//! Dumps every regenerated result (Tables 1/6/7 and Figure 2) as JSON to
//! `results/` for downstream plotting. The per-config provenance block
//! (`trap_kinds` + `phases`) is rendered by the same
//! [`neve_workloads::provenance`] helper the results cache and `neve
//! trace --json` use, so the three exports share one schema.

use neve_json::JsonValue;
use neve_workloads::platforms::{Config, PerOpSer};
use neve_workloads::{apps, provenance};
use std::fmt::Write as _;
use std::fs;

fn main() {
    // Filesystem problems (read-only checkout, missing permissions,
    // `results` existing as a file) are environment errors, not bugs:
    // one line on stderr and a non-zero exit, no panic backtrace.
    if let Err(e) = run() {
        eprintln!("dump_results: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    fs::create_dir_all("results").map_err(|e| format!("cannot create results/: {e}"))?;
    let m = neve_bench::shared_matrix();

    // Microbenchmark matrix.
    let per_op = |p: PerOpSer| {
        JsonValue::Object(vec![
            ("cycles".into(), JsonValue::from(p.cycles)),
            ("traps".into(), JsonValue::from(p.traps)),
        ])
    };
    let micro = Config::all()
        .into_iter()
        .map(|c| {
            let costs = m.costs(c);
            let mut body = vec![
                ("hypercall".into(), per_op(costs.hypercall)),
                ("device_io".into(), per_op(costs.device_io)),
                ("virtual_ipi".into(), per_op(costs.virtual_ipi)),
                ("virtual_eoi".into(), per_op(costs.virtual_eoi)),
            ];
            body.extend(provenance::json_fields(&m.trap_kinds(c), &m.phases(c)));
            (c.label().to_string(), JsonValue::Object(body))
        })
        .collect();

    let rows = apps::figure2(&m);
    let figure2 = rows
        .iter()
        .map(|r| {
            let cells = r
                .overheads
                .iter()
                // Round to four decimals so the export diffs cleanly.
                .map(|(c, o)| {
                    let rounded = (o * 10_000.0).round() / 10_000.0;
                    (c.label().to_string(), JsonValue::from(rounded))
                })
                .collect();
            (r.name.to_string(), JsonValue::Object(cells))
        })
        .collect();

    let doc = JsonValue::Object(vec![
        ("micro".into(), JsonValue::Object(micro)),
        ("figure2".into(), JsonValue::Object(figure2)),
    ]);
    let out = doc.pretty();
    fs::write("results/neve_results.json", &out)
        .map_err(|e| format!("cannot write results/neve_results.json: {e}"))?;
    println!("Wrote results/neve_results.json ({} bytes).", out.len());

    // A CSV of Figure 2 for spreadsheet users.
    let mut csv = String::from("workload");
    for c in Config::all() {
        let _ = write!(csv, ",{}", c.label());
    }
    csv.push('\n');
    for r in &rows {
        let _ = write!(csv, "{}", r.name);
        for (_, o) in &r.overheads {
            let _ = write!(csv, ",{o:.4}");
        }
        csv.push('\n');
    }
    fs::write("results/figure2.csv", &csv)
        .map_err(|e| format!("cannot write results/figure2.csv: {e}"))?;
    println!("Wrote results/figure2.csv.");
    if m.has_failures() {
        return Err(format!(
            "{} matrix cell(s) failed to measure; the export contains zero placeholders",
            m.failed_cells()
        ));
    }
    Ok(())
}
