//! Regenerates paper Table 1: microbenchmark cycle counts for ARMv8.3
//! and x86, VM and nested VM.

use neve_bench::paper;
use neve_workloads::platforms::Config;
use neve_workloads::tables;

fn main() {
    println!("Table 1: Microbenchmark Cycle Counts (measured | paper)");
    println!("=======================================================");
    let m = neve_bench::shared_matrix();
    let rows = tables::table1(&m);
    println!("{}", tables::render(&rows));
    println!("Paper reference:");
    for (name, a, b, c, d, e) in paper::TABLE1 {
        println!(
            "  {name:<12} ARM VM={a:>7} v8.3={b:>7} v8.3-VHE={c:>7} x86 VM={d:>6} x86N={e:>6}"
        );
    }
    // The headline: ARM nested overhead is an order of magnitude worse
    // than x86 in relative terms (Section 5).
    let hc = &rows[0];
    let arm_rel = hc.cells[1].mult;
    let x86_rel = hc.cells[4].mult;
    println!();
    println!(
        "ARM v8.3 nested/VM = {arm_rel:.0}x vs x86 nested/VM = {x86_rel:.0}x (paper: 155x vs 31x)"
    );
    let _ = Config::all();
}
