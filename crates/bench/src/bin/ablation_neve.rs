//! Ablation B (DESIGN.md): NEVE mechanism breakdown.
//!
//! NEVE is three mechanisms (Section 6): deferred VM registers,
//! EL1 redirection, and cached copies. Each is disabled in turn to show
//! its contribution to the trap reduction.

use neve_kvmarm::{ArmConfig, MicroBench, ParaMode, TestBed};

fn run_with(f: impl Fn(&mut neve_core::engine::NeveFeatures)) -> neve_cycles::counter::PerOp {
    let cfg = ArmConfig::Nested {
        guest_vhe: false,
        neve: true,
        para: ParaMode::None,
    };
    let iters = 24;
    let mut tb = TestBed::new(cfg, MicroBench::Hypercall, iters);
    for cpu in 0..tb.m.ncpus() {
        f(&mut tb.m.core_mut(cpu).neve.features);
    }
    tb.run(iters)
}

fn main() {
    println!("Ablation B: NEVE mechanism contributions (hypercall microbenchmark)");
    println!("===================================================================");
    let full = run_with(|_| {});
    println!(
        "  full NEVE                       : {:>7} cycles, {:>5.1} traps",
        full.cycles, full.traps
    );
    let no_defer = run_with(|f| f.defer_vm_regs = false);
    println!(
        "  without VM-register deferral    : {:>7} cycles, {:>5.1} traps",
        no_defer.cycles, no_defer.traps
    );
    let no_redirect = run_with(|f| f.redirect_el1 = false);
    println!(
        "  without EL1 redirection         : {:>7} cycles, {:>5.1} traps",
        no_redirect.cycles, no_redirect.traps
    );
    let no_cached = run_with(|f| f.cached_reads = false);
    println!(
        "  without cached-copy reads       : {:>7} cycles, {:>5.1} traps",
        no_cached.cycles, no_cached.traps
    );
    let v83 = {
        let cfg = ArmConfig::Nested {
            guest_vhe: false,
            neve: false,
            para: ParaMode::None,
        };
        let mut tb = TestBed::new(cfg, MicroBench::Hypercall, 24);
        tb.run(24)
    };
    println!(
        "  ARMv8.3 (no NEVE at all)        : {:>7} cycles, {:>5.1} traps",
        v83.cycles, v83.traps
    );
    println!();
    println!("Each mechanism's removal restores a distinct slice of the exit");
    println!("multiplication; deferral of VM registers is the largest single win.");
    assert!(full.traps < no_defer.traps);
    assert!(full.traps < no_redirect.traps);
    assert!(full.traps < no_cached.traps);
}
