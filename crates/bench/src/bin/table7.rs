//! Regenerates paper Table 7: average trap counts per microbenchmark.

use neve_bench::paper;
use neve_workloads::platforms::Config;
use neve_workloads::{provenance, tables};

fn main() {
    println!("Table 7: Microbenchmark Average Trap Counts (measured | paper)");
    println!("==============================================================");
    let m = neve_bench::shared_matrix();
    let rows = tables::table7(&m);
    println!("{}", tables::render(&rows));
    println!("Trap-kind breakdown (total traps across the four benchmarks):");
    for c in Config::all() {
        let kinds = m.trap_kinds(c);
        let parts: Vec<String> = kinds.iter().map(|(k, n)| format!("{k}={n}")).collect();
        let line = if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join(" ")
        };
        println!("  {:<22} {line}", c.label());
    }
    println!();
    println!("World-switch phase attribution (the provenance behind the counts;");
    println!("same breakdown as `neve trace <config> <bench>`):");
    for c in [Config::ArmNestedV83, Config::ArmNestedNeve] {
        println!("  {}:", c.label());
        for line in provenance::render_phases(&m.phases(c)).lines() {
            println!("    {line}");
        }
    }
    println!();
    println!("Paper reference:");
    for (name, a, b, c, d, e) in paper::TABLE7 {
        println!(
            "  {name:<12} v8.3={a:>4} v8.3-VHE={b:>4} NEVE={c:>3} NEVE-VHE={d:>3} x86N={e:>2}"
        );
    }
    let hc = &rows[0];
    println!();
    println!(
        "NEVE reduces hypercall traps {:.1}x vs ARMv8.3 (paper: \"more than six times\", 126 -> 15)",
        hc.cells[0].value as f64 / hc.cells[2].value.max(1) as f64
    );
    if m.has_failures() {
        println!();
        for c in Config::all() {
            for (bench, why) in m.failures(c) {
                println!("FAILED {} / {bench}: {why}", c.label());
            }
        }
        eprintln!(
            "table7: {} cell(s) failed to measure (rows mark them FAILED)",
            m.failed_cells()
        );
        std::process::exit(1);
    }
}
