//! Ablation C (DESIGN.md / paper Section 8): VMCS shadowing on/off.

use neve_x86vt::testbed::{X86Bench, X86Config, X86TestBed};

fn run(shadowing: bool, bench: X86Bench) -> neve_cycles::counter::PerOp {
    let iters = if bench == X86Bench::VirtualIpi {
        10
    } else {
        24
    };
    let mut tb = X86TestBed::new(X86Config::Nested { shadowing }, bench, iters);
    tb.run(iters)
}

fn main() {
    println!("Ablation C: VMCS shadowing (paper Section 8: ~10% application-level win)");
    println!("========================================================================");
    for bench in [
        X86Bench::Hypercall,
        X86Bench::DeviceIo,
        X86Bench::VirtualIpi,
    ] {
        let on = run(true, bench);
        let off = run(false, bench);
        println!(
            "  {bench:?}: shadowing ON {:>6} cyc / {:>4.1} exits   OFF {:>6} cyc / {:>4.1} exits   ({:.2}x cycles, {:.1}x exits)",
            on.cycles, on.traps, off.cycles, off.traps,
            off.cycles as f64 / on.cycles as f64,
            off.traps / on.traps
        );
    }
    println!();
    println!("Shadowing removes the vmread/vmwrite exits of the guest hypervisor's");
    println!("world switch, the VMCS analogue of what NEVE does for ARM system");
    println!("registers (paper Section 8's comparison).");
}
