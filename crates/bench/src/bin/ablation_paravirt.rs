//! Ablation A (DESIGN.md): the paper's methodology validation.
//!
//! Section 3 claims that replacing would-trap instructions with `hvc`
//! on ARMv8.0 reproduces ARMv8.3 behaviour at native speed, and Section
//! 6.4 does the same for NEVE with loads/stores + EL1 redirects. Here
//! both paravirtualized guest hypervisors run on simulated ARMv8.0 and
//! are compared against the unmodified hypervisor on ARMv8.3/v8.4.

use neve_kvmarm::{ArmConfig, MicroBench, ParaMode, TestBed};

fn run(cfg: ArmConfig, bench: MicroBench) -> neve_cycles::counter::PerOp {
    let iters = if bench == MicroBench::VirtualIpi {
        10
    } else {
        24
    };
    let mut tb = TestBed::new(cfg, bench, iters);
    tb.run(iters)
}

fn main() {
    println!("Ablation A: paravirtualization fidelity (paper Sections 3-5)");
    println!("=============================================================");
    for bench in [MicroBench::Hypercall, MicroBench::DeviceIo] {
        println!("\n{bench:?}:");
        for vhe in [false, true] {
            let native = run(
                ArmConfig::Nested {
                    guest_vhe: vhe,
                    neve: false,
                    para: ParaMode::None,
                },
                bench,
            );
            let para = run(
                ArmConfig::Nested {
                    guest_vhe: vhe,
                    neve: false,
                    para: ParaMode::HvcV83,
                },
                bench,
            );
            println!(
                "  v8.3 vhe={vhe:<5}: native {:>7} cyc / {:>5.1} traps   para-v8.0 {:>7} cyc / {:>5.1} traps   (trap ratio {:.3})",
                native.cycles, native.traps, para.cycles, para.traps,
                para.traps / native.traps
            );
        }
        let native = run(
            ArmConfig::Nested {
                guest_vhe: false,
                neve: true,
                para: ParaMode::None,
            },
            bench,
        );
        let para = run(
            ArmConfig::Nested {
                guest_vhe: false,
                neve: true,
                para: ParaMode::NeveLs,
            },
            bench,
        );
        println!(
            "  NEVE          : native {:>7} cyc / {:>5.1} traps   para-v8.0 {:>7} cyc / {:>5.1} traps   (trap ratio {:.3})",
            native.cycles, native.traps, para.cycles, para.traps,
            para.traps / native.traps.max(1.0)
        );
    }
    println!("\nThe paper's assumption holds when trap ratios are ~1.0.");
}
