//! Ablation E: what if the paper's *host* hypervisor had VHE?
//!
//! The paper's host ran on ARMv8.0 (no VHE), paying a full EL1 context
//! swap on every one of the nested configuration's ~hundred traps. A
//! VHE host (Dall et al., ATC'17 — the paper's reference 16) handles traps with
//! its kernel already in EL2, compounding with NEVE's trap reduction.

use neve_kvmarm::{ArmConfig, MicroBench, ParaMode, TestBed};

fn run(vhe_host: bool, neve: bool) -> neve_cycles::counter::PerOp {
    let cfg = ArmConfig::Nested {
        guest_vhe: false,
        neve,
        para: ParaMode::None,
    };
    let mut tb = TestBed::new(cfg, MicroBench::Hypercall, 25);
    if vhe_host {
        tb.host_vhe();
    }
    tb.run(25)
}

fn main() {
    println!("Ablation E: non-VHE vs VHE host hypervisor (nested hypercall)");
    println!("=============================================================");
    for (name, neve) in [("ARMv8.3", false), ("NEVE   ", true)] {
        let plain = run(false, neve);
        let vhe = run(true, neve);
        println!(
            "  {name}: non-VHE host {:>7} cyc   VHE host {:>7} cyc   ({:.2}x faster; traps unchanged at {:.0})",
            plain.cycles,
            vhe.cycles,
            plain.cycles as f64 / vhe.cycles as f64,
            vhe.traps
        );
        assert_eq!(
            plain.traps, vhe.traps,
            "host mode must not change trap counts"
        );
    }
    println!();
    println!("A VHE host reduces the *cost* of each trap; NEVE reduces the *number*.");
    println!("The two compose: the fully-optimized stack is VHE host + NEVE guest.");
}
