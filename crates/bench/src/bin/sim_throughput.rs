//! `sim_throughput` — host-side simulator throughput (steps/sec and
//! ns/step per platform configuration).
//!
//! Modes:
//!
//! - default: measure every configuration and write
//!   `results/bench_throughput.json`, preserving (and reporting
//!   speedups against) a previously recorded baseline section.
//! - `--record-baseline`: measure and write the results as the
//!   *baseline* section only — run this at the commit you want later
//!   runs compared against.
//! - `--smoke`: the CI gate. Re-measures the evaluation matrix and
//!   asserts it is byte-identical to the cached file for the current
//!   cost-model fingerprint (the determinism invariant), then prints
//!   steps/sec for a quick configuration pair. Exits non-zero on any
//!   mismatch; never writes `results/`.
//! - `--guard`: the throughput-regression gate. Freshly measures the
//!   nested ARM configurations plus the `bigsmp_idle` event-wheel
//!   scenarios and fails (exit 1) if any best-case sample lands more
//!   than 20% below the steps/sec recorded in
//!   `results/bench_throughput.json`, or if the 64-vCPU mostly-idle
//!   scenario falls more than 2x under the 8-vCPU one (idle cores
//!   costing host work). Never writes `results/`.
//!
//! `--samples N` overrides the timed sample count (default 5).
//! `--engine uop|interp` selects the step engine for the ARM cells:
//! the pre-decoded micro-op IR (default) or the reference
//! interpreter — the axis the decode-once speedup is measured along.

use neve_armv8::Engine;
use neve_cycles::CostModel;
use neve_workloads::cache::{self, CACHE_PATH};
use neve_workloads::platforms::{Config, MicroMatrix};
use neve_workloads::throughput::{
    self, measure_config_with, ConfigThroughput, ScenarioThroughput, BENCH_PATH,
};
use std::path::Path;

fn usage() -> ! {
    eprintln!(
        "usage: sim_throughput [--samples N] [--engine uop|interp] \
         [--record-baseline | --smoke | --guard]\n\
         \n\
         Measures host-side simulated steps/sec per configuration and\n\
         writes {BENCH_PATH}.\n\
         --record-baseline  store this run as the comparison baseline\n\
         --smoke            CI mode: matrix byte-identity + quick steps/sec\n\
         --guard            CI mode: fail on a >20% steps/sec regression\n\
         \u{20}                   against the recorded `current` section\n\
         --engine E         step engine for ARM cells: uop (default) or interp\n\
         --samples N        timed samples per configuration (default 5)"
    );
    std::process::exit(2);
}

fn print_stats(stats: &[ConfigThroughput]) {
    println!(
        "\n{:<20} {:>14} {:>14} {:>10}",
        "config", "steps/sec", "ns/step", "steps"
    );
    for s in stats {
        println!(
            "{:<20} {:>14.0} {:>14.1} {:>10}",
            s.config.label(),
            s.steps_per_sec(),
            s.ns_per_step(),
            s.steps
        );
    }
}

fn print_scenarios(stats: &[ScenarioThroughput]) {
    println!("\n{:<20} {:>14} {:>10}", "scenario", "steps/sec", "steps");
    for s in stats {
        println!(
            "{:<20} {:>14.0} {:>10}",
            s.label,
            s.steps_per_sec(),
            s.steps
        );
    }
}

/// The CI determinism gate: the freshly measured matrix must
/// serialize byte-identically to the cached file (same fingerprint).
fn smoke(samples: usize, engine: Engine) {
    let fingerprint = CostModel::default().fingerprint();
    let cached = std::fs::read_to_string(CACHE_PATH).ok();
    let matches_fingerprint = cached
        .as_deref()
        .map(|text| cache::from_json(text, fingerprint).is_some())
        .unwrap_or(false);
    if matches_fingerprint {
        let fresh = cache::to_json(&MicroMatrix::measure_parallel(jobs()), fingerprint);
        if Some(fresh.as_str()) != cached.as_deref() {
            eprintln!(
                "FAIL: freshly measured matrix differs from {CACHE_PATH} \
                 for fingerprint {fingerprint:#018x} — the simulation is \
                 no longer bit-identical to the cached measurement"
            );
            std::process::exit(1);
        }
        println!("matrix byte-identical to {CACHE_PATH} (fingerprint {fingerprint:#018x})");
    } else {
        // No comparable cache: fall back to self-consistency, which
        // still catches nondeterminism introduced by a change.
        let a = cache::to_json(&MicroMatrix::measure_parallel(jobs()), fingerprint);
        let b = cache::to_json(&MicroMatrix::measure_parallel(jobs()), fingerprint);
        if a != b {
            eprintln!("FAIL: two matrix measurements disagree — nondeterministic simulation");
            std::process::exit(1);
        }
        println!(
            "no cache for fingerprint {fingerprint:#018x}; \
             two fresh measurements are byte-identical"
        );
    }
    let mut c = criterion::Criterion::default();
    let stats: Vec<ConfigThroughput> = [Config::ArmVm, Config::ArmNestedV83]
        .into_iter()
        .map(|config| measure_config_with(&mut c, config, samples.min(3), engine))
        .collect();
    print_stats(&stats);
}

/// The throughput-regression gate: nested ARM configurations, fresh
/// best-case sample vs the recorded `current` section.
///
/// Wall clock on a shared host is bursty, so a failed first attempt
/// re-measures once and the verdict is re-taken on the retry attempt
/// *alone* (`throughput::noise_retry_verdict`): a genuine regression
/// is slow in both attempts, a co-tenant burst is not — and either
/// way the decision compares exactly `--samples N` clean samples,
/// never a best-of-both merge.
fn guard(samples: usize, engine: Engine) {
    let report = std::fs::read_to_string(BENCH_PATH).ok();
    let recorded = report
        .as_deref()
        .and_then(|t| throughput::section_from_report(t, "current"));
    let Some(recorded) = recorded else {
        // Nothing recorded yet (fresh checkout before the first full
        // run): the gate has no reference, so it passes vacuously.
        println!("no recorded `current` section in {BENCH_PATH}; guard skipped");
        return;
    };
    // Reports recorded before the event wheel have no scenario
    // section; the per-label bands then pass vacuously but the
    // fresh-vs-fresh idle-scaling bound still applies.
    let recorded_scenarios = report
        .as_deref()
        .and_then(throughput::scenarios_from_report)
        .unwrap_or_default();
    let measure = || -> Vec<ConfigThroughput> {
        let mut c = criterion::Criterion::default();
        [Config::ArmNestedV83, Config::ArmNestedNeve]
            .into_iter()
            .map(|config| measure_config_with(&mut c, config, samples, engine))
            .collect()
    };
    let fresh = measure();
    let fresh_scenarios = throughput::measure_scenarios(samples);
    print_stats(&fresh);
    print_scenarios(&fresh_scenarios);
    let mut bad = throughput::noise_retry_verdict(
        &recorded,
        &recorded_scenarios,
        (&fresh, &fresh_scenarios),
        None,
    );
    if !bad.is_empty() {
        println!("\nfirst attempt regressed; re-measuring once (host noise check)");
        let again = measure();
        let again_scenarios = throughput::measure_scenarios(samples);
        print_stats(&again);
        print_scenarios(&again_scenarios);
        bad = throughput::noise_retry_verdict(
            &recorded,
            &recorded_scenarios,
            (&fresh, &fresh_scenarios),
            Some((&again, &again_scenarios)),
        );
    }
    if !bad.is_empty() {
        eprintln!("\nFAIL: host throughput regressed:");
        for b in &bad {
            eprintln!("  {b}");
        }
        std::process::exit(1);
    }
    println!(
        "\nguard: all configurations and scenarios within {:.0}% of the \
         recorded steps/sec, idle scaling within bounds",
        throughput::GUARD_TOLERANCE * 100.0
    );
}

fn jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut samples = 5usize;
    let mut record_baseline = false;
    let mut smoke_mode = false;
    let mut guard_mode = false;
    let mut engine = Engine::default();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--record-baseline" => record_baseline = true,
            "--smoke" => smoke_mode = true,
            "--guard" => guard_mode = true,
            "--engine" => {
                engine = match it.next().map(String::as_str) {
                    Some("uop") => Engine::Uop,
                    Some("interp") => Engine::Interp,
                    _ => usage(),
                };
            }
            "--samples" => {
                samples = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    if [record_baseline, smoke_mode, guard_mode]
        .iter()
        .filter(|&&m| m)
        .count()
        > 1
    {
        usage();
    }
    if smoke_mode {
        smoke(samples, engine);
        return;
    }
    if guard_mode {
        guard(samples, engine);
        return;
    }

    let stats = throughput::measure_all_with(samples, engine);
    let scenarios = throughput::measure_scenarios(samples);
    print_stats(&stats);
    print_scenarios(&scenarios);
    if engine != Engine::default() {
        // A non-default engine is a manual experiment, not the report
        // artifact: writing it would make the recorded `current`
        // section describe the wrong engine.
        println!("\n--engine {engine:?}: report not written");
        return;
    }

    let existing = std::fs::read_to_string(BENCH_PATH).ok();
    let text = if record_baseline {
        // A baseline-only report: `current` mirrors the baseline until
        // a later default run replaces it.
        throughput::report_json_with_scenarios(&stats, Some(&stats), &scenarios)
    } else {
        let baseline = existing
            .as_deref()
            .and_then(|t| throughput::section_from_report(t, "baseline"));
        throughput::report_json_with_scenarios(&stats, baseline.as_deref(), &scenarios)
    };
    let path = Path::new(BENCH_PATH);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = cache::write_atomically(path, &text) {
        eprintln!("failed to write {BENCH_PATH}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {BENCH_PATH}");
}
