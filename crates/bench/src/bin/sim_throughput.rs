//! `sim_throughput` — host-side simulator throughput (steps/sec and
//! ns/step per platform configuration).
//!
//! Modes:
//!
//! - default: measure every configuration and write
//!   `results/bench_throughput.json`, preserving (and reporting
//!   speedups against) a previously recorded baseline section.
//! - `--record-baseline`: measure and write the results as the
//!   *baseline* section only — run this at the commit you want later
//!   runs compared against.
//! - `--smoke`: the CI gate. Re-measures the evaluation matrix and
//!   asserts it is byte-identical to the cached file for the current
//!   cost-model fingerprint (the determinism invariant), then prints
//!   steps/sec for a quick configuration pair. Exits non-zero on any
//!   mismatch; never writes `results/`.
//!
//! `--samples N` overrides the timed sample count (default 5).

use neve_cycles::CostModel;
use neve_workloads::cache::{self, CACHE_PATH};
use neve_workloads::platforms::{Config, MicroMatrix};
use neve_workloads::throughput::{self, measure_config, ConfigThroughput, BENCH_PATH};
use std::path::Path;

fn usage() -> ! {
    eprintln!(
        "usage: sim_throughput [--samples N] [--record-baseline | --smoke]\n\
         \n\
         Measures host-side simulated steps/sec per configuration and\n\
         writes {BENCH_PATH}.\n\
         --record-baseline  store this run as the comparison baseline\n\
         --smoke            CI mode: matrix byte-identity + quick steps/sec\n\
         --samples N        timed samples per configuration (default 5)"
    );
    std::process::exit(2);
}

fn print_stats(stats: &[ConfigThroughput]) {
    println!(
        "\n{:<20} {:>14} {:>14} {:>10}",
        "config", "steps/sec", "ns/step", "steps"
    );
    for s in stats {
        println!(
            "{:<20} {:>14.0} {:>14.1} {:>10}",
            s.config.label(),
            s.steps_per_sec(),
            s.ns_per_step(),
            s.steps
        );
    }
}

/// The CI determinism gate: the freshly measured matrix must
/// serialize byte-identically to the cached file (same fingerprint).
fn smoke(samples: usize) {
    let fingerprint = CostModel::default().fingerprint();
    let cached = std::fs::read_to_string(CACHE_PATH).ok();
    let matches_fingerprint = cached
        .as_deref()
        .map(|text| cache::from_json(text, fingerprint).is_some())
        .unwrap_or(false);
    if matches_fingerprint {
        let fresh = cache::to_json(&MicroMatrix::measure_parallel(jobs()), fingerprint);
        if Some(fresh.as_str()) != cached.as_deref() {
            eprintln!(
                "FAIL: freshly measured matrix differs from {CACHE_PATH} \
                 for fingerprint {fingerprint:#018x} — the simulation is \
                 no longer bit-identical to the cached measurement"
            );
            std::process::exit(1);
        }
        println!("matrix byte-identical to {CACHE_PATH} (fingerprint {fingerprint:#018x})");
    } else {
        // No comparable cache: fall back to self-consistency, which
        // still catches nondeterminism introduced by a change.
        let a = cache::to_json(&MicroMatrix::measure_parallel(jobs()), fingerprint);
        let b = cache::to_json(&MicroMatrix::measure_parallel(jobs()), fingerprint);
        if a != b {
            eprintln!("FAIL: two matrix measurements disagree — nondeterministic simulation");
            std::process::exit(1);
        }
        println!(
            "no cache for fingerprint {fingerprint:#018x}; \
             two fresh measurements are byte-identical"
        );
    }
    let mut c = criterion::Criterion::default();
    let stats: Vec<ConfigThroughput> = [Config::ArmVm, Config::ArmNestedV83]
        .into_iter()
        .map(|config| measure_config(&mut c, config, samples.min(3)))
        .collect();
    print_stats(&stats);
}

fn jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut samples = 5usize;
    let mut record_baseline = false;
    let mut smoke_mode = false;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--record-baseline" => record_baseline = true,
            "--smoke" => smoke_mode = true,
            "--samples" => {
                samples = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    if record_baseline && smoke_mode {
        usage();
    }
    if smoke_mode {
        smoke(samples);
        return;
    }

    let stats = throughput::measure_all(samples);
    print_stats(&stats);

    let existing = std::fs::read_to_string(BENCH_PATH).ok();
    let text = if record_baseline {
        // A baseline-only report: `current` mirrors the baseline until
        // a later default run replaces it.
        throughput::report_json(&stats, Some(&stats))
    } else {
        let baseline = existing
            .as_deref()
            .and_then(|t| throughput::section_from_report(t, "baseline"));
        throughput::report_json(&stats, baseline.as_deref())
    };
    let path = Path::new(BENCH_PATH);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = cache::write_atomically(path, &text) {
        eprintln!("failed to write {BENCH_PATH}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {BENCH_PATH}");
}
