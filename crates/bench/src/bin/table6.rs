//! Regenerates paper Table 6: microbenchmark cycle counts including
//! NEVE, with the overhead-vs-VM multipliers.

use neve_bench::paper;
use neve_workloads::tables;

fn main() {
    println!("Table 6: Microbenchmark Cycle Counts with NEVE (measured | paper)");
    println!("=================================================================");
    let m = neve_bench::shared_matrix();
    let rows = tables::table6(&m);
    println!("{}", tables::render(&rows));
    println!("Paper reference:");
    for (name, a, b, c, d, e) in paper::TABLE6 {
        println!(
            "  {name:<12} v8.3={a:>7} v8.3-VHE={b:>7} NEVE={c:>7} NEVE-VHE={d:>7} x86N={e:>6}"
        );
    }
    let hc = &rows[0];
    println!();
    println!(
        "NEVE speedup over ARMv8.3 (hypercall): {:.1}x (paper: ~4.6x, \"up to 5 times\")",
        hc.cells[0].value as f64 / hc.cells[2].value.max(1) as f64
    );
}
