//! Benchmark harness: regenerates every table and figure of the NEVE
//! paper from the simulated stacks, printing measured values next to
//! the paper's published ones.
//!
//! Binaries (one per experiment; see DESIGN.md's experiment index):
//!
//! - `table1` — microbenchmark cycle counts, ARMv8.3 + x86.
//! - `table6` — cycle counts including NEVE, with overhead multipliers.
//! - `table7` — average trap counts.
//! - `figure2` — normalized application-workload overheads.
//! - `trapcost` — the Section 5 trap-cost validation study.
//! - `ablation_paravirt` — paravirtualized-v8.0 vs native-v8.3/v8.4
//!   equivalence (the paper's methodology validation).
//! - `ablation_neve` — NEVE mechanism breakdown (defer / redirect /
//!   cached copies).
//! - `ablation_vmcs` — VMCS shadowing on/off (Section 8).

use neve_cycles::counter::PerOp;
use neve_workloads::cache::{self, MatrixSource};
use neve_workloads::platforms::MicroMatrix;

/// Resolves the shared evaluation matrix for the table/figure binaries:
/// a cache hit against `results/micro_matrix.json` when it matches the
/// current cost model, a parallel re-measurement otherwise. Honors
/// `--jobs N` and `--no-cache` on the binary's command line so every
/// bin shares the `neve` CLI's surface.
pub fn shared_matrix() -> MicroMatrix {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut jobs = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut use_cache = true;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--no-cache" => use_cache = false,
            "--jobs" => {
                let v = it.next().and_then(|v| v.parse().ok());
                jobs = v.unwrap_or_else(|| {
                    eprintln!("--jobs needs a positive number");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument `{other}` (accepted: --jobs N, --no-cache)");
                std::process::exit(2);
            }
        }
    }
    let (m, source) = cache::load_or_measure(jobs.max(1), use_cache);
    match source {
        MatrixSource::Cache => println!(
            "Loaded measurements from {} (--no-cache to refresh).\n",
            cache::CACHE_PATH
        ),
        MatrixSource::Measured => println!(
            "Measured every configuration ({jobs} worker threads); cached at {}.\n",
            cache::CACHE_PATH
        ),
        MatrixSource::Quarantined => println!(
            "Cache was corrupt; quarantined to {}.corrupt and re-measured \
             every configuration ({jobs} worker threads).\n",
            cache::CACHE_PATH
        ),
    }
    if m.has_failures() {
        println!(
            "WARNING: {} cell(s) failed to measure; failed rows print as 0 \
             and are marked below.\n",
            m.failed_cells()
        );
    }
    m
}

/// The paper's published values for side-by-side printing.
pub mod paper {
    /// Table 1 cycle counts: (benchmark, ARM VM, v8.3 nested, v8.3
    /// nested VHE, x86 VM, x86 nested).
    pub const TABLE1: [(&str, u64, u64, u64, u64, u64); 4] = [
        ("Hypercall", 2_729, 422_720, 307_363, 1_188, 36_345),
        ("Device I/O", 3_534, 436_924, 312_148, 2_307, 39_108),
        ("Virtual IPI", 8_364, 611_686, 494_765, 2_751, 45_360),
        ("Virtual EOI", 71, 71, 71, 316, 316),
    ];

    /// Table 6 cycle counts: (benchmark, v8.3, v8.3 VHE, NEVE, NEVE
    /// VHE, x86 nested).
    pub const TABLE6: [(&str, u64, u64, u64, u64, u64); 4] = [
        ("Hypercall", 422_720, 307_363, 92_385, 100_895, 36_345),
        ("Device I/O", 436_924, 312_148, 96_002, 105_071, 39_108),
        ("Virtual IPI", 611_686, 494_765, 184_657, 213_256, 45_360),
        ("Virtual EOI", 71, 71, 71, 71, 316),
    ];

    /// Table 7 trap counts: (benchmark, v8.3, v8.3 VHE, NEVE, NEVE VHE,
    /// x86 nested).
    pub const TABLE7: [(&str, u64, u64, u64, u64, u64); 4] = [
        ("Hypercall", 126, 82, 15, 15, 5),
        ("Device I/O", 128, 82, 15, 15, 5),
        ("Virtual IPI", 261, 172, 37, 38, 9),
        ("Virtual EOI", 0, 0, 0, 0, 0),
    ];

    /// Section 5's measured primitives: trap EL1->EL2 in cycles
    /// (range), return cost.
    pub const TRAP_ENTER_RANGE: (u64, u64) = (68, 76);
    /// Trap return cost.
    pub const TRAP_RETURN: u64 = 65;
}

/// Formats a measured-vs-paper cell.
pub fn cell(measured: u64, paper: u64) -> String {
    if paper == 0 {
        format!("{measured} (paper 0)")
    } else {
        format!(
            "{measured} (paper {paper}, {:.2}x)",
            measured as f64 / paper as f64
        )
    }
}

/// Formats a [`PerOp`] with its trap count.
pub fn perop(p: PerOp) -> String {
    format!("{} cycles, {:.1} traps", p.cycles, p.traps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tables_have_four_rows() {
        assert_eq!(paper::TABLE1.len(), 4);
        assert_eq!(paper::TABLE6.len(), 4);
        assert_eq!(paper::TABLE7.len(), 4);
    }

    #[test]
    fn cell_formats_ratio() {
        let s = cell(200, 100);
        assert!(s.contains("2.00x"), "{s}");
        assert!(cell(5, 0).contains("paper 0"));
    }
}
