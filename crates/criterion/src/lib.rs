//! A self-contained, dependency-free drop-in for the subset of the
//! `criterion` API this workspace's benches use.
//!
//! The workspace builds in hermetic environments without crates.io
//! access, so the real criterion cannot be vendored. This shim keeps
//! `cargo bench` working with the same bench sources: it warms each
//! benchmark up, runs a fixed number of timed samples, and prints
//! median / min / max wall-clock times per iteration. There are no
//! statistics beyond that and no HTML reports — regressions are read
//! off the printed medians.

use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (benches in this
/// workspace use `std::hint::black_box` directly, but the name is part
/// of the criterion prelude).
pub use std::hint::black_box;

/// The benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

/// Runs one benchmark body repeatedly (see [`Bencher::iter`]).
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `body`, collecting one sample per run after a warm-up run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        black_box(body()); // warm-up (first-touch allocation, caches)
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(body());
            self.samples.push(t0.elapsed());
        }
    }
}

fn summarize(samples: &[Duration]) -> Summary {
    if samples.is_empty() {
        return Summary {
            median: Duration::ZERO,
            min: Duration::ZERO,
            max: Duration::ZERO,
            samples: 0,
        };
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    Summary {
        median: sorted[sorted.len() / 2],
        min: sorted[0],
        max: sorted[sorted.len() - 1],
        samples: sorted.len(),
    }
}

fn report(label: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{label:<40} no samples");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{label:<40} median {:>12?}   min {:>12?}   max {:>12?}   ({} samples)",
        median,
        min,
        max,
        samples.len()
    );
}

/// Summary statistics for one benchmark, for programmatic consumers
/// (the `sim_throughput` harness writes these to JSON). The real
/// criterion exposes estimates through its output files; this shim
/// returns them directly from [`Criterion::measure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Median wall-clock time per sample.
    pub median: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// Number of timed samples (warm-up excluded).
    pub samples: usize,
}

impl Criterion {
    /// Overrides the number of timed samples per benchmark (mirrors
    /// `criterion::Criterion::sample_size`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.measure(name, f);
        self
    }

    /// Like [`Criterion::bench_function`] but also returns the sample
    /// [`Summary`] so harnesses can persist machine-readable results.
    pub fn measure<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> Summary {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(name, &mut b.samples);
        summarize(&b.samples)
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}:");
        BenchmarkGroup {
            parent: self,
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a sample-size override.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size.unwrap_or(self.parent.sample_size),
        };
        f(&mut b);
        report(&format!("  {name}"), &mut b.samples);
        self
    }

    /// Ends the group (printing is immediate; nothing buffered).
    pub fn finish(&mut self) {}
}

/// Declares a group of benchmark functions (`fn(&mut Criterion)`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($f:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($f(&mut c);)+
        }
    };
}

/// Declares the bench entry point from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; a plain
            // main ignores them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        // warm-up + sample_size runs
        assert_eq!(runs, 21);
    }

    #[test]
    fn group_sample_size_is_respected() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("noop", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 4);
    }

    #[test]
    fn measure_returns_a_summary() {
        let mut c = Criterion::default();
        c.sample_size(5);
        let s = c.measure("noop", |b| b.iter(|| black_box(2 + 2)));
        assert_eq!(s.samples, 5);
        assert!(s.min <= s.median && s.median <= s.max);
    }

    criterion_group!(demo_group, demo_bench);
    fn demo_bench(c: &mut Criterion) {
        c.bench_function("demo", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_macro_expands_to_a_runnable_fn() {
        demo_group();
    }
}
