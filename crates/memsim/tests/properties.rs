//! Property-based tests on the memory system's core invariants.

use neve_memsim::{walk, Access, FrameAlloc, PageTable, Perms, PhysMem, ShadowS2};
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    /// Every mapping installed is exactly the mapping observed: walks
    /// agree with the last `map` call for each page, and unmapped pages
    /// fault.
    #[test]
    fn prop_walk_agrees_with_map(
        pages in proptest::collection::vec((0u64..512, 0u64..512), 1..40),
        probe in 0u64..512,
    ) {
        let mut mem = PhysMem::new(1 << 32);
        let mut fr = FrameAlloc::new(0x100_0000, 0x80_0000);
        let t = PageTable::new(&mut mem, &mut fr);
        let mut model = BTreeMap::new();
        for (vpage, ppage) in pages {
            let va = vpage * 4096;
            let pa = 0x4000_0000 + ppage * 4096;
            t.map(&mut mem, &mut fr, va, pa, Perms::RW);
            model.insert(va, pa);
        }
        let va = probe * 4096;
        match (walk(&mem, t, va + 8, Access::Read), model.get(&va)) {
            (Ok(tr), Some(pa)) => prop_assert_eq!(tr.pa, pa + 8),
            (Err(_), None) => {}
            (got, want) => prop_assert!(false, "mismatch: {got:?} vs {want:?}"),
        }
    }

    /// Shadow collapse is function composition: for every address the
    /// shadow resolves, shadow(a) == host(guest(a)).
    #[test]
    fn prop_shadow_is_composition(
        pages in proptest::collection::vec((0u64..64, 0u64..64, 0u64..64), 1..16),
    ) {
        let mut mem = PhysMem::new(1 << 32);
        let mut gfr = FrameAlloc::new(0x100_0000, 0x40_0000);
        let mut hfr = FrameAlloc::new(0x200_0000, 0x40_0000);
        let sfr = FrameAlloc::new(0x300_0000, 0x40_0000);
        let guest = PageTable::new(&mut mem, &mut gfr);
        let host = PageTable::new(&mut mem, &mut hfr);
        let mut shadow = ShadowS2::new(&mut mem, sfr);
        let mut mapped = Vec::new();
        for (l2, l1, l0) in pages {
            let l2pa = l2 * 4096;
            let l1pa = 0x1000_0000 + l1 * 4096;
            let l0pa = 0x2000_0000 + l0 * 4096;
            guest.map(&mut mem, &mut gfr, l2pa, l1pa, Perms::RWX);
            host.map(&mut mem, &mut hfr, l1pa, l0pa, Perms::RWX);
            mapped.push(l2pa);
        }
        for l2pa in mapped {
            shadow.fill(&mut mem, guest, host, l2pa).expect("both stages mapped");
            let via_shadow = walk(&mem, shadow.table, l2pa, Access::Read).unwrap().pa;
            let l1pa = walk(&mem, guest, l2pa, Access::Read).unwrap().pa;
            let via_composed = walk(&mem, host, l1pa, Access::Read).unwrap().pa;
            prop_assert_eq!(via_shadow, via_composed);
        }
    }

    /// Memory round-trips arbitrary values at arbitrary (in-range)
    /// addresses, independent of write order.
    #[test]
    fn prop_phys_mem_roundtrip(writes in proptest::collection::vec((0u64..0x10_0000, any::<u64>()), 1..64)) {
        let mut mem = PhysMem::new(1 << 32);
        let mut model = BTreeMap::new();
        for (slot, v) in writes {
            let addr = slot * 8;
            mem.write_u64(addr, v);
            model.insert(addr, v);
        }
        for (addr, v) in model {
            prop_assert_eq!(mem.read_u64(addr), v);
        }
    }
}
