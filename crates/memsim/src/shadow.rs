//! Shadow Stage-2 page tables (paper Section 4, "Memory virtualization").
//!
//! The host hypervisor collapses two translations into one hardware
//! Stage-2 table:
//!
//! ```text
//!   L2 guest PA --(guest hypervisor's virtual Stage-2)--> L1 PA
//!   L1 PA      --(host hypervisor's Stage-2)-----------> L0 machine PA
//!   =========================================================
//!   L2 guest PA --(shadow Stage-2, built here)---------> L0 machine PA
//! ```
//!
//! Entries are faulted in lazily: when the nested VM takes a Stage-2
//! abort, the host walks both source tables and installs the collapsed
//! mapping. Any change to the guest's virtual Stage-2 (or a VMID roll)
//! invalidates the shadow wholesale, matching the simple-and-correct
//! strategy of the paper's KVM/ARM prototype.

use crate::alloc::FrameAlloc;
use crate::phys::PhysMem;
use crate::table::{leaves, walk, Access, Fault, MapError, PageTable, Perms};

/// A shadow Stage-2 table and its construction state.
#[derive(Debug)]
pub struct ShadowS2 {
    /// The hardware-visible collapsed table.
    pub table: PageTable,
    /// Frames backing the shadow (reset on invalidation).
    frames: FrameAlloc,
    /// Collapsed entries installed since the last invalidation.
    installed: u64,
    /// Wholesale invalidations performed.
    invalidations: u64,
}

/// Why a shadow fill failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShadowFault {
    /// The guest hypervisor's virtual Stage-2 has no mapping: the fault
    /// must be forwarded to the *guest* hypervisor (it may want to lazily
    /// populate its own table or treat it as MMIO).
    GuestStage2(Fault),
    /// The host's Stage-2 has no mapping: host-level bug or host MMIO.
    HostStage2(Fault),
    /// The shadow table itself could not be traversed (corrupted
    /// descriptors): the owner should invalidate and rebuild it.
    ShadowCorrupt(MapError),
}

impl ShadowS2 {
    /// Creates an empty shadow over `frames`.
    pub fn new(mem: &mut PhysMem, mut frames: FrameAlloc) -> Self {
        let table = PageTable::new(mem, &mut frames);
        Self {
            table,
            frames,
            installed: 0,
            invalidations: 0,
        }
    }

    /// Handles a Stage-2 abort of the nested VM at `l2_pa`: walks the
    /// guest's virtual Stage-2 (`guest_s2`) then the host's Stage-2
    /// (`host_s2`) and installs the collapsed mapping with the
    /// intersection of both permission sets.
    ///
    /// # Errors
    ///
    /// [`ShadowFault::GuestStage2`] when the guest mapping is absent (to
    /// be reflected into the guest hypervisor),
    /// [`ShadowFault::HostStage2`] when the host mapping is absent, and
    /// [`ShadowFault::ShadowCorrupt`] when the shadow table itself is
    /// damaged and must be invalidated and rebuilt.
    pub fn fill(
        &mut self,
        mem: &mut PhysMem,
        guest_s2: PageTable,
        host_s2: PageTable,
        l2_pa: u64,
    ) -> Result<(), ShadowFault> {
        // Walk the guest's table for read access first; permissions are
        // intersected below.
        let g = walk(mem, guest_s2, l2_pa, Access::Read).map_err(ShadowFault::GuestStage2)?;
        let h = walk(mem, host_s2, g.pa, Access::Read).map_err(ShadowFault::HostStage2)?;
        let perms = Perms {
            r: g.perms.r && h.perms.r,
            w: g.perms.w && h.perms.w,
            x: g.perms.x && h.perms.x,
        };
        self.table
            .try_map(mem, &mut self.frames, l2_pa, h.pa, perms)
            .map_err(ShadowFault::ShadowCorrupt)?;
        self.installed += 1;
        Ok(())
    }

    /// Drops every collapsed mapping (guest Stage-2 changed, VMID rolled,
    /// or the guest hypervisor switched nested VMs).
    pub fn invalidate_all(&mut self, mem: &mut PhysMem) {
        let root = self.table.root;
        self.frames.reset();
        // The root frame is the first allocation; re-take it and zero it.
        let again = self.frames.alloc().expect("root frame");
        assert_eq!(again, root, "root frame must be stable across resets");
        mem.zero_page(root);
        self.installed = 0;
        self.invalidations += 1;
    }

    /// Checked-mode oracle: verifies every mapping currently installed
    /// in the shadow equals the composition `host_s2 ∘ guest_s2` of the
    /// tables it was collapsed from — same output page and no
    /// permission wider than the intersection of the two stages
    /// (paper Section 4: the shadow is *definitionally* that
    /// composition; any other entry is a hypervisor bug).
    ///
    /// Returns the discrepancies found, one line per bad entry, empty
    /// when the shadow is consistent. A structurally corrupt shadow is
    /// itself reported (rather than an `Err`): the caller is asking
    /// "is this table trustworthy", and a malformed descriptor is the
    /// strongest possible "no".
    pub fn verify_composition(
        &self,
        mem: &PhysMem,
        guest_s2: PageTable,
        host_s2: PageTable,
    ) -> Vec<String> {
        let mut bad = Vec::new();
        let shadow_leaves = match leaves(mem, self.table) {
            Ok(ls) => ls,
            Err(e) => return vec![format!("shadow table is corrupt: {e}")],
        };
        for l in shadow_leaves {
            let g = match walk(mem, guest_s2, l.input, Access::Read) {
                Ok(g) => g,
                Err(f) => {
                    bad.push(format!(
                        "shadow maps {:#x} but guest Stage-2 has no mapping ({:?} at level {})",
                        l.input, f.kind, f.level
                    ));
                    continue;
                }
            };
            let h = match walk(mem, host_s2, g.pa, Access::Read) {
                Ok(h) => h,
                Err(f) => {
                    bad.push(format!(
                        "shadow maps {:#x} but host Stage-2 has no mapping of {:#x} ({:?} at level {})",
                        l.input, g.pa, f.kind, f.level
                    ));
                    continue;
                }
            };
            if l.output != h.pa & !(l.span() - 1) {
                bad.push(format!(
                    "shadow maps {:#x} -> {:#x}, composition says {:#x}",
                    l.input,
                    l.output,
                    h.pa & !(l.span() - 1)
                ));
            }
            let allowed = g.perms.intersect(h.perms);
            if (l.perms.r && !allowed.r) || (l.perms.w && !allowed.w) || (l.perms.x && !allowed.x) {
                bad.push(format!(
                    "shadow grants {:?} at {:#x}, composition allows only {:?}",
                    l.perms, l.input, allowed
                ));
            }
        }
        bad
    }

    /// Collapsed entries currently installed.
    pub fn installed(&self) -> u64 {
        self.installed
    }

    /// Wholesale invalidations performed so far.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phys::PAGE_SIZE;

    struct Env {
        mem: PhysMem,
        guest_s2: PageTable,
        host_s2: PageTable,
        guest_frames: FrameAlloc,
        host_frames: FrameAlloc,
        shadow: ShadowS2,
    }

    fn setup() -> Env {
        let mut mem = PhysMem::new(1 << 32);
        let mut guest_frames = FrameAlloc::new(0x100_0000, 0x10_0000);
        let mut host_frames = FrameAlloc::new(0x200_0000, 0x10_0000);
        let shadow_frames = FrameAlloc::new(0x300_0000, 0x10_0000);
        let guest_s2 = PageTable::new(&mut mem, &mut guest_frames);
        let host_s2 = PageTable::new(&mut mem, &mut host_frames);
        let shadow = ShadowS2::new(&mut mem, shadow_frames);
        Env {
            mem,
            guest_s2,
            host_s2,
            guest_frames,
            host_frames,
            shadow,
        }
    }

    #[test]
    fn fill_collapses_two_stages() {
        let mut e = setup();
        // L2 PA 0x1000 -> L1 PA 0x4_2000 -> L0 PA 0x8_3000.
        e.guest_s2.map(
            &mut e.mem,
            &mut e.guest_frames,
            0x1000,
            0x4_2000,
            Perms::RWX,
        );
        e.host_s2.map(
            &mut e.mem,
            &mut e.host_frames,
            0x4_2000,
            0x8_3000,
            Perms::RWX,
        );
        e.shadow
            .fill(&mut e.mem, e.guest_s2, e.host_s2, 0x1abc)
            .unwrap();
        let t = walk(&e.mem, e.shadow.table, 0x1abc, Access::Read).unwrap();
        assert_eq!(t.pa, 0x8_3abc);
        assert_eq!(e.shadow.installed(), 1);
    }

    #[test]
    fn permissions_are_intersected() {
        let mut e = setup();
        e.guest_s2
            .map(&mut e.mem, &mut e.guest_frames, 0x1000, 0x4_2000, Perms::RW);
        e.host_s2.map(
            &mut e.mem,
            &mut e.host_frames,
            0x4_2000,
            0x8_3000,
            Perms::RO,
        );
        e.shadow
            .fill(&mut e.mem, e.guest_s2, e.host_s2, 0x1000)
            .unwrap();
        let t = walk(&e.mem, e.shadow.table, 0x1000, Access::Read).unwrap();
        assert!(t.perms.r && !t.perms.w && !t.perms.x);
    }

    #[test]
    fn missing_guest_mapping_reflects_to_guest() {
        let mut e = setup();
        let err = e
            .shadow
            .fill(&mut e.mem, e.guest_s2, e.host_s2, 0x1000)
            .unwrap_err();
        assert!(matches!(err, ShadowFault::GuestStage2(_)));
    }

    #[test]
    fn missing_host_mapping_is_host_fault() {
        let mut e = setup();
        e.guest_s2.map(
            &mut e.mem,
            &mut e.guest_frames,
            0x1000,
            0x4_2000,
            Perms::RWX,
        );
        let err = e
            .shadow
            .fill(&mut e.mem, e.guest_s2, e.host_s2, 0x1000)
            .unwrap_err();
        assert!(matches!(err, ShadowFault::HostStage2(_)));
    }

    #[test]
    fn corrupted_shadow_table_reports_and_rebuilds() {
        use crate::table::DESC_VALID;
        let mut e = setup();
        e.guest_s2.map(
            &mut e.mem,
            &mut e.guest_frames,
            0x1000,
            0x4_2000,
            Perms::RWX,
        );
        e.host_s2.map(
            &mut e.mem,
            &mut e.host_frames,
            0x4_2000,
            0x8_3000,
            Perms::RWX,
        );
        e.shadow
            .fill(&mut e.mem, e.guest_s2, e.host_s2, 0x1000)
            .unwrap();
        // Corrupt the shadow root (valid non-table descriptor): the next
        // fill reports corruption instead of panicking, and a wholesale
        // invalidation rebuilds cleanly.
        e.mem.write_u64(e.shadow.table.root, DESC_VALID);
        let err = e
            .shadow
            .fill(&mut e.mem, e.guest_s2, e.host_s2, 0x1000)
            .unwrap_err();
        assert!(matches!(err, ShadowFault::ShadowCorrupt(_)));
        e.shadow.invalidate_all(&mut e.mem);
        e.shadow
            .fill(&mut e.mem, e.guest_s2, e.host_s2, 0x1000)
            .unwrap();
        let t = walk(&e.mem, e.shadow.table, 0x1000, Access::Read).unwrap();
        assert_eq!(t.pa, 0x8_3000);
    }

    #[test]
    fn verify_composition_accepts_honest_fills_and_catches_tampering() {
        let mut e = setup();
        for i in 0..4u64 {
            e.guest_s2.map(
                &mut e.mem,
                &mut e.guest_frames,
                i * PAGE_SIZE,
                0x4_0000 + i * PAGE_SIZE,
                Perms::RW,
            );
            e.host_s2.map(
                &mut e.mem,
                &mut e.host_frames,
                0x4_0000 + i * PAGE_SIZE,
                0x8_0000 + i * PAGE_SIZE,
                Perms::RWX,
            );
            e.shadow
                .fill(&mut e.mem, e.guest_s2, e.host_s2, i * PAGE_SIZE)
                .unwrap();
        }
        assert!(e
            .shadow
            .verify_composition(&e.mem, e.guest_s2, e.host_s2)
            .is_empty());

        // Tamper: point one shadow leaf at the wrong output frame.
        let mut shadow_frames = FrameAlloc::new(0x300_0000, 0x10_0000);
        e.shadow
            .table
            .try_map(&mut e.mem, &mut shadow_frames, 0, 0x0dea_d000, Perms::RW)
            .ok();
        let bad = e.shadow.verify_composition(&e.mem, e.guest_s2, e.host_s2);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("composition says"), "{bad:?}");

        // Widen a permission beyond the intersection: also caught.
        e.shadow
            .table
            .try_map(&mut e.mem, &mut shadow_frames, 0, 0x8_0000, Perms::RWX)
            .ok();
        let bad = e.shadow.verify_composition(&e.mem, e.guest_s2, e.host_s2);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("allows only"), "{bad:?}");

        // A mapping the guest never had: caught.
        e.shadow
            .table
            .try_map(
                &mut e.mem,
                &mut shadow_frames,
                64 * PAGE_SIZE,
                0x8_0000,
                Perms::RW,
            )
            .ok();
        let bad = e.shadow.verify_composition(&e.mem, e.guest_s2, e.host_s2);
        assert!(
            bad.iter()
                .any(|b| b.contains("guest Stage-2 has no mapping")),
            "{bad:?}"
        );

        // Structural corruption reports as untrustworthy.
        e.mem
            .write_u64(e.shadow.table.root, crate::table::DESC_VALID);
        let bad = e.shadow.verify_composition(&e.mem, e.guest_s2, e.host_s2);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("corrupt"), "{bad:?}");
    }

    #[test]
    fn invalidate_all_detaches_and_allows_refill() {
        let mut e = setup();
        for i in 0..8u64 {
            e.guest_s2.map(
                &mut e.mem,
                &mut e.guest_frames,
                i * PAGE_SIZE,
                0x4_0000 + i * PAGE_SIZE,
                Perms::RWX,
            );
            e.host_s2.map(
                &mut e.mem,
                &mut e.host_frames,
                0x4_0000 + i * PAGE_SIZE,
                0x8_0000 + i * PAGE_SIZE,
                Perms::RWX,
            );
            e.shadow
                .fill(&mut e.mem, e.guest_s2, e.host_s2, i * PAGE_SIZE)
                .unwrap();
        }
        assert_eq!(e.shadow.installed(), 8);
        e.shadow.invalidate_all(&mut e.mem);
        assert_eq!(e.shadow.installed(), 0);
        assert_eq!(e.shadow.invalidations(), 1);
        assert!(walk(&e.mem, e.shadow.table, 0, Access::Read).is_err());
        // Refill works after reset.
        e.shadow.fill(&mut e.mem, e.guest_s2, e.host_s2, 0).unwrap();
        assert_eq!(
            walk(&e.mem, e.shadow.table, 0, Access::Read).unwrap().pa,
            0x8_0000
        );
    }
}
