//! Page tables and the hardware walker.
//!
//! A simplified but *in-memory* AArch64-style translation table: 3 levels,
//! 4 KiB granule, 512 entries per level, covering a 39-bit input address
//! space (L1 -> L2 -> L3, 1 GiB / 2 MiB / 4 KiB per entry). Descriptors
//! live in simulated [`PhysMem`], so building a mapping costs stores and
//! walking costs loads at architectural depth — which is what makes
//! shadow-paging costs honest in the nested-virtualization experiments.

use crate::alloc::FrameAlloc;
use crate::phys::{PhysMem, PAGE_SIZE};

/// Descriptor bit: entry is valid.
pub const DESC_VALID: u64 = 1 << 0;
/// Descriptor bit: entry points to a next-level table (levels 1-2).
pub const DESC_TABLE: u64 = 1 << 1;
/// Descriptor bit: readable.
const DESC_R: u64 = 1 << 6;
/// Descriptor bit: writable.
const DESC_W: u64 = 1 << 7;
/// Descriptor bit: executable.
const DESC_X: u64 = 1 << 53;
/// Output-address field mask (bits 47:12).
pub const DESC_ADDR: u64 = 0x0000_ffff_ffff_f000;

/// Access permissions of a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Perms {
    /// Readable.
    pub r: bool,
    /// Writable.
    pub w: bool,
    /// Executable.
    pub x: bool,
}

impl Perms {
    /// Read/write/execute.
    pub const RWX: Perms = Perms {
        r: true,
        w: true,
        x: true,
    };
    /// Read/write, no execute.
    pub const RW: Perms = Perms {
        r: true,
        w: true,
        x: false,
    };
    /// Read-only.
    pub const RO: Perms = Perms {
        r: true,
        w: false,
        x: false,
    };

    /// Component-wise intersection: the effective grant of a
    /// multi-stage translation is what *every* stage allows.
    pub fn intersect(self, other: Perms) -> Perms {
        Perms {
            r: self.r && other.r,
            w: self.w && other.w,
            x: self.x && other.x,
        }
    }

    fn to_bits(self) -> u64 {
        let mut d = 0;
        if self.r {
            d |= DESC_R;
        }
        if self.w {
            d |= DESC_W;
        }
        if self.x {
            d |= DESC_X;
        }
        d
    }

    fn from_bits(d: u64) -> Self {
        Perms {
            r: d & DESC_R != 0,
            w: d & DESC_W != 0,
            x: d & DESC_X != 0,
        }
    }

    /// True if these permissions allow `access`.
    pub fn allows(self, access: Access) -> bool {
        match access {
            Access::Read => self.r,
            Access::Write => self.w,
            Access::Fetch => self.x,
        }
    }
}

/// The kind of memory access being translated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Fetch,
}

/// Why a translation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// No valid descriptor at some level.
    Translation,
    /// Descriptor valid but permissions deny the access.
    Permission,
    /// Input address outside the 39-bit supported range.
    AddressSize,
    /// Descriptor valid but structurally impossible: a block where this
    /// format requires a table, or a next-table pointer outside
    /// physical memory. Corrupted tables produce this walk fault
    /// instead of panicking the simulated machine.
    Malformed,
}

/// A translation fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The failing input address.
    pub addr: u64,
    /// Table level at which the walk failed (1-3; 0 for AddressSize).
    pub level: u8,
    /// Failure kind.
    pub kind: FaultKind,
    /// Levels actually visited (for cost accounting).
    pub levels_walked: u8,
}

/// Why a mapping could not be installed: the walk to the leaf ran into
/// a descriptor that is valid but structurally impossible (a block
/// where a table is required, or a pointer outside physical memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapError {
    /// The input address being mapped.
    pub input: u64,
    /// Table level whose descriptor could not be traversed (0 for an
    /// out-of-range input address).
    pub level: u8,
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "malformed level-{} descriptor mapping {:#x}",
            self.level, self.input
        )
    }
}

/// A successful translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Output physical (or intermediate-physical) address.
    pub pa: u64,
    /// Permissions of the final mapping.
    pub perms: Perms,
    /// Levels visited (always 3 in this format).
    pub levels_walked: u8,
}

/// Maximum input address (39-bit space).
pub const MAX_INPUT_ADDR: u64 = 1 << 39;

/// Size of a level-2 block mapping.
pub const BLOCK_SIZE: u64 = 2 * 1024 * 1024;

fn index(addr: u64, level: u8) -> u64 {
    debug_assert!((1..=3).contains(&level));
    (addr >> (12 + 9 * (3 - level) as u32)) & 0x1ff
}

/// A translation table rooted at a physical frame.
///
/// Used for Stage-1 (VA -> IPA), Stage-2 (IPA -> PA) and shadow Stage-2
/// tables alike; the descriptor format is shared for simplicity (the
/// paper's point about EL2 vs EL1 *register* formats does not hinge on
/// descriptor formats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageTable {
    /// Physical address of the root (level-1) table frame.
    pub root: u64,
}

impl PageTable {
    /// Allocates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is exhausted.
    pub fn new(mem: &mut PhysMem, frames: &mut FrameAlloc) -> Self {
        let root = frames.alloc().expect("page-table frames exhausted");
        mem.zero_page(root);
        Self { root }
    }

    /// Maps the 4 KiB page containing `input` to the frame `output` with
    /// `perms`, creating intermediate tables as needed. Remapping an
    /// existing entry overwrites it.
    ///
    /// # Panics
    ///
    /// Panics on frame exhaustion, out-of-range input address, or a
    /// malformed intermediate descriptor (use [`PageTable::try_map`]
    /// where the table may be corrupt).
    pub fn map(
        &self,
        mem: &mut PhysMem,
        frames: &mut FrameAlloc,
        input: u64,
        output: u64,
        perms: Perms,
    ) {
        assert!(input < MAX_INPUT_ADDR, "input {input:#x} out of range");
        self.try_map(mem, frames, input, output, perms)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// [`PageTable::map`], but malformed intermediate descriptors (a
    /// block where a table is required, or a next-table pointer outside
    /// physical memory) come back as an error instead of a panic — the
    /// shadow-paging refill path uses this so a corrupted shadow table
    /// degrades into an invalidate-and-rebuild rather than an abort.
    ///
    /// # Errors
    ///
    /// A [`MapError`] naming the level that could not be traversed.
    ///
    /// # Panics
    ///
    /// Still panics on frame exhaustion (an infrastructure limit, not a
    /// guest-reachable state).
    pub fn try_map(
        &self,
        mem: &mut PhysMem,
        frames: &mut FrameAlloc,
        input: u64,
        output: u64,
        perms: Perms,
    ) -> Result<(), MapError> {
        if input >= MAX_INPUT_ADDR {
            return Err(MapError { input, level: 0 });
        }
        let input = input & !(PAGE_SIZE - 1);
        let output = output & !(PAGE_SIZE - 1);
        let mut table = self.root;
        for level in 1..=2u8 {
            let slot = table + index(input, level) * 8;
            if slot + 8 > mem.limit() {
                return Err(MapError { input, level });
            }
            let desc = mem.read_u64(slot);
            if desc & DESC_VALID == 0 {
                let next = frames.alloc().expect("page-table frames exhausted");
                mem.zero_page(next);
                mem.write_u64(slot, next | DESC_VALID | DESC_TABLE);
                table = next;
            } else {
                if desc & DESC_TABLE == 0 {
                    return Err(MapError { input, level });
                }
                let next = desc & DESC_ADDR;
                if next + PAGE_SIZE > mem.limit() {
                    return Err(MapError { input, level });
                }
                table = next;
            }
        }
        let slot = table + index(input, 3) * 8;
        mem.write_u64(slot, output | perms.to_bits() | DESC_VALID);
        Ok(())
    }

    /// Maps a 2 MiB block at level 2 (the hypervisor's THP-style huge
    /// mapping: one descriptor, two-level walks).
    ///
    /// # Panics
    ///
    /// Panics on frame exhaustion, out-of-range or unaligned addresses,
    /// or if a page table already occupies the slot.
    pub fn map_block(
        &self,
        mem: &mut PhysMem,
        frames: &mut FrameAlloc,
        input: u64,
        output: u64,
        perms: Perms,
    ) {
        assert!(input < MAX_INPUT_ADDR, "input {input:#x} out of range");
        assert_eq!(input % BLOCK_SIZE, 0, "block input must be 2MiB aligned");
        assert_eq!(output % BLOCK_SIZE, 0, "block output must be 2MiB aligned");
        let slot1 = self.root + index(input, 1) * 8;
        let desc1 = mem.read_u64(slot1);
        let l2 = if desc1 & DESC_VALID == 0 {
            let next = frames.alloc().expect("page-table frames exhausted");
            mem.zero_page(next);
            mem.write_u64(slot1, next | DESC_VALID | DESC_TABLE);
            next
        } else {
            desc1 & DESC_ADDR
        };
        let slot2 = l2 + index(input, 2) * 8;
        let old = mem.read_u64(slot2);
        assert!(
            old & DESC_VALID == 0 || old & DESC_TABLE == 0,
            "a page table occupies this 2MiB slot"
        );
        // A block descriptor: valid, TABLE clear.
        mem.write_u64(slot2, output | perms.to_bits() | DESC_VALID);
    }

    /// Removes the mapping of the page containing `input` (no-op if the
    /// walk hits an invalid or malformed entry first).
    pub fn unmap(&self, mem: &mut PhysMem, input: u64) {
        let mut table = self.root;
        for level in 1..=2u8 {
            let slot = table + index(input, level) * 8;
            if slot + 8 > mem.limit() {
                return;
            }
            let desc = mem.read_u64(slot);
            if desc & DESC_VALID == 0 || desc & DESC_TABLE == 0 {
                return;
            }
            table = desc & DESC_ADDR;
        }
        let slot = table + index(input, 3) * 8;
        if slot + 8 <= mem.limit() {
            mem.write_u64(slot, 0);
        }
    }

    /// Zeroes the root frame, detaching every mapping at once (used with
    /// [`FrameAlloc::reset`] for wholesale shadow invalidation).
    pub fn clear_root(&self, mem: &mut PhysMem) {
        mem.zero_page(self.root);
    }
}

/// Walks `table` for `input`, checking `access` permissions.
///
/// This is the *hardware* walker: it reads descriptors from simulated
/// memory and reports how many levels it touched so the CPU layer can
/// charge walk cycles.
///
/// # Errors
///
/// Returns a [`Fault`] describing the failing level and kind.
pub fn walk(
    mem: &PhysMem,
    table: PageTable,
    input: u64,
    access: Access,
) -> Result<Translation, Fault> {
    if input >= MAX_INPUT_ADDR {
        return Err(Fault {
            addr: input,
            level: 0,
            kind: FaultKind::AddressSize,
            levels_walked: 0,
        });
    }
    let mut frame = table.root;
    for level in 1..=2u8 {
        let slot = frame + index(input, level) * 8;
        if slot + 8 > mem.limit() {
            // A corrupted descriptor pointed this walk outside physical
            // memory: report a clean walk fault, never panic.
            return Err(Fault {
                addr: input,
                level,
                kind: FaultKind::Malformed,
                levels_walked: level,
            });
        }
        let desc = mem.read_u64(slot);
        if desc & DESC_VALID == 0 {
            return Err(Fault {
                addr: input,
                level,
                kind: FaultKind::Translation,
                levels_walked: level,
            });
        }
        if level == 2 && desc & DESC_TABLE == 0 {
            // A 2 MiB block descriptor terminates the walk early.
            let perms = Perms::from_bits(desc);
            if !perms.allows(access) {
                return Err(Fault {
                    addr: input,
                    level: 2,
                    kind: FaultKind::Permission,
                    levels_walked: 2,
                });
            }
            return Ok(Translation {
                pa: (desc & DESC_ADDR & !(BLOCK_SIZE - 1)) | (input & (BLOCK_SIZE - 1)),
                perms,
                levels_walked: 2,
            });
        }
        if level == 1 && desc & DESC_TABLE == 0 {
            // This format has no level-1 blocks: a valid non-table
            // level-1 descriptor is corruption, not a mapping.
            return Err(Fault {
                addr: input,
                level: 1,
                kind: FaultKind::Malformed,
                levels_walked: 1,
            });
        }
        frame = desc & DESC_ADDR;
    }
    let slot = frame + index(input, 3) * 8;
    if slot + 8 > mem.limit() {
        return Err(Fault {
            addr: input,
            level: 3,
            kind: FaultKind::Malformed,
            levels_walked: 3,
        });
    }
    let desc = mem.read_u64(slot);
    if desc & DESC_VALID == 0 {
        return Err(Fault {
            addr: input,
            level: 3,
            kind: FaultKind::Translation,
            levels_walked: 3,
        });
    }
    let perms = Perms::from_bits(desc);
    if !perms.allows(access) {
        return Err(Fault {
            addr: input,
            level: 3,
            kind: FaultKind::Permission,
            levels_walked: 3,
        });
    }
    Ok(Translation {
        pa: (desc & DESC_ADDR) | (input & (PAGE_SIZE - 1)),
        perms,
        levels_walked: 3,
    })
}

/// One leaf mapping enumerated from a table by [`leaves`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Leaf {
    /// First input address the mapping translates.
    pub input: u64,
    /// Output address it translates to.
    pub output: u64,
    /// Granted permissions.
    pub perms: Perms,
    /// Level of the leaf descriptor (2 for a block, 3 for a page).
    pub level: u8,
}

impl Leaf {
    /// Bytes the mapping covers.
    pub fn span(&self) -> u64 {
        if self.level == 2 {
            BLOCK_SIZE
        } else {
            PAGE_SIZE
        }
    }
}

/// Enumerates every leaf mapping reachable from `table`, in input-address
/// order. The checker layer uses this to compare a shadow Stage-2 table
/// against the composition of the tables it was built from.
///
/// # Errors
///
/// The first structurally impossible descriptor found — a valid
/// non-table level-1 entry, or a next-table pointer outside physical
/// memory — as a [`MapError`] naming the level, exactly mirroring what
/// [`walk`] reports as [`FaultKind::Malformed`].
pub fn leaves(mem: &PhysMem, table: PageTable) -> Result<Vec<Leaf>, MapError> {
    let mut out = Vec::new();
    if table.root + PAGE_SIZE > mem.limit() {
        return Err(MapError { input: 0, level: 1 });
    }
    for i1 in 0..512u64 {
        let input1 = i1 << 30;
        let desc1 = mem.read_u64(table.root + i1 * 8);
        if desc1 & DESC_VALID == 0 {
            continue;
        }
        if desc1 & DESC_TABLE == 0 {
            return Err(MapError {
                input: input1,
                level: 1,
            });
        }
        let l2 = desc1 & DESC_ADDR;
        if l2 + PAGE_SIZE > mem.limit() {
            return Err(MapError {
                input: input1,
                level: 1,
            });
        }
        for i2 in 0..512u64 {
            let input2 = input1 | (i2 << 21);
            let desc2 = mem.read_u64(l2 + i2 * 8);
            if desc2 & DESC_VALID == 0 {
                continue;
            }
            if desc2 & DESC_TABLE == 0 {
                out.push(Leaf {
                    input: input2,
                    output: desc2 & DESC_ADDR & !(BLOCK_SIZE - 1),
                    perms: Perms::from_bits(desc2),
                    level: 2,
                });
                continue;
            }
            let l3 = desc2 & DESC_ADDR;
            if l3 + PAGE_SIZE > mem.limit() {
                return Err(MapError {
                    input: input2,
                    level: 2,
                });
            }
            for i3 in 0..512u64 {
                let desc3 = mem.read_u64(l3 + i3 * 8);
                if desc3 & DESC_VALID == 0 {
                    continue;
                }
                out.push(Leaf {
                    input: input2 | (i3 << 12),
                    output: desc3 & DESC_ADDR,
                    perms: Perms::from_bits(desc3),
                    level: 3,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PhysMem, FrameAlloc) {
        let mem = PhysMem::new(1 << 32);
        let frames = FrameAlloc::new(0x100_0000, 0x10_0000);
        (mem, frames)
    }

    #[test]
    fn map_then_walk_translates() {
        let (mut mem, mut fr) = setup();
        let t = PageTable::new(&mut mem, &mut fr);
        t.map(&mut mem, &mut fr, 0x4000_1000, 0x8000_2000, Perms::RWX);
        let tr = walk(&mem, t, 0x4000_1234, Access::Read).unwrap();
        assert_eq!(tr.pa, 0x8000_2234);
        assert_eq!(tr.levels_walked, 3);
        assert!(tr.perms.w && tr.perms.x);
    }

    #[test]
    fn unmapped_address_faults_with_level() {
        let (mut mem, mut fr) = setup();
        let t = PageTable::new(&mut mem, &mut fr);
        let f = walk(&mem, t, 0x1000, Access::Read).unwrap_err();
        assert_eq!(f.kind, FaultKind::Translation);
        assert_eq!(f.level, 1);
        // Map a sibling page; the fault for the original moves deeper.
        t.map(&mut mem, &mut fr, 0x2000, 0x9000, Perms::RW);
        let f = walk(&mem, t, 0x1000, Access::Read).unwrap_err();
        assert_eq!(f.level, 3);
    }

    #[test]
    fn permission_fault_on_write_to_readonly() {
        let (mut mem, mut fr) = setup();
        let t = PageTable::new(&mut mem, &mut fr);
        t.map(&mut mem, &mut fr, 0x5000, 0x6000, Perms::RO);
        assert!(walk(&mem, t, 0x5000, Access::Read).is_ok());
        let f = walk(&mem, t, 0x5008, Access::Write).unwrap_err();
        assert_eq!(f.kind, FaultKind::Permission);
    }

    #[test]
    fn fetch_requires_execute() {
        let (mut mem, mut fr) = setup();
        let t = PageTable::new(&mut mem, &mut fr);
        t.map(&mut mem, &mut fr, 0x5000, 0x6000, Perms::RW);
        let f = walk(&mem, t, 0x5000, Access::Fetch).unwrap_err();
        assert_eq!(f.kind, FaultKind::Permission);
    }

    #[test]
    fn remap_overwrites() {
        let (mut mem, mut fr) = setup();
        let t = PageTable::new(&mut mem, &mut fr);
        t.map(&mut mem, &mut fr, 0x5000, 0x6000, Perms::RW);
        t.map(&mut mem, &mut fr, 0x5000, 0x7000, Perms::RO);
        let tr = walk(&mem, t, 0x5000, Access::Read).unwrap();
        assert_eq!(tr.pa, 0x7000);
        assert!(!tr.perms.w);
    }

    #[test]
    fn unmap_removes_leaf() {
        let (mut mem, mut fr) = setup();
        let t = PageTable::new(&mut mem, &mut fr);
        t.map(&mut mem, &mut fr, 0x5000, 0x6000, Perms::RW);
        t.unmap(&mut mem, 0x5000);
        assert!(walk(&mem, t, 0x5000, Access::Read).is_err());
    }

    #[test]
    fn address_size_fault_beyond_39_bits() {
        let (mut mem, mut fr) = setup();
        let t = PageTable::new(&mut mem, &mut fr);
        let f = walk(&mem, t, 1 << 39, Access::Read).unwrap_err();
        assert_eq!(f.kind, FaultKind::AddressSize);
    }

    #[test]
    fn distinct_gigabyte_regions_use_distinct_l1_entries() {
        let (mut mem, mut fr) = setup();
        let t = PageTable::new(&mut mem, &mut fr);
        let before = fr.used();
        t.map(&mut mem, &mut fr, 0, 0x1000, Perms::RW);
        t.map(&mut mem, &mut fr, 1 << 30, 0x2000, Perms::RW);
        // Each GiB region allocates its own L2+L3 pair.
        assert_eq!(fr.used() - before, 4);
        assert_eq!(walk(&mem, t, 0, Access::Read).unwrap().pa, 0x1000);
        assert_eq!(walk(&mem, t, 1 << 30, Access::Read).unwrap().pa, 0x2000);
    }

    #[test]
    fn block_mapping_translates_with_two_levels() {
        let (mut mem, mut fr) = setup();
        let t = PageTable::new(&mut mem, &mut fr);
        t.map_block(&mut mem, &mut fr, 2 * BLOCK_SIZE, 8 * BLOCK_SIZE, Perms::RW);
        let tr = walk(&mem, t, 2 * BLOCK_SIZE + 0x12_3456, Access::Read).unwrap();
        assert_eq!(tr.pa, 8 * BLOCK_SIZE + 0x12_3456);
        assert_eq!(tr.levels_walked, 2, "block walks stop at level 2");
        // Permission checks apply to blocks too.
        assert!(walk(&mem, t, 2 * BLOCK_SIZE, Access::Fetch).is_err());
    }

    #[test]
    fn blocks_and_pages_coexist_in_one_table() {
        let (mut mem, mut fr) = setup();
        let t = PageTable::new(&mut mem, &mut fr);
        t.map_block(&mut mem, &mut fr, 0, 4 * BLOCK_SIZE, Perms::RWX);
        t.map(&mut mem, &mut fr, BLOCK_SIZE, 0x9000, Perms::RO);
        assert_eq!(
            walk(&mem, t, 0x1000, Access::Read).unwrap().pa,
            4 * BLOCK_SIZE + 0x1000
        );
        assert_eq!(walk(&mem, t, BLOCK_SIZE, Access::Read).unwrap().pa, 0x9000);
    }

    #[test]
    #[should_panic(expected = "2MiB aligned")]
    fn unaligned_block_panics() {
        let (mut mem, mut fr) = setup();
        let t = PageTable::new(&mut mem, &mut fr);
        t.map_block(&mut mem, &mut fr, 0x1000, 0, Perms::RW);
    }

    #[test]
    fn malformed_descriptors_fault_instead_of_panicking() {
        let (mut mem, mut fr) = setup();
        let t = PageTable::new(&mut mem, &mut fr);
        t.map(&mut mem, &mut fr, 0x5000, 0x6000, Perms::RW);
        // Corrupt the root entry into a table pointer beyond the end of
        // physical memory: the walk must fault cleanly.
        let slot = t.root + index(0x5000, 1) * 8;
        mem.write_u64(slot, (mem.limit() & DESC_ADDR) | DESC_VALID | DESC_TABLE);
        let f = walk(&mem, t, 0x5000, Access::Read).unwrap_err();
        assert_eq!(f.kind, FaultKind::Malformed);
        assert_eq!(f.level, 2);
        // A valid non-table level-1 descriptor is equally malformed.
        mem.write_u64(slot, DESC_VALID);
        let f = walk(&mem, t, 0x5000, Access::Read).unwrap_err();
        assert_eq!(f.kind, FaultKind::Malformed);
        assert_eq!(f.level, 1);
        // unmap over the same corruption is a no-op, not a panic.
        t.unmap(&mut mem, 0x5000);
    }

    #[test]
    fn try_map_reports_corruption_and_map_round_trips() {
        let (mut mem, mut fr) = setup();
        let t = PageTable::new(&mut mem, &mut fr);
        t.try_map(&mut mem, &mut fr, 0x5000, 0x6000, Perms::RW)
            .unwrap();
        assert_eq!(walk(&mem, t, 0x5000, Access::Read).unwrap().pa, 0x6000);
        // Block-where-table-expected: an error, not a panic.
        let slot = t.root + index(0x5000, 1) * 8;
        mem.write_u64(slot, DESC_VALID);
        let e = t
            .try_map(&mut mem, &mut fr, 0x5000, 0x7000, Perms::RW)
            .unwrap_err();
        assert_eq!(e.level, 1);
        assert!(e.to_string().contains("malformed"));
        // Out-of-range input.
        let e = t
            .try_map(&mut mem, &mut fr, MAX_INPUT_ADDR, 0, Perms::RW)
            .unwrap_err();
        assert_eq!(e.level, 0);
    }

    #[test]
    fn leaves_enumerates_pages_and_blocks_in_order() {
        let (mut mem, mut fr) = setup();
        let t = PageTable::new(&mut mem, &mut fr);
        t.map(&mut mem, &mut fr, 1 << 30, 0x9000, Perms::RO);
        t.map_block(&mut mem, &mut fr, 0, 4 * BLOCK_SIZE, Perms::RWX);
        t.map(&mut mem, &mut fr, BLOCK_SIZE + 0x5000, 0x6000, Perms::RW);
        let ls = leaves(&mem, t).unwrap();
        assert_eq!(ls.len(), 3);
        assert_eq!(ls[0].input, 0);
        assert_eq!(ls[0].level, 2);
        assert_eq!(ls[0].span(), BLOCK_SIZE);
        assert_eq!(ls[0].output, 4 * BLOCK_SIZE);
        assert_eq!(ls[1].input, BLOCK_SIZE + 0x5000);
        assert_eq!(ls[1].output, 0x6000);
        assert!(ls[1].perms.w && !ls[1].perms.x);
        assert_eq!(ls[2].input, 1 << 30);
        // Each enumerated leaf agrees with the hardware walker.
        for l in &ls {
            let access = if l.perms.r {
                Access::Read
            } else {
                Access::Write
            };
            let tr = walk(&mem, t, l.input, access).unwrap();
            assert_eq!(tr.pa, l.output);
            assert_eq!(tr.perms, l.perms);
        }
    }

    #[test]
    fn leaves_reports_corruption_like_the_walker() {
        let (mut mem, mut fr) = setup();
        let t = PageTable::new(&mut mem, &mut fr);
        t.map(&mut mem, &mut fr, 0x5000, 0x6000, Perms::RW);
        let slot = t.root + index(0x5000, 1) * 8;
        mem.write_u64(slot, DESC_VALID); // valid non-table at level 1
        let e = leaves(&mem, t).unwrap_err();
        assert_eq!(e.level, 1);
        mem.write_u64(slot, (mem.limit() & DESC_ADDR) | DESC_VALID | DESC_TABLE);
        let e = leaves(&mem, t).unwrap_err();
        assert_eq!(e.level, 1);
    }

    #[test]
    fn clear_root_detaches_all_mappings() {
        let (mut mem, mut fr) = setup();
        let t = PageTable::new(&mut mem, &mut fr);
        t.map(&mut mem, &mut fr, 0x5000, 0x6000, Perms::RW);
        t.clear_root(&mut mem);
        let f = walk(&mem, t, 0x5000, Access::Read).unwrap_err();
        assert_eq!(f.level, 1);
    }
}
