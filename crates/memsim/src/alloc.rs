//! Page-frame allocation for page tables and hypervisor data.

use crate::phys::PAGE_SIZE;

/// A bump allocator over a physical range.
///
/// Hypervisors in the simulator use one per ownership domain (the host
/// allocates shadow-table frames from host-reserved memory; a guest
/// hypervisor from its own). Frees are not supported — table teardown
/// zeroes and reuses via [`FrameAlloc::reset`], which matches how the
/// simulated hypervisors rebuild shadow tables wholesale on invalidation.
#[derive(Debug, Clone)]
pub struct FrameAlloc {
    base: u64,
    end: u64,
    next: u64,
}

impl FrameAlloc {
    /// Creates an allocator over `[base, base + size)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is not page aligned.
    pub fn new(base: u64, size: u64) -> Self {
        assert_eq!(base % PAGE_SIZE, 0, "base must be page aligned");
        assert_eq!(size % PAGE_SIZE, 0, "size must be page aligned");
        Self {
            base,
            end: base + size,
            next: base,
        }
    }

    /// Allocates one page frame; `None` when exhausted.
    pub fn alloc(&mut self) -> Option<u64> {
        if self.next >= self.end {
            return None;
        }
        let pa = self.next;
        self.next += PAGE_SIZE;
        Some(pa)
    }

    /// Frames still available.
    pub fn remaining(&self) -> u64 {
        (self.end - self.next) / PAGE_SIZE
    }

    /// Frames handed out so far.
    pub fn used(&self) -> u64 {
        (self.next - self.base) / PAGE_SIZE
    }

    /// Returns every frame to the pool (callers must stop using old
    /// frames; the simulated hypervisor zeroes them on reuse).
    pub fn reset(&mut self) {
        self.next = self.base;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_sequential_pages() {
        let mut a = FrameAlloc::new(0x10_0000, 3 * PAGE_SIZE);
        assert_eq!(a.alloc(), Some(0x10_0000));
        assert_eq!(a.alloc(), Some(0x10_1000));
        assert_eq!(a.used(), 2);
        assert_eq!(a.remaining(), 1);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = FrameAlloc::new(0, PAGE_SIZE);
        assert!(a.alloc().is_some());
        assert_eq!(a.alloc(), None);
    }

    #[test]
    fn reset_reclaims_frames() {
        let mut a = FrameAlloc::new(0, PAGE_SIZE);
        a.alloc().unwrap();
        a.reset();
        assert_eq!(a.alloc(), Some(0));
    }

    #[test]
    #[should_panic(expected = "page aligned")]
    fn unaligned_base_panics() {
        FrameAlloc::new(123, PAGE_SIZE);
    }
}
