//! A VMID-tagged translation lookaside buffer.
//!
//! The TLB caches *final* translations (input page to output page with
//! permissions) per translation regime. Entries are tagged with a VMID so
//! the hypervisor can invalidate one VM's translations without flushing
//! the world — and so the simulator charges realistic walk costs after
//! `tlbi vmalls12e1` operations during world switches.
//!
//! Storage is a direct-mapped, set-indexed array: a lookup is one
//! multiplicative hash and one array probe (no SipHash, no heap walk),
//! and a conflicting insert deterministically replaces the occupant of
//! its set. That replaces the old `HashMap`'s hash-order eviction,
//! which depended on `RandomState` and therefore differed from run to
//! run; every eviction decision here is a pure function of the access
//! stream, so TLB stats replay identically from a seed.
//!
//! In front of the sets sits a per-CPU one-entry *micro-TLB* holding
//! the last translation each CPU used ([`Tlb::lookup_cpu`]).
//! Straight-line code re-translates the same page almost every access;
//! the micro-TLB turns that into a single compare. It is pure cache:
//! a micro hit counts in the same `hits` statistic, and every
//! invalidation path ([`Tlb::flush_vmid`], [`Tlb::flush_all`], a
//! conflicting [`Tlb::insert`]) drops matching micro entries, so an
//! access stream observes exactly the hit/miss/flush sequence the
//! map-backed TLB produced.

use crate::table::Perms;
use std::collections::HashMap;

/// TLB tag: translation regime + VMID + input page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TlbKey {
    /// VMID of the Stage-2 regime (0 for host/hypervisor contexts).
    pub vmid: u16,
    /// True for Stage-2 (or combined) entries, false for Stage-1-only.
    pub stage2: bool,
    /// Input page base (low 12 bits clear).
    pub page: u64,
}

impl TlbKey {
    /// Deterministic set index: a multiplicative mix of the page
    /// number and regime tag, reduced modulo `sets`. The constants are
    /// the usual splitmix64/golden-ratio multipliers; all that matters
    /// is that distinct hot pages spread across sets and that the
    /// function is a pure function of the key.
    #[inline]
    fn set(self, sets: usize) -> usize {
        let regime = ((self.vmid as u64) << 1) | self.stage2 as u64;
        let h = (self.page >> 12)
            .wrapping_add(regime.wrapping_mul(0xd1b5_4a32_d192_ed03))
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);
        ((h >> 32) as usize) % sets
    }
}

/// A cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Output page base.
    pub out_page: u64,
    /// Cached permissions (the *walked* permissions — the intersection
    /// of every stage's grants, so a cached entry can deny an access
    /// and force the re-walk path).
    pub perms: Perms,
}

/// The TLB: `capacity` direct-mapped sets plus a per-CPU micro-TLB.
/// A conflicting insert deterministically evicts its set's occupant;
/// capacity pressure is not a phenomenon the NEVE experiments depend
/// on, but the bound keeps long simulations in check.
#[derive(Debug, Clone)]
pub struct Tlb {
    sets: Vec<Option<(TlbKey, TlbEntry)>>,
    /// Occupied sets (kept so [`Tlb::len`] stays O(1)).
    len: usize,
    /// Last translation per CPU, grown on first use of each CPU index.
    micro: Vec<Option<(TlbKey, TlbEntry)>>,
    hits: u64,
    misses: u64,
    flushes: u64,
    /// Copy-on-write undo log (see [`Tlb::begin_snapshot`]): pre-image
    /// of every set mutated since the window opened. `None` when no
    /// window is open, so the non-snapshot paths pay one branch.
    undo: Option<HashMap<u32, Option<(TlbKey, TlbEntry)>>>,
}

/// The O(1)-sized part of a TLB snapshot: statistics and the per-CPU
/// micro entries. Set contents are *not* copied — they rewind through
/// the copy-on-write undo log, exactly like guest memory pages, so
/// snapshotting a TLB never touches its (capacity-sized) set array.
#[derive(Debug, Clone)]
pub struct TlbSnapshot {
    len: usize,
    micro: Vec<Option<(TlbKey, TlbEntry)>>,
    hits: u64,
    misses: u64,
    flushes: u64,
}

impl Default for Tlb {
    fn default() -> Self {
        Self::new(2048)
    }
}

impl Tlb {
    /// Creates a TLB holding at most `capacity` entries (one per set).
    pub fn new(capacity: usize) -> Self {
        Self {
            sets: vec![None; capacity.max(1)],
            len: 0,
            micro: Vec::new(),
            hits: 0,
            misses: 0,
            flushes: 0,
            undo: None,
        }
    }

    /// Opens a copy-on-write window and returns the small snapshot
    /// state. From now on every set mutation logs its pre-image;
    /// [`Tlb::restore_snapshot`] rewinds in time proportional to the
    /// sets actually touched. Opening a new window forgets the old one.
    pub fn begin_snapshot(&mut self) -> TlbSnapshot {
        self.undo = Some(HashMap::new());
        TlbSnapshot {
            len: self.len,
            micro: self.micro.clone(),
            hits: self.hits,
            misses: self.misses,
            flushes: self.flushes,
        }
    }

    /// Rewinds to the state captured by the matching
    /// [`Tlb::begin_snapshot`]. The window stays open (with an empty
    /// log) so the same snapshot can be restored repeatedly.
    ///
    /// # Panics
    ///
    /// Panics if no window is open.
    pub fn restore_snapshot(&mut self, snap: &TlbSnapshot) {
        let undo = self
            .undo
            .as_mut()
            .expect("Tlb::restore_snapshot without begin_snapshot");
        for (idx, pre) in undo.drain() {
            self.sets[idx as usize] = pre;
        }
        self.len = snap.len;
        self.micro.clone_from(&snap.micro);
        self.hits = snap.hits;
        self.misses = snap.misses;
        self.flushes = snap.flushes;
    }

    /// Closes the copy-on-write window (mutations stop logging).
    pub fn end_snapshot(&mut self) {
        self.undo = None;
    }

    /// Logs `idx`'s pre-image if a window is open and this is the first
    /// mutation of that set since it opened. The common (no-window) case
    /// is one branch; the logging itself stays out of line so the hot
    /// insert/flush paths do not carry it.
    #[inline(always)]
    fn note_set(&mut self, idx: usize) {
        if self.undo.is_some() {
            self.note_set_slow(idx);
        }
    }

    #[cold]
    #[inline(never)]
    fn note_set_slow(&mut self, idx: usize) {
        if let Some(undo) = &mut self.undo {
            undo.entry(idx as u32).or_insert(self.sets[idx]);
        }
    }

    /// Looks up a translation, updating hit/miss statistics.
    pub fn lookup(&mut self, key: TlbKey) -> Option<TlbEntry> {
        match self.sets[key.set(self.sets.len())] {
            Some((k, e)) if k == key => {
                self.hits += 1;
                Some(e)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up a translation through `cpu`'s micro-TLB: a hit on the
    /// CPU's last translation never touches the sets. Statistics are
    /// identical to [`Tlb::lookup`] — the micro-TLB only caches
    /// entries the sets already hold, so it converts set hits into
    /// cheaper hits, never a miss into a hit.
    #[inline]
    pub fn lookup_cpu(&mut self, cpu: usize, key: TlbKey) -> Option<TlbEntry> {
        if let Some(Some((k, e))) = self.micro.get(cpu) {
            if *k == key {
                self.hits += 1;
                return Some(*e);
            }
        }
        let found = self.lookup(key);
        if let Some(e) = found {
            self.micro_slot(cpu).replace((key, e));
        }
        found
    }

    #[inline]
    fn micro_slot(&mut self, cpu: usize) -> &mut Option<(TlbKey, TlbEntry)> {
        if cpu >= self.micro.len() {
            self.micro.resize(cpu + 1, None);
        }
        &mut self.micro[cpu]
    }

    /// Installs a translation, deterministically replacing the current
    /// occupant of the key's set on conflict. Stale micro-TLB copies
    /// of the replaced (or re-inserted) key are dropped.
    pub fn insert(&mut self, key: TlbKey, entry: TlbEntry) {
        let set = key.set(self.sets.len());
        self.note_set(set);
        if let Some((old, _)) = self.sets[set] {
            // Replacing a set occupant (same key or a conflict): any
            // CPU still holding the displaced translation must not
            // keep serving it.
            for m in &mut self.micro {
                if matches!(m, Some((k, _)) if *k == old) {
                    *m = None;
                }
            }
        } else {
            self.len += 1;
        }
        self.sets[set] = Some((key, entry));
    }

    /// Invalidates every entry of one VMID (`tlbi vmalls12e1`).
    pub fn flush_vmid(&mut self, vmid: u16) {
        if self.undo.is_some() {
            for i in 0..self.sets.len() {
                if matches!(self.sets[i], Some((k, _)) if k.vmid == vmid) {
                    self.note_set_slow(i);
                    self.sets[i] = None;
                    self.len -= 1;
                }
            }
        } else {
            for s in &mut self.sets {
                if matches!(s, Some((k, _)) if k.vmid == vmid) {
                    *s = None;
                    self.len -= 1;
                }
            }
        }
        for m in &mut self.micro {
            if matches!(m, Some((k, _)) if k.vmid == vmid) {
                *m = None;
            }
        }
        self.flushes += 1;
    }

    /// Invalidates everything (`tlbi alle1`).
    pub fn flush_all(&mut self) {
        if self.undo.is_some() {
            for i in 0..self.sets.len() {
                if self.sets[i].is_some() {
                    self.note_set_slow(i);
                    self.sets[i] = None;
                }
            }
        } else {
            self.sets.fill(None);
        }
        self.micro.fill(None);
        self.len = 0;
        self.flushes += 1;
    }

    /// (hits, misses, flushes) so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.flushes)
    }

    /// The resident translations, in set order. Checked-mode validators
    /// re-walk each cached entry against the live page tables at trap
    /// sync points; ordinary lookups never need this.
    pub fn entries(&self) -> impl Iterator<Item = (TlbKey, TlbEntry)> + '_ {
        self.sets.iter().filter_map(|s| *s)
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(vmid: u16, page: u64) -> TlbKey {
        TlbKey {
            vmid,
            stage2: true,
            page,
        }
    }

    fn entry(out: u64) -> TlbEntry {
        TlbEntry {
            out_page: out,
            perms: Perms::RWX,
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut t = Tlb::new(16);
        assert!(t.lookup(key(1, 0x1000)).is_none());
        t.insert(key(1, 0x1000), entry(0x8000));
        assert_eq!(t.lookup(key(1, 0x1000)).unwrap().out_page, 0x8000);
        assert_eq!(t.stats(), (1, 1, 0));
    }

    #[test]
    fn vmid_flush_is_selective() {
        let mut t = Tlb::new(16);
        t.insert(key(1, 0x1000), entry(0x8000));
        t.insert(key(2, 0x1000), entry(0x9000));
        t.flush_vmid(1);
        assert!(t.lookup(key(1, 0x1000)).is_none());
        assert!(t.lookup(key(2, 0x1000)).is_some());
    }

    #[test]
    fn same_page_different_vmid_do_not_alias() {
        let mut t = Tlb::new(16);
        t.insert(key(1, 0x1000), entry(0x8000));
        t.insert(key(2, 0x1000), entry(0x9000));
        assert_eq!(t.lookup(key(1, 0x1000)).unwrap().out_page, 0x8000);
        assert_eq!(t.lookup(key(2, 0x1000)).unwrap().out_page, 0x9000);
    }

    #[test]
    fn capacity_is_bounded() {
        let mut t = Tlb::new(4);
        for i in 0..100u64 {
            t.insert(key(0, i * 0x1000), entry(i));
        }
        assert!(t.len() <= 4);
    }

    #[test]
    fn flush_all_clears() {
        let mut t = Tlb::new(16);
        t.insert(key(1, 0), entry(0));
        t.flush_all();
        assert!(t.is_empty());
        assert_eq!(t.stats().2, 1);
    }

    #[test]
    fn stage1_and_stage2_keys_are_distinct() {
        let mut t = Tlb::new(16);
        t.insert(
            TlbKey {
                vmid: 0,
                stage2: false,
                page: 0x1000,
            },
            entry(0xa000),
        );
        assert!(t.lookup(key(0, 0x1000)).is_none());
    }

    #[test]
    fn conflict_eviction_is_deterministic() {
        // Two runs of the same access stream must evict identically
        // (the old HashMap's hash-order eviction did not).
        let run = || {
            let mut t = Tlb::new(4);
            for i in 0..32u64 {
                t.insert(key(0, i * 0x1000), entry(i));
            }
            let mut survivors = Vec::new();
            for i in 0..32u64 {
                if t.lookup(key(0, i * 0x1000)).is_some() {
                    survivors.push(i);
                }
            }
            (survivors, t.len(), t.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn micro_tlb_hit_counts_as_a_hit() {
        let mut t = Tlb::new(16);
        t.insert(key(1, 0x1000), entry(0x8000));
        // First cpu lookup fills the micro entry from the sets.
        assert_eq!(t.lookup_cpu(0, key(1, 0x1000)).unwrap().out_page, 0x8000);
        // Second is served by the micro entry; stats are identical.
        assert_eq!(t.lookup_cpu(0, key(1, 0x1000)).unwrap().out_page, 0x8000);
        assert_eq!(t.stats(), (2, 0, 0));
    }

    #[test]
    fn micro_tlb_never_survives_a_flush() {
        let mut t = Tlb::new(16);
        t.insert(key(3, 0x1000), entry(0x8000));
        assert!(t.lookup_cpu(0, key(3, 0x1000)).is_some());
        t.flush_vmid(3);
        assert!(
            t.lookup_cpu(0, key(3, 0x1000)).is_none(),
            "micro-TLB must not serve a flushed VMID's translation"
        );
        t.insert(key(4, 0x2000), entry(0x9000));
        assert!(t.lookup_cpu(1, key(4, 0x2000)).is_some());
        t.flush_all();
        assert!(t.lookup_cpu(1, key(4, 0x2000)).is_none());
    }

    #[test]
    fn micro_tlb_never_survives_a_conflicting_insert() {
        let mut t = Tlb::new(1); // every key conflicts
        t.insert(key(0, 0x1000), entry(0xa000));
        assert!(t.lookup_cpu(0, key(0, 0x1000)).is_some());
        t.insert(key(0, 0x2000), entry(0xb000));
        assert!(
            t.lookup_cpu(0, key(0, 0x1000)).is_none(),
            "displaced translation must not linger in the micro-TLB"
        );
    }

    #[test]
    fn micro_tlb_reinsert_updates_the_cached_entry() {
        // Re-inserting the same key (the permission-upgrade path)
        // must not leave a CPU serving the old entry.
        let mut t = Tlb::new(16);
        t.insert(key(0, 0x1000), entry(0xa000));
        assert!(t.lookup_cpu(0, key(0, 0x1000)).is_some());
        t.insert(key(0, 0x1000), entry(0xbeef_f000));
        assert_eq!(
            t.lookup_cpu(0, key(0, 0x1000)).unwrap().out_page,
            0xbeef_f000
        );
    }

    #[test]
    fn flush_then_lazy_grow_cannot_resurrect_a_translation() {
        // The micro vec grows lazily on first use of each CPU index
        // (`micro_slot`), so a flush can run while the vec is shorter
        // than the machine's CPU count. The growth that happens
        // *after* the flush must come up empty — a pre-flush
        // translation must be unreachable from every slot, old or new.
        let mut t = Tlb::new(16);
        t.insert(key(7, 0x1000), entry(0x8000));
        assert!(t.lookup_cpu(0, key(7, 0x1000)).is_some());
        t.flush_vmid(7);
        assert!(
            t.lookup_cpu(3, key(7, 0x1000)).is_none(),
            "a lazily grown slot served a pre-flush translation"
        );
        assert!(t.lookup_cpu(0, key(7, 0x1000)).is_none());

        // Same discipline for the full flush, with the growth sitting
        // between the insert and the flush.
        let mut t = Tlb::new(16);
        t.insert(key(1, 0x5000), entry(0xc000));
        assert!(t.lookup_cpu(2, key(1, 0x5000)).is_some());
        t.flush_all();
        for cpu in 0..4 {
            assert!(
                t.lookup_cpu(cpu, key(1, 0x5000)).is_none(),
                "cpu{cpu} resurrected a flushed translation"
            );
        }
        // A translation re-walked and re-inserted after the flush is
        // served fresh everywhere.
        t.insert(key(1, 0x5000), entry(0xd000));
        assert_eq!(t.lookup_cpu(2, key(1, 0x5000)).unwrap().out_page, 0xd000);
        assert_eq!(t.lookup_cpu(5, key(1, 0x5000)).unwrap().out_page, 0xd000);
    }

    #[test]
    fn snapshot_rewinds_inserts_flushes_and_stats() {
        let mut t = Tlb::new(16);
        t.insert(key(1, 0x1000), entry(0x8000));
        assert!(t.lookup_cpu(0, key(1, 0x1000)).is_some());
        let stats = t.stats();

        let snap = t.begin_snapshot();
        t.insert(key(2, 0x3000), entry(0x9000));
        t.lookup(key(2, 0x3000));
        t.flush_vmid(1);
        t.flush_all();
        assert!(t.is_empty());

        t.restore_snapshot(&snap);
        assert_eq!(t.len(), 1);
        assert_eq!(t.stats(), stats);
        assert!(t.lookup_cpu(0, key(1, 0x1000)).is_some());
        assert!(t.lookup(key(2, 0x3000)).is_none());
    }

    #[test]
    fn snapshot_restores_repeatedly_and_end_stops_logging() {
        let mut t = Tlb::new(16);
        let snap = t.begin_snapshot();
        for round in 0..3 {
            t.insert(key(0, 0x1000), entry(round));
            t.restore_snapshot(&snap);
            assert!(t.is_empty(), "round {round}");
        }
        t.end_snapshot();
        t.insert(key(0, 0x1000), entry(9));
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "without begin_snapshot")]
    fn restore_without_window_panics() {
        let mut t = Tlb::new(4);
        let mut other = Tlb::new(4);
        let snap = other.begin_snapshot();
        t.restore_snapshot(&snap);
    }

    #[test]
    fn cpus_have_independent_micro_entries() {
        let mut t = Tlb::new(16);
        t.insert(key(0, 0x1000), entry(0xa000));
        t.insert(key(0, 0x2000), entry(0xb000));
        assert!(t.lookup_cpu(0, key(0, 0x1000)).is_some());
        assert!(t.lookup_cpu(1, key(0, 0x2000)).is_some());
        // Each CPU still hits its own last translation.
        assert!(t.lookup_cpu(0, key(0, 0x1000)).is_some());
        assert!(t.lookup_cpu(1, key(0, 0x2000)).is_some());
        assert_eq!(t.stats(), (4, 0, 0));
    }
}
