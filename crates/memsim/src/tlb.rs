//! A VMID-tagged translation lookaside buffer.
//!
//! The TLB caches *final* translations (input page to output page with
//! permissions) per translation regime. Entries are tagged with a VMID so
//! the hypervisor can invalidate one VM's translations without flushing
//! the world — and so the simulator charges realistic walk costs after
//! `tlbi vmalls12e1` operations during world switches.

use crate::table::Perms;
use std::collections::HashMap;

/// TLB tag: translation regime + VMID + input page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TlbKey {
    /// VMID of the Stage-2 regime (0 for host/hypervisor contexts).
    pub vmid: u16,
    /// True for Stage-2 (or combined) entries, false for Stage-1-only.
    pub stage2: bool,
    /// Input page base (low 12 bits clear).
    pub page: u64,
}

/// A cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Output page base.
    pub out_page: u64,
    /// Cached permissions.
    pub perms: Perms,
}

/// The TLB. Capacity-bounded with random-ish (hash-order) eviction;
/// capacity pressure is not a phenomenon the NEVE experiments depend on,
/// but the bound keeps long simulations in check.
#[derive(Debug)]
pub struct Tlb {
    entries: HashMap<TlbKey, TlbEntry>,
    capacity: usize,
    hits: u64,
    misses: u64,
    flushes: u64,
}

impl Default for Tlb {
    fn default() -> Self {
        Self::new(2048)
    }
}

impl Tlb {
    /// Creates a TLB holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: HashMap::new(),
            capacity,
            hits: 0,
            misses: 0,
            flushes: 0,
        }
    }

    /// Looks up a translation, updating hit/miss statistics.
    pub fn lookup(&mut self, key: TlbKey) -> Option<TlbEntry> {
        match self.entries.get(&key) {
            Some(e) => {
                self.hits += 1;
                Some(*e)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Installs a translation (evicting an arbitrary entry at capacity).
    pub fn insert(&mut self, key: TlbKey, entry: TlbEntry) {
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(k) = self.entries.keys().next().copied() {
                self.entries.remove(&k);
            }
        }
        self.entries.insert(key, entry);
    }

    /// Invalidates every entry of one VMID (`tlbi vmalls12e1`).
    pub fn flush_vmid(&mut self, vmid: u16) {
        self.entries.retain(|k, _| k.vmid != vmid);
        self.flushes += 1;
    }

    /// Invalidates everything (`tlbi alle1`).
    pub fn flush_all(&mut self) {
        self.entries.clear();
        self.flushes += 1;
    }

    /// (hits, misses, flushes) so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.flushes)
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(vmid: u16, page: u64) -> TlbKey {
        TlbKey {
            vmid,
            stage2: true,
            page,
        }
    }

    fn entry(out: u64) -> TlbEntry {
        TlbEntry {
            out_page: out,
            perms: Perms::RWX,
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut t = Tlb::new(16);
        assert!(t.lookup(key(1, 0x1000)).is_none());
        t.insert(key(1, 0x1000), entry(0x8000));
        assert_eq!(t.lookup(key(1, 0x1000)).unwrap().out_page, 0x8000);
        assert_eq!(t.stats(), (1, 1, 0));
    }

    #[test]
    fn vmid_flush_is_selective() {
        let mut t = Tlb::new(16);
        t.insert(key(1, 0x1000), entry(0x8000));
        t.insert(key(2, 0x1000), entry(0x9000));
        t.flush_vmid(1);
        assert!(t.lookup(key(1, 0x1000)).is_none());
        assert!(t.lookup(key(2, 0x1000)).is_some());
    }

    #[test]
    fn same_page_different_vmid_do_not_alias() {
        let mut t = Tlb::new(16);
        t.insert(key(1, 0x1000), entry(0x8000));
        t.insert(key(2, 0x1000), entry(0x9000));
        assert_eq!(t.lookup(key(1, 0x1000)).unwrap().out_page, 0x8000);
        assert_eq!(t.lookup(key(2, 0x1000)).unwrap().out_page, 0x9000);
    }

    #[test]
    fn capacity_is_bounded() {
        let mut t = Tlb::new(4);
        for i in 0..100u64 {
            t.insert(key(0, i * 0x1000), entry(i));
        }
        assert!(t.len() <= 4);
    }

    #[test]
    fn flush_all_clears() {
        let mut t = Tlb::new(16);
        t.insert(key(1, 0), entry(0));
        t.flush_all();
        assert!(t.is_empty());
        assert_eq!(t.stats().2, 1);
    }

    #[test]
    fn stage1_and_stage2_keys_are_distinct() {
        let mut t = Tlb::new(16);
        t.insert(
            TlbKey {
                vmid: 0,
                stage2: false,
                page: 0x1000,
            },
            entry(0xa000),
        );
        assert!(t.lookup(key(0, 0x1000)).is_none());
    }
}
