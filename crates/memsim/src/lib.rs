//! Memory-system simulation: physical memory, Stage-1/Stage-2 page
//! tables, shadow Stage-2 construction and a VMID-tagged TLB.
//!
//! Nested virtualization needs at least three translation stages (paper
//! Section 4: L2 VA -> L2 PA -> L1 PA -> L0 PA) while the hardware walks
//! only two; the host hypervisor therefore builds *shadow Stage-2* tables
//! collapsing the guest hypervisor's Stage-2 with its own. This crate
//! provides all the machinery:
//!
//! - [`PhysMem`]: sparse simulated physical memory.
//! - [`FrameAlloc`]: a bump allocator for page-table frames.
//! - [`PageTable`]: a 3-level, 4 KiB-granule table living *in simulated
//!   memory*, so that walks have architectural depth and cost.
//! - [`walk`]: the hardware page-table walker (used for both stages).
//! - [`shadow`]: collapse guest and host Stage-2 tables on demand.
//! - [`Tlb`]: translation cache with VMID-tagged invalidation.
//!
//! The crate is cost-model agnostic: walkers report how many levels they
//! touched and the CPU layer charges cycles.

pub mod alloc;
pub mod phys;
pub mod shadow;
pub mod table;
pub mod tlb;

pub use alloc::FrameAlloc;
pub use phys::{PhysMem, PAGE_SIZE};
pub use shadow::ShadowS2;
pub use table::{
    leaves, walk, Access, Fault, FaultKind, Leaf, MapError, PageTable, Perms, Translation,
    DESC_ADDR, DESC_TABLE, DESC_VALID,
};
pub use tlb::{Tlb, TlbEntry, TlbKey, TlbSnapshot};
