//! Sparse simulated physical memory.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Page size (4 KiB granule throughout the simulator).
pub const PAGE_SIZE: u64 = 4096;

/// Multiply-shift hasher for page indices.
///
/// Page numbers are small, dense integers; SipHash (the `HashMap`
/// default) costs more than the lookup it protects, and its DoS
/// resistance buys nothing here. Map iteration order is never observed
/// (`resident_pages` only counts), so the hasher cannot affect any
/// simulated result.
#[derive(Debug, Default)]
pub struct PageHasher(u64);

impl Hasher for PageHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u64(&mut self, v: u64) {
        // Fibonacci hashing: odd constant ≈ 2^64 / φ spreads
        // consecutive page numbers across the high bits.
        self.0 = (self.0 ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

type Page = Box<[u8; PAGE_SIZE as usize]>;
type PageMap = HashMap<u64, Page, BuildHasherDefault<PageHasher>>;

/// Copy-on-write undo log for one outstanding snapshot window.
///
/// Maps page index to the page's content when the snapshot was taken
/// (`None` when the page was not resident). Only first-touch writes pay
/// the clone; restore replays the log, so its cost is proportional to the
/// pages dirtied since the snapshot, not to total memory size.
#[derive(Debug, Default)]
struct UndoLog {
    saved: HashMap<u64, Option<Page>, BuildHasherDefault<PageHasher>>,
}

/// Sparse physical memory: pages materialise on first write.
///
/// Reads of never-written memory return zeroes, like fresh DRAM behind a
/// zeroing allocator. A configurable size bound catches wild addresses
/// early (a store at 2^60 is a simulator bug, not a feature).
///
/// An optional snapshot window ([`PhysMem::begin_snapshot`]) records the
/// pre-image of every page touched after it opens; [`PhysMem::restore_snapshot`]
/// rewinds memory to the snapshot point in time proportional to the dirty
/// set. With no window open every write path skips the log behind a single
/// `Option` check, so measurement runs are unaffected.
#[derive(Debug, Default)]
pub struct PhysMem {
    pages: PageMap,
    limit: u64,
    undo: Option<UndoLog>,
}

impl PhysMem {
    /// Creates memory addressable up to `limit` bytes.
    pub fn new(limit: u64) -> Self {
        Self {
            pages: PageMap::default(),
            limit,
            undo: None,
        }
    }

    /// Opens a copy-on-write snapshot window at the current contents.
    ///
    /// O(1): no pages are copied until they are written. Re-opening while
    /// a window is active discards the old window and re-baselines here.
    pub fn begin_snapshot(&mut self) {
        self.undo = Some(UndoLog::default());
    }

    /// True when a snapshot window is open.
    pub fn snapshot_active(&self) -> bool {
        self.undo.is_some()
    }

    /// Pages dirtied since the snapshot was taken.
    pub fn dirty_pages(&self) -> usize {
        self.undo.as_ref().map_or(0, |u| u.saved.len())
    }

    /// Rewinds memory to the state captured by [`Self::begin_snapshot`].
    ///
    /// Cost is proportional to the pages dirtied since the snapshot. The
    /// window stays open (with an empty dirty set), so the same snapshot
    /// can be restored repeatedly — the shape of a fuzzing loop.
    ///
    /// # Panics
    ///
    /// Panics if no snapshot window is open.
    pub fn restore_snapshot(&mut self) {
        let undo = self
            .undo
            .as_mut()
            .expect("restore_snapshot without begin_snapshot");
        for (idx, saved) in undo.saved.drain() {
            match saved {
                Some(page) => {
                    self.pages.insert(idx, page);
                }
                None => {
                    self.pages.remove(&idx);
                }
            }
        }
    }

    /// Closes the snapshot window without restoring; subsequent writes
    /// stop paying the copy-on-write check.
    pub fn end_snapshot(&mut self) {
        self.undo = None;
    }

    /// Records the pre-image of page `idx` on its first write inside the
    /// snapshot window. The common (no-window) case is one branch; the
    /// logging itself stays out of line so the write hot paths do not
    /// carry it.
    #[inline(always)]
    fn note_write(&mut self, idx: u64) {
        if self.undo.is_some() {
            self.note_write_slow(idx);
        }
    }

    #[cold]
    #[inline(never)]
    fn note_write_slow(&mut self, idx: u64) {
        if let Some(undo) = self.undo.as_mut() {
            if let std::collections::hash_map::Entry::Vacant(e) = undo.saved.entry(idx) {
                e.insert(self.pages.get(&idx).cloned());
            }
        }
    }

    /// The address limit.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Number of materialised pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn check(&self, pa: u64, len: u64) {
        assert!(
            pa.checked_add(len).is_some_and(|end| end <= self.limit),
            "physical access [{pa:#x}, +{len}) beyond limit {:#x}",
            self.limit
        );
    }

    /// Reads one byte.
    pub fn read_u8(&self, pa: u64) -> u8 {
        self.check(pa, 1);
        match self.pages.get(&(pa / PAGE_SIZE)) {
            Some(p) => p[(pa % PAGE_SIZE) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, pa: u64, v: u8) {
        self.check(pa, 1);
        self.note_write(pa / PAGE_SIZE);
        let page = self
            .pages
            .entry(pa / PAGE_SIZE)
            .or_insert_with(|| Box::new([0; PAGE_SIZE as usize]));
        page[(pa % PAGE_SIZE) as usize] = v;
    }

    /// Reads a little-endian u64 (may straddle pages).
    pub fn read_u64(&self, pa: u64) -> u64 {
        self.check(pa, 8);
        let off = (pa % PAGE_SIZE) as usize;
        if off <= PAGE_SIZE as usize - 8 {
            // Within one page (every aligned access): a single lookup
            // instead of eight.
            return match self.pages.get(&(pa / PAGE_SIZE)) {
                Some(p) => u64::from_le_bytes(p[off..off + 8].try_into().unwrap()),
                None => 0,
            };
        }
        let mut b = [0u8; 8];
        for (i, slot) in b.iter_mut().enumerate() {
            *slot = self.read_u8(pa + i as u64);
        }
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian u64.
    pub fn write_u64(&mut self, pa: u64, v: u64) {
        self.check(pa, 8);
        let off = (pa % PAGE_SIZE) as usize;
        if off <= PAGE_SIZE as usize - 8 {
            self.note_write(pa / PAGE_SIZE);
            let page = self
                .pages
                .entry(pa / PAGE_SIZE)
                .or_insert_with(|| Box::new([0; PAGE_SIZE as usize]));
            page[off..off + 8].copy_from_slice(&v.to_le_bytes());
            return;
        }
        for (i, byte) in v.to_le_bytes().into_iter().enumerate() {
            self.write_u8(pa + i as u64, byte);
        }
    }

    /// Copies `buf.len()` bytes out of memory.
    pub fn read_bytes(&self, pa: u64, buf: &mut [u8]) {
        for (i, slot) in buf.iter_mut().enumerate() {
            *slot = self.read_u8(pa + i as u64);
        }
    }

    /// Copies `buf` into memory.
    pub fn write_bytes(&mut self, pa: u64, buf: &[u8]) {
        for (i, byte) in buf.iter().enumerate() {
            self.write_u8(pa + i as u64, *byte);
        }
    }

    /// Zeroes a whole page.
    pub fn zero_page(&mut self, pa: u64) {
        assert_eq!(pa % PAGE_SIZE, 0, "zero_page needs page alignment");
        self.check(pa, PAGE_SIZE);
        self.note_write(pa / PAGE_SIZE);
        self.pages.remove(&(pa / PAGE_SIZE));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_memory_reads_zero() {
        let m = PhysMem::new(1 << 30);
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u64(0x1234), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn u64_round_trip() {
        let mut m = PhysMem::new(1 << 30);
        m.write_u64(0x1000, 0x0102_0304_0506_0708);
        assert_eq!(m.read_u64(0x1000), 0x0102_0304_0506_0708);
        assert_eq!(m.read_u8(0x1000), 0x08, "little endian");
    }

    #[test]
    fn cross_page_access_works() {
        let mut m = PhysMem::new(1 << 30);
        m.write_u64(PAGE_SIZE - 4, u64::MAX);
        assert_eq!(m.read_u64(PAGE_SIZE - 4), u64::MAX);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn byte_slices_round_trip() {
        let mut m = PhysMem::new(1 << 30);
        let data = [1u8, 2, 3, 4, 5];
        m.write_bytes(0x2000, &data);
        let mut out = [0u8; 5];
        m.read_bytes(0x2000, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn zero_page_clears_contents() {
        let mut m = PhysMem::new(1 << 30);
        m.write_u64(0x3000, 7);
        m.zero_page(0x3000);
        assert_eq!(m.read_u64(0x3000), 0);
    }

    #[test]
    #[should_panic(expected = "beyond limit")]
    fn out_of_range_write_panics() {
        let mut m = PhysMem::new(0x1000);
        m.write_u8(0x1000, 1);
    }

    #[test]
    fn snapshot_restore_rewinds_writes() {
        let mut m = PhysMem::new(1 << 30);
        m.write_u64(0x1000, 0xAAAA);
        m.begin_snapshot();
        m.write_u64(0x1000, 0xBBBB); // dirty an existing page
        m.write_u64(0x5000, 0xCCCC); // materialise a fresh page
        m.write_u8(0x5FFF, 7);
        assert_eq!(m.dirty_pages(), 2);
        m.restore_snapshot();
        assert_eq!(m.read_u64(0x1000), 0xAAAA);
        assert_eq!(m.read_u64(0x5000), 0);
        assert_eq!(m.resident_pages(), 1, "fresh page evaporates on restore");
    }

    #[test]
    fn snapshot_restores_repeatedly_from_same_baseline() {
        let mut m = PhysMem::new(1 << 30);
        m.write_u64(0x2000, 1);
        m.begin_snapshot();
        for round in 0..3u64 {
            m.write_u64(0x2000, 100 + round);
            m.write_u64(0x8000 + round * PAGE_SIZE, round);
            m.restore_snapshot();
            assert_eq!(m.read_u64(0x2000), 1, "round {round}");
            assert_eq!(m.dirty_pages(), 0);
        }
    }

    #[test]
    fn snapshot_tracks_zero_page_and_straddling_writes() {
        let mut m = PhysMem::new(1 << 30);
        m.write_u64(0x3000, 42);
        m.begin_snapshot();
        m.zero_page(0x3000);
        m.write_u64(2 * PAGE_SIZE - 4, u64::MAX); // straddles two pages
        assert_eq!(m.dirty_pages(), 3);
        m.restore_snapshot();
        assert_eq!(m.read_u64(0x3000), 42);
        assert_eq!(m.read_u64(2 * PAGE_SIZE - 4), 0);
    }

    #[test]
    fn end_snapshot_stops_tracking() {
        let mut m = PhysMem::new(1 << 30);
        m.begin_snapshot();
        assert!(m.snapshot_active());
        m.end_snapshot();
        assert!(!m.snapshot_active());
        m.write_u64(0x4000, 9);
        assert_eq!(m.dirty_pages(), 0);
    }

    #[test]
    #[should_panic(expected = "without begin_snapshot")]
    fn restore_without_snapshot_panics() {
        let mut m = PhysMem::new(1 << 30);
        m.restore_snapshot();
    }
}
