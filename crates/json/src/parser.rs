//! Recursive-descent JSON parser (strict enough for files we wrote).

use crate::JsonValue;

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What the parser expected to see.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document; trailing whitespace is allowed,
/// trailing garbage is not.
pub fn parse(input: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("end of input"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, expected: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: format!("expected {expected}"),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(&format!("'{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'n') if self.literal("null") => Ok(JsonValue::Null),
            Some(b't') if self.literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}')?;
            return Ok(JsonValue::Object(pairs));
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b']')?;
            return Ok(JsonValue::Array(items));
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("closing '\"'")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs don't occur in our own
                            // output; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("a valid \\u escape"))?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("a valid escape character")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("valid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("four hex digits")),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| ParseError {
                offset: start,
                message: format!("a number, got {text:?}"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-12.5e1").unwrap(), JsonValue::Number(-125.0));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\": 1} x").is_err());
    }

    #[test]
    fn rejects_unterminated_structures() {
        assert!(parse("[1, 2").is_err());
        assert!(parse("{\"a\": ").is_err());
        assert!(parse("\"abc").is_err());
    }

    #[test]
    fn reports_offsets() {
        let err = parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
    }

    #[test]
    fn unicode_escape_decodes() {
        assert_eq!(
            parse("\"\\u0041\\u00e9\"").unwrap(),
            JsonValue::String("Aé".to_string())
        );
    }
}
