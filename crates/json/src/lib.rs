//! Minimal JSON support for the persistent results cache.
//!
//! The workspace builds hermetically (no crates.io), so instead of
//! serde_json this crate provides just what the cache and report
//! binaries need: a [`JsonValue`] tree, a recursive-descent parser
//! ([`parse`]), and a pretty-printing writer ([`JsonValue::pretty`]).
//!
//! Numbers are kept as `f64` — cycle counts in this project fit well
//! inside the 2^53 exact-integer window, and trap rates are fractional
//! anyway. Object keys preserve insertion order via a Vec of pairs so
//! written files diff cleanly run-to-run.

use std::fmt::Write as _;

mod parser;

pub use parser::{parse, ParseError};

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object node.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The node as an f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The node as a u64, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The node as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The node's elements, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The node's pairs, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes on one line with no whitespace and no trailing
    /// newline — the JSONL form (`neve serve` streams one document per
    /// line, so embedded newlines are not an option).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => write_number(out, *n),
            JsonValue::String(s) => write_string(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => write_number(out, *n),
            JsonValue::String(s) => write_string(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> Self {
        JsonValue::Number(n)
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::Number(n as f64)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::String(s)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    assert!(n.is_finite(), "JSON cannot represent NaN/inf");
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_structure() {
        let doc = JsonValue::Object(vec![
            ("name".into(), JsonValue::from("vhe")),
            ("cycles".into(), JsonValue::from(2526u64)),
            ("traps".into(), JsonValue::from(2.5f64)),
            (
                "kinds".into(),
                JsonValue::Array(vec![JsonValue::from("wfi"), JsonValue::from("hvc")]),
            ),
            ("flag".into(), JsonValue::Bool(true)),
            ("none".into(), JsonValue::Null),
        ]);
        let text = doc.pretty();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn integral_numbers_print_without_decimal_point() {
        assert_eq!(JsonValue::from(42u64).pretty(), "42\n");
        assert_eq!(JsonValue::from(2.5f64).pretty(), "2.5\n");
    }

    #[test]
    fn accessors_navigate_the_tree() {
        let doc = parse(r#"{"a": {"b": [1, 2.5, "x"]}}"#).unwrap();
        let arr = doc.get("a").unwrap().get("b").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[1].as_u64(), None);
        assert_eq!(arr[2].as_str(), Some("x"));
    }

    #[test]
    fn string_escapes_survive_round_trip() {
        let doc = JsonValue::from("line1\nline2\t\"quoted\"\\end");
        assert_eq!(parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn object_key_order_is_preserved() {
        let text = "{\"z\": 1,\n\"a\": 2}";
        let doc = parse(text).unwrap();
        let keys: Vec<_> = doc
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }
}
