//! ARM generic timer model.
//!
//! Models the four timers the NEVE workloads touch:
//!
//! - the **EL1 virtual timer** (`CNTV_*`, PPI 27) — what guest OSes use;
//!   its counter reads `CNTVCT = CNTPCT - CNTVOFF_EL2`, letting the
//!   hypervisor hide stolen time,
//! - the **EL1 physical timer** (`CNTP_*`, PPI 30),
//! - the **EL2 physical (hypervisor) timer** (`CNTHP_*`, PPI 26), and
//! - the **EL2 virtual timer** (`CNTHV_*`, PPI 28) — *added by VHE*. The
//!   paper (Section 7.1) attributes extra traps of VHE guest hypervisors
//!   to this timer: a VHE hypervisor programs "its" EL2 virtual timer
//!   with EL1 access instructions that the host must emulate, and its
//!   nested VM's EL1 virtual timer with `*_EL02` instructions that always
//!   trap.
//!
//! Time is the machine's cycle counter; callers pass `now` explicitly so
//! the crate stays decoupled from the cycle-accounting crate.

use neve_sysreg::SysReg;

/// PPI INTID of the EL1 virtual timer.
pub const PPI_VTIMER: u32 = 27;
/// PPI INTID of the EL1 physical timer.
pub const PPI_PTIMER: u32 = 30;
/// PPI INTID of the EL2 physical (hypervisor) timer.
pub const PPI_HPTIMER: u32 = 26;
/// PPI INTID of the EL2 virtual timer (VHE).
pub const PPI_HVTIMER: u32 = 28;

/// `CNT*_CTL` enable bit.
pub const CTL_ENABLE: u64 = 1 << 0;
/// `CNT*_CTL` interrupt mask bit.
pub const CTL_IMASK: u64 = 1 << 1;
/// `CNT*_CTL` interrupt status bit (read-only).
pub const CTL_ISTATUS: u64 = 1 << 2;

/// One programmable timer (control + compare value).
#[derive(Debug, Clone, Copy, Default)]
struct Timer {
    ctl: u64,
    cval: u64,
}

impl Timer {
    /// True when the timer output line is asserted at `count`.
    fn firing(self, count: u64) -> bool {
        self.ctl & CTL_ENABLE != 0 && self.ctl & CTL_IMASK == 0 && count >= self.cval
    }

    fn read_ctl(self, count: u64) -> u64 {
        let mut v = self.ctl & (CTL_ENABLE | CTL_IMASK);
        if self.ctl & CTL_ENABLE != 0 && count >= self.cval {
            v |= CTL_ISTATUS;
        }
        v
    }
}

/// The asserted timer lines of one CPU at one instant: at most the four
/// modelled PPIs, held inline and yielded in assertion order.
#[derive(Debug, Clone, Copy, Default)]
pub struct Firing {
    ppis: [u32; 4],
    len: u8,
    next: u8,
}

impl Firing {
    fn push(&mut self, ppi: u32) {
        self.ppis[self.len as usize] = ppi;
        self.len += 1;
    }

    /// Number of lines not yet yielded.
    pub fn len(&self) -> usize {
        (self.len - self.next) as usize
    }

    /// True when no line remains to yield.
    pub fn is_empty(&self) -> bool {
        self.next == self.len
    }
}

impl Iterator for Firing {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.next == self.len {
            return None;
        }
        let ppi = self.ppis[self.next as usize];
        self.next += 1;
        Some(ppi)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.len(), Some(self.len()))
    }
}

impl ExactSizeIterator for Firing {}

/// Per-CPU timer bank.
#[derive(Debug, Clone, Copy, Default)]
struct CpuTimers {
    cntvoff: u64,
    vtimer: Timer,
    ptimer: Timer,
    hptimer: Timer,
    hvtimer: Timer,
    cnthctl: u64,
}

/// All timers of a machine.
#[derive(Debug)]
pub struct Timers {
    cpus: Vec<CpuTimers>,
    /// Bumped on every mutation; see [`Timers::epoch`].
    epoch: u64,
    /// Per-CPU mutation epochs; see [`Timers::epoch_of`].
    epochs: Vec<u64>,
}

impl Clone for Timers {
    fn clone(&self) -> Self {
        Self {
            cpus: self.cpus.clone(),
            epoch: self.epoch,
            epochs: self.epochs.clone(),
        }
    }

    /// Allocation-free when shapes match (they always do between a
    /// machine and its own snapshot); machine restore runs this per
    /// fuzz case.
    fn clone_from(&mut self, source: &Self) {
        if self.cpus.len() == source.cpus.len() {
            self.cpus.copy_from_slice(&source.cpus);
        } else {
            self.cpus.clone_from(&source.cpus);
        }
        self.epoch = source.epoch;
        if self.epochs.len() == source.epochs.len() {
            self.epochs.copy_from_slice(&source.epochs);
        } else {
            self.epochs.clone_from(&source.epochs);
        }
    }
}

impl Timers {
    /// Creates timer banks for `ncpus` CPUs.
    pub fn new(ncpus: usize) -> Self {
        Self {
            cpus: vec![CpuTimers::default(); ncpus],
            epoch: 0,
            epochs: vec![0; ncpus],
        }
    }

    /// Mutation epoch: increases on every [`Timers::write`]. Callers
    /// that cache a fact derived from timer state (e.g. "no timer can
    /// fire before count X") must revalidate when the epoch moves.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Per-CPU mutation epoch: increases only on writes to `cpu`'s own
    /// timer bank. Timer banks are fully independent, so a cached fact
    /// about `cpu`'s timers (e.g. a parked core's wake deadline) stays
    /// valid while this value holds still — even as other CPUs churn
    /// their banks on every world switch.
    #[inline]
    pub fn epoch_of(&self, cpu: usize) -> u64 {
        self.epochs[cpu]
    }

    /// Reads a timer system register on `cpu` with the physical counter
    /// at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not a timer register this crate owns.
    pub fn read(&self, cpu: usize, reg: SysReg, now: u64) -> u64 {
        let t = &self.cpus[cpu];
        match reg {
            SysReg::CntvoffEl2 => t.cntvoff,
            SysReg::CnthctlEl2 => t.cnthctl,
            SysReg::CntvCtlEl0 => t.vtimer.read_ctl(now.wrapping_sub(t.cntvoff)),
            SysReg::CntvCvalEl0 => t.vtimer.cval,
            SysReg::CntpCtlEl0 => t.ptimer.read_ctl(now),
            SysReg::CntpCvalEl0 => t.ptimer.cval,
            SysReg::CnthpCtlEl2 => t.hptimer.read_ctl(now),
            SysReg::CnthpCvalEl2 => t.hptimer.cval,
            SysReg::CnthvCtlEl2 => t.hvtimer.read_ctl(now.wrapping_sub(t.cntvoff)),
            SysReg::CnthvCvalEl2 => t.hvtimer.cval,
            other => panic!("{other} is not a timer register"),
        }
    }

    /// Writes a timer system register.
    pub fn write(&mut self, cpu: usize, reg: SysReg, value: u64) {
        self.epoch += 1;
        self.epochs[cpu] += 1;
        let t = &mut self.cpus[cpu];
        match reg {
            SysReg::CntvoffEl2 => t.cntvoff = value,
            SysReg::CnthctlEl2 => t.cnthctl = value,
            SysReg::CntvCtlEl0 => t.vtimer.ctl = value & (CTL_ENABLE | CTL_IMASK),
            SysReg::CntvCvalEl0 => t.vtimer.cval = value,
            SysReg::CntpCtlEl0 => t.ptimer.ctl = value & (CTL_ENABLE | CTL_IMASK),
            SysReg::CntpCvalEl0 => t.ptimer.cval = value,
            SysReg::CnthpCtlEl2 => t.hptimer.ctl = value & (CTL_ENABLE | CTL_IMASK),
            SysReg::CnthpCvalEl2 => t.hptimer.cval = value,
            SysReg::CnthvCtlEl2 => t.hvtimer.ctl = value & (CTL_ENABLE | CTL_IMASK),
            SysReg::CnthvCvalEl2 => t.hvtimer.cval = value,
            other => panic!("{other} is not a timer register"),
        }
    }

    /// Virtual counter value for `cpu` (`CNTVCT_EL0`).
    pub fn cntvct(&self, cpu: usize, now: u64) -> u64 {
        now.wrapping_sub(self.cpus[cpu].cntvoff)
    }

    /// PPIs whose timer lines are asserted on `cpu` at `now`, in fixed
    /// order (virtual, physical, hyp-physical, hyp-virtual). Runs before
    /// every interpreter step, so the result is a small by-value
    /// iterator rather than a heap allocation.
    #[inline]
    pub fn firing(&self, cpu: usize, now: u64) -> Firing {
        let t = &self.cpus[cpu];
        let vcount = now.wrapping_sub(t.cntvoff);
        let mut out = Firing::default();
        if t.vtimer.firing(vcount) {
            out.push(PPI_VTIMER);
        }
        if t.ptimer.firing(now) {
            out.push(PPI_PTIMER);
        }
        if t.hptimer.firing(now) {
            out.push(PPI_HPTIMER);
        }
        if t.hvtimer.firing(vcount) {
            out.push(PPI_HVTIMER);
        }
        out
    }

    /// Earliest physical-counter value at which any enabled, unmasked
    /// timer line of `cpu` is — or may be — asserted, given the counter
    /// currently reads `now`.
    ///
    /// Guarantee: for any count `c` with `now <= c <
    /// next_fire_at(cpu, now)`, and provided no [`Timers::write`]
    /// happens in between (watch [`Timers::epoch`]), `firing(cpu, c)`
    /// is empty. The bound is conservative: a line asserted at `now`,
    /// or any wrap/overflow ambiguity in the virtual-offset domain,
    /// yields `now` (callers then cannot skip anything). With no
    /// deliverable timer armed the bound is `u64::MAX`.
    #[inline]
    pub fn next_fire_at(&self, cpu: usize, now: u64) -> u64 {
        let t = &self.cpus[cpu];
        let mut until = u64::MAX;
        for (timer, virt) in [
            (t.vtimer, true),
            (t.ptimer, false),
            (t.hptimer, false),
            (t.hvtimer, true),
        ] {
            if timer.ctl & CTL_ENABLE == 0 || timer.ctl & CTL_IMASK != 0 {
                continue;
            }
            let deadline = if virt {
                // The virtual count is `now - cntvoff` mod 2^64; the
                // line asserts when it reaches `cval`, i.e. at physical
                // `cval + cntvoff` — unless that sum wraps or the
                // (possibly wrapped) virtual count already passed cval,
                // in which case be conservative.
                let vcount = now.wrapping_sub(t.cntvoff);
                if vcount >= timer.cval {
                    now
                } else {
                    timer.cval.checked_add(t.cntvoff).unwrap_or(now)
                }
            } else {
                timer.cval
            };
            until = until.min(deadline);
        }
        until
    }

    /// True if `reg` belongs to this crate.
    pub fn owns(reg: SysReg) -> bool {
        matches!(
            reg,
            SysReg::CntvoffEl2
                | SysReg::CnthctlEl2
                | SysReg::CntvCtlEl0
                | SysReg::CntvCvalEl0
                | SysReg::CntpCtlEl0
                | SysReg::CntpCvalEl0
                | SysReg::CnthpCtlEl2
                | SysReg::CnthpCvalEl2
                | SysReg::CnthvCtlEl2
                | SysReg::CnthvCvalEl2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_counter_subtracts_offset() {
        let mut t = Timers::new(1);
        t.write(0, SysReg::CntvoffEl2, 1000);
        assert_eq!(t.cntvct(0, 5000), 4000);
    }

    #[test]
    fn enabled_timer_fires_at_cval() {
        let mut t = Timers::new(1);
        t.write(0, SysReg::CntvCvalEl0, 2000);
        t.write(0, SysReg::CntvCtlEl0, CTL_ENABLE);
        assert!(t.firing(0, 1999).is_empty());
        assert_eq!(t.firing(0, 2000).collect::<Vec<_>>(), vec![PPI_VTIMER]);
    }

    #[test]
    fn masked_timer_does_not_fire_but_reports_istatus() {
        let mut t = Timers::new(1);
        t.write(0, SysReg::CntpCvalEl0, 100);
        t.write(0, SysReg::CntpCtlEl0, CTL_ENABLE | CTL_IMASK);
        assert!(t.firing(0, 500).is_empty());
        let ctl = t.read(0, SysReg::CntpCtlEl0, 500);
        assert!(ctl & CTL_ISTATUS != 0);
    }

    #[test]
    fn virtual_timer_honours_cntvoff() {
        let mut t = Timers::new(1);
        t.write(0, SysReg::CntvoffEl2, 10_000);
        t.write(0, SysReg::CntvCvalEl0, 500);
        t.write(0, SysReg::CntvCtlEl0, CTL_ENABLE);
        // Physical 10_400 => virtual 400 < 500: silent.
        assert!(t.firing(0, 10_400).is_empty());
        assert_eq!(t.firing(0, 10_500).collect::<Vec<_>>(), vec![PPI_VTIMER]);
    }

    #[test]
    fn hypervisor_timers_use_physical_and_virtual_counts() {
        let mut t = Timers::new(1);
        t.write(0, SysReg::CntvoffEl2, 1_000);
        t.write(0, SysReg::CnthpCvalEl2, 500);
        t.write(0, SysReg::CnthpCtlEl2, CTL_ENABLE);
        t.write(0, SysReg::CnthvCvalEl2, 500);
        t.write(0, SysReg::CnthvCtlEl2, CTL_ENABLE);
        // At physical 600: hp fires (600 >= 500) but hv sees virtual
        // 600-1000 (wrapped, huge) — wrapping makes it fire too; use a
        // later offset-free check instead for hv.
        let mut f = t.firing(0, 600);
        assert!(f.any(|p| p == PPI_HPTIMER));
    }

    #[test]
    fn ctl_istatus_imask_at_cval_boundary() {
        // Regression for the iterator rewrite of `firing`: the line
        // asserts exactly at count == cval, and IMASK suppresses the
        // line without hiding ISTATUS in `read_ctl` at that boundary.
        let mut t = Timers::new(1);
        t.write(0, SysReg::CntpCvalEl0, 100);
        t.write(0, SysReg::CntpCtlEl0, CTL_ENABLE);
        assert!(t.firing(0, 99).is_empty());
        assert_eq!(t.read(0, SysReg::CntpCtlEl0, 99) & CTL_ISTATUS, 0);
        let at_cval = t.firing(0, 100);
        assert_eq!(at_cval.len(), 1);
        assert_eq!(at_cval.collect::<Vec<_>>(), vec![PPI_PTIMER]);
        assert_ne!(t.read(0, SysReg::CntpCtlEl0, 100) & CTL_ISTATUS, 0);

        t.write(0, SysReg::CntpCtlEl0, CTL_ENABLE | CTL_IMASK);
        assert!(t.firing(0, 100).is_empty());
        let ctl = t.read(0, SysReg::CntpCtlEl0, 100);
        assert_ne!(ctl & CTL_ISTATUS, 0, "mask must not hide status");
        assert_ne!(ctl & CTL_IMASK, 0);
    }

    #[test]
    fn istatus_requires_enable() {
        let mut t = Timers::new(1);
        t.write(0, SysReg::CntvCvalEl0, 0);
        assert_eq!(t.read(0, SysReg::CntvCtlEl0, 100) & CTL_ISTATUS, 0);
    }

    #[test]
    fn per_cpu_banks_are_independent() {
        let mut t = Timers::new(2);
        t.write(0, SysReg::CntvCtlEl0, CTL_ENABLE);
        assert_eq!(t.read(1, SysReg::CntvCtlEl0, 0) & CTL_ENABLE, 0);
    }

    #[test]
    fn ownership_predicate() {
        assert!(Timers::owns(SysReg::CntvCtlEl0));
        assert!(Timers::owns(SysReg::CnthvCvalEl2));
        assert!(!Timers::owns(SysReg::CntfrqEl0));
        assert!(!Timers::owns(SysReg::HcrEl2));
    }

    #[test]
    #[should_panic(expected = "not a timer register")]
    fn reading_non_timer_register_panics() {
        Timers::new(1).read(0, SysReg::HcrEl2, 0);
    }

    #[test]
    fn per_cpu_epoch_moves_only_for_the_written_bank() {
        let mut t = Timers::new(2);
        let (e0, e1) = (t.epoch_of(0), t.epoch_of(1));
        t.write(0, SysReg::CntvCvalEl0, 100);
        assert!(t.epoch_of(0) > e0);
        assert_eq!(t.epoch_of(1), e1, "cpu 1's bank untouched");
    }

    #[test]
    fn epoch_moves_on_every_write() {
        let mut t = Timers::new(1);
        let e0 = t.epoch();
        t.write(0, SysReg::CntvCvalEl0, 100);
        assert!(t.epoch() > e0);
        let e1 = t.epoch();
        t.write(0, SysReg::CntvCvalEl0, 100); // same value still counts
        assert!(t.epoch() > e1);
    }

    #[test]
    fn next_fire_at_bounds_the_quiet_window() {
        let mut t = Timers::new(1);
        assert_eq!(t.next_fire_at(0, 0), u64::MAX, "nothing armed");
        t.write(0, SysReg::CntpCvalEl0, 2_000);
        t.write(0, SysReg::CntpCtlEl0, CTL_ENABLE);
        assert_eq!(t.next_fire_at(0, 100), 2_000);
        // The guarantee: no count below the bound fires.
        for c in [100, 1_000, 1_999] {
            assert!(t.firing(0, c).is_empty(), "count {c}");
        }
        assert!(!t.firing(0, 2_000).is_empty());
        // Already asserted: the bound collapses to `now`.
        assert_eq!(t.next_fire_at(0, 2_500), 2_000);
        assert!(t.next_fire_at(0, 2_500) <= 2_500);
    }

    #[test]
    fn next_fire_at_masked_and_disabled_timers_never_bound() {
        let mut t = Timers::new(1);
        t.write(0, SysReg::CntpCvalEl0, 50);
        t.write(0, SysReg::CntpCtlEl0, CTL_ENABLE | CTL_IMASK);
        assert_eq!(t.next_fire_at(0, 100), u64::MAX);
    }

    #[test]
    fn next_fire_at_virtual_offset_domain() {
        let mut t = Timers::new(1);
        t.write(0, SysReg::CntvoffEl2, 10_000);
        t.write(0, SysReg::CntvCvalEl0, 500);
        t.write(0, SysReg::CntvCtlEl0, CTL_ENABLE);
        // Fires at physical 10_500 (virtual 500).
        assert_eq!(t.next_fire_at(0, 10_100), 10_500);
        assert!(t.firing(0, 10_499).is_empty());
        assert!(!t.firing(0, 10_500).is_empty());
        // Physical counter below the offset: the wrapped virtual count
        // is huge, so the timer is asserted and the bound is `now`.
        assert_eq!(t.next_fire_at(0, 100), 100);
        // Overflowing cval+cntvoff degrades to `now`, never to a bogus
        // future bound.
        t.write(0, SysReg::CntvoffEl2, u64::MAX - 10);
        t.write(0, SysReg::CntvCvalEl0, u64::MAX - 5);
        let now = 20u64; // vcount = 20 - (2^64-11) = 31 < cval
        assert_eq!(t.next_fire_at(0, now), now);
    }
}
