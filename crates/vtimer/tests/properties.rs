//! Property tests on timer semantics.

use neve_sysreg::SysReg;
use neve_vtimer::{Timers, CTL_ENABLE, CTL_IMASK, CTL_ISTATUS, PPI_VTIMER};
use proptest::prelude::*;

proptest! {
    /// A virtual timer fires exactly when enabled, unmasked, and the
    /// (offset-adjusted) count has reached the compare value.
    #[test]
    fn prop_firing_condition(
        cval in 0u64..1_000_000,
        off in 0u64..1_000_000,
        now in 0u64..2_000_000,
        enable: bool,
        mask: bool,
    ) {
        let mut t = Timers::new(1);
        t.write(0, SysReg::CntvoffEl2, off);
        t.write(0, SysReg::CntvCvalEl0, cval);
        let ctl = if enable { CTL_ENABLE } else { 0 } | if mask { CTL_IMASK } else { 0 };
        t.write(0, SysReg::CntvCtlEl0, ctl);
        let vcount = now.wrapping_sub(off);
        let should_fire = enable && !mask && vcount >= cval && vcount < (1 << 60);
        let fires = t.firing(0, now).any(|p| p == PPI_VTIMER);
        // Wrapped (negative) virtual counts are excluded from the claim.
        if vcount < (1 << 60) {
            prop_assert_eq!(fires, should_fire);
        }
        // ISTATUS tracks the condition regardless of the mask.
        let istatus = t.read(0, SysReg::CntvCtlEl0, now) & CTL_ISTATUS != 0;
        if vcount < (1 << 60) {
            prop_assert_eq!(istatus, enable && vcount >= cval);
        }
    }

    /// Register writes round-trip (control bits masked to writable ones).
    #[test]
    fn prop_written_cval_reads_back(cval: u64, off: u64) {
        let mut t = Timers::new(2);
        t.write(1, SysReg::CntvCvalEl0, cval);
        t.write(1, SysReg::CntvoffEl2, off);
        prop_assert_eq!(t.read(1, SysReg::CntvCvalEl0, 0), cval);
        prop_assert_eq!(t.read(1, SysReg::CntvoffEl2, 0), off);
        // The other bank is untouched.
        prop_assert_eq!(t.read(0, SysReg::CntvCvalEl0, 0), 0);
    }
}
