//! x86 test bed: VM and nested-VM microbenchmark configurations.

use crate::guesthyp;
use crate::isa::{X86Asm, X86Instr, X86Program};
use crate::machine::{X86Ctx, X86Machine, X86MachineConfig, X86Step, GPR_SLOTS};
use crate::vmcs::VmcsField;
use neve_cycles::counter::{Delta, Measured, PerOp};
use neve_cycles::{FaultCause, Phase, SimFault};

/// Payload image base (single-level VM or nested VM).
pub const PAYLOAD_BASE: u64 = 0x10_000;
/// Shared flag address for the IPI pair.
pub const IPI_FLAG: u64 = 0x20_0000;
/// Payload halt code.
pub const DONE: u16 = 0xd07e;

/// x86 configuration (the Table 1/6 x86 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum X86Config {
    /// Single-level VM on KVM x86.
    Vm,
    /// Nested VM on KVM-on-KVM (Turtles), with or without VMCS
    /// shadowing (the Section 8 ablation; the paper's numbers have it
    /// on).
    Nested {
        /// VMCS shadowing enabled.
        shadowing: bool,
    },
}

/// Microbenchmark (same four as the ARM side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum X86Bench {
    /// `vmcall` round trip.
    Hypercall,
    /// Emulated-device read.
    DeviceIo,
    /// Cross-vCPU IPI.
    VirtualIpi,
    /// APICv virtual EOI (no exit).
    VirtualEoi,
}

impl X86Bench {
    fn ncpus(self) -> usize {
        match self {
            X86Bench::VirtualIpi => 2,
            _ => 1,
        }
    }
}

/// Warm-up iterations excluded from measurement.
const WARMUP: u64 = 8;

/// Default run-loop watchdog for the x86 side.
pub const DEFAULT_STEP_BUDGET: u64 = 50_000_000;

/// The assembled x86 stack.
pub struct X86TestBed {
    /// The machine (the L0 hypervisor is built in).
    pub m: X86Machine,
    bench: X86Bench,
    step_budget: u64,
}

fn payload(bench: X86Bench, base: u64, iters: u64, cpu: usize) -> X86Program {
    let mut a = X86Asm::new(base);
    match (bench, cpu) {
        (X86Bench::Hypercall, _) => {
            a.i(X86Instr::MovImm(10, iters));
            let top = a.label();
            a.bind(top);
            a.i(X86Instr::Vmcall);
            a.i(X86Instr::SubImm(10, 1));
            a.jnz(10, top);
            a.i(X86Instr::Halt(DONE));
        }
        (X86Bench::DeviceIo, _) => {
            a.i(X86Instr::MovImm(10, iters));
            let top = a.label();
            a.bind(top);
            a.i(X86Instr::MmioRead(2));
            a.i(X86Instr::SubImm(10, 1));
            a.jnz(10, top);
            a.i(X86Instr::Halt(DONE));
        }
        (X86Bench::VirtualIpi, 0) => {
            // Sender: IPI to CPU 1, spin on the shared counter.
            a.i(X86Instr::MovImm(10, iters));
            a.i(X86Instr::MovImm(11, 0));
            let top = a.label();
            let wait = a.label();
            a.bind(top);
            a.i(X86Instr::AddImm(11, 1));
            a.i(X86Instr::MovImm(0, 1 | (0x40 << 8)));
            a.i(X86Instr::SendIpi(0));
            a.bind(wait);
            a.i(X86Instr::Load(2, IPI_FLAG));
            a.i(X86Instr::Sub(2, 11));
            a.jnz(2, wait);
            a.i(X86Instr::SubImm(10, 1));
            a.jnz(10, top);
            a.i(X86Instr::Halt(DONE));
        }
        (X86Bench::VirtualIpi, _) => {
            // Receiver body: spin; the handler lives at base + 0x100.
            let spin = a.label();
            a.bind(spin);
            a.i(X86Instr::Jmp(base));
        }
        (X86Bench::VirtualEoi, _) => {
            a.i(X86Instr::MovImm(10, iters));
            let top = a.label();
            a.bind(top);
            a.i(X86Instr::ApicEoi);
            a.i(X86Instr::SubImm(10, 1));
            a.jnz(10, top);
            a.i(X86Instr::Halt(DONE));
        }
    }
    a.assemble()
}

/// The IPI receiver's interrupt handler.
fn ipi_handler(base: u64) -> X86Program {
    let mut a = X86Asm::new(base);
    a.i(X86Instr::Load(4, IPI_FLAG));
    a.i(X86Instr::AddImm(4, 1));
    a.i(X86Instr::Store(4, IPI_FLAG));
    a.i(X86Instr::ApicEoi);
    a.i(X86Instr::Iret);
    a.assemble()
}

impl X86TestBed {
    /// Builds the stack for `cfg` running `bench`.
    pub fn new(cfg: X86Config, bench: X86Bench, iters: u64) -> Self {
        let ncpus = bench.ncpus();
        let (nested, shadowing) = match cfg {
            X86Config::Vm => (false, true),
            X86Config::Nested { shadowing } => (true, shadowing),
        };
        let mut m = X86Machine::new(X86MachineConfig {
            ncpus,
            vmcs_shadowing: shadowing,
            nested,
            cost: Default::default(),
        });
        let total = iters + WARMUP;
        for cpu in 0..ncpus {
            let base = PAYLOAD_BASE + cpu as u64 * 0x1000;
            m.load(payload(bench, base, total, cpu));
            if bench == X86Bench::VirtualIpi && cpu == 1 {
                m.load(ipi_handler(base + 0x100));
                m.core_mut(cpu).handler_base = base + 0x100;
                m.core_mut(cpu).irq_enabled = true;
            }
            if nested {
                let gh = guesthyp::build(cpu);
                let gh_entry = gh.base;
                m.load(gh);
                // The guest hypervisor "booted": its vmcs12 knows its
                // exit-handler entry and the nested VM's state; the
                // parked L2 GPRs start zeroed.
                m.vmcs12[cpu].write(VmcsField::HostRip, gh_entry);
                m.vmcs12[cpu].write(VmcsField::GuestRip, base);
                m.vmcs12[cpu].write(VmcsField::ProcCtls, 1);
                for i in 0..crate::isa::NUM_GPRS {
                    m.mem_write(GPR_SLOTS + cpu as u64 * 0x100 + i as u64 * 8, 0);
                }
                // Start inside the guest hypervisor's resume path by
                // entering L2 through a real nested entry: point the
                // guest hypervisor at its handler with a synthetic
                // hypercall exit... simpler: start in L2 directly with
                // vmcs02 merged once.
                m.vmcs02[cpu].write(VmcsField::GuestRip, base);
                m.ctx[cpu] = X86Ctx::L2;
                m.core_mut(cpu).rip = base;
                if bench == X86Bench::VirtualIpi && cpu == 1 {
                    m.core_mut(cpu).irq_enabled = true;
                }
            } else {
                m.ctx[cpu] = X86Ctx::L1;
                m.core_mut(cpu).rip = base;
            }
        }
        Self {
            m,
            bench,
            step_budget: DEFAULT_STEP_BUDGET,
        }
    }

    /// Overrides the run-loop watchdog (clamped to at least 1 step).
    pub fn set_step_budget(&mut self, budget: u64) -> &mut Self {
        self.step_budget = budget.max(1);
        self
    }

    /// Builds a [`SimFault`] with the cpu0 diagnostic snapshot. The x86
    /// machine has no EL or trace ring; context is encoded in `el` as
    /// the virtualization depth (0 = L0 root, 1 = L1, 2 = L2).
    fn fault(&self, cause: FaultCause, steps: u64) -> SimFault {
        let depth = match self.m.ctx[0] {
            X86Ctx::L1 | X86Ctx::GhL1 => 1,
            X86Ctx::L2 => 2,
        };
        SimFault {
            cause,
            pc: self.m.core(0).rip,
            el: depth,
            phase: Phase::Guest,
            steps,
            recent_events: Vec::new(),
        }
    }

    /// Runs to completion, measuring after warm-up. Returns
    /// per-operation averages.
    ///
    /// # Panics
    ///
    /// Panics if a payload crashes or stalls.
    pub fn run(&mut self, iters: u64) -> PerOp {
        self.run_measured(iters).per_op
    }

    /// Like [`X86TestBed::run`] but also reports the measured region's
    /// trap breakdown by exit reason (Table 7 observability).
    ///
    /// # Panics
    ///
    /// Panics if a payload crashes or stalls (use
    /// [`X86TestBed::try_run_measured`] for a structured error).
    pub fn run_measured(&mut self, iters: u64) -> Measured {
        self.try_run_measured(iters)
            .unwrap_or_else(|f| panic!("{f}"))
    }

    /// Fallible [`X86TestBed::run_measured`] under the step-budget
    /// watchdog.
    ///
    /// # Errors
    ///
    /// A [`SimFault`] describing the crash, stall, or measurement
    /// shortfall.
    pub fn try_run_measured(&mut self, iters: u64) -> Result<Measured, SimFault> {
        // Revalidate the flat cost table once per run so the per-step
        // fast path never re-matches the model (see the ARM testbed).
        self.m.refresh_cost_table();
        let (delta, n) = if self.bench == X86Bench::VirtualEoi {
            self.run_eoi(iters)?
        } else {
            self.run_main(iters)?
        };
        Ok(delta.measured(n))
    }

    fn run_main(&mut self, iters: u64) -> Result<(Delta, u64), SimFault> {
        let budget = self.step_budget;
        let multi = self.bench == X86Bench::VirtualIpi;
        let mut snap = None;
        let mut steps = 0u64;
        // Runnable mask: a receiver that halted cleanly leaves the
        // round instead of being re-stepped (and re-matched) forever.
        let mut receiver_done = false;
        loop {
            let out = self.m.step(0);
            if multi && !receiver_done {
                for _ in 0..4 {
                    let r = self.m.step(1);
                    match r {
                        X86Step::Executed => {}
                        X86Step::Halted(c) if c == DONE => {
                            receiver_done = true;
                            break;
                        }
                        _ => {
                            return Err(self.fault(
                                FaultCause::UnexpectedStop {
                                    detail: format!("receiver stopped: {r:?}"),
                                },
                                steps,
                            ));
                        }
                    }
                }
            }
            steps += 1;
            if steps >= budget {
                return Err(self.fault(FaultCause::StepBudgetExhausted { budget }, steps));
            }
            match out {
                X86Step::Executed => {}
                X86Step::Halted(c) if c == DONE => break,
                X86Step::Halted(c) => {
                    return Err(self.fault(FaultCause::PayloadCrash { code: c }, steps));
                }
                X86Step::FetchFailure(rip) => {
                    return Err(self.fault(
                        FaultCause::UnexpectedStop {
                            detail: format!("fetch failure at {rip:#x}"),
                        },
                        steps,
                    ));
                }
            }
            if snap.is_none() && self.payload_counter() == iters {
                snap = Some(self.m.counter.snapshot());
            }
        }
        let Some(snap) = snap else {
            return Err(self.fault(FaultCause::MissedSnapshot, steps));
        };
        Ok((self.m.counter.delta_since(&snap), iters))
    }

    /// The payload's iteration counter (register 10), live or parked.
    fn payload_counter(&self) -> u64 {
        match self.m.ctx[0] {
            X86Ctx::GhL1 => self.m.mem_read(GPR_SLOTS + 10 * 8),
            _ => self.m.core(0).gprs[10],
        }
    }

    /// EOI: measure only the `ApicEoi` instruction.
    fn run_eoi(&mut self, iters: u64) -> Result<(Delta, u64), SimFault> {
        let budget = self.step_budget;
        let mut measured = Delta::default();
        let mut done = 0u64;
        let mut steps = 0u64;
        loop {
            let rip = self.m.core(0).rip;
            let at_eoi = matches!(self.peek(rip), Some(X86Instr::ApicEoi));
            let snapped = at_eoi.then(|| self.m.counter.snapshot());
            let out = self.m.step(0);
            steps += 1;
            if steps >= budget {
                return Err(self.fault(FaultCause::StepBudgetExhausted { budget }, steps));
            }
            if let Some(s) = snapped {
                let d = self.m.counter.delta_since(&s);
                done += 1;
                if done > WARMUP {
                    measured.accumulate(&d);
                }
            }
            match out {
                X86Step::Executed => {}
                X86Step::Halted(c) if c == DONE => break,
                X86Step::Halted(c) => {
                    return Err(self.fault(FaultCause::PayloadCrash { code: c }, steps));
                }
                other => {
                    return Err(self.fault(
                        FaultCause::UnexpectedStop {
                            detail: format!("unexpected {other:?}"),
                        },
                        steps,
                    ));
                }
            }
        }
        if done < iters || done <= WARMUP {
            return Err(self.fault(
                FaultCause::EoiShortfall {
                    expected: iters,
                    seen: done,
                },
                steps,
            ));
        }
        Ok((measured, done - WARMUP))
    }

    fn peek(&self, _rip: u64) -> Option<X86Instr> {
        // The EOI payload's shape: [MovImm, (ApicEoi, SubImm, Jnz)*].
        let base = PAYLOAD_BASE;
        if _rip <= base {
            return None;
        }
        let idx = _rip - base;
        if (idx - 1).is_multiple_of(3) {
            Some(X86Instr::ApicEoi)
        } else {
            None
        }
    }
}
