//! Miniature Intel VT-x model — the x86 comparator of the NEVE paper.
//!
//! The paper's comparison (Sections 2 and 5) rests on the structural
//! differences between ARM VE and Intel VT:
//!
//! - VT provides **root vs non-root modes** orthogonal to privilege
//!   rings, with guest state saved/restored **in hardware** to the
//!   in-memory **VMCS** on every transition — one expensive transition
//!   instead of ARM's many cheap register accesses;
//! - a guest hypervisor manipulates its `vmcs12` with `vmread`/`vmwrite`,
//!   which **VMCS shadowing** (the paper's x86 hardware has it) serves
//!   without exits;
//! - nested virtualization (Turtles / KVM x86) merges `vmcs12` with
//!   `vmcs01` into the hardware-consumed `vmcs02` on every nested entry,
//!   and reflects nested exits by copying exit fields back into
//!   `vmcs12` — software work, but only a handful of *exits*;
//! - **APICv** completes interrupts in guest mode without exits,
//!   mirroring the ARM GIC virtual interface.
//!
//! The crate mirrors `neve-kvmarm`'s shape: interpreted guest programs
//! (including the L1 guest hypervisor), a native-Rust L0 KVM, and a test
//! bed that runs the four microbenchmarks in VM and nested-VM
//! configurations, with VMCS shadowing switchable for the ablation.

pub mod guesthyp;
pub mod isa;
pub mod machine;
pub mod testbed;
pub mod vmcs;

pub use isa::{X86Asm, X86Instr};
pub use machine::{X86Machine, X86MachineConfig};
pub use testbed::{X86Bench, X86Config, X86TestBed};
pub use vmcs::{Vmcs, VmcsField};
