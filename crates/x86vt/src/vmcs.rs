//! The Virtual Machine Control Structure.

use std::collections::BTreeMap;

/// VMCS fields the simulator models (a representative subset of the
/// several hundred architectural fields; enough for the world-switch
/// sequences the paper's workloads exercise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VmcsField {
    /// Guest instruction pointer.
    GuestRip,
    /// Guest stack pointer.
    GuestRsp,
    /// Guest flags.
    GuestRflags,
    /// Guest CR3 (address space root).
    GuestCr3,
    /// Guest CR0.
    GuestCr0,
    /// Guest CR4.
    GuestCr4,
    /// Guest GDTR base.
    GuestGdtrBase,
    /// Guest IDTR base.
    GuestIdtrBase,
    /// Guest CS selector/base blob.
    GuestCs,
    /// Guest SS blob.
    GuestSs,
    /// Guest TR blob.
    GuestTr,
    /// Guest IA32_EFER.
    GuestEfer,
    /// Host instruction pointer (where exits land).
    HostRip,
    /// Host CR3.
    HostCr3,
    /// Pin-based execution controls.
    PinCtls,
    /// Processor-based execution controls.
    ProcCtls,
    /// Secondary processor-based controls.
    ProcCtls2,
    /// VM-entry controls.
    EntryCtls,
    /// VM-exit controls.
    ExitCtls,
    /// Exception bitmap.
    ExceptionBitmap,
    /// EPT pointer.
    EptPointer,
    /// Exit reason (read-only for the guest hypervisor).
    ExitReason,
    /// Exit qualification.
    ExitQualification,
    /// Guest physical address of an EPT violation.
    GuestPhysAddr,
    /// VM-entry interruption info (event injection).
    EntryIntrInfo,
    /// VM-exit interruption info.
    ExitIntrInfo,
    /// Instruction length of the exiting instruction.
    ExitInstrLen,
}

impl VmcsField {
    /// Fields a hypervisor reads on every exit (KVM x86's
    /// `vmx_vcpu_run` tail + `vmx_handle_exit` prologue).
    pub fn exit_read_set() -> Vec<VmcsField> {
        use VmcsField::*;
        vec![
            ExitReason,
            ExitQualification,
            GuestRip,
            GuestRsp,
            GuestRflags,
            ExitIntrInfo,
            ExitInstrLen,
            GuestPhysAddr,
        ]
    }

    /// Fields a hypervisor writes on every entry.
    pub fn entry_write_set() -> Vec<VmcsField> {
        use VmcsField::*;
        vec![GuestRip, GuestRflags, EntryIntrInfo, ProcCtls]
    }

    /// The guest-state fields hardware saves/restores on transitions
    /// (what makes an x86 exit monolithic and expensive, paper
    /// Section 2).
    pub fn hw_guest_state() -> Vec<VmcsField> {
        use VmcsField::*;
        vec![
            GuestRip,
            GuestRsp,
            GuestRflags,
            GuestCr0,
            GuestCr3,
            GuestCr4,
            GuestGdtrBase,
            GuestIdtrBase,
            GuestCs,
            GuestSs,
            GuestTr,
            GuestEfer,
        ]
    }

    /// Fields copied from `vmcs12` into `vmcs02` on a nested entry
    /// (the Turtles merge).
    pub fn merge_set() -> Vec<VmcsField> {
        let mut v = Self::hw_guest_state();
        v.extend([
            VmcsField::PinCtls,
            VmcsField::ProcCtls,
            VmcsField::ProcCtls2,
            VmcsField::EntryCtls,
            VmcsField::ExitCtls,
            VmcsField::ExceptionBitmap,
            VmcsField::EptPointer,
            VmcsField::EntryIntrInfo,
        ]);
        v
    }

    /// Fields copied back from `vmcs02` into `vmcs12` when reflecting a
    /// nested exit.
    pub fn reflect_set() -> Vec<VmcsField> {
        let mut v = Self::hw_guest_state();
        v.extend([
            VmcsField::ExitReason,
            VmcsField::ExitQualification,
            VmcsField::ExitIntrInfo,
            VmcsField::ExitInstrLen,
            VmcsField::GuestPhysAddr,
        ]);
        v
    }
}

/// Exit reasons (architectural numbering where it matters).
pub mod exit_reason {
    /// `vmcall`.
    pub const VMCALL: u64 = 18;
    /// External interrupt.
    pub const EXTERNAL_INTERRUPT: u64 = 1;
    /// EPT violation (MMIO emulation path).
    pub const EPT_VIOLATION: u64 = 48;
    /// `vmread`/`vmwrite` without shadowing.
    pub const VMREAD: u64 = 23;
    /// `vmresume`.
    pub const VMRESUME: u64 = 24;
    /// Other privileged VMX operation (`invept`, MSR access, ...).
    pub const VMX_OTHER: u64 = 31;
    /// APIC write (unvirtualized ICR access: IPI sending).
    pub const APIC_WRITE: u64 = 56;
}

/// One VMCS instance.
#[derive(Debug, Clone, Default)]
pub struct Vmcs {
    fields: BTreeMap<VmcsField, u64>,
}

impl Vmcs {
    /// Creates a zeroed VMCS.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a field (unwritten fields read 0).
    pub fn read(&self, f: VmcsField) -> u64 {
        self.fields.get(&f).copied().unwrap_or(0)
    }

    /// Writes a field.
    pub fn write(&mut self, f: VmcsField, v: u64) {
        self.fields.insert(f, v);
    }

    /// Copies `set` from `src` into `self`, returning how many fields
    /// moved (for cost accounting).
    pub fn copy_from(&mut self, src: &Vmcs, set: &[VmcsField]) -> usize {
        for f in set {
            self.write(*f, src.read(*f));
        }
        set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_fields_read_zero() {
        let v = Vmcs::new();
        assert_eq!(v.read(VmcsField::GuestRip), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let mut v = Vmcs::new();
        v.write(VmcsField::GuestRip, 0x1234);
        assert_eq!(v.read(VmcsField::GuestRip), 0x1234);
    }

    #[test]
    fn merge_copies_selected_fields_only() {
        let mut a = Vmcs::new();
        let mut b = Vmcs::new();
        a.write(VmcsField::GuestRip, 7);
        a.write(VmcsField::ExitReason, 99);
        let n = b.copy_from(&a, &VmcsField::merge_set());
        assert_eq!(n, VmcsField::merge_set().len());
        assert_eq!(b.read(VmcsField::GuestRip), 7);
        // ExitReason is not in the merge set.
        assert_eq!(b.read(VmcsField::ExitReason), 0);
    }

    #[test]
    fn field_sets_are_nonempty_and_distinct() {
        assert!(VmcsField::hw_guest_state().len() >= 10);
        assert!(VmcsField::merge_set().len() > VmcsField::hw_guest_state().len());
        assert!(VmcsField::reflect_set().contains(&VmcsField::ExitReason));
        assert!(!VmcsField::merge_set().contains(&VmcsField::ExitReason));
    }
}
