//! The interpreted x86-flavoured instruction set.
//!
//! As on the ARM side, guest software is structured instructions with
//! architectural *exit* semantics; instructions occupy one address unit.

use crate::vmcs::VmcsField;

/// Number of modelled GPRs (rax..r15).
pub const NUM_GPRS: usize = 16;

/// One instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum X86Instr {
    /// `mov r, imm`.
    MovImm(u8, u64),
    /// `mov rd, rs`.
    Mov(u8, u8),
    /// `add rd, imm`.
    AddImm(u8, u64),
    /// `sub rd, imm`.
    SubImm(u8, u64),
    /// `sub rd, rs`.
    Sub(u8, u8),
    /// Load from flat shared memory (no paging model; EPT is implied).
    Load(u8, u64),
    /// Store to flat shared memory.
    Store(u8, u64),
    /// Unconditional jump.
    Jmp(u64),
    /// Jump if register non-zero.
    Jnz(u8, u64),
    /// Modelled straight-line work of `n` cycles.
    Work(u64),
    /// `vmcall` — hypercall; always exits to the owning hypervisor.
    Vmcall,
    /// MMIO read (EPT violation exit; emulated device).
    MmioRead(u8),
    /// Send an IPI by writing the APIC ICR (exits; register holds the
    /// target CPU in bits `[7:0]` and vector in bits `[15:8]`).
    SendIpi(u8),
    /// Complete the in-service interrupt at the virtual APIC — APICv
    /// completes this without an exit (paper Table 1: 316 cycles).
    ApicEoi,
    /// Return from an interrupt handler.
    Iret,
    /// `vmread field, rd` — exits without VMCS shadowing.
    VmRead(u8, VmcsField),
    /// `vmwrite field, rs` — exits without VMCS shadowing.
    VmWrite(VmcsField, u8),
    /// `vmresume` — always exits from non-root mode.
    Vmresume,
    /// Another privileged VMX/MSR operation that always exits
    /// (`invept`, interrupt-window manipulation, ...).
    VmxPriv,
    /// Stop the harness.
    Halt(u16),
}

/// A program: instructions at `base + i`.
#[derive(Debug, Clone)]
pub struct X86Program {
    /// Load address of the first instruction.
    pub base: u64,
    /// The instructions.
    pub code: std::sync::Arc<[X86Instr]>,
}

impl X86Program {
    /// The instruction at `addr`.
    pub fn fetch(&self, addr: u64) -> Option<X86Instr> {
        if addr < self.base {
            return None;
        }
        self.code.get((addr - self.base) as usize).copied()
    }

    /// One past the last instruction.
    pub fn end(&self) -> u64 {
        self.base + self.code.len() as u64
    }
}

/// Forward-referenceable label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// The assembler.
#[derive(Debug)]
pub struct X86Asm {
    base: u64,
    code: Vec<X86Instr>,
    labels: Vec<Option<u64>>,
    fixups: Vec<(usize, Label)>,
}

impl X86Asm {
    /// Starts a program at `base`.
    pub fn new(base: u64) -> Self {
        Self {
            base,
            code: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// Emits one instruction.
    pub fn i(&mut self, instr: X86Instr) -> &mut Self {
        self.code.push(instr);
        self
    }

    /// Current address.
    pub fn here(&self) -> u64 {
        self.base + self.code.len() as u64
    }

    /// Creates a label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds a label here.
    pub fn bind(&mut self, l: Label) {
        assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.here());
    }

    /// `jmp label`.
    pub fn jmp(&mut self, l: Label) -> &mut Self {
        self.fixups.push((self.code.len(), l));
        self.code.push(X86Instr::Jmp(0));
        self
    }

    /// `jnz r, label`.
    pub fn jnz(&mut self, r: u8, l: Label) -> &mut Self {
        self.fixups.push((self.code.len(), l));
        self.code.push(X86Instr::Jnz(r, 0));
        self
    }

    /// Resolves labels.
    ///
    /// # Panics
    ///
    /// Panics on unbound labels.
    pub fn assemble(mut self) -> X86Program {
        for (idx, l) in std::mem::take(&mut self.fixups) {
            let addr = self.labels[l.0].expect("unbound label");
            match &mut self.code[idx] {
                X86Instr::Jmp(a) | X86Instr::Jnz(_, a) => *a = addr,
                other => unreachable!("fixup on {other:?}"),
            }
        }
        X86Program {
            base: self.base,
            code: self.code.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_and_fetch() {
        let mut a = X86Asm::new(100);
        let top = a.label();
        a.i(X86Instr::MovImm(0, 5));
        a.bind(top);
        a.i(X86Instr::SubImm(0, 1));
        a.jnz(0, top);
        a.i(X86Instr::Halt(0));
        let p = a.assemble();
        assert_eq!(p.fetch(100), Some(X86Instr::MovImm(0, 5)));
        assert_eq!(p.fetch(102), Some(X86Instr::Jnz(0, 101)));
        assert_eq!(p.fetch(99), None);
        assert_eq!(p.end(), 104);
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut a = X86Asm::new(0);
        let l = a.label();
        a.jmp(l);
        a.assemble();
    }
}
