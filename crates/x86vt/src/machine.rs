//! The x86 machine and its built-in L0 KVM.
//!
//! Control flow mirrors the ARM side: non-root software is interpreted;
//! every VM exit synchronously runs the native L0 logic, which either
//! services the exit (single-level VMs) or performs the Turtles dance
//! (reflect nested exits into the L1 guest hypervisor, merge `vmcs12`
//! into `vmcs02` on nested entries).

use crate::isa::{X86Instr, X86Program, NUM_GPRS};
use crate::vmcs::{exit_reason, Vmcs, VmcsField};
use neve_cycles::{CostModel, CostTable, CycleCounter, Event, TrapKind};
use std::cell::Cell;
use std::collections::BTreeMap;

/// Which context owns a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum X86Ctx {
    /// A single-level VM payload.
    L1,
    /// The L1 guest hypervisor (nested configurations).
    GhL1,
    /// The nested VM.
    L2,
}

/// Construction parameters.
#[derive(Debug, Clone)]
pub struct X86MachineConfig {
    /// Number of cores.
    pub ncpus: usize,
    /// VMCS shadowing available (the paper's x86 hardware has it;
    /// switchable for the ablation of Section 8).
    pub vmcs_shadowing: bool,
    /// Nested configuration (guest hypervisor between L0 and payload).
    pub nested: bool,
    /// Cost model.
    pub cost: CostModel,
}

impl Default for X86MachineConfig {
    fn default() -> Self {
        Self {
            ncpus: 1,
            vmcs_shadowing: true,
            nested: false,
            cost: CostModel::default(),
        }
    }
}

/// Per-core interpreter state.
#[derive(Debug, Clone)]
pub struct X86Core {
    /// General-purpose registers.
    pub gprs: [u64; NUM_GPRS],
    /// Instruction pointer.
    pub rip: u64,
    /// Interrupts enabled (RFLAGS.IF).
    pub irq_enabled: bool,
    /// Injected virtual interrupt awaiting delivery.
    pub pending_irq: Option<u8>,
    /// Physical interrupt pending (forces an exit from non-root).
    pub pending_host_irq: Option<u8>,
    /// Interrupt handler entry (guest IDT stand-in).
    pub handler_base: u64,
    /// Return address for `iret`.
    iret_rip: u64,
    /// Halted with code.
    pub halted: Option<u16>,
}

impl Default for X86Core {
    fn default() -> Self {
        Self {
            gprs: [0; NUM_GPRS],
            rip: 0,
            irq_enabled: false,
            pending_irq: None,
            pending_host_irq: None,
            handler_base: 0,
            iret_rip: 0,
            halted: None,
        }
    }
}

/// Step outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum X86Step {
    /// Instruction retired (possibly via an exit round trip).
    Executed,
    /// Halted with code.
    Halted(u16),
    /// Fetch failure.
    FetchFailure(u64),
}

/// Shared-memory slot where the guest hypervisor's copy of the nested
/// VM's GPRs lives (per-CPU stride 0x100).
pub const GPR_SLOTS: u64 = 0x10_0000;
/// Slot where L0 posts the pending interrupt vector for the guest
/// hypervisor (per-CPU stride 0x100, offset from GPR_SLOTS area).
pub const IRQ_SLOT: u64 = 0x11_0000;

/// The machine (cores + flat shared memory + the L0 hypervisor state).
#[derive(Debug)]
pub struct X86Machine {
    /// Configuration.
    pub cfg: X86MachineConfig,
    /// Cycle accounting.
    pub counter: CycleCounter,
    cores: Vec<X86Core>,
    /// Loaded programs, kept sorted by base address over disjoint
    /// ranges ([`X86Machine::load`] asserts it), so fetch can
    /// binary-search instead of scanning.
    programs: Vec<X86Program>,
    /// Per-core index of the program the core last fetched from
    /// (interior mutability mirrors the ARM machine; pure performance
    /// state that never changes *what* a fetch returns).
    fetch_hints: Vec<Cell<usize>>,
    /// The x86 half of `cfg.cost` resolved to a flat per-event array;
    /// rebuilt whenever the model's fingerprint changes (see
    /// [`X86Machine::refresh_cost_table`]).
    cost_table: CostTable,
    mem: BTreeMap<u64, u64>,
    /// Context per core.
    pub ctx: Vec<X86Ctx>,
    /// The guest hypervisor's VMCS for its nested VM, per core.
    pub vmcs12: Vec<Vmcs>,
    /// The hardware-consumed merged VMCS, per core.
    pub vmcs02: Vec<Vmcs>,
    /// Saved L1 GPRs while L2 runs (the guest hypervisor's own register
    /// state, parked by its entry sequence).
    l1_gprs: Vec<[u64; NUM_GPRS]>,
    /// Value returned by the emulated device.
    pub device_value: u64,
    /// Hypercalls serviced at L0.
    pub l0_hypercalls: u64,
    /// IPI vector used by the benchmarks.
    pub ipi_vector: u8,
    /// Machine steps retired across all CPUs (the throughput harness's
    /// simulated-work denominator, mirroring the ARM machine).
    steps: u64,
}

impl X86Machine {
    /// Builds a machine.
    pub fn new(cfg: X86MachineConfig) -> Self {
        let n = cfg.ncpus;
        Self {
            counter: CycleCounter::new(),
            cores: vec![X86Core::default(); n],
            programs: Vec::new(),
            fetch_hints: (0..n).map(|_| Cell::new(0)).collect(),
            cost_table: CostTable::x86(&cfg.cost),
            mem: BTreeMap::new(),
            ctx: vec![if cfg.nested { X86Ctx::GhL1 } else { X86Ctx::L1 }; n],
            vmcs12: (0..n).map(|_| Vmcs::new()).collect(),
            vmcs02: (0..n).map(|_| Vmcs::new()).collect(),
            l1_gprs: vec![[0; NUM_GPRS]; n],
            device_value: 0xd0d0,
            l0_hypercalls: 0,
            ipi_vector: 0x40,
            steps: 0,
            cfg,
        }
    }

    /// Machine steps retired so far (across all CPUs).
    pub fn steps_retired(&self) -> u64 {
        self.steps
    }

    /// Re-resolves the precomputed cost table if `cfg.cost` changed
    /// since it was built ([`CostModel::fingerprint`] comparison).
    /// Harnesses call this at run boundaries, so per-step charges can
    /// index the flat table instead of re-matching the model — with
    /// identical results, since the table is built by evaluating
    /// [`CostModel::x86_cost`] over every event.
    pub fn refresh_cost_table(&mut self) {
        if !self.cost_table.matches(&self.cfg.cost) {
            self.cost_table = CostTable::x86(&self.cfg.cost);
        }
    }

    /// Loads a program.
    ///
    /// # Panics
    ///
    /// Panics if it overlaps an already-loaded program (disjoint
    /// ranges are what let fetch binary-search; see DESIGN.md).
    pub fn load(&mut self, p: X86Program) {
        for q in &self.programs {
            let disjoint = p.end() <= q.base || p.base >= q.end();
            assert!(
                disjoint,
                "program [{:#x},{:#x}) overlaps [{:#x},{:#x})",
                p.base,
                p.end(),
                q.base,
                q.end()
            );
        }
        let at = self.programs.partition_point(|q| q.base < p.base);
        self.programs.insert(at, p);
        for h in &self.fetch_hints {
            h.set(0);
        }
    }

    /// Core accessor.
    pub fn core(&self, cpu: usize) -> &X86Core {
        &self.cores[cpu]
    }

    /// Mutable core accessor.
    pub fn core_mut(&mut self, cpu: usize) -> &mut X86Core {
        &mut self.cores[cpu]
    }

    /// Reads flat shared memory.
    pub fn mem_read(&self, a: u64) -> u64 {
        self.mem.get(&a).copied().unwrap_or(0)
    }

    /// Writes flat shared memory.
    pub fn mem_write(&mut self, a: u64, v: u64) {
        self.mem.insert(a, v);
    }

    fn charge(&mut self, ev: Event) {
        let c = self.cost_table.cost(ev);
        self.counter.charge(ev, c);
    }

    // ------------------------------------------------------------------
    // VM exit / entry accounting.
    // ------------------------------------------------------------------

    /// Hardware cost of a VM exit (transition + VMCS guest-state save).
    fn vmexit_hw(&mut self, kind: TrapKind) {
        self.charge(Event::TrapEnter);
        self.charge(Event::VmcsHwSave);
        self.counter.record_trap(kind);
    }

    /// Hardware cost of a VM entry.
    fn vmentry_hw(&mut self) {
        self.charge(Event::TrapReturn);
        self.charge(Event::VmcsHwLoad);
    }

    /// L0 root-mode vmread (no exit).
    fn root_vmread(&mut self, which: RootVmcs, cpu: usize, f: VmcsField) -> u64 {
        self.charge(Event::VmRead);
        match which {
            RootVmcs::Vmcs12 => self.vmcs12[cpu].read(f),
            RootVmcs::Vmcs02 => self.vmcs02[cpu].read(f),
        }
    }

    /// L0 root-mode vmwrite.
    fn root_vmwrite(&mut self, which: RootVmcs, cpu: usize, f: VmcsField, v: u64) {
        self.charge(Event::VmWrite);
        match which {
            RootVmcs::Vmcs12 => self.vmcs12[cpu].write(f, v),
            RootVmcs::Vmcs02 => self.vmcs02[cpu].write(f, v),
        }
    }

    // ------------------------------------------------------------------
    // The L0 hypervisor.
    // ------------------------------------------------------------------

    /// A single-level exit L0 services itself.
    fn l0_service(&mut self, cpu: usize, reason: u64, operand: u64) {
        let sw = self.cfg.cost.sw.clone();
        self.counter.charge_software(sw.kvm_x86_exit_common);
        match reason {
            exit_reason::VMCALL => {
                self.counter.charge_software(sw.kvm_x86_handler_simple);
                self.l0_hypercalls += 1;
                self.cores[cpu].gprs[0] = 0;
            }
            exit_reason::EPT_VIOLATION => {
                self.counter.charge_software(sw.kvm_x86_mmio_emul);
                let reg = operand as usize % NUM_GPRS;
                self.cores[cpu].gprs[reg] = self.device_value;
            }
            exit_reason::APIC_WRITE => {
                // IPI: operand = target | vector<<8. Post a physical
                // interrupt at the target; its exit path injects.
                self.counter.charge_software(sw.kvm_x86_virq_inject);
                let target = (operand & 0xff) as usize;
                let vector = ((operand >> 8) & 0xff) as u8;
                if target < self.cores.len() {
                    self.cores[target].pending_host_irq = Some(vector);
                }
            }
            exit_reason::EXTERNAL_INTERRUPT => {
                // Acknowledge and inject into the interrupted VM.
                self.counter.charge_software(sw.kvm_x86_virq_inject);
                if let Some(v) = self.cores[cpu].pending_host_irq.take() {
                    self.cores[cpu].pending_irq = Some(v);
                }
            }
            _ => {
                self.counter.charge_software(sw.kvm_x86_handler_simple);
            }
        }
        self.counter.charge_software(sw.kvm_x86_enter_common);
    }

    /// Reflects an L2 exit into the L1 guest hypervisor (Turtles).
    fn l0_reflect_to_l1(&mut self, cpu: usize, reason: u64, qual: u64) {
        let sw = self.cfg.cost.sw.clone();
        self.counter.charge_software(sw.kvm_x86_exit_common);
        self.counter.charge_software(sw.kvm_x86_exit_reflect);
        // Latch the exit information into vmcs02, then copy the exit
        // set into vmcs12 where the guest hypervisor will read it.
        let rip = self.cores[cpu].rip;
        self.vmcs02[cpu].write(VmcsField::ExitReason, reason);
        self.vmcs02[cpu].write(VmcsField::ExitQualification, qual);
        self.vmcs02[cpu].write(VmcsField::GuestRip, rip);
        self.vmcs02[cpu].write(VmcsField::ExitInstrLen, 1);
        for f in VmcsField::reflect_set() {
            let v = self.root_vmread(RootVmcs::Vmcs02, cpu, f);
            self.root_vmwrite(RootVmcs::Vmcs12, cpu, f, v);
        }
        // Spill the nested VM's GPRs into the guest hypervisor's vcpu
        // array (its software would do this in its exit path).
        for (i, g) in self.cores[cpu].gprs.into_iter().enumerate() {
            self.mem
                .insert(GPR_SLOTS + cpu as u64 * 0x100 + i as u64 * 8, g);
            self.charge(Event::MemStore);
        }
        // Post any pending interrupt vector where the L1 IRQ path reads
        // it.
        if reason == exit_reason::EXTERNAL_INTERRUPT {
            if let Some(v) = self.cores[cpu].pending_host_irq.take() {
                self.mem.insert(IRQ_SLOT + cpu as u64 * 0x100, v as u64);
            }
        }
        // Restore the guest hypervisor's registers and send it to its
        // exit handler.
        self.cores[cpu].gprs = self.l1_gprs[cpu];
        let host_rip = self.root_vmread(RootVmcs::Vmcs12, cpu, VmcsField::HostRip);
        self.cores[cpu].rip = host_rip;
        self.ctx[cpu] = X86Ctx::GhL1;
        self.counter.charge_software(sw.kvm_x86_enter_common);
    }

    /// Emulates the guest hypervisor's `vmresume`: merge and run L2.
    fn l0_nested_entry(&mut self, cpu: usize) {
        let sw = self.cfg.cost.sw.clone();
        self.counter.charge_software(sw.kvm_x86_exit_common);
        self.counter.charge_software(sw.kvm_x86_vmcs_merge);
        for f in VmcsField::merge_set() {
            let v = self.root_vmread(RootVmcs::Vmcs12, cpu, f);
            self.root_vmwrite(RootVmcs::Vmcs02, cpu, f, v);
        }
        // Park the guest hypervisor's registers; load the nested VM's.
        self.l1_gprs[cpu] = self.cores[cpu].gprs;
        for i in 0..NUM_GPRS {
            let v = self.mem_read(GPR_SLOTS + cpu as u64 * 0x100 + i as u64 * 8);
            self.charge(Event::MemLoad);
            self.cores[cpu].gprs[i] = v;
        }
        // Event injection from the merged VMCS.
        let intr = self.vmcs02[cpu].read(VmcsField::EntryIntrInfo);
        if intr & (1 << 31) != 0 {
            self.cores[cpu].pending_irq = Some((intr & 0xff) as u8);
            self.vmcs02[cpu].write(VmcsField::EntryIntrInfo, 0);
            self.vmcs12[cpu].write(VmcsField::EntryIntrInfo, 0);
        }
        self.cores[cpu].rip = self.vmcs02[cpu].read(VmcsField::GuestRip);
        self.ctx[cpu] = X86Ctx::L2;
        self.counter.charge_software(sw.kvm_x86_enter_common);
    }

    /// Full exit dispatch from non-root mode.
    fn vmexit(&mut self, cpu: usize, kind: TrapKind, reason: u64, qual: u64) {
        self.vmexit_hw(kind);
        match self.ctx[cpu] {
            X86Ctx::L1 => {
                self.l0_service(cpu, reason, qual);
            }
            X86Ctx::GhL1 => {
                // Exits of the guest hypervisor itself: vmresume starts
                // a nested entry; privileged VMX ops and unshadowed
                // vmread/vmwrite are emulated in place.
                match reason {
                    exit_reason::VMRESUME => {
                        self.l0_nested_entry(cpu);
                    }
                    exit_reason::VMREAD => {
                        // Unshadowed access: L0 performs it on vmcs12.
                        let sw_cost = self.cfg.cost.sw.kvm_x86_handler_simple;
                        self.counter.charge_software(sw_cost);
                        // The access itself was already performed by the
                        // interpreter against vmcs12 (qual unused).
                        let _ = qual;
                    }
                    exit_reason::APIC_WRITE => {
                        self.l0_service(cpu, reason, qual);
                    }
                    exit_reason::VMX_OTHER => {
                        let sw_cost = self.cfg.cost.sw.kvm_x86_vmx_op_emul;
                        self.counter.charge_software(sw_cost);
                    }
                    _ => {
                        let sw_cost = self.cfg.cost.sw.kvm_x86_handler_simple;
                        self.counter.charge_software(sw_cost);
                    }
                }
            }
            X86Ctx::L2 => {
                // Everything from the nested VM reflects to L1 except
                // L0-owned physical interrupts, which also reflect here
                // because they belong to the L1 VM in these workloads.
                self.l0_reflect_to_l1(cpu, reason, qual);
            }
        }
        self.vmentry_hw();
    }

    // ------------------------------------------------------------------
    // The interpreter.
    // ------------------------------------------------------------------

    /// Fetches through `cpu`'s last-program-hit hint, falling back to
    /// a binary search over the sorted, disjoint program list (same
    /// design as the ARM machine's fetch).
    fn fetch(&self, cpu: usize, rip: u64) -> Option<X86Instr> {
        let hint = &self.fetch_hints[cpu];
        if let Some(p) = self.programs.get(hint.get()) {
            if let Some(i) = p.fetch(rip) {
                return Some(i);
            }
        }
        let idx = self
            .programs
            .partition_point(|p| p.base <= rip)
            .checked_sub(1)?;
        let i = self.programs[idx].fetch(rip)?;
        hint.set(idx);
        Some(i)
    }

    /// Executes one instruction on `cpu`.
    pub fn step(&mut self, cpu: usize) -> X86Step {
        if let Some(code) = self.cores[cpu].halted {
            return X86Step::Halted(code);
        }
        self.steps += 1;

        // Physical interrupts force an exit from non-root mode.
        if self.cores[cpu].pending_host_irq.is_some() {
            let qual = 0;
            self.vmexit(cpu, TrapKind::ExtInt, exit_reason::EXTERNAL_INTERRUPT, qual);
            return X86Step::Executed;
        }
        // Injected virtual interrupts deliver without an exit (APICv).
        if self.cores[cpu].irq_enabled {
            if let Some(_v) = self.cores[cpu].pending_irq.take() {
                self.charge(Event::DirectIrqOp);
                let rip = self.cores[cpu].rip;
                self.cores[cpu].iret_rip = rip;
                self.cores[cpu].rip = self.cores[cpu].handler_base;
                self.cores[cpu].irq_enabled = false;
                return X86Step::Executed;
            }
        }

        let rip = self.cores[cpu].rip;
        let Some(instr) = self.fetch(cpu, rip) else {
            return X86Step::FetchFailure(rip);
        };
        let mut next = rip + 1;
        let instr_c = self.cost_table.cost(Event::Instr);

        match instr {
            X86Instr::MovImm(r, v) => {
                self.counter.charge(Event::Instr, instr_c);
                self.cores[cpu].gprs[r as usize % NUM_GPRS] = v;
            }
            X86Instr::Mov(rd, rs) => {
                self.counter.charge(Event::Instr, instr_c);
                self.cores[cpu].gprs[rd as usize % NUM_GPRS] =
                    self.cores[cpu].gprs[rs as usize % NUM_GPRS];
            }
            X86Instr::AddImm(r, v) => {
                self.counter.charge(Event::Instr, instr_c);
                let r = r as usize % NUM_GPRS;
                self.cores[cpu].gprs[r] = self.cores[cpu].gprs[r].wrapping_add(v);
            }
            X86Instr::SubImm(r, v) => {
                self.counter.charge(Event::Instr, instr_c);
                let r = r as usize % NUM_GPRS;
                self.cores[cpu].gprs[r] = self.cores[cpu].gprs[r].wrapping_sub(v);
            }
            X86Instr::Sub(rd, rs) => {
                self.counter.charge(Event::Instr, instr_c);
                let v = self.cores[cpu].gprs[rs as usize % NUM_GPRS];
                let rd = rd as usize % NUM_GPRS;
                self.cores[cpu].gprs[rd] = self.cores[cpu].gprs[rd].wrapping_sub(v);
            }
            X86Instr::Load(r, a) => {
                self.charge(Event::MemLoad);
                self.cores[cpu].gprs[r as usize % NUM_GPRS] = self.mem_read(a);
            }
            X86Instr::Store(r, a) => {
                self.charge(Event::MemStore);
                let v = self.cores[cpu].gprs[r as usize % NUM_GPRS];
                self.mem_write(a, v);
            }
            X86Instr::Jmp(a) => {
                self.counter.charge(Event::Instr, instr_c);
                next = a;
            }
            X86Instr::Jnz(r, a) => {
                self.counter.charge(Event::Instr, instr_c);
                if self.cores[cpu].gprs[r as usize % NUM_GPRS] != 0 {
                    next = a;
                }
            }
            X86Instr::Work(n) => {
                self.counter.charge(Event::Instr, instr_c * n.max(1));
            }
            X86Instr::Halt(code) => {
                self.cores[cpu].halted = Some(code);
                return X86Step::Halted(code);
            }
            X86Instr::Vmcall => {
                // The exit's preferred return is past the instruction
                // for hypercalls; L1 advances via ExitInstrLen when
                // reflecting, L0 advances directly when servicing.
                self.cores[cpu].rip = rip;
                if self.ctx[cpu] != X86Ctx::L2 {
                    self.cores[cpu].rip = next;
                    self.vmexit(cpu, TrapKind::VmCall, exit_reason::VMCALL, 0);
                } else {
                    self.vmexit(cpu, TrapKind::VmCall, exit_reason::VMCALL, 0);
                }
                return X86Step::Executed;
            }
            X86Instr::MmioRead(r) => {
                self.cores[cpu].rip = if self.ctx[cpu] == X86Ctx::L2 {
                    rip
                } else {
                    next
                };
                self.vmexit(
                    cpu,
                    TrapKind::IoAccess,
                    exit_reason::EPT_VIOLATION,
                    r as u64,
                );
                return X86Step::Executed;
            }
            X86Instr::SendIpi(r) => {
                let v = self.cores[cpu].gprs[r as usize % NUM_GPRS];
                self.cores[cpu].rip = if self.ctx[cpu] == X86Ctx::L2 {
                    rip
                } else {
                    next
                };
                self.vmexit(cpu, TrapKind::ApicAccess, exit_reason::APIC_WRITE, v);
                return X86Step::Executed;
            }
            X86Instr::ApicEoi => {
                // APICv virtual EOI: no exit (paper Table 1: 316 cycles).
                self.charge(Event::DirectIrqOp);
            }
            X86Instr::Iret => {
                self.counter.charge(Event::Instr, instr_c);
                next = self.cores[cpu].iret_rip;
                self.cores[cpu].irq_enabled = true;
            }
            X86Instr::VmRead(r, f) => {
                if self.cfg.vmcs_shadowing {
                    self.charge(Event::VmRead);
                    self.cores[cpu].gprs[r as usize % NUM_GPRS] = self.vmcs12[cpu].read(f);
                } else {
                    self.cores[cpu].gprs[r as usize % NUM_GPRS] = self.vmcs12[cpu].read(f);
                    self.cores[cpu].rip = next;
                    self.vmexit(cpu, TrapKind::VmcsAccess, exit_reason::VMREAD, 0);
                    return X86Step::Executed;
                }
            }
            X86Instr::VmWrite(f, r) => {
                let v = self.cores[cpu].gprs[r as usize % NUM_GPRS];
                if self.cfg.vmcs_shadowing {
                    self.charge(Event::VmWrite);
                    self.vmcs12[cpu].write(f, v);
                } else {
                    self.vmcs12[cpu].write(f, v);
                    self.cores[cpu].rip = next;
                    self.vmexit(cpu, TrapKind::VmcsAccess, exit_reason::VMREAD, 0);
                    return X86Step::Executed;
                }
            }
            X86Instr::Vmresume => {
                self.cores[cpu].rip = next;
                self.vmexit(cpu, TrapKind::VmEntryInstr, exit_reason::VMRESUME, 0);
                return X86Step::Executed;
            }
            X86Instr::VmxPriv => {
                self.cores[cpu].rip = next;
                self.vmexit(cpu, TrapKind::VmxOther, exit_reason::VMX_OTHER, 0);
                return X86Step::Executed;
            }
        }
        self.cores[cpu].rip = next;
        X86Step::Executed
    }

    /// Runs one core until halt or `max` instructions.
    pub fn run(&mut self, cpu: usize, max: u64) -> X86Step {
        let mut last = X86Step::Executed;
        for _ in 0..max {
            last = self.step(cpu);
            if last != X86Step::Executed {
                break;
            }
        }
        last
    }
}

/// Which root-mode VMCS an L0 access targets.
#[derive(Debug, Clone, Copy)]
enum RootVmcs {
    Vmcs12,
    Vmcs02,
}
