//! The L1 guest hypervisor program (a miniature KVM x86 running nested).
//!
//! Entered at `vmcs12.HostRip` whenever L0 reflects a nested exit.
//! With VMCS shadowing (the paper's configuration) its `vmread`s and
//! `vmwrite`s on `vmcs12` execute without exits; its per-switch
//! privileged housekeeping (`invept`, MSR and interrupt-window dance,
//! modelled by [`X86Instr::VmxPriv`]) and the final `vmresume` are the
//! remaining exits — the handful (paper Table 7: 5 per hypercall) that
//! makes x86 nesting tolerable where ARMv8.3's dozens are not.

use crate::isa::{X86Asm, X86Instr, X86Program};
use crate::machine::{GPR_SLOTS, IRQ_SLOT};
use crate::vmcs::{exit_reason, VmcsField};

/// Guest hypervisor image base.
pub const GH_BASE: u64 = 0x1000;

/// Number of `VmxPriv` operations per switch (calibrated to the paper's
/// per-hypercall exit count of 5: vmcall + 3 privileged ops + vmresume).
pub const PRIV_OPS_PER_SWITCH: usize = 3;

/// Builds the guest hypervisor's exit handler for `cpu`.
pub fn build(cpu: usize) -> X86Program {
    let base = GH_BASE + cpu as u64 * 0x1000;
    let mut a = X86Asm::new(base);
    let hypercall = a.label();
    let mmio = a.label();
    let apic = a.label();
    let irq = a.label();
    let resume = a.label();

    // Exit prologue: read the exit-information fields (shadowed: no
    // exits) and the software cost of kvm's exit bookkeeping.
    for (i, f) in VmcsField::exit_read_set().into_iter().enumerate() {
        a.i(X86Instr::VmRead((i % 6) as u8 + 2, f));
    }
    a.i(X86Instr::Work(3200)); // vmx_handle_exit + nested checks
    a.i(X86Instr::VmRead(0, VmcsField::ExitReason));

    // Dispatch.
    a.i(X86Instr::MovImm(1, exit_reason::VMCALL));
    a.i(X86Instr::Mov(5, 0));
    a.i(X86Instr::Sub(5, 1));
    let not_hc = a.label();
    a.jnz(5, not_hc);
    a.jmp(hypercall);
    a.bind(not_hc);
    a.i(X86Instr::MovImm(1, exit_reason::EPT_VIOLATION));
    a.i(X86Instr::Mov(5, 0));
    a.i(X86Instr::Sub(5, 1));
    let not_mmio = a.label();
    a.jnz(5, not_mmio);
    a.jmp(mmio);
    a.bind(not_mmio);
    a.i(X86Instr::MovImm(1, exit_reason::APIC_WRITE));
    a.i(X86Instr::Mov(5, 0));
    a.i(X86Instr::Sub(5, 1));
    let not_apic = a.label();
    a.jnz(5, not_apic);
    a.jmp(apic);
    a.bind(not_apic);
    a.jmp(irq);

    // Hypercall: set the return value in the parked L2 rax and skip the
    // vmcall.
    a.bind(hypercall);
    {
        a.i(X86Instr::Work(1400));
        a.i(X86Instr::MovImm(3, 0));
        a.i(X86Instr::Store(3, GPR_SLOTS + cpu as u64 * 0x100));
        a.i(X86Instr::VmRead(3, VmcsField::GuestRip));
        a.i(X86Instr::AddImm(3, 1));
        a.i(X86Instr::VmWrite(VmcsField::GuestRip, 3));
        a.jmp(resume);
    }

    // MMIO: emulate the device; the faulting register index travels in
    // ExitQualification.
    a.bind(mmio);
    {
        a.i(X86Instr::Work(1800)); // instruction decode + device model
        a.i(X86Instr::MovImm(3, 0xd0d0));
        // The L2 payload always loads into register 2 by convention.
        a.i(X86Instr::Store(3, GPR_SLOTS + cpu as u64 * 0x100 + 2 * 8));
        a.i(X86Instr::VmRead(3, VmcsField::GuestRip));
        a.i(X86Instr::AddImm(3, 1));
        a.i(X86Instr::VmWrite(VmcsField::GuestRip, 3));
        a.jmp(resume);
    }

    // The nested VM wrote its APIC ICR (sent an IPI): the guest
    // hypervisor's APIC emulation re-issues it at its own level (the
    // L2 payload keeps the ICR value in register 0 by convention, so
    // it sits in parked slot 0).
    a.bind(apic);
    {
        a.i(X86Instr::Work(700));
        a.i(X86Instr::Load(0, GPR_SLOTS + cpu as u64 * 0x100));
        a.i(X86Instr::SendIpi(0));
        a.i(X86Instr::VmRead(3, VmcsField::GuestRip));
        a.i(X86Instr::AddImm(3, 1));
        a.i(X86Instr::VmWrite(VmcsField::GuestRip, 3));
        a.jmp(resume);
    }

    // External interrupt while L2 ran: if it is our IPI vector, inject
    // it into the nested VM via the entry-interruption field.
    a.bind(irq);
    {
        a.i(X86Instr::Work(900));
        a.i(X86Instr::Load(3, IRQ_SLOT + cpu as u64 * 0x100));
        let no_inject = a.label();
        let inject = a.label();
        a.jnz(3, inject);
        a.jmp(no_inject);
        a.bind(inject);
        // Compose the interruption info: valid bit | vector.
        a.i(X86Instr::Mov(7, 3));
        a.i(X86Instr::AddImm(7, 1 << 31));
        a.i(X86Instr::VmWrite(VmcsField::EntryIntrInfo, 7));
        a.i(X86Instr::MovImm(3, 0));
        a.i(X86Instr::Store(3, IRQ_SLOT + cpu as u64 * 0x100));
        a.bind(no_inject);
        a.jmp(resume);
    }

    // Re-entry: the per-switch privileged housekeeping, the entry
    // writes, and vmresume.
    a.bind(resume);
    {
        a.i(X86Instr::Work(2800)); // nested_vmx_run checks
        for _ in 0..PRIV_OPS_PER_SWITCH {
            a.i(X86Instr::VmxPriv);
        }
        for f in VmcsField::entry_write_set() {
            if f != VmcsField::GuestRip && f != VmcsField::EntryIntrInfo {
                a.i(X86Instr::VmRead(3, f));
                a.i(X86Instr::VmWrite(f, 3));
            }
        }
        a.i(X86Instr::Vmresume);
        // vmresume does not return on success; a fall-through would be
        // an entry failure.
        a.i(X86Instr::Halt(0xfa11));
    }

    a.assemble()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_assembles_with_expected_structure() {
        let p = build(0);
        assert!(p.code.len() > 30);
        let resumes = p
            .code
            .iter()
            .filter(|i| matches!(i, X86Instr::Vmresume))
            .count();
        assert_eq!(resumes, 1);
        let privs = p
            .code
            .iter()
            .filter(|i| matches!(i, X86Instr::VmxPriv))
            .count();
        assert_eq!(privs, PRIV_OPS_PER_SWITCH);
    }

    #[test]
    fn per_cpu_images_are_disjoint() {
        let a = build(0);
        let b = build(1);
        assert!(a.end() <= b.base);
    }
}
