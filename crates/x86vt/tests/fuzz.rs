//! Property-based robustness: arbitrary non-root programs never panic
//! the x86 machine or corrupt L0-owned state.

use neve_x86vt::isa::{X86Asm, X86Instr};
use neve_x86vt::machine::{X86Ctx, X86Machine, X86MachineConfig, X86Step};
use neve_x86vt::vmcs::VmcsField;
use proptest::prelude::*;

fn any_field() -> impl Strategy<Value = VmcsField> {
    use VmcsField::*;
    prop_oneof![
        Just(GuestRip),
        Just(GuestRsp),
        Just(GuestCr3),
        Just(ExitReason),
        Just(EntryIntrInfo),
        Just(HostRip),
        Just(ProcCtls),
    ]
}

fn any_instr() -> impl Strategy<Value = X86Instr> {
    let reg = 0u8..16;
    prop_oneof![
        (reg.clone(), 0u64..0x10000).prop_map(|(r, v)| X86Instr::MovImm(r, v)),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| X86Instr::Mov(a, b)),
        (reg.clone(), 0u64..1000).prop_map(|(r, v)| X86Instr::AddImm(r, v)),
        (reg.clone(), 0u64..1000).prop_map(|(r, v)| X86Instr::SubImm(r, v)),
        (reg.clone(), 0u64..0x10_0000).prop_map(|(r, a)| X86Instr::Load(r, a * 8)),
        (reg.clone(), 0u64..0x10_0000).prop_map(|(r, a)| X86Instr::Store(r, a * 8)),
        Just(X86Instr::Vmcall),
        reg.clone().prop_map(X86Instr::MmioRead),
        reg.clone().prop_map(X86Instr::SendIpi),
        Just(X86Instr::ApicEoi),
        Just(X86Instr::Iret),
        (reg.clone(), any_field()).prop_map(|(r, f)| X86Instr::VmRead(r, f)),
        (any_field(), reg.clone()).prop_map(|(f, r)| X86Instr::VmWrite(f, r)),
        Just(X86Instr::Vmresume),
        Just(X86Instr::VmxPriv),
        (1u64..40).prop_map(X86Instr::Work),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any instruction stream, in any context, with or without VMCS
    /// shadowing, runs to a stop without panicking; the cycle counter
    /// stays sane.
    #[test]
    fn x86_guests_cannot_crash_the_machine(
        instrs in proptest::collection::vec(any_instr(), 1..50),
        nested: bool,
        shadowing: bool,
        start_l2: bool,
    ) {
        let mut m = X86Machine::new(X86MachineConfig {
            ncpus: 2,
            vmcs_shadowing: shadowing,
            nested,
            cost: Default::default(),
        });
        let mut a = X86Asm::new(0x100);
        for i in instrs {
            a.i(i);
        }
        a.i(X86Instr::Halt(1));
        m.load(a.assemble());
        // A handler and a guest-hypervisor landing pad so reflected
        // control flow has somewhere to go.
        let mut h = X86Asm::new(0x5000);
        h.i(X86Instr::ApicEoi);
        h.i(X86Instr::Iret);
        m.load(h.assemble());
        let mut g = X86Asm::new(0x6000);
        g.i(X86Instr::Vmresume);
        g.i(X86Instr::Halt(2));
        m.load(g.assemble());
        m.vmcs12[0].write(VmcsField::HostRip, 0x6000);
        m.vmcs12[0].write(VmcsField::GuestRip, 0x100);
        m.core_mut(0).rip = 0x100;
        m.core_mut(0).handler_base = 0x5000;
        if nested && start_l2 {
            m.ctx[0] = X86Ctx::L2;
        }
        for _ in 0..2_000 {
            match m.step(0) {
                X86Step::Executed => {}
                _ => break,
            }
        }
        prop_assert!(m.counter.cycles() < u64::MAX / 2);
    }
}
