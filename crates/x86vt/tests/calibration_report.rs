use neve_x86vt::testbed::{X86Bench, X86Config, X86TestBed};
fn run(cfg: X86Config, bench: X86Bench, iters: u64) -> neve_cycles::counter::PerOp {
    let mut tb = X86TestBed::new(cfg, bench, iters);
    tb.run(iters)
}
#[test]
fn report() {
    println!("\npaper: HC VM=1188 nested=36345(5t); IO 2307/39108; IPI 2751/45360(9t); EOI 316");
    for b in [
        X86Bench::Hypercall,
        X86Bench::DeviceIo,
        X86Bench::VirtualIpi,
        X86Bench::VirtualEoi,
    ] {
        let it = if b == X86Bench::VirtualIpi { 12 } else { 40 };
        let vm = run(X86Config::Vm, b, it);
        let n = run(X86Config::Nested { shadowing: true }, b, it);
        let noshadow = run(X86Config::Nested { shadowing: false }, b, it);
        println!(
            "{b:?}: VM={} ({:.1}t) nested={} ({:.1}t) no-shadow={} ({:.1}t)",
            vm.cycles, vm.traps, n.cycles, n.traps, noshadow.cycles, noshadow.traps
        );
    }
}
