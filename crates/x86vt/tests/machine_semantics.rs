//! Semantic tests for the x86 machine: exit routing, Turtles
//! reflection/merge, interrupt injection.

use neve_cycles::TrapKind;
use neve_x86vt::isa::{X86Asm, X86Instr};
use neve_x86vt::machine::{X86Ctx, X86Machine, X86MachineConfig, X86Step, GPR_SLOTS};
use neve_x86vt::vmcs::VmcsField;

fn machine(nested: bool, shadowing: bool) -> X86Machine {
    X86Machine::new(X86MachineConfig {
        ncpus: 1,
        vmcs_shadowing: shadowing,
        nested,
        cost: Default::default(),
    })
}

#[test]
fn l1_vmcall_is_serviced_by_l0() {
    let mut m = machine(false, true);
    let mut a = X86Asm::new(100);
    a.i(X86Instr::MovImm(0, 77));
    a.i(X86Instr::Vmcall);
    a.i(X86Instr::Halt(1));
    m.load(a.assemble());
    m.core_mut(0).rip = 100;
    assert_eq!(m.run(0, 10), X86Step::Halted(1));
    assert_eq!(m.l0_hypercalls, 1);
    assert_eq!(m.core(0).gprs[0], 0, "hypercall return value");
    assert_eq!(m.counter.traps_of(TrapKind::VmCall), 1);
}

#[test]
fn mmio_read_returns_device_value() {
    let mut m = machine(false, true);
    let mut a = X86Asm::new(100);
    a.i(X86Instr::MmioRead(2));
    a.i(X86Instr::Halt(1));
    m.load(a.assemble());
    m.core_mut(0).rip = 100;
    m.device_value = 0xabcd;
    assert_eq!(m.run(0, 10), X86Step::Halted(1));
    assert_eq!(m.core(0).gprs[2], 0xabcd);
}

#[test]
fn l2_exit_reflects_into_the_guest_hypervisor() {
    let mut m = machine(true, true);
    // L2 program: a single vmcall.
    let mut a = X86Asm::new(100);
    a.i(X86Instr::Vmcall);
    a.i(X86Instr::Halt(2));
    m.load(a.assemble());
    // Guest hypervisor "handler": just halt so we can observe arrival.
    let mut g = X86Asm::new(500);
    g.i(X86Instr::Halt(9));
    m.load(g.assemble());
    m.vmcs12[0].write(VmcsField::HostRip, 500);
    m.ctx[0] = X86Ctx::L2;
    m.core_mut(0).rip = 100;
    m.core_mut(0).gprs[5] = 1234; // L2 register content
    assert_eq!(m.run(0, 10), X86Step::Halted(9));
    assert_eq!(m.ctx[0], X86Ctx::GhL1, "reflected into L1");
    // Exit information was copied into vmcs12.
    assert_eq!(
        m.vmcs12[0].read(VmcsField::ExitReason),
        neve_x86vt::vmcs::exit_reason::VMCALL
    );
    assert_eq!(m.vmcs12[0].read(VmcsField::GuestRip), 100);
    // L2's registers were spilled to the guest hypervisor's vcpu array.
    assert_eq!(m.mem_read(GPR_SLOTS + 5 * 8), 1234);
}

#[test]
fn vmresume_merges_and_enters_l2() {
    let mut m = machine(true, true);
    // Guest hypervisor: set up vmcs12 and vmresume.
    let mut g = X86Asm::new(500);
    g.i(X86Instr::MovImm(3, 100));
    g.i(X86Instr::VmWrite(VmcsField::GuestRip, 3));
    g.i(X86Instr::Vmresume);
    m.load(g.assemble());
    // L2 target.
    let mut a = X86Asm::new(100);
    a.i(X86Instr::Halt(3));
    m.load(a.assemble());
    m.ctx[0] = X86Ctx::GhL1;
    m.core_mut(0).rip = 500;
    assert_eq!(m.run(0, 10), X86Step::Halted(3));
    assert_eq!(m.ctx[0], X86Ctx::L2);
    assert_eq!(m.counter.traps_of(TrapKind::VmEntryInstr), 1);
}

#[test]
fn unshadowed_vmread_exits_shadowed_does_not() {
    for (shadowing, expect_exits) in [(true, 0u64), (false, 1)] {
        let mut m = machine(true, shadowing);
        let mut g = X86Asm::new(500);
        g.i(X86Instr::VmRead(3, VmcsField::GuestRip));
        g.i(X86Instr::Halt(4));
        m.load(g.assemble());
        m.ctx[0] = X86Ctx::GhL1;
        m.core_mut(0).rip = 500;
        m.vmcs12[0].write(VmcsField::GuestRip, 0x77);
        assert_eq!(m.run(0, 10), X86Step::Halted(4));
        assert_eq!(m.core(0).gprs[3], 0x77, "value correct either way");
        assert_eq!(
            m.counter.traps_of(TrapKind::VmcsAccess),
            expect_exits,
            "shadowing={shadowing}"
        );
    }
}

#[test]
fn injected_interrupt_delivers_without_exit() {
    let mut m = machine(false, true);
    let mut a = X86Asm::new(100);
    a.i(X86Instr::MovImm(7, 1));
    a.i(X86Instr::Halt(5));
    m.load(a.assemble());
    // Handler at 300.
    let mut h = X86Asm::new(300);
    h.i(X86Instr::MovImm(8, 42));
    h.i(X86Instr::ApicEoi);
    h.i(X86Instr::Iret);
    m.load(h.assemble());
    m.core_mut(0).rip = 100;
    m.core_mut(0).handler_base = 300;
    m.core_mut(0).irq_enabled = true;
    m.core_mut(0).pending_irq = Some(0x40);
    let traps_before = m.counter.traps_total();
    assert_eq!(m.run(0, 20), X86Step::Halted(5));
    assert_eq!(m.core(0).gprs[8], 42, "handler ran");
    assert_eq!(m.core(0).gprs[7], 1, "main flow resumed after iret");
    assert_eq!(m.counter.traps_total(), traps_before, "APICv: no exit");
}

#[test]
fn physical_interrupt_forces_an_exit() {
    let mut m = machine(false, true);
    let mut a = X86Asm::new(100);
    a.i(X86Instr::MovImm(7, 1));
    a.i(X86Instr::Halt(5));
    m.load(a.assemble());
    let mut h = X86Asm::new(300);
    h.i(X86Instr::ApicEoi);
    h.i(X86Instr::Iret);
    m.load(h.assemble());
    m.core_mut(0).rip = 100;
    m.core_mut(0).handler_base = 300;
    m.core_mut(0).irq_enabled = true;
    m.core_mut(0).pending_host_irq = Some(0x40);
    assert_eq!(m.run(0, 20), X86Step::Halted(5));
    assert_eq!(m.counter.traps_of(TrapKind::ExtInt), 1);
}

#[test]
fn ipi_between_cores_round_trips() {
    let mut m = X86Machine::new(X86MachineConfig {
        ncpus: 2,
        vmcs_shadowing: true,
        nested: false,
        cost: Default::default(),
    });
    // Sender on core 0.
    let mut a = X86Asm::new(100);
    a.i(X86Instr::MovImm(0, 1 | (0x40 << 8)));
    a.i(X86Instr::SendIpi(0));
    a.i(X86Instr::Halt(6));
    m.load(a.assemble());
    // Receiver on core 1: spin + handler.
    let mut r = X86Asm::new(200);
    r.i(X86Instr::Jmp(200));
    m.load(r.assemble());
    let mut h = X86Asm::new(300);
    h.i(X86Instr::Load(4, 0x9000));
    h.i(X86Instr::AddImm(4, 1));
    h.i(X86Instr::Store(4, 0x9000));
    h.i(X86Instr::ApicEoi);
    h.i(X86Instr::Iret);
    m.load(h.assemble());
    m.core_mut(0).rip = 100;
    m.core_mut(1).rip = 200;
    m.core_mut(1).handler_base = 300;
    m.core_mut(1).irq_enabled = true;
    assert_eq!(m.run(0, 20), X86Step::Halted(6));
    for _ in 0..20 {
        let _ = m.step(1);
    }
    assert_eq!(m.mem_read(0x9000), 1, "receiver handled the IPI");
}
