//! End-to-end x86 microbenchmarks (Tables 1/6 x86 columns).

use neve_x86vt::testbed::{X86Bench, X86Config, X86TestBed};

fn run(cfg: X86Config, bench: X86Bench, iters: u64) -> neve_cycles::counter::PerOp {
    let mut tb = X86TestBed::new(cfg, bench, iters);
    tb.run(iters)
}

#[test]
fn vm_hypercall_is_one_exit_around_a_thousand_cycles() {
    // Paper Table 1: 1,188 cycles, 1 exit.
    let p = run(X86Config::Vm, X86Bench::Hypercall, 50);
    assert!((1.0 - p.traps).abs() < 0.05, "traps {}", p.traps);
    assert!((800..2_000).contains(&p.cycles), "cycles {}", p.cycles);
}

#[test]
fn nested_hypercall_is_a_handful_of_exits() {
    // Paper Table 7: 5 exits per nested hypercall with shadowing.
    let p = run(
        X86Config::Nested { shadowing: true },
        X86Bench::Hypercall,
        50,
    );
    assert!((4.0..7.0).contains(&p.traps), "traps {}", p.traps);
    // Paper Table 1: 36,345 cycles (31x the VM's).
    let vm = run(X86Config::Vm, X86Bench::Hypercall, 50);
    let ratio = p.cycles as f64 / vm.cycles as f64;
    assert!((10.0..60.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn shadowing_off_multiplies_exits() {
    let on = run(
        X86Config::Nested { shadowing: true },
        X86Bench::Hypercall,
        30,
    );
    let off = run(
        X86Config::Nested { shadowing: false },
        X86Bench::Hypercall,
        30,
    );
    assert!(off.traps > 2.0 * on.traps, "{} vs {}", off.traps, on.traps);
    assert!(off.cycles > on.cycles);
}

#[test]
fn device_io_exceeds_hypercall() {
    for cfg in [X86Config::Vm, X86Config::Nested { shadowing: true }] {
        let h = run(cfg, X86Bench::Hypercall, 30);
        let d = run(cfg, X86Bench::DeviceIo, 30);
        assert!(d.cycles > h.cycles, "{cfg:?}: {} <= {}", d.cycles, h.cycles);
    }
}

#[test]
fn virtual_eoi_is_exit_free_and_more_expensive_than_arm() {
    // Paper Tables 1/6: 316 cycles, identical for VM and nested.
    let vm = run(X86Config::Vm, X86Bench::VirtualEoi, 30);
    let nested = run(
        X86Config::Nested { shadowing: true },
        X86Bench::VirtualEoi,
        30,
    );
    assert_eq!(vm.traps, 0.0);
    assert_eq!(nested.traps, 0.0);
    assert_eq!(vm.cycles, nested.cycles);
    assert!((200..500).contains(&vm.cycles), "{}", vm.cycles);
}

#[test]
fn virtual_ipi_works_at_both_levels() {
    let vm = run(X86Config::Vm, X86Bench::VirtualIpi, 15);
    assert!(vm.traps >= 2.0, "sender + receiver exits: {}", vm.traps);
    let nested = run(
        X86Config::Nested { shadowing: true },
        X86Bench::VirtualIpi,
        10,
    );
    assert!(nested.cycles > vm.cycles);
    assert!(nested.traps > vm.traps);
}
