//! Prints the regenerated Figure 2 (run with --nocapture).

use neve_workloads::apps;
use neve_workloads::platforms::MicroMatrix;

#[test]
fn report() {
    let m = MicroMatrix::measure();
    println!("\n{}", apps::render(&apps::figure2(&m)));
}
