//! The parallel-evaluation determinism guarantee: fanning the matrix
//! out across worker threads changes wall-clock time and nothing else.

use neve_workloads::platforms::{Config, MicroMatrix};
use std::sync::OnceLock;

/// One serial reference measurement, shared across the tests here (a
/// full matrix is 28 simulations; measure it once).
fn serial() -> &'static MicroMatrix {
    static M: OnceLock<MicroMatrix> = OnceLock::new();
    M.get_or_init(MicroMatrix::measure)
}

#[test]
fn parallel_matrix_is_bit_identical_to_serial() {
    let parallel = MicroMatrix::measure_parallel(4);
    assert_eq!(&parallel, serial());
    // Equality must include the trap-stat observability data, not just
    // the headline numbers (spell it out in case PartialEq drifts).
    for c in Config::all() {
        assert_eq!(parallel.costs(c), serial().costs(c), "{c:?}");
        assert_eq!(parallel.trap_kinds(c), serial().trap_kinds(c), "{c:?}");
        assert_eq!(parallel.phases(c), serial().phases(c), "{c:?}");
    }
}

#[test]
fn tracing_attached_is_bit_identical_to_detached() {
    // The provenance layer's hard invariant: attaching an execution
    // trace to every session (even a tiny ring that evicts constantly)
    // changes nothing about measured cycles, trap counts, or phase
    // attribution.
    for capacity in [8, 1 << 12] {
        let traced = MicroMatrix::measure_traced(capacity);
        assert_eq!(&traced, serial(), "capacity {capacity}");
    }
}

#[test]
fn worker_count_does_not_leak_into_results() {
    // One worker (degenerate case) and more workers than cells both
    // reproduce the reference exactly.
    assert_eq!(&MicroMatrix::measure_parallel(1), serial());
    assert_eq!(&MicroMatrix::measure_parallel(64), serial());
}

#[test]
fn consecutive_runs_agree() {
    let a = MicroMatrix::measure_parallel(3);
    let b = MicroMatrix::measure_parallel(3);
    assert_eq!(a, b);
}
