//! The serve engine: a long-running job host that accepts batched
//! sweep requests (line-delimited JSON), decomposes them into
//! content-addressed cells ([`crate::jobs`]), schedules the cells on a
//! sharded work-stealing queue, and streams results back as JSONL
//! events.
//!
//! The result store is the coalescing layer: a cell key maps to one
//! slot that is `Queued`, `Running`, or `Done`. The first request to
//! name a key pays for the computation (`"source":"measured"` in its
//! cell event); any request arriving while the slot is in flight
//! attaches as a waiter (`"coalesced"`); a request arriving after
//! completion is answered from memory (`"memory"`); and a
//! full-default-grid request with a valid persistent cache file is
//! answered straight from disk (`"disk"`) without touching the queue.
//!
//! Lock order: the store mutex and the requests mutex are never held
//! at the same time — workers collect deliveries under the store lock,
//! drop it, then deliver under the requests lock. A faulted or
//! cancelled cell streams as a `failed`/`cancelled` event and the rest
//! of the batch completes; nothing poisons the queue.

use crate::cache;
use crate::consolidate::run_consolidate;
use crate::faults::run_campaign;
use crate::fuzz::run_fuzz;
use crate::jobs::{self, CellKey, CellOutcome, CellWork, Command, JobKind, JobRequest};
use crate::platforms::MicroMatrix;
use crate::session::{Bench, CellResult, SimSession};
use crate::throughput::measure_config_with;
use neve_json::JsonValue;
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Where a request's events are written (one JSON object per line).
pub type Sink = Arc<Mutex<dyn Write + Send>>;

/// One slot of the coalescing result store.
enum Slot {
    /// Enqueued, not yet picked up. Holds the work and every request
    /// waiting on it.
    Queued {
        work: Box<CellWork>,
        waiters: Vec<Waiter>,
    },
    /// A worker is executing it; late arrivals still attach here.
    Running { waiters: Vec<Waiter> },
    /// Finished; repeat queries are answered from memory.
    Done(Arc<CellOutcome>),
}

/// A request waiting on a cell, with the provenance tag its cell event
/// will carry (assigned at registration time: the registrant that
/// created the slot is `"measured"`, in-flight joiners `"coalesced"`).
struct Waiter {
    request: String,
    source: &'static str,
}

/// Per-request bookkeeping, alive from accept to the `done` event.
struct RequestState {
    kind: JobKind,
    /// Every bench per config present and deduped: the `done` event
    /// may carry an assembled matrix.
    full_benches: bool,
    /// Full-default-grid request that missed the disk cache: the
    /// assembled matrix is written back on completion.
    write_back: bool,
    pending: usize,
    ok: usize,
    failed: usize,
    cancelled: usize,
    cells: Vec<(CellKey, Option<Arc<CellOutcome>>)>,
    sink: Sink,
}

struct Signal {
    /// Cells enqueued and not yet claimed, across every shard.
    queued: usize,
    shutdown: bool,
}

struct Shared {
    fingerprint: u64,
    cache_path: Option<PathBuf>,
    max_queued: usize,
    queues: Vec<Mutex<VecDeque<CellKey>>>,
    next_shard: AtomicUsize,
    signal: Mutex<Signal>,
    cond: Condvar,
    store: Mutex<BTreeMap<CellKey, Slot>>,
    requests: Mutex<BTreeMap<String, RequestState>>,
    /// Signalled every time a request finalizes (for [`JobEngine::drain`]).
    done_cond: Condvar,
    /// Cells actually executed (coalesced and memory hits excluded) —
    /// the observable the coalescing smoke asserts on.
    computed: AtomicU64,
}

/// The long-running job engine. Dropping it stops the workers.
pub struct JobEngine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

fn event(pairs: Vec<(&str, JsonValue)>) -> String {
    JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect()).compact()
}

fn emit(sink: &Sink, line: &str) {
    if let Ok(mut s) = sink.lock() {
        let _ = writeln!(s, "{line}");
        let _ = s.flush();
    }
}

fn error_event(id: &str, error: String) -> String {
    event(vec![
        ("event", JsonValue::String("error".into())),
        ("id", JsonValue::String(id.into())),
        ("error", JsonValue::String(error)),
    ])
}

fn cell_location(pairs: &mut Vec<(&str, JsonValue)>, key: &CellKey) {
    match (key.config, key.bench) {
        (Some(c), Some(b)) => {
            pairs.push(("config", JsonValue::String(c.label().into())));
            pairs.push(("bench", JsonValue::String(b.label().into())));
        }
        _ => pairs.push(("kind", JsonValue::String(key.kind.into()))),
    }
}

fn cell_event(id: &str, key: &CellKey, outcome: &CellOutcome, source: &str) -> String {
    let mut pairs: Vec<(&str, JsonValue)> = vec![
        ("event", JsonValue::String("cell".into())),
        ("id", JsonValue::String(id.into())),
    ];
    cell_location(&mut pairs, key);
    match outcome {
        CellOutcome::Micro(CellResult::Ok(m)) => {
            pairs.push(("status", JsonValue::String("ok".into())));
            pairs.push(("cycles", JsonValue::from(m.per_op.cycles)));
            pairs.push(("traps", JsonValue::from(m.per_op.traps)));
        }
        CellOutcome::Micro(CellResult::Failed { fault, .. }) => {
            pairs.push(("status", JsonValue::String("failed".into())));
            pairs.push(("error", JsonValue::String(fault.describe())));
        }
        CellOutcome::Report(_) => pairs.push(("status", JsonValue::String("ok".into()))),
        CellOutcome::Error(e) => {
            pairs.push(("status", JsonValue::String("failed".into())));
            pairs.push(("error", JsonValue::String(e.clone())));
        }
    }
    pairs.push(("source", JsonValue::String(source.into())));
    event(pairs)
}

fn outcome_failed(outcome: &CellOutcome) -> bool {
    matches!(
        outcome,
        CellOutcome::Micro(CellResult::Failed { .. }) | CellOutcome::Error(_)
    )
}

fn execute(work: &CellWork) -> CellOutcome {
    let run = || match work {
        CellWork::Micro {
            config,
            bench,
            engine,
            budget,
            plan,
        } => {
            let mut s = SimSession::new(*config, *bench);
            s.set_engine(*engine);
            if let Some(plan) = plan {
                s.attach_fault_plan(plan);
            }
            if let Some(budget) = budget {
                s.set_step_budget(*budget);
            }
            CellOutcome::Micro(s.run())
        }
        CellWork::Faults(spec) => match run_campaign(spec) {
            Ok(report) => CellOutcome::Report(report.render()),
            Err(e) => CellOutcome::Error(e),
        },
        CellWork::Fuzz(spec) => match run_fuzz(spec) {
            Ok(report) => CellOutcome::Report(report.render()),
            Err(e) => CellOutcome::Error(e),
        },
        CellWork::Consolidate(spec) => match run_consolidate(*spec) {
            Ok(report) => CellOutcome::Report(report.render()),
            Err(e) => CellOutcome::Error(e),
        },
        CellWork::BenchSim { samples, engine } => {
            let mut c = criterion::Criterion::default();
            let mut out = String::new();
            for config in [
                crate::platforms::Config::ArmVm,
                crate::platforms::Config::ArmNestedV83,
            ] {
                let t = measure_config_with(&mut c, config, *samples, *engine);
                out.push_str(&format!(
                    "{:<20} {:>14.0} steps/sec\n",
                    t.config.label(),
                    t.steps_per_sec()
                ));
            }
            CellOutcome::Report(out)
        }
    };
    // The last containment layer: a panic in a cell becomes that
    // cell's structured failure, never a dead worker.
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
        Ok(outcome) => outcome,
        Err(payload) => CellOutcome::Error(format!(
            "cell panicked: {}",
            crate::session::panic_message(payload.as_ref())
        )),
    }
}

/// Delivers one finished cell to its waiters under the requests lock
/// (the store lock must already be released) and finalizes any request
/// whose last cell this was.
fn deliver(shared: &Shared, key: &CellKey, outcome: &Arc<CellOutcome>, waiters: &[Waiter]) {
    let mut requests = shared.requests.lock().unwrap();
    let mut finished: Vec<(String, RequestState)> = Vec::new();
    for waiter in waiters {
        let Some(state) = requests.get_mut(&waiter.request) else {
            continue; // cancelled while in flight
        };
        let Some(cell) = state
            .cells
            .iter_mut()
            .find(|(k, o)| k == key && o.is_none())
        else {
            continue;
        };
        cell.1 = Some(Arc::clone(outcome));
        if outcome_failed(outcome) {
            state.failed += 1;
        } else {
            state.ok += 1;
        }
        state.pending -= 1;
        emit(
            &state.sink,
            &cell_event(&waiter.request, key, outcome, waiter.source),
        );
        if state.pending == 0 {
            let state = requests.remove(&waiter.request).unwrap();
            finished.push((waiter.request.clone(), state));
        }
    }
    drop(requests);
    for (id, state) in finished {
        finalize(shared, &id, state);
    }
    shared.done_cond.notify_all();
}

/// Emits a request's `done` event — with the assembled matrix for
/// full-bench micro requests, or the rendered report for the campaign
/// kinds — and writes a freshly measured full default grid back to the
/// disk cache.
fn finalize(shared: &Shared, id: &str, state: RequestState) {
    let mut pairs: Vec<(&str, JsonValue)> = vec![
        ("event", JsonValue::String("done".into())),
        ("id", JsonValue::String(id.into())),
        ("ok", JsonValue::from(state.ok as u64)),
        ("failed", JsonValue::from(state.failed as u64)),
    ];
    if state.kind == JobKind::Micro {
        if state.full_benches {
            let cells: Vec<CellResult> = state
                .cells
                .iter()
                .filter_map(|(_, o)| match o.as_deref() {
                    Some(CellOutcome::Micro(r)) => Some(r.clone()),
                    _ => None,
                })
                .collect();
            if cells.len() == state.cells.len() {
                let matrix = MicroMatrix::from_cells(cells);
                let json = cache::to_json(&matrix, shared.fingerprint);
                if state.write_back && state.failed == 0 {
                    if let Some(path) = &shared.cache_path {
                        if let Some(dir) = path.parent() {
                            let _ = std::fs::create_dir_all(dir);
                        }
                        let _ = cache::write_atomically(path, &json);
                    }
                }
                pairs.push(("matrix", JsonValue::String(json)));
            }
        }
    } else if let Some((_, Some(outcome))) = state.cells.first() {
        // Report kinds have exactly one cell.
        match outcome.as_ref() {
            CellOutcome::Report(text) => pairs.push(("report", JsonValue::String(text.clone()))),
            CellOutcome::Error(e) => pairs.push(("error", JsonValue::String(e.clone()))),
            CellOutcome::Micro(_) => {}
        }
    }
    emit(&state.sink, &event(pairs));
}

fn worker_loop(shared: &Shared, shard: usize) {
    loop {
        {
            let mut signal = shared.signal.lock().unwrap();
            while signal.queued == 0 {
                if signal.shutdown {
                    return;
                }
                signal = shared.cond.wait(signal).unwrap();
            }
            signal.queued -= 1;
        }
        // A claim is backed by at least one enqueued key (keys are
        // enqueued before `queued` is bumped): scan own shard first,
        // then steal from the others' opposite end.
        let key = loop {
            if let Some(k) = shared.queues[shard].lock().unwrap().pop_front() {
                break k;
            }
            let mut stolen = None;
            for (i, q) in shared.queues.iter().enumerate() {
                if i == shard {
                    continue;
                }
                if let Some(k) = q.lock().unwrap().pop_back() {
                    stolen = Some(k);
                    break;
                }
            }
            if let Some(k) = stolen {
                break k;
            }
            std::thread::yield_now();
        };
        let work = {
            let mut store = shared.store.lock().unwrap();
            match store.get_mut(&key) {
                Some(slot @ Slot::Queued { .. }) => {
                    let Slot::Queued { work, waiters } = std::mem::replace(
                        slot,
                        Slot::Running {
                            waiters: Vec::new(),
                        },
                    ) else {
                        unreachable!()
                    };
                    *slot = Slot::Running { waiters };
                    Some(work)
                }
                // Cancelled (slot removed) or already claimed: no-op.
                _ => None,
            }
        };
        let Some(work) = work else {
            continue;
        };
        let outcome = Arc::new(execute(&work));
        shared.computed.fetch_add(1, Ordering::Relaxed);
        let waiters = {
            let mut store = shared.store.lock().unwrap();
            let Some(Slot::Running { waiters }) = store.remove(&key) else {
                continue;
            };
            if work.cacheable() {
                store.insert(key.clone(), Slot::Done(Arc::clone(&outcome)));
            }
            waiters
        };
        // Lock-order rule: store lock dropped before requests lock.
        deliver(shared, &key, &outcome, &waiters);
    }
}

impl JobEngine {
    /// Builds an engine with `jobs` worker threads. `cache_path`
    /// layers the persistent matrix cache under the in-memory store
    /// (`None` disables the disk tier). `jobs == 0` is a test-only
    /// shape: cells queue but never execute.
    pub fn new(
        jobs: usize,
        fingerprint: u64,
        cache_path: Option<PathBuf>,
        max_queued: usize,
    ) -> Self {
        let shards = jobs.max(1);
        let shared = Arc::new(Shared {
            fingerprint,
            cache_path,
            max_queued,
            queues: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            next_shard: AtomicUsize::new(0),
            signal: Mutex::new(Signal {
                queued: 0,
                shutdown: false,
            }),
            cond: Condvar::new(),
            store: Mutex::new(BTreeMap::new()),
            requests: Mutex::new(BTreeMap::new()),
            done_cond: Condvar::new(),
            computed: AtomicU64::new(0),
        });
        let workers = (0..jobs)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, i))
            })
            .collect();
        Self {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Cells executed so far (memory/disk/coalesced hits excluded).
    pub fn computed(&self) -> u64 {
        self.shared.computed.load(Ordering::Relaxed)
    }

    /// Handles one parsed protocol command, streaming this request's
    /// events to `sink`.
    pub fn handle(&self, cmd: Command, sink: &Sink) {
        match cmd {
            Command::Submit(req) => self.submit(req, sink),
            Command::Cancel(id) => self.cancel(&id, sink),
        }
    }

    /// Submits one job request. Every outcome — acceptance, each cell,
    /// completion, or a structured refusal — is an event on `sink`.
    pub fn submit(&self, req: JobRequest, sink: &Sink) {
        let cells = match req.cells(self.shared.fingerprint) {
            Ok(cells) => cells,
            Err(e) => {
                emit(sink, &error_event(&req.id, e));
                return;
            }
        };
        // Dedup within the request: duplicate config/bench entries
        // collapse to one cell (they would race on one store slot).
        let mut unique: Vec<(CellKey, CellWork)> = Vec::new();
        for (key, work) in cells {
            if !unique.iter().any(|(k, _)| *k == key) {
                unique.push((key, work));
            }
        }
        if self.shared.requests.lock().unwrap().contains_key(&req.id) {
            emit(
                sink,
                &error_event(&req.id, "a request with this id is already active".into()),
            );
            return;
        }
        emit(
            sink,
            &event(vec![
                ("event", JsonValue::String("accepted".into())),
                ("id", JsonValue::String(req.id.clone())),
                ("job", JsonValue::String(req.kind.label().into())),
                ("cells", JsonValue::from(unique.len() as u64)),
            ]),
        );

        // Disk tier: the exact grid the persistent cache stores, with a
        // valid clean file present, streams straight from disk.
        let mut disk_miss = false;
        if req.is_full_default_grid() {
            if let Some(path) = &self.shared.cache_path {
                let valid = std::fs::read_to_string(path)
                    .ok()
                    .and_then(|text| {
                        cache::from_json(&text, self.shared.fingerprint).map(|m| (text, m))
                    })
                    .filter(|(_, m)| !m.has_failures());
                match valid {
                    Some((text, matrix)) => {
                        stream_from_disk(&req, &unique, &matrix, &text, sink);
                        return;
                    }
                    None => disk_miss = true,
                }
            }
        }

        // Backpressure: refuse rather than queue without bound. The
        // per-cell step budget (watchdog) bounds each admitted cell.
        {
            let signal = self.shared.signal.lock().unwrap();
            if signal.queued + unique.len() > self.shared.max_queued {
                drop(signal);
                emit(
                    sink,
                    &error_event(
                        &req.id,
                        format!(
                            "queue full (cap {} cells); retry later",
                            self.shared.max_queued
                        ),
                    ),
                );
                return;
            }
        }

        let id = req.id.clone();
        self.shared.requests.lock().unwrap().insert(
            id.clone(),
            RequestState {
                kind: req.kind,
                full_benches: req.kind == JobKind::Micro
                    && Bench::all().iter().all(|b| req.benches.contains(b)),
                write_back: disk_miss,
                pending: unique.len(),
                ok: 0,
                failed: 0,
                cancelled: 0,
                cells: unique.iter().map(|(k, _)| (k.clone(), None)).collect(),
                sink: Arc::clone(sink),
            },
        );

        // Register every cell against the store, collecting memory hits
        // for delivery after the lock drops (lock-order rule).
        let mut hits: Vec<(CellKey, Arc<CellOutcome>)> = Vec::new();
        let mut fresh: Vec<CellKey> = Vec::new();
        {
            let mut store = self.shared.store.lock().unwrap();
            for (key, work) in unique {
                match store.get_mut(&key) {
                    Some(Slot::Done(outcome)) => hits.push((key, Arc::clone(outcome))),
                    Some(Slot::Queued { waiters, .. }) | Some(Slot::Running { waiters }) => {
                        waiters.push(Waiter {
                            request: id.clone(),
                            source: "coalesced",
                        });
                    }
                    None => {
                        store.insert(
                            key.clone(),
                            Slot::Queued {
                                work: Box::new(work),
                                waiters: vec![Waiter {
                                    request: id.clone(),
                                    source: "measured",
                                }],
                            },
                        );
                        fresh.push(key);
                    }
                }
            }
        }
        for key in fresh {
            let shard =
                self.shared.next_shard.fetch_add(1, Ordering::Relaxed) % self.shared.queues.len();
            self.shared.queues[shard].lock().unwrap().push_back(key);
            self.shared.signal.lock().unwrap().queued += 1;
            self.shared.cond.notify_one();
        }
        for (key, outcome) in hits {
            deliver(
                &self.shared,
                &key,
                &outcome,
                &[Waiter {
                    request: id.clone(),
                    source: "memory",
                }],
            );
        }
    }

    /// Cancels an active request: undelivered cells stream as
    /// `cancelled`, the request finalizes immediately, and orphaned
    /// queued cells (no remaining waiter) are dropped from the store.
    pub fn cancel(&self, id: &str, sink: &Sink) {
        let state = self.shared.requests.lock().unwrap().remove(id);
        let Some(mut state) = state else {
            emit(
                sink,
                &error_event(id, "no active request with this id".into()),
            );
            return;
        };
        for (key, outcome) in &state.cells {
            if outcome.is_some() {
                continue;
            }
            state.cancelled += 1;
            let mut pairs: Vec<(&str, JsonValue)> = vec![
                ("event", JsonValue::String("cell".into())),
                ("id", JsonValue::String(id.into())),
            ];
            cell_location(&mut pairs, key);
            pairs.push(("status", JsonValue::String("cancelled".into())));
            pairs.push(("source", JsonValue::String("cancelled".into())));
            emit(&state.sink, &event(pairs));
        }
        emit(
            &state.sink,
            &event(vec![
                ("event", JsonValue::String("done".into())),
                ("id", JsonValue::String(id.into())),
                ("ok", JsonValue::from(state.ok as u64)),
                ("failed", JsonValue::from(state.failed as u64)),
                ("cancelled", JsonValue::from(state.cancelled as u64)),
            ]),
        );
        self.shared.done_cond.notify_all();
        // Drop this request's waiters; a queued slot nobody waits on
        // any more is removed (its queue entry becomes a no-op pop).
        let mut store = self.shared.store.lock().unwrap();
        let orphaned: Vec<CellKey> = store
            .iter_mut()
            .filter_map(|(key, slot)| match slot {
                Slot::Queued { waiters, .. } => {
                    waiters.retain(|w| w.request != id);
                    waiters.is_empty().then(|| key.clone())
                }
                Slot::Running { waiters } => {
                    waiters.retain(|w| w.request != id);
                    None // the worker owns it; the result lands in Done
                }
                Slot::Done(_) => None,
            })
            .collect();
        for key in orphaned {
            store.remove(&key);
        }
    }

    /// Blocks until every active request has finalized.
    pub fn drain(&self) {
        let mut requests = self.shared.requests.lock().unwrap();
        while !requests.is_empty() {
            requests = self.shared.done_cond.wait(requests).unwrap();
        }
    }
}

impl Drop for JobEngine {
    fn drop(&mut self) {
        self.shared.signal.lock().unwrap().shutdown = true;
        self.shared.cond.notify_all();
        for w in self.workers.lock().unwrap().drain(..) {
            let _ = w.join();
        }
    }
}

fn stream_from_disk(
    req: &JobRequest,
    cells: &[(CellKey, CellWork)],
    matrix: &MicroMatrix,
    raw: &str,
    sink: &Sink,
) {
    let mut ok = 0u64;
    for (key, _) in cells {
        let (Some(config), Some(bench)) = (key.config, key.bench) else {
            continue;
        };
        let costs = matrix.costs(config);
        let per_op = match bench {
            Bench::Hypercall => costs.hypercall,
            Bench::DeviceIo => costs.device_io,
            Bench::VirtualIpi => costs.virtual_ipi,
            Bench::VirtualEoi => costs.virtual_eoi,
        };
        ok += 1;
        emit(
            sink,
            &event(vec![
                ("event", JsonValue::String("cell".into())),
                ("id", JsonValue::String(req.id.clone())),
                ("config", JsonValue::String(config.label().into())),
                ("bench", JsonValue::String(bench.label().into())),
                ("status", JsonValue::String("ok".into())),
                ("cycles", JsonValue::from(per_op.cycles)),
                ("traps", JsonValue::from(per_op.traps)),
                ("source", JsonValue::String("disk".into())),
            ]),
        );
    }
    // The raw validated file text, verbatim: byte-identity with the
    // one-shot CLI's `--json` output is the protocol contract.
    emit(
        sink,
        &event(vec![
            ("event", JsonValue::String("done".into())),
            ("id", JsonValue::String(req.id.clone())),
            ("ok", JsonValue::from(ok)),
            ("failed", JsonValue::from(0u64)),
            ("matrix", JsonValue::String(raw.to_string())),
        ]),
    );
}

/// Runs the line protocol: one request or cancel per line, events
/// interleaved onto `sink`, until EOF; then drains the engine so every
/// accepted request has streamed its `done` event.
pub fn run_protocol(reader: impl BufRead, sink: &Sink, engine: &JobEngine) {
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match jobs::parse_request(line) {
            Ok(cmd) => engine.handle(cmd, sink),
            Err(e) => emit(sink, &error_event("", e)),
        }
    }
    engine.drain();
}

/// Binds a TCP listener and serves each connection with the shared
/// engine (one reader thread per connection; cross-connection requests
/// coalesce in the same store). Returns the bound address and the
/// accept-loop handle; the loop runs until the process exits.
pub fn listen(
    engine: Arc<JobEngine>,
    addr: &str,
) -> std::io::Result<(std::net::SocketAddr, std::thread::JoinHandle<()>)> {
    let listener = std::net::TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let handle = std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(stream) = conn else { continue };
            let Ok(reader) = stream.try_clone() else {
                continue;
            };
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let sink: Sink = Arc::new(Mutex::new(stream));
                run_protocol(std::io::BufReader::new(reader), &sink, &engine);
            });
        }
    });
    Ok((local, handle))
}

/// A `Write` handle over a shared byte buffer (test/smoke sinks that
/// are read back after `drain`).
#[derive(Clone, Default)]
pub struct SharedBuf(pub Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// The buffered text so far.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().unwrap()).into_owned()
    }

    /// Wraps this buffer as a protocol sink.
    pub fn sink(&self) -> Sink {
        Arc::new(Mutex::new(self.clone()))
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Parses the JSONL a sink captured back into event objects.
pub fn parse_events(text: &str) -> Vec<JsonValue> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| neve_json::parse(l).expect("engine emitted invalid JSON"))
        .collect()
}

fn events_for<'a>(events: &'a [JsonValue], id: &str) -> Vec<&'a JsonValue> {
    events
        .iter()
        .filter(|e| e.get("id").and_then(|v| v.as_str()) == Some(id))
        .collect()
}

fn str_of<'a>(e: &'a JsonValue, key: &str) -> &'a str {
    e.get(key).and_then(|v| v.as_str()).unwrap_or("")
}

/// The CI smoke: proves the three serve contracts on a live engine.
///
/// 1. **Coalescing** — two identical partial-grid requests cost one
///    computation per cell (`computed == cells`), the second served
///    entirely from the store (`coalesced`/`memory`, never
///    `measured`).
/// 2. **Byte-identity** — a full-default-grid request's `done.matrix`
///    is byte-identical to the serially assembled one-shot matrix.
/// 3. **Budget containment** — an under-budget cell streams `failed`
///    while the rest of the batch completes `ok`.
///
/// # Errors
///
/// A human-readable description of the first violated contract.
pub fn smoke() -> Result<(), String> {
    use crate::platforms::Config;
    let fingerprint = neve_cycles::CostModel::default().fingerprint();

    // 1: coalescing. Two cheap configs, all four benches, twice.
    let engine = JobEngine::new(2, fingerprint, None, 1024);
    let grid = |id: &str| JobRequest {
        id: id.into(),
        kind: JobKind::Micro,
        configs: vec![Config::ArmVm, Config::X86Vm],
        benches: Bench::all().to_vec(),
        engine: neve_armv8::Engine::default(),
        budget: None,
        plan: None,
        seed: 2017,
        cases: 8,
        smoke: true,
        samples: 1,
    };
    let buf = SharedBuf::default();
    let sink = buf.sink();
    engine.submit(grid("a"), &sink);
    engine.submit(grid("b"), &sink);
    engine.drain();
    if engine.computed() != 8 {
        return Err(format!(
            "coalescing: expected 8 computed cells for two identical 8-cell requests, got {}",
            engine.computed()
        ));
    }
    let events = parse_events(&buf.text());
    let b_cells: Vec<_> = events_for(&events, "b")
        .into_iter()
        .filter(|e| str_of(e, "event") == "cell")
        .collect();
    if b_cells.len() != 8 {
        return Err(format!(
            "coalescing: request b streamed {} cells, expected 8",
            b_cells.len()
        ));
    }
    if b_cells.iter().any(|e| str_of(e, "source") == "measured") {
        return Err("coalescing: request b re-measured a cell the store already owned".into());
    }
    drop(engine);

    // 2: byte-identity. A full default grid through the engine (disk
    // tier disabled) must serialize exactly as the serial one-shot
    // path does.
    let engine = JobEngine::new(2, fingerprint, None, 1024);
    let full = JobRequest {
        id: "full".into(),
        kind: JobKind::Micro,
        configs: Config::all().to_vec(),
        benches: Bench::all().to_vec(),
        engine: neve_armv8::Engine::default(),
        budget: None,
        plan: None,
        seed: 2017,
        cases: 8,
        smoke: true,
        samples: 1,
    };
    let buf = SharedBuf::default();
    let sink = buf.sink();
    engine.submit(full, &sink);
    engine.drain();
    let events = parse_events(&buf.text());
    let done = events
        .iter()
        .find(|e| str_of(e, "event") == "done" && str_of(e, "id") == "full")
        .ok_or("byte-identity: no done event for the full-grid request")?;
    let streamed = str_of(done, "matrix");
    if streamed.is_empty() {
        return Err("byte-identity: done event carries no matrix".into());
    }
    let serial = cache::to_json(&MicroMatrix::measure(), fingerprint);
    if streamed != serial {
        return Err("byte-identity: streamed matrix differs from the serially measured one".into());
    }
    // When the repo's cache file is valid for this fingerprint, the
    // serve output must also match it byte-for-byte.
    if let Ok(text) = std::fs::read_to_string(cache::CACHE_PATH) {
        if cache::from_json(&text, fingerprint).is_some() && streamed != text {
            return Err(format!(
                "byte-identity: streamed matrix differs from {}",
                cache::CACHE_PATH
            ));
        }
    }
    drop(engine);

    // 3: budget containment. 2000 steps admits the single-level
    // hypercall but starves the nested one; the starved cell must
    // stream `failed` while the other completes.
    let engine = JobEngine::new(2, fingerprint, None, 1024);
    let budget = JobRequest {
        id: "tight".into(),
        kind: JobKind::Micro,
        configs: vec![Config::ArmVm, Config::ArmNestedV83],
        benches: vec![Bench::Hypercall],
        engine: neve_armv8::Engine::default(),
        budget: Some(2000),
        plan: None,
        seed: 2017,
        cases: 8,
        smoke: true,
        samples: 1,
    };
    let buf = SharedBuf::default();
    let sink = buf.sink();
    engine.submit(budget, &sink);
    engine.drain();
    let events = parse_events(&buf.text());
    let done = events
        .iter()
        .find(|e| str_of(e, "event") == "done" && str_of(e, "id") == "tight")
        .ok_or("budget: no done event for the budgeted request")?;
    let ok = done.get("ok").and_then(|v| v.as_u64());
    let failed = done.get("failed").and_then(|v| v.as_u64());
    if (ok, failed) != (Some(1), Some(1)) {
        return Err(format!(
            "budget: expected ok=1 failed=1 under a 2000-step budget, got ok={ok:?} failed={failed:?}"
        ));
    }
    let starved = events.iter().any(|e| {
        str_of(e, "event") == "cell"
            && str_of(e, "config") == Config::ArmNestedV83.label()
            && str_of(e, "status") == "failed"
    });
    if !starved {
        return Err("budget: the nested hypercall cell did not stream as failed".into());
    }
    println!(
        "serve smoke: coalescing (8 computed for 16 requested cells), \
         matrix byte-identity, and budget containment all hold"
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms::Config;

    fn micro_req(id: &str, configs: Vec<Config>, benches: Vec<Bench>) -> JobRequest {
        JobRequest {
            id: id.into(),
            kind: JobKind::Micro,
            configs,
            benches,
            engine: neve_armv8::Engine::default(),
            budget: None,
            plan: None,
            seed: 2017,
            cases: 8,
            smoke: true,
            samples: 1,
        }
    }

    fn done_of<'a>(events: &'a [JsonValue], id: &str) -> &'a JsonValue {
        events
            .iter()
            .find(|e| str_of(e, "event") == "done" && str_of(e, "id") == id)
            .expect("done event")
    }

    #[test]
    fn duplicate_requests_coalesce_onto_one_computation() {
        let fp = neve_cycles::CostModel::default().fingerprint();
        let engine = JobEngine::new(2, fp, None, 64);
        let buf = SharedBuf::default();
        let sink = buf.sink();
        // Same cell three times (cheap: single-level x86 hypercall).
        for id in ["r1", "r2", "r3"] {
            engine.submit(
                micro_req(id, vec![Config::X86Vm], vec![Bench::Hypercall]),
                &sink,
            );
        }
        engine.drain();
        assert_eq!(engine.computed(), 1, "one cell key, one computation");
        let events = parse_events(&buf.text());
        for id in ["r1", "r2", "r3"] {
            let done = done_of(&events, id);
            assert_eq!(done.get("ok").and_then(|v| v.as_u64()), Some(1));
        }
        // Exactly one request measured; the others hit the store.
        let sources: Vec<String> = events
            .iter()
            .filter(|e| str_of(e, "event") == "cell")
            .map(|e| str_of(e, "source").to_string())
            .collect();
        assert_eq!(sources.iter().filter(|s| *s == "measured").count(), 1);
        assert_eq!(sources.len(), 3);
    }

    #[test]
    fn cell_results_are_byte_identical_to_the_serial_path() {
        // The full default grid through the engine must assemble to
        // exactly the serial one-shot bytes (jobs=2 exercises the
        // work-stealing order independence).
        let fp = neve_cycles::CostModel::default().fingerprint();
        let engine = JobEngine::new(2, fp, None, 64);
        let buf = SharedBuf::default();
        let sink = buf.sink();
        engine.submit(
            micro_req("m", Config::all().to_vec(), Bench::all().to_vec()),
            &sink,
        );
        engine.drain();
        let events = parse_events(&buf.text());
        let done = done_of(&events, "m");
        let streamed = str_of(done, "matrix");
        assert!(!streamed.is_empty());
        assert_eq!(
            streamed,
            cache::to_json(&MicroMatrix::measure(), fp),
            "streamed matrix must be byte-identical to the serial path"
        );
    }

    #[test]
    fn budget_starved_cells_stream_failed_without_poisoning_the_batch() {
        let fp = neve_cycles::CostModel::default().fingerprint();
        let engine = JobEngine::new(1, fp, None, 64);
        let buf = SharedBuf::default();
        let sink = buf.sink();
        let mut req = micro_req(
            "b",
            vec![Config::ArmVm, Config::ArmNestedV83],
            vec![Bench::Hypercall],
        );
        req.budget = Some(2000); // admits ArmVm (98 steps), starves nested
        engine.submit(req, &sink);
        engine.drain();
        let events = parse_events(&buf.text());
        let done = done_of(&events, "b");
        assert_eq!(done.get("ok").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(done.get("failed").and_then(|v| v.as_u64()), Some(1));
        assert!(events.iter().any(|e| {
            str_of(e, "config") == Config::ArmNestedV83.label()
                && str_of(e, "status") == "failed"
                && !str_of(e, "error").is_empty()
        }));
    }

    #[test]
    fn cancel_streams_cancelled_cells_and_orphans_queued_work() {
        let fp = neve_cycles::CostModel::default().fingerprint();
        // Zero workers: everything stays queued, so cancellation is
        // fully deterministic.
        let engine = JobEngine::new(0, fp, None, 64);
        let buf = SharedBuf::default();
        let sink = buf.sink();
        engine.submit(
            micro_req(
                "c",
                vec![Config::X86Vm],
                vec![Bench::Hypercall, Bench::DeviceIo],
            ),
            &sink,
        );
        engine.cancel("c", &sink);
        engine.drain(); // returns immediately: cancel finalized it
        let events = parse_events(&buf.text());
        let done = done_of(&events, "c");
        assert_eq!(done.get("cancelled").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(
            events
                .iter()
                .filter(|e| str_of(e, "status") == "cancelled")
                .count(),
            2
        );
        // Cancelling an unknown id is a structured error, not a panic.
        engine.cancel("ghost", &sink);
        let events = parse_events(&buf.text());
        assert!(events
            .iter()
            .any(|e| str_of(e, "event") == "error" && str_of(e, "id") == "ghost"));
    }

    #[test]
    fn the_line_protocol_streams_errors_and_results() {
        let fp = neve_cycles::CostModel::default().fingerprint();
        let engine = JobEngine::new(1, fp, None, 64);
        let buf = SharedBuf::default();
        let sink = buf.sink();
        let input = "not json\n\
                     {\"id\":\"p\",\"configs\":[\"x86-vm\"],\"benches\":[\"hypercall\"]}\n\
                     {\"id\":\"bad\",\"configs\":[\"warp-drive\"]}\n";
        run_protocol(std::io::BufReader::new(input.as_bytes()), &sink, &engine);
        let events = parse_events(&buf.text());
        assert!(events
            .iter()
            .any(|e| str_of(e, "event") == "error" && str_of(e, "error").contains("JSON")));
        assert!(events
            .iter()
            .any(|e| str_of(e, "event") == "error" && str_of(e, "error").contains("warp-drive")));
        let done = done_of(&events, "p");
        assert_eq!(done.get("ok").and_then(|v| v.as_u64()), Some(1));
    }

    #[test]
    fn disk_tier_serves_a_valid_cache_file_verbatim() {
        let fp = neve_cycles::CostModel::default().fingerprint();
        let dir = std::env::temp_dir().join(format!("neve-serve-disk-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("micro_matrix.json");
        // Seed the disk tier with a measured matrix.
        let text = cache::to_json(&MicroMatrix::measure(), fp);
        cache::write_atomically(&path, &text).unwrap();

        let engine = JobEngine::new(1, fp, Some(path.clone()), 64);
        let buf = SharedBuf::default();
        let sink = buf.sink();
        engine.submit(
            micro_req("d", Config::all().to_vec(), Bench::all().to_vec()),
            &sink,
        );
        engine.drain();
        assert_eq!(
            engine.computed(),
            0,
            "a valid disk cache costs no computation"
        );
        let events = parse_events(&buf.text());
        let cells: Vec<_> = events
            .iter()
            .filter(|e| str_of(e, "event") == "cell")
            .collect();
        assert_eq!(cells.len(), Config::all().len() * 4);
        assert!(cells.iter().all(|e| str_of(e, "source") == "disk"));
        assert_eq!(str_of(done_of(&events, "d"), "matrix"), text);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tcp_connections_share_the_coalescing_store() {
        let fp = neve_cycles::CostModel::default().fingerprint();
        let engine = Arc::new(JobEngine::new(1, fp, None, 64));
        let Ok((addr, _accept)) = listen(Arc::clone(&engine), "127.0.0.1:0") else {
            eprintln!("skipping: cannot bind a loopback listener in this sandbox");
            return;
        };
        let ask = |id: &str| -> Vec<String> {
            use std::io::{BufRead, BufReader, Write};
            let mut conn = std::net::TcpStream::connect(addr).unwrap();
            writeln!(
                conn,
                "{{\"id\":\"{id}\",\"configs\":[\"x86-vm\"],\"benches\":[\"hypercall\"]}}"
            )
            .unwrap();
            let mut lines = Vec::new();
            for line in BufReader::new(conn.try_clone().unwrap()).lines() {
                let line = line.unwrap();
                let is_done = line.contains("\"done\"");
                lines.push(line);
                if is_done {
                    break;
                }
            }
            lines
        };
        let first = ask("t1");
        let second = ask("t2");
        assert!(first.iter().any(|l| l.contains("\"measured\"")));
        assert!(
            second.iter().any(|l| l.contains("\"memory\"")),
            "the second connection must hit the shared store: {second:?}"
        );
        assert_eq!(engine.computed(), 1);
    }
}
