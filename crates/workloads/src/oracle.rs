//! The `neve-oracle` correctness layer: the paper's semantic identities
//! turned into executable bug detectors (`neve check`).
//!
//! NEVE (paper Section 4) is *semantics-preserving by construction*: it
//! changes how virtual-EL2 system-register accesses are serviced
//! (deferred to the VNCR page instead of trapped), never what they mean.
//! That design claim makes three families of cross-configuration checks
//! well-defined, and this module enforces all of them:
//!
//! 1. **Differential state oracle** ([`diff_pair`]): run the same
//!    workload under ARMv8.3-NV and NEVE in lockstep and demand
//!    bit-identical architectural state — every retired step (pc, EL,
//!    general-purpose registers) and the final machine (EL1 system
//!    registers, guest-visible memory, pending/active GIC state). The
//!    first divergence is reported with its step count, world-switch
//!    phase, and the register or address that split.
//! 2. **Trap-count algebra** ([`trap_algebra`], plus the per-pair
//!    deferral identity inside [`diff_pair`]): NEVE never traps more
//!    than ARMv8.3 on any cell; Virtual EOI takes zero traps on every
//!    ARM configuration (Table 7's bottom row); and every v8.3 trap on
//!    a VNCR-redirectable register is accounted for under NEVE as
//!    either a deferred access or a residual trap —
//!    `v8.3 deferrable traps == NEVE deferrals + NEVE residual traps`.
//! 3. **Golden-table diff** ([`golden_diff`]): the regenerated Tables
//!    6/7 must match EXPERIMENTS.md's recorded values within the
//!    declared tolerance bands (cycles ±2%, trap counts exact).
//! 4. **Cross-engine lockstep** ([`engine_lockstep`]): the pre-decoded
//!    micro-op engine and the reference interpreter, stepped on
//!    identical stacks, must agree on every step outcome, every
//!    retired core state, the final machine, and the cycle counters —
//!    the decode-once IR is an optimization, never a semantic change.
//!
//! Both lockstep machines also run with the [`neve_armv8::Checker`]
//! attached, so the architectural step invariants (EL-transition
//! legality, VNCR write discipline, Stage-2 structure, TLB coherence)
//! are enforced along the way, and the shadow Stage-2 tables are
//! verified against the guest-S2 ∘ host-S2 composition at the end.

use crate::platforms::{Config, MicroMatrix};
use crate::tables;
use neve_armv8::Engine;
use neve_kvmarm::{layout, rosters, ArmConfig, MicroBench, ParaMode, TestBed};
use std::fmt;

/// Lockstep watchdog: no microbenchmark cell in the oracle grid takes
/// anywhere near this many steps.
const LOCKSTEP_BUDGET: u64 = 8_000_000;

/// Guest-visible physical memory compared by the state oracle: guest
/// hypervisor image + save areas, nested kernel, and both payloads.
/// Deliberately *below* the host-owned regions (Stage-2 frame pools,
/// VNCR pages): ARMv8.3 stages EL1 context in host-side structures
/// while NEVE stages it in the VNCR page, so host bookkeeping memory
/// legitimately differs between semantically identical runs.
const GUEST_MEM: std::ops::Range<u64> = layout::GUEST_HYP_BASE..layout::GUEST_S2_FRAMES;

/// GIC interrupt IDs covered by the final-state comparison (SGIs, PPIs
/// and the SPI range the workloads use).
const GIC_INTIDS: u32 = 256;

/// A point where the two configurations stopped agreeing.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Machine step count at which the divergence was observed.
    pub step: u64,
    /// World-switch phase the reference (v8.3) machine was in.
    pub phase: &'static str,
    /// CPU the divergence was observed on.
    pub cpu: usize,
    /// The register or address that split, with both values.
    pub what: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "diverged at step {} (phase {}, cpu{}): {}",
            self.step, self.phase, self.cpu, self.what
        )
    }
}

/// The outcome of one lockstep v8.3-vs-NEVE run.
#[derive(Debug, Clone)]
pub struct PairReport {
    /// VHE guest hypervisor in both stacks.
    pub guest_vhe: bool,
    /// Benchmark name.
    pub bench: &'static str,
    /// Steps both machines retired.
    pub steps: u64,
    /// v8.3 traps on VNCR-redirectable registers.
    pub v83_deferrable_traps: u64,
    /// NEVE accesses serviced by the deferred page.
    pub neve_deferrals: u64,
    /// NEVE traps on VNCR-redirectable registers (residual traps the
    /// redirect did not absorb, e.g. while NV2 was momentarily off).
    pub neve_residual_traps: u64,
    /// Everything that went wrong; empty means the pair passed.
    pub violations: Vec<String>,
}

impl PairReport {
    /// Human label for one oracle cell.
    pub fn label(&self) -> String {
        format!(
            "{} ({})",
            self.bench,
            if self.guest_vhe { "VHE" } else { "non-VHE" }
        )
    }
}

fn bench_name(b: MicroBench) -> &'static str {
    match b {
        MicroBench::Hypercall => "hypercall",
        MicroBench::DeviceIo => "device_io",
        MicroBench::VirtualIpi => "virtual_ipi",
        MicroBench::VirtualEoi => "virtual_eoi",
        MicroBench::Mixed { .. } => "mixed",
        MicroBench::Idle => "idle",
    }
}

/// Human labels for the two sides of a lockstep comparison:
/// `("v8.3", "NEVE")` for the cross-configuration oracle,
/// `("uop", "interp")` for the cross-engine one.
type Sides = (&'static str, &'static str);

/// Compares per-step architectural core state. Cheap on purpose: it
/// runs after every lockstep round.
fn compare_cores(a: &TestBed, b: &TestBed, ncpus: usize, (la, lb): Sides) -> Option<Divergence> {
    let step = a.m.steps_retired();
    let phase = a.m.counter.phase().label();
    for cpu in 0..ncpus {
        let (ca, cb) = (a.m.core(cpu), b.m.core(cpu));
        if ca.pc != cb.pc {
            return Some(Divergence {
                step,
                phase,
                cpu,
                what: format!("pc {:#x} ({la}) vs {:#x} ({lb})", ca.pc, cb.pc),
            });
        }
        if ca.pstate.el != cb.pstate.el {
            return Some(Divergence {
                step,
                phase,
                cpu,
                what: format!("EL {} ({la}) vs {} ({lb})", ca.pstate.el, cb.pstate.el),
            });
        }
        for r in 0..31u8 {
            let (va, vb) = (ca.gpr(r), cb.gpr(r));
            if va != vb {
                return Some(Divergence {
                    step,
                    phase,
                    cpu,
                    what: format!("x{r} {va:#x} ({la}) vs {vb:#x} ({lb})"),
                });
            }
        }
    }
    None
}

/// Compares final guest-visible machine state: EL1 system registers,
/// guest memory, and pending/active GIC state.
fn compare_final(a: &TestBed, b: &TestBed, ncpus: usize, (la, lb): Sides) -> Option<Divergence> {
    let step = a.m.steps_retired();
    let phase = a.m.counter.phase().label();
    for cpu in 0..ncpus {
        for &reg in rosters::el1_context() {
            let (va, vb) = (a.m.core(cpu).regs.read(reg), b.m.core(cpu).regs.read(reg));
            if va != vb {
                return Some(Divergence {
                    step,
                    phase,
                    cpu,
                    what: format!("{reg:?} {va:#x} ({la}) vs {vb:#x} ({lb})"),
                });
            }
        }
        for intid in 0..GIC_INTIDS {
            let (pa, pb) = (
                a.m.gic.dist.is_pending(cpu, intid),
                b.m.gic.dist.is_pending(cpu, intid),
            );
            if pa != pb {
                return Some(Divergence {
                    step,
                    phase,
                    cpu,
                    what: format!("intid {intid} pending {pa} ({la}) vs {pb} ({lb})"),
                });
            }
            let (aa, ab) = (
                a.m.gic.dist.is_active(cpu, intid),
                b.m.gic.dist.is_active(cpu, intid),
            );
            if aa != ab {
                return Some(Divergence {
                    step,
                    phase,
                    cpu,
                    what: format!("intid {intid} active {aa} ({la}) vs {ab} ({lb})"),
                });
            }
        }
    }
    let mut addr = GUEST_MEM.start;
    while addr < GUEST_MEM.end {
        let (wa, wb) = (a.m.mem.read_u64(addr), b.m.mem.read_u64(addr));
        if wa != wb {
            return Some(Divergence {
                step,
                phase,
                cpu: 0,
                what: format!("guest memory at {addr:#x}: {wa:#x} ({la}) vs {wb:#x} ({lb})"),
            });
        }
        addr += 8;
    }
    None
}

/// Runs `bench` under ARMv8.3-NV and NEVE in lockstep (same guest
/// hypervisor flavour, same payloads, same interleave) with the step
/// checker attached to both machines, and reports every way the two
/// runs disagreed — plus the deferral accounting identity.
pub fn diff_pair(guest_vhe: bool, bench: MicroBench, iters: u64) -> PairReport {
    let cfg = |neve| ArmConfig::Nested {
        guest_vhe,
        neve,
        para: ParaMode::None,
    };
    let mut v83 = TestBed::new(cfg(false), bench, iters);
    let mut neve = TestBed::new(cfg(true), bench, iters);
    v83.m.attach_checker();
    neve.m.attach_checker();
    let ncpus = bench.ncpus();

    let mut violations = Vec::new();
    let mut steps = 0u64;
    loop {
        use neve_armv8::machine::StepOutcome as O;
        let oa = v83.m.step(&mut v83.hyp, 0);
        let ob = neve.m.step(&mut neve.hyp, 0);
        if ncpus > 1 {
            // Mirror the measured IPI interleave: the receiver gets a
            // burst of steps per sender step.
            for _ in 0..4 {
                let ra = v83.m.step(&mut v83.hyp, 1);
                let rb = neve.m.step(&mut neve.hyp, 1);
                if ra != rb {
                    violations.push(format!(
                        "diverged at step {steps}: receiver outcome {ra:?} (v8.3) vs {rb:?} (NEVE)"
                    ));
                }
            }
        }
        steps += 1;
        if oa != ob {
            violations.push(format!(
                "diverged at step {steps}: outcome {oa:?} (v8.3) vs {ob:?} (NEVE)"
            ));
        }
        if let Some(d) = compare_cores(&v83, &neve, ncpus, ("v8.3", "NEVE")) {
            violations.push(d.to_string());
        }
        if !violations.is_empty() {
            // Lockstep comparison past the first divergence only
            // compounds noise; stop at the first structured report.
            break;
        }
        match oa {
            O::Executed | O::Wfi => {}
            O::Halted(_) | O::FetchFailure(_) => break,
        }
        if steps >= LOCKSTEP_BUDGET {
            violations.push(format!("lockstep budget exhausted after {steps} steps"));
            break;
        }
    }

    if violations.is_empty() {
        if let Some(d) = compare_final(&v83, &neve, ncpus, ("v8.3", "NEVE")) {
            violations.push(d.to_string());
        }
        for d in v83.hyp.verify_shadow_composition(&v83.m) {
            violations.push(format!("v8.3 shadow composition: {d}"));
        }
        for d in neve.hyp.verify_shadow_composition(&neve.m) {
            violations.push(format!("NEVE shadow composition: {d}"));
        }
    }
    for (name, tb) in [("v8.3", &v83), ("NEVE", &neve)] {
        if let Some(c) = tb.m.checker() {
            for v in c.violations() {
                violations.push(format!("{name} invariant: {v}"));
            }
        }
    }

    // The paper's accounting identity: every trap ARMv8.3 takes on a
    // VNCR-redirectable register shows up under NEVE as a deferred
    // access or a residual trap — none created, none lost.
    let v83_deferrable = v83.m.deferrable_sysreg_traps();
    let deferrals = neve.m.vncr_deferrals();
    let residual = neve.m.deferrable_sysreg_traps();
    if v83_deferrable != deferrals + residual {
        violations.push(format!(
            "deferral identity broken: v8.3 took {v83_deferrable} deferrable traps but NEVE \
             accounts {deferrals} deferrals + {residual} residual traps"
        ));
    }
    PairReport {
        guest_vhe,
        bench: bench_name(bench),
        steps,
        v83_deferrable_traps: v83_deferrable,
        neve_deferrals: deferrals,
        neve_residual_traps: residual,
        violations,
    }
}

/// Runs `bench` on two identical stacks, one stepping through the
/// pre-decoded micro-op engine and one through the reference
/// interpreter, in lockstep, and demands bit-identical behaviour:
/// every step outcome, the per-step core state, the final
/// guest-visible machine state, and the retired-step and cycle
/// counters. This is the executable form of the decode-once IR's
/// correctness claim — compilation to micro-ops changes how fast the
/// host retires steps, never what a step does.
///
/// Neither machine gets a checker attached: attaching one would force
/// the interpreter on both sides (see
/// [`neve_armv8::Machine::active_engine`]) and the comparison would be
/// vacuous. [`diff_pair`] covers the checker-instrumented runs.
pub fn engine_lockstep(guest_vhe: bool, neve: bool, bench: MicroBench, iters: u64) -> Vec<String> {
    let cfg = ArmConfig::Nested {
        guest_vhe,
        neve,
        para: ParaMode::None,
    };
    let mut fast = TestBed::new(cfg, bench, iters);
    let mut oracle = TestBed::new(cfg, bench, iters);
    fast.m.set_engine(Engine::Uop);
    oracle.m.set_engine(Engine::Interp);
    assert_eq!(fast.m.active_engine(), Engine::Uop);
    assert_eq!(oracle.m.active_engine(), Engine::Interp);
    let ncpus = bench.ncpus();

    let mut violations = Vec::new();
    let mut steps = 0u64;
    loop {
        use neve_armv8::machine::StepOutcome as O;
        let oa = fast.m.step(&mut fast.hyp, 0);
        let ob = oracle.m.step(&mut oracle.hyp, 0);
        if ncpus > 1 {
            for _ in 0..4 {
                let ra = fast.m.step(&mut fast.hyp, 1);
                let rb = oracle.m.step(&mut oracle.hyp, 1);
                if ra != rb {
                    violations.push(format!(
                        "diverged at step {steps}: receiver outcome {ra:?} (uop) vs {rb:?} (interp)"
                    ));
                }
            }
        }
        steps += 1;
        if oa != ob {
            violations.push(format!(
                "diverged at step {steps}: outcome {oa:?} (uop) vs {ob:?} (interp)"
            ));
        }
        if let Some(d) = compare_cores(&fast, &oracle, ncpus, ("uop", "interp")) {
            violations.push(d.to_string());
        }
        if !violations.is_empty() {
            break;
        }
        match oa {
            O::Executed | O::Wfi => {}
            O::Halted(_) | O::FetchFailure(_) => break,
        }
        if steps >= LOCKSTEP_BUDGET {
            violations.push(format!("lockstep budget exhausted after {steps} steps"));
            break;
        }
    }

    if violations.is_empty() {
        if let Some(d) = compare_final(&fast, &oracle, ncpus, ("uop", "interp")) {
            violations.push(d.to_string());
        }
        let (sa, sb) = (fast.m.steps_retired(), oracle.m.steps_retired());
        if sa != sb {
            violations.push(format!(
                "retired steps diverged: {sa} (uop) vs {sb} (interp)"
            ));
        }
        let (ca, cb) = (fast.m.counter.cycles(), oracle.m.counter.cycles());
        if ca != cb {
            violations.push(format!(
                "cycle counters diverged: {ca} (uop) vs {cb} (interp) — \
                 a baked micro-op cost disagrees with the cost table"
            ));
        }
    }
    violations
}

/// Matrix-level trap-count identities from the paper: NEVE never traps
/// (or spends) more than ARMv8.3 on any nested cell, and Virtual EOI
/// takes zero traps on every ARM configuration.
pub fn trap_algebra(m: &MicroMatrix) -> Vec<String> {
    let mut bad = Vec::new();
    let pairs = [
        (Config::ArmNestedV83, Config::ArmNestedNeve),
        (Config::ArmNestedV83Vhe, Config::ArmNestedNeveVhe),
    ];
    for (v83, neve) in pairs {
        let (a, b) = (m.costs(v83), m.costs(neve));
        for (bench, pa, pb) in [
            ("hypercall", a.hypercall, b.hypercall),
            ("device_io", a.device_io, b.device_io),
            ("virtual_ipi", a.virtual_ipi, b.virtual_ipi),
            ("virtual_eoi", a.virtual_eoi, b.virtual_eoi),
        ] {
            if pb.traps > pa.traps {
                bad.push(format!(
                    "{bench}: NEVE ({}) takes more traps than v8.3 ({}): {} vs {}",
                    neve.label(),
                    v83.label(),
                    pb.traps,
                    pa.traps
                ));
            }
            if pb.cycles > pa.cycles {
                bad.push(format!(
                    "{bench}: NEVE ({}) costs more cycles than v8.3 ({}): {} vs {}",
                    neve.label(),
                    v83.label(),
                    pb.cycles,
                    pa.cycles
                ));
            }
        }
    }
    for c in Config::all() {
        if c.is_x86() {
            continue;
        }
        let eoi = m.costs(c).virtual_eoi;
        if eoi.traps != 0.0 {
            bad.push(format!(
                "virtual_eoi on {} must take zero traps, took {}",
                c.label(),
                eoi.traps
            ));
        }
    }
    bad
}

/// EXPERIMENTS.md Table 6 golden values ("ours" column), cycles per
/// operation; columns v8.3, v8.3-VHE, NEVE, NEVE-VHE, x86-nested.
const GOLDEN_T6: [(&str, [u64; 5]); 4] = [
    ("Hypercall", [361_337, 245_735, 60_973, 59_666, 31_882]),
    ("Device I/O", [361_848, 246_246, 61_484, 60_177, 32_286]),
    ("Virtual IPI", [727_913, 496_484, 130_452, 127_613, 64_884]),
    ("Virtual EOI", [69, 69, 69, 69, 293]),
];

/// EXPERIMENTS.md Table 7 golden values ("ours"), traps per operation.
const GOLDEN_T7: [(&str, [u64; 5]); 4] = [
    ("Hypercall", [107, 73, 15, 16, 5]),
    ("Device I/O", [107, 73, 15, 16, 5]),
    ("Virtual IPI", [215, 147, 32, 34, 11]),
    ("Virtual EOI", [0, 0, 0, 0, 0]),
];

/// Declared tolerance band for cycle counts (EXPERIMENTS.md): the cost
/// model is deterministic, so the band only absorbs deliberate
/// re-calibrations small enough not to change any claim.
const CYCLE_TOLERANCE: f64 = 0.02;

fn within_band(measured: u64, golden: u64) -> bool {
    let slack = (golden as f64 * CYCLE_TOLERANCE).ceil() as i64;
    (measured as i64 - golden as i64).abs() <= slack
}

/// Diffs the regenerated Tables 6 and 7 against the EXPERIMENTS.md
/// golden values: cycles within ±2%, trap counts exact. A failed cell
/// is itself a violation — goldens cannot be checked against
/// placeholders.
pub fn golden_diff(m: &MicroMatrix) -> Vec<String> {
    let mut bad = Vec::new();
    for (rows, golden, traps) in [
        (tables::table6(m), &GOLDEN_T6, false),
        (tables::table7(m), &GOLDEN_T7, true),
    ] {
        let table = if traps { "Table 7" } else { "Table 6" };
        for (row, (bench, want)) in rows.iter().zip(golden.iter()) {
            debug_assert_eq!(row.bench, *bench);
            for (cell, &g) in row.cells.iter().zip(want.iter()) {
                if cell.failed {
                    bad.push(format!(
                        "{table} {bench} / {}: cell failed to measure",
                        cell.config.label()
                    ));
                    continue;
                }
                let ok = if traps {
                    cell.value == g
                } else {
                    within_band(cell.value, g)
                };
                if !ok {
                    bad.push(format!(
                        "{table} {bench} / {}: measured {} vs golden {} ({})",
                        cell.config.label(),
                        cell.value,
                        g,
                        if traps {
                            "trap counts are exact".to_string()
                        } else {
                            format!("band ±{:.0}%", CYCLE_TOLERANCE * 100.0)
                        }
                    ));
                }
            }
        }
    }
    bad
}

/// One named check's outcome.
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// Check name (stable, kebab-case).
    pub name: String,
    /// Violations; empty means the check passed.
    pub violations: Vec<String>,
}

/// The full oracle report the `neve check` command renders.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Every check that ran, in order.
    pub checks: Vec<CheckResult>,
}

impl OracleReport {
    /// True when every check passed.
    pub fn is_clean(&self) -> bool {
        self.checks.iter().all(|c| c.violations.is_empty())
    }

    /// Total violations across all checks.
    pub fn violation_count(&self) -> usize {
        self.checks.iter().map(|c| c.violations.len()).sum()
    }

    /// Text rendering: one line per check, violations indented.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.checks {
            if c.violations.is_empty() {
                out.push_str(&format!("ok   {}\n", c.name));
            } else {
                out.push_str(&format!("FAIL {}\n", c.name));
                for v in &c.violations {
                    out.push_str(&format!("     {v}\n"));
                }
            }
        }
        out
    }
}

/// Scheduler-determinism oracle: the discrete-event wheel may change
/// *when* host work happens, never the simulated numbers.
///
/// Three identities, each a bug detector for the wheel:
///
/// 1. **Loop equivalence** — a single-core cell driven by the legacy
///    polling loop and by the wheel loop retires the same steps and
///    lands on the same simulated cycle count (with one runnable core
///    the wheel must degenerate to the old loop exactly).
/// 2. **Repeat-run bit-identity** — a multi-core wheel scenario (IPI
///    storm over parked receivers, exercising park/wake and the
///    tie-break order) produces identical step and cycle totals on a
///    rebuilt testbed.
/// 3. **Fan-out byte-identity** — the consolidation table renders
///    byte-identically from a serial run and a striped `--jobs` run.
pub fn wheel_determinism(smoke: bool) -> Vec<String> {
    use neve_armv8::machine::StepOutcome;
    use neve_kvmarm::guests;
    let mut violations = Vec::new();

    let cells: &[(&str, ArmConfig)] = if smoke {
        &[(
            "v8.3",
            ArmConfig::Nested {
                guest_vhe: false,
                neve: false,
                para: ParaMode::None,
            },
        )]
    } else {
        &[
            (
                "v8.3",
                ArmConfig::Nested {
                    guest_vhe: false,
                    neve: false,
                    para: ParaMode::None,
                },
            ),
            (
                "NEVE",
                ArmConfig::Nested {
                    guest_vhe: true,
                    neve: true,
                    para: ParaMode::None,
                },
            ),
        ]
    };
    let iters = if smoke { 4 } else { 8 };
    for &(label, cfg) in cells {
        // Legacy polling loop, driven directly.
        let mut legacy = TestBed::new(cfg, MicroBench::Hypercall, iters);
        legacy.m.refresh_cost_table();
        let mut legacy_steps: u64 = 0;
        loop {
            legacy_steps += 1;
            match legacy.m.step(&mut legacy.hyp, 0) {
                StepOutcome::Executed => {}
                StepOutcome::Halted(code) if code == guests::DONE => break,
                other => {
                    violations.push(format!("{label}: legacy loop stopped on {other:?}"));
                    return violations;
                }
            }
            if legacy_steps > 10_000_000 {
                violations.push(format!("{label}: legacy loop never halted"));
                return violations;
            }
        }
        // The same cell on the wheel.
        let mut wheel = TestBed::new(cfg, MicroBench::Hypercall, iters);
        let wheel_steps = match wheel.try_run_wheel(|m| m.core(0).halted == Some(guests::DONE)) {
            Ok(n) => n,
            Err(f) => {
                violations.push(format!("{label}: wheel loop faulted: {f}"));
                continue;
            }
        };
        if wheel_steps != legacy_steps {
            violations.push(format!(
                "{label}: wheel retired {wheel_steps} host steps, legacy loop {legacy_steps}"
            ));
        }
        if wheel.m.counter.cycles() != legacy.m.counter.cycles() {
            violations.push(format!(
                "{label}: wheel ended at cycle {}, legacy loop at {} — the \
                 scheduler changed simulated time",
                wheel.m.counter.cycles(),
                legacy.m.counter.cycles()
            ));
        }
    }

    // Park/wake repeatability: same scenario, rebuilt bed, same totals.
    let storm = |iters| -> Result<(u64, u64), String> {
        let mut tb = TestBed::new_bigsmp(4, true, iters);
        let steps = tb
            .try_run_wheel(|m| m.core(0).halted == Some(guests::DONE))
            .map_err(|f| f.to_string())?;
        Ok((steps, tb.m.counter.cycles()))
    };
    let storm_iters = if smoke { 16 } else { 64 };
    match (storm(storm_iters), storm(storm_iters)) {
        (Ok(a), Ok(b)) if a != b => violations.push(format!(
            "IPI storm is not repeatable: {a:?} vs {b:?} (steps, cycles)"
        )),
        (Err(e), _) | (_, Err(e)) => violations.push(format!("IPI storm faulted: {e}")),
        _ => {}
    }

    // Consolidation fan-out: serial and striped runs must render the
    // same bytes.
    let spec = crate::consolidate::ConsolidateSpec::smoke();
    let serial = crate::consolidate::run_consolidate(spec);
    let fanned = crate::consolidate::run_consolidate(crate::consolidate::ConsolidateSpec {
        jobs: 3,
        ..spec
    });
    match (serial, fanned) {
        (Ok(a), Ok(b)) if a.render() != b.render() => violations
            .push("consolidation table differs between serial and --jobs 3 runs".to_string()),
        (Err(e), _) | (_, Err(e)) => violations.push(format!("consolidation run failed: {e}")),
        _ => {}
    }
    violations
}

/// Runs the oracle suite over a measured matrix. `smoke` restricts the
/// differential grid to one representative pair (the CI gate); the full
/// run covers both guest-hypervisor flavours across all four
/// microbenchmarks.
pub fn run_checks(m: &MicroMatrix, smoke: bool) -> OracleReport {
    let mut checks = vec![
        CheckResult {
            name: "trap-algebra".into(),
            violations: trap_algebra(m),
        },
        CheckResult {
            name: "golden-tables".into(),
            violations: golden_diff(m),
        },
        CheckResult {
            name: "wheel-determinism".into(),
            violations: wheel_determinism(smoke),
        },
    ];
    let grid: Vec<(bool, MicroBench, u64)> = if smoke {
        vec![(false, MicroBench::Hypercall, 4)]
    } else {
        let mut g = Vec::new();
        for vhe in [false, true] {
            g.push((vhe, MicroBench::Hypercall, 6));
            g.push((vhe, MicroBench::DeviceIo, 6));
            g.push((vhe, MicroBench::VirtualIpi, 4));
            g.push((vhe, MicroBench::VirtualEoi, 6));
        }
        g
    };
    for (vhe, bench, iters) in grid {
        let pair = diff_pair(vhe, bench, iters);
        checks.push(CheckResult {
            name: format!("differential {}", pair.label()),
            violations: pair.violations.clone(),
        });
    }
    // Cross-engine lockstep: micro-op IR vs reference interpreter on
    // the same configuration. (vhe, neve, bench, iters) tuples.
    let engine_grid: Vec<(bool, bool, MicroBench, u64)> = if smoke {
        vec![
            (false, false, MicroBench::Hypercall, 4),
            (false, true, MicroBench::Hypercall, 4),
        ]
    } else {
        let mut g = Vec::new();
        for vhe in [false, true] {
            for neve in [false, true] {
                g.push((vhe, neve, MicroBench::Hypercall, 6));
            }
        }
        g.push((false, false, MicroBench::VirtualIpi, 3));
        g.push((false, true, MicroBench::VirtualEoi, 6));
        g
    };
    for (vhe, neve, bench, iters) in engine_grid {
        checks.push(CheckResult {
            name: format!(
                "engine-lockstep {} ({}, {})",
                bench_name(bench),
                if neve { "NEVE" } else { "v8.3" },
                if vhe { "VHE" } else { "non-VHE" }
            ),
            violations: engine_lockstep(vhe, neve, bench, iters),
        });
    }
    OracleReport { checks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms::MicroCosts;
    use std::collections::BTreeMap;
    use std::sync::OnceLock;

    fn matrix() -> &'static MicroMatrix {
        static M: OnceLock<MicroMatrix> = OnceLock::new();
        M.get_or_init(MicroMatrix::measure)
    }

    #[test]
    fn hypercall_pair_is_bit_identical_and_balanced() {
        let r = diff_pair(false, MicroBench::Hypercall, 4);
        assert!(r.violations.is_empty(), "{:#?}", r.violations);
        assert!(r.steps > 1_000, "suspiciously short run: {}", r.steps);
        // NEVE actually deferred something, and the identity is not
        // trivially 0 == 0 + 0.
        assert!(r.neve_deferrals > 0);
        assert_eq!(
            r.v83_deferrable_traps,
            r.neve_deferrals + r.neve_residual_traps
        );
    }

    #[test]
    fn vhe_eoi_pair_is_identical_and_balanced() {
        let r = diff_pair(true, MicroBench::VirtualEoi, 4);
        assert!(r.violations.is_empty(), "{:#?}", r.violations);
        // The measured region is trap-free (Table 7's bottom row; see
        // trap_algebra); the whole-run counters still obey the
        // deferral identity through the setup world switch.
        assert_eq!(
            r.v83_deferrable_traps,
            r.neve_deferrals + r.neve_residual_traps
        );
    }

    #[test]
    fn ipi_pair_runs_both_cpus_in_lockstep() {
        let r = diff_pair(false, MicroBench::VirtualIpi, 3);
        assert!(r.violations.is_empty(), "{:#?}", r.violations);
    }

    #[test]
    fn engine_lockstep_is_clean_on_v83_and_neve() {
        for neve in [false, true] {
            let v = engine_lockstep(false, neve, MicroBench::Hypercall, 4);
            assert!(v.is_empty(), "neve={neve}: {v:#?}");
        }
    }

    #[test]
    fn engine_lockstep_covers_multi_cpu_benches() {
        let v = engine_lockstep(false, true, MicroBench::VirtualIpi, 3);
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn trap_algebra_holds_on_the_measured_matrix() {
        assert_eq!(trap_algebra(matrix()), Vec::<String>::new());
    }

    #[test]
    fn trap_algebra_catches_an_inverted_cell() {
        let mut results = BTreeMap::new();
        for c in Config::all() {
            results.insert(c, matrix().costs(c));
        }
        let mut c: MicroCosts = results[&Config::ArmNestedNeve];
        // A NEVE that traps more than v8.3 violates the paper's claim.
        c.hypercall.traps = results[&Config::ArmNestedV83].hypercall.traps + 1.0;
        results.insert(Config::ArmNestedNeve, c);
        let bad = trap_algebra(&MicroMatrix::from_results(results));
        assert!(
            bad.iter().any(|v| v.contains("more traps than v8.3")),
            "{bad:?}"
        );
    }

    #[test]
    fn golden_diff_accepts_the_measured_matrix() {
        assert_eq!(golden_diff(matrix()), Vec::<String>::new());
    }

    #[test]
    fn golden_diff_catches_drift_beyond_the_band() {
        let mut results = BTreeMap::new();
        for c in Config::all() {
            results.insert(c, matrix().costs(c));
        }
        let mut c: MicroCosts = results[&Config::ArmNestedNeve];
        c.hypercall.cycles = (c.hypercall.cycles as f64 * 1.05) as u64;
        results.insert(Config::ArmNestedNeve, c);
        let bad = golden_diff(&MicroMatrix::from_results(results));
        assert!(bad.iter().any(|v| v.contains("Table 6")), "{bad:?}");
        // Trap drift of even one trap is out of band.
        let mut results2 = BTreeMap::new();
        for c in Config::all() {
            results2.insert(c, matrix().costs(c));
        }
        let mut c2: MicroCosts = results2[&Config::ArmNestedV83];
        c2.device_io.traps += 1.0;
        results2.insert(Config::ArmNestedV83, c2);
        let bad2 = golden_diff(&MicroMatrix::from_results(results2));
        assert!(bad2.iter().any(|v| v.contains("Table 7")), "{bad2:?}");
    }

    #[test]
    fn wheel_determinism_is_clean() {
        let v = wheel_determinism(true);
        assert!(v.is_empty(), "wheel determinism violations: {v:?}");
    }

    #[test]
    fn report_renders_pass_and_fail_lines() {
        let rep = OracleReport {
            checks: vec![
                CheckResult {
                    name: "good".into(),
                    violations: vec![],
                },
                CheckResult {
                    name: "bad".into(),
                    violations: vec!["broke".into()],
                },
            ],
        };
        assert!(!rep.is_clean());
        assert_eq!(rep.violation_count(), 1);
        let s = rep.render();
        assert!(s.contains("ok   good"));
        assert!(s.contains("FAIL bad"));
        assert!(s.contains("broke"));
    }
}
