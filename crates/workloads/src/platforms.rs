//! Unified access to both simulated platforms.

use neve_cycles::counter::PerOp;
use neve_kvmarm::{ArmConfig, MicroBench, ParaMode, TestBed};
use neve_x86vt::testbed::{X86Bench, X86Config, X86TestBed};
use serde::Serialize;
use std::collections::BTreeMap;

/// Every evaluation configuration of Tables 1/6/7 and Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Config {
    /// ARM single-level VM.
    ArmVm,
    /// ARMv8.3 nested, non-VHE guest hypervisor.
    ArmNestedV83,
    /// ARMv8.3 nested, VHE guest hypervisor.
    ArmNestedV83Vhe,
    /// NEVE nested, non-VHE guest hypervisor.
    ArmNestedNeve,
    /// NEVE nested, VHE guest hypervisor.
    ArmNestedNeveVhe,
    /// x86 single-level VM.
    X86Vm,
    /// x86 nested (VMCS shadowing on, as in the paper).
    X86Nested,
}

impl Config {
    /// All configurations, table order.
    pub fn all() -> [Config; 7] {
        [
            Config::ArmVm,
            Config::ArmNestedV83,
            Config::ArmNestedV83Vhe,
            Config::ArmNestedNeve,
            Config::ArmNestedNeveVhe,
            Config::X86Vm,
            Config::X86Nested,
        ]
    }

    /// Display label (matches the paper's column headers).
    pub fn label(self) -> &'static str {
        match self {
            Config::ArmVm => "ARM VM",
            Config::ArmNestedV83 => "ARMv8.3 Nested",
            Config::ArmNestedV83Vhe => "ARMv8.3 Nested VHE",
            Config::ArmNestedNeve => "NEVE Nested",
            Config::ArmNestedNeveVhe => "NEVE Nested VHE",
            Config::X86Vm => "x86 VM",
            Config::X86Nested => "x86 Nested",
        }
    }

    /// True for x86 configurations.
    pub fn is_x86(self) -> bool {
        matches!(self, Config::X86Vm | Config::X86Nested)
    }

    /// The single-level baseline of this configuration's platform
    /// (used for the paper's "overhead vs VM" multipliers).
    pub fn vm_baseline(self) -> Config {
        if self.is_x86() {
            Config::X86Vm
        } else {
            Config::ArmVm
        }
    }
}

/// The per-operation costs of one configuration.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MicroCosts {
    /// Hypercall round trip.
    pub hypercall: PerOpSer,
    /// Emulated-device read.
    pub device_io: PerOpSer,
    /// Cross-vCPU virtual IPI.
    pub virtual_ipi: PerOpSer,
    /// Virtual EOI.
    pub virtual_eoi: PerOpSer,
}

/// Serializable [`PerOp`].
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PerOpSer {
    /// Average cycles per operation.
    pub cycles: u64,
    /// Average traps per operation.
    pub traps: f64,
}

impl From<PerOp> for PerOpSer {
    fn from(p: PerOp) -> Self {
        Self {
            cycles: p.cycles,
            traps: p.traps,
        }
    }
}

/// All microbenchmark results across all configurations, computed once.
#[derive(Debug, Clone)]
pub struct MicroMatrix {
    results: BTreeMap<Config, MicroCosts>,
}

/// Measured iterations per microbenchmark (the simulator is
/// deterministic, so small counts give exact steady-state averages).
const ITERS: u64 = 24;
const IPI_ITERS: u64 = 10;

fn run_arm(cfg: ArmConfig, bench: MicroBench) -> PerOp {
    let iters = if bench == MicroBench::VirtualIpi {
        IPI_ITERS
    } else {
        ITERS
    };
    let mut tb = TestBed::new(cfg, bench, iters);
    tb.run(iters)
}

fn run_x86(cfg: X86Config, bench: X86Bench) -> PerOp {
    let iters = if bench == X86Bench::VirtualIpi {
        IPI_ITERS
    } else {
        ITERS
    };
    let mut tb = X86TestBed::new(cfg, bench, iters);
    tb.run(iters)
}

fn arm_config(c: Config) -> Option<ArmConfig> {
    Some(match c {
        Config::ArmVm => ArmConfig::Vm,
        Config::ArmNestedV83 => ArmConfig::Nested {
            guest_vhe: false,
            neve: false,
            para: ParaMode::None,
        },
        Config::ArmNestedV83Vhe => ArmConfig::Nested {
            guest_vhe: true,
            neve: false,
            para: ParaMode::None,
        },
        Config::ArmNestedNeve => ArmConfig::Nested {
            guest_vhe: false,
            neve: true,
            para: ParaMode::None,
        },
        Config::ArmNestedNeveVhe => ArmConfig::Nested {
            guest_vhe: true,
            neve: true,
            para: ParaMode::None,
        },
        _ => return None,
    })
}

impl MicroMatrix {
    /// Runs every microbenchmark on every configuration.
    pub fn measure() -> Self {
        let mut results = BTreeMap::new();
        for c in Config::all() {
            let costs = if let Some(ac) = arm_config(c) {
                MicroCosts {
                    hypercall: run_arm(ac, MicroBench::Hypercall).into(),
                    device_io: run_arm(ac, MicroBench::DeviceIo).into(),
                    virtual_ipi: run_arm(ac, MicroBench::VirtualIpi).into(),
                    virtual_eoi: run_arm(ac, MicroBench::VirtualEoi).into(),
                }
            } else {
                let xc = match c {
                    Config::X86Vm => X86Config::Vm,
                    _ => X86Config::Nested { shadowing: true },
                };
                MicroCosts {
                    hypercall: run_x86(xc, X86Bench::Hypercall).into(),
                    device_io: run_x86(xc, X86Bench::DeviceIo).into(),
                    virtual_ipi: run_x86(xc, X86Bench::VirtualIpi).into(),
                    virtual_eoi: run_x86(xc, X86Bench::VirtualEoi).into(),
                }
            };
            results.insert(c, costs);
        }
        Self { results }
    }

    /// The costs of one configuration.
    pub fn costs(&self, c: Config) -> MicroCosts {
        self.results[&c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            Config::all().iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), Config::all().len());
    }

    #[test]
    fn baselines_point_at_same_platform() {
        assert_eq!(Config::ArmNestedNeve.vm_baseline(), Config::ArmVm);
        assert_eq!(Config::X86Nested.vm_baseline(), Config::X86Vm);
        assert_eq!(Config::ArmVm.vm_baseline(), Config::ArmVm);
    }
}
