//! Unified access to both simulated platforms.

use crate::session::{Bench, CellResult, SimSession};
use neve_armv8::FaultPlan;
use neve_cycles::counter::PerOp;
use neve_kvmarm::{ArmConfig, ParaMode};
use std::collections::BTreeMap;

/// Every evaluation configuration of Tables 1/6/7 and Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Config {
    /// ARM single-level VM.
    ArmVm,
    /// ARMv8.3 nested, non-VHE guest hypervisor.
    ArmNestedV83,
    /// ARMv8.3 nested, VHE guest hypervisor.
    ArmNestedV83Vhe,
    /// NEVE nested, non-VHE guest hypervisor.
    ArmNestedNeve,
    /// NEVE nested, VHE guest hypervisor.
    ArmNestedNeveVhe,
    /// x86 single-level VM.
    X86Vm,
    /// x86 nested (VMCS shadowing on, as in the paper).
    X86Nested,
}

impl Config {
    /// All configurations, table order.
    pub fn all() -> [Config; 7] {
        [
            Config::ArmVm,
            Config::ArmNestedV83,
            Config::ArmNestedV83Vhe,
            Config::ArmNestedNeve,
            Config::ArmNestedNeveVhe,
            Config::X86Vm,
            Config::X86Nested,
        ]
    }

    /// Display label (matches the paper's column headers).
    pub fn label(self) -> &'static str {
        match self {
            Config::ArmVm => "ARM VM",
            Config::ArmNestedV83 => "ARMv8.3 Nested",
            Config::ArmNestedV83Vhe => "ARMv8.3 Nested VHE",
            Config::ArmNestedNeve => "NEVE Nested",
            Config::ArmNestedNeveVhe => "NEVE Nested VHE",
            Config::X86Vm => "x86 VM",
            Config::X86Nested => "x86 Nested",
        }
    }

    /// True for x86 configurations.
    pub fn is_x86(self) -> bool {
        matches!(self, Config::X86Vm | Config::X86Nested)
    }

    /// The single-level baseline of this configuration's platform
    /// (used for the paper's "overhead vs VM" multipliers).
    pub fn vm_baseline(self) -> Config {
        if self.is_x86() {
            Config::X86Vm
        } else {
            Config::ArmVm
        }
    }

    /// The inverse of [`Config::label`] (used to read cached results
    /// back; labels are the cache's config keys).
    pub fn from_label(label: &str) -> Option<Config> {
        Config::all().into_iter().find(|c| c.label() == label)
    }
}

/// The per-operation costs of one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroCosts {
    /// Hypercall round trip.
    pub hypercall: PerOpSer,
    /// Emulated-device read.
    pub device_io: PerOpSer,
    /// Cross-vCPU virtual IPI.
    pub virtual_ipi: PerOpSer,
    /// Virtual EOI.
    pub virtual_eoi: PerOpSer,
}

/// Serializable [`PerOp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerOpSer {
    /// Average cycles per operation.
    pub cycles: u64,
    /// Average traps per operation.
    pub traps: f64,
}

impl From<PerOp> for PerOpSer {
    fn from(p: PerOp) -> Self {
        Self {
            cycles: p.cycles,
            traps: p.traps,
        }
    }
}

/// One world-switch phase's share of a configuration's measured work
/// (absolute over the measured regions, summed across benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseStat {
    /// Cycles attributed to the phase.
    pub cycles: u64,
    /// Traps taken while the phase was active.
    pub traps: u64,
}

/// All microbenchmark results across all configurations, computed once
/// (or loaded from the persistent cache; see [`crate::cache`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MicroMatrix {
    results: BTreeMap<Config, MicroCosts>,
    /// Per-configuration trap breakdown by reason, summed over the four
    /// measured benchmarks (absolute counts; the Table 7 observability
    /// data). Empty for synthetic matrices.
    trap_kinds: BTreeMap<Config, BTreeMap<String, u64>>,
    /// Per-configuration world-switch phase breakdown (keys are
    /// [`Phase::label`](neve_cycles::Phase::label) names), summed over
    /// the four measured benchmarks. Empty for synthetic matrices.
    phases: BTreeMap<Config, BTreeMap<String, PhaseStat>>,
    /// Cells that faulted instead of measuring: configuration ->
    /// benchmark label -> fault description. A faulted cell's per-op
    /// entry is a zero placeholder; renderers mark it as failed. Empty
    /// for clean (and synthetic) matrices.
    failures: BTreeMap<Config, BTreeMap<String, String>>,
}

/// Options for a matrix measurement run (fault-campaign entry point;
/// the plain table paths use [`MicroMatrix::measure_parallel`]).
#[derive(Debug, Clone, Default)]
pub struct MeasureOpts {
    /// Worker threads (0 and 1 both mean serial).
    pub jobs: usize,
    /// Deterministic fault-injection plan, cloned into every ARM cell.
    pub fault_plan: Option<FaultPlan>,
    /// Step-budget override for every cell's run-loop watchdog.
    pub step_budget: Option<u64>,
}

pub(crate) fn arm_config(c: Config) -> Option<ArmConfig> {
    Some(match c {
        Config::ArmVm => ArmConfig::Vm,
        Config::ArmNestedV83 => ArmConfig::Nested {
            guest_vhe: false,
            neve: false,
            para: ParaMode::None,
        },
        Config::ArmNestedV83Vhe => ArmConfig::Nested {
            guest_vhe: true,
            neve: false,
            para: ParaMode::None,
        },
        Config::ArmNestedNeve => ArmConfig::Nested {
            guest_vhe: false,
            neve: true,
            para: ParaMode::None,
        },
        Config::ArmNestedNeveVhe => ArmConfig::Nested {
            guest_vhe: true,
            neve: true,
            para: ParaMode::None,
        },
        _ => return None,
    })
}

/// Converts one worker bucket's join outcome into cell results. A
/// worker that panicked outside `SimSession::run`'s own containment
/// (e.g. in the collection plumbing) must not abort the whole matrix:
/// every cell the bucket carried degrades to [`CellResult::Failed`]
/// with the panic message, and the other buckets assemble normally.
fn joined_bucket(
    joined: std::thread::Result<Vec<CellResult>>,
    meta: &[(Config, Bench)],
) -> Vec<CellResult> {
    match joined {
        Ok(cells) => cells,
        Err(payload) => {
            let message = crate::session::panic_message(payload.as_ref());
            meta.iter()
                .map(|&(config, bench)| CellResult::Failed {
                    config,
                    bench,
                    fault: neve_cycles::SimFault::from_panic(format!(
                        "evaluation worker panicked: {message}"
                    )),
                })
                .collect()
        }
    }
}

/// Every (configuration, benchmark) cell of the evaluation matrix, in
/// deterministic (table) order.
fn all_cells() -> Vec<(Config, Bench)> {
    let mut cells = Vec::with_capacity(Config::all().len() * Bench::all().len());
    for c in Config::all() {
        for b in Bench::all() {
            cells.push((c, b));
        }
    }
    cells
}

impl MicroMatrix {
    /// Runs every microbenchmark on every configuration, serially (the
    /// reference order). [`MicroMatrix::measure_parallel`] produces
    /// bit-identical results faster.
    pub fn measure() -> Self {
        Self::assemble(
            all_cells()
                .into_iter()
                .map(|(c, b)| SimSession::new(c, b).run())
                .collect(),
        )
    }

    /// Runs every cell of the matrix across `jobs` worker threads.
    ///
    /// Sessions are built on the calling thread and *moved* into scoped
    /// workers (each whole testbed crosses a thread boundary — the
    /// design reason the simulator's types are `Send`). Every cell is
    /// an independent deterministic simulation, so the result is
    /// bit-identical to [`MicroMatrix::measure`] regardless of `jobs`
    /// or scheduling.
    pub fn measure_parallel(jobs: usize) -> Self {
        Self::measure_with(&MeasureOpts {
            jobs,
            ..MeasureOpts::default()
        })
    }

    /// Runs every cell with explicit options: worker count, an optional
    /// fault-injection plan, and an optional step-budget override.
    /// Faulted cells degrade to [`CellResult::Failed`] and surface via
    /// [`MicroMatrix::has_failures`]; clean cells measure exactly as
    /// they would without options (injection off means zero measurement
    /// perturbation).
    pub fn measure_with(opts: &MeasureOpts) -> Self {
        let jobs = opts.jobs.max(1);
        let sessions: Vec<SimSession> = all_cells()
            .into_iter()
            .map(|(c, b)| {
                let mut s = SimSession::new(c, b);
                if let Some(plan) = &opts.fault_plan {
                    s.attach_fault_plan(plan);
                }
                if let Some(budget) = opts.step_budget {
                    s.set_step_budget(budget);
                }
                s
            })
            .collect();

        // Round-robin the cells over the workers. Cells of one config
        // land on different workers on purpose: the nested-ARM configs
        // are far slower than the x86 ones, and striping spreads them.
        let mut buckets: Vec<Vec<SimSession>> = (0..jobs).map(|_| Vec::new()).collect();
        for (i, s) in sessions.into_iter().enumerate() {
            buckets[i % jobs].push(s);
        }

        let mut cells: Vec<CellResult> = Vec::new();
        std::thread::scope(|scope| {
            let workers: Vec<_> = buckets
                .into_iter()
                .map(|bucket| {
                    // Cell identities survive outside the worker so a
                    // panicking worker can still report which cells it
                    // was carrying.
                    let meta: Vec<(Config, Bench)> =
                        bucket.iter().map(|s| (s.config(), s.bench())).collect();
                    let handle = scope.spawn(move || {
                        bucket
                            .into_iter()
                            .map(SimSession::run)
                            .collect::<Vec<CellResult>>()
                    });
                    (handle, meta)
                })
                .collect();
            for (w, meta) in workers {
                cells.extend(joined_bucket(w.join(), &meta));
            }
        });
        Self::assemble(cells)
    }

    /// Measures every cell serially with an execution trace attached to
    /// each session. Exists for the determinism suite: the result must
    /// be bit-identical to [`MicroMatrix::measure`], proving that
    /// tracing never perturbs measured cycles or trap counts.
    pub fn measure_traced(capacity: usize) -> Self {
        Self::assemble(
            all_cells()
                .into_iter()
                .map(|(c, b)| {
                    let mut s = SimSession::new(c, b);
                    s.attach_trace(capacity);
                    s.run()
                })
                .collect(),
        )
    }

    /// Keys cell results into the matrix; the `BTreeMap` makes the
    /// result independent of arrival order. Failed cells contribute a
    /// zero per-op placeholder plus a failure record — one bad cell
    /// never drops the rest of the matrix.
    fn assemble(cells: Vec<CellResult>) -> Self {
        let mut per_config: BTreeMap<Config, BTreeMap<Bench, PerOpSer>> = BTreeMap::new();
        let mut trap_kinds: BTreeMap<Config, BTreeMap<String, u64>> = BTreeMap::new();
        let mut phases: BTreeMap<Config, BTreeMap<String, PhaseStat>> = BTreeMap::new();
        let mut failures: BTreeMap<Config, BTreeMap<String, String>> = BTreeMap::new();
        for result in cells {
            let cell = match result {
                CellResult::Ok(m) => m,
                CellResult::Failed {
                    config,
                    bench,
                    fault,
                } => {
                    per_config.entry(config).or_default().insert(
                        bench,
                        PerOpSer {
                            cycles: 0,
                            traps: 0.0,
                        },
                    );
                    failures
                        .entry(config)
                        .or_default()
                        .insert(bench.label().to_string(), fault.describe());
                    continue;
                }
            };
            per_config
                .entry(cell.config)
                .or_default()
                .insert(cell.bench, cell.per_op);
            let kinds = trap_kinds.entry(cell.config).or_default();
            for (k, v) in cell.traps_by_kind {
                *kinds.entry(k).or_insert(0) += v;
            }
            let stats = phases.entry(cell.config).or_default();
            for (p, v) in cell.cycles_by_phase {
                stats.entry(p).or_default().cycles += v;
            }
            for (p, v) in cell.traps_by_phase {
                stats.entry(p).or_default().traps += v;
            }
        }
        let results = per_config
            .into_iter()
            .map(|(c, benches)| {
                let get = |b: Bench| {
                    *benches
                        .get(&b)
                        .unwrap_or_else(|| panic!("missing cell {c:?}/{b:?}"))
                };
                (
                    c,
                    MicroCosts {
                        hypercall: get(Bench::Hypercall),
                        device_io: get(Bench::DeviceIo),
                        virtual_ipi: get(Bench::VirtualIpi),
                        virtual_eoi: get(Bench::VirtualEoi),
                    },
                )
            })
            .collect();
        Self {
            results,
            trap_kinds,
            phases,
            failures,
        }
    }

    /// Assembles a matrix from independently measured cell results —
    /// the serve engine's finalization path, where cells arrive from a
    /// shared store in whatever order workers completed them. Arrival
    /// order never matters (everything keys through `BTreeMap`s), but
    /// every configuration present must have all four benchmark cells.
    ///
    /// # Panics
    ///
    /// Panics if a present configuration is missing a benchmark cell.
    pub fn from_cells(cells: Vec<CellResult>) -> Self {
        Self::assemble(cells)
    }

    /// Builds a matrix from externally supplied per-config costs (no
    /// trap or phase breakdowns). Used by tests that need synthetic
    /// cost points the real stacks never produce.
    pub fn from_results(results: BTreeMap<Config, MicroCosts>) -> Self {
        Self {
            results,
            trap_kinds: BTreeMap::new(),
            phases: BTreeMap::new(),
            failures: BTreeMap::new(),
        }
    }

    /// Restores a matrix including trap and phase breakdowns and any
    /// recorded cell failures (the cache loader).
    pub fn from_parts(
        results: BTreeMap<Config, MicroCosts>,
        trap_kinds: BTreeMap<Config, BTreeMap<String, u64>>,
        phases: BTreeMap<Config, BTreeMap<String, PhaseStat>>,
        failures: BTreeMap<Config, BTreeMap<String, String>>,
    ) -> Self {
        Self {
            results,
            trap_kinds,
            phases,
            failures,
        }
    }

    /// The costs of one configuration.
    pub fn costs(&self, c: Config) -> MicroCosts {
        self.results[&c]
    }

    /// The configurations this matrix holds results for.
    pub fn configs(&self) -> impl Iterator<Item = Config> + '_ {
        self.results.keys().copied()
    }

    /// The trap breakdown of one configuration, by reason, summed over
    /// the four microbenchmarks. Empty for synthetic matrices.
    pub fn trap_kinds(&self, c: Config) -> BTreeMap<String, u64> {
        self.trap_kinds.get(&c).cloned().unwrap_or_default()
    }

    /// The world-switch phase breakdown of one configuration, summed
    /// over the four microbenchmarks. Empty for synthetic matrices.
    pub fn phases(&self, c: Config) -> BTreeMap<String, PhaseStat> {
        self.phases.get(&c).cloned().unwrap_or_default()
    }

    /// True when any cell faulted instead of measuring.
    pub fn has_failures(&self) -> bool {
        !self.failures.is_empty()
    }

    /// Total faulted cells across the matrix.
    pub fn failed_cells(&self) -> usize {
        self.failures.values().map(BTreeMap::len).sum()
    }

    /// The failures of one configuration: benchmark label -> fault
    /// description. Empty when the configuration measured cleanly.
    pub fn failures(&self, c: Config) -> BTreeMap<String, String> {
        self.failures.get(&c).cloned().unwrap_or_default()
    }

    /// All recorded failures (cache serialization).
    pub fn all_failures(&self) -> &BTreeMap<Config, BTreeMap<String, String>> {
        &self.failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            Config::all().iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), Config::all().len());
    }

    #[test]
    fn baselines_point_at_same_platform() {
        assert_eq!(Config::ArmNestedNeve.vm_baseline(), Config::ArmVm);
        assert_eq!(Config::X86Nested.vm_baseline(), Config::X86Vm);
        assert_eq!(Config::ArmVm.vm_baseline(), Config::ArmVm);
    }

    /// The satellite bugfix's regression test: a worker bucket whose
    /// thread dies with a real panic (not one contained inside
    /// `SimSession::run`) must surface every carried cell as `Failed`
    /// with the panic message — never re-raise and abort the matrix.
    #[test]
    fn a_panicking_worker_degrades_its_cells_instead_of_aborting() {
        let meta = [
            (Config::ArmVm, Bench::Hypercall),
            (Config::X86Vm, Bench::DeviceIo),
        ];
        let joined = std::thread::scope(|scope| {
            scope
                .spawn(|| -> Vec<CellResult> { panic!("deliberate worker crash") })
                .join()
        });
        let cells = joined_bucket(joined, &meta);
        assert_eq!(cells.len(), meta.len());
        for (cell, &(config, bench)) in cells.iter().zip(&meta) {
            assert_eq!(cell.config(), config);
            assert_eq!(cell.bench(), bench);
            let fault = cell.fault().expect("cell must be Failed");
            assert!(
                fault.describe().contains("deliberate worker crash"),
                "{fault}"
            );
        }
        // And the degraded cells still assemble: zero placeholders plus
        // failure records, provided the config's other benches exist.
        let mut all: Vec<CellResult> = Vec::new();
        for b in Bench::all() {
            if b != Bench::Hypercall {
                all.push(SimSession::new(Config::ArmVm, b).run());
            }
        }
        all.push(cells[0].clone());
        let m = MicroMatrix::from_cells(all);
        assert!(m.has_failures());
        assert_eq!(m.failed_cells(), 1);
        assert_eq!(m.costs(Config::ArmVm).hypercall.cycles, 0);
    }
}
