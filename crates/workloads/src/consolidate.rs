//! Multi-VM consolidation: how many idle guests fit on one host.
//!
//! The paper's consolidation argument is that nested-virtualization
//! overhead is paid even by *idle* guest hypervisors — every host
//! scheduler tick that lands on a vCPU whose guest hypervisor is
//! time-sliced in forces a full exit/entry world switch, and the cost
//! of that switch (trap-and-emulate on ARMv8.3 vs deferred register
//! access with NEVE) bounds how many guests a host can carry before
//! the ticks alone eat a fixed overhead budget.
//!
//! The rig builds one [`TestBed::new_tick`] stack per configuration:
//! `vcpus` co-resident single-vCPU idle guests, each a full guest
//! hypervisor (its own image and save area) whose nested VM sits in
//! `wfi` — or a plain idle VM for the baseline row. The
//! driver arms the host's physical EL2 timer ([`PPI_HPTIMER`], the
//! scheduler tick) on every cpu, staggered across one period, then
//! drives the event wheel: a tick wakes the parked core, the host
//! hypervisor injects the interrupt, the guest hypervisor takes it at
//! virtual EL2, acknowledges, and world-switches back into its idle
//! VM — which immediately parks again. Between ticks every core is
//! parked and the wheel leaps the clock, so the *simulated* busy
//! cycles per tick are exactly the virtualization cost of one
//! tick-and-reenter round trip.
//!
//! From the measured busy cycles per tick `h` and the tick period `T`
//! the table reports `floor(budget · T / h)` — the number of such
//! idle guests one host core can time-slice before their ticks exceed
//! `budget` (5%) of the core, the paper's "VMs per host at ≤5%
//! overhead" consolidation figure.
//!
//! Determinism: the simulation is single-threaded per row and
//! event-wheel ordered, so every row is bit-identical across runs;
//! `--jobs` fan-out stripes whole rows across threads and combines
//! them in table order, so the rendered report is byte-identical for
//! every jobs count (asserted by `neve consolidate --smoke` in CI).

use crate::cache;
use neve_cycles::Phase;
use neve_json::JsonValue;
use neve_kvmarm::testbed::DEFAULT_STEP_BUDGET;
use neve_kvmarm::{ArmConfig, ParaMode, TestBed};
use neve_sysreg::SysReg;
use neve_vtimer::PPI_HPTIMER;
use std::path::Path;

/// Where `neve consolidate` records the table.
pub const CONSOLIDATE_PATH: &str = "results/consolidate.json";

/// Host scheduler-tick period in simulated cycles: 4 ms at 2 GHz, a
/// 250 Hz tick.
pub const TICK_PERIOD: u64 = 8_000_000;

/// The consolidation overhead budget (the paper's "≤5%" column).
pub const OVERHEAD_BUDGET: f64 = 0.05;

/// Measurement shape for one consolidation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConsolidateSpec {
    /// Co-resident single-vCPU idle guests (one guest-hypervisor
    /// stack per cpu) per configuration.
    pub vcpus: usize,
    /// Ticks per cpu dropped as warm-up (lazy Stage-2 faults, shadow
    /// fills on the first switches).
    pub warmup_ticks: u64,
    /// Ticks per cpu inside the measured window.
    pub measured_ticks: u64,
    /// Worker threads for the row fan-out.
    pub jobs: usize,
}

impl ConsolidateSpec {
    /// The recorded-artifact shape.
    pub fn full() -> Self {
        Self {
            vcpus: 4,
            warmup_ticks: 4,
            measured_ticks: 32,
            jobs: 1,
        }
    }

    /// The CI shape: small but still multi-cpu and multi-tick.
    pub fn smoke() -> Self {
        Self {
            vcpus: 2,
            warmup_ticks: 2,
            measured_ticks: 8,
            jobs: 1,
        }
    }
}

/// One table row: a configuration's per-tick cost and the
/// consolidation figure it implies.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsolidateRow {
    /// Configuration label (table order).
    pub label: String,
    /// Busy (non-idle) simulated cycles inside the measured window.
    pub busy_cycles: u64,
    /// Ticks delivered inside the measured window (all cpus).
    pub ticks: u64,
    /// Host steps retired over the whole run — the host-work
    /// denominator (parked cores cost none).
    pub host_steps: u64,
}

impl ConsolidateRow {
    /// Busy cycles per delivered tick.
    pub fn cycles_per_tick(&self) -> f64 {
        self.busy_cycles as f64 / self.ticks as f64
    }

    /// Fraction of one core a single idle guest's ticks consume.
    pub fn overhead(&self) -> f64 {
        self.cycles_per_tick() / TICK_PERIOD as f64
    }

    /// Idle guests one host core carries within [`OVERHEAD_BUDGET`].
    pub fn vms_per_host(&self) -> u64 {
        (OVERHEAD_BUDGET / self.overhead()).floor() as u64
    }
}

/// The assembled table.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsolidateReport {
    /// The spec the table was measured under.
    pub spec: ConsolidateSpec,
    /// Rows in fixed table order.
    pub rows: Vec<ConsolidateRow>,
}

/// The fixed table rows: a plain-VM reference plus the four nested
/// configurations of Table 1 (architecture × guest-hypervisor mode).
fn table_configs() -> Vec<(&'static str, ArmConfig)> {
    let nested = |guest_vhe, neve| ArmConfig::Nested {
        guest_vhe,
        neve,
        para: ParaMode::None,
    };
    vec![
        ("VM", ArmConfig::Vm),
        ("Nested v8.3", nested(false, false)),
        ("Nested VHE v8.3", nested(true, false)),
        ("Nested NEVE", nested(false, true)),
        ("Nested VHE NEVE", nested(true, true)),
    ]
}

/// Measures one configuration: arms the scheduler tick on every cpu,
/// drives the wheel until each cpu has taken `warmup + measured`
/// ticks, and accounts busy cycles between the two quiescent (every
/// core parked) window boundaries.
fn measure_row(
    label: &str,
    cfg: ArmConfig,
    spec: ConsolidateSpec,
) -> Result<ConsolidateRow, String> {
    use neve_armv8::machine::StepOutcome;
    let mut tb = TestBed::new_tick(cfg, spec.vcpus);
    tb.m.refresh_cost_table();
    let ncpus = spec.vcpus;
    let target = spec.warmup_ticks + spec.measured_ticks;

    // Arm the physical EL2 timer (the host scheduler tick) on every
    // cpu, staggered across one period so wakes interleave. The EL2
    // timer is in no world-switch roster, so the deadline survives
    // every VM entry/exit.
    let mut deadline = vec![0u64; ncpus];
    let t0 = tb.m.counter.cycles();
    for (cpu, d) in deadline.iter_mut().enumerate() {
        tb.m.gic.dist.enable(cpu, PPI_HPTIMER);
        *d = t0 + TICK_PERIOD + (cpu as u64 * TICK_PERIOD) / ncpus as u64;
        tb.m.timers.write(cpu, SysReg::CnthpCvalEl2, *d);
        tb.m.timers.write(cpu, SysReg::CnthpCtlEl2, 1);
    }

    let busy = |tb: &TestBed| tb.m.counter.cycles() - tb.m.counter.cycles_in(Phase::Idle);
    let mut ticks = vec![0u64; ncpus];
    let mut window: Option<(u64, u64)> = None; // (busy, ticks) at warm-up boundary
    let mut steps: u64 = 0;
    let budget = DEFAULT_STEP_BUDGET;
    loop {
        // Re-arm every expired deadline *before* stepping anything:
        // the timer is level-triggered, so an expired cval left armed
        // re-delivers the same tick on every interrupt poll. A cpu
        // that has taken all its ticks gets its timer disabled
        // instead, so the run drains.
        let now = tb.m.counter.cycles();
        for cpu in 0..ncpus {
            if ticks[cpu] < target && now >= deadline[cpu] {
                ticks[cpu] += 1;
                if ticks[cpu] == target {
                    tb.m.timers.write(cpu, SysReg::CnthpCtlEl2, 0);
                } else {
                    deadline[cpu] += TICK_PERIOD;
                    tb.m.timers.write(cpu, SysReg::CnthpCvalEl2, deadline[cpu]);
                }
            }
        }
        let round: Vec<usize> = tb.m.runnable().to_vec();
        if round.is_empty() {
            // Quiescent: every core is parked, all delivered ticks
            // fully processed — the only honest window boundary.
            if window.is_none() && ticks.iter().all(|&t| t >= spec.warmup_ticks) {
                window = Some((busy(&tb), ticks.iter().sum()));
            }
            if ticks.iter().all(|&t| t >= target) {
                break;
            }
            if !tb.m.advance_to_wake(&mut tb.hyp) {
                return Err(format!("{label}: no runnable core and no pending event"));
            }
            continue;
        }
        for cpu in round {
            match tb.m.step(&mut tb.hyp, cpu) {
                StepOutcome::Executed => {}
                StepOutcome::Wfi => {
                    tb.m.park(&mut tb.hyp, cpu);
                }
                StepOutcome::Halted(code) => {
                    return Err(format!("{label}: payload halted unexpectedly ({code:#x})"));
                }
                StepOutcome::FetchFailure(pc) => {
                    return Err(format!("{label}: fetch failure at {pc:#x}"));
                }
            }
            steps += 1;
            if steps >= budget {
                return Err(format!("{label}: step budget exhausted ({budget})"));
            }
            tb.m.service_wakeups(&mut tb.hyp);
        }
    }
    let Some((busy0, ticks0)) = window else {
        return Err(format!("{label}: warm-up window never closed"));
    };
    let total_ticks: u64 = ticks.iter().sum();
    Ok(ConsolidateRow {
        label: label.to_string(),
        busy_cycles: busy(&tb) - busy0,
        ticks: total_ticks - ticks0,
        host_steps: steps,
    })
}

/// Runs the whole table, striping rows across `spec.jobs` threads and
/// combining in fixed table order (bit-identical for any jobs count).
///
/// # Errors
///
/// The first row failure (a stack that crashed, stalled, or never
/// quiesced), labelled with its configuration.
pub fn run_consolidate(spec: ConsolidateSpec) -> Result<ConsolidateReport, String> {
    let configs = table_configs();
    let jobs = spec.jobs.max(1).min(configs.len());
    let mut slots: Vec<Option<Result<ConsolidateRow, String>>> = Vec::new();
    slots.resize_with(configs.len(), || None);
    if jobs <= 1 {
        for (slot, (label, cfg)) in slots.iter_mut().zip(&configs) {
            *slot = Some(measure_row(label, *cfg, spec));
        }
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..jobs)
                .map(|worker| {
                    let configs = &configs;
                    s.spawn(move || {
                        configs
                            .iter()
                            .enumerate()
                            .skip(worker)
                            .step_by(jobs)
                            .map(|(i, (label, cfg))| (i, measure_row(label, *cfg, spec)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(chunk) => {
                        for (i, r) in chunk {
                            slots[i] = Some(r);
                        }
                    }
                    Err(payload) => {
                        let msg = crate::session::panic_message(payload.as_ref());
                        // The worker's rows never arrived; mark them as
                        // failed rather than aborting the process.
                        for slot in slots.iter_mut().filter(|s| s.is_none()) {
                            *slot = Some(Err(format!("consolidate worker panicked: {msg}")));
                        }
                    }
                }
            }
        });
    }
    let mut rows = Vec::with_capacity(slots.len());
    for slot in slots {
        rows.push(slot.expect("row not measured")?);
    }
    Ok(ConsolidateReport { spec, rows })
}

impl ConsolidateReport {
    /// The rendered table (the `neve consolidate` output and the CI
    /// byte-identity artifact).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Multi-VM consolidation: {} co-resident single-vCPU idle \
             guests, one tick each\n(period {} cycles, {} measured \
             ticks/guest, budget {:.0}% of one core)\n\n",
            self.spec.vcpus,
            TICK_PERIOD,
            self.spec.measured_ticks,
            OVERHEAD_BUDGET * 100.0
        ));
        out.push_str(&format!(
            "{:<18} {:>12} {:>10} {:>16}\n",
            "configuration", "cycles/tick", "overhead", "VMs/host @ <=5%"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<18} {:>12.0} {:>9.3}% {:>16}\n",
                r.label,
                r.cycles_per_tick(),
                r.overhead() * 100.0,
                r.vms_per_host()
            ));
        }
        for (a, b, what) in [
            ("Nested NEVE", "Nested v8.3", "non-VHE"),
            ("Nested VHE NEVE", "Nested VHE v8.3", "VHE"),
        ] {
            let find = |l: &str| self.rows.iter().find(|r| r.label == l);
            if let (Some(neve), Some(v83)) = (find(a), find(b)) {
                out.push_str(&format!(
                    "\nNEVE vs v8.3 ({what}): {:.2}x more idle guests per host",
                    neve.vms_per_host() as f64 / v83.vms_per_host().max(1) as f64
                ));
            }
        }
        out.push('\n');
        out
    }

    /// JSON form for `results/consolidate.json`.
    pub fn to_json(&self) -> String {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                JsonValue::Object(vec![
                    ("label".to_string(), JsonValue::String(r.label.clone())),
                    (
                        "busy_cycles".to_string(),
                        JsonValue::Number(r.busy_cycles as f64),
                    ),
                    ("ticks".to_string(), JsonValue::Number(r.ticks as f64)),
                    (
                        "host_steps".to_string(),
                        JsonValue::Number(r.host_steps as f64),
                    ),
                    (
                        "cycles_per_tick".to_string(),
                        JsonValue::Number(r.cycles_per_tick()),
                    ),
                    (
                        "vms_per_host".to_string(),
                        JsonValue::Number(r.vms_per_host() as f64),
                    ),
                ])
            })
            .collect();
        JsonValue::Object(vec![
            (
                "format".to_string(),
                JsonValue::String("neve-consolidate-v1".to_string()),
            ),
            (
                "tick_period".to_string(),
                JsonValue::Number(TICK_PERIOD as f64),
            ),
            (
                "vcpus".to_string(),
                JsonValue::Number(self.spec.vcpus as f64),
            ),
            (
                "measured_ticks".to_string(),
                JsonValue::Number(self.spec.measured_ticks as f64),
            ),
            (
                "overhead_budget".to_string(),
                JsonValue::Number(OVERHEAD_BUDGET),
            ),
            ("rows".to_string(), JsonValue::Array(rows)),
        ])
        .pretty()
    }

    /// Writes the JSON artifact (atomically, like every other
    /// `results/` file).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure.
    pub fn write(&self) -> std::io::Result<()> {
        let path = Path::new(CONSOLIDATE_PATH);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        cache::write_atomically(path, &self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_table_is_deterministic_and_ordered_sanely() {
        let spec = ConsolidateSpec::smoke();
        let a = run_consolidate(spec).expect("consolidate run");
        let b = run_consolidate(spec).expect("consolidate rerun");
        assert_eq!(
            a, b,
            "consolidation table must be bit-identical across runs"
        );
        assert_eq!(a.rows.len(), 5);
        let vms = |label: &str| {
            a.rows
                .iter()
                .find(|r| r.label == label)
                .unwrap_or_else(|| panic!("missing row {label}"))
                .vms_per_host()
        };
        // A plain VM's tick never leaves the host hypervisor; every
        // nested stack pays a guest-hypervisor round trip on top.
        assert!(vms("VM") > vms("Nested NEVE"));
        // The paper's claim: deferred register access beats
        // trap-and-emulate on the world-switch-heavy tick path.
        assert!(vms("Nested NEVE") > vms("Nested v8.3"));
        assert!(vms("Nested VHE NEVE") > vms("Nested VHE v8.3"));
        // Every stack fits at least one idle guest within budget.
        assert!(a.rows.iter().all(|r| r.vms_per_host() >= 1));
    }

    #[test]
    fn jobs_fanout_is_byte_identical() {
        let spec = ConsolidateSpec::smoke();
        let serial = run_consolidate(spec).expect("serial run");
        let fanned = run_consolidate(ConsolidateSpec { jobs: 3, ..spec }).expect("fanned run");
        assert_eq!(serial.render(), fanned.render());
        assert_eq!(serial.to_json(), fanned.to_json());
    }
}
