//! Coverage-guided fuzzing campaign over the nested-virtualization
//! stack (`neve fuzz`).
//!
//! The campaign combines the pieces earlier PRs shipped into a standing
//! bug detector:
//!
//! - **Snapshot/restore** (`Machine::snapshot`) makes per-case setup
//!   O(dirty pages): each worker builds its three-machine rig *once* —
//!   construction, Stage-2 install, guest-hypervisor boot — snapshots
//!   it, then runs every case as `restore → replace_program → run`.
//! - **Generator** ([`neve_armv8::fuzzgen`]): seeded, splitmix64
//!   deterministic guest-hypervisor-shaped programs (EL2 sysreg traffic
//!   including VNCR-deferred registers, TLBIs, IPIs, S2-translated
//!   loads/stores).
//! - **Oracle stack**, strongest first:
//!   1. the architectural invariant [`neve_armv8::Checker`] on the reference
//!      interpreter running NEVE hardware;
//!   2. *engine lockstep* — the same case under the micro-op engine
//!      must end bit-identical (state, steps, cycles);
//!   3. *cross-configuration lockstep* — the same case on ARMv8.3
//!      (every deferrable access traps into [`EmulHyp`]) must end
//!      guest-visibly identical (state and steps, **not** cycles);
//!   4. the *trap algebra* — every deferrable v8.3 trap is accounted as
//!      a NEVE deferral or residual trap.
//! - **Coverage** is the set of (trap-kind × phase × EL) provenance
//!   tuples observed in the trace; cases that reach new tuples seed a
//!   second, mutation round.
//! - **Findings** are delta-minimized and persisted as replayable JSON
//!   reproducers under [`CORPUS_DIR`]; `neve fuzz --replay <file>`
//!   re-runs one reproducer through the same oracle stack.
//!
//! Everything is deterministic in `(seed, cases)`: reports are
//! byte-identical across runs *and across `--jobs` values* (case
//! synthesis is index-pure, coverage is merged in index order), which
//! is what lets CI double-run the smoke campaign and diff the bytes.

use neve_armv8::fault::{FaultPlan, InjectedFault, Injection};
use neve_armv8::fuzzgen::{self, splitmix64};
use neve_armv8::host::{
    boot_harness, harness_machine, install_stage2, EmulHyp, PROGRAM_BASE, SCRATCH_BASE, VNCR_PAGE,
};
use neve_armv8::isa::{Asm, Instr, Program};
use neve_armv8::machine::{Machine, MachineSnapshot, StepOutcome};
use neve_armv8::trace::TraceEvent;
use neve_armv8::uop::Engine;
use neve_armv8::ArchLevel;
use neve_cycles::TrapKind;
use neve_json::JsonValue;
use neve_sysreg::bits::hcr;
use neve_sysreg::SysReg;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Where the campaign persists replayable reproducers.
pub const CORPUS_DIR: &str = "results/fuzz_corpus";

/// Steps each oracle leg may run (cases that neither halt nor fault by
/// then are simply truncated — still compared, still deterministic).
const STEP_BUDGET: u64 = 600;

/// Trace ring capacity for the observed leg (ample for [`STEP_BUDGET`]
/// steps; the ring would truncate *oldest* events, which would cost
/// coverage, not soundness).
const TRACE_CAP: usize = 8192;

/// Most findings minimized + persisted per campaign (a campaign that
/// finds more than this has a systemic bug; minimizing every instance
/// of it would only slow the report down).
const MAX_MINIMIZED: usize = 8;

/// Coverage-guided round: how many new-coverage cases seed mutants, and
/// how many mutants each seeds.
const CORPUS_PARENTS: usize = 6;
const MUTANTS_PER_PARENT: usize = 3;

/// Campaign parameters (the CLI's `--seed/--cases/--jobs`).
#[derive(Debug, Clone)]
pub struct FuzzSpec {
    /// Campaign seed; everything derives from it.
    pub seed: u64,
    /// Number of first-round cases.
    pub cases: usize,
    /// Worker threads.
    pub jobs: usize,
    /// Where to write reproducers; `None` skips persistence (tests).
    pub corpus_dir: Option<String>,
}

/// One fuzz case: a generated program body plus optional scheduled
/// fault injections (steps are relative to the post-boot snapshot).
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// The case's identity (derived from the campaign seed; names the
    /// reproducer file).
    pub seed: u64,
    /// Program body (the harness appends the trailing `Halt`).
    pub instrs: Vec<Instr>,
    /// Scheduled injections, if this is an injected case.
    pub injections: Vec<Injection>,
}

/// Which oracle flagged a case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// The architectural invariant checker recorded a violation.
    CheckerViolation,
    /// Micro-op engine and reference interpreter diverged.
    EngineDivergence,
    /// ARMv8.3 and NEVE runs ended guest-visibly different.
    CrossConfigDivergence,
    /// Deferrable-trap accounting did not balance.
    TrapAlgebraViolation,
}

impl FindingKind {
    /// Stable label (report lines, reproducer JSON, `--replay`).
    pub fn label(self) -> &'static str {
        match self {
            FindingKind::CheckerViolation => "checker-violation",
            FindingKind::EngineDivergence => "engine-divergence",
            FindingKind::CrossConfigDivergence => "cross-config-divergence",
            FindingKind::TrapAlgebraViolation => "trap-algebra-violation",
        }
    }

    /// Parses a [`Self::label`] back (reproducer loading).
    pub fn from_label(s: &str) -> Option<Self> {
        [
            FindingKind::CheckerViolation,
            FindingKind::EngineDivergence,
            FindingKind::CrossConfigDivergence,
            FindingKind::TrapAlgebraViolation,
        ]
        .into_iter()
        .find(|k| k.label() == s)
    }
}

/// A flagged case, as the oracle reported it.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which oracle fired.
    pub kind: FindingKind,
    /// First divergence / first violation, human-readable.
    pub detail: String,
}

/// A coverage tuple: (trap kind, world-switch phase, EL the guest was
/// executing at when it trapped).
pub type CovTuple = (String, String, u8);

/// Everything one oracle pass over one case yields.
struct CaseOutcome {
    coverage: BTreeSet<CovTuple>,
    finding: Option<Finding>,
    /// Cross-config + algebra oracles were suspended (IRQ timing).
    cross_skipped: bool,
}

/// A minimized, persisted finding as the report presents it.
#[derive(Debug, Clone)]
pub struct FindingRecord {
    /// First-round index (round-2 mutants order after them).
    pub case_index: usize,
    /// The case that fired, *minimized*.
    pub case: FuzzCase,
    /// Injection labels carried by the case (empty when clean).
    pub injected: Vec<&'static str>,
    /// What the oracle said.
    pub finding: Finding,
    /// Program length before minimization.
    pub original_len: usize,
    /// Reproducer path, when persistence was on.
    pub file: Option<String>,
}

/// The campaign's deterministic report.
#[derive(Debug)]
pub struct FuzzReport {
    /// Echo of the spec (seed, first-round cases).
    pub seed: u64,
    /// generated / mutated / injected first-round case counts.
    pub generated: usize,
    /// Mutated (corpus-less, index-derived) first-round cases.
    pub mutated: usize,
    /// Injected first-round cases.
    pub injected: usize,
    /// Injected cases the invariant checker caught.
    pub injections_detected: usize,
    /// Second-round coverage-guided mutants run.
    pub guided_mutants: usize,
    /// Union of coverage tuples over every case.
    pub coverage: BTreeSet<CovTuple>,
    /// Cases whose cross-config/algebra oracles were suspended.
    pub cross_skipped: usize,
    /// Minimized findings, in case order.
    pub findings: Vec<FindingRecord>,
}

impl FuzzReport {
    /// Renders the report. Byte-identical for equal `(seed, cases)`
    /// regardless of `--jobs` — the CI determinism gate diffs this.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let total = self.generated + self.mutated + self.injected;
        out.push_str("nested-virt fuzzing campaign\n");
        out.push_str(&format!("  seed           {:#018x}\n", self.seed));
        out.push_str(&format!(
            "  cases          {} generated + {} mutated + {} injected = {}, +{} coverage-guided mutants\n",
            self.generated, self.mutated, self.injected, total, self.guided_mutants
        ));
        out.push_str(&format!(
            "  step budget    {STEP_BUDGET} steps per case per oracle leg\n"
        ));
        out.push_str(&format!(
            "  coverage       {} (trap-kind x phase x EL) tuples\n",
            self.coverage.len()
        ));
        for (kind, phase, el) in &self.coverage {
            out.push_str(&format!("    {kind} @ {phase} EL{el}\n"));
        }
        if self.cross_skipped > 0 {
            out.push_str(&format!(
                "  cross-config   {} case(s) skipped (IRQ timing is legitimately configuration-dependent)\n",
                self.cross_skipped
            ));
        }
        out.push_str(&format!(
            "  injections     {} scheduled, {} detected by the invariant checker\n",
            self.injected, self.injections_detected
        ));
        out.push_str(&format!("  findings       {}\n", self.findings.len()));
        for f in &self.findings {
            let inj = if f.injected.is_empty() {
                String::new()
            } else {
                format!(" (injected {})", f.injected.join(", "))
            };
            let file = f
                .file
                .as_deref()
                .map(|p| format!(" -> {p}"))
                .unwrap_or_default();
            out.push_str(&format!(
                "    [{:04}] {}{inj}: {} | {} -> {} instrs{file}\n",
                f.case_index,
                f.finding.kind.label(),
                f.finding.detail,
                f.original_len,
                f.case.instrs.len(),
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------
// The three-machine oracle rig.
// ---------------------------------------------------------------------

/// Per-worker testbed: three booted machines and their snapshots.
/// Every case runs as restore → replace program → run, on each leg.
struct Rig {
    /// Reference interpreter on NEVE hardware — the observed leg
    /// (checker + trace attach here).
    neve: Machine,
    neve_snap: MachineSnapshot,
    /// Micro-op engine on NEVE hardware — the engine-lockstep leg.
    uop: Machine,
    uop_snap: MachineSnapshot,
    /// Reference interpreter on ARMv8.3 — the cross-config leg.
    v83: Machine,
    v83_snap: MachineSnapshot,
    /// Deferrable-trap counters at the snapshot point (restore rewinds
    /// the machines to exactly these, so per-case deltas subtract them).
    base_neve_deferrals: u64,
    base_neve_residual: u64,
    base_v83_deferrable: u64,
}

fn nv_hcr(neve: bool) -> u64 {
    hcr::VM | hcr::IMO | hcr::NV | hcr::NV1 | if neve { hcr::NV2 } else { 0 }
}

/// Builds one booted harness machine (placeholder program; cases swap
/// it per run).
fn build_machine(neve: bool, engine: Engine) -> Result<Machine, String> {
    let mut a = Asm::new(PROGRAM_BASE);
    a.i(Instr::Halt(1));
    let arch = if neve {
        ArchLevel::V8_4
    } else {
        ArchLevel::V8_3
    };
    let mut m = harness_machine(a.assemble(), arch, nv_hcr(neve), 1);
    install_stage2(&mut m, 0, 7);
    if neve {
        let raw = neve_core::VncrEl2::enabled_at(VNCR_PAGE)
            .map_err(|e| format!("internal: VNCR_PAGE rejected as VNCR_EL2 base: {e:?}"))?
            .raw();
        m.hyp_write(0, SysReg::VncrEl2, raw);
    }
    boot_harness(&mut m, 0);
    m.set_engine(engine);
    Ok(m)
}

impl Rig {
    fn new() -> Result<Self, String> {
        let mut neve = build_machine(true, Engine::Interp)?;
        let mut uop = build_machine(true, Engine::Uop)?;
        let mut v83 = build_machine(false, Engine::Interp)?;
        let neve_snap = neve.snapshot();
        let uop_snap = uop.snapshot();
        let v83_snap = v83.snapshot();
        Ok(Self {
            base_neve_deferrals: neve.vncr_deferrals(),
            base_neve_residual: neve.deferrable_sysreg_traps(),
            base_v83_deferrable: v83.deferrable_sysreg_traps(),
            neve,
            neve_snap,
            uop,
            uop_snap,
            v83,
            v83_snap,
        })
    }
}

/// Assembles a case body into the harness program (trailing `Halt`).
fn program_for(case: &FuzzCase) -> Program {
    let mut a = Asm::new(PROGRAM_BASE);
    for &i in &case.instrs {
        a.i(i);
    }
    a.i(Instr::Halt(1));
    a.assemble()
}

/// Everything architecturally visible about one leg's end state.
#[derive(Debug, PartialEq, Eq, Clone)]
struct LegEnd {
    outcome: StepOutcome,
    steps: u64,
    pc: u64,
    el: u8,
    gprs: [u64; 31],
    mem_probe: u64,
}

/// Runs one leg to halt or budget under a fresh emulating host and
/// returns (end state, cycles consumed, IRQ traps serviced).
fn run_leg(m: &mut Machine) -> (LegEnd, u64, u64) {
    let start_steps = m.steps_retired();
    let start_cycles = m.counter.cycles();
    let mut h = EmulHyp::new();
    let mut outcome = StepOutcome::Executed;
    for _ in 0..STEP_BUDGET {
        outcome = m.step(&mut h, 0);
        if outcome != StepOutcome::Executed {
            break;
        }
    }
    let mut gprs = [0u64; 31];
    for (r, g) in gprs.iter_mut().enumerate() {
        *g = m.core(0).gpr(r as u8);
    }
    // Scratch + deferred-access page: the memory a case can write
    // identically on every leg.
    let mem_probe = (0..32)
        .map(|i| m.mem.read_u64(SCRATCH_BASE + 8 * i))
        .chain((0..32).map(|i| m.mem.read_u64(VNCR_PAGE + 8 * i)))
        .fold(0u64, |acc, v| {
            acc.rotate_left(7) ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        });
    let end = LegEnd {
        outcome,
        steps: m.steps_retired() - start_steps,
        pc: m.core(0).pc,
        el: m.core(0).pstate.el,
        gprs,
        mem_probe,
    };
    (end, m.counter.cycles() - start_cycles, h.irq_traps)
}

/// First field where two leg ends differ, for divergence details.
fn first_divergence(a: &LegEnd, b: &LegEnd, names: (&str, &str)) -> String {
    let (an, bn) = names;
    if a.outcome != b.outcome {
        return format!("outcome: {an} {:?} vs {bn} {:?}", a.outcome, b.outcome);
    }
    if a.steps != b.steps {
        return format!("steps: {an} {} vs {bn} {}", a.steps, b.steps);
    }
    if a.pc != b.pc {
        return format!("pc: {an} {:#x} vs {bn} {:#x}", a.pc, b.pc);
    }
    if a.el != b.el {
        return format!("el: {an} {} vs {bn} {}", a.el, b.el);
    }
    for r in 0..31 {
        if a.gprs[r] != b.gprs[r] {
            return format!("x{r}: {an} {:#x} vs {bn} {:#x}", a.gprs[r], b.gprs[r]);
        }
    }
    format!(
        "memory probe: {an} {:#x} vs {bn} {:#x}",
        a.mem_probe, b.mem_probe
    )
}

/// Runs one case through the oracle stack.
///
/// Clean cases run all three legs; injected cases run only the observed
/// leg (the injection makes the others diverge *by design* — the
/// invariant checker is the oracle there).
fn run_case(rig: &mut Rig, case: &FuzzCase) -> CaseOutcome {
    // Leg 1: reference interpreter on NEVE, checker + trace attached.
    rig.neve.restore(&rig.neve_snap);
    rig.neve.replace_program(program_for(case));
    rig.neve.attach_trace(TRACE_CAP);
    rig.neve.attach_checker();
    if !case.injections.is_empty() {
        let base = rig.neve.steps_retired();
        let plan = FaultPlan::new(
            case.injections
                .iter()
                .map(|i| Injection {
                    step: base + i.step,
                    fault: i.fault,
                    param: i.param,
                })
                .collect(),
        );
        rig.neve.attach_fault_plan(plan);
    }
    let (a_end, a_cycles, a_irqs) = run_leg(&mut rig.neve);

    let mut coverage = BTreeSet::new();
    let mut last_el = 1u8;
    if let Some(trace) = rig.neve.trace.take() {
        for ev in trace.events() {
            match ev {
                TraceEvent::Retired { el, .. } => last_el = *el,
                TraceEvent::TrapToEl2 { kind, phase, .. } => {
                    coverage.insert((trap_label(*kind), phase.label().to_string(), last_el));
                }
                _ => {}
            }
        }
    }
    let violations = rig
        .neve
        .take_checker()
        .map(|c| c.violations().to_vec())
        .unwrap_or_default();

    if let Some(v) = violations.first() {
        return CaseOutcome {
            coverage,
            finding: Some(Finding {
                kind: FindingKind::CheckerViolation,
                detail: v.to_string(),
            }),
            cross_skipped: false,
        };
    }
    if !case.injections.is_empty() {
        // Injected but unflagged: the lockstep legs would report the
        // *injection*, not a bug; stop here.
        return CaseOutcome {
            coverage,
            finding: None,
            cross_skipped: false,
        };
    }

    // Leg 2: micro-op engine, same config — must be bit-identical
    // including cycles.
    rig.uop.restore(&rig.uop_snap);
    rig.uop.replace_program(program_for(case));
    let (b_end, b_cycles, _) = run_leg(&mut rig.uop);
    if a_end != b_end || a_cycles != b_cycles {
        let detail = if a_end == b_end {
            format!("cycles: interp {a_cycles} vs uop {b_cycles}")
        } else {
            first_divergence(&a_end, &b_end, ("interp", "uop"))
        };
        return CaseOutcome {
            coverage,
            finding: Some(Finding {
                kind: FindingKind::EngineDivergence,
                detail,
            }),
            cross_skipped: false,
        };
    }

    // Leg 3: ARMv8.3 — guest-visibly identical, cycles excepted.
    rig.v83.restore(&rig.v83_snap);
    rig.v83.replace_program(program_for(case));
    let (c_end, _, c_irqs) = run_leg(&mut rig.v83);
    if a_irqs > 0 || c_irqs > 0 {
        // Interrupt delivery times depend on cycle counts, which the
        // two configurations legitimately disagree on; comparing would
        // report the cost model, not a bug.
        return CaseOutcome {
            coverage,
            finding: None,
            cross_skipped: true,
        };
    }
    if a_end != c_end {
        return CaseOutcome {
            coverage,
            finding: Some(Finding {
                kind: FindingKind::CrossConfigDivergence,
                detail: first_divergence(&a_end, &c_end, ("neve", "v8.3")),
            }),
            cross_skipped: false,
        };
    }

    // The paper's accounting identity, per case: every deferrable v8.3
    // trap is a NEVE deferral or a NEVE residual trap.
    let v83_deferrable = rig.v83.deferrable_sysreg_traps() - rig.base_v83_deferrable;
    let neve_deferrals = rig.neve.vncr_deferrals() - rig.base_neve_deferrals;
    let neve_residual = rig.neve.deferrable_sysreg_traps() - rig.base_neve_residual;
    if v83_deferrable != neve_deferrals + neve_residual {
        return CaseOutcome {
            coverage,
            finding: Some(Finding {
                kind: FindingKind::TrapAlgebraViolation,
                detail: format!(
                    "v8.3 deferrable traps {v83_deferrable} != NEVE deferrals {neve_deferrals} + residual traps {neve_residual}"
                ),
            }),
            cross_skipped: false,
        };
    }

    CaseOutcome {
        coverage,
        finding: None,
        cross_skipped: false,
    }
}

fn trap_label(kind: TrapKind) -> String {
    format!("{kind:?}").to_lowercase()
}

// ---------------------------------------------------------------------
// Deterministic case synthesis.
// ---------------------------------------------------------------------

const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// Index-pure seed derivation: identical for a given `(seed, i)` no
/// matter which worker computes it.
fn mix(seed: u64, i: u64) -> u64 {
    let mut s = seed ^ i.wrapping_mul(GOLDEN);
    splitmix64(&mut s)
}

fn base_instrs(spec_seed: u64, i: usize) -> Vec<Instr> {
    let mut s = mix(spec_seed, i as u64);
    let len = 10 + (splitmix64(&mut s) % 30) as usize;
    fuzzgen::generate(splitmix64(&mut s), len)
}

/// Synthesizes first-round case `i`. Every 8th-ish case (i % 8 == 5)
/// carries a scheduled fault injection; every 4th-ish (i % 4 == 3) is
/// an index-derived mutant of the base two slots earlier; the rest are
/// freshly generated.
pub fn case_for_index(spec_seed: u64, i: usize) -> FuzzCase {
    let id = mix(spec_seed, i as u64);
    if i % 8 == 5 {
        return injected_case(spec_seed, i, id);
    }
    if i % 4 == 3 && i >= 3 {
        let parent = base_instrs(spec_seed, i - 2);
        let mut s = id;
        let mseed = splitmix64(&mut s);
        return FuzzCase {
            seed: id,
            instrs: fuzzgen::mutate(&parent, mseed),
            injections: vec![],
        };
    }
    FuzzCase {
        seed: id,
        instrs: base_instrs(spec_seed, i),
        injections: vec![],
    }
}

/// An injected case: branch-free body (so execution is long enough for
/// the injection to fire) ending in a forced TLB invalidate + Stage-2
/// walk, with one fault from the [`InjectedFault`] rotation scheduled a
/// few steps in. Shadow-PTE corruption always uses `param` 1024 — slot
/// 1024 % 512 = 0 is the one root descriptor covering the testbed's
/// RAM, so the corruption is architecturally reachable and the checker
/// *must* re-detect it.
fn injected_case(spec_seed: u64, i: usize, id: u64) -> FuzzCase {
    let mut s = id ^ spec_seed.rotate_left(17);
    let len = 24 + (splitmix64(&mut s) % 16) as usize;
    let gseed = splitmix64(&mut s);
    let mut instrs: Vec<Instr> = fuzzgen::generate(gseed, len)
        .into_iter()
        .filter(|ins| !matches!(ins, Instr::B(_) | Instr::Cbz(_, _) | Instr::Cbnz(_, _)))
        .collect();
    instrs.extend([
        Instr::TlbiVmall,
        Instr::MovImm(1, SCRATCH_BASE),
        Instr::Ldr(2, 1, 0),
        Instr::Str(2, 1, 8),
    ]);
    let all = InjectedFault::all();
    let fault = all[(i / 8) % all.len()];
    let param = match fault {
        InjectedFault::CorruptShadowPte => 1024,
        _ => splitmix64(&mut s) % 4096,
    };
    let step = 4 + splitmix64(&mut s) % 8;
    FuzzCase {
        seed: id,
        instrs,
        injections: vec![Injection { step, fault, param }],
    }
}

// ---------------------------------------------------------------------
// Minimization.
// ---------------------------------------------------------------------

/// Delta-minimizes `case` while the oracle keeps reporting the same
/// finding kind: repeatedly drops instruction chunks (halving the chunk
/// size down to single instructions), keeping each removal that still
/// reproduces.
fn minimize(rig: &mut Rig, case: &FuzzCase, kind: FindingKind) -> FuzzCase {
    let mut best = case.clone();
    let reproduces = |rig: &mut Rig, c: &FuzzCase| -> bool {
        run_case(rig, c).finding.map(|f| f.kind) == Some(kind)
    };
    let mut chunk = best.instrs.len().div_ceil(2).max(1);
    loop {
        let mut i = 0;
        while i < best.instrs.len() && best.instrs.len() > 1 {
            let mut cand = best.clone();
            let hi = (i + chunk).min(cand.instrs.len());
            cand.instrs.drain(i..hi);
            if !cand.instrs.is_empty() && reproduces(rig, &cand) {
                best = cand; // keep the removal; retry the same offset
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    best
}

// ---------------------------------------------------------------------
// Reproducers (JSON corpus).
// ---------------------------------------------------------------------

/// Serializes a finding into the replayable reproducer schema.
fn reproducer_json(rec: &FindingRecord, campaign_seed: u64) -> String {
    let case = &rec.case;
    let instrs: Vec<JsonValue> = case
        .instrs
        .iter()
        .map(|&i| JsonValue::from(fuzzgen::instr_to_string(i)))
        .collect();
    let injections: Vec<JsonValue> = case
        .injections
        .iter()
        .map(|inj| {
            JsonValue::Object(vec![
                ("step".into(), JsonValue::from(inj.step)),
                ("fault".into(), JsonValue::from(inj.fault.label())),
                ("param".into(), JsonValue::from(inj.param)),
            ])
        })
        .collect();
    JsonValue::Object(vec![
        ("version".into(), JsonValue::from(1u64)),
        (
            "campaign_seed".into(),
            JsonValue::from(format!("{campaign_seed:#018x}")),
        ),
        (
            "case".into(),
            JsonValue::from(format!("{:#018x}", case.seed)),
        ),
        ("finding".into(), JsonValue::from(rec.finding.kind.label())),
        (
            "detail".into(),
            JsonValue::from(rec.finding.detail.as_str()),
        ),
        ("minimized".into(), JsonValue::Bool(true)),
        ("instrs".into(), JsonValue::Array(instrs)),
        ("injections".into(), JsonValue::Array(injections)),
    ])
    .pretty()
}

/// Writes one reproducer; returns its path.
fn persist(rec: &FindingRecord, dir: &str, campaign_seed: u64) -> Result<String, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    let name = format!("{}-{:016x}.json", rec.finding.kind.label(), rec.case.seed);
    let path = Path::new(dir).join(&name);
    crate::cache::write_atomically(&path, &reproducer_json(rec, campaign_seed))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path.display().to_string())
}

/// Loads a reproducer file back into a case + expected finding kind.
pub fn load_reproducer(path: &str) -> Result<(FuzzCase, FindingKind), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = neve_json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e:?}"))?;
    let field = |k: &str| {
        doc.get(k)
            .ok_or_else(|| format!("{path}: missing field `{k}`"))
    };
    let seed_text = field("case")?
        .as_str()
        .ok_or_else(|| format!("{path}: `case` must be a hex string"))?;
    let seed = u64::from_str_radix(seed_text.trim_start_matches("0x"), 16)
        .map_err(|_| format!("{path}: `case` is not a hex number: {seed_text}"))?;
    let kind_text = field("finding")?
        .as_str()
        .ok_or_else(|| format!("{path}: `finding` must be a string"))?;
    let kind = FindingKind::from_label(kind_text)
        .ok_or_else(|| format!("{path}: unknown finding kind `{kind_text}`"))?;
    let mut instrs = Vec::new();
    for (n, v) in field("instrs")?
        .as_array()
        .ok_or_else(|| format!("{path}: `instrs` must be an array"))?
        .iter()
        .enumerate()
    {
        let s = v
            .as_str()
            .ok_or_else(|| format!("{path}: instrs[{n}] must be a string"))?;
        instrs.push(
            fuzzgen::instr_from_string(s)
                .ok_or_else(|| format!("{path}: instrs[{n}]: unparseable instruction `{s}`"))?,
        );
    }
    let mut injections = Vec::new();
    for (n, v) in field("injections")?
        .as_array()
        .ok_or_else(|| format!("{path}: `injections` must be an array"))?
        .iter()
        .enumerate()
    {
        let err = |what: &str| format!("{path}: injections[{n}]: {what}");
        let step = v
            .get("step")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| err("missing numeric `step`"))?;
        let label = v
            .get("fault")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| err("missing `fault` label"))?;
        let fault = InjectedFault::all()
            .into_iter()
            .find(|f| f.label() == label)
            .ok_or_else(|| err(&format!("unknown fault `{label}`")))?;
        let param = v
            .get("param")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| err("missing numeric `param`"))?;
        injections.push(Injection { step, fault, param });
    }
    Ok((
        FuzzCase {
            seed,
            instrs,
            injections,
        },
        kind,
    ))
}

/// What `--replay` reports.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The reproducer's recorded finding kind.
    pub expected: FindingKind,
    /// What this run's oracle said (None: nothing fired).
    pub observed: Option<Finding>,
}

impl ReplayOutcome {
    /// The reproducer re-triggered its recorded finding kind.
    pub fn reproduced(&self) -> bool {
        self.observed.as_ref().map(|f| f.kind) == Some(self.expected)
    }
}

/// Re-runs one persisted reproducer through the oracle stack.
pub fn replay(path: &str) -> Result<ReplayOutcome, String> {
    let (case, expected) = load_reproducer(path)?;
    let mut rig = Rig::new()?;
    let out = run_case(&mut rig, &case);
    Ok(ReplayOutcome {
        expected,
        observed: out.finding,
    })
}

// ---------------------------------------------------------------------
// The campaign.
// ---------------------------------------------------------------------

/// Striped parallel map with one [`Rig`] per worker. Results are merged
/// by case index, so the outcome is independent of `jobs`.
fn run_striped<C, F>(cases: &[C], jobs: usize, f: F) -> Result<BTreeMap<usize, CaseOutcome>, String>
where
    C: Sync,
    F: Fn(&mut Rig, &C) -> CaseOutcome + Sync,
{
    let jobs = jobs.max(1).min(cases.len().max(1));
    let mut merged = BTreeMap::new();
    let mut failures: Vec<String> = Vec::new();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..jobs)
            .map(|w| {
                let f = &f;
                scope.spawn(move || -> Result<Vec<(usize, CaseOutcome)>, String> {
                    let mut rig = Rig::new()?;
                    cases
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(jobs)
                        .map(|(i, c)| Ok((i, f(&mut rig, c))))
                        .collect()
                })
            })
            .collect();
        for worker in workers {
            match worker.join() {
                Ok(Ok(chunk)) => merged.extend(chunk),
                Ok(Err(e)) => failures.push(e),
                Err(payload) => failures.push(format!(
                    "fuzz worker panicked: {}",
                    crate::session::panic_message(payload.as_ref())
                )),
            }
        }
    });
    if let Some(e) = failures.into_iter().next() {
        return Err(e);
    }
    Ok(merged)
}

/// Runs the campaign: a first round of index-synthesized cases, a
/// second coverage-guided round mutating the cases that reached new
/// provenance tuples, then sequential minimization + persistence of
/// every finding.
pub fn run_fuzz(spec: &FuzzSpec) -> Result<FuzzReport, String> {
    let round1: Vec<FuzzCase> = (0..spec.cases)
        .map(|i| case_for_index(spec.seed, i))
        .collect();
    let outcomes = run_striped(&round1, spec.jobs, run_case)?;

    // Coverage is merged in index order, so "which case was first to a
    // tuple" — and therefore the round-2 parent set — is jobs-invariant.
    let mut coverage: BTreeSet<CovTuple> = BTreeSet::new();
    let mut parents: Vec<usize> = Vec::new();
    let mut cross_skipped = 0usize;
    let mut findings: Vec<(usize, FuzzCase, Finding)> = Vec::new();
    let mut injections_detected = 0usize;
    for (&i, out) in &outcomes {
        let novel = out.coverage.iter().any(|t| !coverage.contains(t));
        coverage.extend(out.coverage.iter().cloned());
        if novel && round1[i].injections.is_empty() && parents.len() < CORPUS_PARENTS {
            parents.push(i);
        }
        if out.cross_skipped {
            cross_skipped += 1;
        }
        if let Some(f) = &out.finding {
            if !round1[i].injections.is_empty() && f.kind == FindingKind::CheckerViolation {
                injections_detected += 1;
            }
            findings.push((i, round1[i].clone(), f.clone()));
        }
    }

    // Round 2: mutants of the new-coverage parents.
    let mut round2: Vec<FuzzCase> = Vec::with_capacity(parents.len() * MUTANTS_PER_PARENT);
    for &p in &parents {
        for j in 0..MUTANTS_PER_PARENT {
            let id = mix(spec.seed, 0x5eed_0000 + (p as u64) * 16 + j as u64);
            let mut s = id;
            let mseed = splitmix64(&mut s);
            round2.push(FuzzCase {
                seed: id,
                instrs: fuzzgen::mutate(&round1[p].instrs, mseed),
                injections: vec![],
            });
        }
    }
    let outcomes2 = run_striped(&round2, spec.jobs, run_case)?;
    for (&k, out) in &outcomes2 {
        coverage.extend(out.coverage.iter().cloned());
        if out.cross_skipped {
            cross_skipped += 1;
        }
        if let Some(f) = &out.finding {
            findings.push((spec.cases + k, round2[k].clone(), f.clone()));
        }
    }

    // Minimize + persist, sequentially and in case order.
    let mut rig = Rig::new()?;
    let mut records = Vec::new();
    for (idx, case, finding) in findings.into_iter().take(MAX_MINIMIZED) {
        let original_len = case.instrs.len();
        let min = minimize(&mut rig, &case, finding.kind);
        let mut rec = FindingRecord {
            case_index: idx,
            injected: min.injections.iter().map(|i| i.fault.label()).collect(),
            case: min,
            finding,
            original_len,
            file: None,
        };
        if let Some(dir) = &spec.corpus_dir {
            rec.file = Some(persist(&rec, dir, spec.seed)?);
        }
        records.push(rec);
    }

    let mut generated = 0;
    let mut mutated = 0;
    let mut injected = 0;
    for i in 0..spec.cases {
        if i % 8 == 5 {
            injected += 1;
        } else if i % 4 == 3 && i >= 3 {
            mutated += 1;
        } else {
            generated += 1;
        }
    }
    Ok(FuzzReport {
        seed: spec.seed,
        generated,
        mutated,
        injected,
        injections_detected,
        guided_mutants: round2.len(),
        coverage,
        cross_skipped,
        findings: records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(cases: usize, jobs: usize) -> FuzzSpec {
        FuzzSpec {
            seed: 0x7e1,
            cases,
            jobs,
            corpus_dir: None,
        }
    }

    #[test]
    fn campaign_is_deterministic_and_jobs_invariant() {
        let a = run_fuzz(&spec(14, 1)).unwrap().render();
        let b = run_fuzz(&spec(14, 3)).unwrap().render();
        assert_eq!(a, b, "report depends on worker count");
    }

    #[test]
    fn snapshot_mid_wfi_restores_pending_timer_wake() {
        use neve_vtimer::PPI_VTIMER;
        let mut m = build_machine(true, Engine::Interp).unwrap();
        // An idle guest: park in `wfi`, halt once woken.
        let mut a = Asm::new(PROGRAM_BASE);
        a.i(Instr::Wfi);
        a.i(Instr::Halt(1));
        m.replace_program(a.assemble());
        let mut h = EmulHyp::new();
        let mut out = StepOutcome::Executed;
        for _ in 0..64 {
            out = m.step(&mut h, 0);
            if out == StepOutcome::Wfi {
                break;
            }
        }
        assert_eq!(out, StepOutcome::Wfi, "guest never reached its wfi");
        // Arm the EL1 virtual timer and park: the wake is now a
        // pending wheel event a snapshot must carry.
        let deadline = m.counter.cycles() + 10_000;
        m.gic.dist.enable(0, PPI_VTIMER);
        m.timers.write(0, SysReg::CntvCvalEl0, deadline);
        m.timers.write(0, SysReg::CntvCtlEl0, 1);
        assert!(m.park(&mut h, 0), "core with a future deadline must park");
        let parked_at = m.counter.cycles();
        let snap = m.snapshot();
        // Original timeline: the wake is time-driven (the clock leapt
        // to the timer deadline, `CNTVOFF`-adjusted by the wheel).
        assert!(m.advance_to_wake(&mut h));
        let woke_at = m.counter.cycles();
        assert!(
            woke_at >= deadline && woke_at > parked_at,
            "wake at {woke_at} is not a forward leap to the armed deadline {deadline}"
        );
        assert!(!m.is_parked(0));
        // Restored timeline: same pending event, same simulated time.
        m.restore(&snap);
        assert_eq!(m.counter.cycles(), parked_at);
        assert!(m.is_parked(0), "restore must rewind to the parked state");
        assert!(
            m.advance_to_wake(&mut h),
            "restored wheel lost the armed vtimer event"
        );
        assert_eq!(
            m.counter.cycles(),
            woke_at,
            "restored wake landed at a different simulated time"
        );
        assert!(!m.is_parked(0));
    }

    #[test]
    fn campaign_observes_trap_coverage() {
        let r = run_fuzz(&spec(8, 2)).unwrap();
        assert!(
            !r.coverage.is_empty(),
            "eight guest-hypervisor cases produced no trap provenance at all"
        );
        // Generated programs are EL1 guest-hypervisor shapes.
        assert!(r.coverage.iter().all(|(_, _, el)| *el == 1));
    }

    #[test]
    fn injected_shadow_pte_corruption_is_detected_minimized_and_replayable() {
        let dir = std::env::temp_dir().join(format!("neve-fuzz-test-{}", std::process::id()));
        let dir_s = dir.display().to_string();
        // Index 5 is the campaign's first injected case and carries
        // CorruptShadowPte (rotation slot 0) with param 1024.
        let mut s = spec(6, 2);
        s.corpus_dir = Some(dir_s.clone());
        let r = run_fuzz(&s).unwrap();
        assert_eq!(r.injected, 1);
        assert_eq!(r.injections_detected, 1, "checker missed the corruption");
        let rec = r
            .findings
            .iter()
            .find(|f| f.injected.contains(&"corrupt-shadow-pte"))
            .expect("no reproducer for the injected corruption");
        assert_eq!(rec.finding.kind, FindingKind::CheckerViolation);
        assert!(rec.finding.detail.contains("malformed-stage2"));
        assert!(
            rec.case.instrs.len() <= rec.original_len,
            "minimization grew the case"
        );
        assert!(rec.case.instrs.len() < rec.original_len);

        let file = rec.file.clone().expect("reproducer not persisted");
        let out = replay(&file).unwrap();
        assert!(
            out.reproduced(),
            "--replay did not re-trigger: {:?}",
            out.observed
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_reports_structured_errors() {
        let err = replay("/nonexistent/repro.json").unwrap_err();
        assert!(err.contains("/nonexistent/repro.json"));
        let dir = std::env::temp_dir().join(format!("neve-fuzz-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{\"finding\": \"nope\"}").unwrap();
        let err = replay(&bad.display().to_string()).unwrap_err();
        assert!(err.contains("bad.json"), "error must name the file: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A reproducer whose write was cut short (power loss, full disk)
    /// must fail the replay with an error naming the file — at *every*
    /// truncation point (mid-string, mid-field, mid-array). Panicking
    /// here would turn a damaged corpus entry into a harness crash.
    #[test]
    fn truncated_reproducers_fail_structurally_at_every_cut() {
        let case = case_for_index(0x7e1, 5);
        let rec = FindingRecord {
            case_index: 5,
            injected: vec!["corrupt-shadow-pte"],
            case: case.clone(),
            finding: Finding {
                kind: FindingKind::CheckerViolation,
                detail: "step 1 cpu0: malformed-stage2: x".into(),
            },
            original_len: case.instrs.len(),
            file: None,
        };
        let text = reproducer_json(&rec, 0x7e1);
        let dir = std::env::temp_dir().join(format!("neve-fuzz-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.json");
        let path_s = path.display().to_string();
        // Every prefix that drops at least the closing brace; stepping
        // by a few bytes keeps the test fast while still crossing every
        // structural boundary (mid-string, mid-field, mid-array).
        for cut in (0..text.len().saturating_sub(1)).step_by(7) {
            std::fs::write(&path, &text[..cut]).unwrap();
            let err = load_reproducer(&path_s).unwrap_err();
            assert!(
                err.contains("truncated.json"),
                "cut at {cut}: error must name the file: {err}"
            );
        }
        // An empty file (zero-byte write) is the degenerate truncation.
        std::fs::write(&path, "").unwrap();
        let err = replay(&path_s).unwrap_err();
        assert!(err.contains("truncated.json"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reproducer_round_trips_through_json() {
        let case = case_for_index(0x7e1, 5);
        let rec = FindingRecord {
            case_index: 5,
            injected: vec!["corrupt-shadow-pte"],
            case: case.clone(),
            finding: Finding {
                kind: FindingKind::CheckerViolation,
                detail: "step 1 cpu0: malformed-stage2: x".into(),
            },
            original_len: case.instrs.len(),
            file: None,
        };
        let text = reproducer_json(&rec, 0x7e1);
        let dir = std::env::temp_dir().join(format!("neve-fuzz-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rt.json");
        std::fs::write(&path, &text).unwrap();
        let (loaded, kind) = load_reproducer(&path.display().to_string()).unwrap();
        assert_eq!(kind, FindingKind::CheckerViolation);
        assert_eq!(loaded.seed, case.seed);
        assert_eq!(loaded.instrs, case.instrs);
        assert_eq!(loaded.injections.len(), 1);
        assert_eq!(loaded.injections[0].param, 1024);
        std::fs::remove_dir_all(&dir).ok();
    }
}
