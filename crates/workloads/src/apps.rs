//! The application-workload model behind Figure 2.
//!
//! Figure 2 plots, for ten real workloads (paper Table 8), the
//! normalized overhead (virtualized runtime / native runtime) of seven
//! configurations. The simulator regenerates the figure from first
//! principles:
//!
//! ```text
//! overhead = (1 + B) / (1 - T)          [capped when T saturates]
//!
//! B = Σ events_per_unit × per_event_cost / UNIT_CYCLES
//! T = feedback_rate × ipi_cost / UNIT_CYCLES
//! ```
//!
//! where the per-event costs are the *measured microbenchmark results*
//! of the simulated stacks (the same data as Table 6) and `UNIT_CYCLES`
//! is the native work a profile's rates are normalized to. The
//! denominator models *slowdown-proportional* events — periodic timer
//! ticks, TCP retransmissions and scheduler interrupts happen per unit
//! of wall time, so the slower a nested VM runs, the more of them each
//! unit of useful work absorbs; every one costs a full
//! guest-hypervisor transition. This feedback is what lets I/O-bound
//! workloads exceed 40x on ARMv8.3 (the paper's top panel) while the
//! same workload stays near 3x under NEVE (Section 7.2, Memcached).
//!
//! The **virtio notification anomaly** (Section 7.2): notification
//! (kick) rates depend on how fast the *backend* drains the queue — a
//! faster backend re-enables notifications sooner, so the same guest
//! workload generates more exits on faster hosts. The paper measured
//! "more than four times as many exits" for Memcached on x86 than on
//! NEVE; profiles carry a per-workload x86 kick multiplier.
//!
//! Event rates are per [`UNIT_CYCLES`] of native work and are the
//! model's *inputs*, chosen per workload from the paper's qualitative
//! characterization (Section 7.2) and tuned so the NEVE bars land near
//! the paper's; the v8.3, x86 and VM bars then *follow from the model*.

use crate::platforms::{Config, MicroMatrix};

/// Native work one unit of event rates refers to.
pub const UNIT_CYCLES: f64 = 10_000_000.0;

/// Overhead cap (the paper's figure caps its top panel at 40x; we cap
/// the saturated feedback regime at 100x so "more than 40 times" cases
/// remain visible as such).
pub const OVERHEAD_CAP: f64 = 100.0;

/// One workload's virtualization-event profile.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadProfile {
    /// Workload name (paper Table 8).
    pub name: &'static str,
    /// Hypercalls per unit.
    pub hypercalls: f64,
    /// Emulated-device accesses per unit.
    pub device_ios: f64,
    /// Cross-vCPU IPIs per unit (scheduler/synchronisation, the
    /// Hackbench signature).
    pub ipis: f64,
    /// Network receive interrupts per unit.
    pub net_irqs: f64,
    /// Virtio notifications (kicks) per unit.
    pub virtio_kicks: f64,
    /// x86 I/O-exit multiplier applied to interrupts and kicks (the
    /// backend-speed anomaly of Section 7.2: the faster x86 backend
    /// re-enables notifications sooner, so the same guest work causes
    /// several times as many exits; 1.0 = none).
    pub x86_exit_scale: f64,
    /// Slowdown-proportional event rate (timer ticks, retransmissions).
    pub feedback: f64,
}

/// One output row: overheads per configuration.
#[derive(Debug, Clone)]
pub struct WorkloadRow {
    /// Workload name.
    pub name: &'static str,
    /// (configuration, normalized overhead) in [`Config::all`] order.
    pub overheads: Vec<(Config, f64)>,
}

/// The ten workloads of paper Table 8.
pub const WORKLOADS: [WorkloadProfile; 10] = [
    WorkloadProfile {
        // Kernel compile: CPU-bound, page faults and a little I/O.
        name: "Kernbench",
        hypercalls: 3.0,
        device_ios: 3.5,
        ipis: 1.2,
        net_irqs: 0.0,
        virtio_kicks: 1.0,
        x86_exit_scale: 1.0,
        feedback: 0.35,
    },
    WorkloadProfile {
        // "a highly parallel SMP workload in which the OS frequently
        // sends IPIs" (Section 7.2).
        name: "Hackbench",
        hypercalls: 5.0,
        device_ios: 2.0,
        ipis: 185.0,
        net_irqs: 0.0,
        virtio_kicks: 0.0,
        x86_exit_scale: 1.0,
        feedback: 1.0,
    },
    WorkloadProfile {
        // JVM benchmark suite: CPU-bound.
        name: "SPECjvm2008",
        hypercalls: 2.0,
        device_ios: 1.8,
        ipis: 1.2,
        net_irqs: 0.0,
        virtio_kicks: 0.5,
        x86_exit_scale: 1.0,
        feedback: 0.4,
    },
    WorkloadProfile {
        // Request/response latency: one kick + one interrupt per
        // transaction at high rate.
        name: "TCP_RR",
        hypercalls: 5.0,
        device_ios: 2.0,
        ipis: 2.0,
        net_irqs: 90.0,
        virtio_kicks: 90.0,
        x86_exit_scale: 2.0,
        feedback: 3.0,
    },
    WorkloadProfile {
        // Bulk receive: interrupt-driven with NAPI batching.
        name: "TCP_STREAM",
        hypercalls: 3.0,
        device_ios: 2.0,
        ipis: 2.0,
        net_irqs: 75.0,
        virtio_kicks: 25.0,
        x86_exit_scale: 2.0,
        feedback: 4.0,
    },
    WorkloadProfile {
        // Bulk transmit: kick-heavy (one of the paper's >40x cases).
        name: "TCP_MAERTS",
        hypercalls: 3.0,
        device_ios: 2.0,
        ipis: 2.0,
        net_irqs: 40.0,
        virtio_kicks: 220.0,
        x86_exit_scale: 4.5,
        feedback: 11.0,
    },
    WorkloadProfile {
        // Web serving under ApacheBench (>40x on ARMv8.3).
        name: "Apache",
        hypercalls: 5.0,
        device_ios: 5.0,
        ipis: 10.0,
        net_irqs: 60.0,
        virtio_kicks: 110.0,
        x86_exit_scale: 2.5,
        feedback: 11.0,
    },
    WorkloadProfile {
        // Web serving under Siege.
        name: "Nginx",
        hypercalls: 5.0,
        device_ios: 5.0,
        ipis: 8.0,
        net_irqs: 50.0,
        virtio_kicks: 100.0,
        x86_exit_scale: 3.5,
        feedback: 8.0,
    },
    WorkloadProfile {
        // Key-value store under memtier: the paper's anomaly case —
        // "more than four times as many exits" on x86.
        name: "Memcached",
        hypercalls: 5.0,
        device_ios: 3.0,
        ipis: 5.0,
        net_irqs: 40.0,
        virtio_kicks: 150.0,
        x86_exit_scale: 7.0,
        feedback: 12.0,
    },
    WorkloadProfile {
        // OLTP under SysBench: storage-heavy; x86's faster backend
        // costs it at the VM level too.
        name: "MySQL",
        hypercalls: 8.0,
        device_ios: 30.0,
        ipis: 10.0,
        net_irqs: 25.0,
        virtio_kicks: 70.0,
        x86_exit_scale: 4.0,
        feedback: 4.0,
    },
];

/// The feedback fraction at which the model is treated as saturated:
/// above this, `1 / (1 - T)` is in its asymptote and the reported
/// overhead pins to [`OVERHEAD_CAP`] (the paper's ">40x" regime).
pub const FEEDBACK_SATURATION: f64 = 0.99;

/// Computes the normalized overhead of `p` on `cfg` from measured
/// per-event costs.
///
/// Total for every input: the result is always finite and in
/// `[1.0, OVERHEAD_CAP]`. In particular the saturated feedback regime
/// (`T >= FEEDBACK_SATURATION`, including `T == 1` where the naive
/// formula divides by zero and `T > 1` where it goes negative) clamps
/// to the cap rather than producing inf/NaN/negative overheads.
pub fn overhead(p: &WorkloadProfile, cfg: Config, m: &MicroMatrix) -> f64 {
    let c = m.costs(cfg);
    let hc = c.hypercall.cycles as f64;
    let io = c.device_io.cycles as f64;
    let ipi = c.virtual_ipi.cycles as f64;
    let io_scale = if cfg.is_x86() { p.x86_exit_scale } else { 1.0 };
    let b = (p.hypercalls * hc
        + p.device_ios * io
        + p.ipis * ipi
        + p.net_irqs * io_scale * ipi
        + p.virtio_kicks * io_scale * io)
        / UNIT_CYCLES;
    let t = p.feedback * ipi / UNIT_CYCLES;
    if !t.is_finite() || t >= FEEDBACK_SATURATION {
        return OVERHEAD_CAP;
    }
    let raw = (1.0 + b) / (1.0 - t);
    if !raw.is_finite() {
        return OVERHEAD_CAP;
    }
    raw.clamp(1.0, OVERHEAD_CAP)
}

/// A per-event-class decomposition of one workload's overhead on one
/// configuration (the `--explain` view: where do the cycles go?).
#[derive(Debug, Clone)]
pub struct Breakdown {
    /// Share of added overhead from hypercalls.
    pub hypercalls: f64,
    /// Share from device I/O.
    pub device_ios: f64,
    /// Share from IPIs.
    pub ipis: f64,
    /// Share from network interrupts.
    pub net_irqs: f64,
    /// Share from virtio kicks.
    pub virtio_kicks: f64,
    /// Share from the slowdown-proportional feedback (timer ticks,
    /// retransmissions).
    pub feedback: f64,
}

/// Decomposes `p`'s overhead on `cfg` into event-class shares (summing
/// to 1 when any overhead exists).
pub fn breakdown(p: &WorkloadProfile, cfg: Config, m: &MicroMatrix) -> Breakdown {
    let c = m.costs(cfg);
    let hc = c.hypercall.cycles as f64;
    let io = c.device_io.cycles as f64;
    let ipi = c.virtual_ipi.cycles as f64;
    let io_scale = if cfg.is_x86() { p.x86_exit_scale } else { 1.0 };
    let parts = [
        p.hypercalls * hc,
        p.device_ios * io,
        p.ipis * ipi,
        p.net_irqs * io_scale * ipi,
        p.virtio_kicks * io_scale * io,
    ];
    let s = overhead(p, cfg, m);
    // The feedback term contributes everything the base terms do not.
    let base_total: f64 = parts.iter().sum();
    let total_added = (s - 1.0) * UNIT_CYCLES;
    let feedback = (total_added - base_total).max(0.0);
    let denom = (base_total + feedback).max(1.0);
    Breakdown {
        hypercalls: parts[0] / denom,
        device_ios: parts[1] / denom,
        ipis: parts[2] / denom,
        net_irqs: parts[3] / denom,
        virtio_kicks: parts[4] / denom,
        feedback: feedback / denom,
    }
}

/// Regenerates Figure 2: every workload's overhead on every
/// configuration.
pub fn figure2(m: &MicroMatrix) -> Vec<WorkloadRow> {
    WORKLOADS
        .iter()
        .map(|p| WorkloadRow {
            name: p.name,
            overheads: Config::all()
                .into_iter()
                .map(|c| (c, overhead(p, c, m)))
                .collect(),
        })
        .collect()
}

/// Renders Figure 2 as an aligned text table.
pub fn render(rows: &[WorkloadRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<12}", "Workload"));
    for c in Config::all() {
        out.push_str(&format!(" | {:>18}", c.label()));
    }
    out.push('\n');
    out.push_str(&"-".repeat(12 + 21 * Config::all().len()));
    out.push('\n');
    for r in rows {
        out.push_str(&format!("{:<12}", r.name));
        for (_, o) in &r.overheads {
            if *o >= 40.0 {
                out.push_str(&format!(" | {:>17}", ">40x"));
            } else {
                out.push_str(&format!(" | {:>16.2}x", o));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn matrix() -> &'static MicroMatrix {
        static M: OnceLock<MicroMatrix> = OnceLock::new();
        M.get_or_init(MicroMatrix::measure)
    }

    fn row(name: &str) -> WorkloadRow {
        figure2(matrix())
            .into_iter()
            .find(|r| r.name == name)
            .expect("workload exists")
    }

    fn get(r: &WorkloadRow, c: Config) -> f64 {
        r.overheads.iter().find(|(k, _)| *k == c).unwrap().1
    }

    #[test]
    fn ten_workloads_and_seven_configs() {
        let f = figure2(matrix());
        assert_eq!(f.len(), 10);
        for r in &f {
            assert_eq!(r.overheads.len(), 7);
            for (_, o) in &r.overheads {
                assert!(*o >= 1.0, "{}: overhead {o} < 1", r.name);
            }
        }
    }

    #[test]
    fn cpu_bound_workloads_have_modest_nested_overhead() {
        // Paper Section 7.2: kernbench and SPECjvm "have a relatively
        // modest performance slowdown in nested VMs".
        for name in ["Kernbench", "SPECjvm2008"] {
            let r = row(name);
            let v83 = get(&r, Config::ArmNestedV83);
            assert!(v83 < 2.0, "{name}: {v83}");
            let vhe = get(&r, Config::ArmNestedV83Vhe);
            assert!(vhe < v83, "{name}: VHE should be cheaper");
        }
    }

    #[test]
    fn network_workloads_exceed_40x_on_v8_3() {
        // Paper: "The largest overhead occurs for network-related
        // workloads, including Netperf TCP_MAERTS, Apache, and
        // Memcached" — more than 40 times.
        for name in ["TCP_MAERTS", "Apache", "Memcached"] {
            let r = row(name);
            assert!(
                get(&r, Config::ArmNestedV83) > 40.0,
                "{name}: {}",
                get(&r, Config::ArmNestedV83)
            );
        }
    }

    #[test]
    fn hackbench_matches_the_papers_15x_and_11x() {
        let r = row("Hackbench");
        let v83 = get(&r, Config::ArmNestedV83);
        let vhe = get(&r, Config::ArmNestedV83Vhe);
        assert!((9.0..22.0).contains(&v83), "{v83}");
        assert!((7.0..16.0).contains(&vhe), "{vhe}");
        assert!(vhe < v83);
    }

    #[test]
    fn neve_brings_memcached_below_a_handful() {
        // Paper: "Memcached performance goes from more than a 40 times
        // slowdown using ARMv8.3 to less than a 3 times slowdown using
        // NEVE, more than an order of magnitude improvement."
        let r = row("Memcached");
        let neve = get(&r, Config::ArmNestedNeve);
        assert!(neve < 4.0, "{neve}");
        let v83 = get(&r, Config::ArmNestedV83);
        assert!(v83 / neve > 10.0, "improvement {}", v83 / neve);
    }

    #[test]
    fn neve_beats_x86_on_the_papers_workloads() {
        // Paper: "NEVE incurs significantly less overhead than both
        // ARMv8.3 and x86 on many of the network-related workloads,
        // including Netperf TCP MAERTS, Nginx, Memcached, and MySQL."
        for name in ["TCP_MAERTS", "Nginx", "Memcached", "MySQL"] {
            let r = row(name);
            let neve = get(&r, Config::ArmNestedNeve).min(get(&r, Config::ArmNestedNeveVhe));
            let x86 = get(&r, Config::X86Nested);
            assert!(neve < x86, "{name}: NEVE {neve} vs x86 {x86}");
        }
    }

    #[test]
    fn vm_overheads_are_small_everywhere() {
        for r in figure2(matrix()) {
            let arm = get(&r, Config::ArmVm);
            let x86 = get(&r, Config::X86Vm);
            assert!(arm < 3.0, "{}: ARM VM {arm}", r.name);
            assert!(x86 < 3.0, "{}: x86 VM {x86}", r.name);
        }
    }

    #[test]
    fn mysql_x86_vm_overhead_exceeds_arm_vm() {
        // Paper: "MySQL runs better with NEVE because of the high cost
        // of x86 non-nested virtualization compared to ARM."
        let r = row("MySQL");
        assert!(get(&r, Config::X86Vm) > get(&r, Config::ArmVm));
    }

    #[test]
    fn breakdown_shares_sum_to_one_for_loaded_workloads() {
        let m = matrix();
        for p in &WORKLOADS {
            let b = breakdown(p, Config::ArmNestedV83, m);
            let sum =
                b.hypercalls + b.device_ios + b.ipis + b.net_irqs + b.virtio_kicks + b.feedback;
            assert!((sum - 1.0).abs() < 1e-6, "{}: {sum}", p.name);
        }
    }

    #[test]
    fn hackbench_overhead_is_ipi_dominated() {
        let m = matrix();
        let p = WORKLOADS.iter().find(|w| w.name == "Hackbench").unwrap();
        let b = breakdown(p, Config::ArmNestedV83, m);
        assert!(b.ipis > 0.5, "IPIs should dominate: {b:?}");
    }

    #[test]
    fn maerts_overhead_is_kick_heavy() {
        let m = matrix();
        let p = WORKLOADS.iter().find(|w| w.name == "TCP_MAERTS").unwrap();
        let b = breakdown(p, Config::ArmNestedV83, m);
        assert!(
            b.virtio_kicks > b.hypercalls + b.device_ios,
            "kicks should dominate: {b:?}"
        );
    }

    #[test]
    fn render_caps_at_40_like_the_paper() {
        let s = render(&figure2(matrix()));
        assert!(s.contains(">40x"));
        assert!(s.contains("Memcached"));
    }

    /// A synthetic matrix whose IPI cost is exactly `ipi_cycles` on
    /// every configuration, for driving the feedback term to chosen
    /// saturation points the real stacks never reach.
    fn synthetic_matrix(ipi_cycles: u64) -> MicroMatrix {
        use crate::platforms::{MicroCosts, PerOpSer};
        let p = |cycles| PerOpSer { cycles, traps: 1.0 };
        let costs = MicroCosts {
            hypercall: p(1_000),
            device_io: p(2_000),
            virtual_ipi: p(ipi_cycles),
            virtual_eoi: p(70),
        };
        MicroMatrix::from_results(Config::all().into_iter().map(|c| (c, costs)).collect())
    }

    fn profile_with_feedback(feedback: f64) -> WorkloadProfile {
        WorkloadProfile {
            name: "synthetic",
            hypercalls: 1.0,
            device_ios: 1.0,
            ipis: 1.0,
            net_irqs: 0.0,
            virtio_kicks: 0.0,
            x86_exit_scale: 1.0,
            feedback,
        }
    }

    #[test]
    fn overhead_clamps_at_the_saturation_threshold() {
        // ipi = 1e6 cycles, feedback = 9.9 => T = 0.99 exactly.
        let m = synthetic_matrix(1_000_000);
        let p = profile_with_feedback(9.9);
        let o = overhead(&p, Config::ArmNestedV83, &m);
        assert_eq!(o, OVERHEAD_CAP);
    }

    #[test]
    fn overhead_survives_exact_division_by_zero() {
        // feedback = 10 => T = 1.0: the naive formula divides by zero.
        let m = synthetic_matrix(1_000_000);
        let p = profile_with_feedback(10.0);
        let o = overhead(&p, Config::ArmNestedV83, &m);
        assert!(o.is_finite());
        assert_eq!(o, OVERHEAD_CAP);
    }

    #[test]
    fn overhead_survives_negative_denominator() {
        // feedback = 15 => T = 1.5: the naive formula goes negative.
        let m = synthetic_matrix(1_000_000);
        let p = profile_with_feedback(15.0);
        let o = overhead(&p, Config::ArmNestedV83, &m);
        assert!(o.is_finite());
        assert!(o >= 1.0, "never below native: {o}");
        assert_eq!(o, OVERHEAD_CAP);
    }

    #[test]
    fn overhead_is_total_across_a_saturation_sweep() {
        // Never NaN, inf, or below 1.0 anywhere around the singularity.
        let m = synthetic_matrix(1_000_000);
        for feedback in [0.0, 5.0, 9.89, 9.9, 9.99, 10.0, 10.01, 12.0, 100.0] {
            let p = profile_with_feedback(feedback);
            for c in Config::all() {
                let o = overhead(&p, c, &m);
                assert!(o.is_finite(), "feedback {feedback} on {c:?}: {o}");
                assert!(
                    (1.0..=OVERHEAD_CAP).contains(&o),
                    "feedback {feedback} on {c:?}: {o}"
                );
            }
        }
    }
}
