//! Persistent results cache for the evaluation matrix.
//!
//! Measuring the full matrix means simulating 28 testbeds; the report
//! binaries (`table1`, `table6`, `table7`, `figure2`, `dump_results`)
//! and the `neve tables`/`neve figure2` subcommands all need the same
//! data. The cache lets them measure once and share: the matrix is
//! written to `results/micro_matrix.json`, keyed by the
//! [`CostModel`](neve_cycles::CostModel) fingerprint, and later runs
//! load it instead of re-measuring.
//!
//! Staleness safety: a cache whose fingerprint does not match the
//! *current* cost model is ignored and overwritten — edit any
//! calibrated constant and every number is re-measured. A corrupt or
//! truncated file is likewise ignored, never trusted.

use crate::platforms::{Config, MicroCosts, MicroMatrix, PerOpSer, PhaseStat};
use neve_cycles::CostModel;
use neve_json::JsonValue;
use std::collections::BTreeMap;
use std::path::Path;

/// Default cache location, relative to the working directory (next to
/// `dump_results`' outputs).
pub const CACHE_PATH: &str = "results/micro_matrix.json";

/// Where a matrix came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixSource {
    /// Loaded from a valid cache file.
    Cache,
    /// Freshly measured (no cache, stale fingerprint, or `--no-cache`).
    Measured,
}

/// Loads the matrix from `CACHE_PATH` if it is valid for the current
/// cost model; otherwise measures across `jobs` threads and writes the
/// cache back. With `use_cache` false, always re-measures (still
/// refreshing the file, so later cached runs agree with this one).
pub fn load_or_measure(jobs: usize, use_cache: bool) -> (MicroMatrix, MatrixSource) {
    load_or_measure_at(Path::new(CACHE_PATH), jobs, use_cache)
}

/// [`load_or_measure`] against an explicit path (tests use a temp dir).
pub fn load_or_measure_at(
    path: &Path,
    jobs: usize,
    use_cache: bool,
) -> (MicroMatrix, MatrixSource) {
    let fingerprint = CostModel::default().fingerprint();
    if use_cache {
        if let Some(m) = std::fs::read_to_string(path)
            .ok()
            .and_then(|text| from_json(&text, fingerprint))
        {
            return (m, MatrixSource::Cache);
        }
    }
    let m = MicroMatrix::measure_parallel(jobs);
    // Failing to persist is not fatal (read-only checkout, missing
    // permissions): the caller still gets fresh numbers.
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    // Atomic replace: two report binaries racing must never leave a
    // torn file for a third to read. Write a process-unique temp file
    // in the same directory (rename is only atomic within one
    // filesystem), then rename into place.
    let _ = write_atomically(path, &to_json(&m, fingerprint));
    (m, MatrixSource::Measured)
}

fn write_atomically(path: &Path, contents: &str) -> std::io::Result<()> {
    let mut tmp = path.to_path_buf();
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("cache");
    tmp.set_file_name(format!(".{name}.{}.tmp", std::process::id()));
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Serializes `m` (with the cost-model `fingerprint` it was measured
/// under) to the cache's JSON schema.
pub fn to_json(m: &MicroMatrix, fingerprint: u64) -> String {
    let per_op = |p: PerOpSer| {
        JsonValue::Object(vec![
            ("cycles".into(), JsonValue::from(p.cycles)),
            ("traps".into(), JsonValue::from(p.traps)),
        ])
    };
    let configs = m
        .configs()
        .map(|c| {
            let costs = m.costs(c);
            let mut body = vec![
                ("hypercall".into(), per_op(costs.hypercall)),
                ("device_io".into(), per_op(costs.device_io)),
                ("virtual_ipi".into(), per_op(costs.virtual_ipi)),
                ("virtual_eoi".into(), per_op(costs.virtual_eoi)),
            ];
            body.extend(crate::provenance::json_fields(
                &m.trap_kinds(c),
                &m.phases(c),
            ));
            (c.label().to_string(), JsonValue::Object(body))
        })
        .collect();
    JsonValue::Object(vec![
        // Hex string, not a JSON number: the fingerprint uses all 64
        // bits and would lose precision through an f64 number.
        (
            "fingerprint".into(),
            JsonValue::String(format!("{fingerprint:#018x}")),
        ),
        ("configs".into(), JsonValue::Object(configs)),
    ])
    .pretty()
}

/// Parses a cache document; `None` if it is malformed, incomplete, or
/// was measured under a different cost model than `expect_fingerprint`.
pub fn from_json(text: &str, expect_fingerprint: u64) -> Option<MicroMatrix> {
    let doc = neve_json::parse(text).ok()?;
    let fp = doc.get("fingerprint")?.as_str()?;
    let fp = u64::from_str_radix(fp.strip_prefix("0x")?, 16).ok()?;
    if fp != expect_fingerprint {
        return None;
    }
    let per_op = |v: &JsonValue| -> Option<PerOpSer> {
        Some(PerOpSer {
            cycles: v.get("cycles")?.as_u64()?,
            traps: v.get("traps")?.as_f64()?,
        })
    };
    let mut results = BTreeMap::new();
    let mut trap_kinds = BTreeMap::new();
    let mut phases = BTreeMap::new();
    for (label, body) in doc.get("configs")?.as_object()? {
        let c = Config::from_label(label)?;
        results.insert(
            c,
            MicroCosts {
                hypercall: per_op(body.get("hypercall")?)?,
                device_io: per_op(body.get("device_io")?)?,
                virtual_ipi: per_op(body.get("virtual_ipi")?)?,
                virtual_eoi: per_op(body.get("virtual_eoi")?)?,
            },
        );
        let mut kinds = BTreeMap::new();
        for (k, v) in body.get("trap_kinds")?.as_object()? {
            kinds.insert(k.clone(), v.as_u64()?);
        }
        trap_kinds.insert(c, kinds);
        // The per-phase breakdown is a required schema element: a cache
        // from before the provenance layer fails here and is re-measured
        // (the usual staleness rule, not an error).
        let mut stats = BTreeMap::new();
        for (p, v) in body.get("phases")?.as_object()? {
            stats.insert(
                p.clone(),
                PhaseStat {
                    cycles: v.get("cycles")?.as_u64()?,
                    traps: v.get("traps")?.as_u64()?,
                },
            );
        }
        phases.insert(c, stats);
    }
    // A cache missing any configuration is unusable: consumers index
    // the matrix by every `Config`.
    if Config::all().iter().any(|c| !results.contains_key(c)) {
        return None;
    }
    Some(MicroMatrix::from_parts(results, trap_kinds, phases))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic() -> MicroMatrix {
        let p = |cycles, traps| PerOpSer { cycles, traps };
        let costs = |k: u64| MicroCosts {
            hypercall: p(100 * k, 1.0),
            device_io: p(200 * k, 2.0),
            virtual_ipi: p(300 * k, 2.5),
            virtual_eoi: p(70, 0.0),
        };
        let results = Config::all()
            .into_iter()
            .enumerate()
            .map(|(i, c)| (c, costs(i as u64 + 1)))
            .collect();
        let trap_kinds = Config::all()
            .into_iter()
            .map(|c| (c, BTreeMap::from([("Hvc".to_string(), 24u64)])))
            .collect();
        let phases = Config::all()
            .into_iter()
            .map(|c| {
                (
                    c,
                    BTreeMap::from([
                        (
                            "guest".to_string(),
                            PhaseStat {
                                cycles: 9000,
                                traps: 0,
                            },
                        ),
                        (
                            "eret_emul".to_string(),
                            PhaseStat {
                                cycles: 1200,
                                traps: 24,
                            },
                        ),
                    ]),
                )
            })
            .collect();
        MicroMatrix::from_parts(results, trap_kinds, phases)
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let m = synthetic();
        let text = to_json(&m, 42);
        let back = from_json(&text, 42).expect("round trip");
        assert_eq!(back, m);
    }

    #[test]
    fn fingerprint_mismatch_rejects_the_cache() {
        let text = to_json(&synthetic(), 42);
        assert!(from_json(&text, 43).is_none());
    }

    #[test]
    fn pre_provenance_schema_is_rejected() {
        // A cache written before the per-phase breakdown existed must
        // fail the load and trigger a clean re-measure.
        let text = to_json(&synthetic(), 42);
        let doc = neve_json::parse(&text).unwrap();
        let stripped = match doc {
            JsonValue::Object(top) => JsonValue::Object(
                top.into_iter()
                    .map(|(k, v)| {
                        if k != "configs" {
                            return (k, v);
                        }
                        let JsonValue::Object(cfgs) = v else {
                            unreachable!()
                        };
                        let cfgs = cfgs
                            .into_iter()
                            .map(|(label, body)| {
                                let JsonValue::Object(fields) = body else {
                                    unreachable!()
                                };
                                let fields =
                                    fields.into_iter().filter(|(f, _)| f != "phases").collect();
                                (label, JsonValue::Object(fields))
                            })
                            .collect();
                        (k, JsonValue::Object(cfgs))
                    })
                    .collect(),
            ),
            _ => unreachable!(),
        };
        assert!(from_json(&stripped.pretty(), 42).is_none());
    }

    #[test]
    fn garbage_and_truncation_are_rejected() {
        assert!(from_json("", 42).is_none());
        assert!(from_json("{\"fingerprint\": 42}", 42).is_none());
        let text = to_json(&synthetic(), 42);
        assert!(from_json(&text[..text.len() / 2], 42).is_none());
    }

    #[test]
    fn missing_config_rejects_the_cache() {
        let mut m = synthetic();
        // Rebuild without the last config.
        let mut results: BTreeMap<_, _> =
            Config::all().into_iter().map(|c| (c, m.costs(c))).collect();
        results.remove(&Config::X86Nested);
        m = MicroMatrix::from_results(results);
        let text = to_json(&m, 42);
        assert!(from_json(&text, 42).is_none());
    }
}
