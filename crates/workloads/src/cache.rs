//! Persistent results cache for the evaluation matrix.
//!
//! Measuring the full matrix means simulating 28 testbeds; the report
//! binaries (`table1`, `table6`, `table7`, `figure2`, `dump_results`)
//! and the `neve tables`/`neve figure2` subcommands all need the same
//! data. The cache lets them measure once and share: the matrix is
//! written to `results/micro_matrix.json`, keyed by the
//! [`CostModel`](neve_cycles::CostModel) fingerprint, and later runs
//! load it instead of re-measuring.
//!
//! Staleness safety: a cache whose fingerprint does not match the
//! *current* cost model is ignored and overwritten — edit any
//! calibrated constant and every number is re-measured. A corrupt or
//! truncated file is likewise ignored, never trusted.

use crate::platforms::{Config, MicroCosts, MicroMatrix, PerOpSer, PhaseStat};
use neve_cycles::CostModel;
use neve_json::JsonValue;
use std::collections::BTreeMap;
use std::path::Path;

/// Default cache location, relative to the working directory (next to
/// `dump_results`' outputs).
pub const CACHE_PATH: &str = "results/micro_matrix.json";

/// Where a matrix came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixSource {
    /// Loaded from a valid cache file.
    Cache,
    /// Freshly measured (no cache, stale fingerprint, or `--no-cache`).
    Measured,
    /// Freshly measured after quarantining a corrupt cache file to
    /// `<path>.corrupt` (truncated write, bit rot, or hand editing).
    Quarantined,
}

/// What a read of the cache file found.
enum CacheRead {
    /// Valid for the current cost model.
    Valid(MicroMatrix),
    /// Missing or unreadable: nothing to distrust, just measure.
    Absent,
    /// Readable and parseable, but for a different cost model or an
    /// older schema: the normal staleness rule, overwrite in place.
    Stale,
    /// Not even parseable JSON (or the fingerprint itself is mangled):
    /// quarantine the file before overwriting so the evidence survives.
    Corrupt,
}

fn read_cache(path: &Path, fingerprint: u64) -> CacheRead {
    let Ok(text) = std::fs::read_to_string(path) else {
        return CacheRead::Absent;
    };
    let Ok(doc) = neve_json::parse(&text) else {
        return CacheRead::Corrupt;
    };
    // A document whose fingerprint is absent or malformed was not
    // written by this code: corrupt, not merely stale.
    let fp = doc
        .get("fingerprint")
        .and_then(|v| v.as_str())
        .and_then(|s| s.strip_prefix("0x"))
        .and_then(|s| u64::from_str_radix(s, 16).ok());
    let Some(fp) = fp else {
        return CacheRead::Corrupt;
    };
    if fp != fingerprint {
        return CacheRead::Stale;
    }
    match from_json(&text, fingerprint) {
        Some(m) => CacheRead::Valid(m),
        None => CacheRead::Stale,
    }
}

/// Loads the matrix from `CACHE_PATH` if it is valid for the current
/// cost model; otherwise measures across `jobs` threads and writes the
/// cache back. With `use_cache` false, always re-measures (still
/// refreshing the file, so later cached runs agree with this one).
pub fn load_or_measure(jobs: usize, use_cache: bool) -> (MicroMatrix, MatrixSource) {
    load_or_measure_at(Path::new(CACHE_PATH), jobs, use_cache)
}

/// [`load_or_measure`] against an explicit path (tests use a temp dir).
pub fn load_or_measure_at(
    path: &Path,
    jobs: usize,
    use_cache: bool,
) -> (MicroMatrix, MatrixSource) {
    let fingerprint = CostModel::default().fingerprint();
    let mut source = MatrixSource::Measured;
    if use_cache {
        match read_cache(path, fingerprint) {
            CacheRead::Valid(m) => return (m, MatrixSource::Cache),
            CacheRead::Corrupt => {
                // Keep the damaged bytes for post-mortem instead of
                // silently overwriting them; a failed rename (another
                // process won the race, exotic permissions) still
                // falls through to a re-measure.
                quarantine_corrupt(path);
                source = MatrixSource::Quarantined;
            }
            CacheRead::Absent | CacheRead::Stale => {}
        }
    }
    let m = MicroMatrix::measure_parallel(jobs);
    // Failing to persist is not fatal (read-only checkout, missing
    // permissions): the caller still gets fresh numbers.
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    // Atomic replace: two report binaries racing must never leave a
    // torn file for a third to read. Write a process-unique temp file
    // in the same directory (rename is only atomic within one
    // filesystem), then rename into place.
    let _ = write_atomically(path, &to_json(&m, fingerprint));
    (m, source)
}

/// Moves a corrupt cache file aside as
/// `<file>.<pid>.<seq>.corrupt` so the damaged bytes survive for
/// post-mortem. The name is process-unique (pid) *and* call-unique
/// (an in-process counter), mirroring the temp-file write path: two
/// processes — or two threads — that both find the same corrupt file
/// each rename toward a different target, so the race is only over
/// the source. `rename(2)` is atomic there: exactly one caller wins
/// the bytes, the losers get a failed rename and simply re-measure.
///
/// Returns the quarantine path if this caller won, `None` if the file
/// was already gone (or undeletable).
pub fn quarantine_corrupt(path: &Path) -> Option<std::path::PathBuf> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let mut quarantine = path.to_path_buf();
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("cache");
    quarantine.set_file_name(format!("{name}.{}.{seq}.corrupt", std::process::id()));
    std::fs::rename(path, &quarantine).ok().map(|_| quarantine)
}

/// Atomically replaces `path` with `contents` (same-directory temp
/// file + rename); shared by the matrix cache and the throughput
/// report writer.
///
/// # Errors
///
/// Any I/O error from the write or the rename (the temp file is
/// cleaned up on a failed rename).
pub fn write_atomically(path: &Path, contents: &str) -> std::io::Result<()> {
    let mut tmp = path.to_path_buf();
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("cache");
    tmp.set_file_name(format!(".{name}.{}.tmp", std::process::id()));
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Serializes `m` (with the cost-model `fingerprint` it was measured
/// under) to the cache's JSON schema.
pub fn to_json(m: &MicroMatrix, fingerprint: u64) -> String {
    let per_op = |p: PerOpSer| {
        JsonValue::Object(vec![
            ("cycles".into(), JsonValue::from(p.cycles)),
            ("traps".into(), JsonValue::from(p.traps)),
        ])
    };
    let configs = m
        .configs()
        .map(|c| {
            let costs = m.costs(c);
            let mut body = vec![
                ("hypercall".into(), per_op(costs.hypercall)),
                ("device_io".into(), per_op(costs.device_io)),
                ("virtual_ipi".into(), per_op(costs.virtual_ipi)),
                ("virtual_eoi".into(), per_op(costs.virtual_eoi)),
            ];
            body.extend(crate::provenance::json_fields(
                &m.trap_kinds(c),
                &m.phases(c),
            ));
            (c.label().to_string(), JsonValue::Object(body))
        })
        .collect();
    let mut top = vec![
        // Hex string, not a JSON number: the fingerprint uses all 64
        // bits and would lose precision through an f64 number.
        (
            "fingerprint".into(),
            JsonValue::String(format!("{fingerprint:#018x}")),
        ),
        ("configs".into(), JsonValue::Object(configs)),
    ];
    // Failures are an optional schema element: a clean matrix writes no
    // key at all, so pre-fault-harness readers and byte-for-byte cache
    // comparisons are unaffected.
    if m.has_failures() {
        let failures = m
            .all_failures()
            .iter()
            .map(|(c, cells)| {
                (
                    c.label().to_string(),
                    JsonValue::Object(
                        cells
                            .iter()
                            .map(|(b, why)| (b.clone(), JsonValue::String(why.clone())))
                            .collect(),
                    ),
                )
            })
            .collect();
        top.push(("failures".into(), JsonValue::Object(failures)));
    }
    JsonValue::Object(top).pretty()
}

/// Parses a cache document; `None` if it is malformed, incomplete, or
/// was measured under a different cost model than `expect_fingerprint`.
pub fn from_json(text: &str, expect_fingerprint: u64) -> Option<MicroMatrix> {
    let doc = neve_json::parse(text).ok()?;
    let fp = doc.get("fingerprint")?.as_str()?;
    let fp = u64::from_str_radix(fp.strip_prefix("0x")?, 16).ok()?;
    if fp != expect_fingerprint {
        return None;
    }
    let per_op = |v: &JsonValue| -> Option<PerOpSer> {
        Some(PerOpSer {
            cycles: v.get("cycles")?.as_u64()?,
            traps: v.get("traps")?.as_f64()?,
        })
    };
    let mut results = BTreeMap::new();
    let mut trap_kinds = BTreeMap::new();
    let mut phases = BTreeMap::new();
    for (label, body) in doc.get("configs")?.as_object()? {
        let c = Config::from_label(label)?;
        results.insert(
            c,
            MicroCosts {
                hypercall: per_op(body.get("hypercall")?)?,
                device_io: per_op(body.get("device_io")?)?,
                virtual_ipi: per_op(body.get("virtual_ipi")?)?,
                virtual_eoi: per_op(body.get("virtual_eoi")?)?,
            },
        );
        let mut kinds = BTreeMap::new();
        for (k, v) in body.get("trap_kinds")?.as_object()? {
            kinds.insert(k.clone(), v.as_u64()?);
        }
        trap_kinds.insert(c, kinds);
        // The per-phase breakdown is a required schema element: a cache
        // from before the provenance layer fails here and is re-measured
        // (the usual staleness rule, not an error).
        let mut stats = BTreeMap::new();
        for (p, v) in body.get("phases")?.as_object()? {
            stats.insert(
                p.clone(),
                PhaseStat {
                    cycles: v.get("cycles")?.as_u64()?,
                    traps: v.get("traps")?.as_u64()?,
                },
            );
        }
        phases.insert(c, stats);
    }
    // A cache missing any configuration is unusable: consumers index
    // the matrix by every `Config`.
    if Config::all().iter().any(|c| !results.contains_key(c)) {
        return None;
    }
    // Failures are optional (absent for clean matrices, so a measured
    // matrix compares equal to its own cache round trip).
    let mut failures = BTreeMap::new();
    if let Some(f) = doc.get("failures") {
        for (label, cells) in f.as_object()? {
            let c = Config::from_label(label)?;
            let mut per_bench = BTreeMap::new();
            for (b, why) in cells.as_object()? {
                per_bench.insert(b.clone(), why.as_str()?.to_string());
            }
            failures.insert(c, per_bench);
        }
    }
    Some(MicroMatrix::from_parts(
        results, trap_kinds, phases, failures,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic() -> MicroMatrix {
        let p = |cycles, traps| PerOpSer { cycles, traps };
        let costs = |k: u64| MicroCosts {
            hypercall: p(100 * k, 1.0),
            device_io: p(200 * k, 2.0),
            virtual_ipi: p(300 * k, 2.5),
            virtual_eoi: p(70, 0.0),
        };
        let results = Config::all()
            .into_iter()
            .enumerate()
            .map(|(i, c)| (c, costs(i as u64 + 1)))
            .collect();
        let trap_kinds = Config::all()
            .into_iter()
            .map(|c| (c, BTreeMap::from([("Hvc".to_string(), 24u64)])))
            .collect();
        let phases = Config::all()
            .into_iter()
            .map(|c| {
                (
                    c,
                    BTreeMap::from([
                        (
                            "guest".to_string(),
                            PhaseStat {
                                cycles: 9000,
                                traps: 0,
                            },
                        ),
                        (
                            "eret_emul".to_string(),
                            PhaseStat {
                                cycles: 1200,
                                traps: 24,
                            },
                        ),
                    ]),
                )
            })
            .collect();
        MicroMatrix::from_parts(results, trap_kinds, phases, BTreeMap::new())
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let m = synthetic();
        let text = to_json(&m, 42);
        let back = from_json(&text, 42).expect("round trip");
        assert_eq!(back, m);
    }

    #[test]
    fn failures_survive_the_round_trip_only_when_present() {
        let clean = synthetic();
        assert!(!to_json(&clean, 42).contains("failures"));

        let mut failures = BTreeMap::new();
        failures.insert(
            Config::ArmNestedV83,
            BTreeMap::from([(
                "hypercall".to_string(),
                "step budget of 100 exhausted (pc=0x0 EL2 phase=guest steps=100)".to_string(),
            )]),
        );
        let results = Config::all()
            .into_iter()
            .map(|c| (c, clean.costs(c)))
            .collect();
        // The serializer emits (possibly empty) provenance maps per
        // config; mirror that so the round trip compares equal.
        let empty_kinds = Config::all()
            .into_iter()
            .map(|c| (c, BTreeMap::new()))
            .collect();
        let empty_phases = Config::all()
            .into_iter()
            .map(|c| (c, BTreeMap::new()))
            .collect();
        let failed = MicroMatrix::from_parts(results, empty_kinds, empty_phases, failures);
        assert!(failed.has_failures());
        assert_eq!(failed.failed_cells(), 1);
        let text = to_json(&failed, 42);
        assert!(text.contains("failures"));
        let back = from_json(&text, 42).expect("round trip");
        assert_eq!(back, failed);
    }

    /// All `*.corrupt` quarantine files in `dir`, with their contents.
    fn quarantine_files(dir: &Path) -> Vec<(std::path::PathBuf, String)> {
        let mut found = Vec::new();
        for entry in std::fs::read_dir(dir).unwrap() {
            let p = entry.unwrap().path();
            if p.to_str().is_some_and(|s| s.ends_with(".corrupt")) {
                let text = std::fs::read_to_string(&p).unwrap();
                found.push((p, text));
            }
        }
        found
    }

    #[test]
    fn corrupt_cache_is_quarantined_and_remeasured() {
        // A garbage cache file must be moved aside as `*.corrupt`, a
        // fresh measurement written in its place, and the rewritten
        // cache must then load cleanly under the same fingerprint.
        let dir =
            std::env::temp_dir().join(format!("neve-cache-test-{}-single", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("micro_matrix.json");
        std::fs::write(&path, "{ not json at all").unwrap();

        let (m, source) = load_or_measure_at(&path, 4, true);
        assert_eq!(source, MatrixSource::Quarantined);
        let quarantined = quarantine_files(&dir);
        assert_eq!(quarantined.len(), 1, "{quarantined:?}");
        assert_eq!(
            quarantined[0].1, "{ not json at all",
            "the damaged bytes must survive for post-mortem"
        );
        let name = quarantined[0].0.file_name().unwrap().to_str().unwrap();
        assert!(
            name.starts_with(&format!("micro_matrix.json.{}.", std::process::id())),
            "quarantine name must be process-unique: {name}"
        );

        let (again, source2) = load_or_measure_at(&path, 4, true);
        assert_eq!(source2, MatrixSource::Cache);
        assert_eq!(again, m, "re-measured cache must load back identically");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The satellite bugfix's regression test: two concurrent actors
    /// that both find the same corrupt cache race on the quarantine.
    /// With process/call-unique targets, `rename(2)` atomicity on the
    /// shared *source* guarantees exactly one winner; the loser's
    /// rename fails cleanly and it just re-measures — the damaged
    /// bytes are never lost and never duplicated.
    #[test]
    fn concurrent_corruption_quarantine_has_exactly_one_winner() {
        let dir = std::env::temp_dir().join(format!("neve-cache-test-{}-race", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("micro_matrix.json");

        for round in 0..8 {
            std::fs::write(&path, format!("{{ corrupt round {round}")).unwrap();
            let barrier = std::sync::Barrier::new(2);
            let (a, b) = std::thread::scope(|s| {
                let h1 = s.spawn(|| {
                    barrier.wait();
                    quarantine_corrupt(&path)
                });
                let h2 = s.spawn(|| {
                    barrier.wait();
                    quarantine_corrupt(&path)
                });
                (h1.join().unwrap(), h2.join().unwrap())
            });
            assert!(
                a.is_some() ^ b.is_some(),
                "exactly one racer must win the bytes: {a:?} vs {b:?}"
            );
            let winner = a.or(b).unwrap();
            assert_eq!(
                std::fs::read_to_string(&winner).unwrap(),
                format!("{{ corrupt round {round}"),
                "the winner holds the intact damaged bytes"
            );
            assert!(!path.exists(), "the corrupt original must be gone");
        }
        // Every round quarantined under a distinct name: nothing was
        // overwritten across rounds.
        assert_eq!(quarantine_files(&dir).len(), 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_rejects_the_cache() {
        let text = to_json(&synthetic(), 42);
        assert!(from_json(&text, 43).is_none());
    }

    #[test]
    fn pre_provenance_schema_is_rejected() {
        // A cache written before the per-phase breakdown existed must
        // fail the load and trigger a clean re-measure.
        let text = to_json(&synthetic(), 42);
        let doc = neve_json::parse(&text).unwrap();
        let stripped = match doc {
            JsonValue::Object(top) => JsonValue::Object(
                top.into_iter()
                    .map(|(k, v)| {
                        if k != "configs" {
                            return (k, v);
                        }
                        let JsonValue::Object(cfgs) = v else {
                            unreachable!()
                        };
                        let cfgs = cfgs
                            .into_iter()
                            .map(|(label, body)| {
                                let JsonValue::Object(fields) = body else {
                                    unreachable!()
                                };
                                let fields =
                                    fields.into_iter().filter(|(f, _)| f != "phases").collect();
                                (label, JsonValue::Object(fields))
                            })
                            .collect();
                        (k, JsonValue::Object(cfgs))
                    })
                    .collect(),
            ),
            _ => unreachable!(),
        };
        assert!(from_json(&stripped.pretty(), 42).is_none());
    }

    #[test]
    fn garbage_and_truncation_are_rejected() {
        assert!(from_json("", 42).is_none());
        assert!(from_json("{\"fingerprint\": 42}", 42).is_none());
        let text = to_json(&synthetic(), 42);
        assert!(from_json(&text[..text.len() / 2], 42).is_none());
    }

    #[test]
    fn missing_config_rejects_the_cache() {
        let mut m = synthetic();
        // Rebuild without the last config.
        let mut results: BTreeMap<_, _> =
            Config::all().into_iter().map(|c| (c, m.costs(c))).collect();
        results.remove(&Config::X86Nested);
        m = MicroMatrix::from_results(results);
        let text = to_json(&m, 42);
        assert!(from_json(&text, 42).is_none());
    }
}
