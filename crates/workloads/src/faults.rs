//! The fault-injection campaign behind `neve faults`.
//!
//! For every nested-ARM evaluation cell the campaign measures a
//! fault-free baseline, then re-runs the cell under each built-in
//! [`FaultPlan`] and classifies the outcome:
//!
//! - **detected** — the stack turned the injected fault into a
//!   structured [`SimFault`](neve_cycles::SimFault) (the cell ended
//!   [`CellResult::Failed`]). The harness contained the damage and can
//!   say exactly where it happened.
//! - **recovered** — the cell completed and its measurement is
//!   bit-identical to the fault-free baseline. The stack absorbed the
//!   fault (e.g. a corrupted shadow PTE rebuilt on the next abort, or
//!   an injection scheduled past the payload's halt never fired).
//! - **mis-measured** — the cell completed but its numbers differ from
//!   the baseline: the worst outcome, a silently corrupted result.
//!
//! Everything is seeded and deterministic: the same seed produces a
//! byte-identical report, which `neve faults --smoke` exploits as a CI
//! gate (run twice, compare bytes).

use crate::platforms::Config;
use crate::session::{Bench, CellResult, SimSession};
use neve_armv8::{FaultPlan, BUILTIN_PLANS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default per-cell step budget for campaign runs. Tighter than the
/// testbed default: an injected fault that wedges a run loop should be
/// caught in seconds, not minutes.
pub const DEFAULT_CAMPAIGN_BUDGET: u64 = 10_000_000;

/// Campaign parameters (the `neve faults` flags).
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Seed folded into every fault plan's injection schedule.
    pub seed: u64,
    /// Small deterministic grid for CI (2 configs x 2 benches x 3
    /// plans) instead of the full nested-ARM matrix.
    pub smoke: bool,
    /// Worker threads for the injected runs (0 and 1 both mean serial).
    pub jobs: usize,
    /// Stop the campaign at the first detected fault (serial order).
    pub fail_fast: bool,
    /// Step-budget override (default [`DEFAULT_CAMPAIGN_BUDGET`]).
    pub step_budget: Option<u64>,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        Self {
            seed: 2017,
            smoke: false,
            jobs: 1,
            fail_fast: false,
            step_budget: None,
        }
    }
}

/// How one injected run ended relative to its fault-free baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The stack reported a structured fault.
    Detected,
    /// The run completed bit-identical to the baseline.
    Recovered,
    /// The run completed with different numbers: silent corruption.
    MisMeasured,
}

impl Verdict {
    /// Stable report label.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Detected => "detected",
            Verdict::Recovered => "recovered",
            Verdict::MisMeasured => "mis-measured",
        }
    }
}

/// One (configuration, benchmark, plan) outcome.
#[derive(Debug, Clone)]
pub struct CampaignEntry {
    /// Configuration the cell ran on.
    pub config: Config,
    /// Microbenchmark it ran.
    pub bench: Bench,
    /// Built-in plan name (see [`BUILTIN_PLANS`]).
    pub plan: &'static str,
    /// The classification.
    pub verdict: Verdict,
    /// Human-readable evidence (fault description or measurement
    /// delta).
    pub detail: String,
}

/// The campaign's full, deterministic result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The seed the schedules were derived from.
    pub seed: u64,
    /// Step budget every run was under.
    pub step_budget: u64,
    /// Entries in grid order (config, bench, plan).
    pub entries: Vec<CampaignEntry>,
    /// True when `--fail-fast` stopped the campaign early.
    pub truncated: bool,
}

impl CampaignReport {
    /// Entries with the given verdict.
    pub fn count(&self, v: Verdict) -> usize {
        self.entries.iter().filter(|e| e.verdict == v).count()
    }

    /// True when any injected run silently corrupted its measurement.
    pub fn any_mismeasured(&self) -> bool {
        self.count(Verdict::MisMeasured) > 0
    }

    /// Renders the report; byte-identical across runs for the same
    /// spec (the `--smoke` CI gate depends on this).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fault-injection campaign (seed {}, step budget {})",
            self.seed, self.step_budget
        );
        let _ = writeln!(out);
        let mut per_plan: BTreeMap<&str, [usize; 3]> = BTreeMap::new();
        for e in &self.entries {
            let idx = match e.verdict {
                Verdict::Detected => 0,
                Verdict::Recovered => 1,
                Verdict::MisMeasured => 2,
            };
            per_plan.entry(e.plan).or_default()[idx] += 1;
            let _ = writeln!(
                out,
                "  {:<18} {:<11} {:<14} {:<12} {}",
                e.config.label(),
                e.bench.label(),
                e.plan,
                e.verdict.label(),
                e.detail
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "per plan:");
        for (plan, [det, rec, mis]) in &per_plan {
            let _ = writeln!(
                out,
                "  {plan:<14} detected {det:<3} recovered {rec:<3} mis-measured {mis}"
            );
        }
        let _ = writeln!(
            out,
            "total: {} runs, {} detected, {} recovered, {} mis-measured",
            self.entries.len(),
            self.count(Verdict::Detected),
            self.count(Verdict::Recovered),
            self.count(Verdict::MisMeasured),
        );
        if self.truncated {
            let _ = writeln!(out, "campaign stopped early (--fail-fast)");
        }
        out
    }
}

/// The campaign grid. Fault plans only have ARM injection points, so
/// the x86 configurations are out of scope.
fn grid(smoke: bool) -> (Vec<(Config, Bench)>, Vec<&'static str>) {
    if smoke {
        (
            vec![
                (Config::ArmNestedV83, Bench::Hypercall),
                (Config::ArmNestedV83, Bench::VirtualEoi),
                (Config::ArmNestedNeve, Bench::Hypercall),
                (Config::ArmNestedNeve, Bench::VirtualEoi),
            ],
            vec!["pte-corruption", "spurious-trap", "counter-reset"],
        )
    } else {
        let configs = [
            Config::ArmVm,
            Config::ArmNestedV83,
            Config::ArmNestedV83Vhe,
            Config::ArmNestedNeve,
            Config::ArmNestedNeveVhe,
        ];
        let mut cells = Vec::new();
        for c in configs {
            for b in Bench::all() {
                cells.push((c, b));
            }
        }
        (cells, BUILTIN_PLANS.to_vec())
    }
}

/// Runs one cell, optionally under an injection plan, and never
/// panics: faults come back as [`CellResult::Failed`].
fn run_cell(config: Config, bench: Bench, plan: Option<&FaultPlan>, budget: u64) -> CellResult {
    let mut s = SimSession::new(config, bench);
    s.set_step_budget(budget);
    if let Some(p) = plan {
        s.attach_fault_plan(p);
    }
    s.run()
}

/// Classifies one injected outcome against its fault-free baseline.
fn classify(baseline: &CellResult, injected: CellResult) -> (Verdict, String) {
    match injected {
        CellResult::Failed { fault, .. } => (Verdict::Detected, fault.describe()),
        CellResult::Ok(m) => match baseline.measurement() {
            Some(base) if *base == m => (
                Verdict::Recovered,
                "measurement identical to fault-free baseline".to_string(),
            ),
            Some(base) => (
                Verdict::MisMeasured,
                format!(
                    "per-op cycles {} vs baseline {}, traps {} vs {}",
                    m.per_op.cycles, base.per_op.cycles, m.per_op.traps, base.per_op.traps
                ),
            ),
            None => (
                Verdict::MisMeasured,
                "fault-free baseline itself failed".to_string(),
            ),
        },
    }
}

/// Stripes `keys` over `jobs` workers, running `f` on each; results
/// come back keyed, so the merge is arrival-order independent. A
/// worker panic surfaces as a structured error instead of poisoning
/// the caller.
fn run_striped<K, F>(keys: &[K], jobs: usize, f: F) -> Result<BTreeMap<usize, CellResult>, String>
where
    K: Sync,
    F: Fn(&K) -> CellResult + Sync,
{
    let jobs = jobs.max(1).min(keys.len().max(1));
    let mut merged = BTreeMap::new();
    let mut panicked: Option<String> = None;
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..jobs)
            .map(|w| {
                let f = &f;
                scope.spawn(move || {
                    keys.iter()
                        .enumerate()
                        .skip(w)
                        .step_by(jobs)
                        .map(|(i, k)| (i, f(k)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for worker in workers {
            match worker.join() {
                Ok(chunk) => merged.extend(chunk),
                Err(payload) => {
                    panicked.get_or_insert_with(|| crate::session::panic_message(payload.as_ref()));
                }
            }
        }
    });
    if let Some(msg) = panicked {
        return Err(format!(
            "campaign worker panicked ({msg}); partial results discarded"
        ));
    }
    Ok(merged)
}

/// Runs the full injection campaign described by `spec`.
///
/// # Errors
///
/// Reports a worker panic or an unknown built-in plan name as a
/// structured error (both indicate harness bugs, not findings).
pub fn run_campaign(spec: &CampaignSpec) -> Result<CampaignReport, String> {
    let (cells, plans) = grid(spec.smoke);
    let budget = spec.step_budget.unwrap_or(DEFAULT_CAMPAIGN_BUDGET);

    // Fault-free baselines, one per cell (the recovery reference).
    let baselines = run_striped(&cells, spec.jobs, |&(c, b)| run_cell(c, b, None, budget))?;

    // The injected grid, in deterministic (config, bench, plan) order.
    let mut units: Vec<(usize, &'static str, FaultPlan)> =
        Vec::with_capacity(cells.len() * plans.len());
    for i in 0..cells.len() {
        for &plan in &plans {
            let p = FaultPlan::builtin(plan, spec.seed)
                .ok_or_else(|| format!("internal: unknown built-in fault plan `{plan}`"))?;
            units.push((i, plan, p));
        }
    }

    let mut entries = Vec::with_capacity(units.len());
    let mut truncated = false;
    if spec.fail_fast {
        // Serial and ordered so "first fault" is well-defined.
        for (cell_idx, plan, p) in &units {
            let (config, bench) = cells[*cell_idx];
            let outcome = run_cell(config, bench, Some(p), budget);
            let (verdict, detail) = classify(&baselines[cell_idx], outcome);
            entries.push(CampaignEntry {
                config,
                bench,
                plan,
                verdict,
                detail,
            });
            if verdict == Verdict::Detected {
                truncated = true;
                break;
            }
        }
    } else {
        let outcomes = run_striped(&units, spec.jobs, |(cell_idx, _, p)| {
            let (config, bench) = cells[*cell_idx];
            run_cell(config, bench, Some(p), budget)
        })?;
        for (i, outcome) in outcomes {
            let (cell_idx, plan, _) = &units[i];
            let (config, bench) = cells[*cell_idx];
            let (verdict, detail) = classify(&baselines[cell_idx], outcome);
            entries.push(CampaignEntry {
                config,
                bench,
                plan,
                verdict,
                detail,
            });
        }
    }

    Ok(CampaignReport {
        seed: spec.seed,
        step_budget: budget,
        entries,
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_spec(seed: u64) -> CampaignSpec {
        CampaignSpec {
            seed,
            smoke: true,
            jobs: 4,
            ..CampaignSpec::default()
        }
    }

    #[test]
    fn smoke_campaign_is_deterministic_and_complete() {
        let a = run_campaign(&smoke_spec(2017)).unwrap();
        let b = run_campaign(&smoke_spec(2017)).unwrap();
        assert_eq!(a.render(), b.render(), "same seed must replay identically");
        // 2 configs x 2 benches x 3 plans, nothing dropped.
        assert_eq!(a.entries.len(), 12);
        assert!(!a.truncated);
    }

    #[test]
    fn seeds_change_the_schedule() {
        let a = run_campaign(&smoke_spec(1)).unwrap();
        let b = run_campaign(&smoke_spec(2)).unwrap();
        // Different injection steps; entry counts match but the reports
        // should not be forced equal. (They can coincide in principle,
        // but not for these seeds — this guards against the seed being
        // silently ignored.)
        assert_ne!(a.render(), b.render());
    }

    #[test]
    fn fail_fast_stops_at_the_first_detection() {
        let spec = CampaignSpec {
            fail_fast: true,
            ..smoke_spec(2017)
        };
        let r = run_campaign(&spec).unwrap();
        let detections: Vec<_> = r
            .entries
            .iter()
            .filter(|e| e.verdict == Verdict::Detected)
            .collect();
        if r.truncated {
            assert_eq!(detections.len(), 1);
            assert_eq!(r.entries.last().unwrap().verdict, Verdict::Detected);
        } else {
            assert!(detections.is_empty());
        }
    }
}
