//! Assembling the paper's tables from measured microbenchmark data.

use crate::platforms::{Config, MicroMatrix};

/// One row of Table 1/6 (cycle counts) or Table 7 (trap counts).
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Microbenchmark name.
    pub bench: &'static str,
    /// (configuration, value, multiplier-vs-VM) triples.
    pub cells: Vec<(Config, u64, f64)>,
}

const BENCHES: [&str; 4] = ["Hypercall", "Device I/O", "Virtual IPI", "Virtual EOI"];

fn value_of(m: &MicroMatrix, c: Config, bench: &str, traps: bool) -> f64 {
    let costs = m.costs(c);
    let p = match bench {
        "Hypercall" => costs.hypercall,
        "Device I/O" => costs.device_io,
        "Virtual IPI" => costs.virtual_ipi,
        _ => costs.virtual_eoi,
    };
    if traps {
        p.traps
    } else {
        p.cycles as f64
    }
}

fn build(m: &MicroMatrix, configs: &[Config], traps: bool) -> Vec<TableRow> {
    BENCHES
        .iter()
        .map(|bench| {
            let cells = configs
                .iter()
                .map(|&c| {
                    let v = value_of(m, c, bench, traps);
                    let base = value_of(m, c.vm_baseline(), bench, traps).max(1.0);
                    (c, v.round() as u64, v / base)
                })
                .collect();
            TableRow { bench, cells }
        })
        .collect()
}

/// Table 1: microbenchmark cycle counts for ARMv8.3 {VM, Nested,
/// Nested VHE} and x86 {VM, Nested}.
pub fn table1(m: &MicroMatrix) -> Vec<TableRow> {
    build(
        m,
        &[
            Config::ArmVm,
            Config::ArmNestedV83,
            Config::ArmNestedV83Vhe,
            Config::X86Vm,
            Config::X86Nested,
        ],
        false,
    )
}

/// Table 6: Table 1's nested columns plus NEVE, with the
/// overhead-vs-VM multipliers the paper prints in parentheses.
pub fn table6(m: &MicroMatrix) -> Vec<TableRow> {
    build(
        m,
        &[
            Config::ArmNestedV83,
            Config::ArmNestedV83Vhe,
            Config::ArmNestedNeve,
            Config::ArmNestedNeveVhe,
            Config::X86Nested,
        ],
        false,
    )
}

/// Table 7: average trap counts.
pub fn table7(m: &MicroMatrix) -> Vec<TableRow> {
    build(
        m,
        &[
            Config::ArmNestedV83,
            Config::ArmNestedV83Vhe,
            Config::ArmNestedNeve,
            Config::ArmNestedNeveVhe,
            Config::X86Nested,
        ],
        true,
    )
}

/// Renders rows as an aligned text table (the harness binaries print
/// these next to the paper's numbers).
pub fn render(rows: &[TableRow]) -> String {
    let mut out = String::new();
    if let Some(first) = rows.first() {
        out.push_str(&format!("{:<12}", "Benchmark"));
        for (c, _, _) in &first.cells {
            out.push_str(&format!(" | {:>22}", c.label()));
        }
        out.push('\n');
        out.push_str(&"-".repeat(12 + first.cells.len() * 25));
        out.push('\n');
    }
    for r in rows {
        out.push_str(&format!("{:<12}", r.bench));
        for (_, v, mult) in &r.cells {
            out.push_str(&format!(" | {:>12} ({:>5.1}x)", v, mult));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn matrix() -> &'static MicroMatrix {
        static M: OnceLock<MicroMatrix> = OnceLock::new();
        M.get_or_init(MicroMatrix::measure)
    }

    #[test]
    fn table1_shape_matches_paper() {
        let t = table1(matrix());
        assert_eq!(t.len(), 4);
        assert_eq!(t[0].cells.len(), 5);
        // Hypercall row: nested >> VM on ARM; more than an order of
        // magnitude more overhead than x86 in relative terms (the
        // paper's headline from Section 5).
        let hc = &t[0];
        let arm_vm = hc.cells[0].1;
        let arm_nested = hc.cells[1].1;
        let x86_nested_mult = hc.cells[4].2;
        let arm_nested_mult = hc.cells[1].2;
        assert!(arm_nested > 50 * arm_vm);
        assert!(arm_nested_mult > 3.0 * x86_nested_mult);
    }

    #[test]
    fn table6_neve_improves_on_v8_3() {
        let t = table6(matrix());
        let hc = &t[0];
        let v83 = hc.cells[0].1;
        let neve = hc.cells[2].1;
        // Paper: "NEVE provides up to 5 times faster performance than
        // ARMv8.3".
        assert!(neve * 3 < v83, "neve {neve} v8.3 {v83}");
        // NEVE's relative overhead is comparable to x86's (Section 7.1).
        let neve_mult = hc.cells[2].2;
        let x86_mult = hc.cells[4].2;
        assert!(neve_mult < 2.0 * x86_mult);
    }

    #[test]
    fn table7_trap_counts_match_paper_pattern() {
        let t = table7(matrix());
        let hc = &t[0];
        let (v83, vhe, neve, neve_vhe, x86) = (
            hc.cells[0].1,
            hc.cells[1].1,
            hc.cells[2].1,
            hc.cells[3].1,
            hc.cells[4].1,
        );
        // Paper: 126 / 82 / 15 / 15 / 5.
        assert!(v83 > vhe, "{v83} {vhe}");
        assert!(vhe > 4 * neve);
        assert!((10..=20).contains(&neve));
        assert!((10..=20).contains(&neve_vhe));
        assert!(x86 <= 6);
        // The EOI row is zero everywhere.
        let eoi = &t[3];
        assert!(eoi.cells.iter().all(|(_, v, _)| *v == 0));
    }

    #[test]
    fn render_produces_a_line_per_bench() {
        let s = render(&table7(matrix()));
        assert_eq!(s.lines().count(), 2 + 4);
        assert!(s.contains("Hypercall"));
    }
}
