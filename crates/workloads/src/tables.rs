//! Assembling the paper's tables from measured microbenchmark data.

use crate::platforms::{Config, MicroMatrix};

/// One cell of a rendered table.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Configuration the column measures.
    pub config: Config,
    /// Rounded value (cycles or traps). Zero placeholder when `failed`.
    pub value: u64,
    /// Multiplier versus the config's VM baseline. Zero when `failed`.
    pub mult: f64,
    /// True when the cell faulted instead of measuring; `value`/`mult`
    /// are placeholders and renderers must print a marker, never the
    /// placeholder numbers.
    pub failed: bool,
}

/// One row of Table 1/6 (cycle counts) or Table 7 (trap counts).
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Microbenchmark name.
    pub bench: &'static str,
    /// One cell per configuration column.
    pub cells: Vec<Cell>,
}

const BENCHES: [&str; 4] = ["Hypercall", "Device I/O", "Virtual IPI", "Virtual EOI"];

/// The failure-record key ([`crate::session::Bench::label`]) for a
/// table-row display name.
fn failure_key(bench: &str) -> &'static str {
    match bench {
        "Hypercall" => "hypercall",
        "Device I/O" => "device_io",
        "Virtual IPI" => "virtual_ipi",
        _ => "virtual_eoi",
    }
}

fn value_of(m: &MicroMatrix, c: Config, bench: &str, traps: bool) -> Option<f64> {
    if m.failures(c).contains_key(failure_key(bench)) {
        return None;
    }
    let costs = m.costs(c);
    let p = match bench {
        "Hypercall" => costs.hypercall,
        "Device I/O" => costs.device_io,
        "Virtual IPI" => costs.virtual_ipi,
        _ => costs.virtual_eoi,
    };
    Some(if traps { p.traps } else { p.cycles as f64 })
}

fn build(m: &MicroMatrix, configs: &[Config], traps: bool) -> Vec<TableRow> {
    BENCHES
        .iter()
        .map(|bench| {
            let cells = configs
                .iter()
                .map(|&c| {
                    // A faulted cell (or a faulted baseline, which would
                    // make the multiplier meaningless) renders as FAILED
                    // rather than as a spurious zero.
                    let v = value_of(m, c, bench, traps);
                    let base = value_of(m, c.vm_baseline(), bench, traps);
                    match (v, base) {
                        (Some(v), Some(base)) => Cell {
                            config: c,
                            value: v.round() as u64,
                            mult: v / base.max(1.0),
                            failed: false,
                        },
                        _ => Cell {
                            config: c,
                            value: 0,
                            mult: 0.0,
                            failed: true,
                        },
                    }
                })
                .collect();
            TableRow { bench, cells }
        })
        .collect()
}

/// Table 1: microbenchmark cycle counts for ARMv8.3 {VM, Nested,
/// Nested VHE} and x86 {VM, Nested}.
pub fn table1(m: &MicroMatrix) -> Vec<TableRow> {
    build(
        m,
        &[
            Config::ArmVm,
            Config::ArmNestedV83,
            Config::ArmNestedV83Vhe,
            Config::X86Vm,
            Config::X86Nested,
        ],
        false,
    )
}

/// Table 6: Table 1's nested columns plus NEVE, with the
/// overhead-vs-VM multipliers the paper prints in parentheses.
pub fn table6(m: &MicroMatrix) -> Vec<TableRow> {
    build(
        m,
        &[
            Config::ArmNestedV83,
            Config::ArmNestedV83Vhe,
            Config::ArmNestedNeve,
            Config::ArmNestedNeveVhe,
            Config::X86Nested,
        ],
        false,
    )
}

/// Table 7: average trap counts.
pub fn table7(m: &MicroMatrix) -> Vec<TableRow> {
    build(
        m,
        &[
            Config::ArmNestedV83,
            Config::ArmNestedV83Vhe,
            Config::ArmNestedNeve,
            Config::ArmNestedNeveVhe,
            Config::X86Nested,
        ],
        true,
    )
}

/// Renders rows as an aligned text table (the harness binaries print
/// these next to the paper's numbers).
pub fn render(rows: &[TableRow]) -> String {
    let mut out = String::new();
    if let Some(first) = rows.first() {
        out.push_str(&format!("{:<12}", "Benchmark"));
        for cell in &first.cells {
            out.push_str(&format!(" | {:>22}", cell.config.label()));
        }
        out.push('\n');
        out.push_str(&"-".repeat(12 + first.cells.len() * 25));
        out.push('\n');
    }
    for r in rows {
        out.push_str(&format!("{:<12}", r.bench));
        for cell in &r.cells {
            if cell.failed {
                out.push_str(&format!(" | {:>12} (FAILED)", "--"));
            } else {
                out.push_str(&format!(" | {:>12} ({:>5.1}x)", cell.value, cell.mult));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn matrix() -> &'static MicroMatrix {
        static M: OnceLock<MicroMatrix> = OnceLock::new();
        M.get_or_init(MicroMatrix::measure)
    }

    #[test]
    fn table1_shape_matches_paper() {
        let t = table1(matrix());
        assert_eq!(t.len(), 4);
        assert_eq!(t[0].cells.len(), 5);
        // Hypercall row: nested >> VM on ARM; more than an order of
        // magnitude more overhead than x86 in relative terms (the
        // paper's headline from Section 5).
        let hc = &t[0];
        let arm_vm = hc.cells[0].value;
        let arm_nested = hc.cells[1].value;
        let x86_nested_mult = hc.cells[4].mult;
        let arm_nested_mult = hc.cells[1].mult;
        assert!(arm_nested > 50 * arm_vm);
        assert!(arm_nested_mult > 3.0 * x86_nested_mult);
    }

    #[test]
    fn table6_neve_improves_on_v8_3() {
        let t = table6(matrix());
        let hc = &t[0];
        let v83 = hc.cells[0].value;
        let neve = hc.cells[2].value;
        // Paper: "NEVE provides up to 5 times faster performance than
        // ARMv8.3".
        assert!(neve * 3 < v83, "neve {neve} v8.3 {v83}");
        // NEVE's relative overhead is comparable to x86's (Section 7.1).
        let neve_mult = hc.cells[2].mult;
        let x86_mult = hc.cells[4].mult;
        assert!(neve_mult < 2.0 * x86_mult);
    }

    #[test]
    fn table7_trap_counts_match_paper_pattern() {
        let t = table7(matrix());
        let hc = &t[0];
        let (v83, vhe, neve, neve_vhe, x86) = (
            hc.cells[0].value,
            hc.cells[1].value,
            hc.cells[2].value,
            hc.cells[3].value,
            hc.cells[4].value,
        );
        // Paper: 126 / 82 / 15 / 15 / 5.
        assert!(v83 > vhe, "{v83} {vhe}");
        assert!(vhe > 4 * neve);
        assert!((10..=20).contains(&neve));
        assert!((10..=20).contains(&neve_vhe));
        assert!(x86 <= 6);
        // The EOI row is zero everywhere — a *measured* zero, not a
        // failure placeholder.
        let eoi = &t[3];
        assert!(eoi.cells.iter().all(|c| c.value == 0 && !c.failed));
    }

    #[test]
    fn render_produces_a_line_per_bench() {
        let s = render(&table7(matrix()));
        assert_eq!(s.lines().count(), 2 + 4);
        assert!(s.contains("Hypercall"));
        // Clean matrix: no cell renders the failure marker.
        assert!(!s.contains("FAILED"));
    }

    #[test]
    fn failed_cell_renders_marker_not_zero() {
        use std::collections::BTreeMap;

        let clean = matrix();
        let mut results = BTreeMap::new();
        for c in Config::all() {
            results.insert(c, clean.costs(c));
        }
        // Fabricate a NEVE hypercall cell that faulted: zero placeholder
        // costs plus a failure record, exactly as `assemble` produces.
        let mut costs = results[&Config::ArmNestedNeve];
        costs.hypercall.cycles = 0;
        costs.hypercall.traps = 0.0;
        results.insert(Config::ArmNestedNeve, costs);
        let mut failures: BTreeMap<Config, BTreeMap<String, String>> = BTreeMap::new();
        failures
            .entry(Config::ArmNestedNeve)
            .or_default()
            .insert("hypercall".into(), "step budget exhausted".into());
        let m = MicroMatrix::from_parts(results, BTreeMap::new(), BTreeMap::new(), failures);

        let t = table6(&m);
        let hc = &t[0];
        assert!(hc.cells[2].failed, "NEVE hypercall cell must flag failure");
        assert!(!hc.cells[0].failed, "v8.3 cell measured fine");
        // Other rows of the failed config are untouched.
        assert!(!t[1].cells[2].failed);

        let s = render(&t);
        let hc_line = s.lines().find(|l| l.starts_with("Hypercall")).unwrap();
        assert!(hc_line.contains("FAILED"), "marker missing: {hc_line}");
        assert!(
            !hc_line.contains(" 0 ("),
            "failed cell leaked a zero: {hc_line}"
        );
        assert!(!s.contains("NaN"), "no NaN may ever render");
    }
}
