//! Workload models reproducing the NEVE paper's evaluation.
//!
//! - [`session`]: [`SimSession`], the unit of evaluation — one
//!   (configuration, benchmark) cell owning its testbed from build to
//!   measured result. Sessions are `Send`, so the matrix fans out
//!   across worker threads.
//! - [`platforms`]: a unified view over the ARM ([`neve_kvmarm`]) and
//!   x86 ([`neve_x86vt`]) test beds; [`MicroMatrix`] runs every
//!   microbenchmark on every configuration (serially or in parallel,
//!   bit-identically) — the data behind Tables 1, 6 and 7, including
//!   the per-kind trap breakdown.
//! - [`cache`]: the persistent results cache
//!   (`results/micro_matrix.json`), keyed by the cost-model
//!   fingerprint, so every report binary measures once and reuses.
//! - [`faults`]: the fault-injection campaign — every built-in
//!   [`FaultPlan`](neve_armv8::FaultPlan) against every nested ARM
//!   cell, classifying each outcome as detected, recovered, or
//!   mis-measured (the `neve faults` subcommand).
//! - [`tables`]: assembles those results into the paper's table rows.
//! - [`apps`]: the application-workload model behind Figure 2. Each of
//!   the paper's ten workloads (Table 8) is characterized by rates of
//!   virtualization events per unit of CPU work; the per-event costs
//!   come from the *simulated stacks* (the same numbers as Table 6), so
//!   the figure is regenerated, not transcribed. The virtio
//!   notification-suppression model reproduces the paper's x86
//!   Memcached anomaly (Section 7.2: "having faster hardware can result
//!   in more virtualization overhead").
//! - [`jobs`] and [`serve`]: the long-running job engine behind
//!   `neve serve` — batched sweep requests over line-delimited JSON,
//!   decomposed into content-addressed cells on a sharded
//!   work-stealing queue, with in-flight coalescing, an in-memory
//!   result store layered over the disk cache, and streaming JSONL
//!   partial-matrix events.

pub mod apps;
pub mod cache;
pub mod consolidate;
pub mod faults;
pub mod fuzz;
pub mod jobs;
pub mod oracle;
pub mod platforms;
pub mod provenance;
pub mod replay;
pub mod serve;
pub mod session;
pub mod tables;
pub mod throughput;

pub use apps::{figure2, WorkloadProfile, WorkloadRow, WORKLOADS};
pub use cache::{load_or_measure, MatrixSource, CACHE_PATH};
pub use consolidate::{
    run_consolidate, ConsolidateReport, ConsolidateRow, ConsolidateSpec, CONSOLIDATE_PATH,
};
pub use faults::{run_campaign, CampaignReport, CampaignSpec, Verdict};
pub use fuzz::{run_fuzz, FuzzReport, FuzzSpec, CORPUS_DIR};
pub use jobs::{parse_request, CellKey, CellOutcome, CellWork, Command, JobKind, JobRequest};
pub use oracle::{
    diff_pair, engine_lockstep, golden_diff, run_checks, trap_algebra, wheel_determinism,
    OracleReport, PairReport,
};
pub use platforms::{Config, MeasureOpts, MicroCosts, MicroMatrix, PhaseStat};
pub use replay::{replay_vs_model, Mix, ReplayResult};
pub use serve::{listen, run_protocol, JobEngine, SharedBuf, Sink};
pub use session::{Bench, CellMeasurement, CellResult, SimSession};
pub use tables::{table1, table6, table7, Cell, TableRow};
pub use throughput::{
    guard_regressions, guard_scenario_regressions, measure_all, measure_all_with,
    measure_scenarios, ConfigThroughput, ScenarioThroughput, BENCH_PATH,
};
