//! Job requests for the serve engine: the line-delimited JSON schema,
//! content-addressed cell keys, and the decomposition of one batched
//! sweep request into independently schedulable cells.
//!
//! A request names a *sweep slice* — which job kind, which
//! configurations, which benchmarks, which step engine, an optional
//! fault plan and an optional step budget — and the engine splits it
//! into cells. Two requests that describe the same cell (same cost
//! model, same knobs) produce the same [`CellKey`], which is what lets
//! the serve store coalesce duplicate in-flight work and serve repeat
//! queries from memory.

use crate::consolidate::ConsolidateSpec;
use crate::faults::CampaignSpec;
use crate::fuzz::FuzzSpec;
use crate::platforms::Config;
use crate::session::Bench;
use neve_armv8::{Engine, FaultPlan};
use neve_json::JsonValue;

/// The job kinds a serve request can name (the former one-shot CLI
/// subcommands, now schedulable as cells).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum JobKind {
    /// Evaluation-matrix measurement: one cell per (config, bench).
    Micro,
    /// The fault-injection campaign (one report cell).
    Faults,
    /// The coverage-guided fuzzing campaign (one report cell).
    Fuzz,
    /// The multi-VM consolidation table (one report cell).
    Consolidate,
    /// Host-throughput measurement (one report cell; wall-clock, so
    /// never cached in the result store).
    BenchSim,
}

impl JobKind {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            JobKind::Micro => "micro",
            JobKind::Faults => "faults",
            JobKind::Fuzz => "fuzz",
            JobKind::Consolidate => "consolidate",
            JobKind::BenchSim => "bench-sim",
        }
    }

    fn from_label(s: &str) -> Option<JobKind> {
        [
            JobKind::Micro,
            JobKind::Faults,
            JobKind::Fuzz,
            JobKind::Consolidate,
            JobKind::BenchSim,
        ]
        .into_iter()
        .find(|k| k.label() == s)
    }
}

/// Resolves a configuration from either its table label (`"ARM VM"`,
/// the cache's keys) or its CLI alias (`"vm"`, `"v83"`, ...).
pub fn config_from_name(name: &str) -> Option<Config> {
    if let Some(c) = Config::from_label(name) {
        return Some(c);
    }
    Some(match name {
        "vm" => Config::ArmVm,
        "v83" | "v8.3" | "v8.3-nested" => Config::ArmNestedV83,
        "v83-vhe" | "v8.3-nested-vhe" => Config::ArmNestedV83Vhe,
        "neve" | "neve-nested" => Config::ArmNestedNeve,
        "neve-vhe" | "neve-nested-vhe" => Config::ArmNestedNeveVhe,
        "x86-vm" => Config::X86Vm,
        "x86-nested" => Config::X86Nested,
        _ => return None,
    })
}

/// Resolves a benchmark from its label or CLI alias.
pub fn bench_from_name(name: &str) -> Option<Bench> {
    if let Some(b) = Bench::from_label(name) {
        return Some(b);
    }
    Some(match name {
        "devio" => Bench::DeviceIo,
        "ipi" => Bench::VirtualIpi,
        "eoi" => Bench::VirtualEoi,
        _ => return None,
    })
}

fn engine_label(e: Engine) -> &'static str {
    match e {
        Engine::Uop => "uop",
        Engine::Interp => "interp",
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Submit a job.
    Submit(JobRequest),
    /// Cancel a previously submitted job by id.
    Cancel(String),
}

/// A batched sweep request, decomposable into cells.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Caller-chosen id; every streamed event echoes it.
    pub id: String,
    /// Which job kind to run.
    pub kind: JobKind,
    /// Configurations to sweep (micro only; defaults to all).
    pub configs: Vec<Config>,
    /// Benchmarks to sweep (micro only; defaults to all four).
    pub benches: Vec<Bench>,
    /// Step engine for ARM cells.
    pub engine: Engine,
    /// Per-cell step budget (micro only; `None` = platform default).
    /// The PR 3 watchdog turns an exhausted budget into a structured
    /// `SimFault`, so an over-budget cell streams as `failed` while
    /// the rest of the batch completes — backpressure, not poison.
    pub budget: Option<u64>,
    /// Fault plan `(builtin name, seed)` attached to every ARM cell
    /// (micro only).
    pub plan: Option<(String, u64)>,
    /// Campaign seed (faults/fuzz kinds).
    pub seed: u64,
    /// Fuzz first-round cases.
    pub cases: usize,
    /// Reduced grid for the campaign kinds.
    pub smoke: bool,
    /// Timed samples (bench-sim kind).
    pub samples: usize,
}

/// The content address of one schedulable cell. Everything that can
/// change a cell's result is part of the key — cost-model fingerprint,
/// configuration, benchmark, engine, budget, fault plan — so equal
/// keys are interchangeable results and the store can coalesce and
/// cache on key identity alone. `BTreeMap`-friendly (`Ord`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CellKey {
    /// Cost-model fingerprint the cell is measured under.
    pub fingerprint: u64,
    /// Job kind label.
    pub kind: &'static str,
    /// Configuration (micro cells; `None` for report cells).
    pub config: Option<Config>,
    /// Benchmark (micro cells; `None` for report cells).
    pub bench: Option<Bench>,
    /// Step-engine label.
    pub engine: &'static str,
    /// Step budget (0 = platform default).
    pub budget: u64,
    /// Fault-plan name ("" = none) and seed.
    pub plan: String,
    /// Fault-plan seed (0 when `plan` is empty).
    pub plan_seed: u64,
    /// Kind-specific parameters of report cells (campaign seed, case
    /// count, sample count, smoke), rendered canonically.
    pub params: String,
}

/// What a worker must execute to produce one cell.
#[derive(Debug, Clone)]
pub enum CellWork {
    /// One evaluation-matrix cell.
    Micro {
        /// Configuration to build.
        config: Config,
        /// Benchmark to run.
        bench: Bench,
        /// Step engine for ARM beds.
        engine: Engine,
        /// Optional watchdog budget.
        budget: Option<u64>,
        /// Optional fault plan (already resolved).
        plan: Option<FaultPlan>,
    },
    /// A whole fault campaign (renders to a report).
    Faults(CampaignSpec),
    /// A whole fuzz campaign.
    Fuzz(FuzzSpec),
    /// The consolidation table.
    Consolidate(ConsolidateSpec),
    /// A throughput measurement (uncacheable: wall-clock).
    BenchSim {
        /// Timed samples.
        samples: usize,
        /// Step engine.
        engine: Engine,
    },
}

impl CellWork {
    /// Whether the result may be kept in the store after delivery.
    /// Wall-clock measurements go stale immediately; everything else is
    /// deterministic under its key.
    pub fn cacheable(&self) -> bool {
        !matches!(self, CellWork::BenchSim { .. })
    }
}

/// What one executed cell produced.
#[derive(Debug, Clone)]
pub enum CellOutcome {
    /// A micro cell's measurement (or contained failure).
    Micro(crate::session::CellResult),
    /// A report kind's rendered text.
    Report(String),
    /// A report kind's structured error (campaign harness failure).
    Error(String),
}

impl JobRequest {
    /// Splits the request into content-addressed cells. `fingerprint`
    /// is the current cost model's — requests never choose it; it is
    /// part of the key so a cost-model edit invalidates every stored
    /// result at once.
    ///
    /// # Errors
    ///
    /// An unknown builtin fault-plan name.
    pub fn cells(&self, fingerprint: u64) -> Result<Vec<(CellKey, CellWork)>, String> {
        let engine = engine_label(self.engine);
        match self.kind {
            JobKind::Micro => {
                let plan = match &self.plan {
                    None => None,
                    Some((name, seed)) => Some((
                        name.clone(),
                        *seed,
                        FaultPlan::builtin(name, *seed)
                            .ok_or_else(|| format!("unknown fault plan `{name}`"))?,
                    )),
                };
                let mut cells = Vec::new();
                for &config in &self.configs {
                    for &bench in &self.benches {
                        let key = CellKey {
                            fingerprint,
                            kind: self.kind.label(),
                            config: Some(config),
                            bench: Some(bench),
                            engine,
                            budget: self.budget.unwrap_or(0),
                            plan: plan.as_ref().map(|(n, _, _)| n.clone()).unwrap_or_default(),
                            plan_seed: plan.as_ref().map(|(_, s, _)| *s).unwrap_or(0),
                            params: String::new(),
                        };
                        let work = CellWork::Micro {
                            config,
                            bench,
                            engine: self.engine,
                            budget: self.budget,
                            plan: plan.as_ref().map(|(_, _, p)| p.clone()),
                        };
                        cells.push((key, work));
                    }
                }
                Ok(cells)
            }
            JobKind::Faults => {
                let spec = CampaignSpec {
                    seed: self.seed,
                    smoke: self.smoke,
                    jobs: 1, // parallelism lives in the serve queue
                    fail_fast: false,
                    step_budget: self.budget,
                };
                Ok(vec![(
                    self.report_key(
                        fingerprint,
                        engine,
                        format!("seed={:#x} smoke={}", self.seed, self.smoke),
                    ),
                    CellWork::Faults(spec),
                )])
            }
            JobKind::Fuzz => {
                let spec = FuzzSpec {
                    seed: self.seed,
                    cases: self.cases,
                    jobs: 1,
                    corpus_dir: None, // serve results stream; no side files
                };
                Ok(vec![(
                    self.report_key(
                        fingerprint,
                        engine,
                        format!("seed={:#x} cases={}", self.seed, self.cases),
                    ),
                    CellWork::Fuzz(spec),
                )])
            }
            JobKind::Consolidate => {
                let mut spec = if self.smoke {
                    ConsolidateSpec::smoke()
                } else {
                    ConsolidateSpec::full()
                };
                spec.jobs = 1;
                Ok(vec![(
                    self.report_key(fingerprint, engine, format!("smoke={}", self.smoke)),
                    CellWork::Consolidate(spec),
                )])
            }
            JobKind::BenchSim => Ok(vec![(
                self.report_key(fingerprint, engine, format!("samples={}", self.samples)),
                CellWork::BenchSim {
                    samples: self.samples,
                    engine: self.engine,
                },
            )]),
        }
    }

    fn report_key(&self, fingerprint: u64, engine: &'static str, params: String) -> CellKey {
        CellKey {
            fingerprint,
            kind: self.kind.label(),
            config: None,
            bench: None,
            engine,
            budget: self.budget.unwrap_or(0),
            plan: String::new(),
            plan_seed: 0,
            params,
        }
    }

    /// True when this request describes exactly the evaluation matrix
    /// the persistent disk cache stores: every configuration, all four
    /// benchmarks, default engine, no plan, no budget. Only such
    /// requests may be answered from (or written back to) the disk
    /// cache — anything narrower goes through the in-memory store.
    pub fn is_full_default_grid(&self) -> bool {
        self.kind == JobKind::Micro
            && self.engine == Engine::default()
            && self.budget.is_none()
            && self.plan.is_none()
            && self.benches.len() == Bench::all().len()
            && Bench::all().iter().all(|b| self.benches.contains(b))
            && self.configs.len() == Config::all().len()
            && Config::all().iter().all(|c| self.configs.contains(c))
    }
}

fn str_field(doc: &JsonValue, key: &str) -> Result<Option<String>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("`{key}` must be a string")),
    }
}

fn u64_field(doc: &JsonValue, key: &str) -> Result<Option<u64>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

fn bool_field(doc: &JsonValue, key: &str) -> Result<Option<bool>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(JsonValue::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(format!("`{key}` must be a boolean")),
    }
}

/// Parses one protocol line.
///
/// The submit schema (all fields except `id` optional):
///
/// ```json
/// {"id":"r1","job":"micro","configs":["vm","neve"],
///  "benches":["hypercall"],"engine":"interp","budget":2000,
///  "plan":"chaos","plan_seed":7}
/// ```
///
/// and `{"cmd":"cancel","id":"r1"}` cancels.
///
/// # Errors
///
/// Malformed JSON, unknown fields' values, or a missing `id`.
pub fn parse_request(line: &str) -> Result<Command, String> {
    let doc = neve_json::parse(line).map_err(|e| format!("invalid JSON: {e:?}"))?;
    let id = str_field(&doc, "id")?.ok_or("missing `id`")?;
    if let Some(cmd) = str_field(&doc, "cmd")? {
        return match cmd.as_str() {
            "cancel" => Ok(Command::Cancel(id)),
            other => Err(format!("unknown cmd `{other}`")),
        };
    }
    let kind_name = str_field(&doc, "job")?.unwrap_or_else(|| "micro".into());
    let kind =
        JobKind::from_label(&kind_name).ok_or_else(|| format!("unknown job `{kind_name}`"))?;
    let configs = match doc.get("configs") {
        None => Config::all().to_vec(),
        Some(v) => {
            let arr = v.as_array().ok_or("`configs` must be an array")?;
            let mut out = Vec::new();
            for item in arr {
                let name = item.as_str().ok_or("`configs` entries must be strings")?;
                out.push(config_from_name(name).ok_or_else(|| format!("unknown config `{name}`"))?);
            }
            if out.is_empty() {
                return Err("`configs` must not be empty".into());
            }
            out
        }
    };
    let benches = match doc.get("benches") {
        None => Bench::all().to_vec(),
        Some(v) => {
            let arr = v.as_array().ok_or("`benches` must be an array")?;
            let mut out = Vec::new();
            for item in arr {
                let name = item.as_str().ok_or("`benches` entries must be strings")?;
                out.push(bench_from_name(name).ok_or_else(|| format!("unknown bench `{name}`"))?);
            }
            if out.is_empty() {
                return Err("`benches` must not be empty".into());
            }
            out
        }
    };
    let engine = match str_field(&doc, "engine")?.as_deref() {
        None => Engine::default(),
        Some("uop") => Engine::Uop,
        Some("interp") => Engine::Interp,
        Some(other) => return Err(format!("unknown engine `{other}`")),
    };
    let plan = match str_field(&doc, "plan")? {
        None => None,
        Some(name) => {
            let seed = u64_field(&doc, "plan_seed")?.unwrap_or(2017);
            // Resolve now so a bad name fails the request at parse
            // time, not on a worker.
            FaultPlan::builtin(&name, seed)
                .ok_or_else(|| format!("unknown fault plan `{name}`"))?;
            Some((name, seed))
        }
    };
    Ok(Command::Submit(JobRequest {
        id,
        kind,
        configs,
        benches,
        engine,
        budget: match u64_field(&doc, "budget")? {
            Some(0) | None => None,
            Some(b) => Some(b),
        },
        plan,
        seed: u64_field(&doc, "seed")?.unwrap_or(2017),
        cases: u64_field(&doc, "cases")?.unwrap_or(8).clamp(1, 100_000) as usize,
        smoke: bool_field(&doc, "smoke")?.unwrap_or(true),
        samples: u64_field(&doc, "samples")?.unwrap_or(1).clamp(1, 1000) as usize,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_with_defaults_and_aliases() {
        let Command::Submit(r) = parse_request(r#"{"id":"a"}"#).unwrap() else {
            panic!("submit expected")
        };
        assert_eq!(r.kind, JobKind::Micro);
        assert_eq!(r.configs.len(), Config::all().len());
        assert_eq!(r.benches.len(), 4);
        assert!(r.is_full_default_grid());

        let Command::Submit(r) = parse_request(
            r#"{"id":"b","job":"micro","configs":["vm","ARM VM","x86-vm"],
               "benches":["ipi"],"engine":"interp","budget":500}"#,
        )
        .unwrap() else {
            panic!("submit expected")
        };
        assert_eq!(r.configs, vec![Config::ArmVm, Config::ArmVm, Config::X86Vm]);
        assert_eq!(r.benches, vec![Bench::VirtualIpi]);
        assert_eq!(r.budget, Some(500));
        assert!(!r.is_full_default_grid());

        assert_eq!(
            parse_request(r#"{"cmd":"cancel","id":"b"}"#).unwrap(),
            Command::Cancel("b".into())
        );
    }

    #[test]
    fn malformed_requests_are_structured_errors() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"job":"micro"}"#)
            .unwrap_err()
            .contains("id"));
        assert!(parse_request(r#"{"id":"x","job":"mystery"}"#)
            .unwrap_err()
            .contains("mystery"));
        assert!(parse_request(r#"{"id":"x","configs":["quantum"]}"#)
            .unwrap_err()
            .contains("quantum"));
        assert!(parse_request(r#"{"id":"x","plan":"nope"}"#)
            .unwrap_err()
            .contains("nope"));
        assert!(parse_request(r#"{"id":"x","configs":[]}"#).is_err());
    }

    #[test]
    fn cell_keys_are_content_addressed() {
        let Command::Submit(r) = parse_request(r#"{"id":"a","configs":["vm"]}"#).unwrap() else {
            panic!()
        };
        let Command::Submit(s) = parse_request(r#"{"id":"zzz","configs":["ARM VM"]}"#).unwrap()
        else {
            panic!()
        };
        // Same sweep under different request ids: identical keys (the
        // id is routing metadata, not content).
        let rc = r.cells(7).unwrap();
        let sc = s.cells(7).unwrap();
        assert_eq!(rc.len(), 4);
        assert_eq!(
            rc.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
            sc.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>()
        );
        // A different fingerprint, engine, or budget changes every key.
        assert_ne!(rc[0].0, r.cells(8).unwrap()[0].0);
        let mut rb = r.clone();
        rb.budget = Some(1000);
        assert_ne!(rc[0].0, rb.cells(7).unwrap()[0].0);
        let mut re = r.clone();
        re.engine = Engine::Interp;
        assert_ne!(rc[0].0, re.cells(7).unwrap()[0].0);
    }

    #[test]
    fn report_kinds_decompose_to_one_uncached_or_cached_cell() {
        let Command::Submit(r) =
            parse_request(r#"{"id":"f","job":"faults","seed":99,"smoke":true}"#).unwrap()
        else {
            panic!()
        };
        let cells = r.cells(7).unwrap();
        assert_eq!(cells.len(), 1);
        assert!(cells[0].1.cacheable());
        assert!(cells[0].0.params.contains("0x63"));

        let Command::Submit(b) = parse_request(r#"{"id":"t","job":"bench-sim"}"#).unwrap() else {
            panic!()
        };
        let cells = b.cells(7).unwrap();
        assert_eq!(cells.len(), 1);
        assert!(
            !cells[0].1.cacheable(),
            "wall-clock results must not be cached"
        );
    }
}
