//! Execution-based workload replay — the cross-check for the Figure 2
//! model.
//!
//! The analytical model in [`crate::apps`] prices each virtualization
//! event from the microbenchmark matrix. Replay instead *runs* a mixed
//! transaction loop (computation + hypercalls + device reads) through
//! the full simulated stack and measures end-to-end cycles, which
//! catches anything the per-event pricing would miss (per-transition
//! state interactions, warm-up effects, TLB behaviour).
//!
//! `replay_vs_model` returns both numbers so tests can assert the model
//! is faithful for the event mixes Figure 2 is built from.

use crate::platforms::{Config, MicroMatrix};
use neve_kvmarm::{ArmConfig, MicroBench, ParaMode, TestBed};

/// A replayed transaction mix.
#[derive(Debug, Clone, Copy)]
pub struct Mix {
    /// Computation per transaction (cycles).
    pub work: u16,
    /// Hypercalls per transaction.
    pub hcs: u8,
    /// Device reads per transaction.
    pub ios: u8,
}

/// Outcome of one replay: measured overhead and the analytical
/// prediction for the same mix.
#[derive(Debug, Clone, Copy)]
pub struct ReplayResult {
    /// End-to-end measured overhead (virtualized cycles per transaction
    /// over event-free cycles per transaction).
    pub measured: f64,
    /// The [`crate::apps`]-style prediction from per-event costs.
    pub predicted: f64,
}

fn arm_config(c: Config) -> ArmConfig {
    match c {
        Config::ArmVm => ArmConfig::Vm,
        Config::ArmNestedV83 => ArmConfig::Nested {
            guest_vhe: false,
            neve: false,
            para: ParaMode::None,
        },
        Config::ArmNestedV83Vhe => ArmConfig::Nested {
            guest_vhe: true,
            neve: false,
            para: ParaMode::None,
        },
        Config::ArmNestedNeve => ArmConfig::Nested {
            guest_vhe: false,
            neve: true,
            para: ParaMode::None,
        },
        Config::ArmNestedNeveVhe => ArmConfig::Nested {
            guest_vhe: true,
            neve: true,
            para: ParaMode::None,
        },
        _ => panic!("replay covers the ARM configurations"),
    }
}

fn run_mix(cfg: ArmConfig, mix: Mix, iters: u64) -> u64 {
    let bench = MicroBench::Mixed {
        work: mix.work,
        hcs: mix.hcs,
        ios: mix.ios,
    };
    let mut tb = TestBed::new(cfg, bench, iters);
    tb.run(iters).cycles
}

/// Replays `mix` on `cfg` and compares against the analytical model.
///
/// The event-free baseline runs the *same* transaction loop with the
/// events stripped, on the same configuration — so loop overhead and
/// the guest-side instruction costs cancel, exactly as "native" cancels
/// in the paper's normalized figure.
pub fn replay_vs_model(cfg: Config, mix: Mix, m: &MicroMatrix) -> ReplayResult {
    let iters = 20;
    let ac = arm_config(cfg);
    let with_events = run_mix(ac, mix, iters);
    let baseline = run_mix(
        ac,
        Mix {
            work: mix.work,
            hcs: 0,
            ios: 0,
        },
        iters,
    );
    let measured = with_events as f64 / baseline as f64;

    let costs = m.costs(cfg);
    let predicted = 1.0
        + (mix.hcs as f64 * costs.hypercall.cycles as f64
            + mix.ios as f64 * costs.device_io.cycles as f64)
            / baseline as f64;
    ReplayResult {
        measured,
        predicted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn matrix() -> &'static MicroMatrix {
        static M: OnceLock<MicroMatrix> = OnceLock::new();
        M.get_or_init(MicroMatrix::measure)
    }

    /// The analytical model must agree with end-to-end execution within
    /// a few percent across architectures and event densities — the
    /// validity condition for regenerating Figure 2 from per-event
    /// costs.
    #[test]
    fn model_matches_execution_across_configs() {
        let mix = Mix {
            work: 20_000,
            hcs: 2,
            ios: 1,
        };
        for cfg in [
            Config::ArmVm,
            Config::ArmNestedV83,
            Config::ArmNestedNeve,
            Config::ArmNestedNeveVhe,
        ] {
            let r = replay_vs_model(cfg, mix, matrix());
            let err = (r.measured - r.predicted).abs() / r.measured;
            assert!(
                err < 0.05,
                "{cfg:?}: measured {:.3} vs predicted {:.3} ({:.1}% off)",
                r.measured,
                r.predicted,
                err * 100.0
            );
        }
    }

    #[test]
    fn denser_event_mixes_scale_linearly() {
        let m = matrix();
        let sparse = replay_vs_model(
            Config::ArmNestedNeve,
            Mix {
                work: 30_000,
                hcs: 1,
                ios: 0,
            },
            m,
        );
        let dense = replay_vs_model(
            Config::ArmNestedNeve,
            Mix {
                work: 30_000,
                hcs: 4,
                ios: 0,
            },
            m,
        );
        // 4x the events => ~4x the added overhead.
        let ratio = (dense.measured - 1.0) / (sparse.measured - 1.0);
        assert!((3.5..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn cpu_heavy_mix_has_tiny_overhead_even_nested() {
        // The kernbench/SPECjvm story, executed: plenty of computation
        // between events keeps even ARMv8.3 nesting tolerable.
        let r = replay_vs_model(
            Config::ArmNestedV83,
            Mix {
                work: 60_000,
                hcs: 0,
                ios: 1,
            },
            matrix(),
        );
        assert!(r.measured < 12.0, "{}", r.measured);
        let r2 = replay_vs_model(
            Config::ArmNestedNeve,
            Mix {
                work: 60_000,
                hcs: 0,
                ios: 1,
            },
            matrix(),
        );
        assert!(r2.measured < 3.0, "{}", r2.measured);
    }
}
