//! Host-side simulator throughput: steps/sec and ns/step per platform
//! configuration.
//!
//! Every paper artifact is bottlenecked by `Machine::step`, so this
//! module measures how fast the *host* retires simulated steps — the
//! evidence that the interpreter fast path pays. One sample runs all
//! four microbenchmarks of a configuration start-to-finish on fresh
//! testbeds (the same cells the evaluation matrix measures) and
//! divides retired machine steps by wall-clock time. Sampling and the
//! median/min/max summary come from the in-tree criterion shim.
//!
//! Unlike the cycle-accounting caches, wall-clock results are host
//! dependent and *not* deterministic; `results/bench_throughput.json`
//! is a report artifact (like `figure2.csv`), not a replay gate. The
//! simulated step counts, however, are deterministic and are asserted
//! identical across samples.

use crate::platforms::{arm_config, Config};
use crate::session::Bench;
use criterion::Criterion;
use neve_armv8::Engine;
use neve_json::JsonValue;
use neve_kvmarm::{guests, TestBed};
use neve_x86vt::testbed::{X86Config, X86TestBed};
use std::collections::BTreeMap;

/// Where the throughput report lives.
pub const BENCH_PATH: &str = "results/bench_throughput.json";

/// How the numbers in [`BENCH_PATH`] were obtained (recorded in the
/// JSON so the artifact is self-describing).
pub const METHODOLOGY: &str = "One sample = run all four microbenchmarks (hypercall, device_io, \
     virtual_ipi, virtual_eoi) of a configuration on freshly built \
     testbeds, warm-up plus measured iterations, exactly as the \
     evaluation matrix does; steps = machine steps retired across all \
     CPUs summed over the four cells (bit-identical across samples by \
     determinism), time = wall-clock per sample via the in-tree \
     criterion shim (one untimed warm-up sample, then `samples` timed \
     runs; median reported). steps_per_sec = steps * 1e9 / median_ns. \
     The baseline section was measured with the same harness at the \
     commit before the interpreter fast path (indexed fetch, \
     precomputed cost tables, micro-TLB, flat-array counters); the \
     current section is the working tree. speedup = current \
     steps_per_sec / baseline steps_per_sec. The scenarios section \
     measures event-wheel shapes that are not evaluation-matrix \
     configurations: bigsmp_idle_N runs an N-vCPU guest with one busy \
     core (hypercall loop) and N-1 cores parked in wfi on the event \
     wheel; steps = host steps retired by the wheel run loop, so idle \
     cores that cost host work show up directly as lost steps/sec.";

/// One configuration's measured throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfigThroughput {
    /// The configuration measured.
    pub config: Config,
    /// Simulated machine steps retired per sample (all four cells;
    /// deterministic, asserted identical across samples).
    pub steps: u64,
    /// Median wall-clock nanoseconds per sample.
    pub median_ns: u64,
    /// Fastest sample.
    pub min_ns: u64,
    /// Slowest sample.
    pub max_ns: u64,
    /// Timed samples (warm-up excluded).
    pub samples: usize,
}

impl ConfigThroughput {
    /// Host-side simulated steps per second (median sample).
    pub fn steps_per_sec(&self) -> f64 {
        if self.median_ns == 0 {
            return 0.0;
        }
        self.steps as f64 * 1e9 / self.median_ns as f64
    }

    /// Host nanoseconds per simulated step (median sample).
    pub fn ns_per_step(&self) -> f64 {
        if self.steps == 0 {
            return 0.0;
        }
        self.median_ns as f64 / self.steps as f64
    }
}

/// Runs every benchmark of `config` once on fresh testbeds and returns
/// the total machine steps retired.
///
/// # Panics
///
/// Panics if any cell faults — throughput is only meaningful on a
/// healthy tree, and the regular test suite gates cell health.
pub fn run_all_benches(config: Config) -> u64 {
    run_all_benches_with(config, Engine::default())
}

/// [`run_all_benches`] with an explicit step engine for the ARM cells
/// (`--engine` on the benchmark binaries). x86 configurations have no
/// micro-op engine and ignore the choice.
pub fn run_all_benches_with(config: Config, engine: Engine) -> u64 {
    let mut steps = 0u64;
    for bench in Bench::all() {
        let iters = bench.iters();
        match arm_config(config) {
            Some(ac) => {
                let mut tb = TestBed::new(ac, bench.arm(), iters);
                tb.m.set_engine(engine);
                tb.try_run_measured(iters)
                    .unwrap_or_else(|f| panic!("{:?}/{}: {f}", config, bench.label()));
                steps += tb.m.steps_retired();
            }
            None => {
                let xc = match config {
                    Config::X86Vm => X86Config::Vm,
                    _ => X86Config::Nested { shadowing: true },
                };
                let mut tb = X86TestBed::new(xc, bench.x86(), iters);
                tb.try_run_measured(iters)
                    .unwrap_or_else(|f| panic!("{:?}/{}: {f}", config, bench.label()));
                steps += tb.m.steps_retired();
            }
        }
    }
    steps
}

/// Measures one configuration's throughput with `samples` timed runs
/// (plus one untimed warm-up run).
///
/// # Panics
///
/// Panics if a cell faults or if the retired-step count varies across
/// samples (a determinism violation).
pub fn measure_config(c: &mut Criterion, config: Config, samples: usize) -> ConfigThroughput {
    measure_config_with(c, config, samples, Engine::default())
}

/// [`measure_config`] with an explicit step engine for the ARM cells.
pub fn measure_config_with(
    c: &mut Criterion,
    config: Config,
    samples: usize,
    engine: Engine,
) -> ConfigThroughput {
    c.sample_size(samples);
    let mut step_counts: Vec<u64> = Vec::new();
    let summary = c.measure(config.label(), |b| {
        b.iter(|| step_counts.push(run_all_benches_with(config, engine)));
    });
    let steps = step_counts[0];
    assert!(
        step_counts.iter().all(|&s| s == steps),
        "retired steps varied across samples for {config:?}: {step_counts:?}"
    );
    ConfigThroughput {
        config,
        steps,
        median_ns: summary.median.as_nanos() as u64,
        min_ns: summary.min.as_nanos() as u64,
        max_ns: summary.max.as_nanos() as u64,
        samples: summary.samples,
    }
}

/// Measures every configuration (table order).
pub fn measure_all(samples: usize) -> Vec<ConfigThroughput> {
    measure_all_with(samples, Engine::default())
}

/// [`measure_all`] with an explicit step engine for the ARM cells.
pub fn measure_all_with(samples: usize, engine: Engine) -> Vec<ConfigThroughput> {
    let mut c = Criterion::default();
    Config::all()
        .into_iter()
        .map(|config| measure_config_with(&mut c, config, samples, engine))
        .collect()
}

/// vCPU counts of the recorded `bigsmp_idle` scenarios. The pair is
/// the idle-core-cost axis: the guard asserts the 64-vCPU shape stays
/// within [`BIGSMP_IDLE_SPREAD`]x of the 8-vCPU shape in host
/// steps/sec, which only holds while parked cores are free.
pub const BIGSMP_IDLE_VCPUS: [usize; 2] = [8, 64];

/// Maximum tolerated fresh steps/sec ratio between the smallest and
/// largest `bigsmp_idle` shapes (the ISSUE acceptance bound: 64 mostly
/// idle vCPUs within 2x of 8).
pub const BIGSMP_IDLE_SPREAD: f64 = 2.0;

/// Busy-core hypercall iterations per `bigsmp_idle` sample — enough
/// work that building 56 extra vCPUs of testbed state does not
/// dominate the timing (the scenario measures run-loop cost, and the
/// idle-scaling bound only reflects it once stepping dominates).
pub const BIGSMP_IDLE_ITERS: u64 = 25_000;

/// Scenario label for an N-vCPU mostly-idle guest.
pub fn bigsmp_idle_label(vcpus: usize) -> String {
    format!("bigsmp_idle_{vcpus}")
}

/// One event-wheel scenario's measured throughput. Unlike
/// [`ConfigThroughput`] the subject is a named machine shape, not an
/// evaluation-matrix configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioThroughput {
    /// Scenario name (e.g. `bigsmp_idle_64`).
    pub label: String,
    /// Host steps retired by the wheel run loop per sample
    /// (deterministic, asserted identical across samples).
    pub steps: u64,
    /// Median wall-clock nanoseconds per sample.
    pub median_ns: u64,
    /// Fastest sample.
    pub min_ns: u64,
    /// Slowest sample.
    pub max_ns: u64,
    /// Timed samples (warm-up excluded).
    pub samples: usize,
}

impl ScenarioThroughput {
    /// Host steps per second (median sample).
    pub fn steps_per_sec(&self) -> f64 {
        if self.median_ns == 0 {
            return 0.0;
        }
        self.steps as f64 * 1e9 / self.median_ns as f64
    }

    /// Host steps per second of the fastest sample (what the guards
    /// compare — see [`guard_regressions`] on why best-case).
    pub fn best_steps_per_sec(&self) -> f64 {
        if self.min_ns == 0 {
            return 0.0;
        }
        self.steps as f64 * 1e9 / self.min_ns as f64
    }
}

/// Runs one `bigsmp_idle` sample: builds the N-vCPU one-busy-core
/// testbed and drains it on the event wheel until the busy core halts.
/// Returns the host steps the run loop retired.
///
/// # Panics
///
/// Panics if the wheel run faults — like the matrix cells, throughput
/// is only meaningful on a healthy tree.
pub fn run_bigsmp_idle(vcpus: usize) -> u64 {
    let mut tb = TestBed::new_bigsmp(vcpus, false, BIGSMP_IDLE_ITERS);
    tb.try_run_wheel(|m| m.core(0).halted == Some(guests::DONE))
        .unwrap_or_else(|f| panic!("bigsmp_idle_{vcpus}: {f}"))
}

/// Measures every recorded scenario with `samples` timed runs (plus
/// one untimed warm-up run each).
///
/// # Panics
///
/// Panics if a run faults or the retired-step count varies across
/// samples (a determinism violation).
pub fn measure_scenarios(samples: usize) -> Vec<ScenarioThroughput> {
    let mut c = Criterion::default();
    BIGSMP_IDLE_VCPUS
        .into_iter()
        .map(|vcpus| {
            let label = bigsmp_idle_label(vcpus);
            c.sample_size(samples);
            let mut step_counts: Vec<u64> = Vec::new();
            let summary = c.measure(&label, |b| {
                b.iter(|| step_counts.push(run_bigsmp_idle(vcpus)));
            });
            let steps = step_counts[0];
            assert!(
                step_counts.iter().all(|&s| s == steps),
                "retired steps varied across samples for {label}: {step_counts:?}"
            );
            ScenarioThroughput {
                label,
                steps,
                median_ns: summary.median.as_nanos() as u64,
                min_ns: summary.min.as_nanos() as u64,
                max_ns: summary.max.as_nanos() as u64,
                samples: summary.samples,
            }
        })
        .collect()
}

fn stats_to_json(stats: &[ConfigThroughput]) -> JsonValue {
    JsonValue::Object(
        stats
            .iter()
            .map(|s| {
                (
                    s.config.label().to_string(),
                    JsonValue::Object(vec![
                        ("steps".to_string(), JsonValue::Number(s.steps as f64)),
                        (
                            "median_ns".to_string(),
                            JsonValue::Number(s.median_ns as f64),
                        ),
                        ("min_ns".to_string(), JsonValue::Number(s.min_ns as f64)),
                        ("max_ns".to_string(), JsonValue::Number(s.max_ns as f64)),
                        ("samples".to_string(), JsonValue::Number(s.samples as f64)),
                        (
                            "steps_per_sec".to_string(),
                            JsonValue::Number(s.steps_per_sec()),
                        ),
                        (
                            "ns_per_step".to_string(),
                            JsonValue::Number(s.ns_per_step()),
                        ),
                    ]),
                )
            })
            .collect(),
    )
}

fn stats_from_json(v: &JsonValue) -> Option<Vec<ConfigThroughput>> {
    let JsonValue::Object(entries) = v else {
        return None;
    };
    let mut out = Vec::new();
    for (label, stat) in entries {
        let config = Config::from_label(label)?;
        let num = |key: &str| -> Option<f64> {
            match stat.get(key)? {
                JsonValue::Number(n) => Some(*n),
                _ => None,
            }
        };
        out.push(ConfigThroughput {
            config,
            steps: num("steps")? as u64,
            median_ns: num("median_ns")? as u64,
            min_ns: num("min_ns")? as u64,
            max_ns: num("max_ns")? as u64,
            samples: num("samples")? as usize,
        });
    }
    Some(out)
}

fn scenarios_to_json(stats: &[ScenarioThroughput]) -> JsonValue {
    JsonValue::Object(
        stats
            .iter()
            .map(|s| {
                (
                    s.label.clone(),
                    JsonValue::Object(vec![
                        ("steps".to_string(), JsonValue::Number(s.steps as f64)),
                        (
                            "median_ns".to_string(),
                            JsonValue::Number(s.median_ns as f64),
                        ),
                        ("min_ns".to_string(), JsonValue::Number(s.min_ns as f64)),
                        ("max_ns".to_string(), JsonValue::Number(s.max_ns as f64)),
                        ("samples".to_string(), JsonValue::Number(s.samples as f64)),
                        (
                            "steps_per_sec".to_string(),
                            JsonValue::Number(s.steps_per_sec()),
                        ),
                    ]),
                )
            })
            .collect(),
    )
}

fn scenarios_from_json(v: &JsonValue) -> Option<Vec<ScenarioThroughput>> {
    let JsonValue::Object(entries) = v else {
        return None;
    };
    let mut out = Vec::new();
    for (label, stat) in entries {
        let num = |key: &str| -> Option<f64> {
            match stat.get(key)? {
                JsonValue::Number(n) => Some(*n),
                _ => None,
            }
        };
        out.push(ScenarioThroughput {
            label: label.clone(),
            steps: num("steps")? as u64,
            median_ns: num("median_ns")? as u64,
            min_ns: num("min_ns")? as u64,
            max_ns: num("max_ns")? as u64,
            samples: num("samples")? as usize,
        });
    }
    Some(out)
}

/// Renders the report JSON. `baseline` is the pre-fast-path
/// measurement (recorded with `sim_throughput --record-baseline`);
/// when present, per-configuration speedups are included.
/// `scenarios` is the event-wheel scenario section (`bigsmp_idle_*`);
/// an empty slice omits it.
pub fn report_json_with_scenarios(
    current: &[ConfigThroughput],
    baseline: Option<&[ConfigThroughput]>,
    scenarios: &[ScenarioThroughput],
) -> String {
    report_json_inner(current, baseline, scenarios)
}

/// [`report_json_with_scenarios`] without a scenario section.
pub fn report_json(current: &[ConfigThroughput], baseline: Option<&[ConfigThroughput]>) -> String {
    report_json_inner(current, baseline, &[])
}

fn report_json_inner(
    current: &[ConfigThroughput],
    baseline: Option<&[ConfigThroughput]>,
    scenarios: &[ScenarioThroughput],
) -> String {
    let mut root: Vec<(String, JsonValue)> = vec![
        (
            "schema".to_string(),
            JsonValue::String("neve-bench-throughput-v1".to_string()),
        ),
        (
            "methodology".to_string(),
            JsonValue::String(METHODOLOGY.to_string()),
        ),
        (
            "fingerprint".to_string(),
            JsonValue::String(format!(
                "{:#018x}",
                neve_cycles::CostModel::default().fingerprint()
            )),
        ),
        ("current".to_string(), stats_to_json(current)),
    ];
    if let Some(base) = baseline {
        root.push(("baseline".to_string(), stats_to_json(base)));
        let by_config: BTreeMap<Config, &ConfigThroughput> =
            base.iter().map(|s| (s.config, s)).collect();
        let speedups: Vec<(String, JsonValue)> = current
            .iter()
            .filter_map(|cur| {
                let b = by_config.get(&cur.config)?;
                let b_sps = b.steps_per_sec();
                if b_sps == 0.0 {
                    return None;
                }
                Some((
                    cur.config.label().to_string(),
                    JsonValue::Number(cur.steps_per_sec() / b_sps),
                ))
            })
            .collect();
        root.push(("speedup".to_string(), JsonValue::Object(speedups)));
    }
    if !scenarios.is_empty() {
        root.push(("scenarios".to_string(), scenarios_to_json(scenarios)));
    }
    JsonValue::Object(root).pretty()
}

/// Maximum tolerated steps/sec regression for the CI guard, as a
/// fraction of the recorded value: the gate fails when throughput
/// drops below `1 - GUARD_TOLERANCE` of the recorded number.
pub const GUARD_TOLERANCE: f64 = 0.20;

/// The throughput-regression gate: compares a fresh measurement
/// against a recorded one and returns one line per configuration whose
/// fresh throughput fell more than [`GUARD_TOLERANCE`] below the
/// recorded median steps/sec. Configurations absent from the recorded
/// set are skipped (they have nothing to regress against).
///
/// The *fastest* fresh sample is compared, not the median: wall-clock
/// numbers are host dependent and a loaded CI machine produces slow
/// samples routinely. A best-case sample that is still 20% under the
/// recorded median means the tree itself got slower.
pub fn guard_regressions(fresh: &[ConfigThroughput], recorded: &[ConfigThroughput]) -> Vec<String> {
    let by_config: BTreeMap<Config, &ConfigThroughput> =
        recorded.iter().map(|s| (s.config, s)).collect();
    let mut bad = Vec::new();
    for f in fresh {
        let Some(r) = by_config.get(&f.config) else {
            continue;
        };
        let floor = r.steps_per_sec() * (1.0 - GUARD_TOLERANCE);
        let best = if f.min_ns == 0 {
            0.0
        } else {
            f.steps as f64 * 1e9 / f.min_ns as f64
        };
        if best < floor {
            bad.push(format!(
                "{}: best fresh sample {:.0} steps/s is more than {:.0}% below \
                 the recorded {:.0} steps/s",
                f.config.label(),
                best,
                GUARD_TOLERANCE * 100.0,
                r.steps_per_sec()
            ));
        }
    }
    bad
}

/// Reads a section (`"current"` or `"baseline"`) back from a report
/// file's text. Returns `None` if the text does not parse, the schema
/// is unknown, or the section is absent.
pub fn section_from_report(text: &str, section: &str) -> Option<Vec<ConfigThroughput>> {
    let root = neve_json::parse(text).ok()?;
    match root.get("schema")? {
        JsonValue::String(s) if s == "neve-bench-throughput-v1" => {}
        _ => return None,
    }
    stats_from_json(root.get(section)?)
}

/// Reads the `"scenarios"` section back from a report file's text.
/// Returns `None` if the text does not parse, the schema is unknown,
/// or the section is absent (reports recorded before the event-wheel
/// scheduler have none).
pub fn scenarios_from_report(text: &str) -> Option<Vec<ScenarioThroughput>> {
    let root = neve_json::parse(text).ok()?;
    match root.get("schema")? {
        JsonValue::String(s) if s == "neve-bench-throughput-v1" => {}
        _ => return None,
    }
    scenarios_from_json(root.get("scenarios")?)
}

/// The scenario half of the throughput gate: per-label 20% bands like
/// [`guard_regressions`], plus the idle-core scaling bound — the
/// largest fresh `bigsmp_idle` shape must stay within
/// [`BIGSMP_IDLE_SPREAD`]x of the smallest in host steps/sec. The
/// scaling bound compares two fresh samples against each other, so
/// host load cancels out and it holds (or fails) on any machine.
/// Scenarios absent from the recorded set are skipped.
pub fn guard_scenario_regressions(
    fresh: &[ScenarioThroughput],
    recorded: &[ScenarioThroughput],
) -> Vec<String> {
    let by_label: BTreeMap<&str, &ScenarioThroughput> =
        recorded.iter().map(|s| (s.label.as_str(), s)).collect();
    let mut bad = Vec::new();
    for f in fresh {
        let Some(r) = by_label.get(f.label.as_str()) else {
            continue;
        };
        let floor = r.steps_per_sec() * (1.0 - GUARD_TOLERANCE);
        if f.best_steps_per_sec() < floor {
            bad.push(format!(
                "{}: best fresh sample {:.0} steps/s is more than {:.0}% below \
                 the recorded {:.0} steps/s",
                f.label,
                f.best_steps_per_sec(),
                GUARD_TOLERANCE * 100.0,
                r.steps_per_sec()
            ));
        }
    }
    let [small, large] = BIGSMP_IDLE_VCPUS;
    let find = |v: usize| fresh.iter().find(|s| s.label == bigsmp_idle_label(v));
    if let (Some(s), Some(l)) = (find(small), find(large)) {
        let (s_sps, l_sps) = (s.best_steps_per_sec(), l.best_steps_per_sec());
        if l_sps * BIGSMP_IDLE_SPREAD < s_sps {
            bad.push(format!(
                "{}: {:.0} steps/s is more than {}x slower than {} at {:.0} \
                 steps/s — idle cores are costing host work again",
                l.label, l_sps, BIGSMP_IDLE_SPREAD, s.label, s_sps
            ));
        }
    }
    bad
}

/// The `--guard` gate's one-noise-retry policy, centralized so the
/// sample-selection rule is pinned by a unit test: a verdict is the
/// union of [`guard_regressions`] and [`guard_scenario_regressions`]
/// over **one attempt's samples alone**. A clean first attempt decides
/// immediately; a regressed first attempt is discarded wholesale and
/// the verdict is re-taken on the retry attempt by itself. Samples are
/// never merged across attempts — `--guard --samples N` always
/// compares exactly N clean samples, so a lucky fast sample inside a
/// discarded attempt cannot rescue a configuration that is slow in the
/// attempt that decides.
pub fn noise_retry_verdict(
    recorded: &[ConfigThroughput],
    recorded_scenarios: &[ScenarioThroughput],
    first: (&[ConfigThroughput], &[ScenarioThroughput]),
    retry: Option<(&[ConfigThroughput], &[ScenarioThroughput])>,
) -> Vec<String> {
    let verdict = |configs: &[ConfigThroughput], scen: &[ScenarioThroughput]| {
        let mut bad = guard_regressions(configs, recorded);
        bad.extend(guard_scenario_regressions(scen, recorded_scenarios));
        bad
    };
    let bad = verdict(first.0, first.1);
    if bad.is_empty() {
        return bad;
    }
    match retry {
        Some((configs, scen)) => verdict(configs, scen),
        None => bad,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_both_sections() {
        let cur = vec![ConfigThroughput {
            config: Config::ArmNestedV83,
            steps: 1_000_000,
            median_ns: 50_000_000,
            min_ns: 49_000_000,
            max_ns: 52_000_000,
            samples: 5,
        }];
        let base = vec![ConfigThroughput {
            config: Config::ArmNestedV83,
            steps: 1_000_000,
            median_ns: 150_000_000,
            min_ns: 149_000_000,
            max_ns: 152_000_000,
            samples: 5,
        }];
        let text = report_json(&cur, Some(&base));
        assert_eq!(section_from_report(&text, "current").unwrap(), cur);
        assert_eq!(section_from_report(&text, "baseline").unwrap(), base);
        // The speedup is the steps/sec ratio: 3x here.
        let root = neve_json::parse(&text).unwrap();
        match root.get("speedup").unwrap().get("ARMv8.3 Nested").unwrap() {
            JsonValue::Number(n) => assert!((n - 3.0).abs() < 1e-9),
            other => panic!("unexpected speedup value {other:?}"),
        }
    }

    #[test]
    fn steps_per_sec_is_consistent_with_ns_per_step() {
        let s = ConfigThroughput {
            config: Config::ArmVm,
            steps: 2_000,
            median_ns: 1_000_000,
            min_ns: 1,
            max_ns: 1,
            samples: 1,
        };
        assert!((s.steps_per_sec() - 2_000_000.0).abs() < 1e-6);
        assert!((s.ns_per_step() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn a_cell_run_retires_steps_deterministically() {
        let a = run_all_benches(Config::ArmVm);
        let b = run_all_benches(Config::ArmVm);
        assert!(a > 0);
        assert_eq!(a, b);
    }

    #[test]
    fn both_engines_retire_identical_step_counts() {
        let uop = run_all_benches_with(Config::ArmNestedV83, Engine::Uop);
        let interp = run_all_benches_with(Config::ArmNestedV83, Engine::Interp);
        assert_eq!(uop, interp, "engine choice changed simulated behaviour");
    }

    #[test]
    fn guard_passes_within_band_and_fails_beyond_it() {
        let rec = ConfigThroughput {
            config: Config::ArmNestedV83,
            steps: 1_000_000,
            median_ns: 100_000_000, // 10M steps/s recorded
            min_ns: 100_000_000,
            max_ns: 100_000_000,
            samples: 3,
        };
        // Best sample 9M steps/s: a 10% dip, inside the 20% band.
        let ok = ConfigThroughput {
            median_ns: 130_000_000,
            min_ns: 111_111_111,
            ..rec
        };
        assert_eq!(guard_regressions(&[ok], &[rec]), Vec::<String>::new());
        // Best sample 5M steps/s: a 50% regression, out of band.
        let slow = ConfigThroughput {
            median_ns: 220_000_000,
            min_ns: 200_000_000,
            ..rec
        };
        let bad = guard_regressions(&[slow], &[rec]);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("ARMv8.3 Nested"), "{bad:?}");
        // A config with no recorded counterpart is skipped.
        let other = ConfigThroughput {
            config: Config::ArmVm,
            ..slow
        };
        assert_eq!(guard_regressions(&[other], &[rec]), Vec::<String>::new());
    }

    /// Pins the retry sample-selection rule (the satellite bugfix): the
    /// decision always rests on exactly one attempt's N samples. The
    /// old behaviour min-merged both attempts, so a configuration slow
    /// in the retry was rescued by a fast first-attempt outlier —
    /// best-of-2N instead of best-of-N.
    #[test]
    fn noise_retry_judges_the_retry_attempt_alone() {
        let at = |config, min_ns| ConfigThroughput {
            config,
            steps: 1_000_000,
            median_ns: min_ns,
            min_ns,
            max_ns: min_ns,
            samples: 3,
        };
        // Recorded: both configs at 10M steps/s; the 20% floor is 8M.
        let recorded = vec![
            at(Config::ArmNestedV83, 100_000_000),
            at(Config::ArmNestedNeve, 100_000_000),
        ];
        let fast = 111_111_111; // 9M steps/s: inside the band
        let slow = 200_000_000; // 5M steps/s: far out of band
                                // First attempt: V83 slow (triggers the retry), NEVE fast.
        let first = vec![
            at(Config::ArmNestedV83, slow),
            at(Config::ArmNestedNeve, fast),
        ];
        // Retry: V83 recovered (it was host noise), NEVE now slow.
        let retry = vec![
            at(Config::ArmNestedV83, fast),
            at(Config::ArmNestedNeve, slow),
        ];

        // Without a retry the first attempt's verdict stands.
        let bad = noise_retry_verdict(&recorded, &[], (&first, &[]), None);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("ARMv8.3 Nested"), "{bad:?}");

        // With the retry, NEVE must fail: its fast first-attempt sample
        // is in a discarded attempt and cannot rescue it. (The old
        // min-merge passed both configs here.)
        let bad = noise_retry_verdict(&recorded, &[], (&first, &[]), Some((&retry, &[])));
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("NEVE Nested"), "{bad:?}");

        // A clean first attempt decides immediately; a retry attempt is
        // never consulted (and in practice never measured).
        let clean = vec![
            at(Config::ArmNestedV83, fast),
            at(Config::ArmNestedNeve, fast),
        ];
        let bad = noise_retry_verdict(&recorded, &[], (&clean, &[]), Some((&first, &[])));
        assert_eq!(bad, Vec::<String>::new());
    }

    fn scenario(label: &str, steps: u64, ns: u64) -> ScenarioThroughput {
        ScenarioThroughput {
            label: label.to_string(),
            steps,
            median_ns: ns,
            min_ns: ns,
            max_ns: ns,
            samples: 3,
        }
    }

    #[test]
    fn scenarios_roundtrip_through_the_report() {
        let cur = vec![ConfigThroughput {
            config: Config::ArmVm,
            steps: 1_000,
            median_ns: 1_000_000,
            min_ns: 900_000,
            max_ns: 1_100_000,
            samples: 3,
        }];
        let scen = vec![
            scenario("bigsmp_idle_8", 13_000, 1_000_000),
            scenario("bigsmp_idle_64", 13_056, 1_200_000),
        ];
        let text = report_json_with_scenarios(&cur, None, &scen);
        assert_eq!(scenarios_from_report(&text).unwrap(), scen);
        // The matrix sections are unaffected by the extra section.
        assert_eq!(section_from_report(&text, "current").unwrap(), cur);
        // A scenario-less report (the pre-wheel format) has no section.
        let old = report_json(&cur, None);
        assert!(scenarios_from_report(&old).is_none());
    }

    #[test]
    fn scenario_guard_flags_regressions_and_idle_scaling() {
        let rec = vec![
            scenario("bigsmp_idle_8", 13_000, 1_000_000),
            scenario("bigsmp_idle_64", 13_056, 1_200_000),
        ];
        // Fresh within band and within the 2x spread: clean.
        assert_eq!(guard_scenario_regressions(&rec, &rec), Vec::<String>::new());
        // 64-vCPU shape collapses to 3x slower than recorded *and* more
        // than 2x under the fresh 8-vCPU shape: both checks fire.
        let slow = vec![
            rec[0].clone(),
            scenario("bigsmp_idle_64", 13_056, 3_600_000),
        ];
        let bad = guard_scenario_regressions(&slow, &rec);
        assert_eq!(bad.len(), 2, "{bad:?}");
        assert!(bad[1].contains("idle cores"), "{bad:?}");
        // An unrecorded label is skipped by the band check but the
        // fresh-vs-fresh scaling bound still applies.
        let unrecorded = vec![
            rec[0].clone(),
            scenario("bigsmp_idle_64", 13_056, 3_600_000),
        ];
        let bad = guard_scenario_regressions(&unrecorded, &rec[..1]);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("idle cores"), "{bad:?}");
    }

    #[test]
    fn bigsmp_idle_runs_are_deterministic_and_mostly_free() {
        let a = run_bigsmp_idle(8);
        let b = run_bigsmp_idle(8);
        assert!(a > 0);
        assert_eq!(a, b);
        // The idle-core tax in host steps: exactly one step per extra
        // parked core for the whole run.
        let wide = run_bigsmp_idle(64);
        assert_eq!(wide, a + 56);
    }
}
