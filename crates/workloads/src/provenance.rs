//! One shared rendering of trap-provenance data.
//!
//! The per-kind trap totals and the per-phase cycle/trap attribution
//! appear in three places — the persistent results cache, `neve trace
//! --json`, and `dump_results`' JSON export — and a consumer should be
//! able to diff them directly. This module owns the schema (one
//! `trap_kinds` object plus one `phases` object of `{cycles, traps}`
//! records) and the text table the `trace` subcommand and `table7`
//! print, so the three cannot drift apart.

use crate::platforms::PhaseStat;
use neve_cycles::Phase;
use neve_json::JsonValue;
use std::collections::BTreeMap;

/// The provenance block of one measurement as JSON object fields:
/// `("trap_kinds", {...})` and `("phases", {label: {cycles, traps}})`.
/// Splice into a larger object with `Vec::extend`.
pub fn json_fields(
    trap_kinds: &BTreeMap<String, u64>,
    phases: &BTreeMap<String, PhaseStat>,
) -> [(String, JsonValue); 2] {
    let kinds = trap_kinds
        .iter()
        .map(|(k, v)| (k.clone(), JsonValue::from(*v)))
        .collect();
    let phases = phases
        .iter()
        .map(|(p, s)| {
            let body = JsonValue::Object(vec![
                ("cycles".into(), JsonValue::from(s.cycles)),
                ("traps".into(), JsonValue::from(s.traps)),
            ]);
            (p.clone(), body)
        })
        .collect();
    [
        ("trap_kinds".into(), JsonValue::Object(kinds)),
        ("phases".into(), JsonValue::Object(phases)),
    ]
}

/// Renders the per-phase breakdown as an aligned text table in
/// world-switch order (guest first, trap return last — not the
/// alphabetical map order), skipping phases with nothing attributed.
pub fn render_phases(phases: &BTreeMap<String, PhaseStat>) -> String {
    let total: u64 = phases.values().map(|s| s.cycles).sum();
    let mut out = format!(
        "{:<14} {:>14} {:>8} {:>7}\n",
        "phase", "cycles", "traps", "share"
    );
    for p in Phase::all() {
        let Some(s) = phases.get(p.label()) else {
            continue;
        };
        if s.cycles == 0 && s.traps == 0 {
            continue;
        }
        let share = if total == 0 {
            0.0
        } else {
            100.0 * s.cycles as f64 / total as f64
        };
        out.push_str(&format!(
            "{:<14} {:>14} {:>8} {:>6.1}%\n",
            p.label(),
            s.cycles,
            s.traps,
            share
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (BTreeMap<String, u64>, BTreeMap<String, PhaseStat>) {
        let kinds = BTreeMap::from([("Hvc".to_string(), 24u64), ("SysReg".to_string(), 80)]);
        let phases = BTreeMap::from([
            (
                "guest".to_string(),
                PhaseStat {
                    cycles: 9_000,
                    traps: 100,
                },
            ),
            (
                "eret_emul".to_string(),
                PhaseStat {
                    cycles: 1_000,
                    traps: 4,
                },
            ),
            ("vncr_refresh".to_string(), PhaseStat::default()),
        ]);
        (kinds, phases)
    }

    #[test]
    fn json_fields_follow_the_cache_schema() {
        let (kinds, phases) = sample();
        let [(k, kv), (p, pv)] = json_fields(&kinds, &phases);
        assert_eq!(k, "trap_kinds");
        assert_eq!(p, "phases");
        assert_eq!(kv.get("Hvc").unwrap().as_u64(), Some(24));
        let eret = pv.get("eret_emul").unwrap();
        assert_eq!(eret.get("cycles").unwrap().as_u64(), Some(1_000));
        assert_eq!(eret.get("traps").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn phase_table_is_in_switch_order_and_skips_empty() {
        let (_, phases) = sample();
        let s = render_phases(&phases);
        let guest = s.find("guest").unwrap();
        let eret = s.find("eret_emul").unwrap();
        assert!(guest < eret, "world-switch order, not alphabetical:\n{s}");
        assert!(!s.contains("vncr_refresh"), "empty phase printed:\n{s}");
        assert!(s.contains("90.0%"), "{s}");
    }
}
