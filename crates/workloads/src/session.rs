//! The session layer: one [`SimSession`] owns the full lifecycle of a
//! single (configuration, microbenchmark) evaluation cell — build the
//! testbed, run warm-up plus measured iterations, and report per-op
//! costs together with the trap breakdown (Table 7's observability
//! data).
//!
//! Sessions are self-contained owned values: every simulated machine
//! owns its memory, cores and cycle counter outright, so a session is
//! `Send` and the evaluation matrix can build sessions on one thread
//! and move them into scoped worker threads. Each cell's result depends
//! only on its own deterministic simulation, so a parallel evaluation
//! is bit-identical to a serial one.

use crate::platforms::{Config, PerOpSer};
use neve_armv8::{Engine, FaultPlan};
use neve_cycles::counter::Measured;
use neve_cycles::SimFault;
use neve_kvmarm::{MicroBench, TestBed};
use neve_x86vt::testbed::{X86Bench, X86Config, X86TestBed};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Renders a `catch_unwind`/`JoinHandle::join` panic payload as text.
/// `panic!` with a literal yields `&str`, with a format string yields
/// `String`; anything else (a `panic_any` value) is opaque. Shared by
/// every worker-join site in this crate so a panicking worker always
/// surfaces its message in the structured error instead of re-raising.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// A microbenchmark, platform-neutral (one row of Tables 1/6/7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Bench {
    /// VM -> hypervisor -> VM round trip.
    Hypercall,
    /// Emulated-device read.
    DeviceIo,
    /// Cross-vCPU virtual IPI.
    VirtualIpi,
    /// Trap-free virtual interrupt completion.
    VirtualEoi,
}

impl Bench {
    /// All benchmarks, table row order.
    pub fn all() -> [Bench; 4] {
        [
            Bench::Hypercall,
            Bench::DeviceIo,
            Bench::VirtualIpi,
            Bench::VirtualEoi,
        ]
    }

    /// Measured iterations (the simulator is deterministic, so small
    /// counts give exact steady-state averages; the IPI pair is the
    /// slowest cell and gets fewer).
    pub fn iters(self) -> u64 {
        match self {
            Bench::VirtualIpi => IPI_ITERS,
            _ => ITERS,
        }
    }

    /// Stable machine-readable label (CLI operands, JSON keys).
    pub fn label(self) -> &'static str {
        match self {
            Bench::Hypercall => "hypercall",
            Bench::DeviceIo => "device_io",
            Bench::VirtualIpi => "virtual_ipi",
            Bench::VirtualEoi => "virtual_eoi",
        }
    }

    /// The inverse of [`Bench::label`].
    pub fn from_label(label: &str) -> Option<Bench> {
        Bench::all().into_iter().find(|b| b.label() == label)
    }

    pub(crate) fn arm(self) -> MicroBench {
        match self {
            Bench::Hypercall => MicroBench::Hypercall,
            Bench::DeviceIo => MicroBench::DeviceIo,
            Bench::VirtualIpi => MicroBench::VirtualIpi,
            Bench::VirtualEoi => MicroBench::VirtualEoi,
        }
    }

    pub(crate) fn x86(self) -> X86Bench {
        match self {
            Bench::Hypercall => X86Bench::Hypercall,
            Bench::DeviceIo => X86Bench::DeviceIo,
            Bench::VirtualIpi => X86Bench::VirtualIpi,
            Bench::VirtualEoi => X86Bench::VirtualEoi,
        }
    }
}

const ITERS: u64 = 24;
const IPI_ITERS: u64 = 10;

/// The platform-specific half of a session.
enum Bed {
    Arm(Box<TestBed>),
    X86(Box<X86TestBed>),
}

/// One evaluation cell's full lifecycle: testbed construction through
/// trap-stats report. Owned and `Send`; built on any thread, runnable
/// on any other.
pub struct SimSession {
    config: Config,
    bench: Bench,
    iters: u64,
    bed: Bed,
}

/// What one session measured.
#[derive(Debug, Clone, PartialEq)]
pub struct CellMeasurement {
    /// The configuration the cell ran on.
    pub config: Config,
    /// The microbenchmark it ran.
    pub bench: Bench,
    /// Per-operation averages.
    pub per_op: PerOpSer,
    /// Traps by reason over the measured region (keys are the stable
    /// `TrapKind` debug names; absolute counts, not per-op).
    pub traps_by_kind: BTreeMap<String, u64>,
    /// Cycles by world-switch phase over the measured region (keys are
    /// [`Phase::label`](neve_cycles::Phase::label) names; absolute).
    pub cycles_by_phase: BTreeMap<String, u64>,
    /// Traps by the phase they interrupted (absolute counts; together
    /// with `traps_by_kind` this is the cell's full provenance).
    pub traps_by_phase: BTreeMap<String, u64>,
}

/// One evaluation cell's outcome: a clean measurement, or a contained
/// fault. A faulted cell never poisons its matrix — the other cells
/// measure normally and the failure is carried alongside the partial
/// results.
#[derive(Debug, Clone, PartialEq)]
pub enum CellResult {
    /// The cell ran to completion and measured cleanly.
    Ok(CellMeasurement),
    /// The cell crashed, stalled past its step budget, or panicked; the
    /// fault carries the diagnostic snapshot.
    Failed {
        /// The configuration the cell ran on.
        config: Config,
        /// The microbenchmark it ran.
        bench: Bench,
        /// What went wrong, with pc/EL/phase/trace context.
        fault: SimFault,
    },
}

impl CellResult {
    /// The cell's configuration, measured or not.
    pub fn config(&self) -> Config {
        match self {
            CellResult::Ok(m) => m.config,
            CellResult::Failed { config, .. } => *config,
        }
    }

    /// The cell's benchmark, measured or not.
    pub fn bench(&self) -> Bench {
        match self {
            CellResult::Ok(m) => m.bench,
            CellResult::Failed { bench, .. } => *bench,
        }
    }

    /// The measurement, if the cell completed cleanly.
    pub fn measurement(&self) -> Option<&CellMeasurement> {
        match self {
            CellResult::Ok(m) => Some(m),
            CellResult::Failed { .. } => None,
        }
    }

    /// The fault, if the cell failed.
    pub fn fault(&self) -> Option<&SimFault> {
        match self {
            CellResult::Ok(_) => None,
            CellResult::Failed { fault, .. } => Some(fault),
        }
    }

    /// Unwraps the measurement.
    ///
    /// # Panics
    ///
    /// Panics (with the fault's description) if the cell failed.
    pub fn expect_measured(self) -> CellMeasurement {
        match self {
            CellResult::Ok(m) => m,
            CellResult::Failed { fault, .. } => panic!("cell failed: {fault}"),
        }
    }
}

impl SimSession {
    /// Builds the full stack for one (configuration, benchmark) cell.
    /// Construction is cheap relative to measurement; the warm-up runs
    /// as part of [`SimSession::run`].
    pub fn new(config: Config, bench: Bench) -> Self {
        let iters = bench.iters();
        let bed = match crate::platforms::arm_config(config) {
            Some(ac) => Bed::Arm(Box::new(TestBed::new(ac, bench.arm(), iters))),
            None => {
                let xc = match config {
                    Config::X86Vm => X86Config::Vm,
                    _ => X86Config::Nested { shadowing: true },
                };
                Bed::X86(Box::new(X86TestBed::new(xc, bench.x86(), iters)))
            }
        };
        Self {
            config,
            bench,
            iters,
            bed,
        }
    }

    /// The cell's configuration.
    pub fn config(&self) -> Config {
        self.config
    }

    /// The cell's benchmark.
    pub fn bench(&self) -> Bench {
        self.bench
    }

    /// Attaches an execution trace to the simulated machine (ARM beds
    /// only; a no-op on x86, which has no trace ring). Pure
    /// observability: a traced session measures bit-identically to an
    /// untraced one — the determinism suite asserts this.
    pub fn attach_trace(&mut self, capacity: usize) {
        if let Bed::Arm(tb) = &mut self.bed {
            tb.m.attach_trace(capacity);
        }
    }

    /// Attaches a deterministic fault-injection plan (ARM beds only;
    /// the x86 side has no injection points and ignores the plan).
    pub fn attach_fault_plan(&mut self, plan: &FaultPlan) {
        if let Bed::Arm(tb) = &mut self.bed {
            tb.attach_fault_plan(plan.clone());
        }
    }

    /// Selects the execution engine (ARM beds only; the x86 testbed has
    /// a single interpreter and ignores the choice). Both engines are
    /// proven step- and cycle-identical, so this never changes what a
    /// cell measures — only how fast the host simulates it.
    pub fn set_engine(&mut self, engine: Engine) {
        if let Bed::Arm(tb) = &mut self.bed {
            tb.m.set_engine(engine);
        }
    }

    /// Overrides the run-loop step budget on either platform.
    pub fn set_step_budget(&mut self, budget: u64) {
        match &mut self.bed {
            Bed::Arm(tb) => {
                tb.set_step_budget(budget);
            }
            Bed::X86(tb) => {
                tb.set_step_budget(budget);
            }
        }
    }

    /// Runs warm-up plus measured iterations and reports the outcome.
    /// Consumes the session: the testbed's end state is not reusable
    /// for another measurement.
    ///
    /// Never panics and never hangs (the run loops are under a step
    /// budget): a crash, stall, or stray panic in the simulation stack
    /// becomes [`CellResult::Failed`] so a single bad cell cannot
    /// poison a parallel matrix measure.
    pub fn run(mut self) -> CellResult {
        let config = self.config;
        let bench = self.bench;
        let iters = self.iters;
        let outcome = catch_unwind(AssertUnwindSafe(move || match &mut self.bed {
            Bed::Arm(tb) => tb.try_run_measured(iters),
            Bed::X86(tb) => tb.try_run_measured(iters),
        }));
        let measured = match outcome {
            Ok(Ok(m)) => m,
            Ok(Err(fault)) => {
                return CellResult::Failed {
                    config,
                    bench,
                    fault,
                }
            }
            Err(payload) => {
                return CellResult::Failed {
                    config,
                    bench,
                    fault: SimFault::from_panic(panic_message(payload.as_ref())),
                };
            }
        };
        let Measured {
            per_op,
            traps_by_kind,
            cycles_by_phase,
            traps_by_phase,
        } = measured;
        CellResult::Ok(CellMeasurement {
            config,
            bench,
            per_op: per_op.into(),
            traps_by_kind: traps_by_kind
                .into_iter()
                .map(|(k, v)| (format!("{k:?}"), v))
                .collect(),
            cycles_by_phase: cycles_by_phase
                .into_iter()
                .map(|(p, v)| (p.label().to_string(), v))
                .collect(),
            traps_by_phase: traps_by_phase
                .into_iter()
                .map(|(p, v)| (p.label().to_string(), v))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tentpole's static guarantee: whole machines and testbeds can
    /// move across threads. These are compile-time assertions — if any
    /// component regresses to a non-`Send` sharing scheme (`Rc`,
    /// raw pointers), this test stops compiling.
    #[test]
    fn simulation_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<neve_armv8::machine::Machine>();
        assert_send::<neve_kvmarm::TestBed>();
        assert_send::<neve_x86vt::testbed::X86TestBed>();
        assert_send::<SimSession>();
        assert_send::<CellMeasurement>();
        assert_send::<CellResult>();
        assert_send::<crate::platforms::MicroMatrix>();
    }

    #[test]
    fn a_session_runs_one_cell() {
        let r = SimSession::new(Config::ArmVm, Bench::Hypercall)
            .run()
            .expect_measured();
        assert_eq!(r.config, Config::ArmVm);
        assert_eq!(r.bench, Bench::Hypercall);
        assert!(r.per_op.cycles > 0);
        // A single-level hypercall traps exactly once per iteration.
        assert!((r.per_op.traps - 1.0).abs() < 1e-9);
        let total: u64 = r.traps_by_kind.values().sum();
        assert!(total >= ITERS, "breakdown covers the measured region");
        assert!(r.traps_by_kind.contains_key("Hvc"), "{:?}", r.traps_by_kind);
    }

    #[test]
    fn sessions_move_across_threads() {
        // Build on the main thread, run on a worker — the pattern
        // measure_parallel relies on, exercised directly.
        let s = SimSession::new(Config::X86Vm, Bench::DeviceIo);
        let r = std::thread::scope(|scope| scope.spawn(move || s.run()).join().unwrap());
        assert!(r.expect_measured().per_op.cycles > 0);
    }

    #[test]
    fn nested_cells_attribute_cycles_and_traps_to_phases() {
        let r = SimSession::new(Config::ArmNestedV83, Bench::Hypercall)
            .run()
            .expect_measured();
        // The nested hypercall round trip exercises the world switch:
        // the eret emulation and EL1 context moves must show up.
        for phase in ["eret_emul", "el1_save", "el1_restore", "gic_switch"] {
            assert!(
                r.cycles_by_phase.get(phase).copied().unwrap_or(0) > 0,
                "no cycles in {phase}: {:?}",
                r.cycles_by_phase
            );
        }
        // Phase attribution partitions the same trap population the
        // per-kind map counts.
        let by_kind: u64 = r.traps_by_kind.values().sum();
        let by_phase: u64 = r.traps_by_phase.values().sum();
        assert_eq!(by_kind, by_phase);
    }

    #[test]
    fn tracing_does_not_change_a_cell() {
        // The tentpole's hard invariant at session granularity.
        let plain = SimSession::new(Config::ArmNestedNeve, Bench::Hypercall)
            .run()
            .expect_measured();
        let mut traced = SimSession::new(Config::ArmNestedNeve, Bench::Hypercall);
        traced.attach_trace(128);
        assert_eq!(traced.run().expect_measured(), plain);
    }

    #[test]
    fn eoi_cells_report_zero_traps() {
        // Virtual EOI is the trap-free row of Table 7 on both platforms.
        for config in [Config::ArmVm, Config::X86Vm] {
            let r = SimSession::new(config, Bench::VirtualEoi)
                .run()
                .expect_measured();
            assert_eq!(r.per_op.traps, 0.0, "{config:?}");
            assert!(r.traps_by_kind.is_empty(), "{config:?}");
        }
    }

    #[test]
    fn a_tiny_step_budget_fails_the_cell_instead_of_hanging() {
        let mut s = SimSession::new(Config::ArmNestedV83, Bench::Hypercall);
        s.set_step_budget(100);
        match s.run() {
            CellResult::Failed { config, fault, .. } => {
                assert_eq!(config, Config::ArmNestedV83);
                assert!(
                    matches!(
                        fault.cause,
                        neve_cycles::FaultCause::StepBudgetExhausted { budget: 100 }
                    ),
                    "{fault}"
                );
            }
            CellResult::Ok(_) => panic!("100 steps cannot complete a nested hypercall cell"),
        }
    }

    #[test]
    fn an_injected_fault_is_contained_in_the_cell_result() {
        // The chaos plan fires every fault kind early in the run; the
        // cell must end in a structured result either way — and the
        // same seed must reproduce the same outcome bit-for-bit.
        let run_once = || {
            let mut s = SimSession::new(Config::ArmNestedV83, Bench::Hypercall);
            s.attach_fault_plan(&FaultPlan::builtin("chaos", 7).unwrap());
            s.set_step_budget(2_000_000);
            s.run()
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b, "fault injection must replay bit-identically");
    }
}
