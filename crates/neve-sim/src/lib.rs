//! # neve-sim — NEVE: Nested Virtualization Extensions for ARM
//!
//! A full-system reproduction of *NEVE: Nested Virtualization Extensions
//! for ARM* (Lim, Dall, Li, Nieh, Zyngier — SOSP 2017): a cycle-accounted
//! ARMv8 system simulator with nested-virtualization support
//! (ARMv8.3-NV semantics and the paper's NEVE extension, adopted as
//! ARMv8.4-NV2), a miniature KVM/ARM hypervisor stack running on it, an
//! x86/VT-x comparator, and the workload models that regenerate every
//! table and figure of the paper's evaluation.
//!
//! ## Crate map
//!
//! | module | underlying crate | contents |
//! |---|---|---|
//! | [`neve`] | `neve-core` | **the contribution**: `VNCR_EL2`, the deferred access page, the access-rewriting engine |
//! | [`sysreg`] | `neve-sysreg` | system registers + the paper's Tables 3/4/5 classification |
//! | [`cycles`] | `neve-cycles` | cost model + cycle/trap accounting |
//! | [`memsim`] | `neve-memsim` | physical memory, Stage-1/2 tables, shadow Stage-2, TLB |
//! | [`gic`] | `neve-gic` | interrupt controller with virtualization support |
//! | [`vtimer`] | `neve-vtimer` | generic timers |
//! | [`armv8`] | `neve-armv8` | the CPU/machine model and interpreted ISA |
//! | [`kvmarm`] | `neve-kvmarm` | host hypervisor, guest-hypervisor builder, test bed |
//! | [`x86vt`] | `neve-x86vt` | the VT-x comparator |
//! | [`workloads`] | `neve-workloads` | Tables 1/6/7 and Figure 2 generators |
//!
//! ## Quickstart
//!
//! ```
//! use neve_sim::kvmarm::{ArmConfig, MicroBench, ParaMode, TestBed};
//!
//! // Run the hypercall microbenchmark in a nested VM under a NEVE
//! // guest hypervisor (paper Table 6's "NEVE Nested" column).
//! let cfg = ArmConfig::Nested { guest_vhe: false, neve: true, para: ParaMode::None };
//! let mut tb = TestBed::new(cfg, MicroBench::Hypercall, 10);
//! let per_op = tb.run(10);
//! assert!(per_op.traps < 20.0); // paper: 15 traps
//! ```

pub use neve_armv8 as armv8;
pub use neve_core as neve;
pub use neve_cycles as cycles;
pub use neve_gic as gic;
pub use neve_kvmarm as kvmarm;
pub use neve_memsim as memsim;
pub use neve_sysreg as sysreg;
pub use neve_vtimer as vtimer;
pub use neve_workloads as workloads;
pub use neve_x86vt as x86vt;

/// Frequently-used items.
pub mod prelude {
    pub use neve_armv8::{ArchLevel, Machine, MachineConfig};
    pub use neve_core::{DeferredAccessPage, Disposition, NeveEngine, VncrEl2};
    pub use neve_cycles::{CostModel, CycleCounter, TrapKind};
    pub use neve_kvmarm::{ArmConfig, MicroBench, ParaMode, TestBed};
    pub use neve_sysreg::{RegId, SysReg};
    pub use neve_workloads::platforms::{Config, MicroMatrix};
    pub use neve_x86vt::testbed::{X86Bench, X86Config, X86TestBed};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reaches_every_layer() {
        use crate::prelude::*;
        let _ = ArchLevel::V8_4;
        let _ = VncrEl2::disabled();
        let _ = CostModel::default();
        let _ = SysReg::HcrEl2;
        assert!(ArchLevel::V8_4.has_nv2());
    }
}
