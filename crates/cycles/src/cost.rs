//! Calibrated cycle costs for simulated hardware primitives.
//!
//! Every constant in this module is documented with its provenance:
//! either a measurement reported by the NEVE paper (Section 5), a
//! publicly known order of magnitude for the primitive, or a calibration
//! chosen so that the end-to-end microbenchmarks land in the paper's
//! reported bands (Tables 1 and 6). Calibrated values are marked
//! `CALIBRATED`; they are inputs to the model, not results.

use crate::Event;

/// Cycle costs of ARM hardware primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArmCosts {
    /// Taking a trap from EL1 (or EL0) into EL2.
    ///
    /// The paper measured 68-76 cycles across system-register access
    /// instructions and `hvc` on ARMv8.0 Applied Micro Atlas hardware
    /// (Section 5); we use the midpoint.
    pub trap_el1_to_el2: u64,
    /// Returning from EL2 back to EL1 via `eret`.
    ///
    /// Measured at 65 cycles in the paper (Section 5).
    pub trap_return: u64,
    /// Exception entry targeting EL1 (an `svc`, or the hardware part of an
    /// exception the host hypervisor *emulates* into virtual EL2).
    /// CALIBRATED: same order as an EL2 trap, slightly cheaper because no
    /// stage change of translation regime occurs.
    pub el1_exception_entry: u64,
    /// `eret` executed at EL1/EL2 without trapping.
    pub eret_native: u64,
    /// An untrapped `mrs` (system register read).
    pub sysreg_read: u64,
    /// An untrapped `msr` (system register write). System register writes
    /// are serialising on most implementations and cost more than reads.
    pub sysreg_write: u64,
    /// A generic ALU/branch/move instruction.
    pub instr: u64,
    /// A data load hitting the (unmodelled) cache.
    pub mem_load: u64,
    /// A data store.
    pub mem_store: u64,
    /// `isb`/`dsb` barrier.
    pub barrier: u64,
    /// One level of a hardware page-table walk (TLB miss path).
    pub page_walk_level: u64,
    /// A `tlbi` invalidation.
    pub tlb_flush: u64,
    /// A GIC CPU-interface operation completed in hardware without a trap
    /// (e.g. virtual EOI; Table 1/6 report 71 cycles for Virtual EOI on
    /// ARM, which is exactly this primitive plus a few instructions).
    pub direct_irq_op: u64,
}

impl Default for ArmCosts {
    fn default() -> Self {
        Self {
            trap_el1_to_el2: 72,
            trap_return: 65,
            el1_exception_entry: 48,
            eret_native: 40,
            sysreg_read: 6,
            sysreg_write: 9,
            instr: 1,
            mem_load: 4,
            mem_store: 4,
            barrier: 18,
            page_walk_level: 20,
            tlb_flush: 45,
            direct_irq_op: 60,
        }
    }
}

/// Cycle costs of x86 (Intel VT-x) hardware primitives.
///
/// The structural difference from ARM that the paper leans on (Section 2)
/// is that a VM exit/entry on x86 saves and restores guest state to the
/// in-memory VMCS *in hardware* as part of one expensive transition, where
/// ARM leaves state transfer to software as many cheap instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct X86Costs {
    /// The non-root -> root transition, *excluding* the VMCS hardware
    /// save (charged separately so ablations can vary it).
    /// CALIBRATED so that a single-level hypercall lands near the paper's
    /// 1,188 cycles for an x86 VM (Table 1).
    pub vmexit_transition: u64,
    /// The root -> non-root transition, excluding the VMCS hardware load.
    pub vmentry_transition: u64,
    /// Hardware save of guest state into the VMCS on exit.
    pub vmcs_hw_save: u64,
    /// Hardware load of guest state from the VMCS on entry.
    pub vmcs_hw_load: u64,
    /// A `vmread` executed in root mode (or in non-root mode with VMCS
    /// shadowing): microcoded VMCS field access.
    pub vmread: u64,
    /// A `vmwrite` executed in root mode (or shadowed).
    pub vmwrite: u64,
    /// Generic instruction.
    pub instr: u64,
    /// Data load / store.
    pub mem_load: u64,
    /// Data store.
    pub mem_store: u64,
    /// APICv virtual EOI completed without an exit. Table 1 reports 316
    /// cycles for x86 Virtual EOI.
    pub direct_irq_op: u64,
}

impl Default for X86Costs {
    fn default() -> Self {
        Self {
            vmexit_transition: 280,
            vmentry_transition: 240,
            vmcs_hw_save: 180,
            vmcs_hw_load: 160,
            vmread: 28,
            vmwrite: 32,
            instr: 1,
            mem_load: 4,
            mem_store: 4,
            direct_irq_op: 300,
        }
    }
}

/// Cycle costs of modelled *software* paths inside the hypervisors.
///
/// The host hypervisor in this reproduction is native Rust; its C-code
/// equivalents (exit dispatch, emulation logic, scheduler glue) are charged
/// as lump sums. These are all CALIBRATED against the single-level VM rows
/// of Table 1, then held fixed while the nested configurations are measured
/// - mirroring how the paper holds hardware fixed across configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoftwareCosts {
    /// KVM/ARM exit path boilerplate: vector entry, GPR save, exit-reason
    /// decode (`handle_exit`), before any specific handler runs.
    pub kvm_arm_exit_common: u64,
    /// KVM/ARM re-entry path boilerplate: final checks, GPR restore.
    pub kvm_arm_enter_common: u64,
    /// Specific-handler dispatch and vcpu bookkeeping for a trivial trap
    /// (e.g. recording a hypercall result).
    pub kvm_arm_handler_simple: u64,
    /// Emulating one trapped system-register access (decode ESR, look up
    /// the register, update the shadow vcpu context).
    pub kvm_arm_sysreg_emul: u64,
    /// Constructing/forwarding an exception into virtual EL2 (nested exit
    /// reflection, Section 4).
    pub kvm_arm_vel2_inject: u64,
    /// Switching Stage-2 translation to/from the shadow page tables for a
    /// nested VM entry/exit.
    pub kvm_arm_shadow_s2_switch: u64,
    /// Emulating a trapped `eret` from the guest hypervisor: loading the
    /// nested VM's virtual EL1 state into hardware (Section 4).
    pub kvm_arm_eret_emul: u64,
    /// Emulating one MMIO device access (the Device I/O microbenchmark's
    /// device model).
    pub kvm_arm_mmio_emul: u64,
    /// Virtual interrupt injection: programming one GIC list register and
    /// the associated bookkeeping.
    pub kvm_arm_virq_inject: u64,
    /// KVM x86 exit boilerplate.
    pub kvm_x86_exit_common: u64,
    /// KVM x86 entry boilerplate.
    pub kvm_x86_enter_common: u64,
    /// KVM x86 simple handler.
    pub kvm_x86_handler_simple: u64,
    /// KVM x86: merging vmcs12 into vmcs02 for a nested VM entry
    /// (Turtles-style), excluding the individual vmread/vmwrites which are
    /// charged per access.
    pub kvm_x86_vmcs_merge: u64,
    /// KVM x86: reflecting an exit from L2 into L1 (copying exit fields
    /// from vmcs02 to vmcs12).
    pub kvm_x86_exit_reflect: u64,
    /// KVM x86: emulating one MMIO access.
    pub kvm_x86_mmio_emul: u64,
    /// KVM x86: emulating one privileged VMX/MSR operation from the L1
    /// guest hypervisor (`invept`, MSR dance) — the per-switch exits
    /// that remain even with VMCS shadowing.
    pub kvm_x86_vmx_op_emul: u64,
    /// KVM x86: injecting a virtual interrupt.
    pub kvm_x86_virq_inject: u64,
}

impl Default for SoftwareCosts {
    fn default() -> Self {
        Self {
            kvm_arm_exit_common: 950,
            kvm_arm_enter_common: 850,
            kvm_arm_handler_simple: 260,
            kvm_arm_sysreg_emul: 900,
            kvm_arm_vel2_inject: 2400,
            kvm_arm_shadow_s2_switch: 1300,
            kvm_arm_eret_emul: 2600,
            kvm_arm_mmio_emul: 900,
            kvm_arm_virq_inject: 600,
            kvm_x86_exit_common: 180,
            kvm_x86_enter_common: 150,
            kvm_x86_handler_simple: 100,
            kvm_x86_vmcs_merge: 7500,
            kvm_x86_exit_reflect: 6500,
            kvm_x86_mmio_emul: 650,
            kvm_x86_vmx_op_emul: 900,
            kvm_x86_virq_inject: 380,
        }
    }
}

/// The complete cost model used by a simulated machine.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CostModel {
    /// ARM hardware primitive costs.
    pub arm: ArmCosts,
    /// x86 hardware primitive costs.
    pub x86: X86Costs,
    /// Hypervisor software path costs.
    pub sw: SoftwareCosts,
}

impl CostModel {
    /// A stable fingerprint over every cost constant (FNV-1a).
    ///
    /// Persistent result caches are keyed by this value: any change to
    /// any calibrated constant changes the fingerprint and invalidates
    /// cached measurements, so stale numbers can never be mistaken for
    /// fresh ones.
    pub fn fingerprint(&self) -> u64 {
        let a = &self.arm;
        let x = &self.x86;
        let s = &self.sw;
        let fields = [
            a.trap_el1_to_el2,
            a.trap_return,
            a.el1_exception_entry,
            a.eret_native,
            a.sysreg_read,
            a.sysreg_write,
            a.instr,
            a.mem_load,
            a.mem_store,
            a.barrier,
            a.page_walk_level,
            a.tlb_flush,
            a.direct_irq_op,
            x.vmexit_transition,
            x.vmentry_transition,
            x.vmcs_hw_save,
            x.vmcs_hw_load,
            x.vmread,
            x.vmwrite,
            x.instr,
            x.mem_load,
            x.mem_store,
            x.direct_irq_op,
            s.kvm_arm_exit_common,
            s.kvm_arm_enter_common,
            s.kvm_arm_handler_simple,
            s.kvm_arm_sysreg_emul,
            s.kvm_arm_vel2_inject,
            s.kvm_arm_shadow_s2_switch,
            s.kvm_arm_eret_emul,
            s.kvm_arm_mmio_emul,
            s.kvm_arm_virq_inject,
            s.kvm_x86_exit_common,
            s.kvm_x86_enter_common,
            s.kvm_x86_handler_simple,
            s.kvm_x86_vmcs_merge,
            s.kvm_x86_exit_reflect,
            s.kvm_x86_mmio_emul,
            s.kvm_x86_vmx_op_emul,
            s.kvm_x86_virq_inject,
        ];
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for f in fields {
            for byte in f.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// Returns the ARM-side cost of `event`.
    ///
    /// [`Event::SoftwareWork`] has no intrinsic cost; callers charge
    /// explicit cycles for it and this function returns 0.
    pub fn arm_cost(&self, event: Event) -> u64 {
        match event {
            Event::Instr => self.arm.instr,
            Event::SysRegRead => self.arm.sysreg_read,
            Event::SysRegWrite => self.arm.sysreg_write,
            Event::MemLoad => self.arm.mem_load,
            Event::MemStore => self.arm.mem_store,
            Event::TrapEnter => self.arm.trap_el1_to_el2,
            Event::TrapReturn => self.arm.trap_return,
            Event::El1ExceptionEntry => self.arm.el1_exception_entry,
            Event::EretNative => self.arm.eret_native,
            Event::Barrier => self.arm.barrier,
            Event::PageWalkLevel => self.arm.page_walk_level,
            Event::TlbFlush => self.arm.tlb_flush,
            Event::DirectIrqOp => self.arm.direct_irq_op,
            Event::SoftwareWork => 0,
            // The x86-only events cost nothing on an ARM machine; they are
            // never emitted there, but a total function keeps call sites
            // simple.
            Event::VmcsHwSave | Event::VmcsHwLoad | Event::VmRead | Event::VmWrite => 0,
        }
    }

    /// Returns the x86-side cost of `event`.
    pub fn x86_cost(&self, event: Event) -> u64 {
        match event {
            Event::Instr => self.x86.instr,
            Event::MemLoad => self.x86.mem_load,
            Event::MemStore => self.x86.mem_store,
            Event::TrapEnter => self.x86.vmexit_transition,
            Event::TrapReturn => self.x86.vmentry_transition,
            Event::VmcsHwSave => self.x86.vmcs_hw_save,
            Event::VmcsHwLoad => self.x86.vmcs_hw_load,
            Event::VmRead => self.x86.vmread,
            Event::VmWrite => self.x86.vmwrite,
            Event::DirectIrqOp => self.x86.direct_irq_op,
            Event::SoftwareWork => 0,
            // ARM-only events never occur on the x86 model.
            Event::SysRegRead
            | Event::SysRegWrite
            | Event::El1ExceptionEntry
            | Event::EretNative
            | Event::Barrier
            | Event::PageWalkLevel
            | Event::TlbFlush => 0,
        }
    }
}

/// A [`CostModel`] resolved into a flat per-[`Event`] array for one
/// platform: the interpreter's per-step fast path indexes this table
/// instead of re-running the `arm_cost`/`x86_cost` match seven times
/// per instruction.
///
/// The table is *definitionally* equivalent to the match functions —
/// it is built by evaluating them over [`Event::all`] — so a charge
/// through the table is the same `u64` a direct call would produce,
/// and cycle accounting stays bit-identical. The builder records the
/// source model's [`CostModel::fingerprint`]; machines re-check it at
/// run boundaries and rebuild on any cost change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostTable {
    costs: [u64; Event::COUNT],
    fingerprint: u64,
}

impl CostTable {
    /// Resolves the ARM-side costs of `model`.
    pub fn arm(model: &CostModel) -> Self {
        Self::build(model, |m, e| m.arm_cost(e))
    }

    /// Resolves the x86-side costs of `model`.
    pub fn x86(model: &CostModel) -> Self {
        Self::build(model, |m, e| m.x86_cost(e))
    }

    fn build(model: &CostModel, f: impl Fn(&CostModel, Event) -> u64) -> Self {
        let mut costs = [0u64; Event::COUNT];
        for e in Event::all() {
            costs[e.index()] = f(model, e);
        }
        Self {
            costs,
            fingerprint: model.fingerprint(),
        }
    }

    /// The cost of `event` (a single array load).
    #[inline]
    pub fn cost(&self, event: Event) -> u64 {
        self.costs[event.index()]
    }

    /// The fingerprint of the model this table was built from; stale
    /// when it differs from the live model's.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// True when this table still reflects `model`.
    pub fn matches(&self, model: &CostModel) -> bool {
        self.fingerprint == model.fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_table_agrees_with_the_match_functions_for_every_event() {
        // The fast path's correctness argument in one assertion: the
        // table is the match function, memoized.
        let mut model = CostModel::default();
        model.arm.page_walk_level += 3; // not just the default model
        let arm = CostTable::arm(&model);
        let x86 = CostTable::x86(&model);
        for e in Event::all() {
            assert_eq!(arm.cost(e), model.arm_cost(e), "{e:?}");
            assert_eq!(x86.cost(e), model.x86_cost(e), "{e:?}");
        }
    }

    #[test]
    fn cost_table_staleness_follows_the_fingerprint() {
        let model = CostModel::default();
        let table = CostTable::arm(&model);
        assert!(table.matches(&model));
        assert_eq!(table.fingerprint(), model.fingerprint());
        let mut changed = model.clone();
        changed.arm.instr += 1;
        assert!(!table.matches(&changed));
        assert!(CostTable::arm(&changed).matches(&changed));
    }

    #[test]
    fn default_trap_cost_is_in_papers_measured_band() {
        let c = ArmCosts::default();
        assert!((68..=76).contains(&c.trap_el1_to_el2));
        assert_eq!(c.trap_return, 65);
    }

    #[test]
    fn arm_round_trip_trap_cost_matches_section_5() {
        // Section 5: trapping EL1 -> EL2 and returning costs roughly
        // 72 + 65 cycles before any handler work.
        let m = CostModel::default();
        let rt = m.arm_cost(Event::TrapEnter) + m.arm_cost(Event::TrapReturn);
        assert!((130..=145).contains(&rt), "round trip {rt}");
    }

    #[test]
    fn software_work_has_no_intrinsic_cost() {
        let m = CostModel::default();
        assert_eq!(m.arm_cost(Event::SoftwareWork), 0);
        assert_eq!(m.x86_cost(Event::SoftwareWork), 0);
    }

    #[test]
    fn x86_exit_is_much_more_expensive_than_arm_trap() {
        // The structural premise of the paper's Section 2 comparison.
        let m = CostModel::default();
        let x86_exit = m.x86_cost(Event::TrapEnter) + m.x86_cost(Event::VmcsHwSave);
        assert!(x86_exit > 4 * m.arm_cost(Event::TrapEnter));
    }

    #[test]
    fn cost_model_clone_preserves_equality() {
        let m = CostModel::default();
        let m2 = m.clone();
        assert_eq!(m, m2);
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = CostModel::default();
        let b = CostModel::default();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = CostModel::default();
        c.arm.trap_el1_to_el2 += 1;
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = CostModel::default();
        d.sw.kvm_x86_virq_inject += 1;
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_field_positions() {
        // Swapping two equal-looking perturbations across different
        // fields must not collide (position matters in the hash).
        let mut a = CostModel::default();
        a.arm.mem_load += 1;
        let mut b = CostModel::default();
        b.arm.mem_store += 1;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
