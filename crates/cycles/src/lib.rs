//! Cycle accounting and calibrated cost model for the NEVE simulator.
//!
//! The NEVE paper ("NEVE: Nested Virtualization Extensions for ARM",
//! SOSP '17) evaluates architecture changes by counting *traps* and the
//! *cycles* spent in each part of the virtualization stack. Because this
//! reproduction runs on a simulator rather than Applied Micro Atlas or Xeon
//! silicon, every hardware-visible operation is charged against a
//! [`CostModel`] whose constants are documented and, where the paper reports
//! a measurement, calibrated to it (Section 5 of the paper measured traps
//! from EL1 to EL2 at 68-76 cycles and trap returns at 65 cycles).
//!
//! The crate provides:
//!
//! - [`CostModel`]: named cycle costs for ARM and x86 primitives.
//! - [`CycleCounter`]: an accumulator shared by every component of a
//!   simulated machine, with per-event statistics.
//! - [`TrapKind`] / [`Event`]: classification of what happened, so that the
//!   Table 7 trap-count reproduction can break down *why* the hypervisor was
//!   entered.

pub mod cost;
pub mod counter;
pub mod fault;
pub mod sched;

pub use cost::{ArmCosts, CostModel, CostTable, SoftwareCosts, X86Costs};
pub use counter::{CounterSnapshot, CycleCounter, Delta, Measured};
pub use fault::{FaultCause, SimFault};
pub use sched::{EventKey, Rank, Waker, Wheel};

/// Classification of a trap (exception taken to a hypervisor).
///
/// Trap counts per microbenchmark iteration are the core quantity behind the
/// paper's Table 7; keeping the reason lets the harness explain *where* the
/// exit multiplication comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrapKind {
    /// `hvc` issued by software at EL1 (a hypercall, or a paravirtualized
    /// hypervisor instruction on ARMv8.0 per Section 3 of the paper).
    Hvc,
    /// `smc` issued at EL1 and trapped by `HCR_EL2.TSC`.
    Smc,
    /// A system-register access trapped to EL2 (MSR/MRS).
    SysReg,
    /// An `eret` executed at EL1 trapped by the nested-virtualization
    /// support (`HCR_EL2.NV`).
    Eret,
    /// A Stage-2 translation fault (used for MMIO emulation and shadow
    /// page-table construction).
    Stage2Abort,
    /// A Stage-1 abort forwarded to the hypervisor while `HCR_EL2.TGE` is
    /// set.
    Stage1Abort,
    /// A physical interrupt routed to EL2 (`HCR_EL2.IMO`).
    Irq,
    /// `wfi`/`wfe` trapped by `HCR_EL2.TWI`/`TWE`.
    Wfx,
    /// `svc` routed to EL2 by `HCR_EL2.TGE` (hosted-mode syscalls).
    Svc,
    /// x86: a `vmcall` from non-root mode.
    VmCall,
    /// x86: `vmread`/`vmwrite` executed in non-root mode without VMCS
    /// shadowing.
    VmcsAccess,
    /// x86: `vmlaunch`/`vmresume` executed in non-root mode.
    VmEntryInstr,
    /// x86: other privileged VMX instruction (`vmptrld`, `invept`, ...).
    VmxOther,
    /// x86: external interrupt exit.
    ExtInt,
    /// x86: I/O port or MMIO (EPT violation) exit.
    IoAccess,
    /// x86: APIC access / interrupt-window exit.
    ApicAccess,
}

impl TrapKind {
    /// Number of trap kinds (flat-array sizing).
    pub const COUNT: usize = 16;

    /// Every kind, declaration (= `Ord`) order.
    pub fn all() -> [TrapKind; Self::COUNT] {
        [
            TrapKind::Hvc,
            TrapKind::Smc,
            TrapKind::SysReg,
            TrapKind::Eret,
            TrapKind::Stage2Abort,
            TrapKind::Stage1Abort,
            TrapKind::Irq,
            TrapKind::Wfx,
            TrapKind::Svc,
            TrapKind::VmCall,
            TrapKind::VmcsAccess,
            TrapKind::VmEntryInstr,
            TrapKind::VmxOther,
            TrapKind::ExtInt,
            TrapKind::IoAccess,
            TrapKind::ApicAccess,
        ]
    }

    /// Dense index in `0..COUNT` (declaration order; the counter's
    /// flat arrays are indexed by this).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }
}

/// A world-switch phase: which part of the virtualization stack the
/// machine is currently executing on behalf of.
///
/// The counter attributes every charged cycle and every recorded trap to
/// the phase active at the time, giving the per-phase anatomy of a
/// nested world switch that Section 5 of the paper narrates in prose.
/// Phase bookkeeping is always on (it is pure accounting and never
/// feeds back into costs), so attaching a trace cannot perturb the
/// measured numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Phase {
    /// Guest/payload instructions (any interpreted EL0/EL1 code,
    /// including deprivileged guest hypervisors). The default.
    #[default]
    Guest,
    /// Hardware exception entry into EL2.
    TrapEntry,
    /// Host-hypervisor software outside any finer-grained phase
    /// (exit decode, handler dispatch, the host-kernel round trip).
    HostSw,
    /// EL1 context save (hardware EL1 leaves for the stage or the
    /// virtual-EL2 image).
    El1Save,
    /// EL1 context restore (staged or virtual-EL2 state enters
    /// hardware EL1).
    El1Restore,
    /// GIC hypervisor-interface save/restore (list registers, VMCR).
    GicSwitch,
    /// Timer context save/restore.
    TimerSwitch,
    /// Trapped system-register emulation for the guest hypervisor.
    SysRegEmul,
    /// Trapped-`eret` emulation: the nested world switch proper.
    EretEmul,
    /// NEVE deferred-access-page maintenance (populate/harvest).
    VncrRefresh,
    /// Hardware `eret` from EL2 back to the guest.
    TrapReturn,
    /// Simulated idle time: the event-wheel run loop jumping the clock
    /// over a window in which every core was parked (WFI/halted). No
    /// instruction executes during these cycles; keeping them in their
    /// own phase lets consolidation workloads separate "the host did
    /// work" from "simulated time passed".
    Idle,
}

impl Phase {
    /// Number of phases (flat-array sizing).
    pub const COUNT: usize = 12;

    /// Dense index in `0..COUNT` (declaration order, which matches
    /// [`Phase::all`]'s world-switch order).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Every phase, in world-switch order.
    pub fn all() -> [Phase; 12] {
        [
            Phase::Guest,
            Phase::TrapEntry,
            Phase::HostSw,
            Phase::El1Save,
            Phase::El1Restore,
            Phase::GicSwitch,
            Phase::TimerSwitch,
            Phase::SysRegEmul,
            Phase::EretEmul,
            Phase::VncrRefresh,
            Phase::TrapReturn,
            Phase::Idle,
        ]
    }

    /// Stable machine-readable label (JSON keys, cache schema).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Guest => "guest",
            Phase::TrapEntry => "trap_entry",
            Phase::HostSw => "host_sw",
            Phase::El1Save => "el1_save",
            Phase::El1Restore => "el1_restore",
            Phase::GicSwitch => "gic_switch",
            Phase::TimerSwitch => "timer_switch",
            Phase::SysRegEmul => "sysreg_emul",
            Phase::EretEmul => "eret_emul",
            Phase::VncrRefresh => "vncr_refresh",
            Phase::TrapReturn => "trap_return",
            Phase::Idle => "idle",
        }
    }

    /// The inverse of [`Phase::label`].
    pub fn from_label(label: &str) -> Option<Phase> {
        Phase::all().into_iter().find(|p| p.label() == label)
    }
}

/// A cost-bearing event, charged against a [`CycleCounter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Event {
    /// A generic interpreted instruction (ALU, branch, move).
    Instr,
    /// An untrapped system-register read.
    SysRegRead,
    /// An untrapped system-register write.
    SysRegWrite,
    /// A data memory load.
    MemLoad,
    /// A data memory store.
    MemStore,
    /// A trap from a lower exception level into the hypervisor
    /// (EL1 -> EL2 on ARM; a VM exit on x86).
    TrapEnter,
    /// Return from the hypervisor to the lower level (`eret` from EL2, VM
    /// entry on x86).
    TrapReturn,
    /// An exception delivered within/into EL1 (e.g. an emulated virtual EL2
    /// exception entry, or an `svc`).
    El1ExceptionEntry,
    /// An `eret` executed natively (not trapped).
    EretNative,
    /// Barrier instruction (`isb`/`dsb`).
    Barrier,
    /// One level of a page-table walk.
    PageWalkLevel,
    /// A TLB invalidation operation.
    TlbFlush,
    /// Generic software work cycles (modelled C-code paths in a
    /// hypervisor); carries no own constant, the caller provides cycles.
    SoftwareWork,
    /// x86: hardware VMCS state save on VM exit.
    VmcsHwSave,
    /// x86: hardware VMCS state load on VM entry.
    VmcsHwLoad,
    /// x86: a `vmread` satisfied without a VM exit.
    VmRead,
    /// x86: a `vmwrite` satisfied without a VM exit.
    VmWrite,
    /// Interrupt delivery through the (virtual) interrupt controller
    /// without hypervisor involvement (e.g. virtual EOI, Table 1/6's only
    /// trap-free row).
    DirectIrqOp,
}

impl Event {
    /// Number of events (sizes the precomputed cost table and the
    /// counter's flat per-event array).
    pub const COUNT: usize = 18;

    /// Every event, declaration (= `Ord`) order.
    pub fn all() -> [Event; Self::COUNT] {
        [
            Event::Instr,
            Event::SysRegRead,
            Event::SysRegWrite,
            Event::MemLoad,
            Event::MemStore,
            Event::TrapEnter,
            Event::TrapReturn,
            Event::El1ExceptionEntry,
            Event::EretNative,
            Event::Barrier,
            Event::PageWalkLevel,
            Event::TlbFlush,
            Event::SoftwareWork,
            Event::VmcsHwSave,
            Event::VmcsHwLoad,
            Event::VmRead,
            Event::VmWrite,
            Event::DirectIrqOp,
        ]
    }

    /// Dense index in `0..COUNT` (declaration order).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_labels_round_trip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for p in Phase::all() {
            assert!(seen.insert(p.label()), "duplicate label {}", p.label());
            assert_eq!(Phase::from_label(p.label()), Some(p));
        }
        assert_eq!(Phase::from_label("warp_drive"), None);
        assert_eq!(Phase::default(), Phase::Guest);
    }

    #[test]
    fn dense_indices_are_bijective() {
        // The flat-array fast paths depend on `index()` enumerating
        // 0..COUNT exactly once, in `all()` order.
        for (i, e) in Event::all().into_iter().enumerate() {
            assert_eq!(e.index(), i);
        }
        for (i, k) in TrapKind::all().into_iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        for (i, p) in Phase::all().into_iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn trap_kinds_are_ordered_and_hashable() {
        let mut v = vec![TrapKind::SysReg, TrapKind::Hvc, TrapKind::Eret];
        v.sort();
        assert_eq!(v[0], TrapKind::Hvc);
        let set: std::collections::HashSet<_> = v.into_iter().collect();
        assert_eq!(set.len(), 3);
    }
}
