//! Structured simulation faults.
//!
//! The testbed run loops used to `panic!` on any unexpected step
//! outcome and spin without a bound, so one
//! divergent guest-hypervisor configuration aborted (or hung) the whole
//! parallel evaluation matrix. A [`SimFault`] replaces those panics with
//! a structured error that carries a diagnostic snapshot — program
//! counter, exception level, the world-switch [`Phase`] the machine was
//! in, how many steps had retired, and the last few rendered events from
//! the provenance ring — so a faulted cell can be reported, cached, and
//! rendered instead of poisoning the measurement.
//!
//! The type lives in `cycles` because both machine backends (`kvmarm`
//! and `x86vt`) depend on this crate and on nothing of each other.

use crate::Phase;

/// Why a simulated benchmark run could not produce a measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultCause {
    /// The run loop hit its step-budget watchdog: the guest stack never
    /// reached the completion hypercall within `budget` machine steps.
    StepBudgetExhausted {
        /// The budget that was exhausted.
        budget: u64,
    },
    /// The payload halted with an exit code other than the expected
    /// completion code (a guest-visible crash).
    PayloadCrash {
        /// The halt code the payload reported.
        code: u16,
    },
    /// The machine stopped in a way the benchmark protocol does not
    /// allow (an unexpected `wfi`, a fetch failure, a stopped IPI
    /// receiver). The detail string is deterministic.
    UnexpectedStop {
        /// Deterministic human-readable description.
        detail: String,
    },
    /// The run completed but the warm-up snapshot was never taken, so
    /// there is no measurement interval to report.
    MissedSnapshot,
    /// The EOI bracket counter retired fewer operations than the
    /// benchmark needs for a per-op figure.
    EoiShortfall {
        /// Operations the protocol expected to observe.
        expected: u64,
        /// Operations actually observed.
        seen: u64,
    },
    /// A panic escaped the simulation stack and was caught at the
    /// session boundary (a harness bug surfaced by fault injection
    /// rather than a modelled guest failure).
    HarnessPanic {
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl std::fmt::Display for FaultCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultCause::StepBudgetExhausted { budget } => {
                write!(f, "step budget of {budget} exhausted")
            }
            FaultCause::PayloadCrash { code } => {
                write!(f, "payload crashed with halt code {code:#x}")
            }
            FaultCause::UnexpectedStop { detail } => write!(f, "{detail}"),
            FaultCause::MissedSnapshot => write!(f, "warm-up snapshot never taken"),
            FaultCause::EoiShortfall { expected, seen } => {
                write!(
                    f,
                    "EOI bracket shortfall: expected {expected} ops, saw {seen}"
                )
            }
            FaultCause::HarnessPanic { message } => write!(f, "harness panic: {message}"),
        }
    }
}

/// A structured simulation failure with a diagnostic snapshot.
///
/// Every field is deterministic for a deterministic run, so a campaign
/// report that embeds rendered faults replays byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct SimFault {
    /// What went wrong.
    pub cause: FaultCause,
    /// Program counter of the faulting CPU when the run was abandoned.
    pub pc: u64,
    /// Exception level of the faulting CPU.
    pub el: u8,
    /// World-switch phase the cycle counter was attributing to.
    pub phase: Phase,
    /// Machine steps retired in the run loop before the fault.
    pub steps: u64,
    /// The last few rendered events from the provenance ring (empty
    /// when no trace was attached).
    pub recent_events: Vec<String>,
}

impl SimFault {
    /// Wraps a caught panic payload as a fault with no machine snapshot
    /// (the machine was torn down by the unwind).
    pub fn from_panic(message: String) -> Self {
        SimFault {
            cause: FaultCause::HarnessPanic { message },
            pc: 0,
            el: 0,
            phase: Phase::Guest,
            steps: 0,
            recent_events: Vec::new(),
        }
    }

    /// One-line deterministic description for reports and cache files.
    pub fn describe(&self) -> String {
        format!(
            "{} (pc={:#x} EL{} phase={} steps={})",
            self.cause,
            self.pc,
            self.el,
            self.phase.label(),
            self.steps
        )
    }
}

impl std::fmt::Display for SimFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.describe())?;
        if !self.recent_events.is_empty() {
            writeln!(f, "last {} trace events:", self.recent_events.len())?;
            for line in &self.recent_events {
                writeln!(f, "  {line}")?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for SimFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_is_one_line_and_mentions_the_snapshot() {
        let f = SimFault {
            cause: FaultCause::StepBudgetExhausted { budget: 1000 },
            pc: 0x8_0040,
            el: 2,
            phase: Phase::EretEmul,
            steps: 1000,
            recent_events: vec!["ev1".into(), "ev2".into()],
        };
        let d = f.describe();
        assert!(!d.contains('\n'));
        assert!(d.contains("step budget of 1000"));
        assert!(d.contains("EL2"));
        assert!(d.contains("eret_emul"));
        let full = f.to_string();
        assert!(full.contains("ev2"));
    }

    #[test]
    fn panic_faults_carry_the_message() {
        let f = SimFault::from_panic("index out of bounds".into());
        assert!(f.describe().contains("harness panic: index out of bounds"));
    }

    #[test]
    fn causes_render_distinctly() {
        let causes = [
            FaultCause::StepBudgetExhausted { budget: 7 },
            FaultCause::PayloadCrash { code: 0xdead },
            FaultCause::UnexpectedStop {
                detail: "unexpected wfi".into(),
            },
            FaultCause::MissedSnapshot,
            FaultCause::EoiShortfall {
                expected: 24,
                seen: 3,
            },
            FaultCause::HarnessPanic {
                message: "boom".into(),
            },
        ];
        let rendered: std::collections::HashSet<String> =
            causes.iter().map(|c| c.to_string()).collect();
        assert_eq!(rendered.len(), causes.len());
    }
}
