//! The cycle counter shared by all components of a simulated machine.

use crate::{Event, Phase, TrapKind};
use std::collections::BTreeMap;

/// Accumulates cycles and event statistics for one simulated machine.
///
/// The machine owns its counter directly and components receive it by
/// `&mut` (one machine is single-threaded, so no sharing is needed, and
/// the owned design keeps whole machines `Send` — evaluation harnesses
/// move complete testbeds across worker threads). Benchmarks snapshot
/// the counter around a measured region and report the [`Delta`].
///
/// Internally every breakdown is a flat array indexed by the enums'
/// dense `index()` — a charge is two array adds, not a `BTreeMap`
/// entry walk (the counter sits on the interpreter's per-instruction
/// path). The reporting API still hands out `BTreeMap`s with only the
/// non-zero keys, exactly as the map-backed counter did, so snapshots,
/// deltas and every serialized artifact are bit-identical.
#[derive(Debug, Default, Clone)]
pub struct CycleCounter {
    cycles: u64,
    events: [u64; Event::COUNT],
    traps: [u64; TrapKind::COUNT],
    traps_total: u64,
    /// Cycles attributed to hypervisor software paths (subset of `cycles`).
    software_cycles: u64,
    /// The world-switch phase currently charged (provenance layer).
    phase: Phase,
    /// Cycles by phase (every charged cycle lands in exactly one phase).
    phase_cycles: [u64; Phase::COUNT],
    /// Traps by the phase that was active when they were taken.
    phase_traps: [u64; Phase::COUNT],
}

/// A point-in-time copy of the counters, used to compute per-region
/// deltas. Plain-old-data arrays: snapshotting is a memcpy, so the
/// benchmarks that snapshot per iteration (the EOI bracket) stay cheap.
#[derive(Debug, Clone, Default)]
pub struct CounterSnapshot {
    cycles: u64,
    traps_total: u64,
    traps: [u64; TrapKind::COUNT],
    events: [u64; Event::COUNT],
    phase_cycles: [u64; Phase::COUNT],
    phase_traps: [u64; Phase::COUNT],
}

/// The difference between two snapshots: what one measured region cost.
#[derive(Debug, Clone, Default)]
pub struct Delta {
    /// Cycles elapsed in the region.
    pub cycles: u64,
    /// Traps (hypervisor entries) in the region.
    pub traps: u64,
    /// Trap breakdown by reason.
    pub traps_by_kind: BTreeMap<TrapKind, u64>,
    /// Event breakdown.
    pub events: BTreeMap<Event, u64>,
    /// Cycle breakdown by world-switch phase.
    pub cycles_by_phase: BTreeMap<Phase, u64>,
    /// Trap breakdown by the phase active when each was taken.
    pub traps_by_phase: BTreeMap<Phase, u64>,
}

impl CycleCounter {
    /// Creates a counter at cycle zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total cycles accumulated so far. Also serves as the machine's
    /// monotonic clock (the timer crate derives counter values from it).
    #[inline]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Cycles charged through [`CycleCounter::charge_software`].
    pub fn software_cycles(&self) -> u64 {
        self.software_cycles
    }

    /// The world-switch phase subsequent charges are attributed to.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Sets the active phase, returning the previous one so callers can
    /// scope an attribution region and restore the outer phase after.
    pub fn set_phase(&mut self, phase: Phase) -> Phase {
        std::mem::replace(&mut self.phase, phase)
    }

    /// Cycles attributed to `phase` so far.
    pub fn cycles_in(&self, phase: Phase) -> u64 {
        self.phase_cycles[phase.index()]
    }

    /// Traps taken while `phase` was active.
    pub fn traps_in(&self, phase: Phase) -> u64 {
        self.phase_traps[phase.index()]
    }

    #[inline]
    fn add_cycles(&mut self, cycles: u64) {
        self.cycles = self.cycles.saturating_add(cycles);
        let slot = &mut self.phase_cycles[self.phase.index()];
        *slot = slot.saturating_add(cycles);
    }

    /// Charges `cycles` for `event` (the caller computed the cost from the
    /// [`crate::CostModel`]; the counter stays model-agnostic).
    #[inline]
    pub fn charge(&mut self, event: Event, cycles: u64) {
        self.add_cycles(cycles);
        self.events[event.index()] += 1;
    }

    /// Charges `n` occurrences of `event` at `cycles_each`. Saturates
    /// rather than overflowing: adversarial cost/iteration combinations
    /// (proptest streams) must never panic the counter.
    pub fn charge_n(&mut self, event: Event, cycles_each: u64, n: u64) {
        self.add_cycles(cycles_each.saturating_mul(n));
        let slot = &mut self.events[event.index()];
        *slot = slot.saturating_add(n);
    }

    /// Charges lump-sum software work (a modelled C-code path).
    #[inline]
    pub fn charge_software(&mut self, cycles: u64) {
        self.add_cycles(cycles);
        self.software_cycles = self.software_cycles.saturating_add(cycles);
        self.events[Event::SoftwareWork.index()] += 1;
    }

    /// Records a trap of `kind`. Cost is charged separately via
    /// [`CycleCounter::charge`] with [`Event::TrapEnter`].
    #[inline]
    pub fn record_trap(&mut self, kind: TrapKind) {
        self.traps[kind.index()] += 1;
        self.traps_total += 1;
        self.phase_traps[self.phase.index()] += 1;
    }

    /// Advances the clock without attributing cost to an event (used for
    /// idle time / modelled waiting).
    #[inline]
    pub fn advance(&mut self, cycles: u64) {
        self.add_cycles(cycles);
    }

    /// Total number of traps recorded.
    pub fn traps_total(&self) -> u64 {
        self.traps_total
    }

    /// Number of traps of a given kind.
    pub fn traps_of(&self, kind: TrapKind) -> u64 {
        self.traps[kind.index()]
    }

    /// Number of occurrences of an event.
    pub fn events_of(&self, event: Event) -> u64 {
        self.events[event.index()]
    }

    /// Takes a snapshot for later delta computation.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            cycles: self.cycles,
            traps_total: self.traps_total,
            traps: self.traps,
            events: self.events,
            phase_cycles: self.phase_cycles,
            phase_traps: self.phase_traps,
        }
    }

    /// Computes what happened since `snap`. Saturating: if the counter
    /// was [`CycleCounter::reset`] after the snapshot was taken, every
    /// component clamps to zero instead of underflowing.
    ///
    /// The reported maps carry only keys whose count grew — the same
    /// sparse shape the map-backed counter produced, so downstream
    /// serialization is unchanged.
    pub fn delta_since(&self, snap: &CounterSnapshot) -> Delta {
        fn diff<K: Ord + Copy, const N: usize>(
            keys: [K; N],
            now: &[u64; N],
            before: &[u64; N],
        ) -> BTreeMap<K, u64> {
            let mut out = BTreeMap::new();
            for (i, k) in keys.into_iter().enumerate() {
                if now[i] > before[i] {
                    out.insert(k, now[i] - before[i]);
                }
            }
            out
        }
        Delta {
            cycles: self.cycles.saturating_sub(snap.cycles),
            traps: self.traps_total.saturating_sub(snap.traps_total),
            traps_by_kind: diff(TrapKind::all(), &self.traps, &snap.traps),
            events: diff(Event::all(), &self.events, &snap.events),
            cycles_by_phase: diff(Phase::all(), &self.phase_cycles, &snap.phase_cycles),
            traps_by_phase: diff(Phase::all(), &self.phase_traps, &snap.phase_traps),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl Delta {
    /// Divides the delta by `n` iterations, rounding to nearest, producing
    /// per-operation averages (how the paper reports Tables 1, 6 and 7).
    pub fn per_op(&self, n: u64) -> PerOp {
        assert!(n > 0, "per_op requires at least one iteration");
        PerOp {
            // Saturating: a region that already clamped at u64::MAX must
            // not panic on the round-to-nearest add.
            cycles: self.cycles.saturating_add(n / 2) / n,
            traps: self.traps as f64 / n as f64,
        }
    }

    /// Folds another measured region into this one (used by benchmarks
    /// that bracket many small regions, e.g. the EOI pair). Saturating,
    /// like every other counter path: a region already clamped at
    /// `u64::MAX` must fold without overflowing (debug builds panic on
    /// wrapping `+=`).
    pub fn accumulate(&mut self, other: &Delta) {
        fn fold<K: Ord + Copy>(into: &mut BTreeMap<K, u64>, from: &BTreeMap<K, u64>) {
            for (k, v) in from {
                let slot = into.entry(*k).or_insert(0);
                *slot = slot.saturating_add(*v);
            }
        }
        self.cycles = self.cycles.saturating_add(other.cycles);
        self.traps = self.traps.saturating_add(other.traps);
        fold(&mut self.traps_by_kind, &other.traps_by_kind);
        fold(&mut self.events, &other.events);
        fold(&mut self.cycles_by_phase, &other.cycles_by_phase);
        fold(&mut self.traps_by_phase, &other.traps_by_phase);
    }

    /// Per-operation averages plus the absolute trap and phase
    /// breakdowns of the region (the Table 7 observability data and the
    /// Section 5 world-switch anatomy).
    pub fn measured(&self, n: u64) -> Measured {
        Measured {
            per_op: self.per_op(n),
            traps_by_kind: self.traps_by_kind.clone(),
            cycles_by_phase: self.cycles_by_phase.clone(),
            traps_by_phase: self.traps_by_phase.clone(),
        }
    }
}

/// A benchmark region's per-operation averages together with its trap
/// breakdown by reason (absolute counts over the measured iterations).
#[derive(Debug, Clone, PartialEq)]
pub struct Measured {
    /// Per-operation averages.
    pub per_op: PerOp,
    /// Traps by reason over the whole measured region.
    pub traps_by_kind: BTreeMap<TrapKind, u64>,
    /// Cycles by world-switch phase over the whole measured region.
    pub cycles_by_phase: BTreeMap<Phase, u64>,
    /// Traps by the phase active when they were taken.
    pub traps_by_phase: BTreeMap<Phase, u64>,
}

/// Per-operation averages over a measured region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerOp {
    /// Average cycles per operation.
    pub cycles: u64,
    /// Average traps per operation (Table 7 reports these as integers but
    /// they are averages).
    pub traps: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates_cycles_and_counts() {
        let mut c = CycleCounter::new();
        c.charge(Event::Instr, 1);
        c.charge(Event::Instr, 1);
        c.charge(Event::MemLoad, 4);
        assert_eq!(c.cycles(), 6);
        assert_eq!(c.events_of(Event::Instr), 2);
        assert_eq!(c.events_of(Event::MemLoad), 1);
    }

    #[test]
    fn charge_n_matches_repeated_charge() {
        let mut a = CycleCounter::new();
        let mut b = CycleCounter::new();
        for _ in 0..7 {
            a.charge(Event::SysRegWrite, 9);
        }
        b.charge_n(Event::SysRegWrite, 9, 7);
        assert_eq!(a.cycles(), b.cycles());
        assert_eq!(
            a.events_of(Event::SysRegWrite),
            b.events_of(Event::SysRegWrite)
        );
    }

    #[test]
    fn trap_recording_by_kind() {
        let mut c = CycleCounter::new();
        c.record_trap(TrapKind::Hvc);
        c.record_trap(TrapKind::SysReg);
        c.record_trap(TrapKind::SysReg);
        assert_eq!(c.traps_total(), 3);
        assert_eq!(c.traps_of(TrapKind::SysReg), 2);
        assert_eq!(c.traps_of(TrapKind::Eret), 0);
    }

    #[test]
    fn delta_isolates_region() {
        let mut c = CycleCounter::new();
        c.charge(Event::Instr, 1);
        c.record_trap(TrapKind::Hvc);
        let snap = c.snapshot();
        c.charge(Event::TrapEnter, 72);
        c.record_trap(TrapKind::SysReg);
        c.record_trap(TrapKind::SysReg);
        let d = c.delta_since(&snap);
        assert_eq!(d.cycles, 72);
        assert_eq!(d.traps, 2);
        assert_eq!(d.traps_by_kind.get(&TrapKind::SysReg), Some(&2));
        assert_eq!(d.traps_by_kind.get(&TrapKind::Hvc), None);
    }

    #[test]
    fn per_op_rounds_to_nearest() {
        let d = Delta {
            cycles: 10,
            traps: 3,
            ..Delta::default()
        };
        let p = d.per_op(4);
        assert_eq!(p.cycles, 3); // 2.5 rounds to 3 (banker's not needed)
        assert!((p.traps - 0.75).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn per_op_zero_iterations_panics() {
        Delta::default().per_op(0);
    }

    #[test]
    fn accumulate_merges_all_fields() {
        let mut a = Delta {
            cycles: 10,
            traps: 1,
            traps_by_kind: BTreeMap::from([(TrapKind::Hvc, 1)]),
            events: BTreeMap::from([(Event::Instr, 5)]),
            cycles_by_phase: BTreeMap::from([(Phase::Guest, 10)]),
            traps_by_phase: BTreeMap::from([(Phase::Guest, 1)]),
        };
        let b = Delta {
            cycles: 7,
            traps: 2,
            traps_by_kind: BTreeMap::from([(TrapKind::Hvc, 1), (TrapKind::SysReg, 1)]),
            events: BTreeMap::from([(Event::Instr, 2), (Event::MemLoad, 1)]),
            cycles_by_phase: BTreeMap::from([(Phase::Guest, 3), (Phase::HostSw, 4)]),
            traps_by_phase: BTreeMap::from([(Phase::Guest, 2)]),
        };
        a.accumulate(&b);
        assert_eq!(a.cycles, 17);
        assert_eq!(a.traps, 3);
        assert_eq!(a.traps_by_kind[&TrapKind::Hvc], 2);
        assert_eq!(a.traps_by_kind[&TrapKind::SysReg], 1);
        assert_eq!(a.events[&Event::Instr], 7);
        assert_eq!(a.cycles_by_phase[&Phase::Guest], 13);
        assert_eq!(a.cycles_by_phase[&Phase::HostSw], 4);
        assert_eq!(a.traps_by_phase[&Phase::Guest], 3);
    }

    #[test]
    fn accumulate_saturates_clamped_regions() {
        // Regression: a region clamped at `u64::MAX` (adversarial cost
        // models saturate `charge_n`) used to overflow-panic when folded
        // via `accumulate` in debug builds.
        let mut a = Delta {
            cycles: u64::MAX,
            traps: u64::MAX,
            traps_by_kind: BTreeMap::from([(TrapKind::Hvc, u64::MAX)]),
            events: BTreeMap::from([(Event::Instr, u64::MAX)]),
            cycles_by_phase: BTreeMap::from([(Phase::Guest, u64::MAX)]),
            traps_by_phase: BTreeMap::from([(Phase::Guest, u64::MAX)]),
        };
        let b = a.clone();
        a.accumulate(&b);
        assert_eq!(a.cycles, u64::MAX);
        assert_eq!(a.traps, u64::MAX);
        assert_eq!(a.traps_by_kind[&TrapKind::Hvc], u64::MAX);
        assert_eq!(a.events[&Event::Instr], u64::MAX);
        assert_eq!(a.cycles_by_phase[&Phase::Guest], u64::MAX);
        assert_eq!(a.traps_by_phase[&Phase::Guest], u64::MAX);
    }

    #[test]
    fn measured_carries_the_breakdown() {
        let d = Delta {
            cycles: 100,
            traps: 4,
            traps_by_kind: BTreeMap::from([(TrapKind::SysReg, 4)]),
            cycles_by_phase: BTreeMap::from([(Phase::SysRegEmul, 60)]),
            traps_by_phase: BTreeMap::from([(Phase::Guest, 4)]),
            ..Delta::default()
        };
        let m = d.measured(4);
        assert_eq!(m.per_op.cycles, 25);
        assert_eq!(m.traps_by_kind[&TrapKind::SysReg], 4);
        assert_eq!(m.cycles_by_phase[&Phase::SysRegEmul], 60);
        assert_eq!(m.traps_by_phase[&Phase::Guest], 4);
    }

    #[test]
    fn software_cycles_tracked_separately() {
        let mut c = CycleCounter::new();
        c.charge(Event::Instr, 1);
        c.charge_software(500);
        assert_eq!(c.cycles(), 501);
        assert_eq!(c.software_cycles(), 500);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = CycleCounter::new();
        c.charge(Event::Instr, 1);
        c.record_trap(TrapKind::Hvc);
        c.reset();
        assert_eq!(c.cycles(), 0);
        assert_eq!(c.traps_total(), 0);
        assert_eq!(c.cycles_in(Phase::Guest), 0);
    }

    #[test]
    fn delta_after_reset_saturates_instead_of_panicking() {
        // Regression: `reset()` between snapshot and delta used to
        // underflow (debug-mode panic) on `cycles` and `traps`.
        let mut c = CycleCounter::new();
        c.charge(Event::Instr, 100);
        c.record_trap(TrapKind::Hvc);
        let snap = c.snapshot();
        c.reset();
        let d = c.delta_since(&snap);
        assert_eq!(d.cycles, 0);
        assert_eq!(d.traps, 0);
        assert!(d.traps_by_kind.is_empty());
        assert!(d.cycles_by_phase.is_empty());
        // A partially refilled counter reports only the surplus.
        c.charge(Event::Instr, 7);
        let d = c.delta_since(&snap);
        assert_eq!(d.cycles, 0, "7 < 100: still clamped");
    }

    #[test]
    fn charge_n_saturates_instead_of_overflowing() {
        // Regression: `cycles_each * n` used to overflow (debug-mode
        // panic) under adversarial proptest streams.
        let mut c = CycleCounter::new();
        c.charge_n(Event::Instr, u64::MAX / 2, 3);
        assert_eq!(c.cycles(), u64::MAX);
        c.charge(Event::Instr, 1); // already saturated: stays put
        assert_eq!(c.cycles(), u64::MAX);
        let d = c.delta_since(&CounterSnapshot::default());
        // The rounding add in per_op must not overflow either.
        assert_eq!(d.per_op(2).cycles, u64::MAX / 2);
    }

    #[test]
    fn phases_partition_the_cycle_total() {
        let mut c = CycleCounter::new();
        c.charge(Event::Instr, 5);
        let prev = c.set_phase(Phase::El1Save);
        assert_eq!(prev, Phase::Guest);
        c.charge(Event::SysRegRead, 9);
        c.charge_software(11);
        c.set_phase(prev);
        c.record_trap(TrapKind::Hvc);
        assert_eq!(c.cycles_in(Phase::Guest), 5);
        assert_eq!(c.cycles_in(Phase::El1Save), 20);
        assert_eq!(c.traps_in(Phase::Guest), 1);
        assert_eq!(c.traps_in(Phase::El1Save), 0);
        let total: u64 = Phase::all().iter().map(|p| c.cycles_in(*p)).sum();
        assert_eq!(total, c.cycles(), "phases partition the total");
    }

    #[test]
    fn delta_scopes_phase_attribution() {
        let mut c = CycleCounter::new();
        c.charge(Event::Instr, 5);
        let snap = c.snapshot();
        c.set_phase(Phase::GicSwitch);
        c.charge(Event::SysRegWrite, 4);
        c.record_trap(TrapKind::SysReg);
        c.set_phase(Phase::Guest);
        let d = c.delta_since(&snap);
        assert_eq!(d.cycles_by_phase.get(&Phase::GicSwitch), Some(&4));
        assert_eq!(d.cycles_by_phase.get(&Phase::Guest), None);
        assert_eq!(d.traps_by_phase.get(&Phase::GicSwitch), Some(&1));
        let total: u64 = d.cycles_by_phase.values().sum();
        assert_eq!(total, d.cycles);
    }
}
