//! Discrete-event scheduling primitives: the global simulated-time
//! event wheel.
//!
//! The round-robin core loop the simulator started with polls every
//! vCPU on every iteration, so a core sitting in WFI costs host work
//! proportional to how long everyone else runs. The event wheel
//! inverts that: a parked core posts *when* it next needs attention
//! (its timer deadline, or "only when an interrupt epoch moves"), the
//! run loop steps only runnable cores, and when nothing is runnable
//! the clock jumps straight to the earliest pending event. An idle
//! core therefore costs zero host work until an event targets it.
//!
//! Everything here is deterministic. Events are totally ordered by
//! `(time, component rank, cpu index, insertion sequence)` — see
//! [`EventKey`] — so two runs that post the same events drain them in
//! the same order regardless of insertion order, heap internals, or
//! host thread scheduling.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which component posted an event: the fixed tie-break rank between
/// events due at the same simulated time (lower drains first).
///
/// The order is architectural, not arbitrary: timer deadlines fire
/// before interrupt delivery (a timer *causes* the interrupt), IPIs
/// after device/GIC state changes, watchdogs after all real work, and
/// plain wake-ups last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rank {
    /// A timer deadline (vtimer/ptimer/htimer `CVAL` crossing).
    Timer = 0,
    /// GIC distributor state change (SPI raise, enable, retarget).
    Gic = 1,
    /// Inter-processor interrupt delivery (SGI).
    Ipi = 2,
    /// A run-budget watchdog (the driver's forward-progress guard).
    Watchdog = 3,
    /// A plain wake-up with no component semantics (PSCI CPU_ON,
    /// snapshot restore re-posts, explicit kicks).
    Wake = 4,
}

impl Rank {
    /// Every rank, tie-break order.
    pub fn all() -> [Rank; 5] {
        [
            Rank::Timer,
            Rank::Gic,
            Rank::Ipi,
            Rank::Watchdog,
            Rank::Wake,
        ]
    }
}

/// A scheduled event: totally ordered by `(time, rank, cpu, seq)`.
///
/// `seq` is the wheel-assigned insertion sequence number; it makes the
/// order total (and therefore deterministic) even when one component
/// posts several events for one cpu at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// Absolute simulated time (cycle count) the event is due.
    pub time: u64,
    /// Posting component (fixed tie-break rank).
    pub rank: Rank,
    /// Target cpu index (second tie-break).
    pub cpu: usize,
    /// Insertion sequence (final tie-break; assigned by the wheel).
    pub seq: u64,
}

/// Why a parked core may wake: the conditions its owner re-checks
/// before letting it run again.
///
/// A core parks in WFI with a conservative contract: it cannot make
/// progress before `wake_at` (its earliest armed timer deadline, from
/// `Timers::next_fire_at`) *unless* interrupt-relevant state changes —
/// which the timer and GIC components advertise by bumping their
/// epochs. Epoch inequality is therefore a sufficient (conservative)
/// wake condition: a woken core re-polls, and re-parks if the change
/// was not for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Waker {
    /// Earliest simulated time an armed timer can target this core
    /// (`u64::MAX` when nothing is armed).
    pub wake_at: u64,
    /// `Timers::epoch()` observed when the core parked.
    pub timers_epoch: u64,
    /// `Distributor::epoch()` observed when the core parked.
    pub gic_epoch: u64,
}

/// The global simulated-time event wheel: a min-heap of [`EventKey`]s.
///
/// Pop order is the deterministic total order `(time, rank, cpu, seq)`
/// regardless of push order. The wheel itself is pure bookkeeping — it
/// never touches machine state — so snapshotting it is a plain clone.
#[derive(Debug, Clone, Default)]
pub struct Wheel {
    heap: BinaryHeap<Reverse<EventKey>>,
    seq: u64,
}

impl Wheel {
    /// An empty wheel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Posts an event and returns its key (with the assigned `seq`).
    pub fn post(&mut self, time: u64, rank: Rank, cpu: usize) -> EventKey {
        let key = EventKey {
            time,
            rank,
            cpu,
            seq: self.seq,
        };
        self.seq += 1;
        self.heap.push(Reverse(key));
        key
    }

    /// The due time of the earliest pending event.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(k)| k.time)
    }

    /// Pops the earliest event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: u64) -> Option<EventKey> {
        if self.peek_time()? > now {
            return None;
        }
        self.heap.pop().map(|Reverse(k)| k)
    }

    /// Pops the earliest event unconditionally.
    pub fn pop(&mut self) -> Option<EventKey> {
        self.heap.pop().map(|Reverse(k)| k)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event (the sequence counter keeps running so
    /// later posts still order after earlier ones).
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// The pending events in drain order (snapshot serialization and
    /// debugging; does not disturb the wheel).
    pub fn pending_sorted(&self) -> Vec<EventKey> {
        let mut v: Vec<EventKey> = self.heap.iter().map(|Reverse(k)| *k).collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pop_order_is_time_then_rank_then_cpu_then_seq() {
        let mut w = Wheel::new();
        // Deliberately posted out of order.
        w.post(20, Rank::Wake, 0); // seq 0
        w.post(10, Rank::Ipi, 3); // seq 1
        w.post(10, Rank::Timer, 7); // seq 2
        w.post(10, Rank::Ipi, 1); // seq 3
        w.post(10, Rank::Ipi, 1); // seq 4: same (time, rank, cpu)
        let order: Vec<(u64, Rank, usize, u64)> = std::iter::from_fn(|| w.pop())
            .map(|k| (k.time, k.rank, k.cpu, k.seq))
            .collect();
        assert_eq!(
            order,
            vec![
                (10, Rank::Timer, 7, 2),
                (10, Rank::Ipi, 1, 3),
                (10, Rank::Ipi, 1, 4),
                (10, Rank::Ipi, 3, 1),
                (20, Rank::Wake, 0, 0),
            ]
        );
    }

    #[test]
    fn pop_due_respects_now() {
        let mut w = Wheel::new();
        w.post(100, Rank::Timer, 0);
        w.post(50, Rank::Timer, 1);
        assert_eq!(w.pop_due(49), None);
        assert_eq!(w.pop_due(50).map(|k| k.cpu), Some(1));
        assert_eq!(w.pop_due(99), None);
        assert_eq!(w.pop_due(u64::MAX).map(|k| k.cpu), Some(0));
        assert!(w.is_empty());
    }

    #[test]
    fn clone_preserves_pending_events_and_seq() {
        let mut w = Wheel::new();
        w.post(5, Rank::Timer, 0);
        w.post(9, Rank::Watchdog, 2);
        let mut c = w.clone();
        assert_eq!(c.pending_sorted(), w.pending_sorted());
        // New posts in the clone order after the copied ones.
        let k = c.post(5, Rank::Timer, 0);
        assert_eq!(k.seq, 2);
    }

    #[test]
    fn rank_order_is_the_documented_tie_break() {
        let all = Rank::all();
        for pair in all.windows(2) {
            assert!(pair[0] < pair[1], "{pair:?} out of order");
        }
        assert_eq!(all[0], Rank::Timer);
        assert_eq!(all[4], Rank::Wake);
    }

    proptest! {
        /// The drain order of a set of events is invariant under the
        /// order they were posted in: shuffle the insertion order any
        /// way, the `(time, rank, cpu, seq)` total order wins. (`seq`
        /// is position-dependent, so the property is stated over keys
        /// that differ in `(time, rank, cpu)` — duplicates collapse.)
        #[test]
        fn drain_order_invariant_under_insertion_shuffle(
            times in proptest::collection::vec(0u64..16, 1..24),
            ranks in proptest::collection::vec(0usize..5, 1..24),
            cpus in proptest::collection::vec(0usize..8, 1..24),
            swaps in proptest::collection::vec((0usize..24, 0usize..24), 0..32),
        ) {
            let n = times.len().min(ranks.len()).min(cpus.len());
            let mut keys: Vec<(u64, Rank, usize)> = (0..n)
                .map(|i| (times[i], Rank::all()[ranks[i]], cpus[i]))
                .collect();
            keys.sort();
            keys.dedup();

            let mut a = Wheel::new();
            for &(t, r, c) in &keys {
                a.post(t, r, c);
            }
            let mut shuffled = keys.clone();
            for &(i, j) in &swaps {
                let (i, j) = (i % shuffled.len(), j % shuffled.len());
                shuffled.swap(i, j);
            }
            let mut b = Wheel::new();
            for &(t, r, c) in &shuffled {
                b.post(t, r, c);
            }
            let da: Vec<(u64, Rank, usize)> =
                std::iter::from_fn(|| a.pop()).map(|k| (k.time, k.rank, k.cpu)).collect();
            let db: Vec<(u64, Rank, usize)> =
                std::iter::from_fn(|| b.pop()).map(|k| (k.time, k.rank, k.cpu)).collect();
            prop_assert_eq!(&da, &db, "drain order depends on insertion order");
            prop_assert_eq!(da, keys, "drain order is the sorted key order");
        }
    }
}
