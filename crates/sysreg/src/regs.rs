//! The register set and instruction-level register names.

use std::fmt;

/// Number of GIC list registers modelled per CPU.
///
/// The architecture allows up to 16 (`ICH_LR<n>_EL2`, n = 0..15); real
/// implementations commonly provide 4, which is what KVM-era GIC-400 /
/// GIC-500 hardware exposed and what the world-switch sequences in the
/// paper's workloads touch.
pub const NUM_LIST_REGS: u8 = 4;

/// Number of GIC active-priority registers per group modelled.
pub const NUM_APRS: u8 = 1;

/// An architectural register storage location.
///
/// Every variant is one 64-bit register. Banked registers (same name,
/// different exception level) are distinct variants. Parameterised GIC
/// registers carry their index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(clippy::upper_case_acronyms)]
pub enum SysReg {
    // --- EL1 execution state (the "VM Execution Control" group of the
    // paper's Table 3 when accessed by a guest hypervisor on behalf of a
    // nested VM) ---
    /// System control, EL1.
    SctlrEl1,
    /// Translation table base 0, EL1.
    Ttbr0El1,
    /// Translation table base 1, EL1.
    Ttbr1El1,
    /// Translation control, EL1.
    TcrEl1,
    /// Exception syndrome, EL1.
    EsrEl1,
    /// Fault address, EL1.
    FarEl1,
    /// Auxiliary fault status 0, EL1.
    Afsr0El1,
    /// Auxiliary fault status 1, EL1.
    Afsr1El1,
    /// Memory attribute indirection, EL1.
    MairEl1,
    /// Auxiliary memory attribute indirection, EL1.
    AmairEl1,
    /// Context ID, EL1.
    ContextidrEl1,
    /// Architectural feature access control, EL1.
    CpacrEl1,
    /// Exception link register, EL1.
    ElrEl1,
    /// Saved program status, EL1.
    SpsrEl1,
    /// Stack pointer, EL1.
    SpEl1,
    /// Vector base address, EL1.
    VbarEl1,
    /// Physical address result of an `at` address translation, EL1.
    ParEl1,
    /// Counter-timer kernel control (EL0 access control), EL1.
    CntkctlEl1,
    /// Cache size selection, EL1.
    CsselrEl1,

    // --- EL0-visible state managed by the OS ---
    /// Stack pointer, EL0.
    SpEl0,
    /// Software thread ID, EL0.
    TpidrEl0,
    /// Read-only software thread ID, EL0.
    TpidrroEl0,
    /// Software thread ID, EL1.
    TpidrEl1,

    // --- EL2 / virtualization control (Table 3 "VM Trap Control" and
    // Table 4 hypervisor control registers) ---
    /// Hypervisor configuration (trap bits, E2H, NV, NV1, NV2, ...).
    HcrEl2,
    /// Hypervisor auxiliary control.
    HacrEl2,
    /// Hypervisor IPA fault address.
    HpfarEl2,
    /// Hypervisor system trap register.
    HstrEl2,
    /// Software thread ID, EL2.
    TpidrEl2,
    /// Virtualization multiprocessor ID.
    VmpidrEl2,
    /// Virtualization processor ID.
    VpidrEl2,
    /// Virtualization (Stage-2) translation control.
    VtcrEl2,
    /// Virtualization (Stage-2) translation table base.
    VttbrEl2,
    /// Virtual nested control (the NEVE register, paper Table 2).
    VncrEl2,
    /// System control, EL2.
    SctlrEl2,
    /// Translation table base 0, EL2.
    Ttbr0El2,
    /// Translation table base 1, EL2 (exists only with VHE).
    Ttbr1El2,
    /// Translation control, EL2.
    TcrEl2,
    /// Exception syndrome, EL2.
    EsrEl2,
    /// Fault address, EL2.
    FarEl2,
    /// Auxiliary fault status 0, EL2.
    Afsr0El2,
    /// Auxiliary fault status 1, EL2.
    Afsr1El2,
    /// Memory attribute indirection, EL2.
    MairEl2,
    /// Auxiliary memory attribute indirection, EL2.
    AmairEl2,
    /// Context ID, EL2 (VHE).
    ContextidrEl2,
    /// Exception link register, EL2.
    ElrEl2,
    /// Saved program status, EL2.
    SpsrEl2,
    /// Stack pointer, EL2.
    SpEl2,
    /// Vector base address, EL2.
    VbarEl2,
    /// Architectural feature trap, EL2.
    CptrEl2,
    /// Monitor debug configuration, EL2.
    MdcrEl2,

    // --- Identification ---
    /// Main ID register (read-only).
    MidrEl1,
    /// Multiprocessor affinity (read-only).
    MpidrEl1,

    // --- Generic timers ---
    /// Counter frequency.
    CntfrqEl0,
    /// Counter-timer hypervisor control (EL1 access traps; Table 4
    /// trap-on-write under NEVE).
    CnthctlEl2,
    /// Virtual counter offset.
    CntvoffEl2,
    /// EL1 virtual timer control.
    CntvCtlEl0,
    /// EL1 virtual timer compare value.
    CntvCvalEl0,
    /// EL1 physical timer control.
    CntpCtlEl0,
    /// EL1 physical timer compare value.
    CntpCvalEl0,
    /// EL2 physical (hypervisor) timer control.
    CnthpCtlEl2,
    /// EL2 physical (hypervisor) timer compare value.
    CnthpCvalEl2,
    /// EL2 virtual timer control (added by VHE; see the paper's Section
    /// 7.1 discussion of the extra traps it causes).
    CnthvCtlEl2,
    /// EL2 virtual timer compare value (VHE).
    CnthvCvalEl2,

    // --- GICv3 CPU interface (EL1) ---
    /// Interrupt acknowledge, group 1.
    IccIar1El1,
    /// End of interrupt, group 1.
    IccEoir1El1,
    /// Deactivate interrupt.
    IccDirEl1,
    /// Priority mask.
    IccPmrEl1,
    /// Binary point, group 1.
    IccBpr1El1,
    /// Group 1 interrupt enable.
    IccIgrpen1El1,
    /// SGI generation, group 1 (writing this sends an IPI and traps to
    /// the hypervisor when `ICH_HCR_EL2` / `HCR_EL2.IMO` demand it).
    IccSgi1rEl1,
    /// Running priority.
    IccRprEl1,
    /// CPU interface control.
    IccCtlrEl1,
    /// System register enable, EL1.
    IccSreEl1,
    /// System register enable, EL2.
    IccSreEl2,
    /// Highest priority pending interrupt.
    IccHppir1El1,

    // --- GIC hypervisor control interface (Table 5) ---
    /// Hypervisor control.
    IchHcrEl2,
    /// VGIC type (read-only: list register count etc.).
    IchVtrEl2,
    /// Virtual machine control.
    IchVmcrEl2,
    /// Maintenance interrupt status (read-only).
    IchMisrEl2,
    /// End-of-interrupt status (read-only).
    IchEisrEl2,
    /// Empty list register status (read-only).
    IchElrsrEl2,
    /// Active priorities group 0, indexed.
    IchAp0rEl2(u8),
    /// Active priorities group 1, indexed.
    IchAp1rEl2(u8),
    /// List register, indexed.
    IchLrEl2(u8),

    // --- Debug / PMU (Section 6.1's closing paragraph) ---
    /// Monitor debug system control (reads deferrable, writes trap).
    MdscrEl1,
    /// PMU user enable (deferrable like a VM system register).
    PmuserenrEl0,
    /// PMU event counter selection (deferrable).
    PmselrEl0,
}

impl SysReg {
    /// The lowest exception level from which this register is accessible
    /// without trapping (ignoring fine-grained trap controls): 0, 1 or 2.
    pub fn min_el(self) -> u8 {
        use SysReg::*;
        match self {
            TpidrEl0 | TpidrroEl0 | CntfrqEl0 | CntvCtlEl0 | CntvCvalEl0 | CntpCtlEl0
            | CntpCvalEl0 | PmuserenrEl0 | PmselrEl0 => 0,
            // `SP_EL1` as an *MRS/MSR-named* register is only reachable
            // from EL2 (at EL1 it is the implicit stack pointer), which is
            // why a guest hypervisor saving a VM's SP_EL1 traps under NV.
            SctlrEl1 | Ttbr0El1 | Ttbr1El1 | TcrEl1 | EsrEl1 | FarEl1 | Afsr0El1 | Afsr1El1
            | MairEl1 | AmairEl1 | ContextidrEl1 | CpacrEl1 | ElrEl1 | SpsrEl1 | VbarEl1
            | ParEl1 | CntkctlEl1 | CsselrEl1 | SpEl0 | TpidrEl1 | MidrEl1 | MpidrEl1
            | IccIar1El1 | IccEoir1El1 | IccDirEl1 | IccPmrEl1 | IccBpr1El1 | IccIgrpen1El1
            | IccSgi1rEl1 | IccRprEl1 | IccCtlrEl1 | IccSreEl1 | IccHppir1El1 | MdscrEl1 => 1,
            _ => 2,
        }
    }

    /// True if this is an EL2 register (only accessible from EL2, or from
    /// EL1 under nested-virtualization trapping/redirection).
    pub fn is_el2(self) -> bool {
        self.min_el() == 2
    }

    /// True for registers that are read-only in hardware.
    pub fn is_read_only(self) -> bool {
        use SysReg::*;
        matches!(
            self,
            MidrEl1
                | MpidrEl1
                | IchVtrEl2
                | IchMisrEl2
                | IchEisrEl2
                | IchElrsrEl2
                | IccIar1El1
                | IccRprEl1
                | IccHppir1El1
        )
    }

    /// The architectural name, e.g. `"SCTLR_EL1"`.
    pub fn name(self) -> String {
        use SysReg::*;
        match self {
            SctlrEl1 => "SCTLR_EL1".into(),
            Ttbr0El1 => "TTBR0_EL1".into(),
            Ttbr1El1 => "TTBR1_EL1".into(),
            TcrEl1 => "TCR_EL1".into(),
            EsrEl1 => "ESR_EL1".into(),
            FarEl1 => "FAR_EL1".into(),
            Afsr0El1 => "AFSR0_EL1".into(),
            Afsr1El1 => "AFSR1_EL1".into(),
            MairEl1 => "MAIR_EL1".into(),
            AmairEl1 => "AMAIR_EL1".into(),
            ContextidrEl1 => "CONTEXTIDR_EL1".into(),
            CpacrEl1 => "CPACR_EL1".into(),
            ElrEl1 => "ELR_EL1".into(),
            SpsrEl1 => "SPSR_EL1".into(),
            SpEl1 => "SP_EL1".into(),
            VbarEl1 => "VBAR_EL1".into(),
            ParEl1 => "PAR_EL1".into(),
            CntkctlEl1 => "CNTKCTL_EL1".into(),
            CsselrEl1 => "CSSELR_EL1".into(),
            SpEl0 => "SP_EL0".into(),
            TpidrEl0 => "TPIDR_EL0".into(),
            TpidrroEl0 => "TPIDRRO_EL0".into(),
            TpidrEl1 => "TPIDR_EL1".into(),
            HcrEl2 => "HCR_EL2".into(),
            HacrEl2 => "HACR_EL2".into(),
            HpfarEl2 => "HPFAR_EL2".into(),
            HstrEl2 => "HSTR_EL2".into(),
            TpidrEl2 => "TPIDR_EL2".into(),
            VmpidrEl2 => "VMPIDR_EL2".into(),
            VpidrEl2 => "VPIDR_EL2".into(),
            VtcrEl2 => "VTCR_EL2".into(),
            VttbrEl2 => "VTTBR_EL2".into(),
            VncrEl2 => "VNCR_EL2".into(),
            SctlrEl2 => "SCTLR_EL2".into(),
            Ttbr0El2 => "TTBR0_EL2".into(),
            Ttbr1El2 => "TTBR1_EL2".into(),
            TcrEl2 => "TCR_EL2".into(),
            EsrEl2 => "ESR_EL2".into(),
            FarEl2 => "FAR_EL2".into(),
            Afsr0El2 => "AFSR0_EL2".into(),
            Afsr1El2 => "AFSR1_EL2".into(),
            MairEl2 => "MAIR_EL2".into(),
            AmairEl2 => "AMAIR_EL2".into(),
            ContextidrEl2 => "CONTEXTIDR_EL2".into(),
            ElrEl2 => "ELR_EL2".into(),
            SpsrEl2 => "SPSR_EL2".into(),
            SpEl2 => "SP_EL2".into(),
            VbarEl2 => "VBAR_EL2".into(),
            CptrEl2 => "CPTR_EL2".into(),
            MdcrEl2 => "MDCR_EL2".into(),
            MidrEl1 => "MIDR_EL1".into(),
            MpidrEl1 => "MPIDR_EL1".into(),
            CntfrqEl0 => "CNTFRQ_EL0".into(),
            CnthctlEl2 => "CNTHCTL_EL2".into(),
            CntvoffEl2 => "CNTVOFF_EL2".into(),
            CntvCtlEl0 => "CNTV_CTL_EL0".into(),
            CntvCvalEl0 => "CNTV_CVAL_EL0".into(),
            CntpCtlEl0 => "CNTP_CTL_EL0".into(),
            CntpCvalEl0 => "CNTP_CVAL_EL0".into(),
            CnthpCtlEl2 => "CNTHP_CTL_EL2".into(),
            CnthpCvalEl2 => "CNTHP_CVAL_EL2".into(),
            CnthvCtlEl2 => "CNTHV_CTL_EL2".into(),
            CnthvCvalEl2 => "CNTHV_CVAL_EL2".into(),
            IccIar1El1 => "ICC_IAR1_EL1".into(),
            IccEoir1El1 => "ICC_EOIR1_EL1".into(),
            IccDirEl1 => "ICC_DIR_EL1".into(),
            IccPmrEl1 => "ICC_PMR_EL1".into(),
            IccBpr1El1 => "ICC_BPR1_EL1".into(),
            IccIgrpen1El1 => "ICC_IGRPEN1_EL1".into(),
            IccSgi1rEl1 => "ICC_SGI1R_EL1".into(),
            IccRprEl1 => "ICC_RPR_EL1".into(),
            IccCtlrEl1 => "ICC_CTLR_EL1".into(),
            IccSreEl1 => "ICC_SRE_EL1".into(),
            IccSreEl2 => "ICC_SRE_EL2".into(),
            IccHppir1El1 => "ICC_HPPIR1_EL1".into(),
            IchHcrEl2 => "ICH_HCR_EL2".into(),
            IchVtrEl2 => "ICH_VTR_EL2".into(),
            IchVmcrEl2 => "ICH_VMCR_EL2".into(),
            IchMisrEl2 => "ICH_MISR_EL2".into(),
            IchEisrEl2 => "ICH_EISR_EL2".into(),
            IchElrsrEl2 => "ICH_ELRSR_EL2".into(),
            IchAp0rEl2(n) => format!("ICH_AP0R{n}_EL2"),
            IchAp1rEl2(n) => format!("ICH_AP1R{n}_EL2"),
            IchLrEl2(n) => format!("ICH_LR{n}_EL2"),
            MdscrEl1 => "MDSCR_EL1".into(),
            PmuserenrEl0 => "PMUSERENR_EL0".into(),
            PmselrEl0 => "PMSELR_EL0".into(),
        }
    }

    /// Every modelled register (list registers and APRs expanded).
    pub fn all() -> Vec<SysReg> {
        use SysReg::*;
        let mut v = vec![
            SctlrEl1,
            Ttbr0El1,
            Ttbr1El1,
            TcrEl1,
            EsrEl1,
            FarEl1,
            Afsr0El1,
            Afsr1El1,
            MairEl1,
            AmairEl1,
            ContextidrEl1,
            CpacrEl1,
            ElrEl1,
            SpsrEl1,
            SpEl1,
            VbarEl1,
            ParEl1,
            CntkctlEl1,
            CsselrEl1,
            SpEl0,
            TpidrEl0,
            TpidrroEl0,
            TpidrEl1,
            HcrEl2,
            HacrEl2,
            HpfarEl2,
            HstrEl2,
            TpidrEl2,
            VmpidrEl2,
            VpidrEl2,
            VtcrEl2,
            VttbrEl2,
            VncrEl2,
            SctlrEl2,
            Ttbr0El2,
            Ttbr1El2,
            TcrEl2,
            EsrEl2,
            FarEl2,
            Afsr0El2,
            Afsr1El2,
            MairEl2,
            AmairEl2,
            ContextidrEl2,
            ElrEl2,
            SpsrEl2,
            SpEl2,
            VbarEl2,
            CptrEl2,
            MdcrEl2,
            MidrEl1,
            MpidrEl1,
            CntfrqEl0,
            CnthctlEl2,
            CntvoffEl2,
            CntvCtlEl0,
            CntvCvalEl0,
            CntpCtlEl0,
            CntpCvalEl0,
            CnthpCtlEl2,
            CnthpCvalEl2,
            CnthvCtlEl2,
            CnthvCvalEl2,
            IccIar1El1,
            IccEoir1El1,
            IccDirEl1,
            IccPmrEl1,
            IccBpr1El1,
            IccIgrpen1El1,
            IccSgi1rEl1,
            IccRprEl1,
            IccCtlrEl1,
            IccSreEl1,
            IccSreEl2,
            IccHppir1El1,
            IchHcrEl2,
            IchVtrEl2,
            IchVmcrEl2,
            IchMisrEl2,
            IchEisrEl2,
            IchElrsrEl2,
            MdscrEl1,
            PmuserenrEl0,
            PmselrEl0,
        ];
        for n in 0..NUM_APRS {
            v.push(IchAp0rEl2(n));
            v.push(IchAp1rEl2(n));
        }
        for n in 0..NUM_LIST_REGS {
            v.push(IchLrEl2(n));
        }
        v
    }

    /// Memoized [`Self::all`] in the same order. The modelled set never
    /// changes at runtime, and the trap path consults it on every
    /// trapped access (ISS encode/decode), so hot callers borrow one
    /// shared copy instead of rebuilding the `Vec`.
    pub fn all_cached() -> &'static [SysReg] {
        static ALL: std::sync::OnceLock<Vec<SysReg>> = std::sync::OnceLock::new();
        ALL.get_or_init(SysReg::all)
    }
}

impl fmt::Display for SysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// The register *name* an instruction encodes.
///
/// `El12(SctlrEl1)` is the VHE-added `SCTLR_EL12` name (access the EL1
/// register from EL2 while `E2H` redirection is active); `El02` covers the
/// `CNTV_CTL_EL02`-style names for EL0-accessible timer registers. The
/// paper's Section 4 paravirtualizes exactly these VHE-added names because
/// they are undefined on ARMv8.0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegId {
    /// The plain architectural name.
    Plain(SysReg),
    /// The `*_EL12` alias of an EL1 register (VHE).
    El12(SysReg),
    /// The `*_EL02` alias of an EL0 register (VHE).
    El02(SysReg),
}

impl RegId {
    /// The storage location the name refers to in the *absence* of any
    /// redirection (the alias target).
    pub fn base_reg(self) -> SysReg {
        match self {
            RegId::Plain(r) | RegId::El12(r) | RegId::El02(r) => r,
        }
    }

    /// True if this is a VHE-added alias name (`*_EL12` / `*_EL02`).
    pub fn is_vhe_alias(self) -> bool {
        !matches!(self, RegId::Plain(_))
    }

    /// Architectural spelling of the name.
    pub fn name(self) -> String {
        match self {
            RegId::Plain(r) => r.name(),
            RegId::El12(r) => {
                let n = r.name();
                n.strip_suffix("_EL1")
                    .map(|s| format!("{s}_EL12"))
                    .unwrap_or(n)
            }
            RegId::El02(r) => {
                let n = r.name();
                n.strip_suffix("_EL0")
                    .map(|s| format!("{s}_EL02"))
                    .unwrap_or(n)
            }
        }
    }
}

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

impl From<SysReg> for RegId {
    fn from(r: SysReg) -> Self {
        RegId::Plain(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_registers_are_unique() {
        let all = SysReg::all();
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn all_names_are_unique() {
        let all = SysReg::all();
        let names: std::collections::HashSet<_> = all.iter().map(|r| r.name()).collect();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn register_population_is_substantial() {
        // 27 VM system registers (Table 3) + 17 hypervisor control
        // registers (Table 4) + GIC + timers + misc.
        assert!(SysReg::all().len() > 80);
    }

    #[test]
    fn el2_registers_report_min_el_2() {
        assert!(SysReg::HcrEl2.is_el2());
        assert!(SysReg::VttbrEl2.is_el2());
        assert!(SysReg::IchLrEl2(0).is_el2());
        assert!(!SysReg::SctlrEl1.is_el2());
        assert!(!SysReg::TpidrEl0.is_el2());
    }

    #[test]
    fn read_only_registers() {
        assert!(SysReg::MidrEl1.is_read_only());
        assert!(SysReg::IchEisrEl2.is_read_only());
        assert!(!SysReg::IchLrEl2(0).is_read_only());
    }

    #[test]
    fn el12_alias_spelling() {
        assert_eq!(RegId::El12(SysReg::SctlrEl1).name(), "SCTLR_EL12");
        assert_eq!(RegId::El12(SysReg::SpsrEl1).name(), "SPSR_EL12");
        assert_eq!(RegId::El02(SysReg::CntvCtlEl0).name(), "CNTV_CTL_EL02");
        assert_eq!(RegId::Plain(SysReg::HcrEl2).name(), "HCR_EL2");
    }

    #[test]
    fn indexed_gic_names() {
        assert_eq!(SysReg::IchLrEl2(3).name(), "ICH_LR3_EL2");
        assert_eq!(SysReg::IchAp1rEl2(0).name(), "ICH_AP1R0_EL2");
    }

    #[test]
    fn base_reg_strips_alias() {
        assert_eq!(RegId::El12(SysReg::TcrEl1).base_reg(), SysReg::TcrEl1);
        assert!(RegId::El12(SysReg::TcrEl1).is_vhe_alias());
        assert!(!RegId::Plain(SysReg::TcrEl1).is_vhe_alias());
    }
}
