//! NEVE register classification — a transcription of the paper's
//! Tables 3, 4 and 5.
//!
//! The paper classifies the system registers a guest hypervisor touches
//! into *VM system registers* (no immediate effect on the guest
//! hypervisor's own execution; NEVE defers them to the deferred access
//! page — Table 3), *hypervisor control registers* (affect the guest
//! hypervisor's execution; NEVE redirects them to EL1 counterparts or
//! keeps a cached copy that traps on write — Table 4), and the *GIC
//! hypervisor control interface* registers (cached copies, trap on write —
//! Table 5).

use crate::regs::{RegId, SysReg};
use std::sync::OnceLock;

/// How NEVE treats an access to a register name from virtual EL2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NeveClass {
    /// Table 3, "VM Trap Control": EL2 registers that configure traps and
    /// Stage-2 for the *nested* VM; deferred to the access page.
    VmTrapControl,
    /// Table 3, "VM Execution Control": the nested VM's own EL1 context;
    /// deferred to the access page.
    VmExecutionControl,
    /// Table 3, "Thread ID": `TPIDR_EL2`; deferred to the access page.
    VmThreadId,
    /// Table 4, "Redirect to *_EL1": EL2 registers with same-format EL1
    /// counterparts; accesses are redirected to the counterpart.
    HypRedirect,
    /// Table 4, "Redirect to *_EL1 (VHE)": counterparts added by VHE
    /// (`CONTEXTIDR_EL2`, `TTBR1_EL2`).
    HypRedirectVhe,
    /// Table 4, "Trap on write": reads come from the cached copy in the
    /// access page, writes trap to the host hypervisor.
    HypTrapOnWrite,
    /// Table 4, "Redirect or trap": `TCR_EL2`/`TTBR0_EL2` — redirected for
    /// VHE guest hypervisors (VHE gives them the EL1 format), cached-copy
    /// (trap on write) for non-VHE guest hypervisors.
    HypRedirectOrTrap,
    /// Table 5: GIC hypervisor-control registers; cached copies, trap on
    /// write.
    GicTrapOnWrite,
    /// Timer EL2 registers: all accesses trap, because reads must see
    /// values the hardware updates continuously (Section 6.1, final
    /// paragraph).
    TimerTrap,
    /// `MDSCR_EL1`-style debug control: reads deferrable, writes trap.
    DebugTrapOnWrite,
    /// PMU selection/enable registers: deferrable like VM registers.
    PmuDefer,
    /// Not subject to NEVE (normal EL0/EL1 state, identification, ...).
    NotNeve,
}

impl NeveClass {
    /// True for the Table 3 groups (deferred to the access page).
    pub fn is_vm_register(self) -> bool {
        matches!(
            self,
            NeveClass::VmTrapControl | NeveClass::VmExecutionControl | NeveClass::VmThreadId
        )
    }
}

/// Returns the NEVE class of a register (paper Tables 3-5).
pub fn neve_class(reg: SysReg) -> NeveClass {
    use SysReg::*;
    match reg {
        // --- Table 3, VM Trap Control (10 registers) ---
        HacrEl2 | HcrEl2 | HpfarEl2 | HstrEl2 | VmpidrEl2 | VpidrEl2 | VncrEl2 | VtcrEl2
        | VttbrEl2 => NeveClass::VmTrapControl,
        // --- Table 3, VM Execution Control (16 registers) ---
        Afsr0El1 | Afsr1El1 | AmairEl1 | ContextidrEl1 | CpacrEl1 | ElrEl1 | EsrEl1 | FarEl1
        | MairEl1 | SctlrEl1 | SpEl1 | SpsrEl1 | TcrEl1 | Ttbr0El1 | Ttbr1El1 | VbarEl1 => {
            NeveClass::VmExecutionControl
        }
        // --- Table 3, Thread ID ---
        TpidrEl2 => NeveClass::VmThreadId,
        // --- Table 4, redirect to *_EL1 (10 registers) ---
        Afsr0El2 | Afsr1El2 | AmairEl2 | ElrEl2 | EsrEl2 | FarEl2 | SpsrEl2 | MairEl2
        | SctlrEl2 | VbarEl2 => NeveClass::HypRedirect,
        // --- Table 4, redirect to *_EL1, VHE-added counterparts ---
        ContextidrEl2 | Ttbr1El2 => NeveClass::HypRedirectVhe,
        // --- Table 4, trap on write ---
        CnthctlEl2 | CntvoffEl2 | CptrEl2 | MdcrEl2 => NeveClass::HypTrapOnWrite,
        // --- Table 4, redirect (VHE) or trap (non-VHE) ---
        TcrEl2 | Ttbr0El2 => NeveClass::HypRedirectOrTrap,
        // --- Table 5, GIC hypervisor control interface ---
        IchHcrEl2 | IchVtrEl2 | IchVmcrEl2 | IchMisrEl2 | IchEisrEl2 | IchElrsrEl2
        | IchAp0rEl2(_) | IchAp1rEl2(_) | IchLrEl2(_) => NeveClass::GicTrapOnWrite,
        // --- Timers (Section 6.1, final paragraph) ---
        CnthpCtlEl2 | CnthpCvalEl2 | CnthvCtlEl2 | CnthvCvalEl2 => NeveClass::TimerTrap,
        // --- Debug / PMU (Section 6.1, final paragraph) ---
        MdscrEl1 => NeveClass::DebugTrapOnWrite,
        PmuserenrEl0 | PmselrEl0 => NeveClass::PmuDefer,
        _ => NeveClass::NotNeve,
    }
}

/// The same-format EL1 counterpart of an EL2 register, if one exists
/// (Table 4's redirection targets).
pub fn el1_counterpart(reg: SysReg) -> Option<SysReg> {
    use SysReg::*;
    Some(match reg {
        Afsr0El2 => Afsr0El1,
        Afsr1El2 => Afsr1El1,
        AmairEl2 => AmairEl1,
        ElrEl2 => ElrEl1,
        EsrEl2 => EsrEl1,
        FarEl2 => FarEl1,
        SpsrEl2 => SpsrEl1,
        MairEl2 => MairEl1,
        SctlrEl2 => SctlrEl1,
        VbarEl2 => VbarEl1,
        ContextidrEl2 => ContextidrEl1,
        Ttbr1El2 => Ttbr1El1,
        TcrEl2 => TcrEl1,
        Ttbr0El2 => Ttbr0El1,
        _ => return None,
    })
}

/// The EL2 register whose EL1 counterpart is `reg` (inverse of
/// [`el1_counterpart`]); used for VHE's E2H redirection of EL1-named
/// accesses performed *at EL2*.
pub fn el1_counterpart_inverse(reg: SysReg) -> Option<SysReg> {
    // This sits on the interpreter's EL2 mrs/msr path under VHE, so the
    // (register-set-derived) pairs are computed once; the table never
    // changes after that — both classifications are pure functions.
    static PAIRS: OnceLock<Vec<(SysReg, SysReg)>> = OnceLock::new();
    let pairs = PAIRS.get_or_init(|| {
        SysReg::all()
            .into_iter()
            .filter_map(|el2| Some((el1_counterpart(el2)?, el2)))
            .collect()
    });
    pairs
        .iter()
        .find(|&&(el1, _)| el1 == reg)
        .map(|&(_, el2)| el2)
}

/// Offset (bytes) of a register's slot in the deferred access page.
///
/// The architecture mandates only that "each VM system register is stored
/// at a well-defined offset" (Section 6.1); ARMv8.4-NV2's concrete layout
/// is not reproduced here — we define a stable layout of 8-byte slots in
/// `SysReg::all()` order over the deferrable registers. Returns `None` for
/// registers NEVE never defers.
pub fn vncr_offset(reg: SysReg) -> Option<u16> {
    // The deferrable set is sorted, so the slot lookup is a binary
    // search of the memoized table. This function runs on every NEVE
    // disposition decision — once per guest mrs/msr and once per trap
    // for the oracle's deferrable-trap classification — so it must not
    // rebuild the table.
    let idx = deferrable_registers().binary_search(&reg).ok()?;
    Some((idx as u16) * 8)
}

/// Every register that has a slot in the deferred access page: the
/// Table 3 VM registers, the cached-copy registers of Tables 4 and 5
/// (reads are served from the page), and the deferrable debug/PMU
/// registers. Sorted in `SysReg` order; computed once (the
/// classification is a pure function of the register set).
pub fn deferrable_registers() -> &'static [SysReg] {
    static TABLE: OnceLock<Vec<SysReg>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut v: Vec<SysReg> = SysReg::all()
            .into_iter()
            .filter(|&r| {
                matches!(
                    neve_class(r),
                    NeveClass::VmTrapControl
                        | NeveClass::VmExecutionControl
                        | NeveClass::VmThreadId
                        | NeveClass::HypTrapOnWrite
                        | NeveClass::HypRedirectOrTrap
                        | NeveClass::GicTrapOnWrite
                        | NeveClass::DebugTrapOnWrite
                        | NeveClass::PmuDefer
                )
            })
            .collect();
        v.sort();
        v
    })
}

/// The 27 VM system registers of Table 3.
pub fn vm_system_registers() -> Vec<SysReg> {
    SysReg::all()
        .into_iter()
        .filter(|&r| neve_class(r).is_vm_register())
        .collect()
}

/// Resolves the effective NEVE class of an access *by name*.
///
/// A VHE guest hypervisor reaches the nested VM's EL1 context through
/// `*_EL12` names; those are VM-register accesses (deferred). Through the
/// plain EL1 names it reaches — under VHE redirection — its own virtual
/// EL2 state, which NEVE handles via the Table 4 rules of the EL2
/// register the name redirects to.
pub fn neve_class_of_name(id: RegId) -> NeveClass {
    match id {
        RegId::Plain(r) => neve_class(r),
        // `*_EL12` / `*_EL02` names always denote the VM's (nested VM's)
        // EL1/EL0 context from the guest hypervisor's point of view.
        RegId::El12(r) | RegId::El02(r) => match neve_class(r) {
            NeveClass::NotNeve => NeveClass::VmExecutionControl,
            c => c,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::{NUM_APRS, NUM_LIST_REGS};
    use std::collections::HashSet;

    /// Table 3 of the paper lists 27 rows of VM system registers; one
    /// register (`TPIDR_EL2`) appears both under "VM Trap Control" and
    /// under "Thread ID", so the unique set is 26: 9 trap-control
    /// registers (incl. `VNCR_EL2`), 16 execution-control registers and
    /// the thread-ID register.
    #[test]
    fn table3_vm_system_registers_match_paper() {
        let regs = vm_system_registers();
        assert_eq!(regs.len(), 26, "{regs:?}");
        let trap_ctl = regs
            .iter()
            .filter(|&&r| neve_class(r) == NeveClass::VmTrapControl)
            .count();
        let exec_ctl = regs
            .iter()
            .filter(|&&r| neve_class(r) == NeveClass::VmExecutionControl)
            .count();
        let tid = regs
            .iter()
            .filter(|&&r| neve_class(r) == NeveClass::VmThreadId)
            .count();
        assert_eq!(trap_ctl, 9); // incl. VNCR_EL2 itself
        assert_eq!(exec_ctl, 16);
        assert_eq!(tid, 1);
        // Counting the paper's duplicated TPIDR_EL2 row reproduces the
        // quoted "27 VM system registers".
        assert_eq!(regs.len() + 1, 27);
    }

    /// Table 4 lists 17 hypervisor control registers plus the VHE-only
    /// redirect-or-trap pair.
    #[test]
    fn table4_hypervisor_control_registers() {
        let all = SysReg::all();
        let redirect: Vec<_> = all
            .iter()
            .filter(|&&r| neve_class(r) == NeveClass::HypRedirect)
            .collect();
        let redirect_vhe: Vec<_> = all
            .iter()
            .filter(|&&r| neve_class(r) == NeveClass::HypRedirectVhe)
            .collect();
        let trap_write: Vec<_> = all
            .iter()
            .filter(|&&r| neve_class(r) == NeveClass::HypTrapOnWrite)
            .collect();
        let redirect_or_trap: Vec<_> = all
            .iter()
            .filter(|&&r| neve_class(r) == NeveClass::HypRedirectOrTrap)
            .collect();
        assert_eq!(redirect.len(), 10);
        assert_eq!(redirect_vhe.len(), 2);
        assert_eq!(trap_write.len(), 4);
        assert_eq!(redirect_or_trap.len(), 2);
        assert_eq!(
            redirect.len() + redirect_vhe.len() + trap_write.len() + redirect_or_trap.len(),
            18,
            "17 Table 4 rows; SP_EL2 is handled via counterpart mapping only"
        );
    }

    /// Table 5: every GIC hypervisor-interface register is a cached copy.
    #[test]
    fn table5_gic_registers_trap_on_write() {
        for r in [
            SysReg::IchHcrEl2,
            SysReg::IchVtrEl2,
            SysReg::IchVmcrEl2,
            SysReg::IchMisrEl2,
            SysReg::IchEisrEl2,
            SysReg::IchElrsrEl2,
        ] {
            assert_eq!(neve_class(r), NeveClass::GicTrapOnWrite, "{r}");
        }
        for n in 0..NUM_LIST_REGS {
            assert_eq!(neve_class(SysReg::IchLrEl2(n)), NeveClass::GicTrapOnWrite);
        }
        for n in 0..NUM_APRS {
            assert_eq!(neve_class(SysReg::IchAp0rEl2(n)), NeveClass::GicTrapOnWrite);
            assert_eq!(neve_class(SysReg::IchAp1rEl2(n)), NeveClass::GicTrapOnWrite);
        }
    }

    /// Every redirect-class register must actually have an EL1 counterpart.
    #[test]
    fn redirect_classes_have_counterparts() {
        for r in SysReg::all() {
            let c = neve_class(r);
            if matches!(
                c,
                NeveClass::HypRedirect | NeveClass::HypRedirectVhe | NeveClass::HypRedirectOrTrap
            ) {
                assert!(el1_counterpart(r).is_some(), "{r} has no counterpart");
            }
        }
    }

    /// Counterpart mapping targets EL1 registers and is injective.
    #[test]
    fn counterpart_map_is_injective_into_el1() {
        let mut seen = HashSet::new();
        for r in SysReg::all() {
            if let Some(c) = el1_counterpart(r) {
                assert!(!c.is_el2(), "counterpart {c} of {r} is not EL1");
                assert!(seen.insert(c), "duplicate counterpart {c}");
            }
        }
    }

    /// VNCR offsets are unique, 8-byte aligned, and fit one 4 KiB page.
    #[test]
    fn vncr_offsets_fit_one_page() {
        let mut seen = HashSet::new();
        for &r in deferrable_registers() {
            let off = vncr_offset(r).expect("deferrable register has offset");
            assert_eq!(off % 8, 0);
            assert!(off < 4096, "{r} offset {off}");
            assert!(seen.insert(off), "duplicate offset {off} for {r}");
        }
        assert!(seen.len() >= 40, "expected a substantial deferred set");
    }

    /// Registers NEVE never touches have no VNCR slot.
    #[test]
    fn non_deferrable_registers_have_no_offset() {
        assert_eq!(vncr_offset(SysReg::MidrEl1), None);
        assert_eq!(vncr_offset(SysReg::IccIar1El1), None);
        assert_eq!(vncr_offset(SysReg::CnthvCtlEl2), None);
        // Redirect-class register state lives in the EL1 counterpart, not
        // the page.
        assert_eq!(vncr_offset(SysReg::VbarEl2), None);
    }

    /// Timer EL2 registers always trap (reads need live hardware values).
    #[test]
    fn timer_el2_registers_always_trap() {
        for r in [
            SysReg::CnthpCtlEl2,
            SysReg::CnthpCvalEl2,
            SysReg::CnthvCtlEl2,
            SysReg::CnthvCvalEl2,
        ] {
            assert_eq!(neve_class(r), NeveClass::TimerTrap);
        }
    }

    #[test]
    fn el12_names_classify_as_vm_execution_state() {
        assert_eq!(
            neve_class_of_name(RegId::El12(SysReg::SctlrEl1)),
            NeveClass::VmExecutionControl
        );
        assert_eq!(
            neve_class_of_name(RegId::El02(SysReg::CntvCtlEl0)),
            NeveClass::VmExecutionControl
        );
        assert_eq!(
            neve_class_of_name(RegId::Plain(SysReg::HcrEl2)),
            NeveClass::VmTrapControl
        );
    }

    #[test]
    fn offsets_are_stable_across_calls() {
        for &r in deferrable_registers() {
            assert_eq!(vncr_offset(r), vncr_offset(r));
        }
    }
}
